package sfi

import (
	"io"
	"testing"

	"sfi/internal/obs"
)

// The benchmark harness: one bench per table and figure of the paper's
// evaluation (the numbers each run prints are recorded in EXPERIMENTS.md),
// plus ablation benches for the design choices DESIGN.md calls out.
// Benchmarks use reduced campaign sizes per iteration; cmd/sfi-tables runs
// the full-size versions.

func benchRunner() RunnerConfig {
	cfg := DefaultRunnerConfig()
	cfg.AVP.Testcases = 8
	cfg.AVP.BodyOps = 24
	return cfg
}

// BenchmarkTable1AVPMix regenerates Table 1: the AVP's instruction mix and
// CPI against the eleven SPECInt 2000 component profiles.
func BenchmarkTable1AVPMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := BuildTable1(11)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2SampleSweep regenerates Figure 2: relative standard
// deviation of each outcome category versus the number of flips.
func BenchmarkFig2SampleSweep(b *testing.B) {
	cfg := Fig2Config{
		Runner:  benchRunner(),
		Sizes:   []int{100, 200, 400, 800},
		Samples: 5,
		Seed:    42,
	}
	for i := 0; i < b.N; i++ {
		r, err := RunFig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// The paper's claim: estimation error shrinks as samples grow.
		first := r.Points[0].RelStd[Corrected]
		last := r.Points[len(r.Points)-1].RelStd[Corrected]
		if last > first {
			b.Logf("note: corrected rel-stddev did not shrink (%.3f -> %.3f)", first, last)
		}
	}
}

// BenchmarkTable2BeamCalibration regenerates Table 2: SFI versus the
// simulated proton beam.
func BenchmarkTable2BeamCalibration(b *testing.B) {
	cfg := Table2Config{
		Runner: benchRunner(),
		Flips:  800,
		Beam:   DefaultBeamConfig(),
		Seed:   2,
	}
	cfg.Beam.Strikes = 400
	cfg.Beam.AVP.Testcases = 8
	cfg.Beam.AVP.BodyOps = 24
	for i := 0; i < b.N; i++ {
		r, err := RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.SFI.Fraction(Vanished) < 0.85 {
			b.Fatalf("implausible vanish fraction %.3f", r.SFI.Fraction(Vanished))
		}
	}
}

// BenchmarkFig3UnitSER regenerates Figure 3: per-unit targeted injection.
func BenchmarkFig3UnitSER(b *testing.B) {
	cfg := Fig3Config{
		Runner:     benchRunner(),
		Fraction:   0.02,
		MaxPerUnit: 400,
		Seed:       3,
	}
	for i := 0; i < b.N; i++ {
		r, err := RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.PerUnit) != len(Units) {
			b.Fatal("missing units")
		}
	}
}

// BenchmarkFig4UnitContribution regenerates Figure 4 from the Figure 3
// data (latch-count-weighted contributions).
func BenchmarkFig4UnitContribution(b *testing.B) {
	cfg := Fig3Config{
		Runner:     benchRunner(),
		Fraction:   0.02,
		MaxPerUnit: 400,
		Seed:       3,
	}
	f3, err := RunFig3(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f4 := DeriveFig4(f3)
		if len(f4.Contribution) == 0 {
			b.Fatal("empty contribution")
		}
	}
}

// BenchmarkFig5LatchTypes regenerates Figure 5: per-latch-type injection.
func BenchmarkFig5LatchTypes(b *testing.B) {
	cfg := Fig5Config{
		Runner:   benchRunner(),
		Fraction: 0.02,
		MinPer:   150,
		Seed:     4,
	}
	for i := 0; i < b.N; i++ {
		r, err := RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.PerType) != len(LatchTypes) {
			b.Fatal("missing types")
		}
	}
}

// BenchmarkTable3Checkers regenerates Table 3: Raw versus Check.
func BenchmarkTable3Checkers(b *testing.B) {
	cfg := Table3Config{Runner: benchRunner(), Flips: 600, Seed: 5}
	for i := 0; i < b.N; i++ {
		r, err := RunTable3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Raw.Fraction(Vanished) < r.Check.Fraction(Vanished) {
			b.Logf("note: raw vanish %.3f < check vanish %.3f (shape inversion)",
				r.Raw.Fraction(Vanished), r.Check.Fraction(Vanished))
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationToggleVsSticky compares toggle-mode and sticky-mode
// injection over the same sample.
func BenchmarkAblationToggleVsSticky(b *testing.B) {
	base := CampaignConfig{Runner: benchRunner(), Seed: 6, Flips: 400}
	for i := 0; i < b.N; i++ {
		tog, err := RunCampaign(base)
		if err != nil {
			b.Fatal(err)
		}
		st := base
		st.Runner.Mode = Sticky
		st.Runner.StickyCycles = 0
		stk, err := RunCampaign(st)
		if err != nil {
			b.Fatal(err)
		}
		// Stuck-at faults must be at least as fatal as transients.
		if stk.Fraction(Checkstop)+stk.Fraction(Hang) <
			tog.Fraction(Checkstop)+tog.Fraction(Hang) {
			b.Logf("note: sticky fatality below toggle fatality")
		}
	}
}

// BenchmarkAblationEarlyExit compares quiesce-based early exit against the
// paper's fixed observation window on the same sample.
func BenchmarkAblationEarlyExit(b *testing.B) {
	early := CampaignConfig{Runner: benchRunner(), Seed: 7, Flips: 250}
	fixed := early
	fixed.Runner.QuiesceExit = 0
	fixed.Runner.Window = 20_000
	for i := 0; i < b.N; i++ {
		er, err := RunCampaign(early)
		if err != nil {
			b.Fatal(err)
		}
		fr, err := RunCampaign(fixed)
		if err != nil {
			b.Fatal(err)
		}
		// Classification agreement between the two policies.
		diff := 0
		for _, o := range Outcomes {
			d := er.Counts[o] - fr.Counts[o]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		b.ReportMetric(float64(diff)/float64(er.Total), "disagree/flip")
	}
}

// BenchmarkAblationCheckerPolicy demonstrates the conservative-checking
// effect behind Table 3: masking checkers raises the vanished fraction.
func BenchmarkAblationCheckerPolicy(b *testing.B) {
	on := CampaignConfig{Runner: benchRunner(), Seed: 8, Flips: 400}
	off := on
	off.Runner.CheckersOn = false
	for i := 0; i < b.N; i++ {
		a, err := RunCampaign(on)
		if err != nil {
			b.Fatal(err)
		}
		r, err := RunCampaign(off)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.Fraction(Vanished)-a.Fraction(Vanished)), "vanish-delta-pp")
	}
}

// BenchmarkAblationRecoveryOff measures the escalation when the recovery
// unit is disabled.
func BenchmarkAblationRecoveryOff(b *testing.B) {
	on := CampaignConfig{Runner: benchRunner(), Seed: 9, Flips: 400}
	off := on
	off.Runner.RecoveryOn = false
	for i := 0; i < b.N; i++ {
		a, err := RunCampaign(on)
		if err != nil {
			b.Fatal(err)
		}
		r, err := RunCampaign(off)
		if err != nil {
			b.Fatal(err)
		}
		if r.Fraction(Checkstop) < a.Fraction(Checkstop) {
			b.Logf("note: recovery-off checkstop rate below baseline")
		}
		b.ReportMetric(100*r.Fraction(Checkstop), "checkstop-pct")
	}
}

// BenchmarkInjection measures single-injection throughput (reload, flip,
// observe, classify) — the quantity that makes SFI practical compared with
// software simulation.
func BenchmarkInjection(b *testing.B) {
	r, err := NewRunner(benchRunner())
	if err != nil {
		b.Fatal(err)
	}
	total := r.DB().TotalBits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunInjection((i * 7919) % total)
	}
}

// BenchmarkInjectionObserved measures the same single-injection loop with
// the observability layer fully on — metrics collection plus a JSONL trace
// into a discarding sink. The delta against BenchmarkInjection is the
// instrumentation overhead budget documented in DESIGN.md (<5%) and gated
// by make ci (cmd/sfi-bench -guard).
func BenchmarkInjectionObserved(b *testing.B) {
	r, err := NewRunner(benchRunner())
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(Outcomes)+1)
	for _, o := range Outcomes {
		names[int(o)] = o.String()
	}
	m := obs.New(names)
	sink := obs.NewTraceSink(io.Discard, obs.TraceOptions{})
	r.SetObs(m, sink)
	total := r.DB().TotalBits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunInjection((i * 7919) % total)
	}
	if got := m.Snapshot().Injections; got != uint64(b.N) {
		b.Fatalf("metrics recorded %d injections, ran %d", got, b.N)
	}
}

// BenchmarkCampaignThroughput measures end-to-end campaign speed —
// injections classified per second, the quantity the paper's whole argument
// rests on ("multiple concurrent copies of the simulation environment can
// be run"). The default path warms one prototype and clones it per worker;
// the fresh-workers sub-bench is the seed behaviour (every worker
// re-generates and re-warms its own model) kept for comparison.
func BenchmarkCampaignThroughput(b *testing.B) {
	// Workers is pinned (rather than left at GOMAXPROCS) so the per-worker
	// start-up cost is exercised the same way on any machine.
	base := CampaignConfig{Runner: benchRunner(), Seed: 12, Flips: 400, Workers: 4, KeepResults: false}
	run := func(b *testing.B, cfg CampaignConfig) {
		total := 0
		for i := 0; i < b.N; i++ {
			rep, err := RunCampaign(cfg)
			if err != nil {
				b.Fatal(err)
			}
			total += rep.Total
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "inj/s")
	}
	b.Run("warm-clones", func(b *testing.B) { run(b, base) })
	b.Run("fresh-workers", func(b *testing.B) {
		cfg := base
		cfg.NoClone = true
		run(b, cfg)
	})
}

// BenchmarkAblationMultiBitUpset sweeps the injected cluster size. The
// result is the parity blind spot: even-weight clusters inside one covered
// word cancel the parity bit, so DETECTION drops for spans 2 and 4 relative
// to single flips (and odd spans stay detectable) — the weakness that
// motivates SECDED arrays and physical bit interleaving.
func BenchmarkAblationMultiBitUpset(b *testing.B) {
	base := CampaignConfig{Runner: benchRunner(), Seed: 10, Flips: 300}
	for i := 0; i < b.N; i++ {
		var corr [5]float64
		for _, span := range []int{1, 2, 3, 4} {
			cfg := base
			cfg.Runner.SpanBits = span
			rep, err := RunCampaign(cfg)
			if err != nil {
				b.Fatal(err)
			}
			corr[span] = rep.Fraction(Corrected)
		}
		if corr[2] > corr[1] {
			b.Logf("note: even span detected more than single (%.3f vs %.3f)", corr[2], corr[1])
		}
		b.ReportMetric(100*corr[1], "span1-corrected-pct")
		b.ReportMetric(100*corr[2], "span2-corrected-pct")
	}
}
