package sfi

import (
	"fmt"
	"strings"

	"sfi/internal/latch"
	"sfi/internal/stats"
)

// This file implements the paper's experiments (every table and figure of
// the evaluation) as reusable drivers shared by cmd/sfi-tables and the
// benchmark harness. Each driver returns a structured result with a String
// rendering in the paper's layout.

// ---------------------------------------------------------------------------
// Figure 2: accuracy of SFI with increasing number of flips
// ---------------------------------------------------------------------------

// Fig2Config parameterizes the sample-size study.
type Fig2Config struct {
	Runner  RunnerConfig
	Sizes   []int  // numbers of flips ("X values"); paper: 2k..20k
	Samples int    // random samples per size; paper: 10
	Seed    uint64 // base seed; each sample s uses Seed + s
	Workers int
}

// DefaultFig2Config returns a scaled-down version of the paper's sweep
// (see DESIGN.md scaling disclosures).
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Runner:  DefaultRunnerConfig(),
		Sizes:   []int{200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000},
		Samples: 10,
		Seed:    42,
	}
}

// Fig2Point is one x-position of Figure 2: the relative standard deviation
// per outcome category across the random samples.
type Fig2Point struct {
	Flips  int
	RelStd map[Outcome]float64
}

// Fig2Result is the full Figure 2 series.
type Fig2Result struct {
	Points []Fig2Point
}

// RunFig2 reproduces Figure 2: for each sample size, draw Samples
// independent random latch samples, run SFI on each, and report the
// standard deviation of each outcome category's count as a fraction of its
// mean.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	out := &Fig2Result{}
	for _, size := range cfg.Sizes {
		counts := make(map[Outcome][]float64)
		for s := 0; s < cfg.Samples; s++ {
			cc := CampaignConfig{
				Runner:      cfg.Runner,
				Seed:        cfg.Seed + uint64(s)*1000003 + uint64(size),
				Flips:       size,
				Workers:     cfg.Workers,
				KeepResults: false,
			}
			rep, err := RunCampaign(cc)
			if err != nil {
				return nil, err
			}
			for _, o := range Outcomes {
				counts[o] = append(counts[o], float64(rep.Counts[o]))
			}
		}
		pt := Fig2Point{Flips: size, RelStd: make(map[Outcome]float64)}
		for _, o := range Outcomes {
			pt.RelStd[o] = stats.RelStdDev(counts[o])
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// String renders the Figure 2 series as a table.
func (r *Fig2Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "flips")
	for _, o := range Outcomes {
		fmt.Fprintf(&sb, " %10s", o)
	}
	sb.WriteByte('\n')
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "%-8d", pt.Flips)
		for _, o := range Outcomes {
			fmt.Fprintf(&sb, " %10.4f", pt.RelStd[o])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 2: SFI versus proton beam calibration
// ---------------------------------------------------------------------------

// Table2Config parameterizes the calibration experiment.
type Table2Config struct {
	Runner  RunnerConfig
	Flips   int // SFI campaign size
	Beam    BeamConfig
	Seed    uint64
	Workers int
}

// DefaultTable2Config returns the standard calibration setup.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Runner: DefaultRunnerConfig(),
		Flips:  4000,
		Beam:   DefaultBeamConfig(),
		Seed:   2,
	}
}

// Table2Result holds both columns plus the agreement statistics.
type Table2Result struct {
	SFI  *Report
	Beam *BeamReport

	ChiSquare float64
	PValue    float64
}

// RunTable2 reproduces Table 2: a whole-population random SFI campaign
// side by side with a simulated beam run, and a chi-square agreement test.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	rep, err := RunCampaign(CampaignConfig{
		Runner:  cfg.Runner,
		Seed:    cfg.Seed,
		Flips:   cfg.Flips,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	brep, err := RunBeam(cfg.Beam)
	if err != nil {
		return nil, err
	}
	stat, p, err := CalibrateBeam(rep.Fraction(Vanished), rep.Fraction(Corrected),
		rep.Fraction(Checkstop), brep)
	if err != nil {
		return nil, err
	}
	return &Table2Result{SFI: rep, Beam: brep, ChiSquare: stat, PValue: p}, nil
}

// String renders Table 2 in the paper's layout.
func (r *Table2Result) String() string {
	bv, bc, bk := r.Beam.Fractions()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %12s\n", "Category", "SFI", "Proton Beam")
	fmt.Fprintf(&sb, "%-12s %10d %12d\n", "Total flips", r.SFI.Total, r.Beam.Strikes)
	fmt.Fprintf(&sb, "%-12s %9.2f%% %11.2f%%\n", "Vanished", 100*r.SFI.Fraction(Vanished), 100*bv)
	fmt.Fprintf(&sb, "%-12s %9.2f%% %11.2f%%\n", "Corrected", 100*r.SFI.Fraction(Corrected), 100*bc)
	fmt.Fprintf(&sb, "%-12s %9.2f%% %11.2f%%\n", "Checkstop", 100*r.SFI.Fraction(Checkstop), 100*bk)
	fmt.Fprintf(&sb, "chi-square %.3f (p = %.3f)\n", r.ChiSquare, r.PValue)
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figures 3 and 4: per-unit SER resilience and contribution
// ---------------------------------------------------------------------------

// Fig3Config parameterizes the per-unit targeted study.
type Fig3Config struct {
	Runner RunnerConfig
	// Fraction of each unit's latch population to inject (the paper uses
	// ~10% of the total latch bits).
	Fraction float64
	// MaxPerUnit caps the flips per unit (0 = no cap).
	MaxPerUnit int
	Seed       uint64
	Workers    int
}

// DefaultFig3Config returns the paper-style per-unit sweep.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		Runner:   DefaultRunnerConfig(),
		Fraction: 0.10,
		Seed:     3,
	}
}

// UnitOutcome is one unit's outcome distribution plus its population.
type UnitOutcome struct {
	Unit      string
	LatchBits int
	Flips     int
	Fractions map[Outcome]float64
}

// Fig3Result is the per-unit study (Figure 3) and the inputs Figure 4
// derives from.
type Fig3Result struct {
	PerUnit []UnitOutcome
}

// RunFig3 reproduces Figure 3: targeted fault injection into each
// micro-architectural unit.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	// Probe the population once.
	probe, err := NewRunner(cfg.Runner)
	if err != nil {
		return nil, err
	}
	db := probe.DB()

	out := &Fig3Result{}
	for _, unit := range Units {
		bits := db.CountBits(latch.ByUnit(unit))
		flips := int(cfg.Fraction * float64(bits))
		if flips < 50 {
			flips = 50
		}
		if cfg.MaxPerUnit > 0 && flips > cfg.MaxPerUnit {
			flips = cfg.MaxPerUnit
		}
		if flips > bits {
			flips = bits
		}
		rep, err := RunCampaign(CampaignConfig{
			Runner:      cfg.Runner,
			Seed:        cfg.Seed + uint64(len(out.PerUnit)),
			Flips:       flips,
			Filter:      latch.ByUnit(unit),
			Workers:     cfg.Workers,
			KeepResults: false,
		})
		if err != nil {
			return nil, err
		}
		uo := UnitOutcome{
			Unit:      unit,
			LatchBits: bits,
			Flips:     flips,
			Fractions: make(map[Outcome]float64),
		}
		for _, o := range Outcomes {
			uo.Fractions[o] = rep.Fraction(o)
		}
		out.PerUnit = append(out.PerUnit, uo)
	}
	return out, nil
}

// String renders Figure 3 as a table.
func (r *Fig3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %8s %7s", "unit", "latches", "flips")
	for _, o := range Outcomes {
		fmt.Fprintf(&sb, " %10s", o)
	}
	sb.WriteByte('\n')
	for _, u := range r.PerUnit {
		fmt.Fprintf(&sb, "%-6s %8d %7d", u.Unit, u.LatchBits, u.Flips)
		for _, o := range Outcomes {
			fmt.Fprintf(&sb, " %9.2f%%", 100*u.Fractions[o])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig4Result is each unit's contribution to the total recoveries, hangs and
// checkstops, weighting per-unit rates by latch population (the paper's
// Figure 4 normalization).
type Fig4Result struct {
	// Contribution[outcome][unit] sums to 1 over units for each outcome
	// with any events.
	Contribution map[Outcome]map[string]float64
}

// DeriveFig4 computes Figure 4 from the Figure 3 data.
func DeriveFig4(f3 *Fig3Result) *Fig4Result {
	out := &Fig4Result{Contribution: make(map[Outcome]map[string]float64)}
	for _, o := range []Outcome{Corrected, Hang, Checkstop} {
		weights := make(map[string]float64)
		total := 0.0
		for _, u := range f3.PerUnit {
			w := u.Fractions[o] * float64(u.LatchBits)
			weights[u.Unit] = w
			total += w
		}
		m := make(map[string]float64)
		for unit, w := range weights {
			if total > 0 {
				m[unit] = w / total
			}
		}
		out.Contribution[o] = m
	}
	return out
}

// String renders Figure 4 as a table.
func (r *Fig4Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-11s", "outcome")
	for _, u := range Units {
		fmt.Fprintf(&sb, " %7s", u)
	}
	sb.WriteByte('\n')
	for _, o := range []Outcome{Corrected, Hang, Checkstop} {
		fmt.Fprintf(&sb, "%-11s", o)
		for _, u := range Units {
			fmt.Fprintf(&sb, " %6.1f%%", 100*r.Contribution[o][u])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 5: SER of the different latch types
// ---------------------------------------------------------------------------

// Fig5Config parameterizes the per-latch-type study.
type Fig5Config struct {
	Runner   RunnerConfig
	Fraction float64 // fraction of each scan chain to inject (paper: ~10%)
	MinPer   int
	Seed     uint64
	Workers  int
}

// DefaultFig5Config returns the paper-style per-type sweep.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		Runner:   DefaultRunnerConfig(),
		Fraction: 0.10,
		MinPer:   200,
		Seed:     4,
	}
}

// TypeOutcome is one latch type's outcome distribution.
type TypeOutcome struct {
	Type      LatchType
	LatchBits int
	Flips     int
	Fractions map[Outcome]float64
}

// Fig5Result is the per-latch-type study.
type Fig5Result struct {
	PerType []TypeOutcome
}

// RunFig5 reproduces Figure 5: targeted injection into each latch type's
// scan chains.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	probe, err := NewRunner(cfg.Runner)
	if err != nil {
		return nil, err
	}
	db := probe.DB()

	out := &Fig5Result{}
	for i, ty := range LatchTypes {
		bits := db.CountBits(latch.ByType(ty))
		flips := int(cfg.Fraction * float64(bits))
		if flips < cfg.MinPer {
			flips = cfg.MinPer
		}
		if flips > bits {
			flips = bits
		}
		rep, err := RunCampaign(CampaignConfig{
			Runner:      cfg.Runner,
			Seed:        cfg.Seed + uint64(i),
			Flips:       flips,
			Filter:      latch.ByType(ty),
			Workers:     cfg.Workers,
			KeepResults: false,
		})
		if err != nil {
			return nil, err
		}
		to := TypeOutcome{
			Type:      ty,
			LatchBits: bits,
			Flips:     flips,
			Fractions: make(map[Outcome]float64),
		}
		for _, o := range Outcomes {
			to.Fractions[o] = rep.Fraction(o)
		}
		out.PerType = append(out.PerType, to)
	}
	return out, nil
}

// String renders Figure 5 as a table.
func (r *Fig5Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %8s %7s", "type", "latches", "flips")
	for _, o := range Outcomes {
		fmt.Fprintf(&sb, " %10s", o)
	}
	sb.WriteByte('\n')
	for _, t := range r.PerType {
		fmt.Fprintf(&sb, "%-8v %8d %7d", t.Type, t.LatchBits, t.Flips)
		for _, o := range Outcomes {
			fmt.Fprintf(&sb, " %9.2f%%", 100*t.Fractions[o])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 3: effectiveness of the hardware checkers
// ---------------------------------------------------------------------------

// Table3Config parameterizes the checker ablation.
type Table3Config struct {
	Runner  RunnerConfig
	Flips   int
	Seed    uint64
	Workers int
}

// DefaultTable3Config returns the standard checker-ablation setup.
func DefaultTable3Config() Table3Config {
	return Table3Config{Runner: DefaultRunnerConfig(), Flips: 3000, Seed: 5}
}

// Table3Result holds the Raw (checkers masked) and Check (checkers enabled)
// campaign reports over the identical flip sample.
type Table3Result struct {
	Raw   *Report
	Check *Report
}

// RunTable3 reproduces Table 3: the same random flips with every hardware
// checker masked ("Raw") versus enabled ("Check").
func RunTable3(cfg Table3Config) (*Table3Result, error) {
	raw := CampaignConfig{
		Runner:      cfg.Runner,
		Seed:        cfg.Seed,
		Flips:       cfg.Flips,
		Workers:     cfg.Workers,
		KeepResults: false,
	}
	raw.Runner.CheckersOn = false
	rawRep, err := RunCampaign(raw)
	if err != nil {
		return nil, err
	}
	chk := raw
	chk.Runner.CheckersOn = true
	chkRep, err := RunCampaign(chk)
	if err != nil {
		return nil, err
	}
	return &Table3Result{Raw: rawRep, Check: chkRep}, nil
}

// String renders Table 3 in the paper's layout.
func (r *Table3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %8s %8s %8s %8s %8s\n",
		"Type", "Vanish", "Rec", "Hangs", "Chk", "SDC")
	row := func(name string, rep *Report) {
		fmt.Fprintf(&sb, "%-6s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", name,
			100*rep.Fraction(Vanished), 100*rep.Fraction(Corrected),
			100*rep.Fraction(Hang), 100*rep.Fraction(Checkstop),
			100*rep.Fraction(SDC))
	}
	row("Raw", r.Raw)
	row("Check", r.Check)
	return sb.String()
}

// ---------------------------------------------------------------------------
// Cause-and-effect tracing report (section 1's third capability)
// ---------------------------------------------------------------------------

// TraceReport renders the cause-effect traces of a campaign's detected,
// non-vanished injections: latch → first checker → outcome.
func TraceReport(rep *Report, max int) string {
	var sb strings.Builder
	n := 0
	for _, res := range rep.Results {
		if res.Outcome == Vanished {
			continue
		}
		fmt.Fprintf(&sb, "%s[%d].%d (%s, %v) -> ", res.Group, res.Entry,
			res.BitInEntry, res.Unit, res.LatchType)
		if res.Detected {
			fmt.Fprintf(&sb, "detected by %s after %d cycles -> ", res.FirstChecker, res.DetectLatency)
		} else {
			sb.WriteString("undetected -> ")
		}
		fmt.Fprintf(&sb, "%v (recoveries %d, %d cycles observed)\n",
			res.Outcome, res.Recoveries, res.Cycles)
		n++
		if max > 0 && n >= max {
			break
		}
	}
	if n == 0 {
		return "no non-vanished injections\n"
	}
	return sb.String()
}
