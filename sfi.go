// Package sfi is the public API of the Statistical Fault Injection (SFI)
// library, a from-scratch reproduction of "Statistical Fault Injection"
// (Ramachandran, Kudva, Kellington, Schumann, Sanda — DSN 2008).
//
// The library contains a latch-accurate POWER6-style core model with a full
// RAS stack (hardware checkers, recovery unit, checkstop escalation, fault
// isolation registers), an emulation engine with checkpoint/reload and
// fault-injection ports, a pseudo-random verification workload (AVP) with
// golden signatures, a beam-experiment simulation for calibration, and the
// SFI campaign framework itself: statistical sampling of latch populations,
// targeted injection, outcome classification and cause-effect tracing.
//
// Quick start:
//
//	cfg := sfi.DefaultCampaignConfig()
//	cfg.Flips = 1000
//	report, err := sfi.RunCampaign(cfg)
//	...
//	fmt.Println(report)
package sfi

import (
	"context"
	"io"
	"time"

	"sfi/internal/beam"
	"sfi/internal/core"
	"sfi/internal/engine"
	"sfi/internal/latch"
	"sfi/internal/obs"
	"sfi/internal/proc"
	"sfi/internal/stats"
	"sfi/internal/workload"

	// Engine backends register themselves by import: every facade user can
	// select them by name via RunnerConfig.Backend.
	_ "sfi/internal/engine/awan"
	_ "sfi/internal/engine/p6lite"
)

// Re-exported campaign types: see the core package for full documentation.
type (
	// CampaignConfig describes a statistical fault-injection campaign.
	CampaignConfig = core.CampaignConfig
	// RunnerConfig parameterizes a single-model injection runner.
	RunnerConfig = core.RunnerConfig
	// Runner owns one warmed, checkpointed model for repeated injections.
	Runner = core.Runner
	// Report aggregates campaign outcomes. Report.Merge folds the reports
	// of disjoint campaign shards back into the whole-campaign report —
	// the aggregation primitive behind distributed execution (sfi-coord /
	// sfi-worker).
	Report = core.Report
	// ShardRange is a half-open range [Lo, Hi) of injection indices into
	// a campaign's deterministic sample; set CampaignConfig.Shard to run
	// just that slice of the campaign.
	ShardRange = core.ShardRange
	// Result is one injection's classified destiny with its trace.
	Result = core.Result
	// Outcome is the destiny category of an injected bit flip.
	Outcome = core.Outcome

	// BeamConfig parameterizes a simulated proton-beam experiment.
	BeamConfig = beam.Config
	// BeamReport summarizes a beam run.
	BeamReport = beam.Report

	// LatchFilter selects part of the latch population for targeted
	// injection.
	LatchFilter = latch.Filter
	// LatchType is the scan-chain class of a latch (FUNC, REGFILE, GPTR,
	// MODE).
	LatchType = latch.Type

	// InjectionMode is toggle or sticky.
	InjectionMode = engine.Mode

	// ObsConfig selects campaign observability features (zero value = off).
	ObsConfig = core.ObsConfig
	// Progress is a point-in-time view of a running campaign, delivered to
	// the ObsConfig.Progress callback.
	Progress = core.Progress
	// MetricsSnapshot is the merged cross-worker metrics view attached to
	// a Report when metrics are enabled; it serializes to JSON (expvar) and
	// Prometheus text (WritePrometheus).
	MetricsSnapshot = obs.Snapshot
	// TraceSink receives one structured JSONL lifecycle event per
	// injection.
	TraceSink = obs.TraceSink
	// TraceOptions bounds a TraceSink (sampling stride, max events).
	TraceOptions = obs.TraceOptions
	// TraceEvent is one injection's structured lifecycle record.
	TraceEvent = obs.TraceEvent

	// Tracer mints causal campaign spans (see ObsConfig.Tracer); its Doc
	// method assembles the recorded spans into a TraceDoc.
	Tracer = obs.Tracer
	// Span is one timed operation in a campaign's causal tree.
	Span = obs.Span
	// SpanContext parents a child span across goroutines or processes.
	SpanContext = obs.SpanContext
	// TraceDoc is the assembled span tree with its critical path and
	// latency attribution.
	TraceDoc = obs.TraceDoc
	// Attribution is a campaign's critical-path latency decomposition.
	Attribution = obs.Attribution

	// AllocConfig selects how a campaign's injection budget is allocated
	// across sampling strata (unit × latch-type): the zero value keeps the
	// classic pooled uniform sample bit for bit; Mode AllocNeyman runs the
	// campaign as allocation epochs, re-splitting each epoch's budget by
	// Neyman allocation over the strata's observed outcome variance.
	AllocConfig = core.AllocConfig

	// StopConfig is a campaign's adaptive statistical stopping rule:
	// sequential (any-time-valid) Wilson intervals per outcome class, with
	// the campaign stopping once every class is inside the target margin.
	// The zero value keeps the classic fixed-Flips behavior bit for bit.
	StopConfig = core.StopConfig
	// Convergence is a per-class confidence-interval evaluation of a
	// campaign against a stopping rule, attached to adaptive Reports and
	// carried live in Progress.
	Convergence = stats.Convergence
	// ClassInterval is one outcome class's sequential Wilson interval.
	ClassInterval = stats.ClassInterval
)

// Outcome categories (the paper's Figure 1 vocabulary).
const (
	Vanished  = core.Vanished
	Corrected = core.Corrected
	Hang      = core.Hang
	Checkstop = core.Checkstop
	SDC       = core.SDC
)

// Injection modes.
const (
	Toggle = engine.Toggle
	Sticky = engine.Sticky
)

// Engine backend names: set RunnerConfig.Backend to select the machine
// model a campaign injects into (BackendP6Lite is the default).
const (
	// BackendP6Lite is the latch-accurate POWER6-style core model under
	// the AVP workload.
	BackendP6Lite = "p6lite"
	// BackendAwan is the gate-level netlist engine running a bank of
	// checked-ALU macros (size it with RunnerConfig.Awan).
	BackendAwan = "awan"
)

// Backends lists the registered engine backend names.
func Backends() []string { return engine.Backends() }

// Budget allocation modes (CampaignConfig.Alloc.Mode).
const (
	// AllocUniform is the classic pooled uniform sample (the default).
	AllocUniform = core.AllocUniform
	// AllocNeyman allocates the budget across sampling strata by Neyman
	// allocation, re-planned at epoch boundaries.
	AllocNeyman = core.AllocNeyman
)

// DefaultAllocEpochs is the number of allocation epochs a stratified
// campaign is split into when AllocConfig.Epochs is 0.
const DefaultAllocEpochs = core.DefaultAllocEpochs

// Latch types.
const (
	LatchFunc    = latch.Func
	LatchRegFile = latch.RegFile
	LatchGPTR    = latch.GPTR
	LatchMode    = latch.Mode
)

// Outcomes lists all outcome categories in reporting order.
var Outcomes = core.Outcomes

// WriteConvergencePrometheus renders a convergence evaluation as Prometheus
// gauges under prefix (per-class interval bounds, widths and converged
// flags). Nil c writes nothing.
func WriteConvergencePrometheus(w io.Writer, prefix string, c *Convergence) error {
	return obs.WriteConvergencePrometheus(w, prefix, c)
}

// Units lists the core's unit names in the paper's order (IFU, IDU, FXU,
// FPU, LSU, RUT, Core).
var Units = proc.Units

// UnitNEST is the optional core-periphery unit (L2 + memory controller),
// present when RunnerConfig.Proc.EnableNest is set — the paper's "fault
// injections in the periphery of the core" future work.
const UnitNEST = proc.UnitNEST

// LatchTypes lists the latch types in Figure 5 order.
var LatchTypes = latch.Types

// DefaultCampaignConfig returns a whole-core random campaign configuration.
func DefaultCampaignConfig() CampaignConfig { return core.DefaultCampaignConfig() }

// DefaultRunnerConfig returns the standard SFI runner configuration.
func DefaultRunnerConfig() RunnerConfig { return core.DefaultRunnerConfig() }

// RunCampaign executes a fault-injection campaign.
func RunCampaign(cfg CampaignConfig) (*Report, error) { return core.RunCampaign(cfg) }

// RunCampaignContext is RunCampaign with cancellation: when ctx is
// cancelled, dispatch stops, in-flight injections finish, and the
// campaign returns ctx's error.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*Report, error) {
	return core.RunCampaignContext(ctx, cfg)
}

// PlanShards splits a flips-injection campaign into contiguous shards of
// at most shardSize injections. Executing each shard (CampaignConfig.Shard)
// with the same seed — in any process, in any order — and merging the
// Reports in plan order reproduces the single-process campaign Report
// exactly. shardSize <= 0 yields one whole-campaign shard.
func PlanShards(flips, shardSize int) []ShardRange { return core.PlanShards(flips, shardSize) }

// NewRunner builds, warms and checkpoints a single injection runner.
func NewRunner(cfg RunnerConfig) (*Runner, error) { return core.NewRunner(cfg) }

// NewTraceSink wraps a writer in a JSONL injection-trace sink (see
// ObsConfig.Trace). The sink serializes concurrent writers; wrap a
// *bufio.Writer for high-rate traces and flush it after the campaign.
func NewTraceSink(w io.Writer, opts TraceOptions) *TraceSink {
	return obs.NewTraceSink(w, opts)
}

// NewTracer builds a campaign span tracer whose trace/span IDs are minted
// from a splitmix64 stream seeded by the campaign seed, so a rerun of the
// same campaign mints the same IDs.
func NewTracer(seed uint64) *Tracer { return obs.NewTracer(seed) }

// ProgressFrom derives a Progress view (rate, ETA, outcome mix) from a
// metrics snapshot — the shared derivation behind local campaign progress
// callbacks and distributed fleet status. Pass workers 0 when the
// concurrent-copy count is unknown; utilization is then omitted.
func ProgressFrom(s *MetricsSnapshot, total, workers int, start time.Time) Progress {
	return core.ProgressFrom(s, total, workers, start)
}

// PublishMetricsExpvar registers a live metrics view under name in the
// process-wide expvar registry (served at /debug/vars alongside pprof when
// an HTTP listener is up). The function is re-evaluated on every scrape.
func PublishMetricsExpvar(name string, fn func() *MetricsSnapshot) {
	obs.PublishExpvar(name, fn)
}

// ByUnit selects one unit's latches for targeted injection.
func ByUnit(unit string) LatchFilter { return latch.ByUnit(unit) }

// ByType selects one latch type for targeted injection.
func ByType(t LatchType) LatchFilter { return latch.ByType(t) }

// ByGroupPrefix selects latch groups by name prefix (macro-level targeting).
func ByGroupPrefix(prefix string) LatchFilter { return core.ByGroupPrefix(prefix) }

// DefaultBeamConfig returns the calibrated beam configuration.
func DefaultBeamConfig() BeamConfig { return beam.DefaultConfig() }

// RunBeam executes a simulated proton-beam experiment.
func RunBeam(cfg BeamConfig) (*BeamReport, error) { return beam.Run(cfg) }

// CalibrateBeam compares SFI proportions against a beam report (Table 2),
// returning the chi-square statistic and p-value.
func CalibrateBeam(vanished, corrected, checkstop float64, rep *BeamReport) (stat, p float64, err error) {
	return beam.Calibrate(vanished, corrected, checkstop, rep)
}

// Table1 is the AVP-versus-SPECInt comparison result.
type Table1 = workload.Table1

// BuildTable1 measures the workload profiles and the AVP (paper Table 1).
func BuildTable1(seed uint64) (*Table1, error) { return workload.BuildTable1(seed) }
