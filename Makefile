GO ?= go
# Output file for the `bench` record; override per PR, e.g.
# `make bench BENCH=BENCH_pr10.json`.
BENCH ?= BENCH_pr10.json

.PHONY: build bins test race vet bench overhead smoke ci

build:
	$(GO) build ./...

# bins links every command (including the distributed sfi-coord/sfi-worker
# pair) into ./bin — the ci proof that all binaries actually build.
bins:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The -race pass targets the packages that exercise concurrent model copies
# and cross-process coordination: internal/core (campaign fan-out over
# cloned runners), internal/engine and its backends (the registry plus the
# p6lite/awan models that campaign workers clone concurrently),
# internal/emu, internal/awan (the gate engine cloned per worker),
# internal/dist (the loopback coordinator+worker integration tests, HTTP
# leases, fleet aggregation), internal/obs (concurrent metrics collectors,
# fleet snapshot merging, trace sinks), internal/stats (the lock-free
# convergence estimator campaign workers feed concurrently), internal/store
# (the single-flight image cache cloned into concurrent campaigns) and
# internal/server (the multi-campaign scheduler and its executors).
race:
	$(GO) test -race ./internal/core ./internal/engine/... ./internal/emu ./internal/awan ./internal/dist ./internal/obs ./internal/stats ./internal/store ./internal/server

# bench runs every benchmark once for a quick smoke, then has sfi-bench
# re-measure the headline numbers and emit the machine-readable record to
# $(BENCH).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
	$(GO) run ./cmd/sfi-bench -out $(BENCH)

# overhead is the observability cost gate: BenchmarkInjection with the
# no-op default must stay within 5% of the recorded baseline, the
# metrics+trace-on path within 5% of the no-op path, the distributed
# loopback campaign with fleet observability (heartbeat metric deltas,
# trace attachment) within 5% of the observability-off loopback run, and
# campaign tracing (per-batch spans) within 5% of the untraced run. It is
# also the stratified-sampling gate: a Neyman-allocated campaign must
# reach full stratum coverage with strictly fewer injections than uniform
# sampling at the same margin and confidence. A missing baseline file is
# recorded rather than failed (fresh machine).
overhead:
	$(GO) run ./cmd/sfi-bench -guard -baseline BENCH_baseline.json

# smoke is the campaign-service end-to-end gate: boot an sfi-server over a
# fresh store, submit an adaptive campaign over real HTTP, watch it
# converge, and pull the report, events, status and metrics back out.
smoke:
	$(GO) test -count=1 -run TestLoopbackSubmitConvergeReport ./internal/server

ci: vet build bins test race overhead smoke
