GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The -race pass targets the packages that exercise concurrent model copies:
# internal/core (campaign fan-out over cloned runners) and internal/emu.
race:
	$(GO) test -race ./internal/core ./internal/emu

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

ci: vet build test race
