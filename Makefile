GO ?= go

.PHONY: build test race vet bench overhead ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The -race pass targets the packages that exercise concurrent model copies:
# internal/core (campaign fan-out over cloned runners) and internal/emu.
race:
	$(GO) test -race ./internal/core ./internal/emu

# bench runs every benchmark once for a quick smoke, then has sfi-bench
# re-measure the headline numbers and emit the machine-readable record.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
	$(GO) run ./cmd/sfi-bench -out BENCH_pr2.json

# overhead is the observability cost gate: BenchmarkInjection with the
# no-op default must stay within 5% of the recorded baseline, and the
# metrics+trace-on path within 5% of the no-op path. A missing baseline
# file is recorded rather than failed (fresh machine).
overhead:
	$(GO) run ./cmd/sfi-bench -guard -baseline BENCH_baseline.json

ci: vet build test race overhead
