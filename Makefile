GO ?= go

.PHONY: build bins test race vet bench overhead ci

build:
	$(GO) build ./...

# bins links every command (including the distributed sfi-coord/sfi-worker
# pair) into ./bin — the ci proof that all binaries actually build.
bins:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The -race pass targets the packages that exercise concurrent model copies
# and cross-process coordination: internal/core (campaign fan-out over
# cloned runners), internal/emu, and internal/dist (the loopback
# coordinator+worker integration tests, HTTP leases and all).
race:
	$(GO) test -race ./internal/core ./internal/emu ./internal/dist

# bench runs every benchmark once for a quick smoke, then has sfi-bench
# re-measure the headline numbers and emit the machine-readable record.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
	$(GO) run ./cmd/sfi-bench -out BENCH_pr2.json

# overhead is the observability cost gate: BenchmarkInjection with the
# no-op default must stay within 5% of the recorded baseline, and the
# metrics+trace-on path within 5% of the no-op path. A missing baseline
# file is recorded rather than failed (fresh machine).
overhead:
	$(GO) run ./cmd/sfi-bench -guard -baseline BENCH_baseline.json

ci: vet build bins test race overhead
