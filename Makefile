GO ?= go

.PHONY: build bins test race vet bench overhead ci

build:
	$(GO) build ./...

# bins links every command (including the distributed sfi-coord/sfi-worker
# pair) into ./bin — the ci proof that all binaries actually build.
bins:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The -race pass targets the packages that exercise concurrent model copies
# and cross-process coordination: internal/core (campaign fan-out over
# cloned runners), internal/engine and its backends (the registry plus the
# p6lite/awan models that campaign workers clone concurrently),
# internal/emu, internal/awan (the gate engine cloned per worker),
# internal/dist (the loopback coordinator+worker integration tests, HTTP
# leases, fleet aggregation), and internal/obs (concurrent metrics
# collectors, fleet snapshot merging, trace sinks).
race:
	$(GO) test -race ./internal/core ./internal/engine/... ./internal/emu ./internal/awan ./internal/dist ./internal/obs

# bench runs every benchmark once for a quick smoke, then has sfi-bench
# re-measure the headline numbers and emit the machine-readable record.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...
	$(GO) run ./cmd/sfi-bench -out BENCH_pr6.json

# overhead is the observability cost gate: BenchmarkInjection with the
# no-op default must stay within 5% of the recorded baseline, the
# metrics+trace-on path within 5% of the no-op path, and the distributed
# loopback campaign with fleet observability (heartbeat metric deltas,
# trace attachment) within 5% of the observability-off loopback run. A
# missing baseline file is recorded rather than failed (fresh machine).
overhead:
	$(GO) run ./cmd/sfi-bench -guard -baseline BENCH_baseline.json

ci: vet build bins test race overhead
