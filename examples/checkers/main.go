// Checkers: the paper's Table 3 study — the same fault sample with every
// hardware checker masked ("Raw") versus enabled ("Check"), plus the
// recovery-disable ablation. Demonstrates the paper's counterintuitive
// result: enabling checkers *lowers* the vanished fraction, because
// conservative checkers catch corrupt-but-harmless state and convert it
// into visible recoveries and checkstops.
package main

import (
	"fmt"
	"log"

	"sfi"
)

func main() {
	cfg := sfi.DefaultTable3Config()
	cfg.Flips = 2000

	r, err := sfi.RunTable3(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Effect of the hardware checkers (Table 3):")
	fmt.Print(r)

	fmt.Printf("\nEnabling the checkers moved %.1f points of \"vanished\" into "+
		"machine-visible events,\nand suppressed SDC from %.2f%% to %.2f%%.\n",
		100*(r.Raw.Fraction(sfi.Vanished)-r.Check.Fraction(sfi.Vanished)),
		100*r.Raw.Fraction(sfi.SDC), 100*r.Check.Fraction(sfi.SDC))

	// Ablation: recovery unit disabled — detected errors escalate.
	ccfg := sfi.DefaultCampaignConfig()
	ccfg.Flips = 2000
	ccfg.Seed = cfg.Seed
	ccfg.Runner.RecoveryOn = false
	noRec, err := sfi.RunCampaign(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith the recovery unit disabled, the same sample gives:\n")
	fmt.Printf("  corrected %.2f%% (was %.2f%%), checkstop %.2f%% (was %.2f%%)\n",
		100*noRec.Fraction(sfi.Corrected), 100*r.Check.Fraction(sfi.Corrected),
		100*noRec.Fraction(sfi.Checkstop), 100*r.Check.Fraction(sfi.Checkstop))
	fmt.Println("  — every detected error becomes fatal without retry.")
}
