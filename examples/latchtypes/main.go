// Latchtypes: the paper's Figure 5 study — targeted injection into each
// scan-chain latch class (MODE, GPTR, REGFILE, FUNC), demonstrating that
// scan-only latches have a larger system-level impact than read-write
// latches because their corruption persists for the whole run.
package main

import (
	"fmt"
	"log"

	"sfi"
)

func main() {
	cfg := sfi.DefaultFig5Config()
	cfg.Fraction = 0.08

	r, err := sfi.RunFig5(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SER of the different latch types (Figure 5):")
	fmt.Print(r)

	var scanVanish, rwVanish float64
	var scanN, rwN int
	for _, t := range r.PerType {
		switch t.Type {
		case sfi.LatchMode, sfi.LatchGPTR:
			scanVanish += t.Fractions[sfi.Vanished]
			scanN++
		default:
			rwVanish += t.Fractions[sfi.Vanished]
			rwN++
		}
	}
	fmt.Printf("\nScan-only latches (MODE, GPTR) vanish on average %.1f%% of the time;\n",
		100*scanVanish/float64(scanN))
	fmt.Printf("read-write latches (REGFILE, FUNC) vanish %.1f%% of the time.\n",
		100*rwVanish/float64(rwN))
	fmt.Println("Persistent scan state cannot be overwritten by execution nor cleaned")
	fmt.Println("by recovery — the paper's motivation for hardening scan-only latches.")
}
