// Beamcal: the paper's Table 2 validation — a whole-population SFI campaign
// side by side with a simulated proton-beam experiment (Poisson strikes
// over latches and ECC-protected arrays, machine-visible evidence only),
// with a chi-square agreement test between the two outcome distributions.
package main

import (
	"fmt"
	"log"

	"sfi"
)

func main() {
	cfg := sfi.DefaultTable2Config()
	cfg.Flips = 2500
	cfg.Beam.Strikes = 1500

	r, err := sfi.RunTable2(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Error state proportions, SFI vs proton beam (Table 2):")
	fmt.Print(r)

	if r.PValue > 0.01 {
		fmt.Printf("\nThe distributions agree (p = %.3f): the simulation-based\n", r.PValue)
		fmt.Println("methodology is validated against the \"real-world\" experiment,")
		fmt.Println("which is what licenses the targeted studies a beam cannot do.")
	} else {
		fmt.Printf("\nThe distributions disagree (p = %.4f) — with small samples this\n", r.PValue)
		fmt.Println("can be statistical noise; rerun with larger -flips / -strikes.")
	}
	fmt.Printf("\nBeam observability: %d hangs and %d AVP-detected bad-architected-state\n",
		r.Beam.Hang, r.Beam.SDC)
	fmt.Printf("events were seen across %d cycles of irradiation.\n", r.Beam.Cycles)
}
