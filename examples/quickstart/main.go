// Quickstart: run a small statistical fault-injection campaign over the
// whole core and print the outcome distribution — the minimal SFI flow:
// build a model, warm the AVP workload, sample latches, inject, classify.
package main

import (
	"fmt"
	"log"

	"sfi"
)

func main() {
	cfg := sfi.DefaultCampaignConfig()
	cfg.Flips = 1500
	cfg.Seed = 2026

	report, err := sfi.RunCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Whole-core random SFI campaign:")
	fmt.Print(report)

	fmt.Println("\nDerating summary:")
	fmt.Printf("  %.1f%% of injected bit flips were architecturally masked.\n",
		100*report.Fraction(sfi.Vanished))
	fmt.Printf("  %.1f%% were detected and corrected by the RAS hardware.\n",
		100*report.Fraction(sfi.Corrected))
	fmt.Printf("  %.2f%% escalated to checkstop, %.2f%% hung the core, %.2f%% corrupted architected state.\n",
		100*report.Fraction(sfi.Checkstop),
		100*report.Fraction(sfi.Hang),
		100*report.Fraction(sfi.SDC))

	fmt.Println("\nFirst few cause-effect traces:")
	fmt.Print(sfi.TraceReport(report, 8))
}
