// Periphery: the paper's stated future work — "fault injections in the
// periphery of the core, such as the I/O subsystem, memory subsystem and so
// on". With the NEST enabled, every L1 miss is serviced through an L2 cache
// and a parity-protected memory-controller request queue, all injectable.
// This example targets the periphery and contrasts its resilience profile
// with the core's.
package main

import (
	"fmt"
	"log"

	"sfi"
)

func main() {
	cfg := sfi.DefaultCampaignConfig()
	cfg.Runner.Proc.EnableNest = true
	cfg.Flips = 1200
	cfg.Filter = sfi.ByUnit(sfi.UnitNEST)

	nest, err := sfi.RunCampaign(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Targeted campaign into the core periphery (L2 + memory controller):")
	fmt.Print(nest)

	coreCfg := cfg
	coreCfg.Filter = sfi.ByUnit("LSU")
	core, err := sfi.RunCampaign(coreCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSame campaign into the LSU, for contrast:")
	fmt.Print(core)

	fmt.Printf("\nPeriphery derating: %.1f%% vanished (LSU: %.1f%%).\n",
		100*nest.Fraction(sfi.Vanished), 100*core.Fraction(sfi.Vanished))
	fmt.Println("Most periphery state is idle coherence/DMA machinery in this")
	fmt.Println("configuration; the live request queue is parity-protected, so its")
	fmt.Println("corruption recovers. Scan-ring hits remain fatal, as in the core.")

	fmt.Println("\nCause-effect traces from the periphery:")
	fmt.Print(sfi.TraceReport(nest, 10))
}
