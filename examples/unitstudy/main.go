// Unitstudy: the paper's Figure 3 / Figure 4 workflow — targeted fault
// injection into each micro-architectural unit (something a beam cannot
// do), then normalization by latch population to find each unit's
// contribution to the machine's recoveries, hangs and checkstops.
package main

import (
	"fmt"
	"log"

	"sfi"
)

func main() {
	cfg := sfi.DefaultFig3Config()
	cfg.Fraction = 0.05 // 5% of each unit's latches keeps this example quick

	f3, err := sfi.RunFig3(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Per-unit SER resilience (Figure 3):")
	fmt.Print(f3)

	fmt.Println("\nPer-unit contribution to machine events (Figure 4):")
	fmt.Print(sfi.DeriveFig4(f3))

	// The paper's headline observations, checked live:
	lowest := f3.PerUnit[0]
	largestRec := f3.PerUnit[0]
	f4 := sfi.DeriveFig4(f3)
	for _, u := range f3.PerUnit {
		if u.Fractions[sfi.Vanished] < lowest.Fractions[sfi.Vanished] {
			lowest = u
		}
		if f4.Contribution[sfi.Corrected][u.Unit] >
			f4.Contribution[sfi.Corrected][largestRec.Unit] {
			largestRec = u
		}
	}
	fmt.Printf("\nLowest derating: %s (%.1f%% vanished) — the recovery unit's control logic\n",
		lowest.Unit, 100*lowest.Fractions[sfi.Vanished])
	fmt.Printf("Largest contributor to recoveries: %s (%.1f%% of all recoveries, %d latches)\n",
		largestRec.Unit, 100*f4.Contribution[sfi.Corrected][largestRec.Unit],
		largestRec.LatchBits)
}
