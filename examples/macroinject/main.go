// Macroinject: gate-level macro SFI on the Awan-style netlist engine — the
// "what-if questions concerning the resilience of specific circuits,
// macros, or units" workflow from the paper's introduction. A
// parity-protected register macro is compiled to a levelized boolean
// program, every latch is flipped in turn, and the checker's coverage is
// measured, including the double-flip blind spot of single parity.
package main

import (
	"fmt"
	"math/rand/v2"

	"sfi/internal/awan"
)

func main() {
	nl := awan.NewNetlist()
	in := nl.InputBus("in", 32)
	load := nl.Input("load")
	q, par, errOut := nl.ParityRegister("reg", in, load)
	cnt := nl.Counter("heartbeat", 8)
	eng := awan.MustCompile(nl)

	fmt.Printf("macro netlist: %d gates, %d-instruction boolean program, %d latches\n\n",
		nl.Gates(), eng.ProgramLength(), len(q)+1+len(cnt))

	rng := rand.New(rand.NewPCG(9, 9))
	load0 := func(v uint64) {
		eng.SetInputBus(in, v)
		eng.SetInput(load, true)
		eng.Step()
		eng.SetInput(load, false)
		eng.Step()
	}

	// Single-flip campaign over every data latch plus the parity latch.
	detected, total := 0, 0
	targets := append(append(awan.Bus{}, q...), par)
	for _, l := range targets {
		load0(rng.Uint64())
		eng.FlipLatch(l)
		eng.Eval()
		total++
		if eng.Value(errOut) {
			detected++
		}
	}
	fmt.Printf("single-bit flips:  %d/%d detected by the continuous parity checker\n",
		detected, total)

	// Double-flip campaign: the known blind spot of single parity.
	detected2, trials := 0, 200
	for t := 0; t < trials; t++ {
		load0(rng.Uint64())
		i := rng.IntN(len(q))
		j := rng.IntN(len(q))
		for j == i {
			j = rng.IntN(len(q))
		}
		eng.FlipLatch(q[i])
		eng.FlipLatch(q[j])
		eng.Eval()
		if eng.Value(errOut) {
			detected2++
		}
	}
	fmt.Printf("double-bit flips:  %d/%d detected — single parity is blind to even-weight errors,\n",
		detected2, trials)
	fmt.Println("                   which is why the core's arrays use SECDED instead.")

	// The heartbeat counter is unprotected: flips silently change state.
	before := eng.BusValue(cnt)
	eng.FlipLatch(cnt[3])
	eng.Eval()
	fmt.Printf("\nunprotected counter: %d -> %d after one flip (no error signal) —\n",
		before, eng.BusValue(cnt))
	fmt.Println("exactly the class of control latches whose corruption causes hangs.")
}
