package sfi

import (
	"context"
	"testing"
)

// Facade and experiment-driver tests at reduced scale; the full-size runs
// live in cmd/sfi-tables and EXPERIMENTS.md.

func testRunner() RunnerConfig {
	cfg := DefaultRunnerConfig()
	cfg.AVP.Testcases = 6
	cfg.AVP.BodyOps = 14
	return cfg
}

func TestFacadeCampaign(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Runner = testRunner()
	cfg.Flips = 200
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 200 {
		t.Fatalf("total = %d", rep.Total)
	}
	if rep.Fraction(Vanished) < 0.7 {
		t.Errorf("vanished %.2f implausibly low", rep.Fraction(Vanished))
	}
}

// TestFacadeShardedCampaign drives the public shard-planning API the way a
// distributed deployment does: plan shards, run each independently, merge.
func TestFacadeShardedCampaign(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Runner = testRunner()
	cfg.Flips = 60
	whole, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	merged := &Report{}
	for _, sr := range PlanShards(cfg.Flips, 25) {
		scfg := cfg
		scfg.Shard = &sr
		rep, err := RunCampaignContext(context.Background(), scfg)
		if err != nil {
			t.Fatal(err)
		}
		merged.Merge(rep)
	}
	if merged.Total != whole.Total {
		t.Fatalf("merged total %d, whole %d", merged.Total, whole.Total)
	}
	for _, o := range Outcomes {
		if merged.Counts[o] != whole.Counts[o] {
			t.Errorf("%v: merged %d, whole %d", o, merged.Counts[o], whole.Counts[o])
		}
	}
}

func TestFig2ErrorShrinks(t *testing.T) {
	cfg := Fig2Config{
		Runner:  testRunner(),
		Sizes:   []int{80, 640},
		Samples: 6,
		Seed:    42,
	}
	r, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatal("missing points")
	}
	// The Figure 2 claim: relative stddev of the rarer categories falls
	// as the number of flips grows.
	small := r.Points[0].RelStd[Corrected]
	big := r.Points[1].RelStd[Corrected]
	if big > small {
		t.Errorf("corrected rel-stddev grew with sample size: %.3f -> %.3f", small, big)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTable2Shapes(t *testing.T) {
	cfg := Table2Config{
		Runner: testRunner(),
		Flips:  500,
		Beam:   DefaultBeamConfig(),
		Seed:   2,
	}
	cfg.Beam.Strikes = 300
	cfg.Beam.AVP.Testcases = 6
	cfg.Beam.AVP.BodyOps = 14
	r, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sv := r.SFI.Fraction(Vanished)
	bv, _, _ := r.Beam.Fractions()
	if sv < 0.85 || bv < 0.85 {
		t.Errorf("vanish fractions sfi %.2f beam %.2f", sv, bv)
	}
	// Table 2's point: SFI and beam proportions are close.
	if d := sv - bv; d > 0.08 || d < -0.08 {
		t.Errorf("SFI and beam vanish differ by %.3f", d)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig3AndFig4Shapes(t *testing.T) {
	cfg := Fig3Config{
		Runner:     testRunner(),
		Fraction:   0.015,
		MaxPerUnit: 300,
		Seed:       3,
	}
	f3, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.PerUnit) != len(Units) {
		t.Fatalf("%d units", len(f3.PerUnit))
	}
	var lsu, biggest UnitOutcome
	for _, u := range f3.PerUnit {
		if u.Fractions[Vanished] < 0.80 {
			t.Errorf("unit %s vanish %.2f below the paper's 90%% band (small-sample tolerance)",
				u.Unit, u.Fractions[Vanished])
		}
		if u.Unit == "LSU" {
			lsu = u
		}
		if u.LatchBits > biggest.LatchBits {
			biggest = u
		}
	}
	if biggest.Unit != "LSU" {
		t.Errorf("largest unit is %s, want LSU", biggest.Unit)
	}
	_ = lsu

	f4 := DeriveFig4(f3)
	for _, o := range []Outcome{Corrected, Hang, Checkstop} {
		sum := 0.0
		for _, u := range Units {
			sum += f4.Contribution[o][u]
		}
		if sum != 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("%v contributions sum to %.3f", o, sum)
		}
	}
	if f3.String() == "" || f4.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig5Shapes(t *testing.T) {
	cfg := Fig5Config{
		Runner:   testRunner(),
		Fraction: 0.02,
		MinPer:   150,
		Seed:     4,
	}
	r, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerType) != len(LatchTypes) {
		t.Fatalf("%d types", len(r.PerType))
	}
	frac := make(map[LatchType]float64)
	for _, ty := range r.PerType {
		frac[ty.Type] = ty.Fractions[Vanished]
	}
	// The Figure 5 claim: scan-only latches (MODE, GPTR) have larger
	// system impact than the FUNC read-write latches.
	if frac[LatchMode] > frac[LatchFunc] {
		t.Errorf("MODE vanish %.3f above FUNC %.3f", frac[LatchMode], frac[LatchFunc])
	}
	if frac[LatchGPTR] > frac[LatchFunc] {
		t.Errorf("GPTR vanish %.3f above FUNC %.3f", frac[LatchGPTR], frac[LatchFunc])
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := Table3Config{Runner: testRunner(), Flips: 500, Seed: 5}
	r, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Table 3's shape: Raw mode vanishes more, has no recoveries or
	// checkstops; Check mode converts some of that into visible events.
	if r.Raw.Fraction(Vanished) < r.Check.Fraction(Vanished) {
		t.Errorf("raw vanish %.3f < check vanish %.3f",
			r.Raw.Fraction(Vanished), r.Check.Fraction(Vanished))
	}
	if r.Raw.Counts[Corrected] != 0 || r.Raw.Counts[Checkstop] != 0 {
		t.Error("raw mode has machine-visible events")
	}
	if r.Check.Counts[Corrected] == 0 {
		t.Error("check mode produced no recoveries")
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTraceReportRendering(t *testing.T) {
	cfg := DefaultCampaignConfig()
	cfg.Runner = testRunner()
	cfg.Flips = 150
	cfg.Filter = ByGroupPrefix("lsu.erat")
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := TraceReport(rep, 10)
	if s == "" {
		t.Error("empty trace report")
	}
}

func TestBeamFacade(t *testing.T) {
	cfg := DefaultBeamConfig()
	cfg.AVP.Testcases = 6
	cfg.AVP.BodyOps = 14
	cfg.Strikes = 120
	cfg.MeanGap = 600
	cfg.SettleCycles = 3000
	rep, err := RunBeam(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strikes != 120 {
		t.Fatalf("strikes %d", rep.Strikes)
	}
}

// TestFig2MeansStable checks the paper's side observation: "the mean of the
// different randomly chosen samples for a given number of bit-flips were
// fairly constant" — the vanished-category mean fraction varies little
// across independent samples.
func TestFig2MeansStable(t *testing.T) {
	cfg := CampaignConfig{Runner: testRunner(), Flips: 300}
	var fracs []float64
	for s := 0; s < 5; s++ {
		cfg.Seed = uint64(1000 + s)
		rep, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fracs = append(fracs, rep.Fraction(Vanished))
	}
	lo, hi := fracs[0], fracs[0]
	for _, f := range fracs {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo > 0.06 {
		t.Errorf("vanished means spread %.3f..%.3f across samples (too unstable)", lo, hi)
	}
}
