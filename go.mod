module sfi

go 1.24
