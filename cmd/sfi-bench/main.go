// Command sfi-bench runs the repository's key performance benchmarks,
// parses their output and emits a machine-readable JSON record so the perf
// trajectory is tracked across PRs instead of only as prose in
// EXPERIMENTS.md:
//
//	sfi-bench -out BENCH_pr2.json
//
// With -guard it is the CI overhead gate for the observability layer: it
// measures the injection hot path with observability off (the no-op
// default) and fully on (metrics + trace sink) in interleaved rounds,
// fails if the no-op path regressed more than 5% against the recorded
// baseline, and fails if the metrics-on overhead exceeds 5%. It also runs
// a distributed-loopback paired measurement — the same campaign through a
// loopback coordinator with fleet observability off and on — and fails if
// the heartbeat-piggyback/trace-attach path costs more than 5% wall time.
// Since PR 6 it also pairs a scalar (BatchLanes=1) against a bit-parallel
// (64-lane) awan campaign and fails if the lane speedup falls below 8x.
// Since PR 7 it pairs a fixed-N campaign against the same campaign under
// the adaptive convergence stop (same seed, same margin) and fails unless
// the adaptive run converges with strictly fewer injections — the
// injections-saved claim is measured, not asserted. Since PR 8 it boots an
// in-process campaign server, submits two campaigns sharing a checkpoint
// image, and fails unless the warm-cache campaign boots at least 5x
// faster than the cold one. Since PR 9 it pairs the same bit-parallel awan
// campaign with campaign tracing off and on and fails if the span path
// (per-batch spans, ring, critical-path doc) costs more than 5% wall time.
// Since PR 10 it pairs two campaigns chasing the same stoppable target —
// every sampling stratum's interval within the margin or its census
// exhausted — one sampling uniformly, one under stratified Neyman
// allocation, and fails unless the stratified campaign reaches coverage
// with strictly fewer injections:
//
//	sfi-bench -guard -baseline BENCH_baseline.json
//
// A missing baseline file is recorded (first run on a new machine) rather
// than failed, and -record re-records it in place.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sfi"
	"sfi/internal/core"
	"sfi/internal/dist"
	"sfi/internal/obs"
	"sfi/internal/server"
	"sfi/internal/stats"
)

const tolerance = 0.05 // 5% regression / overhead budget

// laneSpeedupFloor is the PR 6 acceptance bar: one 64-lane model pass
// retires 63 injections, so even with divergence-tracking overhead the
// batched awan path must beat the scalar path by at least this factor.
const laneSpeedupFloor = 8.0

// cacheHitSpeedupFloor is the PR 8 acceptance bar: a campaign whose
// checkpoint image is already warm in the server's cache must reach its
// first injection (prototype acquisition: clone vs full build) at least
// this much faster than the cold campaign that built the image.
const cacheHitSpeedupFloor = 5.0

func main() {
	var (
		out      = flag.String("out", "", "write the full benchmark record to this JSON file")
		guard    = flag.Bool("guard", false, "run the observability overhead gate (exit 1 on >5% regression)")
		baseline = flag.String("baseline", "BENCH_baseline.json", "recorded BenchmarkInjection baseline for -guard")
		record   = flag.Bool("record", false, "re-record the -baseline file from this run")
		count    = flag.Int("count", 10, "paired measurement rounds (best-of is used)")
	)
	flag.Parse()

	if !*guard && *out == "" && !*record {
		fmt.Fprintln(os.Stderr, "sfi-bench: nothing to do (want -out, -guard or -record)")
		os.Exit(2)
	}
	if err := run(*out, *guard, *baseline, *record, *count); err != nil {
		fmt.Fprintln(os.Stderr, "sfi-bench:", err)
		os.Exit(1)
	}
}

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp float64
	metrics map[string]float64 // extra b.ReportMetric pairs, e.g. "inj/s"
}

// record is the BENCH_pr*.json wire format.
type benchRecord struct {
	Date string `json:"date"`
	Go   string `json:"go"`
	Host string `json:"host"`

	InjectionNsOp         float64 `json:"injection_ns_op"`
	InjectionsPerSec      float64 `json:"injections_per_sec"`
	InjectionObservedNsOp float64 `json:"injection_observed_ns_op"`
	ObsOverheadPct        float64 `json:"observability_overhead_pct"`

	RestoreDirtyNsOp float64 `json:"restore_dirty_ns_op"`
	RestoreFullNsOp  float64 `json:"restore_full_ns_op"`

	CampaignInjPerSec struct {
		WarmClones   float64 `json:"warm_clones"`
		FreshWorkers float64 `json:"fresh_workers"`
	} `json:"campaign_inj_per_sec"`

	DistLoopback struct {
		ObsOffMs    float64 `json:"obs_off_ms"`
		ObsOnMs     float64 `json:"obs_on_ms"`
		OverheadPct float64 `json:"overhead_pct"`
	} `json:"dist_loopback"`

	Tracing struct {
		OffMs       float64 `json:"off_ms"`
		OnMs        float64 `json:"on_ms"`
		OverheadPct float64 `json:"overhead_pct"`
	} `json:"tracing"`

	AwanLanes struct {
		ScalarInjPerSec float64 `json:"scalar_inj_per_sec"`
		LanesInjPerSec  float64 `json:"lanes_inj_per_sec"`
		LaneSpeedup     float64 `json:"lane_speedup"`
	} `json:"awan_lanes"`

	Adaptive struct {
		FixedFlips         int     `json:"fixed_flips"`
		AdaptiveFlips      int     `json:"adaptive_flips"`
		TargetMarginPct    float64 `json:"target_margin_pct"`
		InjectionsSavedPct float64 `json:"injections_saved_pct"`
	} `json:"adaptive"`

	Stratified struct {
		UniformFlips       int     `json:"uniform_flips"`
		StratifiedFlips    int     `json:"stratified_flips"`
		TargetMarginPct    float64 `json:"target_margin_pct"`
		InjectionsSavedPct float64 `json:"injections_saved_pct"`
	} `json:"stratified"`

	CacheHit struct {
		ColdSubmitToReportMs float64 `json:"cold_submit_to_report_ms"`
		WarmSubmitToReportMs float64 `json:"warm_submit_to_report_ms"`
		ColdBootMs           float64 `json:"cold_boot_ms"`
		WarmBootMs           float64 `json:"warm_boot_ms"`
		CacheHitSpeedup      float64 `json:"cache_hit_speedup"`
	} `json:"cache_hit"`
}

type baselineRecord struct {
	InjectionNsOp float64 `json:"injection_ns_op"`
	Recorded      string  `json:"recorded"`
	Go            string  `json:"go"`
}

func run(out string, guard bool, baselinePath string, record bool, count int) error {
	fmt.Fprintln(os.Stderr, "sfi-bench: measuring injection throughput (observability off/on)...")
	offNs, onNs, err := measureInjectionPaired(count)
	if err != nil {
		return err
	}
	overhead := (onNs - offNs) / offNs
	fmt.Fprintf(os.Stderr, "sfi-bench: injection %.0f ns/op off, %.0f ns/op on (overhead %+.2f%%)\n",
		offNs, onNs, 100*overhead)

	fmt.Fprintln(os.Stderr, "sfi-bench: measuring distributed loopback (fleet observability off/on)...")
	distOff, distOn, err := measureDistPaired(3)
	if err != nil {
		return err
	}
	distOverhead := (distOn - distOff) / distOff
	fmt.Fprintf(os.Stderr, "sfi-bench: dist loopback %.0f ms off, %.0f ms on (overhead %+.2f%%)\n",
		1000*distOff, 1000*distOn, 100*distOverhead)

	fmt.Fprintln(os.Stderr, "sfi-bench: measuring campaign tracing (spans off/on)...")
	traceOff, traceOn, err := measureTracingPaired(3)
	if err != nil {
		return err
	}
	traceOverhead := (traceOn - traceOff) / traceOff
	fmt.Fprintf(os.Stderr, "sfi-bench: tracing %.0f ms off, %.0f ms on (overhead %+.2f%%)\n",
		1000*traceOff, 1000*traceOn, 100*traceOverhead)

	fmt.Fprintln(os.Stderr, "sfi-bench: measuring awan campaign (scalar vs 64-lane batch)...")
	scalarInjS, lanesInjS, err := measureAwanLanesPaired(3)
	if err != nil {
		return err
	}
	laneSpeedup := lanesInjS / scalarInjS
	fmt.Fprintf(os.Stderr, "sfi-bench: awan %.0f inj/s scalar, %.0f inj/s lanes (%.1fx)\n",
		scalarInjS, lanesInjS, laneSpeedup)

	fmt.Fprintln(os.Stderr, "sfi-bench: measuring adaptive early-stop (fixed-N vs converge-at-margin)...")
	fixedFlips, adaptiveFlips, marginPct, err := measureAdaptive()
	if err != nil {
		return err
	}
	savedPct := 100 * float64(fixedFlips-adaptiveFlips) / float64(fixedFlips)
	fmt.Fprintf(os.Stderr, "sfi-bench: adaptive stop at %d of %d injections (%.1f%% saved at a %.1f-point margin)\n",
		adaptiveFlips, fixedFlips, savedPct, marginPct)

	fmt.Fprintln(os.Stderr, "sfi-bench: measuring stratum coverage (uniform vs Neyman-allocated sampling)...")
	uniformFlips, stratifiedFlips, stratMarginPct, err := measureStratified()
	if err != nil {
		return err
	}
	stratSavedPct := 100 * float64(uniformFlips-stratifiedFlips) / float64(uniformFlips)
	fmt.Fprintf(os.Stderr, "sfi-bench: stratified coverage at %d vs uniform %d injections (%.1f%% saved at a %.1f-point margin)\n",
		stratifiedFlips, uniformFlips, stratSavedPct, stratMarginPct)

	fmt.Fprintln(os.Stderr, "sfi-bench: measuring campaign-server checkpoint cache (cold vs warm image)...")
	cache, err := measureCacheHit()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sfi-bench: boot %.1f ms cold, %.2f ms warm (%.1fx); submit-to-report %.0f ms cold, %.0f ms warm\n",
		cache.coldBootMs, cache.warmBootMs, cache.speedup(), cache.coldMs, cache.warmMs)

	if guard || record {
		gerr := runGuard(baselinePath, record, offNs, overhead, distOverhead, traceOverhead, laneSpeedup, cache.speedup())
		if gerr != nil && !record {
			// One fresh measurement before failing: a transient load burst
			// inflates both measurements and passes the retry, while a real
			// regression fails twice.
			fmt.Fprintln(os.Stderr, "sfi-bench: guard failed, re-measuring once to rule out transient load...")
			off2, on2, merr := measureInjectionPaired(count)
			if merr != nil {
				return merr
			}
			dOff2, dOn2, merr := measureDistPaired(3)
			if merr != nil {
				return merr
			}
			tOff2, tOn2, merr := measureTracingPaired(3)
			if merr != nil {
				return merr
			}
			sc2, ln2, merr := measureAwanLanesPaired(3)
			if merr != nil {
				return merr
			}
			cache2, merr := measureCacheHit()
			if merr != nil {
				return merr
			}
			offNs, onNs = min(offNs, off2), min(onNs, on2)
			distOff, distOn = min(distOff, dOff2), min(distOn, dOn2)
			traceOff, traceOn = min(traceOff, tOff2), min(traceOn, tOn2)
			scalarInjS, lanesInjS = max(scalarInjS, sc2), max(lanesInjS, ln2)
			if cache2.speedup() > cache.speedup() {
				cache = cache2
			}
			overhead = (onNs - offNs) / offNs
			distOverhead = (distOn - distOff) / distOff
			traceOverhead = (traceOn - traceOff) / traceOff
			laneSpeedup = lanesInjS / scalarInjS
			gerr = runGuard(baselinePath, false, offNs, overhead, distOverhead, traceOverhead, laneSpeedup, cache.speedup())
		}
		if gerr != nil {
			return gerr
		}
	}
	if out == "" {
		return nil
	}

	fmt.Fprintln(os.Stderr, "sfi-bench: measuring checkpoint restore...")
	restoreOut, err := goBench("./internal/engine/p6lite", "^BenchmarkRestoreCheckpoint$", "300x", 1)
	if err != nil {
		return err
	}
	restores := parseBench(restoreOut)
	dirty, err := best(restores, "BenchmarkRestoreCheckpoint/dirty")
	if err != nil {
		return err
	}
	full, err := best(restores, "BenchmarkRestoreCheckpoint/full")
	if err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "sfi-bench: measuring campaign throughput...")
	campOut, err := goBench(".", "^BenchmarkCampaignThroughput$", "1x", 1)
	if err != nil {
		return err
	}
	camps := parseBench(campOut)
	warm, err := best(camps, "BenchmarkCampaignThroughput/warm-clones")
	if err != nil {
		return err
	}
	fresh, err := best(camps, "BenchmarkCampaignThroughput/fresh-workers")
	if err != nil {
		return err
	}

	rec := benchRecord{
		Date:                  time.Now().UTC().Format(time.RFC3339),
		Go:                    runtime.Version(),
		Host:                  fmt.Sprintf("%s/%s x%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		InjectionNsOp:         offNs,
		InjectionsPerSec:      1e9 / offNs,
		InjectionObservedNsOp: onNs,
		ObsOverheadPct:        100 * overhead,
		RestoreDirtyNsOp:      dirty.nsPerOp,
		RestoreFullNsOp:       full.nsPerOp,
	}
	rec.CampaignInjPerSec.WarmClones = warm.metrics["inj/s"]
	rec.CampaignInjPerSec.FreshWorkers = fresh.metrics["inj/s"]
	rec.DistLoopback.ObsOffMs = 1000 * distOff
	rec.DistLoopback.ObsOnMs = 1000 * distOn
	rec.DistLoopback.OverheadPct = 100 * distOverhead
	rec.Tracing.OffMs = 1000 * traceOff
	rec.Tracing.OnMs = 1000 * traceOn
	rec.Tracing.OverheadPct = 100 * traceOverhead
	rec.AwanLanes.ScalarInjPerSec = scalarInjS
	rec.AwanLanes.LanesInjPerSec = lanesInjS
	rec.AwanLanes.LaneSpeedup = laneSpeedup
	rec.Adaptive.FixedFlips = fixedFlips
	rec.Adaptive.AdaptiveFlips = adaptiveFlips
	rec.Adaptive.TargetMarginPct = marginPct
	rec.Adaptive.InjectionsSavedPct = savedPct
	rec.Stratified.UniformFlips = uniformFlips
	rec.Stratified.StratifiedFlips = stratifiedFlips
	rec.Stratified.TargetMarginPct = stratMarginPct
	rec.Stratified.InjectionsSavedPct = stratSavedPct
	rec.CacheHit.ColdSubmitToReportMs = cache.coldMs
	rec.CacheHit.WarmSubmitToReportMs = cache.warmMs
	rec.CacheHit.ColdBootMs = cache.coldBootMs
	rec.CacheHit.WarmBootMs = cache.warmBootMs
	rec.CacheHit.CacheHitSpeedup = cache.speedup()

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sfi-bench: wrote %s\n", out)
	return nil
}

// runGuard enforces the four 5% budgets — no-op-observability regression
// against the recorded baseline, metrics-on overhead against the in-run
// metrics-off measurement, fleet-observability (heartbeat piggyback +
// trace attach) overhead on the distributed loopback path, campaign-span
// tracing overhead on the batch path — plus the 8x floor on the
// bit-parallel awan lane speedup and the 5x floor on the campaign
// server's warm checkpoint-cache boot speedup.
func runGuard(path string, record bool, offNsOp, overhead, distOverhead, traceOverhead, laneSpeedup, cacheSpeedup float64) error {
	if overhead > tolerance {
		return fmt.Errorf("observability overhead %.2f%% exceeds the %.0f%% budget",
			100*overhead, 100*tolerance)
	}
	if distOverhead > tolerance {
		return fmt.Errorf("distributed fleet-observability overhead %.2f%% exceeds the %.0f%% budget",
			100*distOverhead, 100*tolerance)
	}
	if traceOverhead > tolerance {
		return fmt.Errorf("campaign tracing overhead %.2f%% exceeds the %.0f%% budget",
			100*traceOverhead, 100*tolerance)
	}
	if laneSpeedup < laneSpeedupFloor {
		return fmt.Errorf("awan lane speedup %.1fx is below the %.0fx floor",
			laneSpeedup, laneSpeedupFloor)
	}
	if cacheSpeedup < cacheHitSpeedupFloor {
		return fmt.Errorf("warm checkpoint-cache boot speedup %.1fx is below the %.0fx floor",
			cacheSpeedup, cacheHitSpeedupFloor)
	}
	data, err := os.ReadFile(path)
	switch {
	case record || os.IsNotExist(err):
		base := baselineRecord{
			InjectionNsOp: offNsOp,
			Recorded:      time.Now().UTC().Format(time.RFC3339),
			Go:            runtime.Version(),
		}
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sfi-bench: recorded baseline %.0f ns/op to %s\n", offNsOp, path)
		return nil
	case err != nil:
		return err
	}
	var base baselineRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if base.InjectionNsOp <= 0 {
		return fmt.Errorf("baseline %s has no injection_ns_op", path)
	}
	delta := (offNsOp - base.InjectionNsOp) / base.InjectionNsOp
	fmt.Fprintf(os.Stderr, "sfi-bench: no-op path %.0f ns/op vs baseline %.0f (%+.2f%%)\n",
		offNsOp, base.InjectionNsOp, 100*delta)
	if delta > tolerance {
		return fmt.Errorf("BenchmarkInjection with no-op observability regressed %.2f%% "+
			"vs the recorded baseline (budget %.0f%%; re-record with sfi-bench -record "+
			"if the baseline is stale)", 100*delta, 100*tolerance)
	}
	fmt.Fprintln(os.Stderr, "sfi-bench: overhead guard passed")
	return nil
}

// measureInjectionPaired times the single-injection hot path with
// observability off and on. The two sides alternate in rounds on the SAME
// runner over the SAME bit sequence, and the minimum per-injection time
// across rounds is kept for each side. Interleaving means a load burst on
// the host degrades both sides of a round equally instead of poisoning one
// — running the off and on benchmarks back-to-back (as `go test -count`
// does) was observed to report ±25% phantom overhead on a busy box.
// BenchmarkInjection/BenchmarkInjectionObserved remain the `go test`-native
// view of the same comparison.
func measureInjectionPaired(rounds int) (offNs, onNs float64, err error) {
	cfg := sfi.DefaultRunnerConfig()
	cfg.AVP.Testcases = 8 // benchRunner() scale: small AVP, full model
	cfg.AVP.BodyOps = 24
	r, err := sfi.NewRunner(cfg)
	if err != nil {
		return 0, 0, err
	}
	names := make([]string, len(sfi.Outcomes)+1)
	for _, o := range sfi.Outcomes {
		names[int(o)] = o.String()
	}
	m := obs.New(names)
	sink := obs.NewTraceSink(io.Discard, obs.TraceOptions{})
	total := r.DB().TotalBits()

	const perRound = 100
	bit := func(i int) int { return (i * 7919) % total }
	phase := func(start int) time.Duration {
		t0 := time.Now()
		for i := 0; i < perRound; i++ {
			r.RunInjection(bit(start + i))
		}
		return time.Since(t0)
	}
	for i := 0; i < perRound; i++ { // warm caches and the dirty-restore path
		r.RunInjection(bit(i))
	}
	offBest, onBest := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < rounds; round++ {
		start := round * perRound
		r.SetObs(nil, nil)
		if d := phase(start); d < offBest {
			offBest = d
		}
		r.SetObs(m, sink)
		if d := phase(start); d < onBest {
			onBest = d
		}
	}
	return float64(offBest.Nanoseconds()) / perRound,
		float64(onBest.Nanoseconds()) / perRound, nil
}

// runDistLoopback executes one small distributed campaign — an in-process
// coordinator on a loopback listener, two real RunWorker loops over the
// real HTTP protocol — and returns its wall time. With obsOn, workers run
// the full fleet-observability path (shard metrics, heartbeat snapshot
// deltas, trace attachment); otherwise the NoObs path, which is PR 3's
// behavior.
func runDistLoopback(obsOn bool) (time.Duration, error) {
	rc := sfi.DefaultRunnerConfig()
	rc.AVP.Testcases = 8
	rc.AVP.BodyOps = 24
	coord, err := dist.NewCoordinator(dist.CoordConfig{
		Campaign: dist.CampaignSpec{
			Runner:       rc,
			Seed:         7,
			Flips:        480,
			ShardWorkers: 1,
		},
		ShardSize: 60,
		// Short TTL so heartbeats (at TTL/3) actually fire mid-shard and
		// the piggyback path is exercised, not idle.
		LeaseTTL: 300 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	start := time.Now()
	workerErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			workerErr <- dist.RunWorker(ctx, dist.WorkerConfig{
				Coordinator: "http://" + ln.Addr().String(),
				ID:          fmt.Sprintf("bench-%d", i),
				PollEvery:   20 * time.Millisecond,
				NoObs:       !obsOn,
			})
		}(i)
	}
	if _, err := coord.Wait(ctx); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	for i := 0; i < 2; i++ {
		if werr := <-workerErr; werr != nil {
			return 0, werr
		}
	}
	return elapsed, nil
}

// measureDistPaired times the distributed loopback campaign with fleet
// observability off and on in interleaved rounds (same rationale as
// measureInjectionPaired), keeping the best wall time of each side. The
// measured delta is the cost of shard metrics collection, heartbeat delta
// piggybacking and completion trace attachment.
func measureDistPaired(rounds int) (offSec, onSec float64, err error) {
	offBest, onBest := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < rounds; round++ {
		d, err := runDistLoopback(false)
		if err != nil {
			return 0, 0, err
		}
		if d < offBest {
			offBest = d
		}
		d, err = runDistLoopback(true)
		if err != nil {
			return 0, 0, err
		}
		if d < onBest {
			onBest = d
		}
	}
	return offBest.Seconds(), onBest.Seconds(), nil
}

// measureTracingPaired times the same bit-parallel awan campaign with
// campaign tracing off (no tracer: every span site is a nil no-op) and on
// (a live tracer minting per-batch engine spans into the bounded ring,
// plus the TraceDoc build at the end) in interleaved rounds, keeping the
// best wall time of each side. The batch path is the worst case for span
// overhead: one span per model pass is the highest span rate any layer
// produces. Each round cross-checks that both sides classified
// identically — tracing must never perturb campaign results.
func measureTracingPaired(rounds int) (offSec, onSec float64, err error) {
	config := func() sfi.CampaignConfig {
		c := sfi.DefaultCampaignConfig()
		c.Runner.Backend = "awan"
		c.Runner.Awan.Width = 8
		c.Runner.Awan.Lanes = 16
		c.Seed = 9
		c.Flips = 384
		c.Workers = 1
		return c
	}
	side := func(traced bool) (time.Duration, *sfi.Report, error) {
		cfg := config()
		var tracer *sfi.Tracer
		if traced {
			tracer = sfi.NewTracer(cfg.Seed)
			cfg.Obs.Tracer = tracer
		}
		t0 := time.Now()
		rep, err := sfi.RunCampaign(cfg)
		if err != nil {
			return 0, nil, err
		}
		elapsed := time.Since(t0)
		if traced {
			if doc := tracer.Doc(); doc.Root == nil || doc.Spans == 0 {
				return 0, nil, fmt.Errorf("traced campaign recorded no span tree")
			}
		}
		return elapsed, rep, nil
	}
	offBest, onBest := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < rounds; round++ {
		d, offRep, err := side(false)
		if err != nil {
			return 0, 0, err
		}
		offBest = min(offBest, d)
		d, onRep, err := side(true)
		if err != nil {
			return 0, 0, err
		}
		onBest = min(onBest, d)
		if !reflect.DeepEqual(offRep.Counts, onRep.Counts) {
			return 0, 0, fmt.Errorf("tracing perturbed campaign results: "+
				"untraced counts %v, traced counts %v", offRep.Counts, onRep.Counts)
		}
	}
	return offBest.Seconds(), onBest.Seconds(), nil
}

// measureAwanLanesPaired times the same gate-level campaign through the
// scalar path (BatchLanes=1) and the bit-parallel 64-lane batch path in
// interleaved rounds, keeping the best inj/s of each side. Both sides use
// the same seed, sample and worker count, so the ratio isolates the lane
// packing itself; each round also cross-checks that the two paths produced
// identical outcome totals, making the speedup claim about equivalent work.
func measureAwanLanesPaired(rounds int) (scalarInjS, lanesInjS float64, err error) {
	config := func(batchLanes int) sfi.CampaignConfig {
		c := sfi.DefaultCampaignConfig()
		c.Runner.Backend = "awan"
		c.Runner.Awan.Width = 8
		c.Runner.Awan.Lanes = 16
		c.Runner.BatchLanes = batchLanes
		c.Seed = 9
		c.Flips = 384
		c.Workers = 1
		return c
	}
	side := func(batchLanes int) (float64, *sfi.Report, error) {
		cfg := config(batchLanes)
		t0 := time.Now()
		rep, err := sfi.RunCampaign(cfg)
		if err != nil {
			return 0, nil, err
		}
		return float64(cfg.Flips) / time.Since(t0).Seconds(), rep, nil
	}
	for round := 0; round < rounds; round++ {
		sInjS, sRep, err := side(1)
		if err != nil {
			return 0, 0, err
		}
		lInjS, lRep, err := side(0)
		if err != nil {
			return 0, 0, err
		}
		if !reflect.DeepEqual(sRep.Counts, lRep.Counts) {
			return 0, 0, fmt.Errorf("awan lane measurement is not comparing equivalent work: "+
				"scalar counts %v, lane counts %v", sRep.Counts, lRep.Counts)
		}
		scalarInjS = max(scalarInjS, sInjS)
		lanesInjS = max(lanesInjS, lInjS)
	}
	return scalarInjS, lanesInjS, nil
}

// measureAdaptive runs the same campaign twice — once with the classic
// fixed flip budget, once with the adaptive convergence stop at a 5-point
// margin — and returns both injection counts. It fails (rather than
// recording a number) if the fixed run did not exhaust its budget, if the
// adaptive run did not converge, if any class interval ended wider than
// the margin, or if the adaptive run saved nothing: the injections-saved
// claim is a correctness gate, not just a datapoint.
func measureAdaptive() (fixedFlips, adaptiveFlips int, marginPct float64, err error) {
	const targetMargin = 0.05
	config := func() sfi.CampaignConfig {
		c := sfi.DefaultCampaignConfig()
		c.Runner.AVP.Testcases = 8
		c.Runner.AVP.BodyOps = 24
		c.Seed = 7
		c.Flips = 4000
		c.Workers = 2
		return c
	}
	fixedCfg := config()
	fixedRep, err := sfi.RunCampaign(fixedCfg)
	if err != nil {
		return 0, 0, 0, err
	}
	if fixedRep.Total != fixedCfg.Flips {
		return 0, 0, 0, fmt.Errorf("fixed-N campaign ran %d of %d injections", fixedRep.Total, fixedCfg.Flips)
	}
	adaptiveCfg := config()
	adaptiveCfg.Stop = sfi.StopConfig{TargetMargin: targetMargin, StopOnConverge: true}
	adaptiveRep, err := sfi.RunCampaign(adaptiveCfg)
	if err != nil {
		return 0, 0, 0, err
	}
	c := adaptiveRep.Convergence
	if c == nil || !c.Converged {
		return 0, 0, 0, fmt.Errorf("adaptive campaign did not converge within the %d-injection budget", adaptiveCfg.Flips)
	}
	for _, ci := range c.Classes {
		if ci.Width > targetMargin {
			return 0, 0, 0, fmt.Errorf("adaptive campaign stopped with class %s at width %.4f (target %.4f)",
				ci.Class, ci.Width, targetMargin)
		}
	}
	if adaptiveRep.Total >= fixedRep.Total {
		return 0, 0, 0, fmt.Errorf("adaptive stop saved nothing: %d vs fixed %d injections",
			adaptiveRep.Total, fixedRep.Total)
	}
	return fixedRep.Total, adaptiveRep.Total, 100 * targetMargin, nil
}

// measureStratified pairs two campaigns chasing the same stoppable target —
// every sampling stratum of the plan within the target margin, or its
// census exhausted — and returns how many injections each needed. The
// uniform side replays the campaign's own uniform bit sample one injection
// at a time into a strata-gated estimator and stops the moment coverage is
// reached; the stratified side is a real Neyman-allocated adaptive
// campaign at the same seed, margin and confidence. Small strata are where
// the two diverge: uniform sampling hits a 32-latch GPTR stratum once per
// ~2000 draws, while the allocator just walks its census. It fails (rather
// than recording a number) if either side misses coverage, if any stratum
// of the stratified report ends past the margin without exhausting its
// census, or if stratified sampling saved nothing — the time-to-coverage
// claim is a correctness gate, not just a datapoint.
func measureStratified() (uniformFlips, stratifiedFlips int, marginPct float64, err error) {
	const targetMargin = 0.10
	const seed = 7
	rc := sfi.DefaultRunnerConfig()
	rc.AVP.Testcases = 4 // sample counts, not ns/op: the smaller AVP only shortens the run
	rc.AVP.BodyOps = 12
	names := make([]string, len(sfi.Outcomes)+1)
	for _, o := range sfi.Outcomes {
		names[int(o)] = o.String()
	}
	rule := stats.StopRule{TargetMargin: targetMargin, Strata: true}

	// Uniform side: the pooled sample in its deterministic order, counted
	// until every stratum is covered. The sample is drawn without
	// replacement, so the full census is a hard upper bound and coverage is
	// guaranteed; the interesting number is how early it lands.
	r, err := sfi.NewRunner(rc)
	if err != nil {
		return 0, 0, 0, err
	}
	db := r.DB()
	plan := core.BuildSamplePlan(db, seed, nil)
	est := stats.NewEstimator(names, rule)
	est.TrackStrata(plan.Populations())
	for _, bit := range core.SampleCampaignBits(db, seed, db.TotalBits(), nil) {
		res := r.RunInjection(bit)
		est.ObserveStratum(int(res.Outcome), res.Unit, res.LatchType.String(), core.StratumKey(res.Unit, res.LatchType))
		uniformFlips++
		if est.Converged() {
			break
		}
	}
	if !est.Converged() {
		return 0, 0, 0, fmt.Errorf("uniform sampling missed stratum coverage after its full %d-bit census", uniformFlips)
	}

	// Stratified side: the real adaptive campaign under Neyman allocation,
	// stopping at the first epoch boundary with full stratum coverage.
	cfg := sfi.DefaultCampaignConfig()
	cfg.Runner = rc
	cfg.Seed = seed
	cfg.Flips = 12000
	cfg.Workers = 2
	cfg.Stop = sfi.StopConfig{TargetMargin: targetMargin, StopOnConverge: true}
	cfg.Alloc = sfi.AllocConfig{Mode: sfi.AllocNeyman, Epochs: 12}
	rep, err := sfi.RunCampaign(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	if rep.Convergence == nil || !rep.Convergence.Converged {
		return 0, 0, 0, fmt.Errorf("stratified campaign missed stratum coverage within its %d-injection budget", cfg.Flips)
	}
	for key, pop := range plan.Populations() {
		counts := stats.StratumCounts{Counts: make(map[string]int64)}
		for outcome, n := range rep.ByStratum[key] {
			counts.Counts[outcome.String()] += int64(n)
			counts.Total += int64(n)
		}
		if !rule.StratumConverged(names, counts, pop) {
			return 0, 0, 0, fmt.Errorf("stratified campaign stopped with stratum %s uncovered (%d of %d drawn)",
				key, counts.Total, pop)
		}
	}
	stratifiedFlips = rep.Total
	if stratifiedFlips >= uniformFlips {
		return 0, 0, 0, fmt.Errorf("stratified allocation saved nothing: %d vs uniform %d injections to coverage",
			stratifiedFlips, uniformFlips)
	}
	return uniformFlips, stratifiedFlips, 100 * targetMargin, nil
}

// cacheResult is one cold/warm campaign-server measurement pair.
type cacheResult struct {
	coldMs, warmMs         float64 // submit-to-report wall latency
	coldBootMs, warmBootMs float64 // prototype acquisition (build vs clone)
}

// speedup is the warm-cache boot speedup: how much faster the second
// campaign reached its first injection because the checkpoint image was
// cloned instead of rebuilt.
func (c cacheResult) speedup() float64 {
	if c.warmBootMs <= 0 {
		return 0
	}
	return c.coldBootMs / c.warmBootMs
}

// measureCacheHit boots an in-process campaign server and submits two
// campaigns that differ only in sampling seed: same backend, same
// workload, same config digest. The first builds the checkpoint image
// cold; the second must hit the warm cache and boot from a clone. Both
// latencies are measured submit-to-report; the gated ratio is the boot
// phase (prototype acquisition), which is what the cache actually
// accelerates.
func measureCacheHit() (cacheResult, error) {
	dir, err := os.MkdirTemp("", "sfi-bench-cache-*")
	if err != nil {
		return cacheResult{}, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{Dir: dir, MaxConcurrent: 1, PollEvery: time.Millisecond})
	if err != nil {
		return cacheResult{}, err
	}
	defer srv.Close()

	spec := func(seed uint64) server.Spec {
		rc := sfi.DefaultRunnerConfig()
		rc.AVP.Testcases = 8 // benchRunner() scale: small AVP, full model
		rc.AVP.BodyOps = 24
		return server.Spec{
			Campaign:  dist.CampaignSpec{Runner: rc, Seed: seed, Flips: 64},
			ShardSize: 64,
		}
	}
	runOne := func(seed uint64) (ms, bootMs float64, hit bool, err error) {
		t0 := time.Now()
		c, err := srv.Submit(spec(seed))
		if err != nil {
			return 0, 0, false, err
		}
		deadline := time.Now().Add(5 * time.Minute)
		for c.State != server.StateDone {
			if c.State == server.StateFailed || c.State == server.StateCancelled {
				return 0, 0, false, fmt.Errorf("cache measurement campaign %s: %s", c.State, c.Error)
			}
			if time.Now().After(deadline) {
				return 0, 0, false, fmt.Errorf("cache measurement campaign stuck in %s", c.State)
			}
			time.Sleep(time.Millisecond)
			c, _ = srv.Get(c.ID)
		}
		return float64(time.Since(t0).Nanoseconds()) / 1e6, c.BootMs, c.ImageHit, nil
	}

	var res cacheResult
	var hit bool
	if res.coldMs, res.coldBootMs, hit, err = runOne(7); err != nil {
		return res, err
	}
	if hit {
		return res, fmt.Errorf("cold submission reported a warm-cache hit")
	}
	if res.warmMs, res.warmBootMs, hit, err = runOne(8); err != nil {
		return res, err
	}
	if !hit {
		return res, fmt.Errorf("warm submission missed the checkpoint cache " +
			"(the speedup would compare two cold boots)")
	}
	return res, nil
}

// goBench runs the selected benchmarks and returns the combined output.
func goBench(pkg, pattern, benchtime string, count int) (string, error) {
	args := []string{"test", "-run", "xxx", "-bench", pattern,
		"-benchtime", benchtime, "-count", strconv.Itoa(count), pkg}
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), nil
}

// benchLine matches `BenchmarkName[-P]  N  123 ns/op  456 unit ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts every benchmark result line from go test output.
func parseBench(out string) map[string][]sample {
	res := make(map[string][]sample)
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		s := sample{metrics: make(map[string]float64)}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				s.nsPerOp = v
			} else {
				s.metrics[fields[i+1]] = v
			}
		}
		res[m[1]] = append(res[m[1]], s)
	}
	return res
}

// best returns the fastest (minimum ns/op) sample for a benchmark; for
// throughput metrics it keeps the maximum observed value of each metric.
func best(samples map[string][]sample, name string) (sample, error) {
	ss := samples[name]
	if len(ss) == 0 {
		return sample{}, fmt.Errorf("no result for %s", name)
	}
	out := ss[0]
	for _, s := range ss[1:] {
		if s.nsPerOp < out.nsPerOp {
			out.nsPerOp = s.nsPerOp
		}
		for k, v := range s.metrics {
			if v > out.metrics[k] {
				out.metrics[k] = v
			}
		}
	}
	return out, nil
}
