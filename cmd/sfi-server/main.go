// Command sfi-server runs the persistent campaign service: a daemon that
// accepts fault-injection campaigns over a REST API, queues them with
// weighted fair sharing across tenants, executes them on the embedded
// dist coordinator/worker machinery, and keeps everything durable in a
// content-addressed store. Identical specs are answered from the store
// without re-running; campaigns sharing a (backend, workload, config)
// checkpoint image boot from a warm cached clone; a restarted server
// resumes interrupted campaigns from their shard journals.
//
//	POST   /v1/campaigns                submit {"tenant": ..., "campaign": {...}}
//	GET    /v1/campaigns                list
//	GET    /v1/campaigns/{id}           one record
//	DELETE /v1/campaigns/{id}           cancel
//	GET    /v1/campaigns/{id}/status    record + live coordinator fleet view
//	GET    /v1/campaigns/{id}/report    stored report document
//	GET    /v1/campaigns/{id}/events    shard trace (JSONL)
//	GET    /v1/campaigns/{id}/trace     span tree, critical path, latency attribution
//	       /v1/campaigns/{id}/coord/... lease passthrough for external workers
//	GET    /v1/traces                   per-campaign trace summaries
//	GET    /v1/status                   queue depth, tenant shares, cache stats
//	GET    /metrics                     Prometheus text exposition (incl. span histograms)
//
// Examples:
//
//	sfi-server -addr :8440 -store /var/lib/sfi
//	sfi-server -addr :8440 -store ./campaigns -max-campaigns 4 \
//	    -tenant-weight ci=1 -tenant-weight interactive=3
//
// Then submit and follow with the sfi client:
//
//	sfi submit -server http://localhost:8440 -flips 100000 -margin 1 -stop-on-converge
//	sfi status -server http://localhost:8440 <id>
//	sfi report -server http://localhost:8440 <id>
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sfi/internal/obs"
	"sfi/internal/server"

	_ "sfi/internal/engine/awan"   // registered backends campaigns may name
	_ "sfi/internal/engine/p6lite" // default backend
)

// weightFlag collects repeated -tenant-weight name=weight pairs.
type weightFlag map[string]float64

func (w weightFlag) String() string {
	parts := make([]string, 0, len(w))
	for name, weight := range w {
		parts = append(parts, fmt.Sprintf("%s=%g", name, weight))
	}
	return strings.Join(parts, ",")
}

func (w weightFlag) Set(s string) error {
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("want name=weight, got %q", pair)
		}
		weight, err := strconv.ParseFloat(val, 64)
		if err != nil || weight <= 0 {
			return fmt.Errorf("weight for %q must be a positive number, got %q", name, val)
		}
		w[name] = weight
	}
	return nil
}

func main() {
	weights := weightFlag{}
	var (
		addr      = flag.String("addr", ":8440", "listen address for the campaign REST API")
		dir       = flag.String("store", "sfi-store", "content-addressed store directory (reports, journals, campaign records)")
		maxConc   = flag.Int("max-campaigns", 2, "campaigns running concurrently; the rest queue")
		shardSize = flag.Int("shard-size", 0, "default injections per shard for campaigns that don't set one (0 = ~64 shards)")
		leaseTTL  = flag.Duration("lease-ttl", 2*time.Second, "shard lease TTL of embedded campaign coordinators")
		cacheSize = flag.Int("image-cache", 4, "warm checkpoint images kept for cloning into campaigns")
		logLevel  = flag.String("log-level", "info", "event log level (debug, info, warn, error)")
		logText   = flag.Bool("log-text", false, "logfmt-style text event logs instead of JSON")
		drain     = flag.Duration("drain", 5*time.Second, "HTTP drain budget on shutdown")
		httpAddr  = flag.String("http", "", "serve /debug/pprof and /debug/vars (expvar) on this separate address")
	)
	flag.Var(weights, "tenant-weight", "fair-share weight as name=weight (repeatable or comma-separated; unlisted tenants get 1)")
	flag.Parse()

	if err := run(*addr, *httpAddr, server.Config{
		Dir:            *dir,
		MaxConcurrent:  *maxConc,
		TenantWeights:  weights,
		ShardSize:      *shardSize,
		LeaseTTL:       *leaseTTL,
		ImageCacheSize: *cacheSize,
	}, *logLevel, *logText, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "sfi-server:", err)
		os.Exit(1)
	}
}

func run(addr, httpAddr string, cfg server.Config, logLevel string, logText bool, drain time.Duration) error {
	level, err := obs.ParseLogLevel(logLevel)
	if err != nil {
		return err
	}
	log := obs.NewLogger(os.Stderr, level, !logText)
	cfg.Log = log

	s, err := server.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		s.Close()
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	log.Info("campaign server listening", "addr", ln.Addr().String(), "store", cfg.Dir,
		"max_campaigns", cfg.MaxConcurrent)

	// Debug listener, kept off the API address so operational surfaces
	// (pprof heap dumps, expvar) never share a port with tenant traffic.
	// pprof and expvar register themselves on the default mux at init.
	if httpAddr != "" {
		dln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			s.Close()
			return err
		}
		go http.Serve(dln, nil) //nolint:errcheck
		log.Info("debug listener up", "addr", dln.Addr().String(),
			"endpoints", "/debug/pprof, /debug/vars")
	}

	// SIGTERM and ^C both drain gracefully: stop accepting requests, then
	// interrupt running campaigns so their journals seal — a restarted
	// server resumes them shard-for-shard.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Info("shutting down", "drain", drain.String())

	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	srv.Shutdown(sctx) //nolint:errcheck // past the deadline Close semantics apply
	s.Close()
	log.Info("campaign server stopped")
	return nil
}
