// Command sfi-worker executes shards of a distributed fault-injection
// campaign on behalf of an sfi-coord coordinator. It polls for shard
// leases, builds and warms the model once, runs each leased shard over the
// warm-clone worker pool, heartbeats while it works, and posts the shard
// report back. It exits cleanly when the coordinator declares the campaign
// over.
//
// Example:
//
//	sfi-worker -coord http://coordhost:8430 -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"sfi/internal/dist"
)

func main() {
	var (
		coord   = flag.String("coord", "http://localhost:8430", "coordinator base URL")
		id      = flag.String("id", "", "worker id (default host-pid)")
		workers = flag.Int("workers", 0, "concurrent model copies per shard (0 = campaign default)")
		poll    = flag.Duration("poll", 250*time.Millisecond, "lease poll period when no shard is available")
		quiet   = flag.Bool("quiet", false, "suppress per-shard logs")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	if err := dist.RunWorker(ctx, dist.WorkerConfig{
		Coordinator: *coord,
		ID:          *id,
		Workers:     *workers,
		PollEvery:   *poll,
		Logf:        logf,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sfi-worker:", err)
		os.Exit(1)
	}
}
