// Command sfi-worker executes shards of a distributed fault-injection
// campaign on behalf of an sfi-coord coordinator. It polls for shard
// leases, builds and warms the model once, runs each leased shard over the
// warm-clone worker pool, heartbeats while it works — piggybacking metric
// deltas that feed the coordinator's live fleet view — and posts the shard
// report (with a sampled trace segment attached) back. It exits cleanly
// when the coordinator declares the campaign over.
//
// Lifecycle events go to stderr as structured JSON logs; -http serves
// worker-local debug views (/debug/pprof, /debug/vars, /metrics,
// /progress) while shards run.
//
// Example:
//
//	sfi-worker -coord http://coordhost:8430 -workers 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"time"

	"sfi"
	"sfi/internal/dist"
	"sfi/internal/obs"
)

func main() {
	var (
		coord    = flag.String("coord", "http://localhost:8430", "coordinator base URL")
		id       = flag.String("id", "", "worker id (default host-pid)")
		workers  = flag.Int("workers", 0, "concurrent model copies per shard (0 = campaign default)")
		poll     = flag.Duration("poll", 250*time.Millisecond, "lease poll period when no shard is available")
		trace    = flag.String("trace", "", "local JSONL injection trace file ('' = off)")
		sample   = flag.Int("trace-sample", 0, "record every Nth injection to -trace (0 = all)")
		attach   = flag.Int("trace-attach", 32, "sampled trace lines attached per shard completion (negative = off)")
		spans    = flag.Int("span-attach", 512, "campaign spans attached per shard completion when the coordinator traces (negative = disable span recording)")
		logLevel = flag.String("log-level", "info", "event log level (debug, info, warn, error)")
		logText  = flag.Bool("log-text", false, "logfmt-style text event logs instead of JSON")
		httpAddr = flag.String("http", "", "debug listener: /debug/vars, /debug/pprof, /metrics, /progress")
		quiet    = flag.Bool("quiet", false, "warnings and errors only")
	)
	flag.Parse()

	if err := run(workerArgs{
		coord: *coord, id: *id, workers: *workers, poll: *poll,
		trace: *trace, sample: *sample, attach: *attach, spans: *spans,
		logLevel: *logLevel, logText: *logText, httpAddr: *httpAddr,
		quiet: *quiet,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sfi-worker:", err)
		os.Exit(1)
	}
}

type workerArgs struct {
	coord, id      string
	workers        int
	poll           time.Duration
	trace          string
	sample, attach int
	spans          int
	logLevel       string
	logText        bool
	httpAddr       string
	quiet          bool
}

// shardProgress is the worker's live view of its current shard, served at
// /progress and /metrics on the debug listener.
type shardProgress struct {
	mu    sync.Mutex
	shard dist.ShardLease
	p     sfi.Progress
}

func (s *shardProgress) set(sh dist.ShardLease, p sfi.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shard, s.p = sh, p
}

func (s *shardProgress) get() (dist.ShardLease, sfi.Progress) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard, s.p
}

func (s *shardProgress) snapshot() *sfi.MetricsSnapshot {
	_, p := s.get()
	if p.Metrics == nil {
		return obs.NewSnapshot()
	}
	return p.Metrics
}

func run(a workerArgs) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	level, err := obs.ParseLogLevel(a.logLevel)
	if err != nil {
		return err
	}
	if a.quiet && level < slog.LevelWarn {
		level = slog.LevelWarn
	}
	log := obs.NewLogger(os.Stderr, level, !a.logText)

	cfg := dist.WorkerConfig{
		Coordinator: a.coord,
		ID:          a.id,
		Workers:     a.workers,
		PollEvery:   a.poll,
		Log:         log,
		TraceSample: a.sample,
		TraceAttach: a.attach,
		SpanAttach:  a.spans,
	}

	var traceFlush func() error
	if a.trace != "" {
		f, err := os.Create(a.trace)
		if err != nil {
			return err
		}
		cfg.TraceW = f
		traceFlush = func() error {
			if err := f.Close(); err != nil {
				return err
			}
			log.Info("trace written", "path", a.trace)
			return nil
		}
	}

	live := &shardProgress{}
	cfg.OnProgress = live.set

	if a.httpAddr != "" {
		ln, err := net.Listen("tcp", a.httpAddr)
		if err != nil {
			return err
		}
		// expvar's /debug/vars and pprof's /debug/pprof are registered on
		// the default mux by their package inits; add the worker views.
		sfi.PublishMetricsExpvar("sfi_worker", live.snapshot)
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			live.snapshot().WritePrometheus(w, "sfi")
		})
		http.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
			sh, p := live.get()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"shard": sh, "progress": p})
		})
		go http.Serve(ln, nil)
		log.Info("debug listener", "addr", ln.Addr().String(),
			"endpoints", "/debug/vars, /debug/pprof, /metrics, /progress")
	}

	if err := dist.RunWorker(ctx, cfg); err != nil {
		return err
	}
	if traceFlush != nil {
		return traceFlush()
	}
	return nil
}
