package main

// The sfi campaign-service client verbs: `sfi submit`, `sfi status`,
// `sfi report` and `sfi cancel` talk to a running sfi-server, so the same
// binary that runs local campaigns also drives the persistent service.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"sfi"
	"sfi/internal/dist"
	"sfi/internal/server"
)

// clientMain dispatches the service verbs; reports false when argv names
// no verb and the classic local-campaign path should run instead.
func clientMain(args []string) (bool, error) {
	if len(args) == 0 {
		return false, nil
	}
	switch args[0] {
	case "submit":
		return true, clientSubmit(args[1:])
	case "status":
		return true, clientStatus(args[1:])
	case "report":
		return true, clientReport(args[1:])
	case "cancel":
		return true, clientCancel(args[1:])
	}
	return false, nil
}

func clientSubmit(args []string) error {
	fs := flag.NewFlagSet("sfi submit", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://localhost:8440", "campaign server base URL")
		tenant    = fs.String("tenant", "", "tenant the campaign is scheduled under (fair-share weight; empty = default)")
		flips     = fs.Int("flips", 10000, "number of latch bits to inject")
		seed      = fs.Uint64("seed", 1, "sampling seed")
		backend   = fs.String("backend", "", "engine backend (p6lite, awan; empty = p6lite)")
		lanes     = fs.Int("lanes", 0, "simulation-lane word width for batch-capable backends")
		unit      = fs.String("unit", "", "target one unit")
		typ       = fs.String("type", "", "target one latch type")
		macro     = fs.String("macro", "", "target latch groups by name prefix")
		keep      = fs.Bool("keep-results", false, "retain per-injection results in the report")
		shardSize = fs.Int("shard-size", 0, "injections per shard (0 = server default)")
		margin    = fs.Float64("margin", 0, "adaptive stop: target per-class CI width in percentage points (0 = off)")
		conf      = fs.Float64("confidence", 0.95, "confidence level for the -margin intervals")
		stopConv  = fs.Bool("stop-on-converge", false, "stop the campaign once the -margin rule converges")
		wait      = fs.Bool("wait", false, "poll until the campaign settles and print the final record")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	filter, err := filterArgs(*unit, *typ, *macro)
	if err != nil {
		return err
	}
	runner := sfi.DefaultRunnerConfig()
	runner.Backend = *backend
	if *lanes > 0 {
		runner.BatchLanes = *lanes
	}
	var stop sfi.StopConfig
	if *margin > 0 {
		stop = sfi.StopConfig{TargetMargin: *margin / 100, Confidence: *conf, StopOnConverge: *stopConv}
	} else if *stopConv {
		return fmt.Errorf("-stop-on-converge needs a -margin")
	}
	spec := server.Spec{
		Tenant: *tenant,
		Campaign: dist.CampaignSpec{
			Runner:      runner,
			Seed:        *seed,
			Flips:       *flips,
			Filter:      filter,
			KeepResults: *keep,
			Stop:        stop,
		},
		ShardSize: *shardSize,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(*serverURL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var c server.Campaign
	if err := decodeClient(resp, http.StatusCreated, &c); err != nil {
		return err
	}
	if !*wait {
		return printJSON(c)
	}
	for c.State == server.StateQueued || c.State == server.StateRunning {
		time.Sleep(250 * time.Millisecond)
		r, err := http.Get(*serverURL + "/v1/campaigns/" + c.ID)
		if err != nil {
			return err
		}
		if err := decodeClient(r, http.StatusOK, &c); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "\r%s: %-60s", c.ID, c.State)
	}
	fmt.Fprintln(os.Stderr)
	return printJSON(c)
}

func clientStatus(args []string) error {
	fs := flag.NewFlagSet("sfi status", flag.ExitOnError)
	serverURL := fs.String("server", "http://localhost:8440", "campaign server base URL")
	fs.Parse(args) //nolint:errcheck
	url := *serverURL + "/v1/status"
	if id := fs.Arg(0); id != "" {
		url = *serverURL + "/v1/campaigns/" + id + "/status"
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	var v json.RawMessage
	if err := decodeClient(resp, http.StatusOK, &v); err != nil {
		return err
	}
	return printJSON(v)
}

func clientReport(args []string) error {
	fs := flag.NewFlagSet("sfi report", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "http://localhost:8440", "campaign server base URL")
		jsonOut   = fs.Bool("json", false, "emit the stored report document as JSON")
	)
	fs.Parse(args) //nolint:errcheck
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("usage: sfi report [-server URL] <campaign-id>")
	}
	resp, err := http.Get(*serverURL + "/v1/campaigns/" + id + "/report")
	if err != nil {
		return err
	}
	var doc server.ReportDoc
	if err := decodeClient(resp, http.StatusOK, &doc); err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(doc)
	}
	rep, err := doc.Report.Report()
	if err != nil {
		return err
	}
	rep.Convergence = doc.Convergence
	if doc.StoppedEarly {
		fmt.Printf("campaign stopped early at %d injections\n", rep.Total)
	}
	fmt.Print(rep)
	if c := rep.Convergence; c != nil {
		verdict := "converged"
		if !c.Converged {
			verdict = "NOT converged"
		}
		fmt.Printf("convergence: %s at n=%d — widest margin %s %.2f%% (target %.2f%% at %.0f%% confidence)\n",
			verdict, c.Total, c.WidestClass, 100*c.WidestWidth,
			100*c.TargetMargin, 100*c.Confidence)
	}
	return nil
}

func clientCancel(args []string) error {
	fs := flag.NewFlagSet("sfi cancel", flag.ExitOnError)
	serverURL := fs.String("server", "http://localhost:8440", "campaign server base URL")
	fs.Parse(args) //nolint:errcheck
	id := fs.Arg(0)
	if id == "" {
		return fmt.Errorf("usage: sfi cancel [-server URL] <campaign-id>")
	}
	req, err := http.NewRequest(http.MethodDelete, *serverURL+"/v1/campaigns/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return clientError(resp)
	}
	fmt.Println("cancelled", id)
	return nil
}

// filterArgs mirrors the local path's exclusive -unit/-type/-macro rule in
// wire form.
func filterArgs(unit, typ, macro string) (dist.FilterSpec, error) {
	set := 0
	var f dist.FilterSpec
	if unit != "" {
		f = dist.FilterSpec{Kind: "unit", Arg: unit}
		set++
	}
	if typ != "" {
		f = dist.FilterSpec{Kind: "type", Arg: typ}
		set++
	}
	if macro != "" {
		f = dist.FilterSpec{Kind: "prefix", Arg: macro}
		set++
	}
	if set > 1 {
		return f, fmt.Errorf("use at most one of -unit, -type, -macro")
	}
	_, err := f.Filter()
	return f, err
}

// decodeClient checks the status code and decodes the JSON body.
func decodeClient(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		return clientError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// clientError surfaces the server's {"error": ...} body.
func clientError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (%s)", e.Error, resp.Status)
	}
	return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(body))
}

func printJSON(v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}
