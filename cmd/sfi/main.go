// Command sfi runs statistical fault-injection campaigns on the emulated
// P6LITE core: random whole-core campaigns, targeted per-unit / per-type /
// per-macro campaigns, sticky-mode injection, raw (checkers-masked) mode,
// and cause-effect trace dumps.
//
// Examples:
//
//	sfi -flips 5000                        # whole-core random campaign
//	sfi -flips 2000 -unit LSU              # target the load-store unit
//	sfi -flips 1000 -type MODE             # target the MODE scan rings
//	sfi -flips 500  -macro lsu.stq         # target a macro by name prefix
//	sfi -flips 1000 -sticky -duration 200  # 200-cycle stuck-at faults
//	sfi -flips 1000 -raw                   # mask every hardware checker
//	sfi -flips 300  -trace                 # print cause-effect traces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sfi"
)

func main() {
	var (
		flips    = flag.Int("flips", 1000, "number of latch bits to inject")
		seed     = flag.Uint64("seed", 1, "sampling seed")
		unit     = flag.String("unit", "", "target one unit (IFU, IDU, FXU, FPU, LSU, RUT, Core)")
		typ      = flag.String("type", "", "target one latch type (FUNC, REGFILE, GPTR, MODE)")
		macro    = flag.String("macro", "", "target latch groups by name prefix")
		sticky   = flag.Bool("sticky", false, "sticky (stuck-at) injection instead of toggle")
		duration = flag.Int("duration", 0, "sticky fault duration in cycles (0 = permanent)")
		span     = flag.Int("span", 1, "adjacent bits per injection (multi-bit upsets)")
		raw      = flag.Bool("raw", false, "mask every hardware checker (Table 3 Raw mode)")
		noRec    = flag.Bool("no-recovery", false, "disable the recovery unit")
		window   = flag.Int("window", 0, "observation window in cycles (0 = default)")
		fixed    = flag.Bool("fixed-window", false, "disable quiesce early exit (paper's fixed 500k-cycle style)")
		nest     = flag.Bool("nest", false, "enable the core periphery (L2 + memory controller)")
		workers  = flag.Int("workers", 0, "concurrent model copies (0 = GOMAXPROCS)")
		detail   = flag.Bool("detail", false, "print confidence intervals, latency stats and checker coverage")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		trace    = flag.Bool("trace", false, "print cause-effect traces of non-vanished injections")
		units    = flag.Bool("units", false, "also print the per-unit breakdown")
		types    = flag.Bool("types", false, "also print the per-latch-type breakdown")
	)
	flag.Parse()

	if err := run(campaignArgs{
		flips: *flips, seed: *seed, unit: *unit, typ: *typ, macro: *macro,
		sticky: *sticky, duration: *duration, span: *span, raw: *raw, noRec: *noRec,
		window: *window, fixed: *fixed, workers: *workers, nest: *nest,
		detail: *detail, jsonOut: *jsonOut, trace: *trace, units: *units, types: *types,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sfi:", err)
		os.Exit(1)
	}
}

type campaignArgs struct {
	flips            int
	seed             uint64
	unit, typ, macro string
	sticky           bool
	duration         int
	span             int
	raw, noRec       bool
	window           int
	fixed            bool
	workers          int
	nest             bool
	detail           bool
	jsonOut          bool
	trace            bool
	units, types     bool
}

func run(a campaignArgs) error {
	cfg := sfi.DefaultCampaignConfig()
	cfg.Flips = a.flips
	cfg.Seed = a.seed
	cfg.Workers = a.workers
	cfg.KeepResults = true
	cfg.Runner.CheckersOn = !a.raw
	cfg.Runner.RecoveryOn = !a.noRec
	if a.sticky {
		cfg.Runner.Mode = sfi.Sticky
		cfg.Runner.StickyCycles = a.duration
	}
	if a.span > 1 {
		cfg.Runner.SpanBits = a.span
	}
	if a.window > 0 {
		cfg.Runner.Window = a.window
	}
	if a.fixed {
		cfg.Runner.QuiesceExit = 0
	}
	if a.nest {
		cfg.Runner.Proc.EnableNest = true
	}

	filters := 0
	if a.unit != "" {
		found := a.unit == sfi.UnitNEST && a.nest
		for _, u := range sfi.Units {
			if u == a.unit {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown unit %q (have %v; NEST needs -nest)", a.unit, sfi.Units)
		}
		cfg.Filter = sfi.ByUnit(a.unit)
		filters++
	}
	if a.typ != "" {
		var t sfi.LatchType
		for _, lt := range sfi.LatchTypes {
			if lt.String() == a.typ {
				t = lt
			}
		}
		if t == 0 {
			return fmt.Errorf("unknown latch type %q", a.typ)
		}
		cfg.Filter = sfi.ByType(t)
		filters++
	}
	if a.macro != "" {
		cfg.Filter = sfi.ByGroupPrefix(a.macro)
		filters++
	}
	if filters > 1 {
		return fmt.Errorf("use at most one of -unit, -type, -macro")
	}

	start := time.Now()
	rep, err := sfi.RunCampaign(cfg)
	if err != nil {
		return err
	}
	if a.jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	elapsed := time.Since(start)
	fmt.Printf("campaign finished in %v (%d injections, %.1f inj/s)\n",
		elapsed.Round(time.Millisecond), rep.Total, float64(rep.Total)/elapsed.Seconds())
	if a.detail {
		fmt.Print(rep.DetailedString())
	} else {
		fmt.Print(rep)
	}

	if a.units {
		fmt.Println("\nper unit:")
		for _, u := range sfi.Units {
			fmt.Printf("  %-5s", u)
			for _, o := range sfi.Outcomes {
				fmt.Printf(" %s %6.2f%%", o, 100*rep.UnitFraction(u, o))
			}
			fmt.Println()
		}
	}
	if a.types {
		fmt.Println("\nper latch type:")
		for _, t := range sfi.LatchTypes {
			fmt.Printf("  %-8v", t)
			for _, o := range sfi.Outcomes {
				fmt.Printf(" %s %6.2f%%", o, 100*rep.TypeFraction(t, o))
			}
			fmt.Println()
		}
	}
	if a.trace {
		fmt.Println("\ncause-effect traces:")
		fmt.Print(sfi.TraceReport(rep, 50))
	}
	return nil
}
