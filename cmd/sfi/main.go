// Command sfi runs statistical fault-injection campaigns on the emulated
// P6LITE core: random whole-core campaigns, targeted per-unit / per-type /
// per-macro campaigns, sticky-mode injection, raw (checkers-masked) mode,
// cause-effect trace dumps, and a full observability surface: live progress,
// structured JSONL injection traces, Prometheus/expvar metrics and a pprof
// debug listener.
//
// Examples:
//
//	sfi -flips 5000                        # whole-core random campaign
//	sfi -flips 2000 -unit LSU              # target the load-store unit
//	sfi -flips 1000 -type MODE             # target the MODE scan rings
//	sfi -flips 500  -macro lsu.stq         # target a macro by name prefix
//	sfi -flips 1000 -sticky -duration 200  # 200-cycle stuck-at faults
//	sfi -flips 1000 -raw                   # mask every hardware checker
//	sfi -flips 300  -causes                # print cause-effect traces
//	sfi -flips 500  -backend awan          # gate-level checked-ALU campaign
//	sfi -flips 5000 -trace inj.jsonl       # one JSONL event per injection
//	sfi -flips 5000 -metrics -             # Prometheus text dump to stdout
//	sfi -flips 50000 -http :6060           # expvar+pprof+/metrics while running
//	sfi -flips 5000 -dist 4                # distributed smoke: in-process
//	                                       # coordinator + 4 loopback workers
//	sfi -flips 50000 -margin 1 -stop-on-converge
//	                                       # adaptive: stop once every outcome
//	                                       # class's 95% CI is ≤1 point wide
//
// Campaign-service verbs against a running sfi-server:
//
//	sfi submit -server http://host:8440 -flips 100000 -margin 1 -stop-on-converge
//	sfi status -server http://host:8440 [id]
//	sfi report -server http://host:8440 <id>
//	sfi cancel -server http://host:8440 <id>
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"sfi"
	"sfi/internal/dist"
)

func main() {
	// Campaign-service verbs (submit/status/report/cancel against a
	// running sfi-server) dispatch before the classic local-campaign
	// flag path.
	if handled, err := clientMain(os.Args[1:]); handled {
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfi:", err)
			os.Exit(1)
		}
		return
	}
	var (
		flips    = flag.Int("flips", 1000, "number of latch bits to inject")
		seed     = flag.Uint64("seed", 1, "sampling seed")
		backend  = flag.String("backend", "", "engine backend to inject into (p6lite, awan; empty = p6lite)")
		unit     = flag.String("unit", "", "target one unit (IFU, IDU, FXU, FPU, LSU, RUT, Core)")
		typ      = flag.String("type", "", "target one latch type (FUNC, REGFILE, GPTR, MODE)")
		macro    = flag.String("macro", "", "target latch groups by name prefix")
		sticky   = flag.Bool("sticky", false, "sticky (stuck-at) injection instead of toggle")
		duration = flag.Int("duration", 0, "sticky fault duration in cycles (0 = permanent)")
		span     = flag.Int("span", 1, "adjacent bits per injection (multi-bit upsets)")
		raw      = flag.Bool("raw", false, "mask every hardware checker (Table 3 Raw mode)")
		noRec    = flag.Bool("no-recovery", false, "disable the recovery unit")
		window   = flag.Int("window", 0, "observation window in cycles (0 = default)")
		fixed    = flag.Bool("fixed-window", false, "disable quiesce early exit (paper's fixed 500k-cycle style)")
		nest     = flag.Bool("nest", false, "enable the core periphery (L2 + memory controller)")
		workers  = flag.Int("workers", 0, "concurrent model copies (0 = GOMAXPROCS)")
		lanes    = flag.Int("lanes", 0, "simulation-lane word width for batch-capable backends (awan): 64 packs 63 faults per model pass, 1 forces the scalar path, 0 = backend maximum")
		detail   = flag.Bool("detail", false, "print confidence intervals, latency stats and checker coverage")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON")
		causes   = flag.Bool("causes", false, "print cause-effect traces of non-vanished injections")
		units    = flag.Bool("units", false, "also print the per-unit breakdown")
		types    = flag.Bool("types", false, "also print the per-latch-type breakdown")

		// Adaptive statistical stopping rule.
		margin     = flag.Float64("margin", 0, "evaluate per-class confidence intervals and report convergence once every outcome class's interval is at most this many percentage points wide (0 = off)")
		confidence = flag.Float64("confidence", 0.95, "confidence level for the -margin intervals")
		stopConv   = flag.Bool("stop-on-converge", false, "stop the campaign as soon as the -margin rule converges instead of running the whole -flips budget")
		allocate   = flag.String("allocate", "uniform", "budget allocation across unit×latch-type sampling strata: uniform (pooled sample) or neyman (per-epoch Neyman re-allocation; with -margin, every stratum must converge)")
		epochs     = flag.Int("alloc-epochs", 0, "allocation epochs a -allocate neyman campaign re-plans at (0 = default)")

		// Distributed smoke mode.
		distN     = flag.Int("dist", 0, "run the campaign through an in-process coordinator with this many loopback workers (exercises the sfi-coord/sfi-worker protocol)")
		shardSize = flag.Int("shard-size", 0, "injections per shard in -dist mode (0 = ~64 shards)")

		// Observability.
		trace    = flag.String("trace", "", "write one JSONL lifecycle event per injection to this file")
		traceSmp = flag.Int("trace-sample", 1, "record every Nth injection in the -trace stream")
		metrics  = flag.String("metrics", "", "write a Prometheus-style metrics dump to this file ('-' = stdout)")
		httpAddr = flag.String("http", "", "serve /debug/vars (expvar), /debug/pprof, /metrics and /progress on this address while the campaign runs")
		progress = flag.Bool("progress", true, "render live progress to stderr")
	)
	flag.Parse()

	if err := run(campaignArgs{
		flips: *flips, seed: *seed, backend: *backend, unit: *unit, typ: *typ, macro: *macro,
		sticky: *sticky, duration: *duration, span: *span, raw: *raw, noRec: *noRec,
		window: *window, fixed: *fixed, workers: *workers, lanes: *lanes, nest: *nest,
		detail: *detail, jsonOut: *jsonOut, causes: *causes, units: *units, types: *types,
		margin: *margin, confidence: *confidence, stopConv: *stopConv,
		allocate: *allocate, epochs: *epochs,
		dist: *distN, shardSize: *shardSize,
		trace: *trace, traceSample: *traceSmp, metrics: *metrics,
		httpAddr: *httpAddr, progress: *progress,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sfi:", err)
		os.Exit(1)
	}
}

type campaignArgs struct {
	flips            int
	seed             uint64
	backend          string
	unit, typ, macro string
	sticky           bool
	duration         int
	span             int
	raw, noRec       bool
	window           int
	fixed            bool
	workers          int
	lanes            int
	nest             bool
	detail           bool
	jsonOut          bool
	causes           bool
	units, types     bool

	margin     float64
	confidence float64
	stopConv   bool
	allocate   string
	epochs     int

	dist      int
	shardSize int

	trace       string
	traceSample int
	metrics     string
	httpAddr    string
	progress    bool
}

// liveState shares the latest campaign progress between the callback, the
// stderr renderer and the debug HTTP handlers.
type liveState struct {
	mu   sync.Mutex
	last sfi.Progress
}

func (s *liveState) set(p sfi.Progress) {
	s.mu.Lock()
	s.last = p
	s.mu.Unlock()
}

func (s *liveState) get() sfi.Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

func (s *liveState) snapshot() *sfi.MetricsSnapshot {
	if snap := s.get().Metrics; snap != nil {
		return snap
	}
	return &sfi.MetricsSnapshot{}
}

func run(a campaignArgs) error {
	cfg := sfi.DefaultCampaignConfig()
	cfg.Flips = a.flips
	cfg.Seed = a.seed
	cfg.Workers = a.workers
	cfg.KeepResults = true
	if a.backend != "" {
		known := false
		for _, b := range sfi.Backends() {
			if b == a.backend {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown backend %q (have %v)", a.backend, sfi.Backends())
		}
		cfg.Runner.Backend = a.backend
	}
	cfg.Runner.CheckersOn = !a.raw
	cfg.Runner.RecoveryOn = !a.noRec
	if a.sticky {
		cfg.Runner.Mode = sfi.Sticky
		cfg.Runner.StickyCycles = a.duration
	}
	if a.span > 1 {
		cfg.Runner.SpanBits = a.span
	}
	if a.window > 0 {
		cfg.Runner.Window = a.window
	}
	if a.fixed {
		cfg.Runner.QuiesceExit = 0
	}
	if a.lanes > 0 {
		cfg.Runner.BatchLanes = a.lanes
	}
	if a.nest {
		cfg.Runner.Proc.EnableNest = true
	}
	if a.margin > 0 {
		// The flag speaks percentage points (matching every rendered
		// percentage); the rule works in fractions.
		cfg.Stop = sfi.StopConfig{
			TargetMargin:   a.margin / 100,
			Confidence:     a.confidence,
			StopOnConverge: a.stopConv,
		}
	} else if a.stopConv {
		return fmt.Errorf("-stop-on-converge needs a -margin")
	}
	// "uniform" normalizes to the zero AllocConfig so uniform campaigns
	// stay byte-identical to pre-allocation versions.
	if a.allocate != "" && a.allocate != sfi.AllocUniform {
		cfg.Alloc = sfi.AllocConfig{Mode: a.allocate, Epochs: a.epochs}
	}

	filters := 0
	if a.unit != "" {
		// The p6lite unit list is only authoritative for the default
		// backend; other backends bring their own unit vocabulary and the
		// campaign's population guard rejects a filter that matches nothing.
		if a.backend == "" || a.backend == sfi.BackendP6Lite {
			found := a.unit == sfi.UnitNEST && a.nest
			for _, u := range sfi.Units {
				if u == a.unit {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown unit %q (have %v; NEST needs -nest)", a.unit, sfi.Units)
			}
		}
		cfg.Filter = sfi.ByUnit(a.unit)
		filters++
	}
	if a.typ != "" {
		var t sfi.LatchType
		for _, lt := range sfi.LatchTypes {
			if lt.String() == a.typ {
				t = lt
			}
		}
		if t == 0 {
			return fmt.Errorf("unknown latch type %q", a.typ)
		}
		cfg.Filter = sfi.ByType(t)
		filters++
	}
	if a.macro != "" {
		cfg.Filter = sfi.ByGroupPrefix(a.macro)
		filters++
	}
	if filters > 1 {
		return fmt.Errorf("use at most one of -unit, -type, -macro")
	}

	// Distributed smoke mode: run the same campaign through an in-process
	// coordinator and N loopback workers — the full sfi-coord/sfi-worker
	// lease protocol over real HTTP, one process.
	if a.dist > 0 {
		rep, elapsed, doc, err := runDist(a, cfg)
		if err != nil {
			return err
		}
		return emit(a, rep, elapsed, doc)
	}

	// Observability: metrics are always collected (the end-of-run summary
	// is rendered from the snapshot; measured overhead is <5%, see
	// EXPERIMENTS.md), and so are campaign spans — they are per-batch, not
	// per-injection, so the ring costs microseconds per campaign and feeds
	// the end-of-run latency attribution line.
	cfg.Obs.Metrics = true
	tracer := sfi.NewTracer(cfg.Seed)
	cfg.Obs.Tracer = tracer

	var traceFlush func() error
	if a.trace != "" {
		f, err := os.Create(a.trace)
		if err != nil {
			return err
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		sink := sfi.NewTraceSink(bw, sfi.TraceOptions{Sample: a.traceSample})
		cfg.Obs.Trace = sink
		// Mirror the campaign spans into the same JSONL stream (span lines
		// carry trace_id/span fields, injection events carry seq/outcome —
		// the two record shapes coexist).
		tracer.SetSink(sink)
		traceFlush = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if err := sink.Err(); err != nil {
				return fmt.Errorf("trace write: %w", err)
			}
			fmt.Fprintf(os.Stderr, "trace: %d events to %s (%d sampled out)\n",
				sink.Recorded(), a.trace, sink.Dropped())
			return nil
		}
	}

	live := &liveState{}
	cfg.Obs.ProgressEvery = 500 * time.Millisecond
	cfg.Obs.Progress = func(p sfi.Progress) {
		live.set(p)
		if a.progress {
			renderProgress(os.Stderr, p)
		}
	}

	if a.httpAddr != "" {
		ln, err := net.Listen("tcp", a.httpAddr)
		if err != nil {
			return err
		}
		// expvar's /debug/vars and pprof's /debug/pprof are registered on
		// the default mux by their package inits; add the campaign views.
		sfi.PublishMetricsExpvar("sfi", live.snapshot)
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			live.snapshot().WritePrometheus(w, "sfi")
			sfi.WriteConvergencePrometheus(w, "sfi", live.get().Convergence)
		})
		http.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(live.get())
		})
		go http.Serve(ln, nil)
		fmt.Fprintf(os.Stderr, "debug listener on http://%s (/debug/vars, /debug/pprof, /metrics, /progress)\n",
			ln.Addr())
	}

	start := time.Now()
	rep, err := sfi.RunCampaign(cfg)
	elapsed := time.Since(start)
	if a.progress {
		fmt.Fprintln(os.Stderr) // end the \r progress line
	}
	if err != nil {
		return err
	}
	if traceFlush != nil {
		tracer.SetSink(nil)
		if err := traceFlush(); err != nil {
			return err
		}
	}
	return emit(a, rep, elapsed, tracer.Doc())
}

// emit renders a finished campaign report (shared by the local and
// distributed paths). doc, when non-nil, is the campaign's span tree and
// feeds the latency-attribution summary line.
func emit(a campaignArgs, rep *sfi.Report, elapsed time.Duration, doc *sfi.TraceDoc) error {
	if a.metrics != "" {
		out := os.Stdout
		if a.metrics != "-" {
			f, err := os.Create(a.metrics)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := rep.Metrics.WritePrometheus(out, "sfi"); err != nil {
			return err
		}
		if err := sfi.WriteConvergencePrometheus(out, "sfi", rep.Convergence); err != nil {
			return err
		}
	}
	if a.jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	printSummary(rep, elapsed, doc)
	if a.detail {
		fmt.Print(rep.DetailedString()) // includes the convergence line
	} else {
		fmt.Print(rep)
		if c := rep.Convergence; c != nil {
			verdict := "converged"
			if !c.Converged {
				verdict = "NOT converged"
			}
			fmt.Printf("convergence: %s at n=%d — widest margin %s %.2f%% (target %.2f%% at %.0f%% confidence)\n",
				verdict, c.Total, c.WidestClass, 100*c.WidestWidth,
				100*c.TargetMargin, 100*c.Confidence)
		}
	}

	if a.units {
		fmt.Println("\nper unit:")
		for _, u := range reportUnits(rep) {
			fmt.Printf("  %-5s", u)
			for _, o := range sfi.Outcomes {
				fmt.Printf(" %s %6.2f%%", o, 100*rep.UnitFraction(u, o))
			}
			fmt.Println()
		}
	}
	if a.types {
		fmt.Println("\nper latch type:")
		for _, t := range sfi.LatchTypes {
			fmt.Printf("  %-8v", t)
			for _, o := range sfi.Outcomes {
				fmt.Printf(" %s %6.2f%%", o, 100*rep.TypeFraction(t, o))
			}
			fmt.Println()
		}
	}
	if a.causes {
		fmt.Println("\ncause-effect traces:")
		fmt.Print(sfi.TraceReport(rep, 50))
	}
	return nil
}

// reportUnits lists the units to render in the -units breakdown: the
// paper's p6lite ordering for units the report actually saw, then any
// backend-specific units (e.g. awan's ALU bank) in sorted order.
func reportUnits(rep *sfi.Report) []string {
	var out []string
	seen := make(map[string]bool)
	for _, u := range sfi.Units {
		if _, ok := rep.ByUnit[u]; ok {
			out = append(out, u)
			seen[u] = true
		}
	}
	var extra []string
	for u := range rep.ByUnit {
		if !seen[u] {
			extra = append(extra, u)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// runDist executes the campaign through the distributed subsystem: an
// in-process coordinator on a loopback listener and a.dist workers driving
// the real lease/heartbeat/complete protocol over HTTP. The merged report
// is identical (same seed → same outcomes) to the local path's.
func runDist(a campaignArgs, cfg sfi.CampaignConfig) (*sfi.Report, time.Duration, *sfi.TraceDoc, error) {
	var fs dist.FilterSpec
	switch {
	case a.unit != "":
		fs = dist.FilterSpec{Kind: "unit", Arg: a.unit}
	case a.typ != "":
		fs = dist.FilterSpec{Kind: "type", Arg: a.typ}
	case a.macro != "":
		fs = dist.FilterSpec{Kind: "prefix", Arg: a.macro}
	}
	// Split the machine's cores across the loopback workers unless the
	// user pinned a per-shard worker count.
	shardWorkers := cfg.Workers
	if shardWorkers <= 0 {
		shardWorkers = runtime.GOMAXPROCS(0) / a.dist
		if shardWorkers < 1 {
			shardWorkers = 1
		}
	}
	coord, err := dist.NewCoordinator(dist.CoordConfig{
		Campaign: dist.CampaignSpec{
			Runner:       cfg.Runner,
			Seed:         cfg.Seed,
			Flips:        cfg.Flips,
			Filter:       fs,
			KeepResults:  cfg.KeepResults,
			ShardWorkers: shardWorkers,
			Stop:         cfg.Stop,
			Alloc:        cfg.Alloc,
		},
		ShardSize: a.shardSize,
		Tracer:    sfi.NewTracer(cfg.Seed),
	})
	if err != nil {
		return nil, 0, nil, err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, nil, err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "distributed smoke: coordinator on http://%s, %d loopback workers × %d model copies\n",
		ln.Addr(), a.dist, shardWorkers)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerErr := make(chan error, a.dist)
	for i := 0; i < a.dist; i++ {
		go func(i int) {
			workerErr <- dist.RunWorker(ctx, dist.WorkerConfig{
				Coordinator: "http://" + ln.Addr().String(),
				ID:          fmt.Sprintf("loopback-%d", i),
				PollEvery:   50 * time.Millisecond,
			})
		}(i)
	}
	start := time.Now()
	if a.progress {
		go func() {
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					// The fleet snapshot covers completed shards exactly plus
					// heartbeat-reported in-flight work, so the line moves
					// between shard completions too.
					p := coord.Progress()
					fp := sfi.ProgressFrom(coord.FleetSnapshot(), p.Total, 0, start)
					fp.Convergence = coord.Convergence()
					line := fmt.Sprintf("%s — shards %d/%d done, %d leased",
						fp.Line(), p.Done, p.Shards, p.Leased)
					fmt.Fprintf(os.Stderr, "\r%-78s", line)
				}
			}
		}()
	}

	rep, err := coord.Wait(ctx)
	elapsed := time.Since(start)
	if a.progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return nil, 0, nil, err
	}
	if d := coord.StopDecision(); d != nil {
		fmt.Fprintf(os.Stderr, "converged early: %d of %d injections (widest class %s at %.2f%%, target %.2f%%)\n",
			d.Total, cfg.Flips, d.WidestClass, 100*d.WidestWidth, 100*d.TargetMargin)
	}
	// Workers exit on their own once the coordinator answers 410.
	for i := 0; i < a.dist; i++ {
		if werr := <-workerErr; werr != nil {
			return nil, 0, nil, werr
		}
	}
	return rep, elapsed, coord.TraceDoc(), nil
}

// renderProgress draws one live progress line to w (carriage-return
// overwritten in place). The line itself is Progress.Line, shared with
// the coordinator's fleet progress.
func renderProgress(w *os.File, p sfi.Progress) {
	fmt.Fprintf(w, "\r%-78s", p.Line())
}

// printSummary renders the end-of-run summary from the campaign's metrics
// snapshot and, when a span tree exists, its latency attribution.
func printSummary(rep *sfi.Report, elapsed time.Duration, doc *sfi.TraceDoc) {
	s := rep.Metrics
	if s == nil {
		fmt.Printf("campaign finished in %v (%d injections)\n",
			elapsed.Round(time.Millisecond), rep.Total)
		return
	}
	util := 0.0
	if rep.Workers > 0 && elapsed > 0 {
		util = float64(s.BusyNs) / (float64(rep.Workers) * float64(elapsed.Nanoseconds()))
	}
	// Rates are labeled explicitly: with a bit-parallel backend one model
	// pass retires many injections, so injections/s and batches/s differ by
	// the mean lane occupancy.
	fmt.Printf("campaign: %d injections in %v — %.1f injections/s, %d workers (%.0f%% busy)\n",
		s.Injections, elapsed.Round(time.Millisecond),
		float64(s.Injections)/elapsed.Seconds(), rep.Workers, 100*util)
	fmt.Printf("restore:  p50 %v  p95 %v  (%d restores)\n",
		time.Duration(s.RestoreNs.Quantile(0.5)).Round(time.Microsecond),
		time.Duration(s.RestoreNs.Quantile(0.95)).Round(time.Microsecond),
		s.Restores)
	if s.Batches > 0 {
		fmt.Printf("batch:    %d passes — %.1f batches/s, mean %.1f lanes/pass (p95 %d)\n",
			s.Batches, float64(s.Batches)/elapsed.Seconds(),
			s.LaneOccupancy.Mean(), s.LaneOccupancy.Quantile(0.95))
	}
	fmt.Printf("observe:  p50 %d  p95 %d cycles/injection  (%d cycles total)\n",
		s.PropagateCycles.Quantile(0.5), s.PropagateCycles.Quantile(0.95), s.Cycles)
	if s.DetectCycles.Count > 0 {
		fmt.Printf("detect:   p50 %d  p95 %d cycles to first checker  (%d detected)\n",
			s.DetectCycles.Quantile(0.5), s.DetectCycles.Quantile(0.95),
			s.DetectCycles.Count)
	}
	if doc != nil && doc.Root != nil {
		at := doc.Attribution
		fmt.Printf("latency:  %.0fms total — run %.0fms, merge %.0fms, other %.0fms (critical path over %d spans)\n",
			at.TotalMs, at.RunMs+at.ImageMs+at.QueueMs, at.MergeMs, at.OtherMs, doc.Spans)
	}
}
