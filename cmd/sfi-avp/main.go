// Command sfi-avp generates the Architectural Verification Program, runs it
// on the latch-accurate core, and reports its dynamic instruction mix, CPI
// and golden-signature health — the workload side of the paper's Table 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"sfi/internal/avp"
	"sfi/internal/isa"
	"sfi/internal/proc"
	"sfi/internal/workload"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 0x5eed, "AVP generation seed")
		testcases = flag.Int("testcases", 12, "testcases per pass")
		bodyOps   = flag.Int("body", 40, "body operations per testcase")
		passes    = flag.Int("passes", 3, "passes to run on the core")
	)
	flag.Parse()

	if err := run(*seed, *testcases, *bodyOps, *passes); err != nil {
		fmt.Fprintln(os.Stderr, "sfi-avp:", err)
		os.Exit(1)
	}
}

func run(seed uint64, testcases, bodyOps, passes int) error {
	cfg := avp.DefaultConfig()
	cfg.Seed = seed
	cfg.Testcases = testcases
	cfg.BodyOps = bodyOps
	prog, err := avp.Generate(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("AVP: %d testcases, %d instruction words, %d instructions per pass\n",
		testcases, len(prog.Words), prog.GoldenInstPerPass)
	fmt.Printf("data area: %#x..%#x\n\n", prog.DataLo, prog.DataHi)

	fmt.Println("dynamic instruction mix (steady-state pass):")
	for _, c := range isa.Classes {
		fmt.Printf("  %-16s %5.1f%%\n", c, 100*prog.DynMix(c))
	}

	cpi, err := workload.MeasureCPI(prog, testcases)
	if err != nil {
		return err
	}
	fmt.Printf("\nCPI on the core model: %.2f\n", cpi)

	// Run the AVP on the core, checking every barrier.
	c := proc.New(proc.DefaultConfig())
	c.Mem().LoadProgram(0, prog.Words)
	ends, checked, bad := 0, 0, 0
	warm := 2 * testcases
	for ends < (2+passes)*testcases {
		ev := c.Step()
		if c.Checkstopped() {
			return fmt.Errorf("core checkstopped at cycle %d", c.Cycle)
		}
		if !ev.TestEnd {
			continue
		}
		ends++
		if ends <= warm {
			continue
		}
		tc := prog.Testcases[(ends-1)%testcases]
		st := c.ArchState()
		if st.MaskedSignature(tc.GPRMask, tc.FPRMask, tc.SPRMask) != tc.SigMasked ||
			c.Mem().DigestRange(prog.DataLo, prog.DataHi) != tc.MemDigest {
			bad++
		}
		checked++
	}
	fmt.Printf("barriers checked on the core: %d (%d signature mismatches)\n", checked, bad)
	if bad > 0 {
		return fmt.Errorf("golden signature mismatches on a fault-free run")
	}
	return nil
}
