// Command sfi-coord runs the coordinator side of a distributed
// fault-injection campaign: it shards the campaign into deterministic
// injection-index ranges, leases shards to sfi-worker processes over HTTP,
// re-queues shards whose workers die, journals completed shards for
// restart, and prints the merged report — identical to a single-process
// run of the same campaign — when the last shard lands.
//
// While the campaign runs the lease address also serves the fleet view:
// GET /v1/status (per-shard state machine, per-worker rates, live totals,
// latency attribution), GET /v1/trace (the campaign's causal span tree —
// coordinator shard spans plus the worker-side spans carried home on shard
// completions — with the critical path marked), GET /metrics (live
// fleet-wide Prometheus metrics, merged from worker heartbeat deltas and
// completed-shard snapshots, plus per-layer span histograms) and
// GET /progress.
// Lifecycle events (lease grants, requeues, completions) go to stderr as
// structured JSON logs; -shard-trace records them as JSONL for post-hoc
// forensics.
//
// Examples:
//
//	sfi-coord -addr :8430 -flips 100000                 # whole-core campaign
//	sfi-coord -addr :8430 -flips 20000 -unit LSU        # targeted
//	sfi-coord -addr :8430 -flips 100000 -journal c.jnl  # resumable + shard trace
//	sfi-coord -addr :8430 -flips 20000 -backend awan    # gate-level fleet
//	sfi-coord -addr :8430 -flips 200000 -margin 1 -stop-on-converge
//	                                    # adaptive: stop when every class CI ≤ 1 point
//
// Then, on each machine:
//
//	sfi-worker -coord http://coordhost:8430
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sfi"
	"sfi/internal/dist"
	"sfi/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8430", "listen address for the worker/lease API and fleet views")
		flips     = flag.Int("flips", 10000, "number of latch bits to inject")
		seed      = flag.Uint64("seed", 1, "sampling seed")
		backend   = flag.String("backend", "", "engine backend workers inject into (p6lite, awan; empty = p6lite)")
		lanes     = flag.Int("lanes", 0, "simulation-lane word width for batch-capable backends (awan): 64 packs 63 faults per model pass, 1 forces the scalar path, 0 = backend maximum")
		unit      = flag.String("unit", "", "target one unit")
		typ       = flag.String("type", "", "target one latch type")
		macro     = flag.String("macro", "", "target latch groups by name prefix")
		keep      = flag.Bool("keep-results", false, "retain per-injection results in the merged report")
		shardSize = flag.Int("shard-size", 0, "injections per shard (0 = ~64 shards)")

		// Adaptive statistical stopping rule (evaluated coordinator-side
		// over sealed completed-shard counts).
		margin     = flag.Float64("margin", 0, "evaluate per-class confidence intervals and report convergence once every outcome class's interval is at most this many percentage points wide (0 = off)")
		confidence = flag.Float64("confidence", 0.95, "confidence level for the -margin intervals")
		stopConv   = flag.Bool("stop-on-converge", false, "seal the campaign and cancel outstanding leases as soon as the -margin rule converges over completed shards")
		allocate   = flag.String("allocate", "uniform", "budget allocation across unit×latch-type sampling strata: uniform (pooled sample) or neyman (per-epoch Neyman re-allocation; with -margin, every stratum must converge)")
		epochs     = flag.Int("alloc-epochs", 0, "allocation epochs a -allocate neyman campaign re-plans at (0 = default)")
		ttl        = flag.Duration("lease-ttl", 10*time.Second, "shard lease TTL; workers heartbeat at TTL/3")
		attempts   = flag.Int("max-attempts", 3, "lease grants per shard before the campaign fails")
		journal    = flag.String("journal", "", "completed-shard journal for coordinator restart ('' = none)")
		shardTr    = flag.String("shard-trace", "auto", "shard-lifecycle trace JSONL file ('auto' = journal + .trace when -journal is set, '' = off)")
		jsonOut    = flag.Bool("json", false, "emit the merged report as JSON")
		progress   = flag.Bool("progress", true, "live fleet progress line on stderr")
		logLevel   = flag.String("log-level", "info", "event log level (debug, info, warn, error)")
		logText    = flag.Bool("log-text", false, "logfmt-style text event logs instead of JSON")
		httpAddr   = flag.String("http", "", "extra debug listener: /debug/vars (expvar) and /debug/pprof")
		quiet      = flag.Bool("quiet", false, "no progress line, warnings and errors only")
	)
	flag.Parse()

	if err := run(*addr, coordArgs{
		flips: *flips, seed: *seed, backend: *backend, lanes: *lanes, unit: *unit, typ: *typ, macro: *macro,
		keep: *keep, shardSize: *shardSize, ttl: *ttl, attempts: *attempts,
		margin: *margin, confidence: *confidence, stopConv: *stopConv,
		allocate: *allocate, epochs: *epochs,
		journal: *journal, shardTrace: *shardTr, jsonOut: *jsonOut,
		progress: *progress, logLevel: *logLevel, logText: *logText,
		httpAddr: *httpAddr, quiet: *quiet,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sfi-coord:", err)
		os.Exit(1)
	}
}

type coordArgs struct {
	flips            int
	seed             uint64
	backend          string
	lanes            int
	unit, typ, macro string
	keep             bool
	shardSize        int
	margin           float64
	confidence       float64
	stopConv         bool
	allocate         string
	epochs           int
	ttl              time.Duration
	attempts         int
	journal          string
	shardTrace       string
	jsonOut          bool
	progress         bool
	logLevel         string
	logText          bool
	httpAddr         string
	quiet            bool
}

func filterSpec(unit, typ, macro string) (dist.FilterSpec, error) {
	set := 0
	var f dist.FilterSpec
	if unit != "" {
		f = dist.FilterSpec{Kind: "unit", Arg: unit}
		set++
	}
	if typ != "" {
		f = dist.FilterSpec{Kind: "type", Arg: typ}
		set++
	}
	if macro != "" {
		f = dist.FilterSpec{Kind: "prefix", Arg: macro}
		set++
	}
	if set > 1 {
		return f, fmt.Errorf("use at most one of -unit, -type, -macro")
	}
	_, err := f.Filter()
	return f, err
}

func run(addr string, a coordArgs) error {
	filter, err := filterSpec(a.unit, a.typ, a.macro)
	if err != nil {
		return err
	}
	level, err := obs.ParseLogLevel(a.logLevel)
	if err != nil {
		return err
	}
	if a.quiet {
		a.progress = false
		if level < slog.LevelWarn {
			level = slog.LevelWarn
		}
	}
	log := obs.NewLogger(os.Stderr, level, !a.logText)

	runner := sfi.DefaultRunnerConfig()
	if a.backend != "" {
		known := false
		for _, b := range sfi.Backends() {
			if b == a.backend {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown backend %q (have %v)", a.backend, sfi.Backends())
		}
		runner.Backend = a.backend
	}
	if a.lanes > 0 {
		runner.BatchLanes = a.lanes
	}

	var stopRule sfi.StopConfig
	if a.margin > 0 {
		stopRule = sfi.StopConfig{
			TargetMargin:   a.margin / 100,
			Confidence:     a.confidence,
			StopOnConverge: a.stopConv,
		}
	} else if a.stopConv {
		return fmt.Errorf("-stop-on-converge needs a -margin")
	}

	// "uniform" normalizes to the zero AllocConfig so uniform campaigns'
	// wire specs and journal headers stay byte-identical to pre-allocation
	// versions.
	var alloc sfi.AllocConfig
	if a.allocate != "" && a.allocate != sfi.AllocUniform {
		alloc = sfi.AllocConfig{Mode: a.allocate, Epochs: a.epochs}
	}

	cfg := dist.CoordConfig{
		Campaign: dist.CampaignSpec{
			Runner:      runner,
			Seed:        a.seed,
			Flips:       a.flips,
			Filter:      filter,
			KeepResults: a.keep,
			Stop:        stopRule,
			Alloc:       alloc,
		},
		ShardSize:   a.shardSize,
		LeaseTTL:    a.ttl,
		MaxAttempts: a.attempts,
		Journal:     a.journal,
		Log:         log,
		// Campaign tracing is always on: spans are per-shard and per-batch,
		// so a whole campaign costs a few thousand ring entries.
		Tracer: sfi.NewTracer(a.seed),
	}

	if a.shardTrace == "auto" {
		a.shardTrace = ""
		if a.journal != "" {
			a.shardTrace = a.journal + ".trace"
		}
	}
	var traceFlush func() error
	if a.shardTrace != "" {
		f, err := os.Create(a.shardTrace)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		sink := obs.NewTraceSink(bw, obs.TraceOptions{})
		cfg.ShardTrace = sink
		traceFlush = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if err := sink.Err(); err != nil {
				return fmt.Errorf("shard trace write: %w", err)
			}
			log.Info("shard trace written", "path", a.shardTrace, "events", sink.Recorded())
			return nil
		}
	}

	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	// Graceful drain (runs before the deferred coord.Close by LIFO): let
	// in-flight /v1/complete posts land before the journal is sealed.
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.Shutdown(sctx) //nolint:errcheck // past the deadline Close semantics apply
	}()
	log.Info("coordinator listening", "addr", ln.Addr().String(),
		"endpoints", "POST /v1/lease, GET /v1/status, GET /v1/trace, GET /progress, GET /metrics")

	if a.httpAddr != "" {
		dln, err := net.Listen("tcp", a.httpAddr)
		if err != nil {
			return err
		}
		// expvar's /debug/vars and pprof's /debug/pprof are registered on
		// the default mux by their package inits; publish the live fleet
		// snapshot there too.
		sfi.PublishMetricsExpvar("sfi_fleet", coord.FleetSnapshot)
		go http.Serve(dln, nil)
		log.Info("debug listener", "addr", dln.Addr().String(),
			"endpoints", "/debug/vars, /debug/pprof")
	}

	// SIGTERM (the fleet-manager / container-runtime stop signal) drains
	// exactly like ^C: Wait returns, HTTP drains, the journal seals.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if a.progress {
		go func() {
			t := time.NewTicker(2 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					p := coord.Progress()
					fp := sfi.ProgressFrom(coord.FleetSnapshot(), p.Total, 0, start)
					fp.Convergence = coord.Convergence()
					line := fmt.Sprintf("%s — shards %d/%d done, %d leased, %d requeued",
						fp.Line(), p.Done, p.Shards, p.Leased, p.Requeues)
					fmt.Fprintf(os.Stderr, "\r%-100s", line)
				}
			}
		}()
	}

	rep, err := coord.Wait(ctx)
	if a.progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if traceFlush != nil {
		if err := traceFlush(); err != nil {
			return err
		}
	}
	log.Info("campaign merged", "injections", rep.Total,
		"elapsed", time.Since(start).Round(time.Millisecond).String(),
		"shards", coord.Progress().Shards)
	if doc := coord.TraceDoc(); doc != nil && doc.Root != nil {
		at := doc.Attribution
		log.Info("latency attribution", "total_ms", int64(at.TotalMs),
			"run_ms", int64(at.RunMs), "merge_ms", int64(at.MergeMs),
			"other_ms", int64(at.OtherMs), "spans", doc.Spans, "trace", doc.TraceID)
	}
	if d := coord.StopDecision(); d != nil {
		log.Info("converged early", "injections", d.Total, "budget", a.flips,
			"widest_class", d.WidestClass, "widest_width", d.WidestWidth,
			"target_margin", d.TargetMargin)
	}
	if a.jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(rep)
	return nil
}
