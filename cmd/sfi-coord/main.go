// Command sfi-coord runs the coordinator side of a distributed
// fault-injection campaign: it shards the campaign into deterministic
// injection-index ranges, leases shards to sfi-worker processes over HTTP,
// re-queues shards whose workers die, journals completed shards for
// restart, and prints the merged report — identical to a single-process
// run of the same campaign — when the last shard lands.
//
// Examples:
//
//	sfi-coord -addr :8430 -flips 100000                 # whole-core campaign
//	sfi-coord -addr :8430 -flips 20000 -unit LSU        # targeted
//	sfi-coord -addr :8430 -flips 100000 -journal c.jnl  # resumable
//
// Then, on each machine:
//
//	sfi-worker -coord http://coordhost:8430
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"sfi/internal/core"
	"sfi/internal/dist"
)

func main() {
	var (
		addr      = flag.String("addr", ":8430", "listen address for the worker/lease API")
		flips     = flag.Int("flips", 10000, "number of latch bits to inject")
		seed      = flag.Uint64("seed", 1, "sampling seed")
		unit      = flag.String("unit", "", "target one unit")
		typ       = flag.String("type", "", "target one latch type")
		macro     = flag.String("macro", "", "target latch groups by name prefix")
		keep      = flag.Bool("keep-results", false, "retain per-injection results in the merged report")
		shardSize = flag.Int("shard-size", 0, "injections per shard (0 = ~64 shards)")
		ttl       = flag.Duration("lease-ttl", 10*time.Second, "shard lease TTL; workers heartbeat at TTL/3")
		attempts  = flag.Int("max-attempts", 3, "lease grants per shard before the campaign fails")
		journal   = flag.String("journal", "", "completed-shard journal for coordinator restart ('' = none)")
		jsonOut   = flag.Bool("json", false, "emit the merged report as JSON")
		quiet     = flag.Bool("quiet", false, "suppress the periodic progress line")
	)
	flag.Parse()

	if err := run(*addr, coordArgs{
		flips: *flips, seed: *seed, unit: *unit, typ: *typ, macro: *macro,
		keep: *keep, shardSize: *shardSize, ttl: *ttl, attempts: *attempts,
		journal: *journal, jsonOut: *jsonOut, quiet: *quiet,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sfi-coord:", err)
		os.Exit(1)
	}
}

type coordArgs struct {
	flips            int
	seed             uint64
	unit, typ, macro string
	keep             bool
	shardSize        int
	ttl              time.Duration
	attempts         int
	journal          string
	jsonOut          bool
	quiet            bool
}

func filterSpec(unit, typ, macro string) (dist.FilterSpec, error) {
	set := 0
	var f dist.FilterSpec
	if unit != "" {
		f = dist.FilterSpec{Kind: "unit", Arg: unit}
		set++
	}
	if typ != "" {
		f = dist.FilterSpec{Kind: "type", Arg: typ}
		set++
	}
	if macro != "" {
		f = dist.FilterSpec{Kind: "prefix", Arg: macro}
		set++
	}
	if set > 1 {
		return f, fmt.Errorf("use at most one of -unit, -type, -macro")
	}
	_, err := f.Filter()
	return f, err
}

func run(addr string, a coordArgs) error {
	filter, err := filterSpec(a.unit, a.typ, a.macro)
	if err != nil {
		return err
	}
	coord, err := dist.NewCoordinator(dist.CoordConfig{
		Campaign: dist.CampaignSpec{
			Runner:      core.DefaultRunnerConfig(),
			Seed:        a.seed,
			Flips:       a.flips,
			Filter:      filter,
			KeepResults: a.keep,
		},
		ShardSize:   a.shardSize,
		LeaseTTL:    a.ttl,
		MaxAttempts: a.attempts,
		Journal:     a.journal,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "coordinator on http://%s (POST /v1/lease, GET /progress, GET /metrics)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if !a.quiet {
		go func() {
			t := time.NewTicker(2 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					p := coord.Progress()
					fmt.Fprintf(os.Stderr, "\rshards %d/%d done, %d leased — %d/%d injections",
						p.Done, p.Shards, p.Leased, p.Injections, p.Total)
				}
			}
		}()
	}

	start := time.Now()
	rep, err := coord.Wait(ctx)
	if !a.quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign: %d injections in %v (merged from %d shards)\n",
		rep.Total, time.Since(start).Round(time.Millisecond), coord.Progress().Shards)
	if a.jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Print(rep)
	return nil
}
