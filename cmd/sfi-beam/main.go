// Command sfi-beam runs the simulated proton-beam experiment standalone or
// as the Table 2 calibration against a matching SFI campaign.
//
// Examples:
//
//	sfi-beam -strikes 5000                # beam run only
//	sfi-beam -strikes 5000 -calibrate     # beam + SFI + chi-square
//	sfi-beam -strikes 2000 -array-weight 0.05 -nest
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sfi"
)

func main() {
	var (
		strikes   = flag.Int("strikes", 2000, "particle strikes to deliver")
		seed      = flag.Uint64("seed", 7, "beam randomness seed")
		gap       = flag.Float64("gap", 3000, "mean cycles between strikes")
		weight    = flag.Float64("array-weight", 0.008, "SRAM cell cross-section relative to a latch")
		nest      = flag.Bool("nest", false, "irradiate the core periphery too")
		calibrate = flag.Bool("calibrate", false, "also run a matching SFI campaign and compare (Table 2)")
		flips     = flag.Int("flips", 4000, "SFI campaign size for -calibrate")
	)
	flag.Parse()

	cfg := sfi.DefaultBeamConfig()
	cfg.Strikes = *strikes
	cfg.Seed = *seed
	cfg.MeanGap = *gap
	cfg.ArrayWeight = *weight
	cfg.Proc.EnableNest = *nest

	start := time.Now()
	rep, err := sfi.RunBeam(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfi-beam:", err)
		os.Exit(1)
	}
	fmt.Printf("beam run finished in %v (%d cycles irradiated)\n",
		time.Since(start).Round(time.Millisecond), rep.Cycles)
	fmt.Println(rep)

	if !*calibrate {
		return
	}
	ccfg := sfi.DefaultCampaignConfig()
	ccfg.Flips = *flips
	ccfg.Runner.Proc.EnableNest = *nest
	srep, err := sfi.RunCampaign(ccfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfi-beam:", err)
		os.Exit(1)
	}
	fmt.Println("\nmatching SFI campaign:")
	fmt.Print(srep)
	stat, p, err := sfi.CalibrateBeam(srep.Fraction(sfi.Vanished),
		srep.Fraction(sfi.Corrected), srep.Fraction(sfi.Checkstop), rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfi-beam:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncalibration: chi-square %.3f, p = %.3f\n", stat, p)
}
