// Command sfi-tables regenerates every table and figure of the paper's
// evaluation: Table 1 (AVP vs SPECInt 2000), Figure 2 (sample-size
// accuracy), Table 2 (SFI vs proton beam), Figure 3 (per-unit SER),
// Figure 4 (per-unit contribution), Figure 5 (latch types) and Table 3
// (checker effectiveness).
//
// Usage:
//
//	sfi-tables [-exp all|table1|fig2|table2|fig3|fig4|fig5|table3] [-scale N]
//
// -scale multiplies the campaign sizes (1 = the defaults documented in
// DESIGN.md's scaling disclosures).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sfi"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig2, table2, fig3, fig4, fig5, table3")
	scale := flag.Int("scale", 1, "campaign size multiplier")
	workers := flag.Int("workers", 0, "concurrent model copies (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*exp, *scale, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "sfi-tables:", err)
		os.Exit(1)
	}
}

func run(exp string, scale, workers int) error {
	if scale < 1 {
		return fmt.Errorf("scale must be >= 1")
	}
	all := exp == "all"
	ran := false
	section := func(name string) func() {
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		return func() { fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond)) }
	}

	if all || exp == "table1" {
		ran = true
		done := section("Table 1: AVP vs SPECInt 2000 instruction mix and CPI")
		t, err := sfi.BuildTable1(11)
		if err != nil {
			return err
		}
		fmt.Print(t)
		done()
	}
	if all || exp == "fig2" {
		ran = true
		done := section("Figure 2: accuracy of SFI with increasing number of flips")
		cfg := sfi.DefaultFig2Config()
		cfg.Workers = workers
		for i := range cfg.Sizes {
			cfg.Sizes[i] *= scale
		}
		r, err := sfi.RunFig2(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r)
		done()
	}
	if all || exp == "table2" {
		ran = true
		done := section("Table 2: error state proportions, SFI vs proton beam")
		cfg := sfi.DefaultTable2Config()
		cfg.Workers = workers
		cfg.Flips *= scale
		cfg.Beam.Strikes *= scale
		r, err := sfi.RunTable2(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r)
		done()
	}
	var f3 *sfi.Fig3Result
	if all || exp == "fig3" || exp == "fig4" {
		ran = true
		done := section("Figure 3: SER of different micro-architecture units")
		cfg := sfi.DefaultFig3Config()
		cfg.Workers = workers
		cfg.Fraction *= float64(scale)
		if cfg.Fraction > 1 {
			cfg.Fraction = 1
		}
		var err error
		f3, err = sfi.RunFig3(cfg)
		if err != nil {
			return err
		}
		fmt.Print(f3)
		done()
	}
	if all || exp == "fig4" {
		ran = true
		done := section("Figure 4: contribution of each unit to recoveries/hangs/checkstops")
		fmt.Print(sfi.DeriveFig4(f3))
		done()
	}
	if all || exp == "fig5" {
		ran = true
		done := section("Figure 5: SER of different types of latches")
		cfg := sfi.DefaultFig5Config()
		cfg.Workers = workers
		cfg.Fraction *= float64(scale)
		if cfg.Fraction > 1 {
			cfg.Fraction = 1
		}
		r, err := sfi.RunFig5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r)
		done()
	}
	if all || exp == "table3" {
		ran = true
		done := section("Table 3: effect of the hardware checkers (Raw vs Check)")
		cfg := sfi.DefaultTable3Config()
		cfg.Workers = workers
		cfg.Flips *= scale
		r, err := sfi.RunTable3(cfg)
		if err != nil {
			return err
		}
		fmt.Print(r)
		done()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
