// Package workload reproduces the paper's Table 1: a comparison of the
// AVP's instruction mix and CPI against the eleven components of the
// SPECInt 2000 suite. SPEC traces are proprietary, so each component is a
// synthetic profile whose per-class target mix is consistent with the
// summary statistics the paper publishes (the Low/High/Average columns);
// the actual mix is measured dynamically on the generated stream and the
// CPI is measured by running the stream on the core model — as the paper's
// "performance estimation tool" did.
package workload

import (
	"fmt"

	"sfi/internal/avp"
	"sfi/internal/isa"
	"sfi/internal/proc"
)

// Component is one synthetic SPECInt 2000 profile.
type Component struct {
	Name   string
	Target map[isa.Class]float64 // target dynamic mix, fractions
}

// Components returns the eleven SPECInt 2000 component profiles. The
// per-class minima, maxima and means across the rows match the paper's
// published Low/High/Average bounds.
func Components() []Component {
	row := func(name string, ld, st, fx, fp, cmp, br float64) Component {
		return Component{Name: name, Target: map[isa.Class]float64{
			isa.ClassLoad:   ld / 100,
			isa.ClassStore:  st / 100,
			isa.ClassFixed:  fx / 100,
			isa.ClassFloat:  fp / 100,
			isa.ClassCmp:    cmp / 100,
			isa.ClassBranch: br / 100,
		}}
	}
	return []Component{
		row("gzip", 28.0, 8.0, 28.0, 0, 8.0, 18.0),
		row("vpr", 30.0, 12.0, 20.0, 9.1, 9.0, 9.9),
		row("gcc", 25.0, 16.0, 18.0, 0, 9.0, 22.0),
		row("mcf", 35.6, 6.4, 24.0, 0, 10.0, 14.0),
		row("crafty", 27.0, 9.0, 30.0, 0, 11.0, 13.0),
		row("parser", 24.0, 12.0, 20.0, 0, 15.1, 18.9),
		row("eon", 30.0, 20.0, 22.0, 4.1, 6.0, 7.9),
		row("perlbmk", 26.0, 15.0, 15.0, 0, 5.2, 28.8),
		row("gap", 27.0, 12.0, 35.9, 0, 8.2, 6.9),
		row("vortex", 29.0, 31.7, 6.2, 0, 9.1, 14.0),
		row("bzip2", 18.9, 17.3, 29.0, 0, 4.8, 20.0),
	}
}

// Measurement is one profile's measured dynamic mix and CPI.
type Measurement struct {
	Name string
	Mix  map[isa.Class]float64
	CPI  float64
}

// Measure generates a stream matching the component's target mix
// (iteratively calibrating the generator weights against the measured
// dynamic mix) and measures its CPI on the core model.
func Measure(comp Component, seed uint64) (Measurement, error) {
	cfg := avp.DefaultConfig()
	cfg.Seed = seed
	cfg.Testcases = 8
	cfg.BodyOps = 80
	cfg.SkipEpilogue = true
	cfg.Weights = avp.Weights{
		Load:   comp.Target[isa.ClassLoad],
		Store:  comp.Target[isa.ClassStore],
		Fixed:  comp.Target[isa.ClassFixed],
		Float:  comp.Target[isa.ClassFloat],
		Cmp:    comp.Target[isa.ClassCmp],
		Branch: comp.Target[isa.ClassBranch],
	}

	var prog *avp.Program
	for iter := 0; iter < 6; iter++ {
		p, err := avp.Generate(cfg)
		if err != nil {
			return Measurement{}, fmt.Errorf("workload %s: %w", comp.Name, err)
		}
		prog = p
		// Multiplicative calibration toward the target mix.
		adj := func(w *float64, c isa.Class) {
			target := comp.Target[c]
			got := p.DynMix(c)
			if target <= 0 {
				*w = 0
				return
			}
			if got <= 0 {
				*w *= 2
				return
			}
			f := target / got
			if f > 3 {
				f = 3
			}
			if f < 1.0/3 {
				f = 1.0 / 3
			}
			*w *= f
		}
		adj(&cfg.Weights.Load, isa.ClassLoad)
		adj(&cfg.Weights.Store, isa.ClassStore)
		adj(&cfg.Weights.Fixed, isa.ClassFixed)
		adj(&cfg.Weights.Float, isa.ClassFloat)
		adj(&cfg.Weights.Cmp, isa.ClassCmp)
		adj(&cfg.Weights.Branch, isa.ClassBranch)
	}

	cpi, err := MeasureCPI(prog, cfg.Testcases)
	if err != nil {
		return Measurement{}, fmt.Errorf("workload %s: %w", comp.Name, err)
	}
	mix := make(map[isa.Class]float64, len(isa.Classes))
	for _, c := range isa.Classes {
		mix[c] = prog.DynMix(c)
	}
	return Measurement{Name: comp.Name, Mix: mix, CPI: cpi}, nil
}

// MeasureCPI runs a generated program on the core model and returns the
// steady-state cycles-per-instruction over one full pass (after two warm
// passes).
func MeasureCPI(prog *avp.Program, testcases int) (float64, error) {
	pcfg := proc.DefaultConfig()
	c := proc.New(pcfg)
	c.Mem().LoadProgram(0, prog.Words)
	ends := 0
	warm := 2 * testcases
	const guard = 50_000_000
	for i := 0; ends < warm; i++ {
		if i > guard {
			return 0, fmt.Errorf("workload: CPI warm-up did not converge")
		}
		if c.Step().TestEnd {
			ends++
		}
		if c.Checkstopped() {
			return 0, fmt.Errorf("workload: core checkstopped")
		}
	}
	startCycles, startInsts := c.Cycle, c.Completed
	for i := 0; ends < warm+testcases; i++ {
		if i > guard {
			return 0, fmt.Errorf("workload: CPI measurement did not converge")
		}
		if c.Step().TestEnd {
			ends++
		}
	}
	insts := c.Completed - startInsts
	if insts == 0 {
		return 0, fmt.Errorf("workload: no instructions completed")
	}
	return float64(c.Cycle-startCycles) / float64(insts), nil
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Class             isa.Class
	Low, High, Avg    float64
	AVP               float64
	LowName, HighName string
}

// Table1 measures every component plus the AVP and assembles the paper's
// Table 1: per-class Low/High/Average across the SPEC components and the
// AVP column, plus the CPI row.
type Table1 struct {
	Rows       []Table1Row
	CPILow     float64
	CPIHigh    float64
	CPIAvg     float64
	CPIAVP     float64
	Components []Measurement
	AVPMix     map[isa.Class]float64
}

// BuildTable1 runs the full Table 1 experiment.
func BuildTable1(seed uint64) (*Table1, error) {
	comps := Components()
	t := &Table1{}
	for i, comp := range comps {
		m, err := Measure(comp, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		t.Components = append(t.Components, m)
	}

	// AVP measurement: the real default AVP configuration, epilogue
	// included.
	avpCfg := avp.DefaultConfig()
	avpProg, err := avp.Generate(avpCfg)
	if err != nil {
		return nil, err
	}
	avpCPI, err := MeasureCPI(avpProg, avpCfg.Testcases)
	if err != nil {
		return nil, err
	}
	t.CPIAVP = avpCPI
	t.AVPMix = make(map[isa.Class]float64)
	for _, c := range isa.Classes {
		t.AVPMix[c] = avpProg.DynMix(c)
	}

	for _, cls := range isa.Classes {
		row := Table1Row{Class: cls, Low: 2, High: -1}
		sum := 0.0
		for _, m := range t.Components {
			v := m.Mix[cls]
			sum += v
			if v < row.Low {
				row.Low = v
				row.LowName = m.Name
			}
			if v > row.High {
				row.High = v
				row.HighName = m.Name
			}
		}
		row.Avg = sum / float64(len(t.Components))
		row.AVP = t.AVPMix[cls]
		t.Rows = append(t.Rows, row)
	}

	t.CPILow, t.CPIHigh = 1e9, -1
	cpiSum := 0.0
	for _, m := range t.Components {
		cpiSum += m.CPI
		if m.CPI < t.CPILow {
			t.CPILow = m.CPI
		}
		if m.CPI > t.CPIHigh {
			t.CPIHigh = m.CPI
		}
	}
	t.CPIAvg = cpiSum / float64(len(t.Components))
	return t, nil
}

// String renders the table in the paper's layout.
func (t *Table1) String() string {
	s := fmt.Sprintf("%-16s %8s %8s %8s %8s\n", "Instruction Mix", "Low", "High", "Average", "AVP")
	for _, r := range t.Rows {
		s += fmt.Sprintf("%-16s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			r.Class, 100*r.Low, 100*r.High, 100*r.Avg, 100*r.AVP)
	}
	s += fmt.Sprintf("%-16s %8.2f %8.2f %8.2f %8.2f\n", "CPI",
		t.CPILow, t.CPIHigh, t.CPIAvg, t.CPIAVP)
	return s
}
