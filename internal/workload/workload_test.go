package workload

import (
	"testing"

	"sfi/internal/isa"
)

func TestComponentsMatchPublishedBounds(t *testing.T) {
	comps := Components()
	if len(comps) != 11 {
		t.Fatalf("got %d components, want 11", len(comps))
	}
	// Paper Table 1 bounds (fractions).
	bounds := map[isa.Class][3]float64{ // low, high, average
		isa.ClassLoad:   {0.189, 0.356, 0.278},
		isa.ClassStore:  {0.064, 0.317, 0.141},
		isa.ClassFixed:  {0.062, 0.359, 0.222},
		isa.ClassFloat:  {0.0, 0.091, 0.012},
		isa.ClassCmp:    {0.048, 0.151, 0.088},
		isa.ClassBranch: {0.069, 0.288, 0.154},
	}
	for cls, b := range bounds {
		lo, hi, sum := 2.0, -1.0, 0.0
		for _, comp := range comps {
			v := comp.Target[cls]
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		avg := sum / float64(len(comps))
		if diff := lo - b[0]; diff > 0.005 || diff < -0.005 {
			t.Errorf("%v low = %.3f, paper %.3f", cls, lo, b[0])
		}
		if diff := hi - b[1]; diff > 0.005 || diff < -0.005 {
			t.Errorf("%v high = %.3f, paper %.3f", cls, hi, b[1])
		}
		if diff := avg - b[2]; diff > 0.02 || diff < -0.02 {
			t.Errorf("%v average = %.3f, paper %.3f", cls, avg, b[2])
		}
	}
}

func TestMeasureConvergesToTarget(t *testing.T) {
	comp := Components()[0] // gzip
	m, err := Measure(comp, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range isa.Classes {
		got := m.Mix[cls]
		want := comp.Target[cls]
		if diff := got - want; diff > 0.06 || diff < -0.06 {
			t.Errorf("%v mix = %.3f, target %.3f (off by > 6 points)", cls, got, want)
		}
	}
	if m.CPI < 1 || m.CPI > 15 {
		t.Errorf("CPI = %.2f out of sane range", m.CPI)
	}
}

func TestMeasureFPComponent(t *testing.T) {
	// vpr has a floating-point component; the stream must contain FP.
	m, err := Measure(Components()[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mix[isa.ClassFloat] <= 0 {
		t.Error("vpr profile has no floating point instructions")
	}
}

func TestBuildTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 build is slow")
	}
	tbl, err := BuildTable1(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(isa.Classes) {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.Low > r.Avg || r.Avg > r.High {
			t.Errorf("%v: low %.3f avg %.3f high %.3f not ordered", r.Class, r.Low, r.Avg, r.High)
		}
		// The paper's conclusion: the AVP fits within the SPECInt bounds
		// (allow a small tolerance for the synthetic stream).
		if r.AVP > r.High+0.06 || (r.AVP < r.Low-0.06 && r.AVP > 0.001) {
			t.Errorf("%v: AVP %.3f outside [%.3f, %.3f]", r.Class, r.AVP, r.Low, r.High)
		}
	}
	if tbl.CPIAVP < tbl.CPILow-1.5 || tbl.CPIAVP > tbl.CPIHigh+1.5 {
		t.Errorf("AVP CPI %.2f far outside component band [%.2f, %.2f]",
			tbl.CPIAVP, tbl.CPILow, tbl.CPIHigh)
	}
	if tbl.String() == "" {
		t.Error("empty table rendering")
	}
}
