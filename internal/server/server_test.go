package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"sfi/internal/core"
	"sfi/internal/dist"
	_ "sfi/internal/engine/p6lite" // default backend for real campaign runs
)

// tinySpec builds a campaign spec small enough to run for real in tests.
// Campaigns sharing avp tuning share a checkpoint image; the seed keeps
// their spec digests (and thus reports) distinct.
func tinySpec(tenant string, seed uint64, flips, shardSize int) Spec {
	rc := core.DefaultRunnerConfig()
	rc.AVP.Testcases = 2
	rc.AVP.BodyOps = 4
	return Spec{
		Tenant:    tenant,
		Campaign:  dist.CampaignSpec{Runner: rc, Seed: seed, Flips: flips},
		ShardSize: shardSize,
	}
}

// heavySpec builds a campaign whose boot is slow enough to act as a
// scheduler blocker while the test manipulates the queue behind it.
func heavySpec(seed uint64) Spec {
	rc := core.DefaultRunnerConfig()
	rc.AVP.Testcases = 8
	rc.AVP.BodyOps = 64
	return Spec{
		Campaign:  dist.CampaignSpec{Runner: rc, Seed: seed, Flips: 64},
		ShardSize: 64,
	}
}

func newTestServer(t *testing.T, dir string, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Dir:           dir,
		MaxConcurrent: 2,
		PollEvery:     time.Millisecond,
		LeaseTTL:      time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitState(t *testing.T, s *Server, id, want string, timeout time.Duration) Campaign {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		c, ok := s.Get(id)
		if !ok {
			t.Fatalf("campaign %s vanished", id)
		}
		if c.State == want {
			return c
		}
		if c.State == StateFailed && want != StateFailed {
			t.Fatalf("campaign %s failed: %s", id, c.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %q, want %q", id, c.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLoopbackSubmitConvergeReport is the end-to-end smoke test `make ci`
// runs: boot a server, submit an adaptive campaign over real HTTP, watch
// it converge, and pull the report, events, status and metrics back out.
func TestLoopbackSubmitConvergeReport(t *testing.T) {
	s := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := tinySpec("smoke", 7, 300, 20)
	spec.Campaign.Stop = core.StopConfig{
		TargetMargin:   0.25,
		Confidence:     0.90,
		MinPerClass:    1,
		StopOnConverge: true,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", resp.StatusCode)
	}
	var c Campaign
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if c.State != StateQueued || c.ID == "" || c.Digest == "" || c.ImageDigest == "" {
		t.Fatalf("submitted campaign = %+v, want a queued record with digests", c)
	}

	// Poll the REST status until the campaign settles.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/campaigns/" + c.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if c.State == StateDone {
			break
		}
		if c.State == StateFailed || time.Now().After(deadline) {
			t.Fatalf("campaign %s in state %q (%s), want done", c.ID, c.State, c.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if c.Injections == 0 || c.ReportHash == "" {
		t.Fatalf("done campaign = %+v, want injections and a report hash", c)
	}

	// The stored report document: totals, convergence, stable ETag.
	r, err := http.Get(ts.URL + "/v1/campaigns/" + c.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d, want 200", r.StatusCode)
	}
	if etag := r.Header.Get("ETag"); !strings.Contains(etag, c.ReportHash) {
		t.Fatalf("report ETag %q does not carry the object hash %s", etag, c.ReportHash)
	}
	var doc ReportDoc
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if doc.SpecDigest != c.Digest {
		t.Fatalf("report spec digest %s, want %s", doc.SpecDigest, c.Digest)
	}
	if doc.Report == nil || doc.Report.Total != c.Injections {
		t.Fatalf("report total = %+v, want %d injections", doc.Report, c.Injections)
	}
	if doc.Convergence == nil {
		t.Fatal("adaptive campaign stored no convergence evaluation")
	}
	if doc.Report.Metrics != nil {
		t.Fatal("stored report kept its metrics snapshot (breaks content addressing)")
	}

	// Shard events were traced.
	r, err = http.Get(ts.URL + "/v1/campaigns/" + c.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || raw.Len() == 0 {
		t.Fatalf("events = status %d, %d bytes; want traced shards", r.StatusCode, raw.Len())
	}

	// Server-wide views.
	r, err = http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Campaigns[StateDone] < 1 {
		t.Fatalf("server status %+v, want at least one done campaign", st.Campaigns)
	}
	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := new(bytes.Buffer)
	metrics.ReadFrom(r.Body)
	r.Body.Close()
	if !strings.Contains(metrics.String(), `sfi_server_campaigns{state="done"} `) {
		t.Fatalf("metrics exposition missing campaign states:\n%s", metrics.String())
	}
}

// TestReportDedup submits the same spec twice: the second submission must
// settle instantly from the content-addressed store with an identical
// report.
func TestReportDedup(t *testing.T) {
	s := newTestServer(t, t.TempDir(), nil)
	spec := tinySpec("t", 21, 60, 20)

	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	first = waitState(t, s, first.ID, StateDone, 30*time.Second)

	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Dedup {
		t.Fatalf("identical resubmission = %+v, want instant dedup done", second)
	}
	if second.ReportHash != first.ReportHash {
		t.Fatalf("dedup hash %s != original %s", second.ReportHash, first.ReportHash)
	}
	d1, _, err := s.Report(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := s.Report(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("dedup served different report bytes")
	}
}

// TestImageCacheShared runs two campaigns that differ only in seed: they
// share one warm checkpoint image, so the second boots from a clone.
func TestImageCacheShared(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.MaxConcurrent = 1 })
	a, err := s.Submit(tinySpec("t", 31, 40, 40))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(tinySpec("t", 32, 40, 40))
	if err != nil {
		t.Fatal(err)
	}
	if a.ImageDigest != b.ImageDigest {
		t.Fatalf("same runner config produced different image digests %s vs %s",
			a.ImageDigest, b.ImageDigest)
	}
	a = waitState(t, s, a.ID, StateDone, 30*time.Second)
	b = waitState(t, s, b.ID, StateDone, 30*time.Second)
	if a.ImageHit {
		t.Fatal("first campaign claims a warm-cache hit")
	}
	if !b.ImageHit {
		t.Fatal("second campaign with the same image digest missed the warm cache")
	}
	if st := s.Status(); st.ImageCache.Hits < 1 || st.ImageCache.Images < 1 {
		t.Fatalf("image cache stats %+v, want a recorded hit", st.ImageCache)
	}
}

// TestCancelQueuedNeverLeases parks a campaign behind a running blocker,
// cancels it while queued, and verifies it never started: no journal, no
// start time, state cancelled.
func TestCancelQueuedNeverLeases(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.MaxConcurrent = 1 })
	blocker, err := s.Submit(heavySpec(41))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning, 30*time.Second)

	victim, err := s.Submit(tinySpec("t", 42, 40, 40))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, victim.ID, StateCancelled, time.Second)
	if got.StartedAt != nil {
		t.Fatalf("cancelled-while-queued campaign has a start time %v", got.StartedAt)
	}
	if err := s.Cancel(victim.ID); err != ErrFinished {
		t.Fatalf("cancelling a settled campaign = %v, want ErrFinished", err)
	}

	waitState(t, s, blocker.ID, StateDone, 60*time.Second)
	// The freed slot must not revive the cancelled campaign.
	time.Sleep(20 * time.Millisecond)
	if c, _ := s.Get(victim.ID); c.State != StateCancelled {
		t.Fatalf("cancelled campaign revived into %q", c.State)
	}
	if s.st.HasJournal(victim.ID) {
		t.Fatal("cancelled queued campaign opened a coordinator journal (leased shards)")
	}
}

// TestWeightedTenantsConverge queues unequal tenant loads behind a
// blocker on a single-slot server and verifies the start order realizes
// the configured 3:1 weights while both tenants stay backlogged.
func TestWeightedTenantsConverge(t *testing.T) {
	s := newTestServer(t, t.TempDir(), func(c *Config) {
		c.MaxConcurrent = 1
		c.TenantWeights = map[string]float64{"a": 3, "b": 1}
	})
	blocker, err := s.Submit(heavySpec(51))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning, 30*time.Second)

	ids := map[string]string{} // id -> tenant
	for i := 0; i < 6; i++ {
		a, err := s.Submit(tinySpec("a", uint64(100+i), 24, 24))
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Submit(tinySpec("b", uint64(200+i), 24, 24))
		if err != nil {
			t.Fatal(err)
		}
		ids[a.ID], ids[b.ID] = "a", "b"
	}
	var last Campaign
	for id := range ids {
		last = waitState(t, s, id, StateDone, 60*time.Second)
	}
	_ = last

	// Reconstruct service order from start times.
	type started struct {
		tenant string
		at     time.Time
	}
	var order []started
	for id, tenant := range ids {
		c, _ := s.Get(id)
		if c.StartedAt == nil {
			t.Fatalf("done campaign %s has no start time", id)
		}
		order = append(order, started{tenant, *c.StartedAt})
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].at.Before(order[i].at) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	// While both tenants were backlogged (the first 8 starts), stride
	// scheduling serves exactly 3 a's per b.
	counts := map[string]int{}
	for _, sv := range order[:8] {
		counts[sv.tenant]++
	}
	if counts["a"] != 6 || counts["b"] != 2 {
		t.Fatalf("first 8 services = %v, want 6 a / 2 b under 3:1 weights (order %v)", counts, order)
	}
	if st := s.Status(); st.Tenants["a"].Served != 6 || st.Tenants["b"].Served != 6 {
		t.Fatalf("tenant ledger %+v, want 6 served each after drain", st.Tenants)
	}
}

// TestServerRestartResumes kills a server mid-campaign and reopens it
// over the same store: the campaign resumes from its journal and the
// final report is byte-identical to an uninterrupted control run.
func TestServerRestartResumes(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("t", 61, 240, 8) // 30 shards: wide window to interrupt
	spec.Campaign.Runner.AVP.Testcases = 4
	spec.Campaign.Runner.AVP.BodyOps = 16

	s1 := newTestServer(t, dir, func(c *Config) { c.MaxConcurrent = 1 })
	c, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the journal holds the header plus at least two sealed
	// shards, then pull the plug mid-campaign.
	journal := s1.st.JournalPath(c.ID)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(journal); err == nil && bytes.Count(data, []byte("\n")) >= 3 {
			break
		}
		if cc, _ := s1.Get(c.ID); cc.State == StateDone {
			t.Skip("campaign finished before the interrupt window; nothing to resume")
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never accumulated sealed shards")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	interrupted, ok := s1.Get(c.ID)
	if !ok || (interrupted.State != StateQueued && interrupted.State != StateDone) {
		t.Fatalf("after shutdown campaign is %q, want queued (resumable) or done", interrupted.State)
	}
	if interrupted.State == StateDone {
		t.Skip("campaign finished during drain; nothing to resume")
	}

	// Reopen over the same store: recovery re-queues and the coordinator
	// replays the journal instead of redoing sealed shards.
	s2 := newTestServer(t, dir, func(c *Config) { c.MaxConcurrent = 1 })
	resumed := waitState(t, s2, c.ID, StateDone, 60*time.Second)
	if resumed.Injections != spec.Campaign.Flips {
		t.Fatalf("resumed campaign ran %d injections, want %d", resumed.Injections, spec.Campaign.Flips)
	}
	resumedDoc, resumedHash, err := s2.Report(c.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Control: the same spec, uninterrupted, in a fresh store.
	s3 := newTestServer(t, t.TempDir(), func(c *Config) { c.MaxConcurrent = 1 })
	control, err := s3.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	control = waitState(t, s3, control.ID, StateDone, 60*time.Second)
	controlDoc, controlHash, err := s3.Report(control.ID)
	if err != nil {
		t.Fatal(err)
	}

	if resumedHash != controlHash {
		t.Fatalf("resumed report hash %s != control %s", resumedHash, controlHash)
	}
	if !bytes.Equal(resumedDoc, controlDoc) {
		t.Fatal("resumed report is not byte-identical to the uninterrupted control run")
	}
}
