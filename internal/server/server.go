// Package server is the campaign-as-a-service layer: a persistent daemon
// that accepts fault-injection campaign submissions over a REST API,
// multiplexes them through a bounded-concurrency queue with weighted
// fair-share scheduling across tenants, and executes each one on the
// existing dist coordinator/worker machinery embedded in-process. All
// durable state lives in a content-addressed store (internal/store):
// finished reports are keyed by spec digest — resubmitting an identical
// spec is served from the store without running anything — and the
// expensive warm boot (AVP generation, warm-up, phased checkpoints) is
// built once per checkpoint-image digest and cloned into every campaign
// that shares it. Coordinator journals give crash-restart resume: a
// server reopened over the same store re-queues interrupted campaigns and
// their coordinators replay completed shards instead of redoing them.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"slices"
	"sort"
	"sync"
	"time"

	"sfi/internal/core"
	"sfi/internal/dist"
	"sfi/internal/engine"
	"sfi/internal/obs"
	"sfi/internal/stats"
	"sfi/internal/store"
)

// Campaign states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Config parameterizes a campaign server.
type Config struct {
	// Dir is the root of the content-addressed store (required).
	Dir string

	// MaxConcurrent bounds how many campaigns run at once (default 2);
	// the rest wait in the fair-share queue.
	MaxConcurrent int

	// TenantWeights sets per-tenant scheduling weights; tenants not
	// listed get weight 1. A weight-3 tenant is served 3 campaigns for
	// every 1 of a weight-1 tenant while both have work queued.
	TenantWeights map[string]float64

	// ShardSize is the default injections-per-shard for campaigns that
	// don't set their own (0 = the dist default, ~64 shards).
	ShardSize int

	// LeaseTTL is the shard lease TTL of embedded campaign coordinators
	// (default 2s — heartbeats are in-process, so a short TTL is cheap
	// and bounds resume loss).
	LeaseTTL time.Duration

	// PollEvery is the embedded worker's lease poll period (default 2ms).
	PollEvery time.Duration

	// ImageCacheSize bounds the warm checkpoint-image cache (default 4
	// images).
	ImageCacheSize int

	// Log receives structured server lifecycle events (nil = silent).
	Log *slog.Logger
}

// Spec is a campaign submission: the wire-serializable campaign plus
// server-level placement.
type Spec struct {
	// Tenant attributes the campaign for fair-share scheduling
	// ("" = "default").
	Tenant string `json:"tenant,omitempty"`

	// Campaign is the campaign to run, exactly as the dist layer defines
	// it (backend, workload, sample size, filter, stopping rule, lanes
	// via Runner.BatchLanes).
	Campaign dist.CampaignSpec `json:"campaign"`

	// ShardSize overrides the server's default injections-per-shard.
	ShardSize int `json:"shard_size,omitempty"`
}

// Campaign is one submission's full lifecycle record — the JSON served by
// GET /v1/campaigns/{id} and persisted in the store.
type Campaign struct {
	ID     string `json:"id"`
	Seq    int64  `json:"seq"`
	Tenant string `json:"tenant"`
	Spec   Spec   `json:"spec"`

	// Digest is the spec's content address: submissions with equal
	// digests produce byte-identical reports, so the store serves later
	// ones from the first one's stored report.
	Digest string `json:"digest"`

	// ImageDigest addresses the warm checkpoint image the campaign boots
	// from; campaigns sharing it share one cached image.
	ImageDigest string `json:"image_digest"`

	State string `json:"state"`

	// Dedup marks a campaign answered entirely from the store (a report
	// with the same spec digest already existed).
	Dedup bool `json:"dedup,omitempty"`
	// ImageHit marks that the boot phase was served from the warm image
	// cache instead of built from scratch.
	ImageHit bool `json:"image_hit,omitempty"`
	// BootMs is the boot phase latency: the time from the embedded
	// worker asking for its prototype runner to having one (a full build
	// on a cache miss, a clone on a hit).
	BootMs float64 `json:"boot_ms,omitempty"`

	ReportHash   string `json:"report_hash,omitempty"`
	Injections   int    `json:"injections,omitempty"`
	StoppedEarly bool   `json:"stopped_early,omitempty"`
	Error        string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// ReportDoc is the stored (and served) form of a finished campaign
// report. The wire report's metrics snapshot is stripped before storing:
// timing histograms are nondeterministic, and the document must be a pure
// function of the spec so content addressing dedups identical campaigns.
type ReportDoc struct {
	SpecDigest   string             `json:"spec_digest"`
	Report       *dist.WireReport   `json:"report"`
	Convergence  *stats.Convergence `json:"convergence,omitempty"`
	StoppedEarly bool               `json:"stopped_early,omitempty"`
}

// Sentinel errors of the campaign API.
var (
	ErrNotFound  = errors.New("server: no such campaign")
	ErrFinished  = errors.New("server: campaign already finished")
	ErrNotReady  = errors.New("server: campaign has no report yet")
	errClosing   = errors.New("server: shutting down")
	errCancelled = errors.New("server: campaign cancelled")
)

// Server is a persistent multi-campaign daemon.
type Server struct {
	cfg     Config
	st      *store.Store
	log     *slog.Logger
	images  *store.ImageCache
	started time.Time

	ctx      context.Context
	shutdown context.CancelCauseFunc

	mu        sync.Mutex
	campaigns map[string]*Campaign
	tracers   map[string]*campaignTrace
	queue     *fairQueue
	running   map[string]*execution
	active    int
	seq       int64
	closed    bool
	wake      chan struct{}

	wg sync.WaitGroup // scheduler + campaign executors
}

// execution is the server's handle on one running campaign.
type execution struct {
	coord  *dist.Coordinator
	cancel context.CancelCauseFunc
}

// campaignTrace is one campaign's tracer plus the structural spans the
// server holds open across scheduling stages: the root "campaign" span
// (submit to settle) and the "queue.wait" span (submit to start).
type campaignTrace struct {
	tracer *obs.Tracer
	root   *obs.Span
	queue  *obs.Span
}

// traceLocked returns the campaign's trace, creating it on first use.
// Submissions create theirs at submit time; campaigns recovered from a
// previous process create one lazily with the root span back-dated to the
// original submission. The tracer seed mixes the submission sequence into
// the campaign seed so two campaigns with equal specs still get distinct
// trace IDs, while a replayed submission order reproduces the same IDs.
func (s *Server) traceLocked(c *Campaign) *campaignTrace {
	ct := s.tracers[c.ID]
	if ct == nil {
		tr := obs.NewTracer(c.Spec.Campaign.Seed ^ engine.Splitmix64(uint64(c.Seq)+1))
		ct = &campaignTrace{tracer: tr}
		ct.root = tr.StartSpanAt("campaign", "server", obs.SpanContext{}, c.SubmittedAt).
			Attr("campaign", c.ID).Attr("tenant", c.Tenant)
		s.tracers[c.ID] = ct
	}
	return ct
}

// New opens (or reopens) a campaign server over a store directory,
// recovers persisted campaigns — queued and interrupted-running ones
// re-enter the queue in submission order and resume from their journals —
// and starts the scheduler.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: Config.Dir is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 2 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	st, err := store.Open(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:       cfg,
		st:        st,
		log:       cfg.Log,
		images:    store.NewImageCache(cfg.ImageCacheSize),
		started:   time.Now(),
		ctx:       ctx,
		shutdown:  cancel,
		campaigns: make(map[string]*Campaign),
		tracers:   make(map[string]*campaignTrace),
		queue:     newFairQueue(cfg.TenantWeights),
		running:   make(map[string]*execution),
		wake:      make(chan struct{}, 1),
	}
	if err := s.recover(); err != nil {
		cancel(errClosing)
		return nil, err
	}
	s.wg.Add(1)
	go s.scheduler()
	return s, nil
}

// recover loads persisted campaign records and re-queues unfinished ones.
func (s *Server) recover() error {
	var resumed []*Campaign
	err := s.st.LoadCampaigns(func(id string, data []byte) error {
		var c Campaign
		if err := json.Unmarshal(data, &c); err != nil {
			return fmt.Errorf("server: campaign record %s: %w", id, err)
		}
		if c.State == StateRunning {
			// The previous process died mid-campaign. Its journal holds the
			// completed shards; re-queue and the coordinator replays them.
			c.State = StateQueued
			c.StartedAt = nil
		}
		s.campaigns[c.ID] = &c
		if c.State == StateQueued {
			resumed = append(resumed, &c)
		}
		if c.Seq >= s.seq {
			s.seq = c.Seq + 1
		}
		return nil
	})
	if err != nil {
		return err
	}
	slices.SortFunc(resumed, func(a, b *Campaign) int { return int(a.Seq - b.Seq) })
	for _, c := range resumed {
		s.queue.push(c.Tenant, c.ID)
		if err := s.st.SaveCampaign(c.ID, *c); err != nil {
			return err
		}
	}
	if len(resumed) > 0 {
		s.log.Info("campaigns recovered", "queued", len(resumed), "total", len(s.campaigns))
	}
	return nil
}

// Close drains the server: running campaigns are interrupted (their
// journals keep their completed shards; a reopened server resumes them),
// the scheduler stops, and all records are persisted.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.shutdown(errClosing)
	s.poke()
	s.wg.Wait()
}

func (s *Server) poke() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// specDigest computes the spec's content address with the backend name
// and effective shard size resolved, so trivially-equal submissions
// ("" vs "p6lite", explicit vs default shard size) share one report.
func (s *Server) specDigest(spec Spec) string {
	c := spec.Campaign
	c.Runner.Backend = engine.Resolve(c.Runner.Backend)
	return store.Digest(struct {
		Campaign  dist.CampaignSpec `json:"campaign"`
		ShardSize int               `json:"shard_size"`
	}{c, s.shardSize(spec)})
}

// shardSize resolves a spec's effective injections-per-shard.
func (s *Server) shardSize(spec Spec) int {
	if spec.ShardSize > 0 {
		return spec.ShardSize
	}
	return s.cfg.ShardSize
}

// Submit validates and enqueues a campaign. If the store already holds a
// report for the same spec digest, the campaign completes immediately
// (Dedup) without running anything.
func (s *Server) Submit(spec Spec) (Campaign, error) {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if spec.Campaign.Flips < 1 {
		return Campaign{}, fmt.Errorf("server: campaign needs at least one flip")
	}
	if _, err := spec.Campaign.Filter.Filter(); err != nil {
		return Campaign{}, err
	}
	backend := engine.Resolve(spec.Campaign.Runner.Backend)
	if !slices.Contains(engine.Backends(), backend) {
		return Campaign{}, fmt.Errorf("server: unknown backend %q (registered: %v)", backend, engine.Backends())
	}

	c := &Campaign{
		ID:          newID(),
		Tenant:      spec.Tenant,
		Spec:        spec,
		Digest:      s.specDigest(spec),
		ImageDigest: engine.ImageDigest(spec.Campaign.Runner),
		SubmittedAt: time.Now(),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Campaign{}, errClosing
	}
	c.Seq = s.seq
	s.seq++
	if hash, ok := s.st.ReportHash(c.Digest); ok {
		// Content-addressed dedup: an identical spec already produced a
		// report; serve it without running a single injection.
		now := time.Now()
		c.State = StateDone
		c.Dedup = true
		c.ReportHash = hash
		c.FinishedAt = &now
		ct := s.traceLocked(c)
		ct.root.Attr("dedup", "true").Attr("state", StateDone).End()
		ct.root = nil
	} else {
		c.State = StateQueued
		s.queue.push(c.Tenant, c.ID)
		ct := s.traceLocked(c)
		ct.queue = ct.tracer.StartSpan("queue.wait", "server", ct.root.Context())
	}
	s.campaigns[c.ID] = c
	snap := *c
	s.mu.Unlock()

	if err := s.st.SaveCampaign(c.ID, snap); err != nil {
		return Campaign{}, err
	}
	s.log.Info("campaign submitted", "campaign", c.ID, "tenant", c.Tenant,
		"state", snap.State, "digest", c.Digest[:12], "image", c.ImageDigest[:12])
	s.poke()
	return snap, nil
}

// Cancel cancels a queued or running campaign. A queued campaign is
// removed from the queue and will never lease a shard; a running one has
// its coordinator context cancelled.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	c := s.campaigns[id]
	if c == nil {
		s.mu.Unlock()
		return ErrNotFound
	}
	switch c.State {
	case StateQueued:
		s.queue.remove(id)
		now := time.Now()
		c.State = StateCancelled
		c.FinishedAt = &now
		if ct := s.tracers[id]; ct != nil {
			if ct.queue != nil {
				ct.queue.End()
				ct.queue = nil
			}
			if ct.root != nil {
				ct.root.Attr("state", StateCancelled).End()
				ct.root = nil
			}
		}
		snap := *c
		s.mu.Unlock()
		s.log.Info("queued campaign cancelled", "campaign", id)
		return s.st.SaveCampaign(id, snap)
	case StateRunning:
		exec := s.running[id]
		s.mu.Unlock()
		if exec != nil {
			exec.cancel(errCancelled)
		}
		s.log.Info("running campaign cancelled", "campaign", id)
		return nil
	default:
		s.mu.Unlock()
		return ErrFinished
	}
}

// Get returns a campaign's record.
func (s *Server) Get(id string) (Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.campaigns[id]
	if c == nil {
		return Campaign{}, false
	}
	return *c, true
}

// List returns every campaign record, newest submission first.
func (s *Server) List() []Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Report returns a finished campaign's stored report document plus its
// object hash (the HTTP layer's ETag).
func (s *Server) Report(id string) ([]byte, string, error) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return nil, "", ErrNotFound
	}
	if c.State != StateDone {
		return nil, "", ErrNotReady
	}
	return s.st.GetReport(c.Digest)
}

// CoordStatus returns the live coordinator fleet status of a running
// campaign (nil when it isn't running).
func (s *Server) CoordStatus(id string) *dist.Status {
	s.mu.Lock()
	exec := s.running[id]
	var coord *dist.Coordinator
	if exec != nil {
		coord = exec.coord
	}
	s.mu.Unlock()
	if coord == nil {
		return nil
	}
	st := coord.Status()
	return &st
}

// Trace returns a campaign's span-tree document: the spans recorded so
// far, assembled into a tree with the critical path marked and latency
// attribution computed. ok=false when the campaign is unknown or has no
// trace (e.g. it finished under a previous process).
func (s *Server) Trace(id string) (*obs.TraceDoc, bool) {
	s.mu.Lock()
	ct := s.tracers[id]
	s.mu.Unlock()
	if ct == nil {
		return nil, false
	}
	return ct.tracer.Doc(), true
}

// TraceSummary is one row of GET /v1/traces: a campaign's trace identity
// and its latency attribution.
type TraceSummary struct {
	Campaign string           `json:"campaign"`
	Tenant   string           `json:"tenant"`
	State    string           `json:"state"`
	TraceID  string           `json:"trace_id"`
	Spans    int              `json:"spans"`
	Latency  *obs.Attribution `json:"latency,omitempty"`
}

// Traces lists every traced campaign, newest submission first.
func (s *Server) Traces() []TraceSummary {
	type row struct {
		c  Campaign
		ct *campaignTrace
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.tracers))
	for id, ct := range s.tracers {
		if c := s.campaigns[id]; c != nil {
			rows = append(rows, row{*c, ct})
		}
	}
	s.mu.Unlock()
	slices.SortFunc(rows, func(a, b row) int { return int(b.c.Seq - a.c.Seq) })
	out := make([]TraceSummary, 0, len(rows))
	for _, r := range rows {
		sum := TraceSummary{
			Campaign: r.c.ID,
			Tenant:   r.c.Tenant,
			State:    r.c.State,
			TraceID:  r.ct.tracer.TraceID(),
			Spans:    len(r.ct.tracer.Spans()),
		}
		if sum.Spans > 0 {
			doc := r.ct.tracer.Doc()
			sum.Latency = &doc.Attribution
		}
		out = append(out, sum)
	}
	return out
}

// spanHists merges the per-layer span-duration histograms across every
// campaign tracer — the server-wide latency shape per tracing layer.
func (s *Server) spanHists() map[string]obs.HistSnapshot {
	s.mu.Lock()
	tracers := make([]*obs.Tracer, 0, len(s.tracers))
	for _, ct := range s.tracers {
		tracers = append(tracers, ct.tracer)
	}
	s.mu.Unlock()
	merged := make(map[string]obs.HistSnapshot)
	for _, tr := range tracers {
		for layer, snap := range tr.LayerSnapshots() {
			m := merged[layer]
			m.Merge(snap)
			merged[layer] = m
		}
	}
	return merged
}

// Status is the server-wide view served at GET /v1/status.
type Status struct {
	// Campaigns counts campaigns by state.
	Campaigns map[string]int `json:"campaigns"`
	// QueueDepth is the number of campaigns waiting to run.
	QueueDepth    int      `json:"queue_depth"`
	Running       []string `json:"running,omitempty"`
	MaxConcurrent int      `json:"max_concurrent"`
	// Tenants is the fair-share ledger: weight, backlog and service share
	// per tenant.
	Tenants map[string]TenantView `json:"tenants,omitempty"`
	// ImageCache reports warm checkpoint-image reuse across campaigns.
	ImageCache store.Stats `json:"image_cache"`
	UptimeMs   int64       `json:"uptime_ms"`
}

// Status assembles the server-wide status.
func (s *Server) Status() Status {
	s.mu.Lock()
	st := Status{
		Campaigns:     make(map[string]int),
		QueueDepth:    s.queue.depth(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		Tenants:       s.queue.view(),
		UptimeMs:      time.Since(s.started).Milliseconds(),
	}
	for _, c := range s.campaigns {
		st.Campaigns[c.State]++
	}
	for id := range s.running {
		st.Running = append(st.Running, id)
	}
	s.mu.Unlock()
	sort.Strings(st.Running)
	st.ImageCache = s.images.Stats()
	return st
}

// scheduler pops queued campaigns under the fair-share policy whenever a
// concurrency slot is free.
func (s *Server) scheduler() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		for s.active < s.cfg.MaxConcurrent {
			id, ok := s.queue.pop()
			if !ok {
				break
			}
			c := s.campaigns[id]
			if c == nil || c.State != StateQueued {
				continue // settled out of band (e.g. cancelled while queued)
			}
			s.startLocked(c)
		}
		s.mu.Unlock()
		select {
		case <-s.wake:
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) startLocked(c *Campaign) {
	now := time.Now()
	c.State = StateRunning
	c.StartedAt = &now
	ct := s.traceLocked(c)
	if ct.queue == nil {
		// Recovered campaign: its queue wait spans the previous process's
		// lifetime too, back-dated to the original submission.
		ct.queue = ct.tracer.StartSpanAt("queue.wait", "server", ct.root.Context(), c.SubmittedAt)
	}
	ct.queue.End()
	ct.queue = nil
	ctx, cancel := context.WithCancelCause(s.ctx)
	exec := &execution{cancel: cancel}
	s.running[c.ID] = exec
	s.active++
	s.wg.Add(1)
	go s.execute(ctx, c, exec)
}

// execute runs one campaign to a terminal state (or back to queued on
// server shutdown) and persists the outcome.
func (s *Server) execute(ctx context.Context, c *Campaign, exec *execution) {
	defer s.wg.Done()
	s.persist(c)
	s.log.Info("campaign started", "campaign", c.ID, "tenant", c.Tenant)
	err := s.runCampaign(ctx, c, exec)

	s.mu.Lock()
	now := time.Now()
	cause := context.Cause(ctx)
	switch {
	case err == nil:
		c.State = StateDone
		c.FinishedAt = &now
	case errors.Is(cause, errClosing):
		// Shutdown, not failure: the journal holds the completed shards;
		// back to the queue for the next process.
		c.State = StateQueued
		c.StartedAt = nil
	case errors.Is(cause, errCancelled):
		c.State = StateCancelled
		c.FinishedAt = &now
	default:
		c.State = StateFailed
		c.Error = err.Error()
		c.FinishedAt = &now
	}
	// Settle the root span (except on shutdown-requeue: the campaign isn't
	// over, it just moves to the next process).
	if ct := s.tracers[c.ID]; ct != nil && ct.root != nil && c.State != StateQueued {
		ct.root.Attr("state", c.State).AttrInt("injections", int64(c.Injections)).End()
		ct.root = nil
	}
	delete(s.running, c.ID)
	s.active--
	snap := *c
	s.mu.Unlock()

	if serr := s.st.SaveCampaign(c.ID, snap); serr != nil {
		s.log.Error("campaign record persist failed", "campaign", c.ID, "err", serr)
	}
	s.log.Info("campaign settled", "campaign", c.ID, "state", snap.State,
		"injections", snap.Injections, "err", snap.Error)
	s.poke()
}

func (s *Server) persist(c *Campaign) {
	s.mu.Lock()
	snap := *c
	s.mu.Unlock()
	if err := s.st.SaveCampaign(snap.ID, snap); err != nil {
		s.log.Error("campaign record persist failed", "campaign", snap.ID, "err", err)
	}
}

// runCampaign executes one campaign: a journal-backed dist coordinator
// plus one embedded worker speaking the real lease protocol over the
// in-process transport, with prototypes served from the warm image cache.
func (s *Server) runCampaign(ctx context.Context, c *Campaign, exec *execution) (err error) {
	events, flushEvents, err := s.eventsSink(c.ID)
	if err != nil {
		return err
	}
	defer flushEvents()

	// The campaign's spans: the executor span covers this whole function
	// (scheduling overhead around it is the root's own self-time), and the
	// events sink mirrors every span into the campaign's JSONL next to the
	// shard events. Detach the sink before flushEvents closes the file —
	// the root span outlives this function.
	s.mu.Lock()
	ct := s.traceLocked(c)
	s.mu.Unlock()
	tr := ct.tracer
	tr.SetSink(events)
	defer tr.SetSink(nil)
	execSp := tr.StartSpan("executor", "server", ct.root.Context())
	defer func() {
		if err != nil {
			execSp.Attr("error", err.Error())
		}
		execSp.End()
	}()

	coord, err := dist.NewCoordinator(dist.CoordConfig{
		Campaign:   c.Spec.Campaign,
		ShardSize:  s.shardSize(c.Spec),
		LeaseTTL:   s.cfg.LeaseTTL,
		Journal:    s.st.JournalPath(c.ID),
		Log:        s.log.With("campaign", c.ID),
		ShardTrace: events,
		Tracer:     tr,
		Parent:     execSp.Context(),
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	s.mu.Lock()
	exec.coord = coord
	s.mu.Unlock()

	// The boot-phase hook: prototypes come from the warm image cache, and
	// the first request stamps the campaign's boot latency and hit flag.
	factory := func(rc core.RunnerConfig) (*core.Runner, error) {
		t0 := time.Now()
		r, hit, err := s.images.RunnerTraced(rc, tr, execSp.Context())
		if err != nil {
			return nil, err
		}
		boot := time.Since(t0)
		s.mu.Lock()
		if c.BootMs == 0 {
			c.BootMs = float64(boot.Nanoseconds()) / 1e6
			c.ImageHit = hit
		}
		s.mu.Unlock()
		return r, nil
	}

	// A worker-side error (bad backend, shard failure retries exhausted
	// locally) must not leave Wait blocked on a fleet of zero workers.
	waitCtx, cancelWait := context.WithCancelCause(ctx)
	defer cancelWait(nil)
	workerDone := make(chan error, 1)
	go func() {
		werr := dist.RunWorker(ctx, dist.WorkerConfig{
			Coordinator: "http://inproc",
			Client:      inprocClient(coord.Handler()),
			ID:          "server-" + c.ID,
			PollEvery:   s.cfg.PollEvery,
			NewRunner:   factory,
			Log:         s.log.With("campaign", c.ID),
		})
		if werr != nil && ctx.Err() == nil {
			cancelWait(fmt.Errorf("server: embedded worker: %w", werr))
		}
		workerDone <- werr
	}()

	rep, err := coord.Wait(waitCtx)
	<-workerDone
	if err != nil {
		return err
	}

	// Canonical report document: metrics stripped (timing histograms are
	// nondeterministic), everything else a pure function of the spec —
	// which is what makes the content address a dedup key and a resumed
	// run byte-identical to an uninterrupted one.
	mergeSp := tr.StartSpan("merge", "server", execSp.Context())
	wire := dist.EncodeReport(rep)
	wire.Metrics = nil
	stopped := coord.StopDecision() != nil
	doc := ReportDoc{
		SpecDigest:   c.Digest,
		Report:       wire,
		Convergence:  rep.Convergence,
		StoppedEarly: stopped,
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	hash, err := s.st.PutReport(c.Digest, data)
	if err != nil {
		return err
	}
	mergeSp.AttrInt("bytes", int64(len(data))).End()
	execSp.AttrInt("injections", int64(rep.Total))
	s.mu.Lock()
	c.ReportHash = hash
	c.Injections = rep.Total
	c.StoppedEarly = stopped
	s.mu.Unlock()
	return nil
}

// newID returns a fresh 16-hex-char campaign id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: " + err.Error()) // crypto/rand does not fail on supported platforms
	}
	return hex.EncodeToString(b[:])
}
