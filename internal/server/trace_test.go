package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"sfi/internal/obs"

	_ "sfi/internal/engine/awan" // batch-capable backend for per-batch spans
)

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestTraceEndToEnd locks the trace query surface and the cross-process
// span propagation it documents: submit a batch-capable campaign over real
// HTTP, let the embedded coordinator lease shards to the in-process
// worker, then check that (a) the /v1/traces and /v1/campaigns/{id}/trace
// JSON schemas hold key-for-key, (b) a worker-side engine "batch" span
// chains through ParentID links all the way to the server's root span —
// i.e. trace context survived the lease protocol — and (c) the critical
// path's self times decompose the root's wall-clock duration.
func TestTraceEndToEnd(t *testing.T) {
	s := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := tinySpec("tracing", 17, 60, 20)
	spec.Campaign.Runner.Backend = "awan"
	spec.Campaign.Runner.BatchLanes = 16
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var c Campaign
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", resp.StatusCode)
	}
	waitState(t, s, c.ID, StateDone, 30*time.Second)

	// --- /v1/campaigns/{id}/trace: golden key sets ---
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + c.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d, want 200", resp.StatusCode)
	}
	var bodyBuf bytes.Buffer
	if _, err := bodyBuf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(bodyBuf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	wantDoc := []string{"attribution", "critical_path", "root", "spans", "trace_id"}
	if got := sortedKeys(raw); !reflect.DeepEqual(got, wantDoc) {
		t.Errorf("trace doc keys:\ngot  %v\nwant %v", got, wantDoc)
	}
	var att map[string]json.RawMessage
	if err := json.Unmarshal(raw["attribution"], &att); err != nil {
		t.Fatal(err)
	}
	wantAtt := []string{"critical_path_fraction", "image_ms", "merge_ms",
		"other_ms", "queue_ms", "run_ms", "total_ms"}
	if got := sortedKeys(att); !reflect.DeepEqual(got, wantAtt) {
		t.Errorf("attribution keys:\ngot  %v\nwant %v", got, wantAtt)
	}
	var steps []map[string]json.RawMessage
	if err := json.Unmarshal(raw["critical_path"], &steps); err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("critical path is empty")
	}
	wantStep := []string{"dur_ms", "layer", "self_ms", "span", "span_id"}
	for _, st := range steps {
		if got := sortedKeys(st); !reflect.DeepEqual(got, wantStep) {
			t.Fatalf("critical-path step keys:\ngot  %v\nwant %v", got, wantStep)
		}
	}

	var doc obs.TraceDoc
	if err := json.Unmarshal(bodyBuf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Root == nil || doc.Root.Name != "campaign" || doc.Root.Layer != "server" || doc.Root.ParentID != "" {
		t.Fatalf("root span = %+v, want the server's parentless campaign span", doc.Root)
	}
	if doc.TraceID == "" || doc.Root.TraceID != doc.TraceID {
		t.Errorf("trace IDs inconsistent: doc %q, root %q", doc.TraceID, doc.Root.TraceID)
	}

	// --- cross-process propagation: batch span chains to the root ---
	byID := map[string]*obs.SpanNode{}
	var flatten func(n *obs.SpanNode)
	flatten = func(n *obs.SpanNode) {
		byID[n.SpanID] = n
		for _, ch := range n.Children {
			flatten(ch)
		}
	}
	flatten(doc.Root)
	var batch *obs.SpanNode
	for _, n := range byID {
		if n.Name == "batch" && n.Layer == "engine" {
			batch = n
			break
		}
	}
	if batch == nil {
		t.Fatal("no engine batch span in the tree — worker spans did not ride the complete message home")
	}
	sawWorker := false
	hops := 0
	var chain []string
	for n := batch; n != doc.Root; hops++ {
		if hops > 32 {
			t.Fatal("ParentID chain from batch span never reaches the root")
		}
		chain = append(chain, n.Layer+"/"+n.Name)
		if n.Layer == "worker" {
			sawWorker = true
		}
		parent := byID[n.ParentID]
		if parent == nil {
			t.Fatalf("span %s/%s has no parent %q in the tree — propagation broke at this hop (chain so far %v)",
				n.Layer, n.Name, n.ParentID, chain)
		}
		n = parent
	}
	if !sawWorker {
		t.Errorf("batch span's ancestry skips the worker layer (no shard.run span); chain to root: %v", chain)
	}

	// --- critical path decomposes the root's duration ---
	var selfSum float64
	for _, st := range doc.CriticalPath {
		selfSum += st.SelfMs
	}
	total := doc.Attribution.TotalMs
	if tol := math.Max(1, total*0.02); math.Abs(selfSum-total) > tol {
		t.Errorf("critical-path self times sum to %.3fms, want the root duration %.3fms (±%.1f)",
			selfSum, total, tol)
	}
	if total <= 0 {
		t.Errorf("attribution total = %g, want > 0", total)
	}

	// --- /v1/status carries the attribution block ---
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + c.ID + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.TraceID != doc.TraceID {
		t.Errorf("status trace_id = %q, want %q", status.TraceID, doc.TraceID)
	}
	if status.Latency == nil || status.Latency.TotalMs != total {
		t.Errorf("status latency = %+v, want the trace attribution (total %.3fms)", status.Latency, total)
	}

	// --- /v1/traces: summary row schema ---
	resp, err = http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("traces rows = %d, want 1", len(rows))
	}
	wantRow := []string{"campaign", "latency", "spans", "state", "tenant", "trace_id"}
	if got := sortedKeys(rows[0]); !reflect.DeepEqual(got, wantRow) {
		t.Errorf("traces row keys:\ngot  %v\nwant %v", got, wantRow)
	}

	// --- /metrics exports per-layer span histograms ---
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mbuf bytes.Buffer
	mbuf.ReadFrom(resp.Body) //nolint:errcheck
	for _, want := range []string{"sfi_server_span_server_ns", "sfi_server_span_engine_ns", "sfi_server_span_worker_ns"} {
		if !bytes.Contains(mbuf.Bytes(), []byte(want)) {
			t.Errorf("/metrics missing span histogram %s", want)
		}
	}
}

// TestTraceNotFound: unknown campaigns 404 on the trace endpoint.
func TestTraceNotFound(t *testing.T) {
	s := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/campaigns/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown campaign: status %d, want 404", resp.StatusCode)
	}
}
