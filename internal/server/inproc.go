package server

import (
	"bytes"
	"io"
	"net/http"
)

// handlerTransport serves HTTP round trips directly from an http.Handler,
// no socket involved. The server's embedded campaign workers speak the
// real dist lease protocol through it — same wire encoding, same status
// codes — against the per-campaign coordinator living in the same
// process.
type handlerTransport struct {
	h http.Handler
}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &responseRecorder{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		StatusCode:    rec.code,
		Status:        http.StatusText(rec.code),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(&rec.body),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// inprocClient wraps a coordinator handler as an *http.Client usable with
// dist.WorkerConfig.Client.
func inprocClient(h http.Handler) *http.Client {
	return &http.Client{Transport: handlerTransport{h: h}}
}

// responseRecorder is the minimal http.ResponseWriter the coordinator
// handlers need (header, status, body).
type responseRecorder struct {
	header http.Header
	code   int
	wrote  bool
	body   bytes.Buffer
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.body.Write(p)
}
