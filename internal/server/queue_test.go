package server

import (
	"fmt"
	"testing"
)

// TestFairQueueWeightedShare drives two tenants with unequal weights and
// unequal backlogs through the stride scheduler and checks that service
// converges to the configured 3:1 ratio while both stay backlogged.
func TestFairQueueWeightedShare(t *testing.T) {
	q := newFairQueue(map[string]float64{"a": 3, "b": 1})
	for i := 0; i < 30; i++ {
		q.push("a", fmt.Sprintf("a%d", i))
	}
	for i := 0; i < 10; i++ {
		q.push("b", fmt.Sprintf("b%d", i))
	}
	counts := map[byte]int{}
	for i := 0; i < 40; i++ {
		id, ok := q.pop()
		if !ok {
			t.Fatalf("queue dry after %d pops, want 40", i)
		}
		counts[id[0]]++
		// While both tenants are backlogged (first 8 full rounds), every
		// window of 4 pops serves exactly 3 a's and 1 b.
		if (i+1)%4 == 0 && i < 32 {
			wantA, wantB := 3*(i+1)/4, (i+1)/4
			if counts['a'] != wantA || counts['b'] != wantB {
				t.Fatalf("after %d pops served a=%d b=%d, want %d:%d (weights 3:1)",
					i+1, counts['a'], counts['b'], wantA, wantB)
			}
		}
	}
	if counts['a'] != 30 || counts['b'] != 10 {
		t.Fatalf("final service a=%d b=%d, want 30:10", counts['a'], counts['b'])
	}
	if _, ok := q.pop(); ok {
		t.Fatal("empty queue served a campaign")
	}
}

// TestFairQueueFIFOWithinTenant checks per-tenant FIFO ordering.
func TestFairQueueFIFOWithinTenant(t *testing.T) {
	q := newFairQueue(nil)
	q.push("a", "first")
	q.push("a", "second")
	q.push("a", "third")
	for _, want := range []string{"first", "second", "third"} {
		if id, _ := q.pop(); id != want {
			t.Fatalf("pop = %q, want %q (FIFO within a tenant)", id, want)
		}
	}
}

// TestFairQueueIdleRejoin checks that a tenant returning from idle joins
// at the current virtual time instead of cashing in banked credit and
// starving the tenant that stayed busy.
func TestFairQueueIdleRejoin(t *testing.T) {
	q := newFairQueue(nil)
	for i := 0; i < 10; i++ {
		q.push("a", fmt.Sprintf("a%d", i))
	}
	for i := 0; i < 6; i++ {
		q.pop() // a's pass advances to 6 while b is idle
	}
	q.push("b", "b0")
	q.push("b", "b1")
	got := make([]byte, 0, 4)
	for i := 0; i < 4; i++ {
		id, _ := q.pop()
		got = append(got, id[0])
	}
	if string(got) != "abab" {
		t.Fatalf("service after rejoin = %q, want fair alternation %q", got, "abab")
	}
}

// TestFairQueueRemove checks that a removed (cancelled) campaign is never
// served and that removal reports presence accurately.
func TestFairQueueRemove(t *testing.T) {
	q := newFairQueue(nil)
	q.push("a", "a0")
	q.push("a", "a1")
	q.push("a", "a2")
	if !q.remove("a1") {
		t.Fatal("remove of a queued campaign reported absent")
	}
	if q.remove("a1") {
		t.Fatal("double remove reported present")
	}
	if q.depth() != 2 {
		t.Fatalf("depth = %d after remove, want 2", q.depth())
	}
	for _, want := range []string{"a0", "a2"} {
		if id, _ := q.pop(); id != want {
			t.Fatalf("pop = %q, want %q (a1 was cancelled)", id, want)
		}
	}
}

// TestFairQueueView checks the tenant ledger the server status exposes.
func TestFairQueueView(t *testing.T) {
	q := newFairQueue(map[string]float64{"a": 2})
	q.push("a", "a0")
	q.push("b", "b0")
	q.pop()
	v := q.view()
	if v["a"].Weight != 2 || v["b"].Weight != 1 {
		t.Fatalf("weights = %v/%v, want 2/1", v["a"].Weight, v["b"].Weight)
	}
	if v["a"].Served+v["b"].Served != 1 {
		t.Fatalf("served = %v, want exactly one service recorded", v)
	}
	if got := v["a"].Share + v["b"].Share; got != 1 {
		t.Fatalf("shares sum to %v, want 1", got)
	}
}
