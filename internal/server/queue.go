package server

import "sort"

// fairQueue schedules queued campaigns across tenants by stride
// scheduling: each tenant carries a virtual "pass" that advances by
// 1/weight per campaign served, and pop always serves the backlogged
// tenant with the smallest pass. Over any interval in which two tenants
// both stay backlogged, their service counts converge to the ratio of
// their weights; a tenant that goes idle re-joins at the current virtual
// time instead of banking credit while away. Within a tenant, campaigns
// run FIFO. The queue is not goroutine-safe; the server's mutex guards it.
type fairQueue struct {
	weights map[string]float64 // configured weights; missing tenants get 1
	tenants map[string]*tenantQ
}

type tenantQ struct {
	name   string
	items  []string // campaign IDs, FIFO
	pass   float64  // virtual time of this tenant's next service
	served int
}

func newFairQueue(weights map[string]float64) *fairQueue {
	return &fairQueue{weights: weights, tenants: make(map[string]*tenantQ)}
}

func (q *fairQueue) weight(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// vtime is the current virtual time: the minimum pass over backlogged
// tenants (0 when nothing is queued).
func (q *fairQueue) vtime() float64 {
	v, any := 0.0, false
	for _, t := range q.tenants {
		if len(t.items) == 0 {
			continue
		}
		if !any || t.pass < v {
			v, any = t.pass, true
		}
	}
	return v
}

// push enqueues a campaign for a tenant.
func (q *fairQueue) push(tenant, id string) {
	t := q.tenants[tenant]
	if t == nil {
		t = &tenantQ{name: tenant}
		q.tenants[tenant] = t
	}
	if len(t.items) == 0 {
		// Joining (or re-joining) the backlog: start at the current virtual
		// time so an idle period doesn't accumulate scheduling credit.
		if v := q.vtime(); v > t.pass {
			t.pass = v
		}
	}
	t.items = append(t.items, id)
}

// pop dequeues the next campaign under the fair-share policy, reporting
// false when nothing is queued. Ties break by tenant name, keeping the
// schedule deterministic.
func (q *fairQueue) pop() (id string, ok bool) {
	var pick *tenantQ
	for _, t := range q.tenants {
		if len(t.items) == 0 {
			continue
		}
		if pick == nil || t.pass < pick.pass || (t.pass == pick.pass && t.name < pick.name) {
			pick = t
		}
	}
	if pick == nil {
		return "", false
	}
	id = pick.items[0]
	pick.items = pick.items[1:]
	pick.pass += 1 / q.weight(pick.name)
	pick.served++
	return id, true
}

// remove deletes a queued campaign wherever it sits (a cancelled
// submission must never be served). Reports whether it was found.
func (q *fairQueue) remove(id string) bool {
	for _, t := range q.tenants {
		for i, queued := range t.items {
			if queued == id {
				t.items = append(t.items[:i], t.items[i+1:]...)
				return true
			}
		}
	}
	return false
}

// depth is the total number of queued campaigns.
func (q *fairQueue) depth() int {
	n := 0
	for _, t := range q.tenants {
		n += len(t.items)
	}
	return n
}

// TenantView is one tenant's row in the server status.
type TenantView struct {
	Weight float64 `json:"weight"`
	Queued int     `json:"queued"`
	Served int     `json:"served"`
	// Share is this tenant's fraction of all campaigns served so far.
	Share float64 `json:"share,omitempty"`
}

// view summarizes every tenant the queue has seen (plus configured
// weights), sorted map for deterministic JSON.
func (q *fairQueue) view() map[string]TenantView {
	totalServed := 0
	names := make([]string, 0, len(q.tenants))
	for name, t := range q.tenants {
		totalServed += t.served
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]TenantView, len(names))
	for _, name := range names {
		t := q.tenants[name]
		v := TenantView{Weight: q.weight(name), Queued: len(t.items), Served: t.served}
		if totalServed > 0 {
			v.Share = float64(t.served) / float64(totalServed)
		}
		out[name] = v
	}
	return out
}
