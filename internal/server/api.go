package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"

	"sfi/internal/obs"
)

// Handler returns the server's REST API:
//
//	POST   /v1/campaigns                  submit a Spec, 201 + Campaign
//	GET    /v1/campaigns                  list campaigns, newest first
//	GET    /v1/campaigns/{id}             one campaign record
//	DELETE /v1/campaigns/{id}             cancel (queued or running)
//	GET    /v1/campaigns/{id}/status      record + live coordinator status
//	GET    /v1/campaigns/{id}/report      stored report document (ETag'd)
//	GET    /v1/campaigns/{id}/events      shard trace, JSONL
//	GET    /v1/campaigns/{id}/trace       span tree + critical path +
//	                                      latency attribution
//	ANY    /v1/campaigns/{id}/coord/...   passthrough to the campaign's
//	                                      coordinator (external workers
//	                                      can join a running campaign)
//	GET    /v1/traces                     trace summaries, newest first
//	GET    /v1/status                     server-wide status
//	GET    /metrics                       Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/status", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("/v1/campaigns/{id}/coord/{rest...}", s.handleCoord)
	mux.HandleFunc("GET /v1/status", s.handleServerStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errClosing) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Location", "/v1/campaigns/"+c.ID)
	writeJSON(w, http.StatusCreated, c)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, c)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	switch err := s.Cancel(r.PathValue("id")); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// CampaignStatus is the GET /v1/campaigns/{id}/status body: the stored
// record plus, while running, the live coordinator fleet status, plus the
// trace-derived latency attribution once any spans have been recorded.
type CampaignStatus struct {
	Campaign Campaign         `json:"campaign"`
	Coord    any              `json:"coord,omitempty"`
	TraceID  string           `json:"trace_id,omitempty"`
	Latency  *obs.Attribution `json:"latency,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	out := CampaignStatus{Campaign: c}
	if cs := s.CoordStatus(id); cs != nil {
		out.Coord = cs
	}
	if doc, ok := s.Trace(id); ok && doc.Spans > 0 {
		out.TraceID = doc.TraceID
		out.Latency = &doc.Attribution
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTrace serves a campaign's span tree with the critical path marked
// and the latency attribution computed; mid-run it returns the tree so
// far (under a synthetic root until the real root span finishes).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	doc, ok := s.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: campaign has no trace"))
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Traces())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	data, hash, err := s.Report(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrNotReady):
		writeError(w, http.StatusNotFound, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", `"`+hash+`"`)
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	f, err := os.Open(s.st.EventsPath(id))
	if err != nil {
		writeError(w, http.StatusNotFound, errors.New("server: campaign has no events yet"))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	io.Copy(w, f) //nolint:errcheck
}

// handleCoord forwards a request to a running campaign's coordinator with
// the /v1/campaigns/{id}/coord prefix stripped, so external sfi-worker
// processes can join a server-managed campaign by pointing at this prefix.
func (s *Server) handleCoord(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	exec := s.running[id]
	s.mu.Unlock()
	if c == nil {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	if exec == nil || exec.coord == nil {
		writeError(w, http.StatusGone, errors.New("server: campaign is not running"))
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + r.PathValue("rest")
	exec.coord.Handler().ServeHTTP(w, r2)
}

func (s *Server) handleServerStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// handleMetrics serves the Prometheus text exposition format (hand
// rolled; no client library in the dependency budget).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Status()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	write := func(format string, args ...any) {
		fmt.Fprintf(bw, format, args...)
	}
	write("# HELP sfi_server_campaigns Campaigns by state.\n")
	write("# TYPE sfi_server_campaigns gauge\n")
	states := make([]string, 0, len(st.Campaigns))
	for state := range st.Campaigns {
		states = append(states, state)
	}
	sort.Strings(states)
	for _, state := range states {
		write("sfi_server_campaigns{state=%q} %d\n", state, st.Campaigns[state])
	}
	write("# HELP sfi_server_queue_depth Queued campaigns per tenant.\n")
	write("# TYPE sfi_server_queue_depth gauge\n")
	write("# HELP sfi_server_tenant_served_total Campaigns served per tenant.\n")
	write("# TYPE sfi_server_tenant_served_total counter\n")
	tenants := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		write("sfi_server_queue_depth{tenant=%q} %d\n", name, st.Tenants[name].Queued)
	}
	for _, name := range tenants {
		write("sfi_server_tenant_served_total{tenant=%q} %d\n", name, st.Tenants[name].Served)
	}
	write("# HELP sfi_server_image_cache_hits_total Warm checkpoint-image cache hits.\n")
	write("# TYPE sfi_server_image_cache_hits_total counter\n")
	write("sfi_server_image_cache_hits_total %d\n", st.ImageCache.Hits)
	write("# HELP sfi_server_image_cache_misses_total Warm checkpoint-image cache misses.\n")
	write("# TYPE sfi_server_image_cache_misses_total counter\n")
	write("sfi_server_image_cache_misses_total %d\n", st.ImageCache.Misses)
	write("# HELP sfi_server_image_cache_images Images held by the cache.\n")
	write("# TYPE sfi_server_image_cache_images gauge\n")
	write("sfi_server_image_cache_images %d\n", st.ImageCache.Images)
	write("# HELP sfi_server_running Campaigns currently executing.\n")
	write("# TYPE sfi_server_running gauge\n")
	write("sfi_server_running %d\n", len(st.Running))
	// Span-duration log2 histograms per tracing layer, merged across every
	// campaign tracer.
	obs.WriteSpanHistSnapshots(bw, "sfi_server", s.spanHists()) //nolint:errcheck
}

// eventsSink opens the campaign's append-mode shard trace (append so a
// resumed campaign extends, not clobbers, its event history).
func (s *Server) eventsSink(id string) (*obs.TraceSink, func(), error) {
	f, err := os.OpenFile(s.st.EventsPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	sink := obs.NewTraceSink(bw, obs.TraceOptions{})
	flush := func() {
		bw.Flush() //nolint:errcheck
		f.Close()  //nolint:errcheck
	}
	return sink, flush, nil
}
