package latch

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func buildTestDB() (*DB, Reg, Array) {
	db := NewDB()
	pc := db.Register("IFU", Func, "ifu.pc", 48)
	gpr := db.RegisterArray("FXU", RegFile, "fxu.gpr", 32, 64)
	db.Register("PRV", Mode, "prv.mode0", 17)
	db.RegisterArray("LSU", Func, "lsu.stq.addr", 16, 50)
	db.Register("PRV", GPTR, "prv.gptr", 64)
	db.Freeze()
	return db, pc, gpr
}

func TestTotalBits(t *testing.T) {
	db, _, _ := buildTestDB()
	want := 48 + 32*64 + 17 + 16*50 + 64
	if got := db.TotalBits(); got != want {
		t.Errorf("TotalBits = %d, want %d", got, want)
	}
}

func TestRegGetSetMasksWidth(t *testing.T) {
	_, pc, _ := buildTestDB()
	pc.Set(^uint64(0))
	if got := pc.Get(); got != (1<<48)-1 {
		t.Errorf("Get = %#x, want 48-bit mask", got)
	}
	if pc.Width() != 48 {
		t.Errorf("Width = %d", pc.Width())
	}
}

func TestRegBits(t *testing.T) {
	_, pc, _ := buildTestDB()
	pc.SetBit(5, true)
	if !pc.GetBit(5) || pc.Get() != 1<<5 {
		t.Error("SetBit/GetBit broken")
	}
	pc.SetBit(5, false)
	if pc.Get() != 0 {
		t.Error("clear failed")
	}
}

func TestArrayEntries(t *testing.T) {
	_, _, gpr := buildTestDB()
	if gpr.Len() != 32 {
		t.Fatalf("Len = %d", gpr.Len())
	}
	gpr.Entry(3).Set(111)
	gpr.Entry(4).Set(222)
	if gpr.Entry(3).Get() != 111 || gpr.Entry(4).Get() != 222 {
		t.Error("adjacent entries interfere")
	}
}

func TestArrayEntryOutOfRangePanics(t *testing.T) {
	_, _, gpr := buildTestDB()
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range entry")
		}
	}()
	gpr.Entry(32)
}

func TestDuplicateNamePanics(t *testing.T) {
	db := NewDB()
	db.Register("IFU", Func, "x", 8)
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate group name")
		}
	}()
	db.Register("IFU", Func, "x", 8)
}

func TestRegisterAfterFreezePanics(t *testing.T) {
	db := NewDB()
	db.Freeze()
	defer func() {
		if recover() == nil {
			t.Error("no panic on register after freeze")
		}
	}()
	db.Register("IFU", Func, "late", 1)
}

func TestBadWidthPanics(t *testing.T) {
	db := NewDB()
	for _, w := range []int{0, 65, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for width %d", w)
				}
			}()
			db.Register("IFU", Func, "w", w)
		}()
	}
}

func TestLocateRoundTrip(t *testing.T) {
	db, _, _ := buildTestDB()
	// First bit of the GPR group is logical bit 48.
	g, e, b := db.Locate(48)
	if g.Name != "fxu.gpr" || e != 0 || b != 0 {
		t.Errorf("Locate(48) = %s[%d].%d", g.Name, e, b)
	}
	// Bit 48 + 64*2 + 7 is entry 2, bit 7.
	g, e, b = db.Locate(48 + 64*2 + 7)
	if g.Name != "fxu.gpr" || e != 2 || b != 7 {
		t.Errorf("Locate = %s[%d].%d, want fxu.gpr[2].7", g.Name, e, b)
	}
	// Last bit belongs to the last group.
	g, _, _ = db.Locate(db.TotalBits() - 1)
	if g.Name != "prv.gptr" {
		t.Errorf("last bit in %s, want prv.gptr", g.Name)
	}
}

func TestPeekPokeFlip(t *testing.T) {
	db, _, gpr := buildTestDB()
	bit := 48 + 64*5 + 13 // gpr[5] bit 13
	if db.Peek(bit) {
		t.Fatal("fresh bit set")
	}
	db.Poke(bit, true)
	if gpr.Entry(5).Get() != 1<<13 {
		t.Errorf("Poke not visible through handle: %#x", gpr.Entry(5).Get())
	}
	if db.Flip(bit) {
		t.Error("Flip of set bit should return false")
	}
	if gpr.Entry(5).Get() != 0 {
		t.Error("Flip not visible through handle")
	}
}

func TestSnapshotRestore(t *testing.T) {
	db, pc, gpr := buildTestDB()
	pc.Set(0x1234)
	gpr.Entry(7).Set(777)
	snap := db.Snapshot()
	pc.Set(0)
	gpr.Entry(7).Set(0)
	db.Flip(0)
	db.Restore(snap)
	if pc.Get() != 0x1234 || gpr.Entry(7).Get() != 777 {
		t.Error("restore did not recover state")
	}
	if db.Peek(0) {
		t.Error("flipped bit survived restore")
	}
}

func TestRestoreSizeMismatchPanics(t *testing.T) {
	db, _, _ := buildTestDB()
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad snapshot size")
		}
	}()
	db.Restore(make([]uint64, 3))
}

func TestCountBitsAndFilters(t *testing.T) {
	db, _, _ := buildTestDB()
	if got := db.CountBits(nil); got != db.TotalBits() {
		t.Errorf("CountBits(nil) = %d", got)
	}
	if got := db.CountBits(ByUnit("FXU")); got != 32*64 {
		t.Errorf("FXU bits = %d, want 2048", got)
	}
	if got := db.CountBits(ByType(Mode)); got != 17 {
		t.Errorf("Mode bits = %d, want 17", got)
	}
	if got := db.CountBits(ByType(GPTR)); got != 64 {
		t.Errorf("GPTR bits = %d, want 64", got)
	}
}

func TestUnits(t *testing.T) {
	db, _, _ := buildTestDB()
	units := db.Units()
	want := []string{"IFU", "FXU", "PRV", "LSU"}
	if len(units) != len(want) {
		t.Fatalf("Units = %v", units)
	}
	for i := range want {
		if units[i] != want[i] {
			t.Fatalf("Units = %v, want %v", units, want)
		}
	}
}

func TestGroupByName(t *testing.T) {
	db, _, _ := buildTestDB()
	g, ok := db.GroupByName("lsu.stq.addr")
	if !ok || g.Entries != 16 || g.Width != 50 {
		t.Errorf("GroupByName = %+v, %v", g, ok)
	}
	if _, ok := db.GroupByName("nope"); ok {
		t.Error("found nonexistent group")
	}
}

func TestSampleBitsUniqueAndInFilter(t *testing.T) {
	db, _, _ := buildTestDB()
	rng := rand.New(rand.NewPCG(1, 2))
	bits := db.SampleBits(rng, 100, ByUnit("FXU"))
	if len(bits) != 100 {
		t.Fatalf("got %d bits", len(bits))
	}
	seen := make(map[int]bool)
	for _, b := range bits {
		if seen[b] {
			t.Fatalf("duplicate bit %d", b)
		}
		seen[b] = true
		g, _, _ := db.Locate(b)
		if g.Unit != "FXU" {
			t.Fatalf("bit %d in unit %s", b, g.Unit)
		}
	}
}

func TestSampleBitsExhaustive(t *testing.T) {
	db, _, _ := buildTestDB()
	rng := rand.New(rand.NewPCG(3, 4))
	bits := db.SampleBits(rng, 17, ByType(Mode))
	if len(bits) != 17 {
		t.Fatalf("got %d", len(bits))
	}
	seen := make(map[int]bool)
	for _, b := range bits {
		seen[b] = true
	}
	if len(seen) != 17 {
		t.Error("exhaustive sample has duplicates")
	}
}

func TestSampleBitsTooManyPanics(t *testing.T) {
	db, _, _ := buildTestDB()
	rng := rand.New(rand.NewPCG(5, 6))
	defer func() {
		if recover() == nil {
			t.Error("no panic on oversample")
		}
	}()
	db.SampleBits(rng, 18, ByType(Mode))
}

// Property: sampling is unbiased enough that every group gets hit when we
// sample a large fraction, and all indices are valid.
func TestQuickSampleValidity(t *testing.T) {
	db, _, _ := buildTestDB()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 1 + rng.IntN(db.TotalBits())
		bits := db.SampleBits(rng, n, nil)
		if len(bits) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, b := range bits {
			if b < 0 || b >= db.TotalBits() || seen[b] {
				return false
			}
			seen[b] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Poke then Peek round-trips on random bits.
func TestQuickPeekPoke(t *testing.T) {
	db, _, _ := buildTestDB()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 12))
		bit := rng.IntN(db.TotalBits())
		v := rng.IntN(2) == 1
		db.Poke(bit, v)
		return db.Peek(bit) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegFieldAccessors(t *testing.T) {
	db := NewDB()
	r := db.Register("IFU", Mode, "f", 64)
	db.Freeze()
	r.SetField(8, 16, 0xABCD)
	if got := r.Field(8, 16); got != 0xABCD {
		t.Errorf("Field = %#x", got)
	}
	if got := r.Get(); got != 0xABCD<<8 {
		t.Errorf("Get = %#x", got)
	}
	// Neighbouring bits untouched.
	r.SetField(0, 8, 0xFF)
	r.SetField(8, 16, 0x1234)
	if r.Field(0, 8) != 0xFF || r.Field(8, 16) != 0x1234 {
		t.Error("SetField clobbered neighbours")
	}
	// Oversized writes are masked.
	r.SetField(60, 4, 0xFF)
	if r.Field(60, 4) != 0xF {
		t.Errorf("Field(60,4) = %#x", r.Field(60, 4))
	}
}

func TestQuickFieldRoundTrip(t *testing.T) {
	db := NewDB()
	r := db.Register("IFU", Func, "q", 64)
	db.Freeze()
	f := func(v uint64, lo8, w8 uint8) bool {
		lo := int(lo8 % 60)
		w := int(w8%(64-uint8(lo))) + 1
		r.SetField(lo, w, v)
		mask := uint64(1)<<uint(w) - 1
		return r.Field(lo, w) == v&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func snapsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDeltaRestoreMatchesSnapshot(t *testing.T) {
	db, pc, gpr := buildTestDB()
	pc.Set(0x1234)
	db.SetBaseline()
	if !db.HasBaseline() {
		t.Fatal("baseline not installed")
	}
	ckA := db.CaptureDelta()
	if ckA.Words() != 0 {
		t.Fatalf("baseline delta has %d words", ckA.Words())
	}
	// Advance through every write primitive and checkpoint.
	pc.Set(0x5678)
	gpr.Entry(3).Set(99)
	db.Poke(0, true)
	db.Flip(60)
	ckB := db.CaptureDelta()
	wantB := db.Snapshot()
	// Dirty more state, then delta-restore B and cross-restore A.
	for i := 0; i < gpr.Len(); i++ {
		gpr.Entry(i).Set(uint64(i) * 3)
	}
	db.RestoreDelta(ckB)
	if !snapsEqual(db.Snapshot(), wantB) {
		t.Fatal("delta restore to B does not match snapshot")
	}
	db.RestoreDelta(ckA)
	if pc.Get() != 0x1234 || gpr.Entry(3).Get() != 0 {
		t.Fatal("cross-checkpoint delta restore to baseline diverged")
	}
}

func TestDeltaRestoreAfterFullRestore(t *testing.T) {
	// A full Restore conservatively dirties every word; the next delta
	// restore must still be exact.
	db, pc, _ := buildTestDB()
	db.SetBaseline()
	pc.Set(0xabc)
	ck := db.CaptureDelta()
	want := db.Snapshot()
	blank := make([]uint64, len(db.Snapshot()))
	db.Restore(blank)
	db.RestoreDelta(ck)
	if !snapsEqual(db.Snapshot(), want) {
		t.Fatal("delta restore after full Restore diverged")
	}
}

func TestAdoptBaseline(t *testing.T) {
	src, pc, _ := buildTestDB()
	pc.Set(0x77)
	src.SetBaseline()
	pc.Set(0x88)
	ck := src.CaptureDelta()

	db, pc2, _ := buildTestDB()
	db.AdoptBaseline(src)
	if pc2.Get() != 0x77 {
		t.Fatalf("adopted baseline pc = %#x", pc2.Get())
	}
	db.RestoreDelta(ck)
	if !snapsEqual(db.Snapshot(), src.Snapshot()) {
		t.Fatal("clone after delta restore does not match source")
	}
}
