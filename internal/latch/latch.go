// Package latch implements the latch database underlying the core model:
// every micro-architectural state bit is registered here as part of a named
// latch group with a unit and a latch type (the scan-chain classes of the
// paper's Figure 5). The SFI framework flips bits through this database, so
// any injected fault propagates through the model's real next-state logic.
//
// Storage is word-aligned per entry for speed; logical bit numbering is
// dense (one index per real latch bit) so statistical sampling sees exactly
// the physical latch population.
package latch

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"sort"
)

// Type is the scan-chain latch class from the paper: FUNC and REGFILE
// latches are read-write during normal operation; GPTR and MODE latches are
// scan-only and hold their values for the whole run.
type Type int

// Latch types (paper Figure 5).
const (
	Func    Type = iota + 1 // pipeline / control latches
	RegFile                 // register-file latches
	GPTR                    // general-purpose test register (scan-only)
	Mode                    // configuration mode latches (scan-only)
)

func (t Type) String() string {
	switch t {
	case Func:
		return "FUNC"
	case RegFile:
		return "REGFILE"
	case GPTR:
		return "GPTR"
	case Mode:
		return "MODE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Types lists all latch types in Figure 5 order.
var Types = []Type{Mode, GPTR, RegFile, Func}

// Group is a named block of latches: Entries entries of Width bits each
// (a scalar register is one entry). All bits of a group share a unit and a
// latch type.
type Group struct {
	Name    string
	Unit    string
	Kind    Type
	Entries int
	Width   int

	logOff  int // dense logical bit offset of entry 0 bit 0
	physOff int // word index of entry 0
}

// Bits returns the number of latch bits in the group.
func (g *Group) Bits() int { return g.Entries * g.Width }

// Offset returns the group's dense logical bit offset — the logical index
// of entry 0 bit 0, so the group spans logical bits [Offset, Offset+Bits).
// Stratified sample plans use it to enumerate a stratum's population.
func (g *Group) Offset() int { return g.logOff }

// DB is the latch database. Register groups during model construction, then
// Freeze; injection and snapshotting operate on the frozen database.
//
// When a restore baseline is installed (SetBaseline), every latch write also
// marks the storage word dirty, and delta snapshots captured against that
// baseline restore in time proportional to the words actually touched —
// see DESIGN.md "Dirty-tracking checkpoint restore".
type DB struct {
	words  []uint64
	groups []*Group
	byName map[string]*Group
	total  int
	frozen bool

	// base is the baseline latch image, immutable once installed (shared
	// read-only by cloned databases). dirty has one byte per block of 8
	// storage words, set when the block may differ from base: a plain
	// byte store keeps the latch-write hot path free of read-modify-write
	// bitmap traffic.
	base  []uint64
	dirty []byte
}

// dirtyShift: 8 storage words (one cache line) per dirty-map byte.
const dirtyShift = 3

// NewDB returns an empty latch database.
func NewDB() *DB {
	return &DB{byName: make(map[string]*Group)}
}

func mask(width int) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return (1 << uint(width)) - 1
}

// Register adds a scalar latch group of width bits and returns its handle.
func (db *DB) Register(unit string, kind Type, name string, width int) Reg {
	a := db.RegisterArray(unit, kind, name, 1, width)
	return a.Entry(0)
}

// RegisterArray adds a latch group of entries × width bits and returns its
// handle. Width must be in [1,64].
func (db *DB) RegisterArray(unit string, kind Type, name string, entries, width int) Array {
	if db.frozen {
		panic("latch: register after Freeze")
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("latch: width %d out of range [1,64] for %s", width, name))
	}
	if entries < 1 {
		panic(fmt.Sprintf("latch: entries %d < 1 for %s", entries, name))
	}
	if _, dup := db.byName[name]; dup {
		panic(fmt.Sprintf("latch: duplicate group %q", name))
	}
	g := &Group{
		Name:    name,
		Unit:    unit,
		Kind:    kind,
		Entries: entries,
		Width:   width,
		logOff:  db.total,
		physOff: len(db.words),
	}
	db.groups = append(db.groups, g)
	db.byName[name] = g
	db.total += entries * width
	db.words = append(db.words, make([]uint64, entries)...)
	return Array{db: db, g: g}
}

// Freeze finalizes registration. Further Register calls panic.
func (db *DB) Freeze() { db.frozen = true }

// TotalBits returns the number of latch bits in the database.
func (db *DB) TotalBits() int { return db.total }

// Groups returns the registered groups in registration order. The caller
// must not mutate the returned slice.
func (db *DB) Groups() []*Group { return db.groups }

// GroupByName looks a group up by name.
func (db *DB) GroupByName(name string) (*Group, bool) {
	g, ok := db.byName[name]
	return g, ok
}

// Locate maps a logical bit index to its group, entry and bit-within-entry.
func (db *DB) Locate(bit int) (g *Group, entry, bitInEntry int) {
	if bit < 0 || bit >= db.total {
		panic(fmt.Sprintf("latch: bit %d out of range [0,%d)", bit, db.total))
	}
	// Binary search over group logical offsets.
	i := sort.Search(len(db.groups), func(i int) bool {
		return db.groups[i].logOff > bit
	}) - 1
	g = db.groups[i]
	rel := bit - g.logOff
	return g, rel / g.Width, rel % g.Width
}

// Peek reads a logical latch bit.
func (db *DB) Peek(bit int) bool {
	g, e, b := db.Locate(bit)
	return db.words[g.physOff+e]&(1<<uint(b)) != 0
}

// touch marks storage word w's block dirty (no-op without a baseline). It
// is small enough to inline into the latch-write hot path.
func (db *DB) touch(w int) {
	if db.dirty != nil {
		db.dirty[w>>dirtyShift] = 1
	}
}

// Poke writes a logical latch bit. Rewriting the held value is a no-op
// (see Reg.Set).
func (db *DB) Poke(bit int, v bool) {
	g, e, b := db.Locate(bit)
	w := g.physOff + e
	old := db.words[w]
	nw := old &^ (1 << uint(b))
	if v {
		nw = old | 1<<uint(b)
	}
	if nw == old {
		return
	}
	db.words[w] = nw
	db.touch(w)
}

// Flip inverts a logical latch bit and returns the new value. This is the
// injection primitive ("flip chosen latch bits" in the paper's Figure 1).
func (db *DB) Flip(bit int) bool {
	g, e, b := db.Locate(bit)
	w := g.physOff + e
	db.words[w] ^= 1 << uint(b)
	db.touch(w)
	return db.words[w]&(1<<uint(b)) != 0
}

// Snapshot returns a copy of all latch state (a model checkpoint).
func (db *DB) Snapshot() []uint64 {
	s := make([]uint64, len(db.words))
	copy(s, db.words)
	return s
}

// Restore overwrites all latch state from a snapshot taken on the same
// database shape. With a baseline installed every word is conservatively
// marked dirty so later delta restores stay correct.
func (db *DB) Restore(snap []uint64) {
	if len(snap) != len(db.words) {
		panic(fmt.Sprintf("latch: snapshot size %d != %d", len(snap), len(db.words)))
	}
	copy(db.words, snap)
	for i := range db.dirty {
		db.dirty[i] = 1
	}
}

// SetBaseline snapshots the current latch image as the restore baseline and
// starts block-granular dirty tracking against it.
func (db *DB) SetBaseline() {
	db.base = append([]uint64(nil), db.words...)
	db.dirty = make([]byte, (len(db.words)+7)>>dirtyShift)
}

// HasBaseline reports whether dirty tracking is active.
func (db *DB) HasBaseline() bool { return db.base != nil }

// AdoptBaseline shares src's baseline (read-only) and resets this database's
// latch image to it with a clean dirty bitmap. Shapes must match (same
// registration sequence).
func (db *DB) AdoptBaseline(src *DB) {
	if src.base == nil {
		panic("latch: AdoptBaseline from a database without a baseline")
	}
	if len(db.words) != len(src.base) {
		panic(fmt.Sprintf("latch: adopt size mismatch %d != %d", len(db.words), len(src.base)))
	}
	db.base = src.base
	copy(db.words, db.base)
	db.dirty = make([]byte, (len(db.words)+7)>>dirtyShift)
}

// Delta is a sparse latch snapshot: the storage words (index and value) that
// differed from the baseline at capture time. Immutable after capture.
type Delta struct {
	idx []int32
	val []uint64
}

// Words returns the number of storage words recorded in the delta.
func (d *Delta) Words() int { return len(d.idx) }

// blockBounds returns the word range [lo, hi) of dirty block b.
func (db *DB) blockBounds(b int) (lo, hi int) {
	lo = b << dirtyShift
	hi = lo + 1<<dirtyShift
	if hi > len(db.words) {
		hi = len(db.words)
	}
	return lo, hi
}

// forEachDirtyBlock calls fn for every dirty block index in ascending
// order, scanning the byte map eight entries at a time.
func (db *DB) forEachDirtyBlock(fn func(block int)) {
	d := db.dirty
	i := 0
	for ; i+8 <= len(d); i += 8 {
		if binary.LittleEndian.Uint64(d[i:]) == 0 {
			continue
		}
		for j := i; j < i+8; j++ {
			if d[j] != 0 {
				fn(j)
			}
		}
	}
	for ; i < len(d); i++ {
		if d[i] != 0 {
			fn(i)
		}
	}
}

// CaptureDelta records the words that differ from the baseline (scanning
// only the blocks marked dirty). It panics without a baseline.
func (db *DB) CaptureDelta() *Delta {
	if db.base == nil {
		panic("latch: CaptureDelta without a baseline")
	}
	d := &Delta{}
	db.forEachDirtyBlock(func(b int) {
		lo, hi := db.blockBounds(b)
		for w := lo; w < hi; w++ {
			if db.words[w] != db.base[w] {
				d.idx = append(d.idx, int32(w))
				d.val = append(d.val, db.words[w])
			}
		}
	})
	return d
}

// RestoreDelta rewrites the latch image to exactly the state captured in d:
// dirty blocks revert to the baseline, then the delta's words are applied
// and stay marked dirty. Cost is proportional to blocks touched since the
// last restore plus the delta size — not the database size.
func (db *DB) RestoreDelta(d *Delta) {
	if db.base == nil {
		panic("latch: RestoreDelta without a baseline")
	}
	db.forEachDirtyBlock(func(b int) {
		lo, hi := db.blockBounds(b)
		copy(db.words[lo:hi], db.base[lo:hi])
	})
	for i := range db.dirty {
		db.dirty[i] = 0
	}
	for i, w32 := range d.idx {
		w := int(w32)
		db.words[w] = d.val[i]
		db.dirty[w>>dirtyShift] = 1
	}
}

// Filter selects latch groups (nil selects everything).
type Filter func(g *Group) bool

// ByUnit returns a Filter selecting one unit.
func ByUnit(unit string) Filter {
	return func(g *Group) bool { return g.Unit == unit }
}

// ByType returns a Filter selecting one latch type.
func ByType(t Type) Filter {
	return func(g *Group) bool { return g.Kind == t }
}

// CountBits returns the number of latch bits matching the filter.
func (db *DB) CountBits(f Filter) int {
	n := 0
	for _, g := range db.groups {
		if f == nil || f(g) {
			n += g.Bits()
		}
	}
	return n
}

// Units returns the distinct unit names in first-registration order.
func (db *DB) Units() []string {
	seen := make(map[string]bool)
	var units []string
	for _, g := range db.groups {
		if !seen[g.Unit] {
			seen[g.Unit] = true
			units = append(units, g.Unit)
		}
	}
	return units
}

// SampleBits draws n distinct logical bit indices uniformly from the latch
// bits matching the filter (the paper's random latch selection). It panics
// if fewer than n bits match.
func (db *DB) SampleBits(rng *rand.Rand, n int, f Filter) []int {
	// Collect matching logical ranges.
	type span struct{ off, n int }
	var spans []span
	total := 0
	for _, g := range db.groups {
		if f == nil || f(g) {
			spans = append(spans, span{g.logOff, g.Bits()})
			total += g.Bits()
		}
	}
	if n > total {
		panic(fmt.Sprintf("latch: sample of %d from population of %d", n, total))
	}
	// Floyd's algorithm over the virtual concatenation of spans.
	pick := func(k int) int { // k-th bit of the filtered population
		for _, s := range spans {
			if k < s.n {
				return s.off + k
			}
			k -= s.n
		}
		panic("unreachable")
	}
	chosen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for i := total - n; i < total; i++ {
		k := rng.IntN(i + 1)
		b := pick(k)
		if chosen[b] {
			b = pick(i)
		}
		chosen[b] = true
		out = append(out, b)
	}
	return out
}

// Reg is a handle to one entry of a latch group; all model state access goes
// through Reg so that injected bit flips are visible to the logic.
type Reg struct {
	db  *DB
	g   *Group
	idx int
}

// Get reads the latch value.
func (r Reg) Get() uint64 {
	return r.db.words[r.g.physOff+r.idx] & mask(r.g.Width)
}

// Set writes the latch value (extra high bits are dropped). Rewriting the
// value already held is a no-op: most latch writes each cycle are holds
// (idle FSMs, regenerated parity), and skipping them keeps both the store
// and the dirty-tracking mark off the hot path.
func (r Reg) Set(v uint64) {
	w := r.g.physOff + r.idx
	v &= mask(r.g.Width)
	if r.db.words[w] == v {
		return
	}
	r.db.words[w] = v
	r.db.touch(w)
}

// GetBit reads one bit of the latch.
func (r Reg) GetBit(i int) bool { return r.Get()&(1<<uint(i)) != 0 }

// SetBit writes one bit of the latch.
func (r Reg) SetBit(i int, v bool) {
	w := r.Get()
	if v {
		w |= 1 << uint(i)
	} else {
		w &^= 1 << uint(i)
	}
	r.Set(w)
}

// Field reads the width-bit field starting at bit lo.
func (r Reg) Field(lo, width int) uint64 {
	return (r.Get() >> uint(lo)) & mask(width)
}

// SetField writes the width-bit field starting at bit lo.
func (r Reg) SetField(lo, width int, v uint64) {
	m := mask(width) << uint(lo)
	r.Set(r.Get()&^m | (v << uint(lo) & m))
}

// Width returns the latch width in bits.
func (r Reg) Width() int { return r.g.Width }

// Group returns the group this handle belongs to.
func (r Reg) Group() *Group { return r.g }

// Array is a handle to a multi-entry latch group.
type Array struct {
	db *DB
	g  *Group
}

// Entry returns the handle for entry i.
func (a Array) Entry(i int) Reg {
	if i < 0 || i >= a.g.Entries {
		panic(fmt.Sprintf("latch: entry %d out of range [0,%d) in %s", i, a.g.Entries, a.g.Name))
	}
	return Reg{db: a.db, g: a.g, idx: i}
}

// Len returns the number of entries.
func (a Array) Len() int { return a.g.Entries }

// Group returns the group this handle belongs to.
func (a Array) Group() *Group { return a.g }
