package bits

// Mod-3 residue arithmetic, the classic low-cost arithmetic checker used by
// the FXU: the residue of a sum/difference/product can be predicted from the
// operand residues, so a mismatch between the predicted and recomputed
// residue of an ALU result flags a fault in the datapath.

// Residue3 returns v mod 3 computed the way a residue tree would: by folding
// the word in 2-bit digits (4 ≡ 1 mod 3, so base-4 digit sum preserves the
// residue).
func Residue3(v uint64) uint8 {
	for v > 3 {
		var s uint64
		for v != 0 {
			s += v & 3
			v >>= 2
		}
		v = s
	}
	if v == 3 {
		return 0
	}
	return uint8(v)
}

// AddResidue3 predicts the mod-3 residue of the wrapped 64-bit sum a+b from
// the operand residues and the adder's carry-out. The wrapped sum is the
// full sum minus carry·2^64, and 2^64 ≡ 1 (mod 3), so the carry subtracts
// one from the predicted residue — exactly the correction a hardware residue
// checker applies using the adder's carry-out signal.
func AddResidue3(ra, rb uint8, carryOut bool) uint8 {
	r := (ra + rb) % 3
	if carryOut {
		r = (r + 2) % 3 // subtract 1 mod 3
	}
	return r
}

// SubResidue3 predicts the mod-3 residue of the wrapped 64-bit difference
// a-b from the operand residues and the subtractor's borrow-out (the wrapped
// difference is the full difference plus borrow·2^64 ≡ +1 mod 3).
func SubResidue3(ra, rb uint8, borrowOut bool) uint8 {
	r := (ra + 3 - rb) % 3
	if borrowOut {
		r = (r + 1) % 3
	}
	return r
}

// MulResidue3 predicts the mod-3 residue of a*b from operand residues.
func MulResidue3(ra, rb uint8) uint8 { return (ra * rb) % 3 }
