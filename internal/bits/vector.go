// Package bits provides the low-level bit manipulation primitives shared by
// the latch database, the protected-array model and the hardware checkers:
// fixed-size bit vectors, parity computation, a SECDED Hamming code and
// mod-3 residue arithmetic.
package bits

import (
	"fmt"
	mathbits "math/bits"
	"strings"
)

// Vector is a fixed-length vector of bits backed by 64-bit words. The zero
// value is an empty vector; use NewVector to allocate one with a length.
type Vector struct {
	words []uint64
	n     int
}

// NewVector returns a Vector holding n bits, all zero.
func NewVector(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bits: negative vector length %d", n))
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bits: index %d out of range [0,%d)", i, v.n))
	}
}

// Bit reports whether bit i is set.
func (v *Vector) Bit(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// SetBit sets bit i to b.
func (v *Vector) SetBit(i int, b bool) {
	v.check(i)
	if b {
		v.words[i>>6] |= 1 << uint(i&63)
	} else {
		v.words[i>>6] &^= 1 << uint(i&63)
	}
}

// Flip inverts bit i and returns its new value.
func (v *Vector) Flip(i int) bool {
	v.check(i)
	v.words[i>>6] ^= 1 << uint(i&63)
	return v.Bit(i)
}

// Word returns up to 64 bits starting at bit offset off. Bits beyond the end
// of the vector read as zero. width must be in [0,64].
func (v *Vector) Word(off, width int) uint64 {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bits: word width %d out of range [0,64]", width))
	}
	var out uint64
	for i := 0; i < width; i++ {
		if off+i < v.n && v.Bit(off+i) {
			out |= 1 << uint(i)
		}
	}
	return out
}

// SetWord writes the low width bits of w starting at bit offset off. Bits
// beyond the end of the vector are ignored.
func (v *Vector) SetWord(off, width int, w uint64) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bits: word width %d out of range [0,64]", width))
	}
	for i := 0; i < width; i++ {
		if off+i < v.n {
			v.SetBit(off+i, w&(1<<uint(i)) != 0)
		}
	}
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	total := 0
	for _, w := range v.words {
		total += mathbits.OnesCount64(w)
	}
	return total
}

// Parity returns the XOR of all bits (true = odd number of ones).
func (v *Vector) Parity() bool { return v.OnesCount()%2 == 1 }

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	w := NewVector(v.n)
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites this vector's contents with src. The lengths must
// match.
func (v *Vector) CopyFrom(src *Vector) {
	if v.n != src.n {
		panic(fmt.Sprintf("bits: copy length mismatch %d != %d", v.n, src.n))
	}
	copy(v.words, src.words)
}

// Equal reports whether two vectors have identical length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Reset clears every bit.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// DiffBits returns the indices of bits where v and o differ. The lengths
// must match.
func (v *Vector) DiffBits(o *Vector) []int {
	if v.n != o.n {
		panic(fmt.Sprintf("bits: diff length mismatch %d != %d", v.n, o.n))
	}
	var diff []int
	for wi := range v.words {
		x := v.words[wi] ^ o.words[wi]
		for x != 0 {
			b := mathbits.TrailingZeros64(x)
			i := wi*64 + b
			if i < v.n {
				diff = append(diff, i)
			}
			x &= x - 1
		}
	}
	return diff
}

// String renders the vector MSB-first as a binary string, for debugging.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := v.n - 1; i >= 0; i-- {
		if v.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParityOf64 returns the even/odd parity bit of a 64-bit word (true = odd
// number of ones), the primitive used by hardware parity checkers.
func ParityOf64(w uint64) bool { return mathbits.OnesCount64(w)%2 == 1 }
