package bits

import (
	mathbits "math/bits"
	"testing"
	"testing/quick"
)

func TestResidue3Basics(t *testing.T) {
	tests := []struct {
		v    uint64
		want uint8
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 0}, {4, 1}, {5, 2}, {6, 0},
		{300, 0}, {301, 1}, {0xffffffffffffffff, 0},
	}
	for _, tc := range tests {
		if got := Residue3(tc.v); got != tc.want {
			t.Errorf("Residue3(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestQuickResidue3MatchesMod(t *testing.T) {
	f := func(v uint64) bool { return Residue3(v) == uint8(v%3) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddResiduePredicts(t *testing.T) {
	f := func(a, b uint64) bool {
		sum, carry := mathbits.Add64(a, b, 0)
		return AddResidue3(Residue3(a), Residue3(b), carry == 1) == Residue3(sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubResiduePredicts(t *testing.T) {
	f := func(a, b uint64) bool {
		diff, borrow := mathbits.Sub64(a, b, 0)
		return SubResidue3(Residue3(a), Residue3(b), borrow == 1) == Residue3(diff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulResiduePredicts(t *testing.T) {
	// The checker predicts the residue of the full product. Since
	// 2^64 ≡ 1 (mod 3), the residue of the 128-bit product hi·2^64+lo is
	// (Residue3(hi)+Residue3(lo)) % 3.
	f := func(a, b uint64) bool {
		hi, lo := mathbits.Mul64(a, b)
		full := (Residue3(hi) + Residue3(lo)) % 3
		return MulResidue3(Residue3(a), Residue3(b)) == full
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulResiduePredictsNoOverflow(t *testing.T) {
	f := func(a, b uint32) bool {
		p := uint64(a) * uint64(b)
		return MulResidue3(Residue3(uint64(a)), Residue3(uint64(b))) == Residue3(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
