package bits

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewVectorZero(t *testing.T) {
	v := NewVector(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	for i := 0; i < 130; i++ {
		if v.Bit(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
	}
	if v.OnesCount() != 0 {
		t.Fatalf("OnesCount = %d, want 0", v.OnesCount())
	}
}

func TestSetBitAndBit(t *testing.T) {
	v := NewVector(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		v.SetBit(i, true)
	}
	for _, i := range idx {
		if !v.Bit(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := v.OnesCount(); got != len(idx) {
		t.Errorf("OnesCount = %d, want %d", got, len(idx))
	}
	v.SetBit(64, false)
	if v.Bit(64) {
		t.Error("bit 64 still set after clear")
	}
}

func TestFlip(t *testing.T) {
	v := NewVector(10)
	if got := v.Flip(3); !got {
		t.Error("Flip(3) of zero bit returned false")
	}
	if got := v.Flip(3); got {
		t.Error("second Flip(3) returned true")
	}
	if v.OnesCount() != 0 {
		t.Error("vector not back to zero after double flip")
	}
}

func TestWordRoundTrip(t *testing.T) {
	tests := []struct {
		off, width int
		val        uint64
	}{
		{0, 64, 0xdeadbeefcafef00d},
		{5, 32, 0x12345678},
		{60, 16, 0xffff}, // straddles a word boundary
		{100, 1, 1},
		{0, 0, 0},
	}
	v := NewVector(256)
	for _, tc := range tests {
		v.Reset()
		v.SetWord(tc.off, tc.width, tc.val)
		mask := ^uint64(0)
		if tc.width < 64 {
			mask = (1 << uint(tc.width)) - 1
		}
		if got := v.Word(tc.off, tc.width); got != tc.val&mask {
			t.Errorf("Word(%d,%d) = %#x, want %#x", tc.off, tc.width, got, tc.val&mask)
		}
	}
}

func TestWordBeyondEnd(t *testing.T) {
	v := NewVector(70)
	v.SetWord(60, 20, 0xfffff) // only bits 60..69 land
	if got := v.OnesCount(); got != 10 {
		t.Errorf("OnesCount = %d, want 10 (writes past end must be dropped)", got)
	}
	if got := v.Word(60, 20); got != 0x3ff {
		t.Errorf("Word(60,20) = %#x, want 0x3ff (reads past end are zero)", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := NewVector(128)
	v.SetBit(10, true)
	w := v.Clone()
	w.SetBit(20, true)
	if v.Bit(20) {
		t.Error("mutation of clone visible in original")
	}
	if !w.Bit(10) {
		t.Error("clone lost original bit")
	}
}

func TestCopyFromAndEqual(t *testing.T) {
	v := NewVector(100)
	v.SetWord(0, 64, 0xabcdef)
	w := NewVector(100)
	if w.Equal(v) {
		t.Error("distinct vectors reported equal")
	}
	w.CopyFrom(v)
	if !w.Equal(v) {
		t.Error("CopyFrom result not equal")
	}
	u := NewVector(99)
	if u.Equal(v) {
		t.Error("different-length vectors reported equal")
	}
}

func TestDiffBits(t *testing.T) {
	v := NewVector(130)
	w := NewVector(130)
	w.SetBit(0, true)
	w.SetBit(64, true)
	w.SetBit(129, true)
	got := v.DiffBits(w)
	want := []int{0, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("DiffBits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DiffBits = %v, want %v", got, want)
		}
	}
}

func TestParity(t *testing.T) {
	v := NewVector(64)
	if v.Parity() {
		t.Error("zero vector has odd parity")
	}
	v.SetBit(5, true)
	if !v.Parity() {
		t.Error("one-bit vector has even parity")
	}
	v.SetBit(63, true)
	if v.Parity() {
		t.Error("two-bit vector has odd parity")
	}
}

func TestParityOf64(t *testing.T) {
	tests := []struct {
		w    uint64
		want bool
	}{
		{0, false},
		{1, true},
		{3, false},
		{0xffffffffffffffff, false},
		{0x8000000000000001, false},
		{0x8000000000000000, true},
	}
	for _, tc := range tests {
		if got := ParityOf64(tc.w); got != tc.want {
			t.Errorf("ParityOf64(%#x) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestVectorString(t *testing.T) {
	v := NewVector(4)
	v.SetBit(0, true)
	v.SetBit(3, true)
	if got := v.String(); got != "1001" {
		t.Errorf("String = %q, want 1001", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := NewVector(8)
	for _, f := range []func(){
		func() { v.Bit(8) },
		func() { v.Bit(-1) },
		func() { v.SetBit(8, true) },
		func() { v.Flip(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			f()
		}()
	}
}

// Property: flipping a random set of bits twice restores the vector.
func TestQuickDoubleFlipIdentity(t *testing.T) {
	f := func(seed uint64, nbits uint16) bool {
		n := int(nbits%500) + 1
		v := NewVector(n)
		rng := rand.New(rand.NewPCG(seed, 1))
		for i := 0; i < n; i++ {
			v.SetBit(i, rng.IntN(2) == 1)
		}
		orig := v.Clone()
		idx := make([]int, 0, 16)
		for i := 0; i < 16; i++ {
			idx = append(idx, rng.IntN(n))
		}
		for _, i := range idx {
			v.Flip(i)
		}
		for i := len(idx) - 1; i >= 0; i-- {
			v.Flip(idx[i])
		}
		return v.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Word/SetWord round-trips arbitrary values at arbitrary offsets.
func TestQuickWordRoundTrip(t *testing.T) {
	f := func(val uint64, off uint8, width uint8) bool {
		w := int(width % 65)
		o := int(off % 64)
		v := NewVector(192)
		v.SetWord(o, w, val)
		mask := ^uint64(0)
		if w < 64 {
			mask = (1 << uint(w)) - 1
		}
		return v.Word(o, w) == val&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: OnesCount equals the number of DiffBits against zero.
func TestQuickOnesCountMatchesDiff(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := rng.IntN(300) + 1
		v := NewVector(n)
		for i := 0; i < n; i++ {
			v.SetBit(i, rng.IntN(3) == 0)
		}
		return v.OnesCount() == len(NewVector(n).DiffBits(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
