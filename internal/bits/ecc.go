package bits

import "fmt"

// SECDED implements a (72,64) Hamming single-error-correct /
// double-error-detect code, the protection scheme used by the model's SRAM
// arrays (caches and the RUT architected-state checkpoint).
//
// Check bit i (i in 0..6) covers every data bit whose 7-bit position code has
// bit i set; an eighth overall-parity bit provides double-error detection.

// ECCWord is a 64-bit data word together with its 8 SECDED check bits, as it
// would be stored in an array cell.
type ECCWord struct {
	Data  uint64
	Check uint8
}

// eccPositions[i] is the 7-bit nonzero position code assigned to data bit i.
// Position codes that are powers of two are reserved for the check bits
// themselves, so data bits use the remaining codes in increasing order.
var eccPositions = func() [64]uint8 {
	var pos [64]uint8
	code := uint8(1)
	for i := 0; i < 64; i++ {
		code++
		for code&(code-1) == 0 { // skip powers of two (check-bit slots)
			code++
		}
		pos[i] = code
	}
	return pos
}()

// EncodeSECDED computes the SECDED check bits for a 64-bit data word.
func EncodeSECDED(data uint64) ECCWord {
	var syndrome uint8
	for i := 0; i < 64; i++ {
		if data&(1<<uint(i)) != 0 {
			syndrome ^= eccPositions[i]
		}
	}
	check := syndrome & 0x7f
	// Overall parity over data plus the 7 Hamming check bits.
	overall := ParityOf64(data) != (popcount8(check)%2 == 1)
	if overall {
		check |= 0x80
	}
	return ECCWord{Data: data, Check: check}
}

func popcount8(b uint8) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

// ECCResult classifies the outcome of a SECDED decode.
type ECCResult int

const (
	// ECCClean means the stored word had no detectable error.
	ECCClean ECCResult = iota + 1
	// ECCCorrected means a single-bit error was detected and corrected.
	ECCCorrected
	// ECCUncorrectable means a multi-bit error was detected; the returned
	// data is not trustworthy.
	ECCUncorrectable
)

func (r ECCResult) String() string {
	switch r {
	case ECCClean:
		return "clean"
	case ECCCorrected:
		return "corrected"
	case ECCUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("ECCResult(%d)", int(r))
	}
}

// DecodeSECDED checks a stored word, correcting a single-bit error in either
// the data or the check bits. It returns the (possibly corrected) data and
// the classification.
func DecodeSECDED(w ECCWord) (uint64, ECCResult) {
	// Syndrome: XOR of position codes of set data bits vs the stored
	// Hamming check bits.
	var recomputed uint8
	for i := 0; i < 64; i++ {
		if w.Data&(1<<uint(i)) != 0 {
			recomputed ^= eccPositions[i]
		}
	}
	syndrome := (w.Check ^ recomputed) & 0x7f

	// Overall parity of the received word (data + low-7 check + overall
	// bit). Encoding makes this even, so odd parity here means an odd
	// number of bit errors.
	oddErrors := ParityOf64(w.Data) !=
		(popcount8(w.Check)%2 == 1)

	switch {
	case syndrome == 0 && !oddErrors:
		return w.Data, ECCClean
	case syndrome == 0 && oddErrors:
		// Error confined to the overall parity bit itself.
		return w.Data, ECCCorrected
	case oddErrors:
		// Nonzero syndrome with odd overall parity: a single error.
		if syndrome&(syndrome-1) == 0 {
			// The flipped bit is one of the Hamming check bits.
			return w.Data, ECCCorrected
		}
		for i := 0; i < 64; i++ {
			if eccPositions[i] == syndrome {
				return w.Data ^ (1 << uint(i)), ECCCorrected
			}
		}
		// Syndrome names no known position: alias of a multi-bit error.
		return w.Data, ECCUncorrectable
	default:
		// Nonzero syndrome with even overall parity: double error.
		return w.Data, ECCUncorrectable
	}
}
