package bits

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSECDEDCleanRoundTrip(t *testing.T) {
	for _, d := range []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeef, 1 << 63} {
		w := EncodeSECDED(d)
		got, res := DecodeSECDED(w)
		if res != ECCClean || got != d {
			t.Errorf("DecodeSECDED(Encode(%#x)) = %#x,%v, want clean", d, got, res)
		}
	}
}

func TestSECDEDCorrectsEverySingleDataBit(t *testing.T) {
	d := uint64(0x0123456789abcdef)
	for i := 0; i < 64; i++ {
		w := EncodeSECDED(d)
		w.Data ^= 1 << uint(i)
		got, res := DecodeSECDED(w)
		if res != ECCCorrected {
			t.Fatalf("bit %d: result %v, want corrected", i, res)
		}
		if got != d {
			t.Fatalf("bit %d: data %#x, want %#x", i, got, d)
		}
	}
}

func TestSECDEDCorrectsEveryCheckBit(t *testing.T) {
	d := uint64(0xfeedfacecafebeef)
	for i := 0; i < 8; i++ {
		w := EncodeSECDED(d)
		w.Check ^= 1 << uint(i)
		got, res := DecodeSECDED(w)
		if res != ECCCorrected {
			t.Fatalf("check bit %d: result %v, want corrected", i, res)
		}
		if got != d {
			t.Fatalf("check bit %d: data corrupted to %#x", i, got)
		}
	}
}

func TestSECDEDDetectsDoubleErrors(t *testing.T) {
	d := uint64(0x5555aaaa3333cccc)
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 500; trial++ {
		i := rng.IntN(64)
		j := rng.IntN(64)
		for j == i {
			j = rng.IntN(64)
		}
		w := EncodeSECDED(d)
		w.Data ^= (1 << uint(i)) | (1 << uint(j))
		_, res := DecodeSECDED(w)
		if res != ECCUncorrectable {
			t.Fatalf("double error bits %d,%d: result %v, want uncorrectable", i, j, res)
		}
	}
}

func TestSECDEDDoubleErrorDataPlusCheck(t *testing.T) {
	d := uint64(0x0f0f0f0f0f0f0f0f)
	rng := rand.New(rand.NewPCG(9, 9))
	uncorrectable := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		w := EncodeSECDED(d)
		w.Data ^= 1 << uint(rng.IntN(64))
		w.Check ^= 1 << uint(rng.IntN(8))
		_, res := DecodeSECDED(w)
		if res == ECCUncorrectable {
			uncorrectable++
		} else if res == ECCCorrected {
			// A data-bit flip plus the overall parity bit aliases to a
			// correctable pattern only when the syndrome still points at the
			// data bit AND overall parity looks single; acceptable alias.
		} else {
			t.Fatalf("double error (data+check) classified clean")
		}
	}
	if uncorrectable == 0 {
		t.Error("no data+check double error was flagged uncorrectable")
	}
}

func TestECCResultString(t *testing.T) {
	if ECCClean.String() != "clean" || ECCCorrected.String() != "corrected" ||
		ECCUncorrectable.String() != "uncorrectable" {
		t.Error("ECCResult strings wrong")
	}
	if ECCResult(99).String() == "" {
		t.Error("unknown ECCResult should still render")
	}
}

// Property: any single-bit data error is corrected for arbitrary words.
func TestQuickSECDEDSingleErrorCorrection(t *testing.T) {
	f := func(d uint64, bit uint8) bool {
		i := int(bit % 64)
		w := EncodeSECDED(d)
		w.Data ^= 1 << uint(i)
		got, res := DecodeSECDED(w)
		return res == ECCCorrected && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encode is deterministic and decode of untouched word is clean.
func TestQuickSECDEDCleanProperty(t *testing.T) {
	f := func(d uint64) bool {
		w1 := EncodeSECDED(d)
		w2 := EncodeSECDED(d)
		if w1 != w2 {
			return false
		}
		got, res := DecodeSECDED(w1)
		return res == ECCClean && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
