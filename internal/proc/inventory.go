package proc

import (
	"sfi/internal/array"
	"sfi/internal/latch"
)

// Scan-ring layout shared by every unit's MODE ring:
//
//	[0:16)  integrity segment — parity-guarded by the pervasive ring
//	        checker; corruption is a checkstop (scan corruption is not
//	        retryable).
//	[16:24) critical function segment — must hold modeCriticalInit or the
//	        unit's clocks are effectively broken (unit freezes → hang).
//	[24:32) parity-polarity segment — XORed into the unit's data-parity
//	        generation and checking; a flip makes existing protected state
//	        look bad (one retry), after which regenerated parity is
//	        consistent again (corrected, one-shot).
//	[32:N)  spare configuration bits (no functional effect).
//
// GPTR rings: [0:4) test-engage bits (freeze the unit: hang), [4:12)
// integrity segment (checkstop), rest unused ABIST seeds/test data.
const (
	modeIntegrityLo, modeIntegrityHi = 0, 16
	modeCriticalLo, modeCriticalHi   = 16, 24
	modePolarityLo, modePolarityHi   = 24, 32
	modeCriticalInit                 = 0xA5
	modeIntegrityInit                = 0x3C5A

	gptrEngageLo, gptrEngageHi       = 0, 4
	gptrIntegrityLo, gptrIntegrityHi = 4, 12
)

// Cache and queue geometry.
const (
	icLines    = 64  // 32B lines, direct mapped
	dcLines    = 128 // 32B lines, direct mapped, write-through
	lineWords  = 4   // 64-bit dwords per line
	stqEntries = 24
	eratSize   = 64
	lmqEntries = 4
	fbEntries  = 8
	bhtEntries = 2048
	traceDepth = 64
)

type ifuState struct {
	pc     latch.Reg // fetch address
	pcPar  latch.Reg
	fbIR   latch.Array // fetch buffer: instruction words
	fbPC   latch.Array // fetch buffer: addresses
	fbV    latch.Array // fetch buffer: valid bits
	fbPar  latch.Array // fetch buffer: entry parity
	fbHead latch.Reg
	fbTail latch.Reg
	fbCnt  latch.Reg
	bht    latch.Array // 2-bit branch history counters (unprotected)
	icFSM  latch.Reg   // icache miss state
	icCnt  latch.Reg   // refill countdown
	icAddr latch.Reg   // refill address
	thrCnt latch.Reg   // fetch throttle countdown
	perf   latch.Array
	mode   latch.Reg // MODE scan ring (4x64 pieces)
	mode2  latch.Array
	gptr   latch.Array

	icTag  *array.Protected
	icData *array.Protected
}

type iduState struct {
	d1IR  latch.Reg
	d1PC  latch.Reg
	d1V   latch.Reg
	d1Par latch.Reg

	d2IR   latch.Reg
	d2PC   latch.Reg
	d2V    latch.Reg
	d2Par  latch.Reg
	d2Pred latch.Reg // bit0: predicted taken
	d2PNPC latch.Reg // predicted next fetch address after this inst

	cr     latch.Reg // condition register CR0 (4 bits)
	crPar  latch.Reg
	lr     latch.Reg
	lrPar  latch.Reg
	ctr    latch.Reg
	ctrPar latch.Reg

	dispFSM latch.Reg   // one-hot dispatch state
	dacTbl  latch.Array // decode-assist patch table (scan-loaded, spare)
	ucSeq   latch.Reg
	perf    latch.Array
	mode    latch.Reg
	mode2   latch.Array
	gptr    latch.Array
}

type fxuState struct {
	gpr    latch.Array // 32 x 64 general purpose registers
	gprPar latch.Array // per-register parity

	// EX stage slot (shared by all execution classes; the FXU owns the
	// issue/execute sequencing latches in this model).
	exIR    latch.Reg
	exIRPar latch.Reg
	exPC    latch.Reg
	exV     latch.Reg
	exBusy  latch.Reg // remaining execute cycles

	opA    latch.Reg
	opAPar latch.Reg
	opB    latch.Reg
	opBPar latch.Reg

	res    latch.Reg // fixed-point result
	resPar latch.Reg
	resRsd latch.Reg // predicted mod-3 residue of the result

	divFSM latch.Reg
	divCnt latch.Reg
	exPred latch.Reg // branch predicted-taken bit riding with the EX slot
	exPNPC latch.Reg // predicted (then actual) next fetch address

	// WB stage slot.
	wbIR    latch.Reg
	wbIRPar latch.Reg
	wbV     latch.Reg
	wbRes   latch.Reg
	wbPar   latch.Reg
	wbFRes  latch.Reg // floating-point result riding to writeback
	wbFPar  latch.Reg
	wbNPC   latch.Reg // architected next PC for the checkpoint

	perf  latch.Array
	mode  latch.Reg
	mode2 latch.Array
	gptr  latch.Array
}

type fpuState struct {
	fpr    latch.Array
	fprPar latch.Array

	p1a   latch.Reg // pipeline stage operand/result latches
	p1b   latch.Reg
	p2    latch.Reg
	p3    latch.Reg
	p4    latch.Reg
	pPar  latch.Reg // staged parity, one bit per stage
	fsm   latch.Reg // one-hot pipe state
	perf  latch.Array
	mode  latch.Reg
	mode2 latch.Array
	gptr  latch.Array
}

type lsuState struct {
	stqAddr latch.Array
	stqData latch.Array
	stqCtl  latch.Array // bit0 valid, bit1 valid-duplicate, bit2 word-size
	stqParA latch.Array
	stqParD latch.Array
	stqHead latch.Reg
	stqTail latch.Reg

	eratVPN latch.Array // 28-bit virtual page numbers
	eratPPN latch.Array // 28-bit physical page numbers
	eratCtl latch.Array // bit0 valid
	eratPar latch.Array // entry parity over vpn^ppn
	eratPtr latch.Reg   // replacement pointer

	lmqAddr latch.Array // load miss queue
	lmqCtl  latch.Array

	dcFSM  latch.Reg
	dcCnt  latch.Reg
	dcAddr latch.Reg

	ea      latch.Reg // effective address latch
	eaPar   latch.Reg
	ldRes   latch.Reg
	ldPar   latch.Reg
	pfQueue latch.Array // prefetch stream registers (performance only)

	perf  latch.Array
	mode  latch.Reg
	mode2 latch.Array
	gptr  latch.Array

	dcTag  *array.Protected
	dcData *array.Protected
}

type rutState struct {
	fsm      latch.Reg // one-hot recovery sequencer
	retryCnt latch.Reg
	waitCnt  latch.Reg
	errSrc   latch.Reg   // checker id of the first error of this incident
	errCycle latch.Reg   // cycle of the first error
	progress latch.Reg   // completions since last recovery (saturating)
	capPar   latch.Reg   // parity over the capture/sequencing registers
	hist     latch.Array // error-capture history buffer (write-only trace)
	mode     latch.Reg
	gptr     latch.Array

	ckptGPR *array.Protected
	ckptFPR *array.Protected
	ckptSPR *array.Protected // 0 CR, 1 LR, 2 CTR, 3 next PC
}

type prvState struct {
	fir    latch.Array // fault isolation registers
	firPar latch.Array

	checkstop latch.Reg
	coreHung  latch.Reg
	hangCnt   latch.Reg
	hangArm   latch.Reg // set after a hang recovery; cleared by completion

	modeClock    latch.Reg // per-unit clock enables (bit per unit)
	modeChecker  latch.Reg // checker enable mask
	modeRecovery latch.Reg // bit0: RUT retry enable
	modeHangLim  latch.Reg // watchdog threshold (0 disables)

	ringPar latch.Array // stored parity for each unit's ring segments
	scanCtl latch.Reg
	scanPar latch.Reg
	abist   latch.Array
	trace   latch.Array // debug trace array of completion PCs (write-only)
	trcPtr  latch.Reg
	thermal latch.Array
	perf    latch.Array
	mode2   latch.Array // spare pervasive mode bits
	gptr    latch.Array

	scrubPtr latch.Reg // background array scrub cursor

	// firstErr caches the first posted checker of the current incident for
	// cause-effect tracing (also latched into rut.errSrc).
	firstErrSeen bool
}

func (p *prvState) resetCounters() { p.firstErrSeen = false }

// buildInventory registers the full latch population. The per-unit bit
// budget follows the paper's proportions scaled ~1:4 (see DESIGN.md): LSU
// largest, RUT smallest functional unit, substantial pervasive population.
func (c *Core) buildInventory() {
	db := c.db

	// ---- IFU ----
	u := UnitIFU
	c.ifu.pc = db.Register(u, latch.Func, "ifu.pc", 64)
	c.ifu.pcPar = db.Register(u, latch.Func, "ifu.pc.par", 1)
	c.ifu.fbIR = db.RegisterArray(u, latch.Func, "ifu.fb.ir", fbEntries, 32)
	c.ifu.fbPC = db.RegisterArray(u, latch.Func, "ifu.fb.pc", fbEntries, 48)
	c.ifu.fbV = db.RegisterArray(u, latch.Func, "ifu.fb.v", fbEntries, 1)
	c.ifu.fbPar = db.RegisterArray(u, latch.Func, "ifu.fb.par", fbEntries, 1)
	c.ifu.fbHead = db.Register(u, latch.Func, "ifu.fb.head", 3)
	c.ifu.fbTail = db.Register(u, latch.Func, "ifu.fb.tail", 3)
	c.ifu.fbCnt = db.Register(u, latch.Func, "ifu.fb.cnt", 4)
	c.ifu.bht = db.RegisterArray(u, latch.Func, "ifu.bht", bhtEntries, 2)
	c.ifu.icFSM = db.Register(u, latch.Func, "ifu.ic.fsm", 4)
	c.ifu.icCnt = db.Register(u, latch.Func, "ifu.ic.cnt", 8)
	c.ifu.icAddr = db.Register(u, latch.Func, "ifu.ic.addr", 64)
	c.ifu.thrCnt = db.Register(u, latch.Func, "ifu.thr.cnt", 8)
	c.ifu.perf = db.RegisterArray(u, latch.Func, "ifu.perf", 4, 64)
	c.ifu.mode = db.Register(u, latch.Mode, "ifu.mode", 64)
	c.ifu.mode2 = db.RegisterArray(u, latch.Mode, "ifu.mode.spare", 3, 64)
	c.ifu.gptr = db.RegisterArray(u, latch.GPTR, "ifu.gptr", 2, 64)
	c.ifu.icTag = array.New("ifu.ic.tag", icLines)
	c.ifu.icData = array.New("ifu.ic.data", icLines*lineWords)

	// ---- IDU ----
	u = UnitIDU
	c.idu.d1IR = db.Register(u, latch.Func, "idu.d1.ir", 32)
	c.idu.d1PC = db.Register(u, latch.Func, "idu.d1.pc", 48)
	c.idu.d1V = db.Register(u, latch.Func, "idu.d1.v", 1)
	c.idu.d1Par = db.Register(u, latch.Func, "idu.d1.par", 1)
	c.idu.d2IR = db.Register(u, latch.Func, "idu.d2.ir", 32)
	c.idu.d2PC = db.Register(u, latch.Func, "idu.d2.pc", 48)
	c.idu.d2V = db.Register(u, latch.Func, "idu.d2.v", 1)
	c.idu.d2Par = db.Register(u, latch.Func, "idu.d2.par", 1)
	c.idu.d2Pred = db.Register(u, latch.Func, "idu.d2.pred", 1)
	c.idu.d2PNPC = db.Register(u, latch.Func, "idu.d2.pnpc", 48)
	c.idu.cr = db.Register(u, latch.RegFile, "idu.cr", 4)
	c.idu.crPar = db.Register(u, latch.RegFile, "idu.cr.par", 1)
	c.idu.lr = db.Register(u, latch.RegFile, "idu.lr", 64)
	c.idu.lrPar = db.Register(u, latch.RegFile, "idu.lr.par", 1)
	c.idu.ctr = db.Register(u, latch.RegFile, "idu.ctr", 64)
	c.idu.ctrPar = db.Register(u, latch.RegFile, "idu.ctr.par", 1)
	c.idu.dispFSM = db.Register(u, latch.Func, "idu.disp.fsm", 8)
	c.idu.dacTbl = db.RegisterArray(u, latch.Mode, "idu.dac.tbl", 64, 16)
	c.idu.ucSeq = db.Register(u, latch.Func, "idu.uc.seq", 16)
	c.idu.perf = db.RegisterArray(u, latch.Func, "idu.perf", 2, 64)
	c.idu.mode = db.Register(u, latch.Mode, "idu.mode", 64)
	c.idu.mode2 = db.RegisterArray(u, latch.Mode, "idu.mode.spare", 3, 64)
	c.idu.gptr = db.RegisterArray(u, latch.GPTR, "idu.gptr", 2, 64)

	// ---- FXU ----
	u = UnitFXU
	c.fxu.gpr = db.RegisterArray(u, latch.RegFile, "fxu.gpr", 32, 64)
	c.fxu.gprPar = db.RegisterArray(u, latch.RegFile, "fxu.gpr.par", 32, 1)
	c.fxu.exIR = db.Register(u, latch.Func, "fxu.ex.ir", 32)
	c.fxu.exIRPar = db.Register(u, latch.Func, "fxu.ex.ir.par", 1)
	c.fxu.exPC = db.Register(u, latch.Func, "fxu.ex.pc", 48)
	c.fxu.exV = db.Register(u, latch.Func, "fxu.ex.v", 1)
	c.fxu.exBusy = db.Register(u, latch.Func, "fxu.ex.busy", 8)
	c.fxu.opA = db.Register(u, latch.Func, "fxu.op.a", 64)
	c.fxu.opAPar = db.Register(u, latch.Func, "fxu.op.a.par", 1)
	c.fxu.opB = db.Register(u, latch.Func, "fxu.op.b", 64)
	c.fxu.opBPar = db.Register(u, latch.Func, "fxu.op.b.par", 1)
	c.fxu.res = db.Register(u, latch.Func, "fxu.res", 64)
	c.fxu.resPar = db.Register(u, latch.Func, "fxu.res.par", 1)
	c.fxu.resRsd = db.Register(u, latch.Func, "fxu.res.rsd", 2)
	c.fxu.divFSM = db.Register(u, latch.Func, "fxu.div.fsm", 8)
	c.fxu.divCnt = db.Register(u, latch.Func, "fxu.div.cnt", 8)
	c.fxu.exPred = db.Register(u, latch.Func, "fxu.ex.pred", 1)
	c.fxu.exPNPC = db.Register(u, latch.Func, "fxu.ex.pnpc", 48)
	c.fxu.wbIR = db.Register(u, latch.Func, "fxu.wb.ir", 32)
	c.fxu.wbIRPar = db.Register(u, latch.Func, "fxu.wb.ir.par", 1)
	c.fxu.wbV = db.Register(u, latch.Func, "fxu.wb.v", 1)
	c.fxu.wbRes = db.Register(u, latch.Func, "fxu.wb.res", 64)
	c.fxu.wbPar = db.Register(u, latch.Func, "fxu.wb.par", 1)
	c.fxu.wbFRes = db.Register(u, latch.Func, "fxu.wb.fres", 64)
	c.fxu.wbFPar = db.Register(u, latch.Func, "fxu.wb.fpar", 1)
	c.fxu.wbNPC = db.Register(u, latch.Func, "fxu.wb.npc", 48)
	c.fxu.perf = db.RegisterArray(u, latch.Func, "fxu.perf", 2, 64)
	c.fxu.mode = db.Register(u, latch.Mode, "fxu.mode", 64)
	c.fxu.mode2 = db.RegisterArray(u, latch.Mode, "fxu.mode.spare", 2, 64)
	c.fxu.gptr = db.RegisterArray(u, latch.GPTR, "fxu.gptr", 2, 64)

	// ---- FPU ----
	u = UnitFPU
	c.fpu.fpr = db.RegisterArray(u, latch.RegFile, "fpu.fpr", 32, 64)
	c.fpu.fprPar = db.RegisterArray(u, latch.RegFile, "fpu.fpr.par", 32, 1)
	c.fpu.p1a = db.Register(u, latch.Func, "fpu.p1a", 64)
	c.fpu.p1b = db.Register(u, latch.Func, "fpu.p1b", 64)
	c.fpu.p2 = db.Register(u, latch.Func, "fpu.p2", 64)
	c.fpu.p3 = db.Register(u, latch.Func, "fpu.p3", 64)
	c.fpu.p4 = db.Register(u, latch.Func, "fpu.p4", 64)
	c.fpu.pPar = db.Register(u, latch.Func, "fpu.p.par", 4)
	c.fpu.fsm = db.Register(u, latch.Func, "fpu.fsm", 8)
	c.fpu.perf = db.RegisterArray(u, latch.Func, "fpu.perf", 2, 64)
	c.fpu.mode = db.Register(u, latch.Mode, "fpu.mode", 64)
	c.fpu.mode2 = db.RegisterArray(u, latch.Mode, "fpu.mode.spare", 1, 64)
	c.fpu.gptr = db.RegisterArray(u, latch.GPTR, "fpu.gptr", 1, 64)

	// ---- LSU ----
	u = UnitLSU
	c.lsu.stqAddr = db.RegisterArray(u, latch.Func, "lsu.stq.addr", stqEntries, 64)
	c.lsu.stqData = db.RegisterArray(u, latch.Func, "lsu.stq.data", stqEntries, 64)
	c.lsu.stqCtl = db.RegisterArray(u, latch.Func, "lsu.stq.ctl", stqEntries, 8)
	c.lsu.stqParA = db.RegisterArray(u, latch.Func, "lsu.stq.par.a", stqEntries, 1)
	c.lsu.stqParD = db.RegisterArray(u, latch.Func, "lsu.stq.par.d", stqEntries, 1)
	c.lsu.stqHead = db.Register(u, latch.Func, "lsu.stq.head", 5)
	c.lsu.stqTail = db.Register(u, latch.Func, "lsu.stq.tail", 5)
	c.lsu.eratVPN = db.RegisterArray(u, latch.Func, "lsu.erat.vpn", eratSize, 28)
	c.lsu.eratPPN = db.RegisterArray(u, latch.Func, "lsu.erat.ppn", eratSize, 28)
	c.lsu.eratCtl = db.RegisterArray(u, latch.Func, "lsu.erat.ctl", eratSize, 4)
	c.lsu.eratPar = db.RegisterArray(u, latch.Func, "lsu.erat.par", eratSize, 1)
	c.lsu.eratPtr = db.Register(u, latch.Func, "lsu.erat.ptr", 6)
	c.lsu.lmqAddr = db.RegisterArray(u, latch.Func, "lsu.lmq.addr", lmqEntries, 64)
	c.lsu.lmqCtl = db.RegisterArray(u, latch.Func, "lsu.lmq.ctl", lmqEntries, 8)
	c.lsu.dcFSM = db.Register(u, latch.Func, "lsu.dc.fsm", 4)
	c.lsu.dcCnt = db.Register(u, latch.Func, "lsu.dc.cnt", 8)
	c.lsu.dcAddr = db.Register(u, latch.Func, "lsu.dc.addr", 64)
	c.lsu.ea = db.Register(u, latch.Func, "lsu.ea", 64)
	c.lsu.eaPar = db.Register(u, latch.Func, "lsu.ea.par", 1)
	c.lsu.ldRes = db.Register(u, latch.Func, "lsu.ld.res", 64)
	c.lsu.ldPar = db.Register(u, latch.Func, "lsu.ld.par", 1)
	c.lsu.pfQueue = db.RegisterArray(u, latch.Func, "lsu.pf", 4, 64)
	c.lsu.perf = db.RegisterArray(u, latch.Func, "lsu.perf", 3, 64)
	c.lsu.mode = db.Register(u, latch.Mode, "lsu.mode", 64)
	c.lsu.mode2 = db.RegisterArray(u, latch.Mode, "lsu.mode.spare", 3, 64)
	c.lsu.gptr = db.RegisterArray(u, latch.GPTR, "lsu.gptr", 2, 64)
	c.lsu.dcTag = array.New("lsu.dc.tag", dcLines)
	c.lsu.dcData = array.New("lsu.dc.data", dcLines*lineWords)

	// ---- RUT ----
	u = UnitRUT
	c.rut.fsm = db.Register(u, latch.Func, "rut.fsm", 8)
	c.rut.retryCnt = db.Register(u, latch.Func, "rut.retry.cnt", 4)
	c.rut.waitCnt = db.Register(u, latch.Func, "rut.wait.cnt", 8)
	c.rut.errSrc = db.Register(u, latch.Func, "rut.err.src", 8)
	c.rut.errCycle = db.Register(u, latch.Func, "rut.err.cycle", 64)
	c.rut.progress = db.Register(u, latch.Func, "rut.progress", 8)
	c.rut.capPar = db.Register(u, latch.Func, "rut.cap.par", 1)
	c.rut.hist = db.RegisterArray(u, latch.Func, "rut.hist", 16, 64)
	c.rut.mode = db.Register(u, latch.Mode, "rut.mode", 64)
	c.rut.gptr = db.RegisterArray(u, latch.GPTR, "rut.gptr", 1, 32)
	c.rut.ckptGPR = array.New("rut.ckpt.gpr", 32)
	c.rut.ckptFPR = array.New("rut.ckpt.fpr", 32)
	c.rut.ckptSPR = array.New("rut.ckpt.spr", 4)

	// ---- PRV (Core pervasive) ----
	u = UnitPRV
	c.prv.fir = db.RegisterArray(u, latch.Func, "prv.fir", 1, 64)
	c.prv.firPar = db.RegisterArray(u, latch.Func, "prv.fir.par", 1, 1)
	c.prv.checkstop = db.Register(u, latch.Func, "prv.checkstop", 1)
	c.prv.coreHung = db.Register(u, latch.Func, "prv.core.hung", 1)
	c.prv.hangCnt = db.Register(u, latch.Func, "prv.hang.cnt", 16)
	c.prv.hangArm = db.Register(u, latch.Func, "prv.hang.arm", 1)
	c.prv.modeClock = db.Register(u, latch.Mode, "prv.mode.clock", 8)
	c.prv.modeChecker = db.Register(u, latch.Mode, "prv.mode.checker", 64)
	c.prv.modeRecovery = db.Register(u, latch.Mode, "prv.mode.recovery", 8)
	c.prv.modeHangLim = db.Register(u, latch.Mode, "prv.mode.hanglim", 16)
	c.prv.ringPar = db.RegisterArray(u, latch.Func, "prv.ring.par", 16, 1)
	c.prv.scanCtl = db.Register(u, latch.Func, "prv.scan.ctl", 64)
	c.prv.scanPar = db.Register(u, latch.Func, "prv.scan.par", 1)
	c.prv.abist = db.RegisterArray(u, latch.Func, "prv.abist", 2, 64)
	c.prv.trace = db.RegisterArray(u, latch.Func, "prv.trace", traceDepth, 64)
	c.prv.trcPtr = db.Register(u, latch.Func, "prv.trace.ptr", 6)
	c.prv.thermal = db.RegisterArray(u, latch.Func, "prv.thermal", 4, 64)
	c.prv.perf = db.RegisterArray(u, latch.Func, "prv.perf", 8, 64)
	c.prv.mode2 = db.RegisterArray(u, latch.Mode, "prv.mode.spare", 6, 64)
	c.prv.gptr = db.RegisterArray(u, latch.GPTR, "prv.gptr", 8, 64)
	c.prv.scrubPtr = db.Register(u, latch.Func, "prv.scrub.ptr", 16)
}

// buildColdInventory registers the structures that are architecturally
// present but idle in this configuration: the second SMT thread's state
// (the AVP runs single-threaded, as the paper's beam-calibration runs
// effectively did), the second fixed-point pipe, deep front-end buffers and
// out-of-order-assist structures unused by the in-order flow. These latches
// hold no live data, so flips in them vanish — they are the bulk of the
// architecture-level derating the paper measures.
func (c *Core) buildColdInventory() {
	db := c.db

	u := UnitIFU
	db.RegisterArray(u, latch.Func, "ifu.ibuf.ir", 32, 34) // deep instr buffer
	db.RegisterArray(u, latch.Func, "ifu.ibuf.pc", 32, 48)
	db.RegisterArray(u, latch.Func, "ifu.t1.fb.ir", fbEntries, 34) // thread-1 fetch buffer
	db.RegisterArray(u, latch.Func, "ifu.t1.fb.pc", fbEntries, 48)
	db.Register(u, latch.Func, "ifu.t1.pc", 64)
	db.RegisterArray(u, latch.Func, "ifu.bht2", 2048, 2) // second BHT bank
	db.RegisterArray(u, latch.Func, "ifu.btac", 32, 60)  // branch target cache

	u = UnitIDU
	db.RegisterArray(u, latch.Func, "idu.iq.ir", 16, 34) // issue queue
	db.RegisterArray(u, latch.Func, "idu.iq.pc", 16, 48)
	db.RegisterArray(u, latch.Func, "idu.ucode.seq", 32, 64) // microcode sequencer state
	db.RegisterArray(u, latch.Func, "idu.gct", 16, 64)       // group completion table
	db.RegisterArray(u, latch.Func, "idu.crk", 16, 64)       // instruction-crack buffers
	db.Register(u, latch.Func, "idu.t1.d1", 64)
	db.Register(u, latch.Func, "idu.t1.d1x", 18)
	db.Register(u, latch.Func, "idu.t1.d2", 64)
	db.Register(u, latch.Func, "idu.t1.d2x", 18)
	db.RegisterArray(u, latch.RegFile, "idu.t1.spr", 3, 64) // thread-1 CR/LR/CTR

	u = UnitFXU
	db.RegisterArray(u, latch.RegFile, "fxu.t1.gpr", 32, 64) // thread-1 GPRs
	db.RegisterArray(u, latch.RegFile, "fxu.t1.gpr.par", 32, 1)
	db.RegisterArray(u, latch.Func, "fxu.fx1", 16, 64)  // second FX pipe latches
	db.RegisterArray(u, latch.Func, "fxu.hist", 32, 64) // result history buffer
	db.RegisterArray(u, latch.Func, "fxu.rsv", 48, 64)  // issue staging / reservation

	u = UnitFPU
	db.RegisterArray(u, latch.RegFile, "fpu.t1.fpr", 32, 64) // thread-1 FPRs
	db.RegisterArray(u, latch.RegFile, "fpu.t1.fpr.par", 32, 1)
	// VMX vector register file (two threads), idle: the AVP issues no
	// vector instructions.
	db.RegisterArray(u, latch.RegFile, "fpu.vmx.vr.lo", 32, 64)
	db.RegisterArray(u, latch.RegFile, "fpu.vmx.vr.hi", 32, 64)
	db.RegisterArray(u, latch.Func, "fpu.pipe2", 10, 64) // second FP pipe latches

	u = UnitLSU
	db.RegisterArray(u, latch.Func, "lsu.lrq.addr", 24, 64) // load reorder queue
	db.RegisterArray(u, latch.Func, "lsu.lrq.data", 24, 64)
	db.RegisterArray(u, latch.Func, "lsu.lrq.ctl", 24, 10)
	db.RegisterArray(u, latch.Func, "lsu.t1.stq.addr", stqEntries, 64)
	db.RegisterArray(u, latch.Func, "lsu.t1.stq.data", stqEntries, 64)
	db.RegisterArray(u, latch.Func, "lsu.t1.stq.ctl", stqEntries, 10)
	db.RegisterArray(u, latch.Func, "lsu.slb", 64, 40)   // segment lookasides
	db.RegisterArray(u, latch.Func, "lsu.pftab", 32, 64) // prefetch pattern tables
	db.RegisterArray(u, latch.Func, "lsu.dcdir", 128, 8) // directory state shadows

	u = UnitRUT
	db.RegisterArray(u, latch.Func, "rut.esc", 8, 64) // error-escalation staging

	u = UnitPRV
	db.RegisterArray(u, latch.Func, "prv.dbgbus", 16, 64) // debug bus staging
	db.RegisterArray(u, latch.Func, "prv.pmctrl", 8, 64)  // power-management state
}

// unitRings returns each unit's (mode ring segment 0, gptr segment 0)
// handles in Units order, for the pervasive ring-integrity checker. The
// NEST's rings are appended when the periphery is enabled.
func (c *Core) unitRings() [][2]latch.Reg {
	rings := [][2]latch.Reg{
		{c.ifu.mode, c.ifu.gptr.Entry(0)},
		{c.idu.mode, c.idu.gptr.Entry(0)},
		{c.fxu.mode, c.fxu.gptr.Entry(0)},
		{c.fpu.mode, c.fpu.gptr.Entry(0)},
		{c.lsu.mode, c.lsu.gptr.Entry(0)},
		{c.rut.mode, c.rut.gptr.Entry(0)},
		{c.prv.mode2.Entry(0), c.prv.gptr.Entry(0)},
	}
	if c.cfg.EnableNest {
		rings = append(rings, [2]latch.Reg{c.nest.mode, c.nest.gptr.Entry(0)})
	}
	return rings
}

// initScanRings loads the scan-only latches with their functional-mode
// values, as the scan chains would at power-on.
func (c *Core) initScanRings() {
	for _, r := range c.unitRings() {
		m := r[0]
		m.Set(0)
		m.SetField(modeIntegrityLo, modeIntegrityHi-modeIntegrityLo, modeIntegrityInit)
		m.SetField(modeCriticalLo, modeCriticalHi-modeCriticalLo, modeCriticalInit)
		r[1].Set(0) // GPTR rings idle
	}
	// Stored ring parity for the integrity segments.
	for i, r := range c.unitRings() {
		c.prv.ringPar.Entry(2 * i).Set(parity64(r[0].Get() & 0xffff))
		c.prv.ringPar.Entry(2*i + 1).Set(parity64(r[1].Get() >> gptrIntegrityLo & 0xff))
	}
	c.prv.modeClock.Set(0xff)
	c.prv.modeChecker.Set(^uint64(0))
	c.prv.modeRecovery.Set(1)
	c.prv.modeHangLim.Set(uint64(c.cfg.HangLimit))
	c.prv.scanCtl.Set(0x1122334455667788)
	c.prv.scanPar.Set(parity64(c.prv.scanCtl.Get()))
	// FIR parity latches for all-zero FIRs.
	for i := 0; i < c.prv.fir.Len(); i++ {
		c.prv.firPar.Entry(i).Set(0)
	}
}

// resetArrays restores all protected arrays to a clean zero state.
func (c *Core) resetArrays() {
	for _, p := range c.Arrays() {
		for e := 0; e < p.Entries(); e++ {
			p.Write(e, 0)
		}
		p.ResetCounters()
	}
}

// Arrays returns every protected SRAM array in the core (the beam model's
// array strike population); the L2 arrays are included when the periphery
// is enabled.
func (c *Core) Arrays() []*array.Protected {
	out := []*array.Protected{
		c.ifu.icTag, c.ifu.icData,
		c.lsu.dcTag, c.lsu.dcData,
		c.rut.ckptGPR, c.rut.ckptFPR, c.rut.ckptSPR,
	}
	if c.cfg.EnableNest {
		out = append(out, c.nest.l2Tag, c.nest.l2Data)
	}
	return out
}
