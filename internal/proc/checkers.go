package proc

import "fmt"

// Action is what a checker does when it fires: request a RUT retry or stop
// the machine.
type Action int

// Checker actions.
const (
	ActionRecover Action = iota + 1
	ActionCheckstop
)

func (a Action) String() string {
	if a == ActionRecover {
		return "recover"
	}
	return "checkstop"
}

// Checker identifiers. Each checker owns one FIR bit and one enable bit in
// the pervasive checker mask (the paper's Table 3 "masking of checkers").
const (
	ChkIFUPCPar = iota
	ChkIFUFBPar
	ChkIFUICUE
	ChkIDUD1Par
	ChkIDUD2Par
	ChkIDUIllegal
	ChkIDUDispFSM
	ChkIDUSPRPar
	ChkFXUOpPar
	ChkFXUResidue
	ChkFXUResPar
	ChkFXUGPRPar
	ChkFXUWBPar
	ChkFPUFPRPar
	ChkFPUPipePar
	ChkFPUFSM
	ChkLSUSTQPar
	ChkLSUSTQVDup
	ChkLSUERATPar
	ChkLSUDCUE
	ChkLSUAgenPar
	ChkLSULdPar
	ChkRUTFSM
	ChkRUTCapPar
	ChkRUTCkptUE
	ChkPRVFIRPar
	ChkPRVScanPar
	ChkPRVWatchdog
	ChkRingIFU
	ChkRingIDU
	ChkRingFXU
	ChkRingFPU
	ChkRingLSU
	ChkRingRUT
	ChkRingPRV
	ChkNESTRQPar
	ChkNESTL2UE
	ChkRingNEST

	numCheckers
)

// Checker describes one hardware checker.
type Checker struct {
	ID     int
	Name   string
	Unit   string
	Action Action
	// FIR is the global FIR bit index (register ID/8, bit ID%8 within the
	// register's low byte ... packed as bit = ID within fir[ID/64]).
	FIR int
	// Fired counts the times this checker detected an error (whether or
	// not it was enabled; disabled checkers do not post errors but the
	// count aids cause-effect analysis in tests).
	Fired uint64
}

func (c *Core) buildCheckers() {
	add := func(id int, name, unit string, act Action) {
		c.checkers = append(c.checkers, &Checker{
			ID: id, Name: name, Unit: unit, Action: act, FIR: id,
		})
	}
	add(ChkIFUPCPar, "ifu.pc.par", UnitIFU, ActionRecover)
	add(ChkIFUFBPar, "ifu.fb.par", UnitIFU, ActionRecover)
	add(ChkIFUICUE, "ifu.ic.ue", UnitIFU, ActionRecover)
	add(ChkIDUD1Par, "idu.d1.par", UnitIDU, ActionRecover)
	add(ChkIDUD2Par, "idu.d2.par", UnitIDU, ActionRecover)
	add(ChkIDUIllegal, "idu.illegal", UnitIDU, ActionRecover)
	add(ChkIDUDispFSM, "idu.disp.fsm", UnitIDU, ActionRecover)
	add(ChkIDUSPRPar, "idu.spr.par", UnitIDU, ActionRecover)
	add(ChkFXUOpPar, "fxu.op.par", UnitFXU, ActionRecover)
	add(ChkFXUResidue, "fxu.residue", UnitFXU, ActionRecover)
	add(ChkFXUResPar, "fxu.res.par", UnitFXU, ActionRecover)
	add(ChkFXUGPRPar, "fxu.gpr.par", UnitFXU, ActionRecover)
	add(ChkFXUWBPar, "fxu.wb.par", UnitFXU, ActionRecover)
	add(ChkFPUFPRPar, "fpu.fpr.par", UnitFPU, ActionRecover)
	add(ChkFPUPipePar, "fpu.pipe.par", UnitFPU, ActionRecover)
	add(ChkFPUFSM, "fpu.fsm", UnitFPU, ActionRecover)
	add(ChkLSUSTQPar, "lsu.stq.par", UnitLSU, ActionRecover)
	add(ChkLSUSTQVDup, "lsu.stq.vdup", UnitLSU, ActionRecover)
	add(ChkLSUERATPar, "lsu.erat.par", UnitLSU, ActionRecover)
	add(ChkLSUDCUE, "lsu.dc.ue", UnitLSU, ActionRecover)
	add(ChkLSUAgenPar, "lsu.agen.par", UnitLSU, ActionRecover)
	add(ChkLSULdPar, "lsu.ld.par", UnitLSU, ActionRecover)
	add(ChkRUTFSM, "rut.fsm", UnitRUT, ActionCheckstop)
	add(ChkRUTCapPar, "rut.cap.par", UnitRUT, ActionCheckstop)
	add(ChkRUTCkptUE, "rut.ckpt.ue", UnitRUT, ActionCheckstop)
	add(ChkPRVFIRPar, "prv.fir.par", UnitPRV, ActionCheckstop)
	add(ChkPRVScanPar, "prv.scan.par", UnitPRV, ActionCheckstop)
	add(ChkPRVWatchdog, "prv.watchdog", UnitPRV, ActionRecover)
	add(ChkRingIFU, "ring.ifu", UnitIFU, ActionCheckstop)
	add(ChkRingIDU, "ring.idu", UnitIDU, ActionCheckstop)
	add(ChkRingFXU, "ring.fxu", UnitFXU, ActionCheckstop)
	add(ChkRingFPU, "ring.fpu", UnitFPU, ActionCheckstop)
	add(ChkRingLSU, "ring.lsu", UnitLSU, ActionCheckstop)
	add(ChkRingRUT, "ring.rut", UnitRUT, ActionCheckstop)
	add(ChkRingPRV, "ring.prv", UnitPRV, ActionCheckstop)
	add(ChkNESTRQPar, "nest.rq.par", UnitNEST, ActionRecover)
	add(ChkNESTL2UE, "nest.l2.ue", UnitNEST, ActionRecover)
	add(ChkRingNEST, "ring.nest", UnitNEST, ActionCheckstop)

	if len(c.checkers) != numCheckers {
		panic(fmt.Sprintf("proc: checker table has %d entries, want %d",
			len(c.checkers), numCheckers))
	}
}

// Checkers returns the checker table (index = checker ID).
func (c *Core) Checkers() []*Checker { return c.checkers }

// checkerEnabled reports whether the pervasive mask enables checker id.
// The mask has 64 bits; checkers beyond 63 would alias, so numCheckers must
// stay ≤ 64.
func (c *Core) checkerEnabled(id int) bool {
	return c.prv.modeChecker.GetBit(id)
}

// fail is called at a checker's evaluation point when its condition is
// violated. Disabled checkers swallow the error (Table 3 "Raw" mode). It
// returns true when the error was posted, so call sites can squash the
// faulty side effect — detection gates data flow the way hardware checkers
// do; with the checker masked, the corrupt value flows on.
func (c *Core) fail(id int) bool {
	ch := c.checkers[id]
	ch.Fired++
	if !c.checkerEnabled(id) {
		return false
	}
	c.postError(ch)
	return true
}

// SetCheckersEnabled writes the pervasive checker mask: true restores the
// power-on mask (all checkers on), false masks every checker, the paper's
// "Raw" configuration for Table 3.
func (c *Core) SetCheckersEnabled(on bool) {
	if on {
		c.prv.modeChecker.Set(^uint64(0))
	} else {
		c.prv.modeChecker.Set(0)
	}
}

// SetRecoveryEnabled controls the RUT retry enable mode bit; with recovery
// off, recoverable errors escalate to checkstop (an ablation in DESIGN.md).
func (c *Core) SetRecoveryEnabled(on bool) {
	if on {
		c.prv.modeRecovery.Set(c.prv.modeRecovery.Get() | 1)
	} else {
		c.prv.modeRecovery.Set(c.prv.modeRecovery.Get() &^ 1)
	}
}

// FIRBit reports whether the FIR bit for checker id is set.
func (c *Core) FIRBit(id int) bool {
	return c.prv.fir.Entry(id / 64).GetBit(id % 64)
}

// AnyFIR reports whether any FIR bit is set.
func (c *Core) AnyFIR() bool {
	for i := 0; i < c.prv.fir.Len(); i++ {
		if c.prv.fir.Entry(i).Get() != 0 {
			return true
		}
	}
	return false
}

// FirstError returns the checker ID and cycle of the first error of the
// current incident, as latched by the RUT error-capture logic, for
// cause-and-effect tracing. ok is false if no error has been captured.
func (c *Core) FirstError() (id int, cycle uint64, ok bool) {
	if !c.prv.firstErrSeen {
		return 0, 0, false
	}
	return int(c.rut.errSrc.Get()), c.rut.errCycle.Get(), true
}

// CheckerByID returns the checker with the given ID.
func (c *Core) CheckerByID(id int) *Checker { return c.checkers[id] }
