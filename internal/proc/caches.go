package proc

import "sfi/internal/bits"

// Cache geometry helpers. Both caches are direct-mapped with 32-byte lines
// (four 64-bit dwords); tags are stored as tag<<1|valid in protected arrays.

func lineIndex(addr uint64, lines int) int { return int(addr>>5) & (lines - 1) }
func lineTag(addr uint64, lines int) uint64 {
	shift := 5
	for l := lines; l > 1; l >>= 1 {
		shift++
	}
	return addr >> uint(shift)
}
func dwordInLine(addr uint64) int { return int(addr>>3) & (lineWords - 1) }

// icLookup probes the instruction cache for the word at addr. ok=false on a
// miss. ECC-uncorrectable tag or data errors invalidate the line, post the
// IC UE checker and miss.
func (c *Core) icLookup(addr uint64) (word uint32, ok bool) {
	idx := lineIndex(addr, icLines)
	tw, res := c.ifu.icTag.Read(idx)
	if res == bits.ECCUncorrectable {
		c.ifu.icTag.Write(idx, 0)
		c.fail(ChkIFUICUE)
		return 0, false
	}
	if tw&1 == 0 || tw>>1 != lineTag(addr, icLines) {
		return 0, false
	}
	dw, res := c.ifu.icData.Read(idx*lineWords + dwordInLine(addr))
	if res == bits.ECCUncorrectable {
		c.ifu.icTag.Write(idx, 0)
		c.fail(ChkIFUICUE)
		return 0, false
	}
	if addr&4 != 0 {
		return uint32(dw >> 32), true
	}
	return uint32(dw), true
}

// icRefill installs the line containing addr from memory.
func (c *Core) icRefill(addr uint64) {
	idx := lineIndex(addr, icLines)
	base := addr &^ 31
	for i := 0; i < lineWords; i++ {
		c.ifu.icData.Write(idx*lineWords+i, c.mem.Read64(base+uint64(8*i)))
	}
	c.ifu.icTag.Write(idx, lineTag(addr, icLines)<<1|1)
}

// dcLookup probes the data cache for the dword at addr.
func (c *Core) dcLookup(addr uint64) (dw uint64, ok bool) {
	idx := lineIndex(addr, dcLines)
	tw, res := c.lsu.dcTag.Read(idx)
	if res == bits.ECCUncorrectable {
		c.lsu.dcTag.Write(idx, 0)
		c.fail(ChkLSUDCUE)
		return 0, false
	}
	if tw&1 == 0 || tw>>1 != lineTag(addr, dcLines) {
		return 0, false
	}
	dw, res = c.lsu.dcData.Read(idx*lineWords + dwordInLine(addr))
	if res == bits.ECCUncorrectable {
		c.lsu.dcTag.Write(idx, 0)
		c.fail(ChkLSUDCUE)
		return 0, false
	}
	return dw, true
}

// dcRefill installs the line containing addr from memory.
func (c *Core) dcRefill(addr uint64) {
	idx := lineIndex(addr, dcLines)
	base := addr &^ 31
	for i := 0; i < lineWords; i++ {
		c.lsu.dcData.Write(idx*lineWords+i, c.mem.Read64(base+uint64(8*i)))
	}
	c.lsu.dcTag.Write(idx, lineTag(addr, dcLines)<<1|1)
}

// dcUpdate write-through-updates the cached copy of the dword at addr if the
// line is present (stores never allocate).
func (c *Core) dcUpdate(addr, dw uint64) {
	idx := lineIndex(addr, dcLines)
	tw, res := c.lsu.dcTag.Read(idx)
	if res == bits.ECCUncorrectable || tw&1 == 0 || tw>>1 != lineTag(addr, dcLines) {
		return
	}
	c.lsu.dcData.Write(idx*lineWords+dwordInLine(addr), dw)
}

// eratParity computes an ERAT entry's stored parity under the current LSU
// polarity configuration.
func (c *Core) eratParity(vpn, ppn uint64) uint64 {
	return parity64(vpn) ^ parity64(ppn) ^ c.polarity(c.lsu.mode, 0)
}

// eratLookup translates effective address ea. ok=false means no usable
// entry (a reload is required). A parity-bad matching entry posts the ERAT
// checker; when the checker is masked the (possibly corrupt) translation is
// used anyway.
func (c *Core) eratLookup(ea uint64) (pa uint64, ok bool) {
	vpn := (ea >> 12) & ((1 << 28) - 1)
	for i := 0; i < eratSize; i++ {
		if c.lsu.eratCtl.Entry(i).Get()&1 == 0 {
			continue
		}
		if c.lsu.eratVPN.Entry(i).Get() != vpn {
			continue
		}
		ppn := c.lsu.eratPPN.Entry(i).Get()
		if c.eratParity(vpn, ppn) != c.lsu.eratPar.Entry(i).Get() {
			if c.fail(ChkLSUERATPar) {
				return 0, false
			}
		}
		return ppn<<12 | ea&0xfff, true
	}
	return 0, false
}

// eratReloadDone installs the translation for ea (real mode: identity) at
// the replacement pointer.
func (c *Core) eratReloadDone(ea uint64) {
	vpn := (ea >> 12) & ((1 << 28) - 1)
	i := int(c.lsu.eratPtr.Get()) % eratSize
	c.lsu.eratVPN.Entry(i).Set(vpn)
	c.lsu.eratPPN.Entry(i).Set(vpn)
	c.lsu.eratCtl.Entry(i).Set(1)
	c.lsu.eratPar.Entry(i).Set(c.eratParity(vpn, vpn))
	c.lsu.eratPtr.Set(uint64(i+1) % eratSize)
}

// fail posts checker id's error if enabled; it returns true when the error
// was posted (so callers can squash the faulty side effect — detection gates
// data flow the way hardware checkers do).
// Defined in checkers.go; redeclared here in comment form for readers.
