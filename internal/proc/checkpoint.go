package proc

import (
	"sfi/internal/bits"
	"sfi/internal/mem"
)

// ModelCheckpoint is a full snapshot of the machine — latches, protected
// arrays, memory and run counters. The emulation engine saves one after
// warm-up and reloads it before every injection, exactly as the paper's
// flow does ("after the fault injection has completed, the model is
// reloaded from a checkpoint").
type ModelCheckpoint struct {
	latches    []uint64
	arrays     [][]bits.ECCWord
	memory     *mem.Memory
	cycle      uint64
	completed  uint64
	recoveries uint64
	halted     bool
}

// SaveCheckpoint captures the complete model state.
func (c *Core) SaveCheckpoint() *ModelCheckpoint {
	ck := &ModelCheckpoint{
		latches:    c.db.Snapshot(),
		memory:     c.mem.Clone(),
		cycle:      c.Cycle,
		completed:  c.Completed,
		recoveries: c.Recoveries,
		halted:     c.halted,
	}
	for _, p := range c.arrays {
		ck.arrays = append(ck.arrays, p.Snapshot())
	}
	return ck
}

// RestoreCheckpoint reloads the model from a checkpoint taken on the same
// configuration, clearing error counters and capture state.
func (c *Core) RestoreCheckpoint(ck *ModelCheckpoint) {
	c.db.Restore(ck.latches)
	c.mem.CopyFrom(ck.memory)
	for i, p := range c.arrays {
		p.Restore(ck.arrays[i])
		p.ResetCounters()
	}
	c.Cycle = ck.cycle
	c.Completed = ck.completed
	c.Recoveries = ck.recoveries
	c.halted = ck.halted
	c.pendErr = c.pendErr[:0]
	c.prv.firstErrSeen = false
	for _, ch := range c.checkers {
		ch.Fired = 0
	}
}
