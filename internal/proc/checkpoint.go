package proc

import (
	"time"

	"sfi/internal/array"
	"sfi/internal/bits"
	"sfi/internal/latch"
	"sfi/internal/mem"
)

// baselineToken identifies one InstallRestoreBaseline call. A checkpoint's
// delta form is only valid against the baseline it was captured from; cores
// that share a token (via AdoptBaselineFrom) share the baseline image.
type baselineToken struct{ _ byte }

// ModelCheckpoint is a full snapshot of the machine — latches, protected
// arrays, memory and run counters. The emulation engine saves one after
// warm-up and reloads it before every injection, exactly as the paper's
// flow does ("after the fault injection has completed, the model is
// reloaded from a checkpoint").
//
// A checkpoint is immutable after capture and may be shared: multiple
// engines (e.g. cloned campaign workers) can reload from one snapshot
// concurrently. When the core had a restore baseline installed at capture
// time, the checkpoint additionally carries sparse deltas against that
// baseline, and RestoreCheckpoint on a core sharing the same baseline
// rewrites only the state that actually differs — the dirty fast path.
type ModelCheckpoint struct {
	latches    []uint64
	arrays     [][]bits.ECCWord
	memory     *mem.Memory
	cycle      uint64
	completed  uint64
	recoveries uint64
	halted     bool

	// Dirty-restore fast path (nil base when no baseline was installed).
	base        *baselineToken
	latchDelta  *latch.Delta
	memDelta    *mem.Delta
	arrayDeltas []*array.Delta
}

// InstallRestoreBaseline snapshots the current state as the restore
// baseline for the dirty-tracking fast path: from now on, latch, memory and
// array writes are tracked, checkpoints capture sparse deltas against this
// baseline, and RestoreCheckpoint rewrites only touched state. Call it once
// the model has reached the state checkpoints will be taken near (after
// workload warm-up); installing a fresh baseline invalidates the fast path
// of previously captured checkpoints (they fall back to the full copy).
func (c *Core) InstallRestoreBaseline() {
	c.baseline = &baselineToken{}
	c.db.SetBaseline()
	c.mem.SetBaseline()
	for _, p := range c.arrays {
		p.SetBaseline()
	}
}

// AdoptBaselineFrom shares src's restore baseline with this core (the
// baseline image is immutable, so sharing is read-only safe) and resets the
// live state to that baseline. src must have the same configuration and a
// baseline installed. The caller is expected to RestoreCheckpoint next;
// counters and capture state are synchronized there. This is the
// warm-runner cloning primitive: the adopting core skips workload warm-up
// entirely and never reads src's live (possibly concurrently running)
// state.
func (c *Core) AdoptBaselineFrom(src *Core) {
	if c.cfg != src.cfg {
		panic("proc: AdoptBaselineFrom across different configurations")
	}
	c.baseline = src.baseline
	c.db.AdoptBaseline(src.db)
	c.mem.AdoptBaseline(src.mem)
	for i, p := range c.arrays {
		p.AdoptBaseline(src.arrays[i])
	}
}

// SaveCheckpoint captures the complete model state. With a restore baseline
// installed it also captures the sparse delta form enabling the dirty
// restore fast path.
func (c *Core) SaveCheckpoint() *ModelCheckpoint {
	ck := &ModelCheckpoint{
		latches:    c.db.Snapshot(),
		memory:     c.mem.Clone(),
		cycle:      c.Cycle,
		completed:  c.Completed,
		recoveries: c.Recoveries,
		halted:     c.halted,
	}
	for _, p := range c.arrays {
		ck.arrays = append(ck.arrays, p.Snapshot())
	}
	if c.baseline != nil {
		ck.base = c.baseline
		ck.latchDelta = c.db.CaptureDelta()
		ck.memDelta = c.mem.CaptureDelta()
		for _, p := range c.arrays {
			ck.arrayDeltas = append(ck.arrayDeltas, p.CaptureDelta())
		}
	}
	return ck
}

// RestoreCheckpoint reloads the model from a checkpoint taken on the same
// configuration, clearing error counters and capture state. When the
// checkpoint carries a delta against this core's installed baseline, only
// the state that differs (words/pages/entries dirtied since the last
// restore, plus the checkpoint's own delta) is rewritten; otherwise the
// full-copy slow path runs.
func (c *Core) RestoreCheckpoint(ck *ModelCheckpoint) {
	if c.obs == nil {
		c.restoreModelCheckpoint(ck)
		return
	}
	start := time.Now()
	c.restoreModelCheckpoint(ck)
	c.obs.ObserveRestore(uint64(time.Since(start).Nanoseconds()))
}

func (c *Core) restoreModelCheckpoint(ck *ModelCheckpoint) {
	if ck.base != nil && ck.base == c.baseline {
		c.db.RestoreDelta(ck.latchDelta)
		c.mem.RestoreDelta(ck.memDelta)
		for i, p := range c.arrays {
			p.RestoreDelta(ck.arrayDeltas[i])
		}
		c.finishRestore(ck)
		return
	}
	c.RestoreCheckpointFull(ck)
}

// RestoreCheckpointFull reloads the model through the full-copy slow path,
// ignoring any delta the checkpoint carries. It is the correctness baseline
// the dirty path is verified against (see the differential tests) and the
// fallback when baselines don't match.
func (c *Core) RestoreCheckpointFull(ck *ModelCheckpoint) {
	c.db.Restore(ck.latches)
	c.mem.CopyFrom(ck.memory)
	for i, p := range c.arrays {
		p.Restore(ck.arrays[i])
	}
	c.finishRestore(ck)
}

// finishRestore resets counters and capture state common to both restore
// paths.
func (c *Core) finishRestore(ck *ModelCheckpoint) {
	for _, p := range c.arrays {
		p.ResetCounters()
	}
	c.Cycle = ck.cycle
	c.Completed = ck.completed
	c.Recoveries = ck.recoveries
	c.halted = ck.halted
	c.pendErr = c.pendErr[:0]
	c.prv.firstErrSeen = false
	for _, ch := range c.checkers {
		ch.Fired = 0
	}
}
