package proc

import (
	mathbits "math/bits"

	"sfi/internal/isa"
)

// Unit indices into the pervasive clock-enable register, Units order.
const (
	uIFU = iota
	uIDU
	uFXU
	uFPU
	uLSU
	uRUT
	uPRV
	uNEST
)

// dcache/ERAT shared miss FSM states.
const (
	dcIdle       = 0
	dcRefill     = 1
	dcERATReload = 2
)

// unitOK reports whether a unit's clocks are running: the pervasive clock
// enable is set, the MODE critical segment is intact, and no GPTR test
// engage bit is set. A frozen unit stalls everything that needs it.
func (c *Core) unitOK(i int) bool {
	if !c.prv.modeClock.GetBit(i) {
		return false
	}
	ring := c.rings[i]
	if ring[0].Field(modeCriticalLo, modeCriticalHi-modeCriticalLo) != modeCriticalInit {
		return false
	}
	if ring[1].Field(gptrEngageLo, gptrEngageHi-gptrEngageLo) != 0 {
		return false
	}
	return true
}

// execLatency returns the EX occupancy in cycles for an opcode.
func execLatency(op isa.Opcode) uint64 {
	switch op {
	case isa.OpMUL:
		return 5
	case isa.OpDIVD:
		return 17
	case isa.OpLD, isa.OpLW, isa.OpLFD:
		return 3
	case isa.OpSTD, isa.OpSTW, isa.OpSTFD:
		return 2
	case isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFMR, isa.OpFCMP:
		return 5
	case isa.OpNOP, isa.OpTESTEND, isa.OpHALT:
		return 1
	default:
		return 2
	}
}

// execUnit returns the clock domain an opcode executes in.
func execUnit(op isa.Opcode) int {
	if fpPipeOp(op) {
		return uFPU
	}
	switch isa.ClassOf(op) {
	case isa.ClassLoad, isa.ClassStore:
		return uLSU
	default:
		return uFXU
	}
}

// ---------------------------------------------------------------------------
// Fetch (IFU)
// ---------------------------------------------------------------------------

// redirectFetch points the fetch engine at target and flushes the fetch
// buffer.
func (c *Core) redirectFetch(target uint64) {
	c.ifu.pc.Set(target)
	c.ifu.pcPar.Set(parity64(target) ^ c.polarity(c.ifu.mode, 0))
	for i := 0; i < fbEntries; i++ {
		c.ifu.fbV.Entry(i).Set(0)
	}
	c.ifu.fbHead.Set(0)
	c.ifu.fbTail.Set(0)
	c.ifu.fbCnt.Set(0)
}

// flushFrontend squashes everything younger than EX (mispredict recovery).
func (c *Core) flushFrontend(target uint64) {
	c.redirectFetch(target)
	c.idu.d1V.Set(0)
	c.idu.d2V.Set(0)
}

// fetchCycle moves a fetch-buffer entry into D1 and fetches a new word into
// the buffer.
func (c *Core) fetchCycle() {
	if !c.unitOK(uIFU) {
		return
	}
	ifu := &c.ifu

	// Fetch buffer → D1.
	if c.idu.d1V.Get() == 0 && ifu.fbCnt.Get() > 0 {
		h := int(ifu.fbHead.Get()) % fbEntries
		if ifu.fbV.Entry(h).Get() != 0 {
			ir := ifu.fbIR.Entry(h).Get()
			pc := ifu.fbPC.Entry(h).Get()
			c.idu.d1IR.Set(ir)
			c.idu.d1PC.Set(pc)
			c.idu.d1Par.Set(parity64(ir^pc) ^ c.polarity(c.idu.mode, 0))
			// Carry the fetch-buffer parity check to the consume point.
			want := parity64(ir^pc) ^ c.polarity(ifu.mode, 1)
			if ifu.fbPar.Entry(h).Get() != want {
				if c.fail(ChkIFUFBPar) {
					return
				}
			}
			c.idu.d1V.Set(1)
			ifu.fbV.Entry(h).Set(0)
		}
		// Advance past the slot whether or not it was valid; a corrupted
		// valid bit silently drops an instruction (a real SDC mechanism).
		ifu.fbHead.Set(uint64(h+1) % fbEntries)
		if n := ifu.fbCnt.Get(); n > 0 {
			ifu.fbCnt.Set(n - 1)
		}
	}

	// I-cache miss FSM (refills need the memory subsystem alive).
	if ifu.icFSM.Get() != 0 {
		if !c.nestServicing() {
			return
		}
		n := ifu.icCnt.Get()
		if n > 0 {
			ifu.icCnt.Set(n - 1)
			return
		}
		c.icRefill(ifu.icAddr.Get())
		c.nestRetireRQ()
		ifu.icFSM.Set(0)
		// Fall through: the fetch below will now hit.
	}

	// Fill the fetch buffer: the front end fetches up to two words per
	// cycle (wider than the one-per-cycle decode), so the buffer runs
	// full in straight-line code.
	for slot := 0; slot < 2; slot++ {
		if ifu.fbCnt.Get() >= fbEntries {
			return
		}
		pc := ifu.pc.Get()
		if parity64(pc)^c.polarity(ifu.mode, 0) != ifu.pcPar.Get() {
			if c.fail(ChkIFUPCPar) {
				return
			}
		}
		word, ok := c.icLookup(pc)
		if !ok {
			if ifu.icFSM.Get() == 0 {
				ifu.icFSM.Set(1)
				ifu.icCnt.Set(c.nestMissLatency(pc, true))
				ifu.icAddr.Set(pc)
			}
			return
		}
		tl := int(ifu.fbTail.Get()) % fbEntries
		pc48 := pc & (1<<48 - 1)
		ifu.fbIR.Entry(tl).Set(uint64(word))
		ifu.fbPC.Entry(tl).Set(pc48)
		ifu.fbPar.Entry(tl).Set(parity64(uint64(word)^pc48) ^ c.polarity(ifu.mode, 1))
		ifu.fbV.Entry(tl).Set(1)
		ifu.fbTail.Set(uint64(tl+1) % fbEntries)
		ifu.fbCnt.Set(ifu.fbCnt.Get() + 1)
		ifu.perf.Entry(0).Set(ifu.perf.Entry(0).Get() + 1)

		npc := pc + 4
		ifu.pc.Set(npc)
		ifu.pcPar.Set(parity64(npc) ^ c.polarity(ifu.mode, 0))
	}
}

// bhtIndex maps a PC to its branch-history counter.
func bhtIndex(pc uint64) int { return int(pc>>2) & (bhtEntries - 1) }

// ---------------------------------------------------------------------------
// Decode (IDU)
// ---------------------------------------------------------------------------

// d1Cycle decodes D1, performs decode-time branch prediction/redirect and
// moves the instruction to D2.
func (c *Core) d1Cycle() {
	if !c.unitOK(uIDU) {
		return
	}
	idu := &c.idu
	if idu.d1V.Get() == 0 || idu.d2V.Get() != 0 {
		return
	}
	ir := uint32(idu.d1IR.Get())
	pc := idu.d1PC.Get()
	if parity64(uint64(ir)^pc)^c.polarity(idu.mode, 0) != idu.d1Par.Get() {
		if c.fail(ChkIDUD1Par) {
			return
		}
	}
	// Note: an undefined opcode is detected here but reported precisely at
	// execute time (run-ahead fetch past a halt must not fault).
	in := isa.Decode(ir)

	pred := uint64(0)
	pnpc := (pc + 4) & (1<<48 - 1)
	switch in.Op {
	case isa.OpB, isa.OpBL:
		pnpc = (pc + uint64(int64(in.Imm)*4)) & (1<<48 - 1)
		pred = 1
		c.redirectFetch(pnpc)
	case isa.OpBC:
		if c.ifu.bht.Entry(bhtIndex(pc)).Get() >= 2 {
			pnpc = (pc + uint64(int64(in.Imm)*4)) & (1<<48 - 1)
			pred = 1
			c.redirectFetch(pnpc)
		}
	case isa.OpBDNZ:
		// Loops are statically predicted taken.
		pnpc = (pc + uint64(int64(in.Imm)*4)) & (1<<48 - 1)
		pred = 1
		c.redirectFetch(pnpc)
	}

	idu.d2IR.Set(uint64(ir))
	idu.d2PC.Set(pc)
	idu.d2Par.Set(parity64(uint64(ir)^pc) ^ c.polarity(idu.mode, 0))
	idu.d2Pred.Set(pred)
	idu.d2PNPC.Set(pnpc)
	idu.d2V.Set(1)
	idu.d1V.Set(0)
	idu.perf.Entry(0).Set(idu.perf.Entry(0).Get() + 1)
}

// readGPR reads a general purpose register through the parity checker.
func (c *Core) readGPR(r uint8) uint64 {
	v := c.fxu.gpr.Entry(int(r)).Get()
	if parity64(v)^c.polarity(c.fxu.mode, 0) != c.fxu.gprPar.Entry(int(r)).Get() {
		c.fail(ChkFXUGPRPar)
	}
	return v
}

// readFPR reads a floating point register through the parity checker.
func (c *Core) readFPR(r uint8) uint64 {
	v := c.fpu.fpr.Entry(int(r)).Get()
	if parity64(v)^c.polarity(c.fpu.mode, 0) != c.fpu.fprPar.Entry(int(r)).Get() {
		c.fail(ChkFPUFPRPar)
	}
	return v
}

// readSPR reads CR/LR/CTR through the SPR parity checker.
func (c *Core) readSPR(reg, par interface{ Get() uint64 }) uint64 {
	v := reg.Get()
	if parity64(v)^c.polarity(c.idu.mode, 1) != par.Get() {
		c.fail(ChkIDUSPRPar)
	}
	return v
}

// d2Cycle issues the D2 instruction into the EX slot: hazard interlock,
// operand read (with parity checks), operand latching.
func (c *Core) d2Cycle() {
	if !c.unitOK(uIDU) {
		return
	}
	idu := &c.idu
	fxu := &c.fxu
	if idu.d2V.Get() == 0 || fxu.exV.Get() != 0 {
		return
	}

	// Dispatch FSM must be in its single legal state.
	if mathbits.OnesCount64(idu.dispFSM.Get()) != 1 {
		if c.fail(ChkIDUDispFSM) {
			return
		}
	}

	ir := uint32(idu.d2IR.Get())
	pc := idu.d2PC.Get()
	if parity64(uint64(ir)^pc)^c.polarity(idu.mode, 0) != idu.d2Par.Get() {
		if c.fail(ChkIDUD2Par) {
			return
		}
	}
	in := isa.Decode(ir)

	// Hazard interlock against the WB occupant (EX is empty, checked
	// above; WB writes its registers at the start of the next cycle).
	if fxu.wbV.Get() != 0 {
		wIn := isa.Decode(uint32(fxu.wbIR.Get()))
		_, wG, _, wF, _, wS := isa.RegSets(wIn)
		rG, _, rF, _, rS, _ := isa.RegSets(in)
		if wG&rG != 0 || wF&rF != 0 || wS&rS != 0 {
			return // stall
		}
	}

	// Operand read and latch.
	var opA, opB uint64
	switch in.Op {
	case isa.OpADDI, isa.OpADDIS, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpCMPI:
		opA = c.readGPR(in.RA)
		opB = uint64(int64(in.Imm))
		if in.Op == isa.OpADDIS {
			opB = uint64(int64(in.Imm) << 16)
		}
		if in.Op == isa.OpANDI || in.Op == isa.OpORI || in.Op == isa.OpXORI {
			opB = in.UImm()
		}
	case isa.OpLD, isa.OpLW, isa.OpLFD:
		opA = c.readGPR(in.RA)
		opB = uint64(int64(in.Imm))
	case isa.OpSTD, isa.OpSTW:
		opA = c.readGPR(in.RA)
		opB = c.readGPR(in.RT)
	case isa.OpSTFD:
		opA = c.readGPR(in.RA)
		opB = c.readFPR(in.RT)
	case isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSLD, isa.OpSRD, isa.OpMUL, isa.OpDIVD, isa.OpCMP, isa.OpCMPL:
		opA = c.readGPR(in.RA)
		opB = c.readGPR(in.RB)
	case isa.OpBC:
		opA = c.readSPR(idu.cr, idu.crPar)
	case isa.OpBDNZ:
		opA = c.readSPR(idu.ctr, idu.ctrPar)
	case isa.OpBLR:
		opA = c.readSPR(idu.lr, idu.lrPar)
	case isa.OpMTCTR, isa.OpMTLR:
		opA = c.readGPR(in.RA)
	case isa.OpMFLR:
		opA = c.readSPR(idu.lr, idu.lrPar)
	case isa.OpMFCTR:
		opA = c.readSPR(idu.ctr, idu.ctrPar)
	case isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFCMP:
		opA = c.readFPR(in.RA)
		opB = c.readFPR(in.RB)
	case isa.OpFMR:
		opB = c.readFPR(in.RB)
	}

	polOp := c.polarity(fxu.mode, 1)
	fxu.opA.Set(opA)
	fxu.opAPar.Set(parity64(opA) ^ polOp)
	fxu.opB.Set(opB)
	fxu.opBPar.Set(parity64(opB) ^ polOp)

	// Floating-point pipeline intake.
	if isa.ClassOf(in.Op) == isa.ClassFloat || in.Op == isa.OpFCMP {
		fpu := &c.fpu
		polFP := c.polarity(fpu.mode, 1)
		fpu.p1a.Set(opA)
		fpu.p1b.Set(opB)
		fpu.pPar.SetBit(0, parity64(opA)^polFP != 0)
		fpu.pPar.SetBit(1, parity64(opB)^polFP != 0)
		fpu.fsm.Set(2)
	}

	fxu.exIR.Set(uint64(ir))
	fxu.exIRPar.Set(parity64(uint64(ir)))
	fxu.exPC.Set(pc)
	fxu.exV.Set(1)
	fxu.exBusy.Set(execLatency(in.Op))
	fxu.exPred.Set(idu.d2Pred.Get())
	fxu.exPNPC.Set(idu.d2PNPC.Get())
	idu.d2V.Set(0)
}
