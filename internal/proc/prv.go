package proc

import (
	mathbits "math/bits"

	"sfi/internal/bits"
)

// setFIR records checker id's error in the fault isolation registers,
// maintaining FIR parity (corruption of the FIRs themselves is a
// checkstop-class pervasive error).
func (p *prvState) setFIR(id int) {
	e := p.fir.Entry(id / 64)
	v := e.Get() | 1<<uint(id%64)
	e.Set(v)
	p.firPar.Entry(id / 64).Set(parity64(v))
}

// prvCycle runs the pervasive logic: continuous checkers, the completion
// watchdog, background array scrubbing and the always-on counters.
func (c *Core) prvCycle() {
	if !c.unitOK(uPRV) {
		return // pervasive clocks off: no supervision, core still runs
	}
	prv := &c.prv

	// FIR integrity.
	for i := 0; i < prv.fir.Len(); i++ {
		if parity64(prv.fir.Entry(i).Get()) != prv.firPar.Entry(i).Get() {
			c.fail(ChkPRVFIRPar)
			break
		}
	}
	// Scan/clock control integrity.
	if parity64(prv.scanCtl.Get()) != prv.scanPar.Get() {
		c.fail(ChkPRVScanPar)
	}
	// Ring integrity segments per unit.
	ringChk := [...]int{ChkRingIFU, ChkRingIDU, ChkRingFXU, ChkRingFPU,
		ChkRingLSU, ChkRingRUT, ChkRingPRV, ChkRingNEST}
	for i, r := range c.rings {
		modeSeg := r[0].Field(modeIntegrityLo, modeIntegrityHi-modeIntegrityLo)
		gptrSeg := r[1].Field(gptrIntegrityLo, gptrIntegrityHi-gptrIntegrityLo)
		if parity64(modeSeg) != prv.ringPar.Entry(2*i).Get() ||
			parity64(gptrSeg) != prv.ringPar.Entry(2*i+1).Get() {
			c.fail(ringChk[i])
		}
	}
	// One-hot state machines.
	if mathbits.OnesCount64(c.rut.fsm.Get()) != 1 {
		c.fail(ChkRUTFSM)
	}
	// Recovery-domain capture-register integrity.
	if c.rutCaptureParity() != c.rut.capPar.Get() {
		c.fail(ChkRUTCapPar)
	}
	if mathbits.OnesCount64(c.fpu.fsm.Get()) != 1 {
		c.fail(ChkFPUFSM)
	}

	// Continuous structure scans (conservative checking: any corrupt
	// covered state fires, whether or not it would ever be consumed).
	c.scanSTQ()
	c.scanERAT()
	c.scanFB()
	c.scanRQ()

	// Completion watchdog.
	limit := prv.modeHangLim.Get()
	if limit != 0 && !c.halted {
		n := prv.hangCnt.Get()
		if n+1 >= limit {
			prv.hangCnt.Set(0)
			if prv.hangArm.Get() != 0 {
				// A hang recovery already ran without any completion
				// since: the core is declared hung.
				prv.coreHung.Set(1)
			} else {
				prv.hangArm.Set(1)
				c.fail(ChkPRVWatchdog)
			}
		} else {
			prv.hangCnt.Set(n + 1)
		}
	}

	// Background scrub: one array entry per cycle, round-robin.
	c.scrubCycle()

	// Free-running counters.
	prv.perf.Entry(0).Set(prv.perf.Entry(0).Get() + 1)
	if c.Cycle%16 == 0 {
		prv.thermal.Entry(0).Set(prv.thermal.Entry(0).Get() + 1)
	}
}

// scanSTQ is the continuous store-queue checker. Like a hardware scan
// engine it walks one entry per cycle round-robin, so worst-case detection
// latency is one sweep.
func (c *Core) scanSTQ() {
	lsu := &c.lsu
	i := int(c.Cycle) % stqEntries
	ctl := lsu.stqCtl.Entry(i).Get()
	v, vd := ctl&1, (ctl>>1)&1
	if v != vd {
		c.fail(ChkLSUSTQVDup)
		return
	}
	if v == 0 {
		return
	}
	pol := c.polarity(lsu.mode, 1)
	if parity64(lsu.stqAddr.Entry(i).Get())^pol != lsu.stqParA.Entry(i).Get() ||
		parity64(lsu.stqData.Entry(i).Get())^pol != lsu.stqParD.Entry(i).Get() {
		c.fail(ChkLSUSTQPar)
	}
}

// scanERAT is the continuous ERAT integrity checker (one entry per cycle).
func (c *Core) scanERAT() {
	lsu := &c.lsu
	i := int(c.Cycle) % eratSize
	if lsu.eratCtl.Entry(i).Get()&1 == 0 {
		return
	}
	vpn := lsu.eratVPN.Entry(i).Get()
	ppn := lsu.eratPPN.Entry(i).Get()
	if c.eratParity(vpn, ppn) != lsu.eratPar.Entry(i).Get() {
		c.fail(ChkLSUERATPar)
	}
}

// scanFB is the continuous fetch-buffer checker (one entry per cycle).
func (c *Core) scanFB() {
	ifu := &c.ifu
	i := int(c.Cycle) % fbEntries
	if ifu.fbV.Entry(i).Get() == 0 {
		return
	}
	ir := ifu.fbIR.Entry(i).Get()
	pc := ifu.fbPC.Entry(i).Get()
	pol := c.polarity(ifu.mode, 1)
	if parity64(ir^pc)^pol != ifu.fbPar.Entry(i).Get() {
		c.fail(ChkIFUFBPar)
	}
}

// scrubCycle checks one protected-array entry per cycle. Cache entries with
// uncorrectable errors are invalidated (line delete); checkpoint corruption
// is fatal.
func (c *Core) scrubCycle() {
	arrays := c.arrays
	total := c.arrayEntries
	if total == 0 {
		return
	}
	ptr := int(c.prv.scrubPtr.Get()) % total
	c.prv.scrubPtr.Set(uint64((ptr + 1) % total))
	for ai, p := range arrays {
		if ptr < p.Entries() {
			res := p.ScrubStep(ptr)
			if res == bits.ECCUncorrectable {
				switch ai {
				case 0, 1: // icache tag/data
					line := ptr
					if ai == 1 {
						line = ptr / lineWords
					}
					c.ifu.icTag.Write(line, 0)
					c.fail(ChkIFUICUE)
				case 2, 3: // dcache tag/data
					line := ptr
					if ai == 3 {
						line = ptr / lineWords
					}
					c.lsu.dcTag.Write(line, 0)
					c.fail(ChkLSUDCUE)
				case 4, 5, 6: // checkpoint arrays
					c.fail(ChkRUTCkptUE)
				default: // L2 tag/data: line delete
					line := ptr
					if ai == 8 {
						line = ptr / lineWords
					}
					c.nest.l2Tag.Write(line, 0)
					c.fail(ChkNESTL2UE)
				}
			}
			return
		}
		ptr -= p.Entries()
	}
}

// ArrayCorrectedCount sums the ECC single-bit corrections logged by every
// protected array (machine-visible corrected-error events).
func (c *Core) ArrayCorrectedCount() uint64 {
	var n uint64
	for _, p := range c.Arrays() {
		n += p.Corrected
	}
	return n
}
