// Package proc implements P6LITE: a latch-accurate, cycle-based, in-order
// POWER-flavoured core model in the spirit of the POWER6 core that the
// paper's SFI experiments target. Every micro-architectural state bit lives
// in the latch database (internal/latch) so that the SFI framework can flip
// any of them; protected SRAM arrays (caches, recovery-unit checkpoint) live
// in internal/array and are reachable by the beam model.
//
// The core has the paper's unit decomposition — IFU, IDU, FXU, FPU, LSU,
// RUT and PRV (core pervasive logic) — and the POWER6 RAS stack: hardware
// checkers that post recoverable errors, a recovery unit that retries from
// an ECC-protected architected-state checkpoint, checkstop escalation, fault
// isolation registers and a completion watchdog for hang detection.
package proc

import (
	"math"

	"sfi/internal/array"
	"sfi/internal/latch"
	"sfi/internal/mem"
	"sfi/internal/obs"
)

// Unit names, matching the paper's Figures 3 and 4.
const (
	UnitIFU = "IFU"
	UnitIDU = "IDU"
	UnitFXU = "FXU"
	UnitFPU = "FPU"
	UnitLSU = "LSU"
	UnitRUT = "RUT"
	UnitPRV = "Core" // pervasive logic, labelled "Core" in the paper
)

// Units lists the units in paper order.
var Units = []string{UnitIFU, UnitIDU, UnitFXU, UnitFPU, UnitLSU, UnitRUT, UnitPRV}

// Config holds the core's timing and sizing parameters.
type Config struct {
	MemBytes       int // flat memory size (power of two)
	MissPenalty    int // cache miss refill latency, cycles
	ERATPenalty    int // ERAT reload latency, cycles
	HangLimit      int // completion watchdog threshold, cycles
	RecoveryCycles int // pipeline-reset dead time during a retry
	RetryLimit     int // recoveries without forward progress before checkstop

	// EnableNest adds the core periphery — a unified L2 and its memory
	// controller (the paper's "fault injections in the periphery of the
	// core" future work). L1 misses are then serviced through the L2;
	// NestPenalty is the additional L2-miss latency to memory.
	EnableNest  bool
	NestPenalty int
}

// DefaultConfig returns the standard model parameters.
func DefaultConfig() Config {
	return Config{
		MemBytes:       256 * 1024,
		MissPenalty:    12,
		ERATPenalty:    6,
		HangLimit:      2048,
		RecoveryCycles: 32,
		RetryLimit:     3,
		NestPenalty:    24,
	}
}

// Event is a machine-visible occurrence during a cycle, reported by Step.
type Event struct {
	TestEnd   bool   // a testend barrier completed this cycle
	Signature uint64 // architected signature at the barrier
	Halted    bool   // halt completed
}

// Core is the P6LITE processor model.
type Core struct {
	cfg Config
	db  *latch.DB
	mem *mem.Memory

	ifu  ifuState
	idu  iduState
	fxu  fxuState
	fpu  fpuState
	lsu  lsuState
	rut  rutState
	prv  prvState
	nest nestState

	checkers []*Checker

	// rings caches each unit's (mode, gptr) segment-0 handles, Units order.
	rings [][2]latch.Reg
	// arrays caches the protected-array list; arrayEntries is the total
	// entry count across them (the scrub walk space).
	arrays       []*array.Protected
	arrayEntries int

	halted bool

	// obs is the optional metrics collector (nil = observability off, the
	// default; see SetObs). With it set, checkpoint restores are timed.
	obs *obs.Metrics

	// baseline identifies the installed restore baseline for the
	// dirty-tracking checkpoint fast path (nil until
	// InstallRestoreBaseline; shared by cloned cores).
	baseline *baselineToken

	// pending errors posted by checkers during the current cycle
	pendErr []pendingError

	// Cycle counts clocked cycles since reset.
	Cycle uint64
	// Completed counts retired instructions.
	Completed uint64
	// Recoveries counts successful RUT retries (the paper's "corrected").
	Recoveries uint64
}

type pendingError struct {
	checker *Checker
}

// New builds a core over a fresh memory, registering the full latch
// inventory, and resets it.
func New(cfg Config) *Core {
	c := &Core{
		cfg: cfg,
		db:  latch.NewDB(),
		mem: mem.New(cfg.MemBytes),
	}
	c.buildInventory()
	c.buildColdInventory()
	if cfg.EnableNest {
		c.buildNestInventory()
	}
	c.db.Freeze()
	c.buildCheckers()
	c.rings = c.unitRings()
	c.arrays = c.Arrays()
	for _, p := range c.arrays {
		c.arrayEntries += p.Entries()
	}
	c.Reset()
	return c
}

// DB exposes the latch database for injection and sampling.
func (c *Core) DB() *latch.DB { return c.db }

// Mem exposes the flat memory for program loading and SDC comparison.
func (c *Core) Mem() *mem.Memory { return c.mem }

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// SetObs attaches a metrics collector to the core (nil detaches, the
// default). With a collector attached, checkpoint restores are timed into
// its restore-latency histogram; with nil the hot path pays only this
// pointer's nil test.
func (c *Core) SetObs(m *obs.Metrics) { c.obs = m }

// Reset puts the machine into its power-on state: pipeline empty, caches
// invalid, scan rings at their init values, PC = 0. Memory is untouched.
func (c *Core) Reset() {
	// Zero every latch, then apply scan-ring init values.
	snap := make([]uint64, len(c.db.Snapshot()))
	c.db.Restore(snap)
	c.initScanRings()
	c.resetArrays()
	// Idle states for the one-hot machines.
	c.idu.dispFSM.Set(1)
	c.fpu.fsm.Set(1)
	c.rut.fsm.Set(rutIdle)
	c.Cycle = 0
	c.Completed = 0
	c.Recoveries = 0
	c.halted = false
	c.pendErr = c.pendErr[:0]
	c.prv.resetCounters()
}

// Halted reports whether a halt instruction has retired.
func (c *Core) Halted() bool { return c.halted }

// Checkstopped reports whether the machine has checkstopped.
func (c *Core) Checkstopped() bool { return c.prv.checkstop.Get() != 0 }

// HangDetected reports whether the pervasive hang detector has declared the
// core hung (watchdog fired and hang recovery did not restore progress).
func (c *Core) HangDetected() bool { return c.prv.coreHung.Get() != 0 }

// InRecovery reports whether the RUT retry sequence is active.
func (c *Core) InRecovery() bool { return c.rut.fsm.Get() != rutIdle }

// Step clocks the machine one cycle and reports any machine-visible event.
func (c *Core) Step() Event {
	ev := c.step()
	if !c.Checkstopped() {
		// Write-port parity maintenance for the RUT error-capture
		// registers: legitimate updates (which all happen inside the
		// cycle) regenerate the stored parity; corruption injected
		// between cycles is caught by the pervasive checker first.
		c.rut.capPar.Set(c.rutCaptureParity())
	}
	return ev
}

func (c *Core) step() Event {
	var ev Event
	if c.Checkstopped() || c.halted {
		return ev
	}
	c.Cycle++
	c.pendErr = c.pendErr[:0]

	// Pervasive logic first: continuous checkers, scrub, watchdog.
	c.prvCycle()
	if c.Checkstopped() {
		return ev
	}

	// Recovery sequencing freezes the pipeline.
	if c.InRecovery() {
		c.rutCycle()
		c.handleErrors()
		return ev
	}

	// Pipeline, written back-to-front so data advances one stage per cycle.
	ev = c.wbCycle()
	if ev.Halted {
		// Retiring a halt stops the clocks immediately; run-ahead fetch
		// must not execute past it.
		c.handleErrors()
		return ev
	}
	c.exCycle()
	c.d2Cycle()
	c.d1Cycle()
	c.fetchCycle()

	c.handleErrors()
	return ev
}

// postError is called by checkers when enabled and failing.
func (c *Core) postError(ch *Checker) {
	c.pendErr = append(c.pendErr, pendingError{checker: ch})
}

// handleErrors routes posted checker errors to the RUT / checkstop logic.
func (c *Core) handleErrors() {
	if len(c.pendErr) == 0 {
		return
	}
	// Log the first error's FIR bit; severity: any checkstop-class error
	// wins over recoverable ones.
	worst := c.pendErr[0].checker
	for _, pe := range c.pendErr[1:] {
		if pe.checker.Action == ActionCheckstop && worst.Action != ActionCheckstop {
			worst = pe.checker
		}
	}
	for _, pe := range c.pendErr {
		c.prv.setFIR(pe.checker.FIR)
	}
	// Error capture for cause-and-effect tracing: the RUT latches the
	// first error of an incident.
	if !c.prv.firstErrSeen {
		c.prv.firstErrSeen = true
		c.rut.errSrc.Set(uint64(worst.ID))
		c.rut.errCycle.Set(c.Cycle)
		h := int(c.rut.errCycle.Get()) % c.rut.hist.Len()
		c.rut.hist.Entry(h).Set(uint64(worst.ID)<<32 | c.Cycle&0xffffffff)
	}
	if worst.Action == ActionCheckstop {
		c.checkstop()
		return
	}
	// An error signalled while a retry is in flight is unrecoverable.
	if c.InRecovery() {
		c.checkstop()
		return
	}
	c.rutBeginRecovery()
}

// checkstop stops the machine; only the FIRs stay observable.
func (c *Core) checkstop() {
	c.prv.checkstop.Set(1)
}

// ArchState assembles the architected state visible in the latches, in the
// golden model's representation, for SDC comparison.
func (c *Core) ArchState() ArchSnapshot {
	var s ArchSnapshot
	for i := 0; i < 32; i++ {
		s.GPR[i] = c.fxu.gpr.Entry(i).Get()
		s.FPR[i] = c.fpu.fpr.Entry(i).Get()
	}
	s.CR0 = uint8(c.idu.cr.Get())
	s.LR = c.idu.lr.Get()
	s.CTR = c.idu.ctr.Get()
	s.PC = c.ifu.pc.Get()
	return s
}

// ArchSnapshot mirrors archsim.State's register content without importing
// it (proc is a substrate below the golden model in the dependency order).
type ArchSnapshot struct {
	GPR [32]uint64
	FPR [32]uint64
	CR0 uint8
	LR  uint64
	CTR uint64
	PC  uint64
}

// Signature folds the architected register state exactly the way
// archsim.State.Signature does, so the two can be compared directly.
func (s *ArchSnapshot) Signature() uint64 {
	sig := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		sig ^= v
		sig *= 0x100000001b3
		sig ^= sig >> 29
	}
	for _, g := range s.GPR {
		mix(g)
	}
	for _, f := range s.FPR {
		mix(f)
	}
	mix(uint64(s.CR0))
	mix(s.LR)
	mix(s.CTR)
	return sig
}

// MaskedSignature folds only the masked register subset, exactly the way
// archsim.State.MaskedSignature does (GPR/FPR by register-number bit; SPR
// bit 0 = CR0, 1 = LR, 2 = CTR).
func (s *ArchSnapshot) MaskedSignature(gprMask, fprMask uint32, sprMask uint8) uint64 {
	sig := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		sig ^= v
		sig *= 0x100000001b3
		sig ^= sig >> 29
	}
	for i, g := range s.GPR {
		if gprMask&(1<<uint(i)) != 0 {
			mix(g)
		}
	}
	for i, f := range s.FPR {
		if fprMask&(1<<uint(i)) != 0 {
			mix(f)
		}
	}
	if sprMask&1 != 0 {
		mix(uint64(s.CR0))
	}
	if sprMask&2 != 0 {
		mix(s.LR)
	}
	if sprMask&4 != 0 {
		mix(s.CTR)
	}
	return sig
}

func f2b(f float64) uint64 { return math.Float64bits(f) }
func b2f(b uint64) float64 { return math.Float64frombits(b) }

// polarity reads the k-th parity-polarity configuration bit of a unit's
// MODE ring (see the ring layout in inventory.go).
func (c *Core) polarity(modeRing latch.Reg, k int) uint64 {
	if modeRing.GetBit(modePolarityLo + k) {
		return 1
	}
	return 0
}

func parity64(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}
