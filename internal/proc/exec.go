package proc

import (
	"math"

	"sfi/internal/bits"
	"sfi/internal/isa"
)

// fpPipeOps reports whether an opcode flows through the FPU pipeline.
func fpPipeOp(op isa.Opcode) bool {
	switch op {
	case isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV, isa.OpFMR, isa.OpFCMP:
		return true
	}
	return false
}

// exCycle advances the execute stage: miss FSMs, per-cycle execution
// actions keyed by the remaining-busy count, result finalization and the
// move to writeback.
//
// Busy schedule for an op of latency L (set at issue):
//
//	busy == L   first action (branch verify, load agen, store agen+STQ)
//	busy == 2   finalize (compute and latch the result + its check bits)
//	busy == 1   checked move into the WB slot
//
// For L == 2 the first action and finalize share a cycle. Stalls (cache and
// ERAT misses, frozen units, occupied WB) simply leave busy unchanged.
func (c *Core) exCycle() {
	fxu := &c.fxu

	// D-cache / ERAT miss FSM (LSU clock domain; refills also need the
	// memory subsystem to be alive).
	if c.unitOK(uLSU) && c.lsu.dcFSM.Get() != dcIdle &&
		(c.lsu.dcFSM.Get() != dcRefill || c.nestServicing()) {
		if n := c.lsu.dcCnt.Get(); n > 0 {
			c.lsu.dcCnt.Set(n - 1)
		} else {
			switch c.lsu.dcFSM.Get() {
			case dcRefill:
				c.dcRefill(c.lsu.dcAddr.Get())
				c.nestRetireRQ()
				c.lsu.dcFSM.Set(dcIdle)
			case dcERATReload:
				c.eratReloadDone(c.lsu.dcAddr.Get())
				c.lsu.dcFSM.Set(dcIdle)
			default:
				// A corrupted FSM state completes nothing: the pending
				// miss never resolves (a hang mechanism).
			}
		}
	}

	if fxu.exV.Get() == 0 {
		return
	}
	in := isa.Decode(uint32(fxu.exIR.Get()))
	if !c.unitOK(execUnit(in.Op)) {
		return // frozen unit: instruction stuck, watchdog will notice
	}

	busy := fxu.exBusy.Get()
	lat := execLatency(in.Op)

	switch {
	case busy <= 1:
		// Checked move to WB.
		if fxu.wbV.Get() != 0 {
			return // WB occupied (retire stalled)
		}
		if c.moveToWB(in) {
			fxu.exV.Set(0)
			fxu.exBusy.Set(0)
		}
	case busy == lat:
		ok := c.exFirst(in)
		if ok && busy == 2 {
			ok = c.exFinalize(in)
		}
		if ok {
			fxu.exBusy.Set(busy - 1)
		}
	case busy == 2:
		if c.exFinalize(in) {
			fxu.exBusy.Set(1)
		}
	default:
		c.exMiddle(in, busy)
		fxu.exBusy.Set(busy - 1)
	}
}

// exFirst performs the first-cycle action. It returns false to stall.
func (c *Core) exFirst(in isa.Inst) bool {
	fxu := &c.fxu
	switch {
	case isa.ClassOf(in.Op) == isa.ClassBranch:
		c.verifyBranch(in)
		return true
	case isa.ClassOf(in.Op) == isa.ClassLoad:
		return c.agenTranslate(in)
	case isa.ClassOf(in.Op) == isa.ClassStore:
		if !c.agenTranslate(in) {
			return false
		}
		c.stqInsert(in)
		return true
	case in.Op == isa.OpDIVD:
		fxu.divFSM.Set(1)
		fxu.divCnt.Set(execLatency(in.Op) - 2)
		return true
	}
	return true
}

// exMiddle runs the interior cycles of multi-cycle ops.
func (c *Core) exMiddle(in isa.Inst, busy uint64) {
	switch {
	case in.Op == isa.OpDIVD:
		if n := c.fxu.divCnt.Get(); n > 0 {
			c.fxu.divCnt.Set(n - 1)
		}
	case fpPipeOp(in.Op):
		c.fpuStage(busy)
	}
}

// fpuStage advances the FPU pipeline latches: operands march down the pipe
// with staged parity. FP latency is 5, so busy==4 and busy==3 are the two
// interior cycles.
func (c *Core) fpuStage(busy uint64) {
	fpu := &c.fpu
	pol := c.polarity(fpu.mode, 1)
	switch busy {
	case 4:
		if parity64(fpu.p1a.Get())^pol != b2u(fpu.pPar.GetBit(0)) {
			c.fail(ChkFPUPipePar)
		}
		fpu.p2.Set(fpu.p1a.Get())
		fpu.pPar.SetBit(2, parity64(fpu.p2.Get())^pol != 0)
		fpu.fsm.Set(4)
	case 3:
		if parity64(fpu.p1b.Get())^pol != b2u(fpu.pPar.GetBit(1)) {
			c.fail(ChkFPUPipePar)
		}
		fpu.p3.Set(fpu.p1b.Get())
		fpu.pPar.SetBit(3, parity64(fpu.p3.Get())^pol != 0)
		fpu.fsm.Set(8)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// agenTranslate computes the effective address and translates it through
// the ERAT, latching the physical address into the EA latch. It returns
// false to stall (reload in flight or a squashing checker fire).
func (c *Core) agenTranslate(in isa.Inst) bool {
	fxu, lsu := &c.fxu, &c.lsu
	if parity64(fxu.opA.Get())^c.polarity(fxu.mode, 1) != fxu.opAPar.Get() {
		if c.fail(ChkFXUOpPar) {
			return false
		}
	}
	ea := fxu.opA.Get() + uint64(int64(in.Imm))
	pa, ok := c.eratLookup(ea)
	if !ok {
		if lsu.dcFSM.Get() == dcIdle {
			lsu.dcFSM.Set(dcERATReload)
			lsu.dcCnt.Set(uint64(c.cfg.ERATPenalty))
			lsu.dcAddr.Set(ea)
		}
		return false
	}
	lsu.ea.Set(pa)
	lsu.eaPar.Set(parity64(pa) ^ c.polarity(lsu.mode, 2))
	return true
}

// stqInsert enqueues the store riding in the EX slot.
func (c *Core) stqInsert(in isa.Inst) {
	lsu := &c.lsu
	pol := c.polarity(lsu.mode, 1)
	t := int(lsu.stqTail.Get()) % stqEntries
	pa := lsu.ea.Get()
	data := c.fxu.opB.Get()
	ctl := uint64(1 | 2) // valid + duplicate-valid
	if in.Op == isa.OpSTW {
		ctl |= 4
	}
	lsu.stqAddr.Entry(t).Set(pa)
	lsu.stqData.Entry(t).Set(data)
	lsu.stqCtl.Entry(t).Set(ctl)
	lsu.stqParA.Entry(t).Set(parity64(pa) ^ pol)
	lsu.stqParD.Entry(t).Set(parity64(data) ^ pol)
	lsu.stqTail.Set(uint64(t+1) % stqEntries)
}

// exFinalize computes the result and its check bits. Returns false to
// stall (cache miss, squashing checker).
func (c *Core) exFinalize(in isa.Inst) bool {
	fxu := &c.fxu
	pol := c.polarity(fxu.mode, 1)

	// Loads: data-cache access cycle.
	if isa.ClassOf(in.Op) == isa.ClassLoad {
		lsu := &c.lsu
		if parity64(lsu.ea.Get())^c.polarity(lsu.mode, 2) != lsu.eaPar.Get() {
			if c.fail(ChkLSUAgenPar) {
				return false
			}
		}
		pa := lsu.ea.Get()
		dw, ok := c.dcLookup(pa)
		if !ok {
			if lsu.dcFSM.Get() == dcIdle {
				lsu.dcFSM.Set(dcRefill)
				lsu.dcCnt.Set(c.nestMissLatency(pa, false))
				lsu.dcAddr.Set(pa)
			}
			return false
		}
		v := dw
		if in.Op == isa.OpLW {
			if pa&4 != 0 {
				v = dw >> 32
			}
			v &= 0xffffffff
		}
		lsu.ldRes.Set(v)
		lsu.ldPar.Set(parity64(v) ^ c.polarity(lsu.mode, 2))
		lsu.perf.Entry(0).Set(lsu.perf.Entry(0).Get() + 1)
		return true
	}

	// Stores have no result to finalize.
	if isa.ClassOf(in.Op) == isa.ClassStore {
		return true
	}

	// FPU pipeline ops: consume p2/p3, produce p4.
	if fpPipeOp(in.Op) {
		fpu := &c.fpu
		polFP := c.polarity(fpu.mode, 1)
		if parity64(fpu.p2.Get())^polFP != b2u(fpu.pPar.GetBit(2)) ||
			parity64(fpu.p3.Get())^polFP != b2u(fpu.pPar.GetBit(3)) {
			if c.fail(ChkFPUPipePar) {
				return false
			}
		}
		a, b := b2f(fpu.p2.Get()), b2f(fpu.p3.Get())
		var r uint64
		switch in.Op {
		case isa.OpFADD:
			r = f2b(a + b)
		case isa.OpFSUB:
			r = f2b(a - b)
		case isa.OpFMUL:
			r = f2b(a * b)
		case isa.OpFDIV:
			r = f2b(a / b)
		case isa.OpFMR:
			r = fpu.p3.Get()
		case isa.OpFCMP:
			r = uint64(fcmpBits(a, b))
		}
		fpu.p4.Set(r)
		fpu.fsm.Set(16)
		if in.Op == isa.OpFCMP {
			fxu.res.Set(r)
			fxu.resPar.Set(parity64(r) ^ pol)
			fxu.resRsd.Set(uint64(bits.Residue3(r)))
		}
		return true
	}

	// Fixed-point / SPR / branch results from the operand latches.
	if parity64(fxu.opA.Get())^pol != fxu.opAPar.Get() ||
		parity64(fxu.opB.Get())^pol != fxu.opBPar.Get() {
		if c.fail(ChkFXUOpPar) {
			return false
		}
	}
	a, b := fxu.opA.Get(), fxu.opB.Get()
	var v uint64
	switch in.Op {
	case isa.OpADDI, isa.OpADDIS, isa.OpADD:
		v = a + b
	case isa.OpSUB:
		v = a - b
	case isa.OpANDI, isa.OpAND:
		v = a & b
	case isa.OpORI, isa.OpOR:
		v = a | b
	case isa.OpXORI, isa.OpXOR:
		v = a ^ b
	case isa.OpSLD:
		v = a << (b & 63)
	case isa.OpSRD:
		v = a >> (b & 63)
	case isa.OpMUL:
		v = a * b
	case isa.OpDIVD:
		v = divd(a, b)
		c.fxu.divFSM.Set(0)
	case isa.OpCMP, isa.OpCMPI:
		v = uint64(cmpBitsSigned(int64(a), int64(b)))
	case isa.OpCMPL:
		v = uint64(cmpBitsUnsigned(a, b))
	case isa.OpBL:
		v = (c.fxu.exPC.Get() + 4) & (1<<48 - 1)
	case isa.OpBDNZ:
		v = a - 1
	case isa.OpMTCTR, isa.OpMTLR, isa.OpMFLR, isa.OpMFCTR:
		v = a
	case isa.OpB, isa.OpBC, isa.OpBLR, isa.OpNOP, isa.OpTESTEND, isa.OpHALT:
		// no result
	default:
		// Undefined opcode reaching execute: precise illegal-op error.
		if !in.Op.Valid() {
			if c.fail(ChkIDUIllegal) {
				return false
			}
			// Checker masked: the corrupt word executes as a nop.
		}
	}
	fxu.res.Set(v)
	fxu.resPar.Set(parity64(v) ^ pol)
	fxu.resRsd.Set(uint64(bits.Residue3(v)))
	return true
}

// verifyBranch resolves a branch in its first EX cycle, repairing a
// misprediction by flushing the frontend; exPNPC is updated to the actual
// next fetch address for the completion checkpoint.
func (c *Core) verifyBranch(in isa.Inst) {
	fxu := &c.fxu
	pc := fxu.exPC.Get()
	seq := (pc + 4) & (1<<48 - 1)
	actual := seq
	taken := false
	switch in.Op {
	case isa.OpB, isa.OpBL:
		taken = true
		actual = (pc + uint64(int64(in.Imm)*4)) & (1<<48 - 1)
	case isa.OpBC:
		taken = crBitSet(uint8(fxu.opA.Get()), in.BI) == (in.BO&1 == 1)
		if taken {
			actual = (pc + uint64(int64(in.Imm)*4)) & (1<<48 - 1)
		}
		// Train the branch history table.
		e := c.ifu.bht.Entry(bhtIndex(pc))
		n := e.Get()
		if taken && n < 3 {
			e.Set(n + 1)
		} else if !taken && n > 0 {
			e.Set(n - 1)
		}
	case isa.OpBDNZ:
		taken = fxu.opA.Get()-1 != 0
		if taken {
			actual = (pc + uint64(int64(in.Imm)*4)) & (1<<48 - 1)
		}
	case isa.OpBLR:
		taken = true
		actual = fxu.opA.Get() & (1<<48 - 1)
	}
	_ = taken
	if actual != fxu.exPNPC.Get() {
		c.flushFrontend(actual)
		fxu.exPNPC.Set(actual)
	}
}

// moveToWB transfers the finished instruction from EX to the WB slot with
// its result, checking the EX-side integrity latches. Returns false when a
// posted checker squashes the move (recovery is imminent).
func (c *Core) moveToWB(in isa.Inst) bool {
	fxu := &c.fxu
	pol := c.polarity(fxu.mode, 1)

	if parity64(fxu.exIR.Get()) != fxu.exIRPar.Get() {
		if c.fail(ChkFXUOpPar) {
			return false
		}
	}

	var res uint64
	_, wrG, _, _, _, wrS := isa.RegSets(in)
	switch {
	case isa.ClassOf(in.Op) == isa.ClassLoad:
		lsu := &c.lsu
		if parity64(lsu.ldRes.Get())^c.polarity(lsu.mode, 2) != lsu.ldPar.Get() {
			if c.fail(ChkLSULdPar) {
				return false
			}
		}
		res = lsu.ldRes.Get()
	case wrG != 0 || wrS != 0:
		// Result rode in the FX result latch; the residue checker guards
		// its live window.
		if uint64(bits.Residue3(fxu.res.Get())) != fxu.resRsd.Get() {
			if c.fail(ChkFXUResidue) {
				return false
			}
		}
		if parity64(fxu.res.Get())^pol != fxu.resPar.Get() {
			if c.fail(ChkFXUResPar) {
				return false
			}
		}
		res = fxu.res.Get()
	}

	switch {
	case fpPipeOp(in.Op) && in.Op != isa.OpFCMP:
		// FP result from the end of the FPU pipe.
		fxu.wbFRes.Set(c.fpu.p4.Get())
		fxu.wbFPar.Set(parity64(c.fpu.p4.Get()) ^ pol)
		c.fpu.fsm.Set(1)
	case in.Op == isa.OpFCMP:
		c.fpu.fsm.Set(1) // fcmp leaves the pipe; its result rides in res
	case in.Op == isa.OpLFD:
		fxu.wbFRes.Set(res)
		fxu.wbFPar.Set(parity64(res) ^ pol)
	}

	fxu.wbIR.Set(fxu.exIR.Get())
	fxu.wbIRPar.Set(parity64(fxu.exIR.Get()))
	fxu.wbRes.Set(res)
	fxu.wbPar.Set(parity64(res) ^ pol)
	if isa.ClassOf(in.Op) == isa.ClassBranch {
		fxu.wbNPC.Set(fxu.exPNPC.Get())
	} else {
		fxu.wbNPC.Set((fxu.exPC.Get() + 4) & (1<<48 - 1))
	}
	fxu.wbV.Set(1)
	return true
}

// wbCycle retires the WB occupant: architected register writes, store
// drain, checkpoint update, completion bookkeeping.
func (c *Core) wbCycle() Event {
	var ev Event
	fxu := &c.fxu
	if fxu.wbV.Get() == 0 {
		return ev
	}
	if !c.unitOK(uFXU) || !c.unitOK(uIDU) {
		return ev // retire logic frozen
	}
	pol := c.polarity(fxu.mode, 1)

	if parity64(fxu.wbIR.Get()) != fxu.wbIRPar.Get() {
		if c.fail(ChkFXUWBPar) {
			return ev
		}
	}
	in := isa.Decode(uint32(fxu.wbIR.Get()))
	_, wrG, _, wrF, _, wrS := isa.RegSets(in)

	// Stores: drain the store queue head through its checkers.
	if isa.ClassOf(in.Op) == isa.ClassStore {
		if !c.stqDrain() {
			return ev
		}
	}

	res := fxu.wbRes.Get()
	if wrG != 0 || wrS != 0 {
		if parity64(res)^pol != fxu.wbPar.Get() {
			if c.fail(ChkFXUWBPar) {
				return ev
			}
		}
	}

	// Architected register writes + checkpoint.
	if wrG != 0 {
		polG := c.polarity(fxu.mode, 0)
		fxu.gpr.Entry(int(in.RT)).Set(res)
		fxu.gprPar.Entry(int(in.RT)).Set(parity64(res) ^ polG)
		c.rut.ckptGPR.Write(int(in.RT), res)
	}
	if wrF != 0 {
		fres := fxu.wbFRes.Get()
		if parity64(fres)^pol != fxu.wbFPar.Get() {
			if c.fail(ChkFXUWBPar) {
				return ev
			}
		}
		polF := c.polarity(c.fpu.mode, 0)
		c.fpu.fpr.Entry(int(in.RT)).Set(fres)
		c.fpu.fprPar.Entry(int(in.RT)).Set(parity64(fres) ^ polF)
		c.rut.ckptFPR.Write(int(in.RT), fres)
	}
	polS := c.polarity(c.idu.mode, 1)
	if wrS&1 != 0 {
		c.idu.cr.Set(res & 15)
		c.idu.crPar.Set(parity64(res&15) ^ polS)
		c.rut.ckptSPR.Write(0, res&15)
	}
	if wrS&2 != 0 {
		c.idu.lr.Set(res)
		c.idu.lrPar.Set(parity64(res) ^ polS)
		c.rut.ckptSPR.Write(1, res)
	}
	if wrS&4 != 0 {
		c.idu.ctr.Set(res)
		c.idu.ctrPar.Set(parity64(res) ^ polS)
		c.rut.ckptSPR.Write(2, res)
	}

	// Completion.
	c.rut.ckptSPR.Write(3, fxu.wbNPC.Get())
	c.Completed++
	c.prv.hangCnt.Set(0)
	c.prv.hangArm.Set(0)
	c.rut.retryCnt.Set(0)
	if p := c.rut.progress.Get(); p < 255 {
		c.rut.progress.Set(p + 1)
	}
	tp := int(c.prv.trcPtr.Get()) % traceDepth
	c.prv.trace.Entry(tp).Set(fxu.wbNPC.Get())
	c.prv.trcPtr.Set(uint64(tp+1) % traceDepth)
	fxu.perf.Entry(0).Set(fxu.perf.Entry(0).Get() + 1)

	switch in.Op {
	case isa.OpTESTEND:
		ev.TestEnd = true
		st := c.ArchState()
		ev.Signature = st.Signature()
	case isa.OpHALT:
		ev.Halted = true
		c.halted = true
	}

	fxu.wbV.Set(0)
	return ev
}

// stqDrain retires the store-queue head to memory (and the data cache if
// present). Returns false when a checker squashed the drain.
func (c *Core) stqDrain() bool {
	lsu := &c.lsu
	pol := c.polarity(lsu.mode, 1)
	h := int(lsu.stqHead.Get()) % stqEntries
	ctl := lsu.stqCtl.Entry(h).Get()
	if ctl&1 != (ctl>>1)&1 {
		if c.fail(ChkLSUSTQVDup) {
			return false
		}
	}
	if ctl&1 == 0 && (ctl>>1)&1 == 0 {
		// Entry lost entirely (double corruption or pointer damage): with
		// the checker on this is caught as a duplicate-valid violation.
		if c.fail(ChkLSUSTQVDup) {
			return false
		}
		// Raw mode: the store silently disappears (an SDC mechanism).
		lsu.stqHead.Set(uint64(h+1) % stqEntries)
		return true
	}
	addr := lsu.stqAddr.Entry(h).Get()
	data := lsu.stqData.Entry(h).Get()
	if parity64(addr)^pol != lsu.stqParA.Entry(h).Get() ||
		parity64(data)^pol != lsu.stqParD.Entry(h).Get() {
		if c.fail(ChkLSUSTQPar) {
			return false
		}
	}
	if ctl&4 != 0 {
		c.mem.Write32(addr, uint32(data))
	} else {
		c.mem.Write64(addr, data)
	}
	c.dcUpdate(addr, c.mem.Read64(addr))
	c.l2Update(addr, c.mem.Read64(addr))
	lsu.stqCtl.Entry(h).Set(0)
	lsu.stqHead.Set(uint64(h+1) % stqEntries)
	return true
}

func divd(a, b uint64) uint64 {
	sb := int64(b)
	if sb == 0 {
		return 0
	}
	sa := int64(a)
	if sa == math.MinInt64 && sb == -1 {
		return 0
	}
	return uint64(sa / sb)
}

func cmpBitsSigned(a, b int64) uint8 {
	switch {
	case a < b:
		return 1 << isa.CRLT
	case a > b:
		return 1 << isa.CRGT
	default:
		return 1 << isa.CREQ
	}
}

func cmpBitsUnsigned(a, b uint64) uint8 {
	switch {
	case a < b:
		return 1 << isa.CRLT
	case a > b:
		return 1 << isa.CRGT
	default:
		return 1 << isa.CREQ
	}
}

func fcmpBits(a, b float64) uint8 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return 1 << isa.CRSO
	case a < b:
		return 1 << isa.CRLT
	case a > b:
		return 1 << isa.CRGT
	default:
		return 1 << isa.CREQ
	}
}

func crBitSet(cr uint8, bi uint8) bool { return cr&(1<<bi) != 0 }
