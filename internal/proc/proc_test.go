package proc

import (
	"math/rand/v2"
	"testing"

	"sfi/internal/archsim"
	"sfi/internal/isa"
	"sfi/internal/mem"
)

// runBoth executes the same program on the golden model and the core and
// returns both, failing the test if the core does not halt.
func runBoth(t *testing.T, words []uint32, maxCycles int) (*archsim.Sim, *Core) {
	t.Helper()
	g := archsim.New(mem.New(DefaultConfig().MemBytes))
	g.Mem.LoadProgram(0, words)
	for i := 0; i < maxCycles && !g.Halted; i++ {
		g.Step()
	}
	if !g.Halted {
		t.Fatal("golden model did not halt")
	}

	c := New(DefaultConfig())
	c.Mem().LoadProgram(0, words)
	for i := 0; i < maxCycles; i++ {
		c.Step()
		if c.Halted() {
			break
		}
		if c.Checkstopped() {
			t.Fatal("core checkstopped on a fault-free run")
		}
	}
	if !c.Halted() {
		t.Fatalf("core did not halt in %d cycles (completed %d)", maxCycles, c.Completed)
	}
	return g, c
}

// checkMatch compares golden and core architected state and memory.
func checkMatch(t *testing.T, g *archsim.Sim, c *Core) {
	t.Helper()
	st := c.ArchState()
	for i := 0; i < 32; i++ {
		if st.GPR[i] != g.GPR[i] {
			t.Errorf("GPR[%d] = %#x, golden %#x", i, st.GPR[i], g.GPR[i])
		}
		if st.FPR[i] != g.FPR[i] {
			t.Errorf("FPR[%d] = %#x, golden %#x", i, st.FPR[i], g.FPR[i])
		}
	}
	if st.CR0 != g.CR0 {
		t.Errorf("CR0 = %#x, golden %#x", st.CR0, g.CR0)
	}
	if st.LR != g.LR {
		t.Errorf("LR = %#x, golden %#x", st.LR, g.LR)
	}
	if st.CTR != g.CTR {
		t.Errorf("CTR = %#x, golden %#x", st.CTR, g.CTR)
	}
	if !c.Mem().Equal(g.Mem) {
		t.Error("memory contents diverged from golden model")
	}
	if st.Signature() != g.State.Signature() {
		t.Error("architected signatures differ")
	}
}

func runProgram(t *testing.T, src string) (*archsim.Sim, *Core) {
	t.Helper()
	g, c := runBoth(t, isa.MustAssemble(src), 100000)
	checkMatch(t, g, c)
	return g, c
}

func TestCoreArithmeticMatchesGolden(t *testing.T) {
	runProgram(t, `
		addi r1, r0, 7
		addi r2, r0, -13
		add  r3, r1, r2
		sub  r4, r1, r2
		mul  r5, r1, r2
		divd r6, r2, r1
		and  r7, r1, r2
		or   r8, r1, r2
		xor  r9, r1, r2
		addi r10, r0, 3
		sld  r11, r1, r10
		srd  r12, r2, r10
		addis r13, r0, 2
		andi r14, r2, 0xff00
		ori  r15, r1, 0x1234
		xori r16, r2, 0xffff
		halt
	`)
}

func TestCoreLoadsStoresMatchGolden(t *testing.T) {
	runProgram(t, `
		addi r1, r0, 0x4000
		addi r2, r0, 1234
		std  r2, 0(r1)
		ld   r3, 0(r1)
		stw  r2, 8(r1)
		lw   r4, 8(r1)
		addi r5, r0, -1
		std  r5, 16(r1)
		lw   r6, 20(r1)
		stw  r5, 24(r1)
		ld   r7, 24(r1)
		halt
	`)
}

func TestCoreBranchesMatchGolden(t *testing.T) {
	runProgram(t, `
		addi r1, r0, 10
		mtctr r1
		addi r2, r0, 0
	loop:
		addi r2, r2, 3
		bdnz loop
		cmpi r2, 30
		bc   1, 2, good
		addi r3, r0, 999
	good:
		addi r4, r0, 1
		bl   sub
		addi r6, r0, 6
		halt
	sub:
		addi r5, r0, 5
		blr
	`)
}

func TestCoreConditionalBranchBothWays(t *testing.T) {
	runProgram(t, `
		addi r1, r0, 5
		addi r2, r0, 9
		cmp  r1, r2
		bc   1, 0, less
		addi r10, r0, 111
	less:
		cmpl r2, r1
		bc   1, 0, never
		addi r11, r0, 222
	never:
		cmpi r1, 5
		bc   0, 2, alsonever
		addi r12, r0, 333
	alsonever:
		halt
	`)
}

func TestCoreFloatingPointMatchesGolden(t *testing.T) {
	runProgram(t, `
		addi r1, r0, 0x4000
		addi r2, r0, 3
		std  r2, 0(r1)
		addi r3, r0, 5
		std  r3, 8(r1)
		lfd  f1, 0(r1)
		lfd  f2, 8(r1)
		fadd f3, f1, f2
		fsub f4, f2, f1
		fmul f5, f1, f2
		fdiv f6, f2, f1
		fmr  f7, f5
		stfd f3, 16(r1)
		fcmp f1, f2
		halt
	`)
}

func TestCoreSPRMovesMatchGolden(t *testing.T) {
	runProgram(t, `
		addi  r1, r0, 77
		mtctr r1
		mfctr r2
		addi  r3, r0, 88
		mtlr  r3
		mflr  r4
		halt
	`)
}

func TestCoreTestEndSignatureMatchesGolden(t *testing.T) {
	words := isa.MustAssemble(`
		addi r1, r0, 42
		addi r3, r0, 7
		testend
		addi r4, r0, 9
		testend
		halt
	`)
	g := archsim.New(mem.New(DefaultConfig().MemBytes))
	g.Mem.LoadProgram(0, words)
	var goldenSigs []uint64
	for !g.Halted {
		r := g.Step()
		if r.Event == archsim.EventTestEnd {
			goldenSigs = append(goldenSigs, r.Signature)
		}
	}

	c := New(DefaultConfig())
	c.Mem().LoadProgram(0, words)
	var coreSigs []uint64
	for i := 0; i < 100000 && !c.Halted(); i++ {
		ev := c.Step()
		if ev.TestEnd {
			coreSigs = append(coreSigs, ev.Signature)
		}
	}
	if len(coreSigs) != len(goldenSigs) {
		t.Fatalf("core saw %d testends, golden %d", len(coreSigs), len(goldenSigs))
	}
	for i := range coreSigs {
		if coreSigs[i] != goldenSigs[i] {
			t.Errorf("testend %d signature %#x, golden %#x", i, coreSigs[i], goldenSigs[i])
		}
	}
}

// genRandomProgram builds a terminating random program exercising the whole
// ISA, in the style of an AVP testcase.
func genRandomProgram(rng *rand.Rand, n int) []uint32 {
	var src []isa.Inst
	emit := func(in isa.Inst) { src = append(src, in) }
	// Prologue: materialize constants in r1..r8, set up a data base in r9.
	for r := uint8(1); r <= 8; r++ {
		emit(isa.Inst{Op: isa.OpADDI, RT: r, RA: 0, Imm: int32(rng.IntN(8192) - 4096)})
	}
	emit(isa.Inst{Op: isa.OpADDIS, RT: 9, RA: 0, Imm: 2}) // r9 = 0x20000
	// Preload a couple of FPRs via memory.
	emit(isa.Inst{Op: isa.OpSTD, RT: 1, RA: 9, Imm: 0})
	emit(isa.Inst{Op: isa.OpSTD, RT: 2, RA: 9, Imm: 8})
	emit(isa.Inst{Op: isa.OpLFD, RT: 1, RA: 9, Imm: 0})
	emit(isa.Inst{Op: isa.OpLFD, RT: 2, RA: 9, Imm: 8})

	reg := func() uint8 { return uint8(1 + rng.IntN(8)) }
	disp := func() int32 { return int32(8 * rng.IntN(16)) }
	for i := 0; i < n; i++ {
		switch rng.IntN(12) {
		case 0:
			emit(isa.Inst{Op: isa.OpADD, RT: reg(), RA: reg(), RB: reg()})
		case 1:
			emit(isa.Inst{Op: isa.OpSUB, RT: reg(), RA: reg(), RB: reg()})
		case 2:
			emit(isa.Inst{Op: isa.OpMUL, RT: reg(), RA: reg(), RB: reg()})
		case 3:
			emit(isa.Inst{Op: isa.OpDIVD, RT: reg(), RA: reg(), RB: reg()})
		case 4:
			emit(isa.Inst{Op: isa.OpSTD, RT: reg(), RA: 9, Imm: disp()})
		case 5:
			emit(isa.Inst{Op: isa.OpLD, RT: reg(), RA: 9, Imm: disp()})
		case 6:
			emit(isa.Inst{Op: isa.OpSTW, RT: reg(), RA: 9, Imm: disp()})
		case 7:
			emit(isa.Inst{Op: isa.OpLW, RT: reg(), RA: 9, Imm: disp()})
		case 8:
			emit(isa.Inst{Op: isa.OpCMP, RA: reg(), RB: reg()})
			// Forward conditional skip of one instruction.
			emit(isa.Inst{Op: isa.OpBC, BO: uint8(rng.IntN(2)), BI: uint8(rng.IntN(3)), Imm: 2})
			emit(isa.Inst{Op: isa.OpXORI, RT: reg(), RA: reg(), Imm: int32(rng.IntN(65536))})
		case 9:
			emit(isa.Inst{Op: isa.OpFADD, RT: uint8(3 + rng.IntN(4)), RA: uint8(1 + rng.IntN(2)), RB: uint8(1 + rng.IntN(2))})
		case 10:
			emit(isa.Inst{Op: isa.OpFMUL, RT: uint8(3 + rng.IntN(4)), RA: uint8(1 + rng.IntN(2)), RB: uint8(1 + rng.IntN(2))})
		case 11:
			// Small counted loop.
			cnt := int32(2 + rng.IntN(4))
			emit(isa.Inst{Op: isa.OpADDI, RT: 10, RA: 0, Imm: cnt})
			emit(isa.Inst{Op: isa.OpMTCTR, RA: 10})
			emit(isa.Inst{Op: isa.OpADDI, RT: 11, RA: 11, Imm: 1})
			emit(isa.Inst{Op: isa.OpBDNZ, Imm: -1})
		}
	}
	emit(isa.Inst{Op: isa.OpTESTEND})
	emit(isa.Inst{Op: isa.OpHALT})

	words := make([]uint32, len(src))
	for i, in := range src {
		words[i] = isa.Encode(in)
	}
	return words
}

// TestCoreRandomDifferential is the heavyweight equivalence check: random
// ISA-wide programs must produce bit-identical architected state and memory
// on the core and the golden model.
func TestCoreRandomDifferential(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 99))
		words := genRandomProgram(rng, 60)
		g, c := runBoth(t, words, 200000)
		checkMatch(t, g, c)
		if t.Failed() {
			t.Fatalf("divergence in trial %d", trial)
		}
	}
}

func TestCoreCPIIsSane(t *testing.T) {
	_, c := runProgram(t, `
		addi r1, r0, 100
		mtctr r1
	loop:
		addi r2, r2, 1
		addi r3, r3, 2
		add  r4, r2, r3
		bdnz loop
		halt
	`)
	cpi := float64(c.Cycle) / float64(c.Completed)
	if cpi < 1.0 || cpi > 12 {
		t.Errorf("CPI = %.2f out of sane range [1, 12]", cpi)
	}
}

func TestCoreNoSpuriousCheckerFires(t *testing.T) {
	_, c := runProgram(t, `
		addi r1, r0, 50
		mtctr r1
	loop:
		addi r2, r2, 7
		std  r2, 0(r9)
		ld   r3, 0(r9)
		cmp  r2, r3
		bdnz loop
		halt
	`)
	if c.Recoveries != 0 {
		t.Errorf("fault-free run performed %d recoveries", c.Recoveries)
	}
	if c.AnyFIR() {
		t.Error("fault-free run set FIR bits")
	}
	for _, ch := range c.Checkers() {
		if ch.Fired != 0 {
			t.Errorf("checker %s fired %d times on a fault-free run", ch.Name, ch.Fired)
		}
	}
}
