package proc

import "sfi/internal/bits"

// Recovery FSM states (one-hot; the pervasive one-hot checker escalates any
// corruption of this register to a checkstop — errors inside the recovery
// unit are not retryable).
const (
	rutIdle    = 1 << 0
	rutReset   = 1 << 1
	rutRestore = 1 << 2
	rutWait    = 1 << 3
)

// rutCaptureParity computes the parity over the RUT's error-capture and
// sequencing registers, which live in the un-retryable recovery domain.
func (c *Core) rutCaptureParity() uint64 {
	r := &c.rut
	return parity64(r.errSrc.Get() ^ r.errCycle.Get() ^ r.retryCnt.Get() ^
		r.waitCnt.Get() ^ r.progress.Get())
}

// rutBeginRecovery starts a retry: it escalates to checkstop when the RUT
// is disabled (a MODE bit) or the retry threshold is exceeded without
// forward progress, otherwise it flushes the pipeline and begins the
// recovery wait.
func (c *Core) rutBeginRecovery() {
	if c.prv.modeRecovery.Get()&1 == 0 {
		c.checkstop()
		return
	}
	n := c.rut.retryCnt.Get()
	if int(n) >= c.cfg.RetryLimit {
		c.checkstop()
		return
	}
	c.rut.retryCnt.Set(n + 1)
	c.rut.progress.Set(0)
	c.rut.fsm.Set(rutReset)
	c.rut.waitCnt.Set(uint64(c.cfg.RecoveryCycles))
	// The pipeline is quenched immediately so that in-flight corruption
	// cannot re-trigger checkers while the retry sequences.
	c.flushPipeline()
}

// rutCycle advances the recovery sequencer.
func (c *Core) rutCycle() {
	if !c.unitOK(uRUT) {
		return // frozen recovery unit: the retry never completes (hang)
	}
	rut := &c.rut
	switch rut.fsm.Get() {
	case rutReset:
		if n := rut.waitCnt.Get(); n > 0 {
			rut.waitCnt.Set(n - 1)
			return
		}
		rut.fsm.Set(rutRestore)
	case rutRestore:
		c.restoreCheckpoint()
		if !c.Checkstopped() {
			rut.fsm.Set(rutWait)
			rut.waitCnt.Set(4)
		}
	case rutWait:
		if n := rut.waitCnt.Get(); n > 0 {
			rut.waitCnt.Set(n - 1)
			return
		}
		rut.fsm.Set(rutIdle)
		c.Recoveries++
		c.prv.hangCnt.Set(0)
	default:
		// Corrupted FSM state: the one-hot checker (prvCycle) checkstops;
		// with it masked the machine sits here forever (hang).
	}
}

// restoreCheckpoint rewrites the architected state from the ECC-protected
// checkpoint arrays. An uncorrectable checkpoint error is fatal.
func (c *Core) restoreCheckpoint() {
	rut := &c.rut
	read := func(p interface {
		Read(int) (uint64, bits.ECCResult)
	}, i int) (uint64, bool) {
		v, res := p.Read(i)
		if res == bits.ECCUncorrectable {
			c.fail(ChkRUTCkptUE)
			return 0, false
		}
		return v, true
	}

	polG := c.polarity(c.fxu.mode, 0)
	for i := 0; i < 32; i++ {
		v, ok := read(rut.ckptGPR, i)
		if !ok {
			return
		}
		c.fxu.gpr.Entry(i).Set(v)
		c.fxu.gprPar.Entry(i).Set(parity64(v) ^ polG)
	}
	polF := c.polarity(c.fpu.mode, 0)
	for i := 0; i < 32; i++ {
		v, ok := read(rut.ckptFPR, i)
		if !ok {
			return
		}
		c.fpu.fpr.Entry(i).Set(v)
		c.fpu.fprPar.Entry(i).Set(parity64(v) ^ polF)
	}
	polS := c.polarity(c.idu.mode, 1)
	vals := [4]uint64{}
	for i := 0; i < 4; i++ {
		v, ok := read(rut.ckptSPR, i)
		if !ok {
			return
		}
		vals[i] = v
	}
	c.idu.cr.Set(vals[0] & 15)
	c.idu.crPar.Set(parity64(vals[0]&15) ^ polS)
	c.idu.lr.Set(vals[1])
	c.idu.lrPar.Set(parity64(vals[1]) ^ polS)
	c.idu.ctr.Set(vals[2])
	c.idu.ctrPar.Set(parity64(vals[2]) ^ polS)
	c.redirectFetch(vals[3])
}

// flushPipeline resets every in-flight micro-architectural structure to its
// quiesced state: fetch buffer, decode latches, execute slot, store queue,
// miss FSMs and the ERAT. Scan rings, predictors, performance counters and
// the debug trace are deliberately untouched — recovery does not clean
// those, which is why persistent scan-ring faults escalate.
func (c *Core) flushPipeline() {
	ifu, idu, fxu, fpu, lsu := &c.ifu, &c.idu, &c.fxu, &c.fpu, &c.lsu

	for i := 0; i < fbEntries; i++ {
		ifu.fbV.Entry(i).Set(0)
	}
	ifu.fbHead.Set(0)
	ifu.fbTail.Set(0)
	ifu.fbCnt.Set(0)
	ifu.icFSM.Set(0)

	idu.d1V.Set(0)
	idu.d2V.Set(0)
	idu.dispFSM.Set(1)
	idu.ucSeq.Set(0)

	fxu.exV.Set(0)
	fxu.exBusy.Set(0)
	fxu.wbV.Set(0)
	fxu.divFSM.Set(0)
	fxu.divCnt.Set(0)

	fpu.fsm.Set(1)

	for i := 0; i < stqEntries; i++ {
		lsu.stqCtl.Entry(i).Set(0)
	}
	lsu.stqHead.Set(0)
	lsu.stqTail.Set(0)
	for i := 0; i < eratSize; i++ {
		lsu.eratCtl.Entry(i).Set(0)
	}
	for i := 0; i < lmqEntries; i++ {
		lsu.lmqCtl.Entry(i).Set(0)
	}
	lsu.dcFSM.Set(dcIdle)
	lsu.dcCnt.Set(0)

	if c.cfg.EnableNest {
		for i := 0; i < rqEntries; i++ {
			c.nest.rqCtl.Entry(i).Set(0)
		}
	}
}
