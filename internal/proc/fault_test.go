package proc

import (
	"testing"

	"sfi/internal/isa"
	"sfi/internal/latch"
)

// loopProgram is a small endless workload: it keeps completing instructions
// so hang detection and recovery behaviour can be observed.
const loopProgram = `
	addi r1, r0, 1
	addi r9, r0, 0x4000
start:
	addi r2, r2, 3
	std  r2, 0(r9)
	ld   r3, 0(r9)
	add  r4, r2, r3
	cmp  r2, r3
	b    start
`

func newLoopedCore(t *testing.T) *Core {
	t.Helper()
	c := New(DefaultConfig())
	c.Mem().LoadProgram(0, isa.MustAssemble(loopProgram))
	// Warm up out of the cold-start misses.
	for i := 0; i < 500; i++ {
		c.Step()
	}
	if c.Completed == 0 || c.Checkstopped() {
		t.Fatal("warm-up failed")
	}
	return c
}

func run(c *Core, n int) {
	for i := 0; i < n; i++ {
		c.Step()
		if c.Checkstopped() {
			return
		}
	}
}

// flipGroupBit flips bit b of entry e in a named latch group.
func flipGroupBit(t *testing.T, c *Core, group string, e, b int) {
	t.Helper()
	g, ok := c.DB().GroupByName(group)
	if !ok {
		t.Fatalf("no latch group %q", group)
	}
	bit := groupLogicalBit(c.DB(), g, e, b)
	c.DB().Flip(bit)
}

// groupLogicalBit computes the database bit index of (entry, bit) in g.
func groupLogicalBit(db *latch.DB, g *latch.Group, e, b int) int {
	// Probe: scan the group's logical range for the matching location.
	for bit := 0; bit < db.TotalBits(); bit++ {
		gg, ee, bb := db.Locate(bit)
		if gg == g && ee == e && bb == b {
			return bit
		}
	}
	panic("bit not found")
}

func TestGPRFlipRecoversOnRead(t *testing.T) {
	c := newLoopedCore(t)
	// r2 is read every loop iteration: flip a bit in it.
	flipGroupBit(t, c, "fxu.gpr", 2, 17)
	run(c, 2000)
	if c.Checkstopped() {
		t.Fatal("checkstopped instead of recovering")
	}
	if c.Recoveries == 0 {
		t.Fatal("no recovery after GPR corruption")
	}
	if !c.FIRBit(ChkFXUGPRPar) {
		t.Error("GPR parity FIR bit not set")
	}
	id, _, ok := c.FirstError()
	if !ok || id != ChkFXUGPRPar {
		t.Errorf("first error = %d,%v, want gpr parity", id, ok)
	}
}

func TestGPRFlipInUnusedRegisterVanishes(t *testing.T) {
	c := newLoopedCore(t)
	// r20 is never touched by the loop.
	flipGroupBit(t, c, "fxu.gpr", 20, 5)
	run(c, 2000)
	if c.Recoveries != 0 || c.Checkstopped() || c.AnyFIR() {
		t.Error("flip in an unused register had machine-visible effects")
	}
}

func TestSTQStaleEntryFlipVanishes(t *testing.T) {
	c := newLoopedCore(t)
	// Entry 20 of the store queue is never reached by this short loop's
	// single in-flight store (head cycles 0..23 slowly; give an invalid
	// entry's data latch a flip: it is not covered while invalid).
	g, _ := c.DB().GroupByName("lsu.stq.ctl")
	_ = g
	flipGroupBit(t, c, "lsu.stq.data", (int(c.lsu.stqTail.Get())+5)%stqEntries, 33)
	run(c, 500)
	if c.Recoveries != 0 || c.Checkstopped() {
		t.Error("flip in invalid STQ entry had machine-visible effects")
	}
}

func TestSTQValidEntryFlipCaughtByContinuousChecker(t *testing.T) {
	c := newLoopedCore(t)
	// Force a stale-but-valid situation: set valid+dup on an unused entry
	// with consistent parity, then flip its data. The continuous checker
	// must catch it even though the entry would never drain.
	e := (int(c.lsu.stqTail.Get()) + 7) % stqEntries
	pol := c.polarity(c.lsu.mode, 1)
	c.lsu.stqAddr.Entry(e).Set(0x4000)
	c.lsu.stqData.Entry(e).Set(99)
	c.lsu.stqParA.Entry(e).Set(parity64(0x4000) ^ pol)
	c.lsu.stqParD.Entry(e).Set(parity64(99) ^ pol)
	c.lsu.stqCtl.Entry(e).Set(3)
	// The harness-forced entry is consistent; now corrupt it.
	flipGroupBit(t, c, "lsu.stq.data", e, 12)
	run(c, 200)
	if !c.FIRBit(ChkLSUSTQPar) {
		t.Error("continuous STQ checker did not fire")
	}
}

func TestERATFlipRecoversViaContinuousChecker(t *testing.T) {
	c := newLoopedCore(t)
	// Find a valid ERAT entry and corrupt its PPN.
	found := -1
	for i := 0; i < eratSize; i++ {
		if c.lsu.eratCtl.Entry(i).Get()&1 != 0 {
			found = i
			break
		}
	}
	if found < 0 {
		t.Fatal("no valid ERAT entry after warm-up")
	}
	flipGroupBit(t, c, "lsu.erat.ppn", found, 3)
	run(c, 2000)
	if c.Recoveries == 0 {
		t.Fatal("ERAT corruption not recovered")
	}
	if !c.FIRBit(ChkLSUERATPar) {
		t.Error("ERAT FIR bit not set")
	}
}

func TestBHTFlipVanishes(t *testing.T) {
	c := newLoopedCore(t)
	before := c.Completed
	for i := 0; i < 32; i++ {
		flipGroupBit(t, c, "ifu.bht", i*7%bhtEntries, i%2)
	}
	run(c, 2000)
	if c.Recoveries != 0 || c.Checkstopped() || c.AnyFIR() {
		t.Error("BHT corruption had machine-visible effects")
	}
	if c.Completed == before {
		t.Error("machine stopped completing after BHT flips")
	}
}

func TestModeCriticalFlipHangs(t *testing.T) {
	c := newLoopedCore(t)
	// Flip a bit in the IFU MODE critical segment: fetch freezes and the
	// watchdog eventually declares a hang (recovery cannot clean scan
	// state, so the hang persists).
	flipGroupBit(t, c, "ifu.mode", 0, modeCriticalLo+2)
	run(c, 3*DefaultConfig().HangLimit+1000)
	if c.Checkstopped() {
		t.Fatal("expected hang, got checkstop")
	}
	if !c.HangDetected() {
		t.Error("core hang not detected after freezing the IFU")
	}
}

func TestModeIntegrityFlipCheckstops(t *testing.T) {
	c := newLoopedCore(t)
	flipGroupBit(t, c, "lsu.mode", 0, modeIntegrityLo+5)
	run(c, 100)
	if !c.Checkstopped() {
		t.Fatal("ring integrity corruption did not checkstop")
	}
	if !c.FIRBit(ChkRingLSU) {
		t.Error("ring FIR bit not set")
	}
}

func TestModePolarityFlipIsOneShotRecovery(t *testing.T) {
	c := newLoopedCore(t)
	// Flip the FXU GPR parity polarity bit: every register read looks
	// corrupt until the restore rewrites parity under the new polarity.
	flipGroupBit(t, c, "fxu.mode", 0, modePolarityLo)
	run(c, 3000)
	if c.Checkstopped() {
		t.Fatal("polarity flip escalated to checkstop")
	}
	if c.Recoveries == 0 {
		t.Fatal("polarity flip did not trigger recovery")
	}
	recov := c.Recoveries
	before := c.Completed
	run(c, 2000)
	if c.Recoveries != recov {
		t.Errorf("recoveries kept occurring after polarity resync (%d -> %d)",
			recov, c.Recoveries)
	}
	if c.Completed <= before {
		t.Error("machine did not resume completing after polarity recovery")
	}
}

func TestGPTREngageFlipHangs(t *testing.T) {
	c := newLoopedCore(t)
	flipGroupBit(t, c, "idu.gptr", 0, gptrEngageLo+1)
	run(c, 3*DefaultConfig().HangLimit+1000)
	if !c.HangDetected() && !c.Checkstopped() {
		t.Error("GPTR test-engage flip did not stop the core")
	}
}

func TestRecoveryDisabledEscalatesToCheckstop(t *testing.T) {
	c := newLoopedCore(t)
	c.SetRecoveryEnabled(false)
	flipGroupBit(t, c, "fxu.gpr", 2, 9)
	run(c, 2000)
	if !c.Checkstopped() {
		t.Error("recoverable error with RUT disabled did not checkstop")
	}
	if c.Recoveries != 0 {
		t.Error("recovery ran while disabled")
	}
}

func TestCheckersMaskedNoRecovery(t *testing.T) {
	c := newLoopedCore(t)
	c.SetCheckersEnabled(false)
	flipGroupBit(t, c, "fxu.gpr", 2, 9)
	run(c, 2000)
	if c.Recoveries != 0 || c.Checkstopped() {
		t.Error("masked checkers still acted on an error")
	}
	// The checker saw the error even though it was masked.
	if c.CheckerByID(ChkFXUGPRPar).Fired == 0 {
		t.Error("masked checker did not observe the error")
	}
}

func TestFIRCorruptionCheckstops(t *testing.T) {
	c := newLoopedCore(t)
	flipGroupBit(t, c, "prv.fir", 0, 40)
	run(c, 50)
	if !c.Checkstopped() {
		t.Error("FIR corruption did not checkstop")
	}
}

func TestRUTFSMCorruptionCheckstops(t *testing.T) {
	c := newLoopedCore(t)
	flipGroupBit(t, c, "rut.fsm", 0, 5) // second bit set: not one-hot
	run(c, 50)
	if !c.Checkstopped() {
		t.Error("recovery FSM corruption did not checkstop")
	}
	if !c.FIRBit(ChkRUTFSM) {
		t.Error("RUT FSM FIR bit not set")
	}
}

func TestCheckpointArrayStrikeIsCorrected(t *testing.T) {
	c := newLoopedCore(t)
	// Entry 20 (r20's checkpoint) is never rewritten by the loop, so only
	// the background scrubber can heal it.
	c.rut.ckptGPR.FlipBit(20, 11)
	run(c, 4000)
	if c.Checkstopped() {
		t.Fatal("single checkpoint bit flip checkstopped")
	}
	if c.rut.ckptGPR.Corrected == 0 {
		t.Error("checkpoint strike not scrubbed/corrected")
	}
}

func TestRecoveryRestoresArchitectedState(t *testing.T) {
	c := newLoopedCore(t)
	goldenR4 := c.fxu.gpr.Entry(4).Get()
	_ = goldenR4
	// Corrupt a live register, let recovery run, then confirm the machine
	// still produces consistent results (r3 == r2 after each iteration's
	// store+load round trip implies state was repaired).
	flipGroupBit(t, c, "fxu.gpr", 2, 44)
	run(c, 3000)
	if c.Checkstopped() || c.Recoveries == 0 {
		t.Fatal("expected a clean recovery")
	}
	run(c, 500)
	r2 := c.fxu.gpr.Entry(2).Get()
	r3 := c.fxu.gpr.Entry(3).Get()
	if r2 != r3 && r3 != 0 {
		// r3 lags r2 by at most one iteration; allow r3 == r2-3 as well.
		if r3 != r2-3 {
			t.Errorf("post-recovery state inconsistent: r2=%d r3=%d", r2, r3)
		}
	}
}

func TestWatchdogHangRecoveryOnStuckMissFSM(t *testing.T) {
	c := newLoopedCore(t)
	// Invalidate the loop's data line so the next load misses, then
	// corrupt the miss FSM to an undefined state: the refill never
	// completes, the load is stuck in EX, completion stops, and the
	// watchdog's hang recovery must flush the FSM and restore progress.
	c.lsu.dcTag.Write(lineIndex(0x4000, dcLines), 0)
	for i := 0; i < 200 && c.lsu.dcFSM.Get() != dcRefill; i++ {
		c.Step()
	}
	if c.lsu.dcFSM.Get() != dcRefill {
		t.Fatal("could not provoke a dcache refill")
	}
	c.lsu.dcFSM.Set(3) // undefined FSM state
	before := c.Completed
	run(c, 3*DefaultConfig().HangLimit)
	if c.Checkstopped() {
		t.Fatal("stuck EX escalated to checkstop")
	}
	if c.HangDetected() {
		t.Fatal("hang recovery failed to restore progress")
	}
	if c.Completed <= before {
		t.Error("no forward progress after hang recovery")
	}
	if !c.FIRBit(ChkPRVWatchdog) {
		t.Error("watchdog FIR bit not set")
	}
}

func TestCheckerMaskModeBitFlipIsBenign(t *testing.T) {
	c := newLoopedCore(t)
	// Flipping a checker-enable MODE bit disables one checker: with no
	// error present this has no machine-visible effect.
	flipGroupBit(t, c, "prv.mode.checker", 0, ChkFXUResidue)
	run(c, 1000)
	if c.Recoveries != 0 || c.Checkstopped() || c.AnyFIR() {
		t.Error("checker-mask flip had machine-visible effects")
	}
}

func TestTraceArrayFlipVanishes(t *testing.T) {
	c := newLoopedCore(t)
	for i := 0; i < 20; i++ {
		flipGroupBit(t, c, "prv.trace", i, i)
	}
	run(c, 1000)
	if c.Recoveries != 0 || c.Checkstopped() || c.AnyFIR() {
		t.Error("debug trace corruption had machine-visible effects")
	}
}

func TestStickyRecurringErrorEscalates(t *testing.T) {
	c := newLoopedCore(t)
	// Emulate a stuck-at-1 fault on bit 17 of r2: the loop keeps r2 small,
	// so the forced bit is always wrong, re-corrupting the register after
	// every restore before any instruction can complete.
	g, _ := c.DB().GroupByName("fxu.gpr")
	bit := groupLogicalBit(c.DB(), g, 2, 17)
	for i := 0; i < 20000 && !c.Checkstopped(); i++ {
		c.DB().Poke(bit, true)
		c.Step()
	}
	// A permanently recurring error without forward progress must not
	// loop forever: the retry threshold checkstops.
	if !c.Checkstopped() {
		t.Error("permanently faulty latch did not escalate to checkstop")
	}
}

func TestLatchPopulationShape(t *testing.T) {
	c := New(DefaultConfig())
	db := c.DB()
	total := db.TotalBits()
	if total < 20000 || total > 120000 {
		t.Errorf("latch population %d outside expected band", total)
	}
	// LSU must be the largest unit, as in the paper.
	counts := make(map[string]int)
	for _, u := range Units {
		counts[u] = db.CountBits(latch.ByUnit(u))
	}
	for _, u := range Units {
		if u != UnitLSU && counts[u] > counts[UnitLSU] {
			t.Errorf("unit %s (%d bits) larger than LSU (%d bits)",
				u, counts[u], counts[UnitLSU])
		}
	}
	// All four latch types must be represented.
	for _, ty := range latch.Types {
		if db.CountBits(latch.ByType(ty)) == 0 {
			t.Errorf("no latches of type %v", ty)
		}
	}
}
