package proc

import (
	"math/rand/v2"
	"testing"

	"sfi/internal/archsim"
	"sfi/internal/isa"
	"sfi/internal/latch"
	"sfi/internal/mem"
)

func nestConfig() Config {
	cfg := DefaultConfig()
	cfg.EnableNest = true
	return cfg
}

func newNestLoopedCore(t *testing.T) *Core {
	t.Helper()
	c := New(nestConfig())
	c.Mem().LoadProgram(0, isa.MustAssemble(loopProgram))
	for i := 0; i < 1500; i++ {
		c.Step()
	}
	if c.Completed == 0 || c.Checkstopped() {
		t.Fatal("warm-up failed")
	}
	return c
}

func TestNestDifferentialAgainstGolden(t *testing.T) {
	// The L2 path must not change architected behaviour: re-run the
	// random differential with the periphery enabled.
	words := isa.MustAssemble(`
		addi r1, r0, 0x4000
		addi r2, r0, 777
		std  r2, 0(r1)
		ld   r3, 0(r1)
		addi r4, r0, 100
		mtctr r4
	loop:
		addi r5, r5, 1
		std  r5, 8(r1)
		ld   r6, 8(r1)
		bdnz loop
		testend
		halt
	`)
	c := New(nestConfig())
	c.Mem().LoadProgram(0, words)
	for i := 0; i < 200000 && !c.Halted(); i++ {
		c.Step()
		if c.Checkstopped() {
			t.Fatal("checkstop on fault-free nest run")
		}
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	st := c.ArchState()
	if st.GPR[3] != 777 || st.GPR[5] != 100 || st.GPR[6] != 100 {
		t.Errorf("wrong results through the L2 path: r3=%d r5=%d r6=%d",
			st.GPR[3], st.GPR[5], st.GPR[6])
	}
	if c.Recoveries != 0 || c.AnyFIR() {
		t.Error("fault-free nest run had error activity")
	}
}

func TestNestAddsLatchesAndArrays(t *testing.T) {
	plain := New(DefaultConfig())
	nest := New(nestConfig())
	if nest.DB().TotalBits() <= plain.DB().TotalBits() {
		t.Error("nest added no latches")
	}
	if nest.DB().CountBits(latch.ByUnit(UnitNEST)) == 0 {
		t.Error("no NEST-unit latches")
	}
	if len(nest.Arrays()) != len(plain.Arrays())+2 {
		t.Errorf("nest arrays = %d, want +2", len(nest.Arrays()))
	}
	// Plain cores must not expose NEST latches.
	if plain.DB().CountBits(latch.ByUnit(UnitNEST)) != 0 {
		t.Error("plain core has NEST latches")
	}
}

func TestNestL2HitIsFasterThanMemory(t *testing.T) {
	c := New(nestConfig())
	// First touch: L2 miss (installs), cost MissPenalty+NestPenalty.
	lat1 := c.nestMissLatency(0x8000, false)
	// Second touch of the same line: L2 hit.
	lat2 := c.nestMissLatency(0x8000, false)
	if lat1 != uint64(c.cfg.MissPenalty+c.cfg.NestPenalty) {
		t.Errorf("cold miss latency %d", lat1)
	}
	if lat2 != uint64(c.cfg.MissPenalty) {
		t.Errorf("L2 hit latency %d", lat2)
	}
}

func TestNestRQFlipCaughtByContinuousChecker(t *testing.T) {
	c := newNestLoopedCore(t)
	// Plant a valid, consistent request entry, then corrupt its address.
	c.nestAllocRQ(0x4000, false)
	i := (int(c.nest.rqPtr.Get()) + rqEntries - 1) % rqEntries
	flipGroupBit(t, c, "nest.rq.addr", i, 9)
	run(c, 200)
	if !c.FIRBit(ChkNESTRQPar) {
		t.Error("request-queue corruption not caught")
	}
	if c.Checkstopped() {
		t.Error("recoverable periphery error checkstopped")
	}
}

func TestNestL2StrikeCorrectedByScrubOrUse(t *testing.T) {
	c := newNestLoopedCore(t)
	c.nest.l2Data.FlipBit(5, 17)
	before := c.nest.l2Data.Corrected
	run(c, 80000)
	if c.nest.l2Data.Corrected == before {
		t.Error("L2 single-bit strike never corrected")
	}
	if c.Checkstopped() {
		t.Error("L2 strike escalated")
	}
}

func TestNestL2DoubleStrikeLineDeleted(t *testing.T) {
	c := newNestLoopedCore(t)
	// Double strike in one L2 data word: uncorrectable, must be handled
	// by line delete (recoverable), never checkstop.
	c.nest.l2Data.FlipBit(9, 3)
	c.nest.l2Data.FlipBit(9, 44)
	run(c, 80000)
	if c.Checkstopped() {
		t.Fatal("L2 UE checkstopped; line delete expected")
	}
	if !c.FIRBit(ChkNESTL2UE) && c.nest.l2Data.Uncorrectable == 0 {
		t.Error("L2 UE never observed")
	}
}

func TestNestRingIntegrityCheckstops(t *testing.T) {
	c := newNestLoopedCore(t)
	flipGroupBit(t, c, "nest.mode", 0, modeIntegrityLo+2)
	run(c, 100)
	if !c.Checkstopped() {
		t.Fatal("NEST ring corruption did not checkstop")
	}
	if !c.FIRBit(ChkRingNEST) {
		t.Error("NEST ring FIR bit not set")
	}
}

func TestNestFrozenPeripheryHangs(t *testing.T) {
	c := newNestLoopedCore(t)
	// Freeze the periphery via its MODE critical segment, then force the
	// next data access to miss all the way out: the request can never be
	// serviced and the watchdog must eventually declare a hang.
	flipGroupBit(t, c, "nest.mode", 0, modeCriticalLo+1)
	c.lsu.dcTag.Write(lineIndex(0x4000, dcLines), 0)
	c.nest.l2Tag.Write(lineIndex(0x4000, l2Lines), 0)
	run(c, 10*DefaultConfig().HangLimit)
	if !c.HangDetected() && !c.Checkstopped() {
		t.Error("frozen periphery did not stop the core")
	}
}

func TestNestCheckpointRestoreCoversNest(t *testing.T) {
	c := newNestLoopedCore(t)
	ck := c.SaveCheckpoint()
	flipGroupBit(t, c, "nest.rq.addr", 2, 5)
	c.nest.l2Data.FlipBit(3, 3)
	c.RestoreCheckpoint(ck)
	run(c, 3000)
	if c.Checkstopped() || c.Recoveries != 0 {
		t.Error("restore did not clean periphery corruption")
	}
}

// TestNestRandomDifferential re-runs the random ISA-wide differential with
// the periphery enabled: the L2 path must be architecturally transparent.
func TestNestRandomDifferential(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 123))
		words := genRandomProgram(rng, 50)

		g := archsim.New(mem.New(DefaultConfig().MemBytes))
		g.Mem.LoadProgram(0, words)
		for i := 0; i < 200000 && !g.Halted; i++ {
			g.Step()
		}
		if !g.Halted {
			t.Fatal("golden did not halt")
		}

		c := New(nestConfig())
		c.Mem().LoadProgram(0, words)
		for i := 0; i < 400000 && !c.Halted(); i++ {
			c.Step()
			if c.Checkstopped() {
				t.Fatal("nest core checkstopped on fault-free run")
			}
		}
		if !c.Halted() {
			t.Fatal("nest core did not halt")
		}
		st := c.ArchState()
		if st.Signature() != g.State.Signature() {
			t.Fatalf("trial %d: architected state diverged through the L2 path", trial)
		}
		if !c.Mem().Equal(g.Mem) {
			t.Fatalf("trial %d: memory diverged through the L2 path", trial)
		}
	}
}
