package proc

import (
	"sfi/internal/array"
	"sfi/internal/bits"
	"sfi/internal/latch"
)

// The NEST is the core's periphery: a unified L2 cache and its memory
// controller. The paper lists "fault injections in the periphery of the
// core, such as the I/O subsystem, memory subsystem and so on" as current
// and future work; this optional unit (Config.EnableNest) implements that
// extension. When enabled, every L1 miss is serviced through the L2 and a
// parity-protected request queue, all of it injectable: queue latches,
// credit counters and sequencing state join the latch population, and the
// L2 tag/data SRAMs join the protected-array (beam) population.

// UnitNEST is the periphery unit name.
const UnitNEST = "NEST"

// NEST geometry.
const (
	l2Lines   = 512 // 32-byte lines, direct mapped, 16 KiB
	rqEntries = 8   // memory-controller request queue
)

type nestState struct {
	rqAddr latch.Array // request queue: line addresses
	rqCtl  latch.Array // bit0 valid, bit1 is-ifetch
	rqPar  latch.Array // entry parity
	rqPtr  latch.Reg   // allocation pointer

	credits latch.Reg // memory-channel credit counter
	seq     latch.Reg // controller sequencing state
	perf    latch.Array
	mode    latch.Reg
	mode2   latch.Array
	gptr    latch.Array

	l2Tag  *array.Protected
	l2Data *array.Protected
}

// buildNestInventory registers the periphery latches and arrays.
func (c *Core) buildNestInventory() {
	db := c.db
	u := UnitNEST
	c.nest.rqAddr = db.RegisterArray(u, latch.Func, "nest.rq.addr", rqEntries, 64)
	c.nest.rqCtl = db.RegisterArray(u, latch.Func, "nest.rq.ctl", rqEntries, 4)
	c.nest.rqPar = db.RegisterArray(u, latch.Func, "nest.rq.par", rqEntries, 1)
	c.nest.rqPtr = db.Register(u, latch.Func, "nest.rq.ptr", 3)
	c.nest.credits = db.Register(u, latch.Func, "nest.credits", 8)
	c.nest.seq = db.Register(u, latch.Func, "nest.seq", 8)
	c.nest.perf = db.RegisterArray(u, latch.Func, "nest.perf", 4, 64)
	c.nest.mode = db.Register(u, latch.Mode, "nest.mode", 64)
	c.nest.mode2 = db.RegisterArray(u, latch.Mode, "nest.mode.spare", 2, 64)
	c.nest.gptr = db.RegisterArray(u, latch.GPTR, "nest.gptr", 2, 64)
	// Cold periphery structures: snoop/coherence machinery idle in this
	// single-core configuration, and DMA engines with no I/O traffic.
	db.RegisterArray(u, latch.Func, "nest.snoop", 16, 64)
	db.RegisterArray(u, latch.Func, "nest.dma", 16, 64)
	db.RegisterArray(u, latch.Func, "nest.iobuf", 16, 64)
	c.nest.l2Tag = array.New("nest.l2.tag", l2Lines)
	c.nest.l2Data = array.New("nest.l2.data", l2Lines*lineWords)
}

// l2Lookup probes the L2 for the line containing addr.
func (c *Core) l2Lookup(addr uint64) bool {
	idx := lineIndex(addr, l2Lines)
	tw, res := c.nest.l2Tag.Read(idx)
	if res == bits.ECCUncorrectable {
		c.nest.l2Tag.Write(idx, 0)
		c.fail(ChkNESTL2UE)
		return false
	}
	return tw&1 == 1 && tw>>1 == lineTag(addr, l2Lines)
}

// l2Install fills the L2 line containing addr from memory.
func (c *Core) l2Install(addr uint64) {
	idx := lineIndex(addr, l2Lines)
	base := addr &^ 31
	for i := 0; i < lineWords; i++ {
		c.nest.l2Data.Write(idx*lineWords+i, c.mem.Read64(base+uint64(8*i)))
	}
	c.nest.l2Tag.Write(idx, lineTag(addr, l2Lines)<<1|1)
}

// l2Update write-through-updates the L2 copy of the dword at addr.
func (c *Core) l2Update(addr, dw uint64) {
	if !c.cfg.EnableNest {
		return
	}
	idx := lineIndex(addr, l2Lines)
	tw, res := c.nest.l2Tag.Read(idx)
	if res == bits.ECCUncorrectable || tw&1 == 0 || tw>>1 != lineTag(addr, l2Lines) {
		return
	}
	c.nest.l2Data.Write(idx*lineWords+dwordInLine(addr), dw)
}

// nestMissLatency returns the refill latency for the line containing addr,
// allocating a request-queue entry and consulting the L2. An L2 hit costs
// MissPenalty; an L2 miss goes to memory and costs MissPenalty +
// NestPenalty (with the line installed in the L2 on the way). A frozen
// periphery stalls the miss FSMs themselves (see nestServicing).
func (c *Core) nestMissLatency(addr uint64, ifetch bool) uint64 {
	if !c.cfg.EnableNest {
		return uint64(c.cfg.MissPenalty)
	}
	c.nestAllocRQ(addr, ifetch)
	if c.l2Lookup(addr) {
		return uint64(c.cfg.MissPenalty)
	}
	c.l2Install(addr)
	return uint64(c.cfg.MissPenalty + c.cfg.NestPenalty)
}

// nestServicing reports whether the memory subsystem is able to make
// progress on outstanding misses; when the periphery is frozen the L1 miss
// FSMs stop counting down and the requester starves (a hang mechanism).
func (c *Core) nestServicing() bool {
	return !c.cfg.EnableNest || c.unitOK(uNEST)
}

// nestAllocRQ latches the request into the controller queue with parity.
func (c *Core) nestAllocRQ(addr uint64, ifetch bool) {
	i := int(c.nest.rqPtr.Get()) % rqEntries
	ctl := uint64(1)
	if ifetch {
		ctl |= 2
	}
	line := addr &^ 31
	c.nest.rqAddr.Entry(i).Set(line)
	c.nest.rqCtl.Entry(i).Set(ctl)
	c.nest.rqPar.Entry(i).Set(parity64(line) ^ c.polarity(c.nest.mode, 0))
	c.nest.rqPtr.Set(uint64(i+1) % rqEntries)
	if n := c.nest.credits.Get(); n > 0 {
		c.nest.credits.Set(n - 1)
	}
	c.nest.perf.Entry(0).Set(c.nest.perf.Entry(0).Get() + 1)
}

// nestRetireRQ frees the oldest valid request (called when a refill
// completes) and returns a credit.
func (c *Core) nestRetireRQ() {
	if !c.cfg.EnableNest {
		return
	}
	for i := 0; i < rqEntries; i++ {
		e := c.nest.rqCtl.Entry(i)
		if e.Get()&1 != 0 {
			e.Set(0)
			break
		}
	}
	if n := c.nest.credits.Get(); n < 255 {
		c.nest.credits.Set(n + 1)
	}
}

// scanRQ is the continuous request-queue checker (one entry per cycle).
func (c *Core) scanRQ() {
	if !c.cfg.EnableNest {
		return
	}
	i := int(c.Cycle) % rqEntries
	if c.nest.rqCtl.Entry(i).Get()&1 == 0 {
		return
	}
	if parity64(c.nest.rqAddr.Entry(i).Get())^c.polarity(c.nest.mode, 0) !=
		c.nest.rqPar.Entry(i).Get() {
		c.fail(ChkNESTRQPar)
	}
}
