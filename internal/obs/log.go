package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured event logging for campaign processes. The coordinator,
// workers and the sfi binaries all log through log/slog with a common
// construction path, so every lifecycle event carries machine-parseable
// campaign/shard/worker attributes instead of ad-hoc printf lines.

// NewLogger builds a leveled slog.Logger writing one event per line to w:
// JSON objects when jsonFormat is set (the fleet default — greppable and
// ingestible), logfmt-style text otherwise.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLogLevel maps a flag value ("debug", "info", "warn", "error") to
// its slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NopLogger returns a logger that discards every record — the nil-config
// default for library components, so call sites never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
