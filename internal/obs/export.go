package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
)

// Exporters: expvar publication (JSON over /debug/vars) and a
// Prometheus-style text dump of a metrics snapshot.

// PublishExpvar registers fn's snapshot under name in the process-wide
// expvar registry (served at /debug/vars). expvar forbids duplicate
// publication, so a second call with the same name is a no-op; the function
// is re-evaluated on every scrape, so publishing live Metrics via
// m.Snapshot keeps the endpoint current while a campaign runs.
func PublishExpvar(name string, fn func() *Snapshot) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return fn() }))
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format under the given metric prefix (e.g. "sfi"). Output order is
// deterministic.
func (s *Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	if prefix == "" {
		prefix = "sfi"
	}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	counter := func(name string, v uint64) {
		p("# TYPE %s_%s counter\n%s_%s %d\n", prefix, name, prefix, name, v)
	}
	counter("injections_total", s.Injections)
	counter("restores_total", s.Restores)
	counter("cycles_total", s.Cycles)
	counter("busy_ns_total", s.BusyNs)
	counter("batches_total", s.Batches)

	p("# TYPE %s_outcome_total counter\n", prefix)
	for _, o := range sortedKeys(s.Outcomes) {
		p("%s_outcome_total{outcome=%q} %d\n", prefix, o, s.Outcomes[o])
	}
	labelled := func(name, label string, m map[string]map[string]uint64) {
		if len(m) == 0 {
			return
		}
		p("# TYPE %s_%s counter\n", prefix, name)
		for _, k := range sortedKeys(m) {
			row := m[k]
			for _, o := range sortedKeys(row) {
				p("%s_%s{%s=%q,outcome=%q} %d\n", prefix, name, label, k, o, row[o])
			}
		}
	}
	labelled("unit_outcome_total", "unit", s.ByUnit)
	labelled("latchtype_outcome_total", "type", s.ByType)

	hists := []struct {
		name string
		h    HistSnapshot
	}{
		{"injection_ns", s.InjectionNs},
		{"restore_ns", s.RestoreNs},
		{"propagate_cycles", s.PropagateCycles},
		{"detect_cycles", s.DetectCycles},
		{"lane_occupancy", s.LaneOccupancy},
	}
	for _, h := range hists {
		if err == nil {
			err = WriteHistPrometheus(w, prefix, h.name, h.h)
		}
	}
	return err
}

// WriteHistPrometheus renders one histogram snapshot in the Prometheus
// text format as prefix_name, with cumulative le buckets on the log2
// bucket upper bounds. Exported so components with histograms outside a
// Snapshot (e.g. the distributed coordinator's shard-latency histograms)
// share the exposition path.
func WriteHistPrometheus(w io.Writer, prefix, name string, h HistSnapshot) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE %s_%s histogram\n", prefix, name)
	cum := uint64(0)
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		_, hi := bucketBounds(i)
		p("%s_%s_bucket{le=\"%d\"} %d\n", prefix, name, hi, cum)
	}
	p("%s_%s_bucket{le=\"+Inf\"} %d\n", prefix, name, h.Count)
	p("%s_%s_sum %d\n", prefix, name, h.Sum)
	p("%s_%s_count %d\n", prefix, name, h.Count)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
