package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestTracerDeterministicIDs locks the ID scheme: a tracer's trace ID and
// span-ID sequence are a pure function of the campaign seed, so two runs
// of the same campaign mint identical IDs.
func TestTracerDeterministicIDs(t *testing.T) {
	a, b := NewTracer(42), NewTracer(42)
	if a.TraceID() != b.TraceID() {
		t.Errorf("trace IDs differ for equal seeds: %s vs %s", a.TraceID(), b.TraceID())
	}
	if len(a.TraceID()) != 32 {
		t.Errorf("trace ID %q is not 32 hex chars", a.TraceID())
	}
	for i := 0; i < 5; i++ {
		sa := a.StartSpan("x", "core", SpanContext{})
		sb := b.StartSpan("x", "core", SpanContext{})
		if sa.SpanID != sb.SpanID {
			t.Errorf("draw %d: span IDs diverge: %s vs %s", i, sa.SpanID, sb.SpanID)
		}
		if len(sa.SpanID) != 16 {
			t.Errorf("span ID %q is not 16 hex chars", sa.SpanID)
		}
	}
	if c := NewTracer(43); c.TraceID() == a.TraceID() {
		t.Error("different seeds minted the same trace ID")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(7)
	sp := tr.StartSpan("shard", "coord", SpanContext{})
	wire := sp.Context().Traceparent()
	if !strings.HasPrefix(wire, "00-") || !strings.HasSuffix(wire, "-01") {
		t.Errorf("traceparent %q is not W3C shaped", wire)
	}
	got, ok := ParseTraceparent(wire)
	if !ok || got != sp.Context() {
		t.Errorf("round trip: got %+v ok=%v, want %+v", got, ok, sp.Context())
	}
	for _, bad := range []string{"", "00", "00-short-beef-01", "junk"} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed value", bad)
		}
	}
	if (SpanContext{}).Traceparent() != "" {
		t.Error("zero context rendered a traceparent")
	}
}

// TestTracerNilSafe locks the no-branch instrumentation contract: every
// method on a nil tracer or nil span is a no-op.
func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", "y", SpanContext{})
	sp.Attr("k", "v").AttrInt("n", 1).End()
	sp.EndAt(time.Now())
	tr.Add(Span{})
	tr.SetSink(nil)
	tr.SetTraceID("deadbeef")
	if tr.TraceID() != "" || tr.Total() != 0 || tr.Spans() != nil {
		t.Error("nil tracer leaked state")
	}
	if doc := tr.Doc(); doc == nil || doc.Spans != 0 {
		t.Errorf("nil tracer Doc = %+v", doc)
	}
	if sp.Context().Valid() {
		t.Error("nil span has a valid context")
	}
}

// TestTracerRingBound fills the ring past capacity and checks the
// overwrite accounting: the ring holds the most recent tracerRingCap
// spans, Total counts everything, and Doc reports the overflow as Dropped.
func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(1)
	const extra = 10
	for i := 0; i < tracerRingCap+extra; i++ {
		tr.Add(Span{TraceID: tr.TraceID(), SpanID: fmt.Sprintf("%016x", i+1), Name: "batch", Layer: "engine"})
	}
	spans := tr.Spans()
	if len(spans) != tracerRingCap {
		t.Fatalf("ring holds %d spans, want %d", len(spans), tracerRingCap)
	}
	if tr.Total() != tracerRingCap+extra {
		t.Errorf("Total = %d, want %d", tr.Total(), tracerRingCap+extra)
	}
	// Oldest survivors are the ones just past the overwrite window.
	if want := fmt.Sprintf("%016x", extra+1); spans[0].SpanID != want {
		t.Errorf("oldest surviving span = %s, want %s", spans[0].SpanID, want)
	}
	if doc := tr.Doc(); doc.Dropped != extra {
		t.Errorf("Doc.Dropped = %d, want %d", doc.Dropped, extra)
	}
}

func TestTracerSinkMirrorsSpans(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTraceSink(&buf, TraceOptions{})
	tr := NewTracer(3)
	tr.SetSink(sink)
	tr.StartSpan("sample", "core", SpanContext{}).AttrInt("idx", 9).End()
	tr.SetSink(nil)
	tr.StartSpan("sample", "core", SpanContext{}).End() // after detach: ring only
	var line Span
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("sink line is not one span JSONL record: %v\n%s", err, buf.String())
	}
	if line.Name != "sample" || line.Layer != "core" || line.Attrs["idx"] != "9" {
		t.Errorf("sink span = %+v", line)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 1 {
		t.Errorf("sink saw %d lines, want 1 (detach must stop mirroring)", n)
	}
	if tr.Total() != 2 {
		t.Errorf("ring Total = %d, want 2", tr.Total())
	}
}

// span is a test helper building a finished span with explicit boundaries.
func span(id, parent, name, layer string, start, dur int64) Span {
	return Span{TraceID: "t", SpanID: id, ParentID: parent, Name: name, Layer: layer, StartNs: start, DurNs: dur}
}

// TestBuildTraceDocCriticalPath checks the structural invariants the
// latency attribution rests on: a single root, critical-path steps whose
// self times sum exactly to the root duration, and attribution buckets
// keyed by the span naming convention.
func TestBuildTraceDocCriticalPath(t *testing.T) {
	// A miniature service-shaped trace, times in ms-as-ns:
	//   campaign[server] 0..100
	//     queue.wait 0..20
	//     executor 20..95
	//       image.build[store] 20..30
	//       shard 30..80
	//         batch[engine] 35..75
	//       merge 80..90
	spans := []Span{
		span("01", "", "campaign", "server", 0, 100e6),
		span("02", "01", "queue.wait", "server", 0, 20e6),
		span("03", "01", "executor", "server", 20e6, 75e6),
		span("04", "03", "image.build", "store", 20e6, 10e6),
		span("05", "03", "shard", "coord", 30e6, 50e6),
		span("06", "05", "batch", "engine", 35e6, 40e6),
		span("07", "03", "merge", "server", 80e6, 10e6),
	}
	doc := BuildTraceDoc("t", spans, 0)
	if doc.Root == nil || doc.Root.Name != "campaign" || doc.Root.Layer != "server" {
		t.Fatalf("root = %+v", doc.Root)
	}
	if doc.Spans != len(spans) {
		t.Errorf("Spans = %d, want %d", doc.Spans, len(spans))
	}
	// Critical path descends into the child that finishes last at each
	// level: campaign → executor → merge.
	var names []string
	var selfSum float64
	for _, st := range doc.CriticalPath {
		names = append(names, st.Name)
		selfSum += st.SelfMs
	}
	if want := []string{"campaign", "executor", "merge"}; strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("critical path %v, want %v", names, want)
	}
	if doc.Attribution.TotalMs != 100 {
		t.Errorf("TotalMs = %g, want 100", doc.Attribution.TotalMs)
	}
	if selfSum != doc.Attribution.TotalMs {
		t.Errorf("critical-path self times sum to %gms, want the root duration %gms",
			selfSum, doc.Attribution.TotalMs)
	}
	// Buckets: campaign(server) self 100-75=25 → other, executor self
	// 75-10=65 → run, merge self 10 → merge.
	at := doc.Attribution
	if at.OtherMs != 25 || at.RunMs != 65 || at.MergeMs != 10 || at.QueueMs != 0 || at.ImageMs != 0 {
		t.Errorf("attribution = %+v", at)
	}
	if f := at.CriticalPathFraction; f != 0.75 {
		t.Errorf("CriticalPathFraction = %g, want 0.75", f)
	}
}

// TestBuildTraceDocQueueBoundPath exercises the queue/image buckets by
// making queue wait the gating child.
func TestBuildTraceDocQueueBoundPath(t *testing.T) {
	spans := []Span{
		span("01", "", "campaign", "server", 0, 100e6),
		span("02", "01", "queue.wait", "server", 0, 90e6),
		span("03", "01", "image.clone", "store", 90e6, 10e6),
	}
	doc := BuildTraceDoc("t", spans, 0)
	at := doc.Attribution
	if at.QueueMs != 0 || at.ImageMs != 10 {
		// queue.wait ends at 90, image.clone at 100: image gates.
		t.Errorf("attribution = %+v", at)
	}
	// Flip the order so queue gates.
	spans[2] = span("03", "01", "image.clone", "store", 0, 10e6)
	at = BuildTraceDoc("t", spans, 0).Attribution
	if at.QueueMs != 90 || at.OtherMs != 10 {
		t.Errorf("queue-gated attribution = %+v", at)
	}
}

// TestBuildTraceDocSyntheticRoot covers the mid-run view: no parentless
// span has finished yet, so a synthetic root spans the observed range and
// its self time lands in OtherMs, never in an execution bucket.
func TestBuildTraceDocSyntheticRoot(t *testing.T) {
	spans := []Span{
		span("05", "99", "shard", "coord", 10e6, 30e6),
		span("06", "99", "shard", "coord", 50e6, 20e6),
	}
	doc := BuildTraceDoc("t", spans, 0)
	if doc.Root == nil || doc.Root.Layer != "synthetic" {
		t.Fatalf("root = %+v", doc.Root)
	}
	if doc.Root.StartNs != 10e6 || doc.Root.DurNs != 60e6 {
		t.Errorf("synthetic root covers [%d, +%d], want [10ms, +60ms]", doc.Root.StartNs, doc.Root.DurNs)
	}
	if len(doc.Root.Children) != 2 {
		t.Errorf("orphans not attached: %d children", len(doc.Root.Children))
	}
	at := doc.Attribution
	if at.RunMs != 20 || at.OtherMs != 40 {
		t.Errorf("attribution = %+v", at)
	}
}

// TestBuildTraceDocOrphansUnderRoot: spans whose parent was overwritten by
// the ring still attach under the real root so the tree stays connected.
func TestBuildTraceDocOrphansUnderRoot(t *testing.T) {
	spans := []Span{
		span("01", "", "campaign.run", "core", 0, 50e6),
		span("06", "dead", "batch", "engine", 5e6, 10e6),
	}
	doc := BuildTraceDoc("t", spans, 0)
	if doc.Root == nil || doc.Root.Name != "campaign.run" {
		t.Fatalf("root = %+v", doc.Root)
	}
	if len(doc.Root.Children) != 1 || doc.Root.Children[0].Name != "batch" {
		t.Fatalf("orphan batch span not reattached under root")
	}
	// A local run's root is execution itself: self time goes to RunMs.
	if at := doc.Attribution; at.RunMs != at.TotalMs {
		t.Errorf("local-run attribution = %+v, want all RunMs", at)
	}
}

// TestTracerDocEndToEnd runs real spans through a tracer and checks the
// doc view: tree shape survives the ring, and the layer histograms count
// every span.
func TestTracerDocEndToEnd(t *testing.T) {
	tr := NewTracer(11)
	root := tr.StartSpan("campaign.run", "core", SpanContext{})
	for i := 0; i < 3; i++ {
		tr.StartSpan("sample", "core", root.Context()).AttrInt("idx", int64(i)).End()
	}
	root.End()
	doc := tr.Doc()
	if doc.TraceID != tr.TraceID() {
		t.Errorf("doc trace ID %s, want %s", doc.TraceID, tr.TraceID())
	}
	if doc.Spans != 4 || doc.Dropped != 0 {
		t.Errorf("Spans=%d Dropped=%d, want 4/0", doc.Spans, doc.Dropped)
	}
	if doc.Root == nil || doc.Root.Name != "campaign.run" || len(doc.Root.Children) != 3 {
		t.Fatalf("tree shape wrong: %+v", doc.Root)
	}
	snaps := tr.LayerSnapshots()
	if snap, ok := snaps["core"]; !ok || snap.Count != 4 {
		t.Errorf("core layer histogram count = %+v", snaps)
	}
	var buf bytes.Buffer
	if err := tr.WriteSpanHists(&buf, "sfi"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sfi_span_core_ns_bucket") {
		t.Errorf("span histogram exposition missing:\n%s", buf.String())
	}
}
