package obs

import (
	"strings"
	"testing"

	"sfi/internal/stats"
)

func TestSnapshotConvergence(t *testing.T) {
	rule := stats.StopRule{TargetMargin: 0.5, Confidence: 0.95, MinPerClass: 10}
	classes := []string{"", "vanished", "sdc"}

	var nilSnap *Snapshot
	if nilSnap.Convergence(classes, rule, true) != nil {
		t.Error("nil snapshot must yield nil convergence")
	}
	s := &Snapshot{Injections: 100, Outcomes: map[string]uint64{"vanished": 95, "sdc": 5}}
	if s.Convergence(classes, stats.StopRule{}, false) != nil {
		t.Error("disabled rule must yield nil convergence")
	}

	c := s.Convergence(classes, rule, false)
	if c == nil || c.Total != 100 || len(c.Classes) != 2 {
		t.Fatalf("convergence = %+v", c)
	}
	if c.Classes[0].K != 95 || c.Classes[1].K != 5 {
		t.Errorf("counts not carried over: %+v", c.Classes)
	}

	// Strata: each unit is its own population with its own total.
	s.ByUnit = map[string]map[string]uint64{
		"LSU": {"vanished": 60},
		"FXU": {"vanished": 35, "sdc": 5},
	}
	c = s.Convergence(classes, rule, true)
	if len(c.ByUnit) != 2 {
		t.Fatalf("ByUnit = %+v", c.ByUnit)
	}
	if n := c.ByUnit["FXU"][0].N; n != 40 {
		t.Errorf("FXU stratum total = %d, want 40", n)
	}
}

func TestFleetConvergence(t *testing.T) {
	rule := stats.StopRule{TargetMargin: 0.6, Confidence: 0.95, MinPerClass: 10}
	f := NewFleet()
	f.Seal("shard-0", &Snapshot{Injections: 50, Outcomes: map[string]uint64{"vanished": 50}})
	f.Observe("shard-1", &Snapshot{Injections: 25, Outcomes: map[string]uint64{"vanished": 20, "sdc": 5}})
	c := f.Convergence([]string{"", "vanished", "sdc"}, rule, false)
	if c == nil || c.Total != 75 {
		t.Fatalf("fleet convergence = %+v", c)
	}
	if c.Classes[0].K != 70 || c.Classes[1].K != 5 {
		t.Errorf("fleet counts: %+v", c.Classes)
	}
}

func TestWriteConvergencePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := WriteConvergencePrometheus(&sb, "sfi", nil); err != nil || sb.Len() != 0 {
		t.Fatalf("nil convergence wrote %q err %v", sb.String(), err)
	}
	rule := stats.StopRule{TargetMargin: 0.5, Confidence: 0.95, MinPerClass: 10}
	s := &Snapshot{Injections: 1000, Outcomes: map[string]uint64{"vanished": 990, "sdc": 10}}
	c := s.Convergence([]string{"", "vanished", "sdc"}, rule, false)
	if err := WriteConvergencePrometheus(&sb, "sfi", c); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE sfi_ci_width gauge",
		`sfi_ci_lo{class="vanished"}`,
		`sfi_ci_hi{class="sdc"}`,
		`sfi_class_converged{class="vanished"} 1`,
		"sfi_converged 1",
		"sfi_ci_target_margin 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
