package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// TraceEvent records one injection's full lifecycle — the phases of the
// paper's flow (sample → checkpoint restore → flip → propagate → classify)
// with their latencies, cycle counts and the FIR bits observed at the end.
// Events serialize as one JSON object per line (JSONL).
type TraceEvent struct {
	Seq int64 `json:"seq"`   // sink-assigned event ordinal (0-based)
	TS  int64 `json:"ts_ns"` // injection start, unix nanoseconds

	// Sample phase: where the flip landed.
	Bit         int    `json:"bit"`
	Group       string `json:"group"`
	Unit        string `json:"unit"`
	LatchType   string `json:"latch_type"`
	Checkpoint  int    `json:"checkpoint"`   // phased-checkpoint index restored
	DelayCycles int    `json:"delay_cycles"` // sub-testcase phase jitter applied

	// Restore and propagate phase latencies.
	RestoreNs   int64  `json:"restore_ns"`
	PropagateNs int64  `json:"propagate_ns"`
	Cycles      uint64 `json:"cycles"`   // cycles observed post-flip
	TestEnds    int    `json:"testends"` // AVP barriers passed

	// Classification.
	Outcome       string   `json:"outcome"`
	Detected      bool     `json:"detected"`
	FirstChecker  string   `json:"first_checker,omitempty"`
	DetectLatency uint64   `json:"detect_latency,omitempty"`
	Recoveries    uint64   `json:"recoveries"`
	FIR           []string `json:"fir,omitempty"` // checker names with FIR bits set
}

// TraceOptions bounds a sink so huge campaigns stay cheap.
type TraceOptions struct {
	// Sample records every Sample-th event (0 and 1 both mean every event).
	Sample int
	// Max stops recording after Max events (0 = unlimited).
	Max int
}

// TraceSink serializes injection trace events as JSONL to a writer. Record
// is safe for concurrent use from campaign workers; sampled-out and
// over-budget events are counted, not written. The zero bound (default)
// records everything.
type TraceSink struct {
	opts TraceOptions

	seq      atomic.Int64 // events offered
	recorded atomic.Int64 // events written
	dropped  atomic.Int64 // events sampled out or over budget

	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTraceSink wraps a writer in a sink. The sink does not buffer or close
// the writer; wrap a *bufio.Writer (and flush it) for high-rate traces.
func NewTraceSink(w io.Writer, opts TraceOptions) *TraceSink {
	return &TraceSink{w: w, opts: opts}
}

// Record offers one event to the sink. The event's Seq field is assigned
// here (the global offer order, so sampled traces still show their stride).
func (s *TraceSink) Record(ev *TraceEvent) {
	if s == nil {
		return
	}
	seq := s.seq.Add(1) - 1
	ev.Seq = seq
	if s.opts.Sample > 1 && seq%int64(s.opts.Sample) != 0 {
		s.dropped.Add(1)
		return
	}
	if s.opts.Max > 0 && s.recorded.Load() >= int64(s.opts.Max) {
		s.dropped.Add(1)
		return
	}
	s.writeLine(ev)
}

// ShardEvent records one shard-lifecycle transition of a distributed
// campaign — the coordinator-side forensics trail (requeue storms,
// straggler workers, heartbeat gaps) that makes a fleet run diagnosable
// after the fact. Kind is one of "lease", "heartbeat_gap", "expired",
// "requeued", "failed", "completed" or "exhausted".
type ShardEvent struct {
	Kind string `json:"shard_event"`
	TS   int64  `json:"ts_ns"` // event time, unix nanoseconds

	Shard   int    `json:"shard"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"` // lease grants so far, 1-based

	GapMs     int64  `json:"gap_ms,omitempty"`     // heartbeat_gap: silence length
	LatencyMs int64  `json:"latency_ms,omitempty"` // completed: lease grant → completion
	Detail    string `json:"detail,omitempty"`
}

// RecordShard writes one shard-lifecycle event. Shard events are rare
// (a handful per shard) so they bypass the sink's sampling and Max
// budget; they share the writer, the serialization lock and the latched
// error with injection events.
func (s *TraceSink) RecordShard(ev *ShardEvent) {
	s.RecordJSON(ev)
}

// RecordJSON writes any marshalable value as one unsampled JSONL line —
// the escape hatch for event shapes beyond the injection lifecycle (shard
// events, worker-attached trace segments).
func (s *TraceSink) RecordJSON(v any) {
	if s == nil {
		return
	}
	s.writeLine(v)
}

func (s *TraceSink) writeLine(v any) {
	data, err := json.Marshal(v)
	if err != nil { // all field types are marshalable; defensive only
		s.dropped.Add(1)
		return
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		s.dropped.Add(1)
		return
	}
	if _, err := s.w.Write(data); err != nil {
		s.err = err
		s.dropped.Add(1)
		return
	}
	s.recorded.Add(1)
}

// Recorded returns the number of events written.
func (s *TraceSink) Recorded() int64 {
	if s == nil {
		return 0
	}
	return s.recorded.Load()
}

// Dropped returns the number of events sampled out, over budget, or lost to
// a write error.
func (s *TraceSink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Err returns the first write error, if any.
func (s *TraceSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
