package obs

import (
	"sort"
	"strings"
)

// TraceDoc is the span-tree view served by the trace query APIs
// (GET /v1/traces, /v1/campaigns/{id}/trace and the coordinator's
// /v1/trace): the reassembled causal tree, the computed critical path,
// and the latency attribution derived from it.
type TraceDoc struct {
	TraceID string `json:"trace_id"`
	// Spans is how many spans the tree was built from; Dropped counts
	// spans the bounded ring overwrote before the query.
	Spans   int `json:"spans"`
	Dropped int `json:"dropped,omitempty"`

	Root         *SpanNode   `json:"root"`
	CriticalPath []PathStep  `json:"critical_path"`
	Attribution  Attribution `json:"attribution"`
}

// SpanNode is one span with its children attached; Critical marks the
// nodes on the trace's critical path.
type SpanNode struct {
	Span
	Critical bool        `json:"critical,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// PathStep is one critical-path node with its exclusive (self)
// contribution: the part of its duration not covered by the next critical
// child. Self times along the path sum to the root's duration, so the
// critical path decomposes wall-clock campaign latency without double
// counting nested spans.
type PathStep struct {
	SpanID string  `json:"span_id"`
	Name   string  `json:"span"`
	Layer  string  `json:"layer"`
	DurMs  float64 `json:"dur_ms"`
	SelfMs float64 `json:"self_ms"`
}

// Attribution buckets the critical path's self times into the campaign
// lifecycle phases the service controls: tenant queue wait, checkpoint
// image build, shard/batch execution, and report merge. OtherMs is
// scheduler/transition time on the path that fits none of the four;
// CriticalPathFraction is the attributed share of total latency.
type Attribution struct {
	QueueMs              float64 `json:"queue_ms"`
	ImageMs              float64 `json:"image_ms"`
	RunMs                float64 `json:"run_ms"`
	MergeMs              float64 `json:"merge_ms"`
	OtherMs              float64 `json:"other_ms"`
	TotalMs              float64 `json:"total_ms"`
	CriticalPathFraction float64 `json:"critical_path_fraction"`
}

func (n *SpanNode) endNs() int64 { return n.StartNs + n.DurNs }

// BuildTraceDoc reassembles finished spans into a single-rooted tree and
// computes its critical path. The root is the parentless span that starts
// earliest; orphans (spans whose parent was overwritten by the ring or is
// still running) attach under the root so the tree stays connected. When
// no parentless span exists at all (a mid-run query), a synthetic root
// covering the observed time range is created.
func BuildTraceDoc(traceID string, spans []Span, dropped int) *TraceDoc {
	doc := &TraceDoc{TraceID: traceID, Spans: len(spans), Dropped: dropped}
	if len(spans) == 0 {
		return doc
	}

	nodes := make(map[string]*SpanNode, len(spans))
	for i := range spans {
		sp := spans[i]
		if sp.TraceID != "" && traceID != "" && sp.TraceID != traceID {
			continue // defensive: foreign trace mixed into the ring
		}
		nodes[sp.SpanID] = &SpanNode{Span: sp}
	}

	var root *SpanNode
	var orphans []*SpanNode
	for _, n := range nodes {
		if n.ParentID != "" {
			if p := nodes[n.ParentID]; p != nil && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		if n.ParentID == "" && (root == nil || n.StartNs < root.StartNs) {
			if root != nil {
				orphans = append(orphans, root)
			}
			root = n
			continue
		}
		orphans = append(orphans, n)
	}
	if root == nil {
		// Mid-run view: no span has finished parentless yet. Synthesize a
		// root over the observed range so the tree stays queryable.
		lo, hi := orphans[0].StartNs, orphans[0].endNs()
		for _, n := range orphans[1:] {
			if n.StartNs < lo {
				lo = n.StartNs
			}
			if n.endNs() > hi {
				hi = n.endNs()
			}
		}
		root = &SpanNode{Span: Span{TraceID: traceID, Name: "trace", Layer: "synthetic", StartNs: lo, DurNs: hi - lo}}
	}
	root.Children = append(root.Children, orphans...)
	var sortChildren func(n *SpanNode)
	sortChildren = func(n *SpanNode) {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i], n.Children[j]
			if a.StartNs != b.StartNs {
				return a.StartNs < b.StartNs
			}
			return a.SpanID < b.SpanID
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sortChildren(root)
	doc.Root = root

	// Critical path: from the root, repeatedly descend into the child that
	// finishes last — the child gating the parent's completion. Each step
	// contributes its duration minus the next step's (its self time), the
	// leaf contributes all of it, so self times sum to the root duration.
	for n := root; n != nil; {
		n.Critical = true
		var next *SpanNode
		for _, c := range n.Children {
			if next == nil || c.endNs() > next.endNs() {
				next = c
			}
		}
		self := n.DurNs
		if next != nil {
			self -= next.DurNs
			if self < 0 {
				self = 0
			}
		}
		doc.CriticalPath = append(doc.CriticalPath, PathStep{
			SpanID: n.SpanID,
			Name:   n.Name,
			Layer:  n.Layer,
			DurMs:  ms(n.DurNs),
			SelfMs: ms(self),
		})
		n = next
	}

	doc.Attribution = attributionFrom(root, doc.CriticalPath)
	return doc
}

// attributionFrom buckets critical-path self times by the span naming
// convention: queue.* spans are tenant queue wait, image.* (the store
// layer) is checkpoint image build, merge.* is report aggregation and
// persistence, and everything else is execution. The service root span
// (the server layer's "campaign") is the exception: its self time is
// submit/completion bookkeeping around the phases, which lands in
// OtherMs. A local run's root is campaign.run itself and a standalone
// coordinator's root self time is fleet execution, so both count as
// execution.
func attributionFrom(root *SpanNode, path []PathStep) Attribution {
	var a Attribution
	a.TotalMs = ms(root.DurNs)
	for _, st := range path {
		switch {
		case strings.HasPrefix(st.Name, "queue"):
			a.QueueMs += st.SelfMs
		case strings.HasPrefix(st.Name, "image") || st.Layer == "store":
			a.ImageMs += st.SelfMs
		case strings.HasPrefix(st.Name, "merge"):
			a.MergeMs += st.SelfMs
		case (st.Name == "campaign" && st.Layer == "server") || st.Layer == "synthetic":
			a.OtherMs += st.SelfMs
		default:
			a.RunMs += st.SelfMs
		}
	}
	if a.TotalMs > 0 {
		a.CriticalPathFraction = (a.QueueMs + a.ImageMs + a.RunMs + a.MergeMs) / a.TotalMs
		if a.CriticalPathFraction > 1 {
			a.CriticalPathFraction = 1
		}
	}
	return a
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// Doc builds the tracer's current TraceDoc — the tree over the ring's
// finished spans.
func (t *Tracer) Doc() *TraceDoc {
	if t == nil {
		return &TraceDoc{}
	}
	spans := t.Spans()
	return BuildTraceDoc(t.TraceID(), spans, t.Total()-len(spans))
}
