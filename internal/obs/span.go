package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Campaign tracing: causal spans from REST submit down to individual
// bit-parallel batch passes. A Tracer mints trace/span IDs from the
// campaign-seeded splitmix64 stream (so ID sequences are reproducible per
// campaign), keeps finished spans in a bounded in-memory ring for the
// /v1/traces query APIs, and optionally mirrors every span as one JSONL
// line through the existing TraceSink plumbing. Context crosses process
// boundaries as a W3C-style traceparent string carried on the dist lease
// protocol, so worker shard and per-batch spans parent correctly under the
// server's root span.

// spanGamma is the splitmix64 sequence increment (Weyl constant); each ID
// draw advances the seeded stream by one gamma step.
const spanGamma = 0x9e3779b97f4a7c15

// spanMix is the splitmix64 output mix — the same finalizer as
// engine.Splitmix64, replicated here because obs sits below engine in the
// import graph.
func spanMix(x uint64) uint64 {
	x += spanGamma
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SpanContext is the propagated half of a span: enough to parent a child
// span in another goroutine, process, or host.
type SpanContext struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Valid reports whether the context carries a usable trace/span pair.
func (c SpanContext) Valid() bool { return c.TraceID != "" && c.SpanID != "" }

// Traceparent renders the context in the W3C trace-context wire form
// (version 00, sampled flag set): "00-<trace-id>-<parent-id>-01".
func (c SpanContext) Traceparent() string {
	if !c.Valid() {
		return ""
	}
	return "00-" + c.TraceID + "-" + c.SpanID + "-01"
}

// ParseTraceparent decodes a W3C traceparent header value back into a
// SpanContext. Unknown versions are accepted as long as the field shape
// holds; malformed strings report ok=false.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(s, "-")
	if len(parts) < 3 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: parts[1], SpanID: parts[2]}, true
}

// Span is one timed operation in a campaign's causal tree. The exported
// fields are the wire/JSONL form; a span returned by Tracer.StartSpan is
// live until End, which stamps the duration and records it.
type Span struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"span"`
	Layer    string            `json:"layer"`
	StartNs  int64             `json:"start_ns"`
	DurNs    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`

	tr    *Tracer
	start time.Time
}

// Context returns the propagation context for parenting children under
// this span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// Attr sets a string attribute and returns the span for chaining. Attrs
// are owned by the starting goroutine; set them before handing the span's
// Context to concurrent children.
func (s *Span) Attr(k, v string) *Span {
	if s == nil {
		return nil
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
	return s
}

// AttrInt sets an integer attribute.
func (s *Span) AttrInt(k string, v int64) *Span {
	return s.Attr(k, fmt.Sprintf("%d", v))
}

// End stamps the span's duration and hands it to the tracer's ring, layer
// histogram and JSONL sink. End is idempotent in effect only in that a
// second call re-records; call it exactly once.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	s.DurNs = time.Since(s.start).Nanoseconds()
	s.tr.add(*s)
}

// EndAt stamps the duration against an explicit end time (spans whose
// boundaries are taken from recorded campaign timestamps rather than
// "now").
func (s *Span) EndAt(t time.Time) {
	if s == nil || s.tr == nil {
		return
	}
	s.DurNs = t.Sub(s.start).Nanoseconds()
	if s.DurNs < 0 {
		s.DurNs = 0
	}
	s.tr.add(*s)
}

// tracerRingCap bounds the in-memory span ring: enough for the structural
// spans of a large campaign (root, queue, image, executor, per-shard,
// per-batch) while keeping a long-lived server at a fixed footprint. The
// JSONL sink still sees every span; only the query ring overwrites.
const tracerRingCap = 4096

// Tracer mints spans for one campaign trace. IDs come from a splitmix64
// stream seeded by the campaign seed: draw n yields
// spanMix(seed + n*gamma), so two runs of the same campaign mint the same
// ID sequence. All methods are safe for concurrent use and nil-safe, so
// instrumentation sites need no "tracing enabled" branches.
type Tracer struct {
	seed uint64
	seq  atomic.Uint64

	mu      sync.Mutex
	traceID string
	sink    *TraceSink
	ring    []Span
	next    int // ring write cursor once len(ring) == cap
	total   int // spans ever added (total - len(ring) were overwritten)
	byLayer map[string]*Hist
}

// NewTracer builds a tracer whose ID stream is seeded by the campaign
// seed. The trace ID itself is the stream's first two draws; adopt a
// propagated ID instead with SetTraceID.
func NewTracer(seed uint64) *Tracer {
	t := &Tracer{seed: seed, byLayer: make(map[string]*Hist)}
	t.traceID = fmt.Sprintf("%016x%016x", t.nextID(), t.nextID())
	return t
}

func (t *Tracer) nextID() uint64 {
	n := t.seq.Add(1)
	return spanMix(t.seed + n*spanGamma)
}

// SetTraceID adopts a propagated trace ID (a worker joining a server's
// trace). Set it before starting spans.
func (t *Tracer) SetTraceID(id string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// TraceID returns the trace ID spans are minted under.
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// SetSink mirrors every subsequently finished span as one JSONL line
// through the sink (unsampled, like shard events). Nil detaches.
func (t *Tracer) SetSink(s *TraceSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// StartSpan opens a span under parent (zero SpanContext for a root span).
func (t *Tracer) StartSpan(name, layer string, parent SpanContext) *Span {
	return t.StartSpanAt(name, layer, parent, time.Now())
}

// StartSpanAt opens a span whose start boundary is a recorded timestamp
// (e.g. a campaign's submit time) rather than "now".
func (t *Tracer) StartSpanAt(name, layer string, parent SpanContext, at time.Time) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		TraceID:  t.TraceID(),
		SpanID:   fmt.Sprintf("%016x", t.nextID()),
		ParentID: parent.SpanID,
		Name:     name,
		Layer:    layer,
		StartNs:  at.UnixNano(),
		tr:       t,
		start:    at,
	}
}

// Add imports an already-finished span — the path for worker span segments
// carried home on the dist complete message.
func (t *Tracer) Add(sp Span) {
	if t == nil {
		return
	}
	sp.tr = nil
	t.add(sp)
}

func (t *Tracer) add(sp Span) {
	sp.tr = nil
	t.mu.Lock()
	h := t.byLayer[sp.Layer]
	if h == nil {
		h = &Hist{}
		t.byLayer[sp.Layer] = h
	}
	if len(t.ring) < tracerRingCap {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next = (t.next + 1) % tracerRingCap
	}
	t.total++
	sink := t.sink
	t.mu.Unlock()
	h.Observe(uint64(sp.DurNs))
	sink.RecordJSON(&sp)
}

// Spans returns the ring's finished spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many spans were ever finished; Total() - len(Spans())
// were overwritten by the bounded ring.
func (t *Tracer) Total() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// LayerSnapshots returns the per-layer span-duration histograms in their
// mergeable snapshot form — a multi-campaign server merges these across
// its per-campaign tracers before exporting.
func (t *Tracer) LayerSnapshots() map[string]HistSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snaps := make(map[string]HistSnapshot, len(t.byLayer))
	for layer, h := range t.byLayer {
		snaps[layer] = h.Snapshot()
	}
	return snaps
}

// WriteSpanHists renders the per-layer span-duration histograms in the
// Prometheus text format as {prefix}_span_{layer}_ns — the log2 latency
// shape of each tracing layer (server, store, coord, worker, core,
// engine).
func (t *Tracer) WriteSpanHists(w io.Writer, prefix string) error {
	return WriteSpanHistSnapshots(w, prefix, t.LayerSnapshots())
}

// WriteSpanHistSnapshots renders per-layer span-duration snapshots (e.g.
// merged across tracers) as {prefix}_span_{layer}_ns.
func WriteSpanHistSnapshots(w io.Writer, prefix string, snaps map[string]HistSnapshot) error {
	for _, layer := range sortedKeys(snaps) {
		if err := WriteHistPrometheus(w, prefix, "span_"+layer+"_ns", snaps[layer]); err != nil {
			return err
		}
	}
	return nil
}
