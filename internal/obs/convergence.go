package obs

import (
	"fmt"
	"io"
	"sort"

	"sfi/internal/stats"
)

// Statistical-convergence views: any metrics snapshot (one worker, a merged
// campaign, or the fleet aggregator) already carries the per-class outcome
// counts a stats.StopRule needs, so the CI derivation is a pure function of
// the snapshot — the same code serves the live progress line, /metrics
// gauges, the distributed /v1/status convergence block, and JSONL trace
// events.

// Convergence evaluates rule over the snapshot's outcome counters. classes
// lists the tracked outcome classes in reporting order (empty names are
// code-index padding and skipped); the population size is the snapshot's
// injection count. strata adds per-unit and per-type breakdowns, each
// stratum evaluated as its own population. Nil-safe (returns nil).
func (s *Snapshot) Convergence(classes []string, rule stats.StopRule, strata bool) *stats.Convergence {
	if s == nil || !rule.Enabled() {
		return nil
	}
	c := rule.Eval(classes, toInt64Counts(s.Outcomes), int64(s.Injections))
	if strata {
		c.AddStrata(rule, classes, toStrata(s.ByUnit), toStrata(s.ByType))
	}
	return c
}

// Convergence evaluates rule over the fleet's current aggregate view —
// sealed (exact) completed-shard snapshots plus live heartbeat deltas from
// in-flight shards. Nil-safe (returns nil).
func (f *Fleet) Convergence(classes []string, rule stats.StopRule, strata bool) *stats.Convergence {
	if f == nil {
		return nil
	}
	return f.Snapshot().Convergence(classes, rule, strata)
}

func toInt64Counts(m map[string]uint64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = int64(v)
	}
	return out
}

func toStrata(m map[string]map[string]uint64) map[string]stats.StratumCounts {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]stats.StratumCounts, len(m))
	for name, row := range m {
		s := stats.StratumCounts{Counts: toInt64Counts(row)}
		for _, v := range row {
			s.Total += int64(v)
		}
		out[name] = s
	}
	return out
}

// WriteConvergencePrometheus renders a convergence evaluation as Prometheus
// gauges under prefix: per-class interval bounds and widths
// (prefix_ci_lo/hi/width{class=...}), per-class and overall converged flags,
// and the rule's target margin. Nil c writes nothing. Output order is
// deterministic (classes keep their reporting order).
func WriteConvergencePrometheus(w io.Writer, prefix string, c *stats.Convergence) error {
	if c == nil {
		return nil
	}
	if prefix == "" {
		prefix = "sfi"
	}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	gauge := func(name string, v float64) {
		p("# TYPE %s_%s gauge\n%s_%s %g\n", prefix, name, prefix, name, v)
	}
	gauge("ci_target_margin", c.TargetMargin)
	gauge("ci_confidence", c.Confidence)
	gauge("converged", boolGauge(c.Converged))
	gauge("ci_widest_width", c.WidestWidth)
	perClass := func(name string, value func(stats.ClassInterval) float64) {
		p("# TYPE %s_%s gauge\n", prefix, name)
		for _, ci := range c.Classes {
			p("%s_%s{class=%q} %g\n", prefix, name, ci.Class, value(ci))
		}
	}
	perClass("ci_lo", func(ci stats.ClassInterval) float64 { return ci.Lo })
	perClass("ci_hi", func(ci stats.ClassInterval) float64 { return ci.Hi })
	perClass("ci_width", func(ci stats.ClassInterval) float64 { return ci.Width })
	perClass("class_converged", func(ci stats.ClassInterval) float64 { return boolGauge(ci.Converged) })
	if len(c.ByStratum) > 0 {
		// Stratified campaigns: per-sampling-stratum sample counts and
		// widest class widths, plus the widest unconverged stratum. Absent
		// for uniform campaigns, whose scrape output is unchanged.
		gauge("stratum_widest_width", c.WidestStratumWidth)
		p("# TYPE %s_stratum_n gauge\n", prefix)
		for _, name := range sortedStratumNames(c.ByStratum) {
			n := int64(0)
			if cis := c.ByStratum[name]; len(cis) > 0 {
				n = cis[0].N
			}
			p("%s_stratum_n{stratum=%q} %d\n", prefix, name, n)
		}
		p("# TYPE %s_stratum_width gauge\n", prefix)
		for _, name := range sortedStratumNames(c.ByStratum) {
			widest := 0.0
			for _, ci := range c.ByStratum[name] {
				if ci.Width > widest {
					widest = ci.Width
				}
			}
			p("%s_stratum_width{stratum=%q} %g\n", prefix, name, widest)
		}
	}
	return err
}

func sortedStratumNames(m map[string][]stats.ClassInterval) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ConvergenceEvent is one statistical-convergence record in a JSONL trace:
// a class crossing its margin ("class_converged"), the campaign-wide stop
// decision ("stop"), or a distributed coordinator's sealed-counts decision
// ("fleet_stop"). The "convergence" key doubles as the event discriminator,
// like ShardEvent's "shard_event". Emit through TraceSink.RecordJSON.
type ConvergenceEvent struct {
	Kind         string  `json:"convergence"`
	Class        string  `json:"class,omitempty"`
	K            int64   `json:"k,omitempty"`
	N            int64   `json:"n"`
	Lo           float64 `json:"lo,omitempty"`
	Hi           float64 `json:"hi,omitempty"`
	Width        float64 `json:"width"`
	TargetMargin float64 `json:"target_margin"`
	Confidence   float64 `json:"confidence"`
}

// AllocationEvent is one allocation-epoch decision in a JSONL trace: how a
// stratified campaign split the epoch's budget across its sampling strata.
// The "allocation" key doubles as the event discriminator, like
// ConvergenceEvent's "convergence". Emitted by the local stratified
// executor and by the distributed coordinator at every epoch boundary
// (including the bootstrap epoch 0).
type AllocationEvent struct {
	Kind   string               `json:"allocation"`
	Epoch  int                  `json:"epoch"`
	Budget int                  `json:"budget"`
	Shares []stats.StratumShare `json:"shares"`
}
