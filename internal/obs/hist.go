package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of exponential histogram buckets: bucket i
// counts observed values whose bit length is i, i.e. values in
// [2^(i-1), 2^i). Bucket 0 holds exact zeros. 64-bit values fit in 65
// buckets.
const histBuckets = 65

// Hist is a lock-free exponential histogram over uint64 values (latencies
// in nanoseconds, cycle counts). Observe is a handful of uncontended atomic
// adds; Snapshot is a consistent-enough copy for reporting (individual
// counters are read atomically, the set is not fenced — fine for
// monitoring).
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram into its plain (mergeable, serializable)
// form.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is the plain-value form of a Hist: per-bucket counts plus
// the running count and sum. Bucket i spans [2^(i-1), 2^i) (bucket 0 is
// exact zeros), so quantiles resolve to within a factor of two.
type HistSnapshot struct {
	Buckets [histBuckets]uint64 `json:"buckets"`
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
}

// Merge adds another snapshot into this one (cross-worker aggregation).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub returns this snapshot minus an earlier snapshot of the same
// histogram — the per-bucket delta between two points in time. Counters
// only grow, so a shrunk counter (snapshots from different collectors)
// clamps to zero instead of wrapping.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	var d HistSnapshot
	for i := range s.Buckets {
		d.Buckets[i] = sub64(s.Buckets[i], o.Buckets[i])
	}
	d.Count = sub64(s.Count, o.Count)
	d.Sum = sub64(s.Sum, o.Sum)
	return d
}

func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Mean returns the mean of the observed values (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	return uint64(1) << (i - 1), uint64(1)<<i - 1
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the q-th observation and interpolating linearly inside it. The
// estimate is exact to the bucket's factor-of-two resolution.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	seen := 0.0
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - seen) / float64(n)
			return lo + uint64(frac*float64(hi-lo))
		}
		seen += float64(n)
	}
	// All mass consumed (q == 1): the top of the highest non-empty bucket.
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	return 0
}
