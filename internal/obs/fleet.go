package obs

import "sync"

// Fleet aggregates metrics streamed in from many remote sources — one per
// in-flight shard of a distributed campaign — into a single live
// fleet-wide Snapshot. Each source contributes incremental deltas
// (Snapshot.Sub of successive cumulative snapshots, piggybacked on worker
// heartbeats) while it runs, and a final authoritative snapshot when it
// completes.
//
// The aggregation keeps two pools: sealed (the merged final snapshots of
// completed sources — exact) and live (per-source accumulated deltas —
// monitoring-grade). Sealing a source with its final snapshot *replaces*
// its live accumulation, so deltas already merged are never counted twice
// and the fleet view converges to the exact merged total the moment the
// last source seals. Discarding a source (shard lease expired; its work
// will be redone elsewhere) drops its live contribution so abandoned
// partial work never pollutes the converged view.
type Fleet struct {
	mu     sync.Mutex
	sealed *Snapshot
	live   map[string]*Snapshot
}

// NewFleet returns an empty fleet aggregator.
func NewFleet() *Fleet {
	return &Fleet{sealed: NewSnapshot(), live: make(map[string]*Snapshot)}
}

// Observe accumulates one delta from a live source.
func (f *Fleet) Observe(source string, delta *Snapshot) {
	if f == nil || delta == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	acc := f.live[source]
	if acc == nil {
		acc = NewSnapshot()
		f.live[source] = acc
	}
	acc.Merge(delta)
}

// Seal finishes a source: its live delta accumulation is dropped and
// replaced by final, the source's authoritative cumulative snapshot (so
// heartbeat deltas and the final report are never double-counted). A nil
// final keeps the live accumulation instead — the best information
// available when a source completes without reporting metrics.
func (f *Fleet) Seal(source string, final *Snapshot) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if final == nil {
		final = f.live[source]
	}
	f.sealed.Merge(final)
	delete(f.live, source)
}

// Discard drops a live source's accumulated deltas without sealing —
// the shard was abandoned and its injections will be redone (and counted)
// by another lease.
func (f *Fleet) Discard(source string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.live, source)
}

// Snapshot returns the current fleet-wide view: sealed plus every live
// accumulation, merged into an independent copy.
func (f *Fleet) Snapshot() *Snapshot {
	s := NewSnapshot()
	if f == nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s.Merge(f.sealed)
	for _, acc := range f.live {
		s.Merge(acc)
	}
	return s
}

// Source returns an independent copy of one live source's accumulation
// (nil if the source has no live contribution).
func (f *Fleet) Source(source string) *Snapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	acc := f.live[source]
	if acc == nil {
		return nil
	}
	return acc.Clone()
}
