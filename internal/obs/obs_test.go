package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41}, {^uint64(0), 64},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := map[int]uint64{}
	for _, c := range cases {
		want[c.bucket]++
	}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
	var sum uint64
	for _, c := range cases {
		sum += c.v
	}
	if s.Sum != sum {
		t.Errorf("sum = %d, want %d", s.Sum, sum)
	}
}

func TestHistBucketBoundsCoverValues(t *testing.T) {
	// Every observed value must fall inside its bucket's [lo, hi] range.
	for _, v := range []uint64{0, 1, 2, 3, 5, 100, 4096, 1<<33 + 7} {
		var h Hist
		h.Observe(v)
		s := h.Snapshot()
		for i, n := range s.Buckets {
			if n == 0 {
				continue
			}
			lo, hi := bucketBounds(i)
			if v < lo || v > hi {
				t.Errorf("value %d landed in bucket %d spanning [%d,%d]", v, i, lo, hi)
			}
		}
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Observe(100) // all mass in one bucket: [64,127]
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		got := s.Quantile(q)
		if got < 64 || got > 127 {
			t.Errorf("q%.2f = %d, want within [64,127]", q, got)
		}
	}
	// Two separated modes: the median must sit in the lower, p99 in the upper.
	var h2 Hist
	for i := 0; i < 900; i++ {
		h2.Observe(10)
	}
	for i := 0; i < 100; i++ {
		h2.Observe(100_000)
	}
	s2 := h2.Snapshot()
	if p50 := s2.Quantile(0.5); p50 > 15 {
		t.Errorf("p50 = %d, want ~10", p50)
	}
	if p99 := s2.Quantile(0.99); p99 < 65536 {
		t.Errorf("p99 = %d, want in the upper mode", p99)
	}
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean not 0")
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := uint64(0); i < 100; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	var ref Hist
	for i := uint64(0); i < 100; i++ {
		ref.Observe(i)
		ref.Observe(i * 1000)
	}
	if merged != ref.Snapshot() {
		t.Error("merged snapshot differs from jointly-observed reference")
	}
}

var testOutcomes = []string{"", "vanished", "corrected", "hang", "checkstop", "sdc"}

func TestMetricsSnapshotMergeAcrossWorkers(t *testing.T) {
	// Per-worker collectors recording concurrently; the merged snapshot
	// must equal the exact totals.
	const workers, perWorker = 4, 10_000
	ms := make([]*Metrics, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ms[w] = New(testOutcomes)
		wg.Add(1)
		go func(m *Metrics, w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code := 1 + (i+w)%5
				m.IncOutcome(code, "LSU", "FUNC")
				m.ObserveInjection(uint64(1000 + i))
				m.ObserveRestore(uint64(i))
				m.ObserveRun(uint64(i % 512))
				if code == 2 {
					m.ObserveDetect(uint64(i % 64))
				}
			}
		}(ms[w], w)
	}
	wg.Wait()
	merged := NewSnapshot()
	for _, m := range ms {
		merged.Merge(m.Snapshot())
	}
	if merged.Injections != workers*perWorker {
		t.Errorf("injections = %d, want %d", merged.Injections, workers*perWorker)
	}
	if merged.Restores != workers*perWorker {
		t.Errorf("restores = %d", merged.Restores)
	}
	var outcomeSum uint64
	for _, n := range merged.Outcomes {
		outcomeSum += n
	}
	if outcomeSum != workers*perWorker {
		t.Errorf("outcome counts sum to %d, want %d", outcomeSum, workers*perWorker)
	}
	if merged.ByUnit["LSU"]["corrected"] != merged.Outcomes["corrected"] {
		t.Errorf("by-unit corrected %d != total corrected %d",
			merged.ByUnit["LSU"]["corrected"], merged.Outcomes["corrected"])
	}
	if merged.InjectionNs.Count != workers*perWorker {
		t.Errorf("injection histogram count = %d", merged.InjectionNs.Count)
	}
	if merged.DetectCycles.Count != merged.Outcomes["corrected"] {
		t.Errorf("detect count %d != corrected %d",
			merged.DetectCycles.Count, merged.Outcomes["corrected"])
	}
}

func TestNilMetricsIsNoOp(t *testing.T) {
	var m *Metrics
	m.ObserveInjection(1)
	m.ObserveRestore(1)
	m.ObserveRun(1)
	m.ObserveDetect(1)
	m.IncOutcome(1, "LSU", "FUNC")
	s := m.Snapshot()
	if s.Injections != 0 || len(s.Outcomes) != 0 {
		t.Error("nil metrics recorded something")
	}
	var sink *TraceSink
	sink.Record(&TraceEvent{})
	if sink.Recorded() != 0 || sink.Dropped() != 0 || sink.Err() != nil {
		t.Error("nil sink not inert")
	}
}

func TestTraceSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceSink(&buf, TraceOptions{})
	for i := 0; i < 10; i++ {
		s.Record(&TraceEvent{Bit: i, Outcome: "vanished", Unit: "IFU"})
	}
	if s.Recorded() != 10 || s.Dropped() != 0 {
		t.Fatalf("recorded %d dropped %d", s.Recorded(), s.Dropped())
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, ln := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if ev.Seq != int64(i) || ev.Bit != i {
			t.Errorf("line %d: seq %d bit %d", i, ev.Seq, ev.Bit)
		}
	}
}

func TestTraceSinkSamplingAndBound(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceSink(&buf, TraceOptions{Sample: 3})
	for i := 0; i < 9; i++ {
		s.Record(&TraceEvent{Bit: i})
	}
	if s.Recorded() != 3 || s.Dropped() != 6 {
		t.Errorf("sample=3 over 9: recorded %d dropped %d", s.Recorded(), s.Dropped())
	}

	var buf2 bytes.Buffer
	s2 := NewTraceSink(&buf2, TraceOptions{Max: 5})
	for i := 0; i < 20; i++ {
		s2.Record(&TraceEvent{Bit: i})
	}
	if s2.Recorded() != 5 || s2.Dropped() != 15 {
		t.Errorf("max=5 over 20: recorded %d dropped %d", s2.Recorded(), s2.Dropped())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFail
	}
	f.n--
	return len(p), nil
}

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "forced write failure" }

func TestTraceSinkWriteError(t *testing.T) {
	s := NewTraceSink(&failWriter{n: 2}, TraceOptions{})
	for i := 0; i < 5; i++ {
		s.Record(&TraceEvent{})
	}
	if s.Recorded() != 2 || s.Dropped() != 3 {
		t.Errorf("recorded %d dropped %d", s.Recorded(), s.Dropped())
	}
	if s.Err() == nil {
		t.Error("write error not surfaced")
	}
}

func TestWritePrometheus(t *testing.T) {
	m := New(testOutcomes)
	m.IncOutcome(1, "IFU", "FUNC")
	m.IncOutcome(2, "LSU", "MODE")
	m.ObserveInjection(5000)
	m.ObserveRestore(900)
	m.ObserveRun(1200)
	var buf bytes.Buffer
	if err := m.Snapshot().WritePrometheus(&buf, "sfi"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sfi_injections_total 1",
		`sfi_outcome_total{outcome="vanished"} 1`,
		`sfi_outcome_total{outcome="corrected"} 1`,
		`sfi_unit_outcome_total{unit="LSU",outcome="corrected"} 1`,
		`sfi_latchtype_outcome_total{type="FUNC",outcome="vanished"} 1`,
		`sfi_restore_ns_bucket{le="+Inf"} 1`,
		"sfi_restore_ns_sum 900",
		"sfi_injection_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q\n%s", want, out)
		}
	}
}

func TestSnapshotMergeEmpty(t *testing.T) {
	s := NewSnapshot()
	s.Merge(nil)
	m := New(testOutcomes)
	m.IncOutcome(1, "IFU", "FUNC")
	s.Merge(m.Snapshot())
	if s.Outcomes["vanished"] != 1 {
		t.Error("merge into empty snapshot lost counts")
	}
}

// fillSnapshot builds a snapshot with n injections' worth of every
// counter family, offset by base so successive calls differ.
func fillSnapshot(n int, base uint64) *Snapshot {
	m := New([]string{"vanished", "corrected", "hang", "checkstop", "sdc"})
	for i := 0; i < n; i++ {
		m.ObserveInjection(base + uint64(i))
		m.ObserveRestore(base + uint64(i)/2)
		m.ObserveRun(100 + base + uint64(i))
		m.IncOutcome(0, "FXU", "FUNC")
		if i%2 == 0 {
			m.IncOutcome(4, "LSU", "REGFILE")
			m.ObserveDetect(7 + base)
		}
	}
	return m.Snapshot()
}

func TestSnapshotSubDelta(t *testing.T) {
	prev := fillSnapshot(3, 10)
	cur := prev.Clone()
	cur.Merge(fillSnapshot(5, 50))

	d := cur.Sub(prev)
	// Delta plus prev must reproduce cur exactly: Sub is the inverse of
	// Merge for monotone counters.
	back := prev.Clone()
	back.Merge(d)
	if !reflect.DeepEqual(back, cur) {
		t.Fatalf("prev + (cur - prev) != cur:\n%+v\n%+v", back, cur)
	}
	// Subtracting from itself leaves nothing.
	if z := cur.Sub(cur); !z.Empty() {
		t.Fatalf("cur - cur not empty: %+v", z)
	}
	// nil prev means "everything is new".
	if all := cur.Sub(nil); !reflect.DeepEqual(all, cur.Clone()) {
		t.Fatalf("cur - nil != cur")
	}
	// Zero-valued map entries are omitted so deltas marshal small.
	if _, ok := d.Outcomes["hang"]; ok {
		t.Error("delta carries a zero outcome entry")
	}
}

func TestSnapshotEmpty(t *testing.T) {
	if !NewSnapshot().Empty() {
		t.Error("fresh snapshot not Empty")
	}
	s := NewSnapshot()
	s.Outcomes["vanished"] = 1
	if s.Empty() {
		t.Error("snapshot with an outcome reported Empty")
	}
}

// TestFleetSealExactness is the no-double-count property the live fleet
// view depends on: accumulate deltas for a source, then seal it with the
// exact final snapshot — the fleet total must equal the finals alone, with
// the deltas fully replaced.
func TestFleetSealExactness(t *testing.T) {
	f := NewFleet()

	// Source A: two deltas, then a final that (as in real shards) covers
	// slightly more than the deltas reported.
	f.Observe("a", fillSnapshot(2, 5))
	f.Observe("a", fillSnapshot(3, 9))
	if got := f.Snapshot().Injections; got != 5 {
		t.Fatalf("live fleet injections %d, want 5", got)
	}
	finalA := fillSnapshot(7, 5)
	f.Seal("a", finalA)

	// Source B: sealed with no deltas ever observed (shard completed
	// between heartbeats).
	finalB := fillSnapshot(4, 100)
	f.Seal("b", finalB)

	want := finalA.Clone()
	want.Merge(finalB)
	if got := f.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("sealed fleet view differs from merged finals:\n%+v\n%+v", got, want)
	}

	// Seal with nil final keeps the accumulated deltas (a source whose
	// exact total never arrives still counts what it reported).
	f.Observe("c", fillSnapshot(2, 40))
	f.Seal("c", nil)
	want.Merge(fillSnapshot(2, 40))
	if got := f.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("nil-final seal dropped the live deltas:\n%+v\n%+v", got, want)
	}
}

func TestFleetDiscard(t *testing.T) {
	f := NewFleet()
	f.Observe("a", fillSnapshot(3, 5))
	f.Observe("b", fillSnapshot(2, 9))
	f.Discard("a")
	if got, want := f.Snapshot().Injections, uint64(2); got != want {
		t.Fatalf("after discard: %d injections, want %d", got, want)
	}
	// Discarding an unknown source is a no-op, as is everything on a nil
	// fleet.
	f.Discard("ghost")
	var nilFleet *Fleet
	nilFleet.Observe("x", fillSnapshot(1, 1))
	nilFleet.Seal("x", nil)
	nilFleet.Discard("x")
	if s := nilFleet.Snapshot(); s == nil || !s.Empty() {
		t.Fatalf("nil fleet snapshot = %+v, want empty", s)
	}
}

func TestFleetSourceIsolation(t *testing.T) {
	f := NewFleet()
	f.Observe("a", fillSnapshot(3, 5))
	// Source returns a copy: mutating it must not corrupt the fleet.
	src := f.Source("a")
	if src == nil || src.Injections != 3 {
		t.Fatalf("Source(a) = %+v, want 3 injections", src)
	}
	src.Injections = 999
	if got := f.Snapshot().Injections; got != 3 {
		t.Fatalf("fleet corrupted through Source copy: %d injections", got)
	}
	if f.Source("ghost") != nil {
		t.Error("Source of unknown key not nil")
	}
}

// TestShardEventJSONL: shard lifecycle events and raw JSON lines share
// the sink with sampled injection events but bypass sampling and budget.
func TestShardEventJSONL(t *testing.T) {
	var buf bytes.Buffer
	// Sample 1000 + Max 1: injection events are throttled hard...
	sink := NewTraceSink(&buf, TraceOptions{Sample: 1000, Max: 1})
	sink.Record(&TraceEvent{Bit: 1, Outcome: "vanished"})
	sink.Record(&TraceEvent{Bit: 2, Outcome: "vanished"}) // sampled out
	// ...but lifecycle events always land.
	for i := 0; i < 3; i++ {
		sink.RecordShard(&ShardEvent{Kind: "lease", Shard: i, Worker: "w", Attempt: 1})
	}
	sink.RecordJSON(map[string]any{"custom": true})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("sink wrote %d lines, want 5 (1 injection + 3 shard + 1 raw)", len(lines))
	}
	var ev ShardEvent
	if err := json.Unmarshal([]byte(lines[2]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "lease" || ev.Shard != 1 || ev.Worker != "w" {
		t.Fatalf("shard event line = %+v", ev)
	}
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Errorf("invalid JSONL line: %s", line)
		}
	}
}
