// Package obs is the campaign observability layer: lock-cheap atomic
// metrics (outcome counters per unit and latch type, latency and cycle
// histograms), structured per-injection trace events, and exporters
// (expvar, Prometheus text). It sits below every other internal package —
// proc, emu and core all accept an optional *Metrics — and the whole layer
// is off by default: every Metrics method is nil-safe, so uninstrumented
// runs pay only a nil pointer test on the hot path (guarded by the
// overhead benchmark and the make ci overhead gate).
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Metrics collects one worker's (or one process's) campaign counters. All
// mutators are safe for concurrent use and safe on a nil receiver (no-op),
// so instrumentation sites never need an enable flag beyond the pointer
// itself. For contention-free collection give each campaign worker its own
// Metrics and merge the Snapshots.
type Metrics struct {
	outcomeNames []string // index = outcome code; fixed at construction

	injections atomic.Uint64
	restores   atomic.Uint64
	cycles     atomic.Uint64 // cycles clocked during observed propagation windows
	busyNs     atomic.Uint64 // wall nanoseconds spent inside RunInjection
	batches    atomic.Uint64 // bit-parallel batched passes completed

	outcomes []atomic.Uint64 // index = outcome code
	byUnit   sync.Map        // unit name -> *[]atomic.Uint64 (len = len(outcomes))
	byType   sync.Map        // latch-type name -> *[]atomic.Uint64

	injectionNs     Hist // whole-injection latency (restore..classify), ns
	restoreNs       Hist // checkpoint-restore latency, ns (timed in proc)
	propagateCycles Hist // cycles per observed propagation window
	detectCycles    Hist // cycles from flip to first checker detection
	laneOccupancy   Hist // injections carried per batched pass
}

// New builds a Metrics collector. outcomeNames maps outcome codes to their
// reporting names (index = code); codes at or above len(outcomeNames) are
// rendered as "outcome<code>".
func New(outcomeNames []string) *Metrics {
	m := &Metrics{
		outcomeNames: append([]string(nil), outcomeNames...),
		outcomes:     make([]atomic.Uint64, len(outcomeNames)),
	}
	return m
}

func (m *Metrics) outcomeName(code int) string {
	if code >= 0 && code < len(m.outcomeNames) && m.outcomeNames[code] != "" {
		return m.outcomeNames[code]
	}
	return fmt.Sprintf("outcome%d", code)
}

// vec returns the per-outcome counter row for key in the given map,
// creating it on first use.
func (m *Metrics) vec(mp *sync.Map, key string) []atomic.Uint64 {
	if v, ok := mp.Load(key); ok {
		return *v.(*[]atomic.Uint64)
	}
	row := make([]atomic.Uint64, len(m.outcomes))
	v, _ := mp.LoadOrStore(key, &row)
	return *v.(*[]atomic.Uint64)
}

// ObserveInjection records one completed injection's wall latency.
func (m *Metrics) ObserveInjection(ns uint64) {
	if m == nil {
		return
	}
	m.injections.Add(1)
	m.busyNs.Add(ns)
	m.injectionNs.Observe(ns)
}

// ObserveRestore records one checkpoint-restore latency.
func (m *Metrics) ObserveRestore(ns uint64) {
	if m == nil {
		return
	}
	m.restores.Add(1)
	m.restoreNs.Observe(ns)
}

// ObserveRun records the cycle count of one observed propagation window.
func (m *Metrics) ObserveRun(cycles uint64) {
	if m == nil {
		return
	}
	m.cycles.Add(cycles)
	m.propagateCycles.Observe(cycles)
}

// ObserveBatch records one completed bit-parallel batched pass and the
// number of fault lanes it carried — batch efficiency shows up as the
// lane-occupancy histogram staying near the backend's lane capacity.
func (m *Metrics) ObserveBatch(lanes uint64) {
	if m == nil {
		return
	}
	m.batches.Add(1)
	m.laneOccupancy.Observe(lanes)
}

// ObserveDetect records a cycles-to-first-detection latency.
func (m *Metrics) ObserveDetect(cycles uint64) {
	if m == nil {
		return
	}
	m.detectCycles.Observe(cycles)
}

// IncOutcome counts one classified injection under its outcome code, unit
// and latch-type.
func (m *Metrics) IncOutcome(code int, unit, latchType string) {
	if m == nil {
		return
	}
	if code >= 0 && code < len(m.outcomes) {
		m.outcomes[code].Add(1)
	}
	if unit != "" {
		row := m.vec(&m.byUnit, unit)
		if code >= 0 && code < len(row) {
			row[code].Add(1)
		}
	}
	if latchType != "" {
		row := m.vec(&m.byType, latchType)
		if code >= 0 && code < len(row) {
			row[code].Add(1)
		}
	}
}

// Snapshot copies the live counters into a plain typed struct. Safe to call
// while workers are still recording (monitoring reads); for exact totals
// snapshot after the campaign has finished.
func (m *Metrics) Snapshot() *Snapshot {
	s := NewSnapshot()
	if m == nil {
		return s
	}
	s.Injections = m.injections.Load()
	s.Restores = m.restores.Load()
	s.Cycles = m.cycles.Load()
	s.BusyNs = m.busyNs.Load()
	s.Batches = m.batches.Load()
	for code := range m.outcomes {
		if n := m.outcomes[code].Load(); n > 0 {
			s.Outcomes[m.outcomeName(code)] = n
		}
	}
	copyVecs := func(mp *sync.Map, dst map[string]map[string]uint64) {
		mp.Range(func(k, v any) bool {
			row := *v.(*[]atomic.Uint64)
			out := make(map[string]uint64)
			for code := range row {
				if n := row[code].Load(); n > 0 {
					out[m.outcomeName(code)] = n
				}
			}
			if len(out) > 0 {
				dst[k.(string)] = out
			}
			return true
		})
	}
	copyVecs(&m.byUnit, s.ByUnit)
	copyVecs(&m.byType, s.ByType)
	s.InjectionNs = m.injectionNs.Snapshot()
	s.RestoreNs = m.restoreNs.Snapshot()
	s.PropagateCycles = m.propagateCycles.Snapshot()
	s.DetectCycles = m.detectCycles.Snapshot()
	s.LaneOccupancy = m.laneOccupancy.Snapshot()
	return s
}

// Snapshot is the plain-value, mergeable view of a Metrics collector — the
// typed struct campaign reports carry and the exporters serialize.
type Snapshot struct {
	Injections uint64 `json:"injections"`
	Restores   uint64 `json:"restores"`
	Cycles     uint64 `json:"cycles"`
	BusyNs     uint64 `json:"busy_ns"`
	Batches    uint64 `json:"batches"`

	Outcomes map[string]uint64            `json:"outcomes"`
	ByUnit   map[string]map[string]uint64 `json:"by_unit,omitempty"`
	ByType   map[string]map[string]uint64 `json:"by_type,omitempty"`

	InjectionNs     HistSnapshot `json:"injection_ns"`
	RestoreNs       HistSnapshot `json:"restore_ns"`
	PropagateCycles HistSnapshot `json:"propagate_cycles"`
	DetectCycles    HistSnapshot `json:"detect_cycles"`
	LaneOccupancy   HistSnapshot `json:"lane_occupancy"`
}

// NewSnapshot returns an empty snapshot with its maps allocated.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Outcomes: make(map[string]uint64),
		ByUnit:   make(map[string]map[string]uint64),
		ByType:   make(map[string]map[string]uint64),
	}
}

// Merge adds another snapshot into this one — the cross-worker aggregation
// primitive.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	s.Injections += o.Injections
	s.Restores += o.Restores
	s.Cycles += o.Cycles
	s.BusyNs += o.BusyNs
	s.Batches += o.Batches
	mergeCounts := func(dst, src map[string]uint64) map[string]uint64 {
		if len(src) == 0 {
			return dst
		}
		if dst == nil {
			dst = make(map[string]uint64, len(src))
		}
		for k, v := range src {
			dst[k] += v
		}
		return dst
	}
	s.Outcomes = mergeCounts(s.Outcomes, o.Outcomes)
	for k, src := range o.ByUnit {
		if s.ByUnit == nil {
			s.ByUnit = make(map[string]map[string]uint64)
		}
		s.ByUnit[k] = mergeCounts(s.ByUnit[k], src)
	}
	for k, src := range o.ByType {
		if s.ByType == nil {
			s.ByType = make(map[string]map[string]uint64)
		}
		s.ByType[k] = mergeCounts(s.ByType[k], src)
	}
	s.InjectionNs.Merge(o.InjectionNs)
	s.RestoreNs.Merge(o.RestoreNs)
	s.PropagateCycles.Merge(o.PropagateCycles)
	s.DetectCycles.Merge(o.DetectCycles)
	s.LaneOccupancy.Merge(o.LaneOccupancy)
}

// Clone returns an independent deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	c := NewSnapshot()
	c.Merge(s)
	return c
}

// Sub returns this snapshot minus prev, an earlier snapshot of the same
// (monotonically growing) collector — the wire delta a distributed worker
// piggybacks on heartbeats. Accumulating every delta from one collector
// reproduces its cumulative snapshot exactly: for any counter,
// sum(delta_i) = final - initial. prev may be nil (the delta is then the
// whole snapshot). Counters that shrank (mismatched snapshots) clamp to
// zero; zero-valued map entries are omitted from the delta.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	d := NewSnapshot()
	if s == nil {
		return d
	}
	if prev == nil {
		prev = NewSnapshot()
	}
	d.Injections = sub64(s.Injections, prev.Injections)
	d.Restores = sub64(s.Restores, prev.Restores)
	d.Cycles = sub64(s.Cycles, prev.Cycles)
	d.BusyNs = sub64(s.BusyNs, prev.BusyNs)
	d.Batches = sub64(s.Batches, prev.Batches)
	subCounts := func(cur, old map[string]uint64) map[string]uint64 {
		out := make(map[string]uint64)
		for k, v := range cur {
			if dv := sub64(v, old[k]); dv > 0 {
				out[k] = dv
			}
		}
		return out
	}
	d.Outcomes = subCounts(s.Outcomes, prev.Outcomes)
	subVecs := func(cur, old map[string]map[string]uint64, dst map[string]map[string]uint64) {
		for k, row := range cur {
			if drow := subCounts(row, old[k]); len(drow) > 0 {
				dst[k] = drow
			}
		}
	}
	subVecs(s.ByUnit, prev.ByUnit, d.ByUnit)
	subVecs(s.ByType, prev.ByType, d.ByType)
	d.InjectionNs = s.InjectionNs.Sub(prev.InjectionNs)
	d.RestoreNs = s.RestoreNs.Sub(prev.RestoreNs)
	d.PropagateCycles = s.PropagateCycles.Sub(prev.PropagateCycles)
	d.DetectCycles = s.DetectCycles.Sub(prev.DetectCycles)
	d.LaneOccupancy = s.LaneOccupancy.Sub(prev.LaneOccupancy)
	return d
}

// Empty reports whether the snapshot carries no observations at all (the
// delta of an idle interval).
func (s *Snapshot) Empty() bool {
	return s == nil || (s.Injections == 0 && s.Restores == 0 && s.Cycles == 0 &&
		s.BusyNs == 0 && s.Batches == 0 &&
		len(s.Outcomes) == 0 && len(s.ByUnit) == 0 && len(s.ByType) == 0 &&
		s.InjectionNs.Count == 0 && s.RestoreNs.Count == 0 &&
		s.PropagateCycles.Count == 0 && s.DetectCycles.Count == 0 &&
		s.LaneOccupancy.Count == 0)
}
