package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestWilsonIntervalEdges(t *testing.T) {
	// n = 0: vacuous.
	if lo, hi := WilsonInterval(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("n=0: [%f,%f], want [0,1]", lo, hi)
	}
	// k = 0: lower bound pinned to 0, upper bound strictly inside (0,1).
	lo, hi := WilsonInterval(0, 50, 1.96)
	if lo != 0 || hi <= 0 || hi >= 1 {
		t.Errorf("k=0: [%f,%f]", lo, hi)
	}
	// k = n: mirror image — closed forms are lo = 1/(1+z²/n), hi = 1.
	z := 1.96
	lo, hi = WilsonInterval(50, 50, z)
	wantLo := 1 / (1 + z*z/50)
	if !almost(lo, wantLo, 1e-9) || !almost(hi, 1, 1e-9) {
		t.Errorf("k=n: [%f,%f], want [%f,1]", lo, hi, wantLo)
	}
	// k=0 and k=n are mirror images.
	lo0, hi0 := WilsonInterval(0, 73, z)
	lo1, hi1 := WilsonInterval(73, 73, z)
	if !almost(hi0, 1-lo1, 1e-9) || !almost(lo0, 1-hi1, 1e-9) {
		t.Errorf("k=0 [%f,%f] not the mirror of k=n [%f,%f]", lo0, hi0, lo1, hi1)
	}
}

func TestZForConfidence(t *testing.T) {
	for _, tc := range []struct{ c, want float64 }{
		{0.90, 1.6449}, {0.95, 1.9600}, {0.99, 2.5758},
	} {
		if got := ZForConfidence(tc.c); !almost(got, tc.want, 5e-4) {
			t.Errorf("z(%.2f) = %f, want %f", tc.c, got, tc.want)
		}
	}
}

func TestSequentialZInflatesFixedZ(t *testing.T) {
	// The sequential critical value must always dominate the fixed-n one
	// (it pays for unlimited peeking) and grow with n (later looks get a
	// smaller alpha slice).
	fixed := ZForConfidence(0.95)
	prev := 0.0
	for _, n := range []int{1, 2, 10, 100, 10_000, 1_000_000} {
		z := SequentialZ(0.95, n)
		if z <= fixed {
			t.Errorf("SequentialZ(0.95,%d) = %f, not above fixed %f", n, z, fixed)
		}
		if z <= prev {
			t.Errorf("SequentialZ not increasing at n=%d: %f <= %f", n, z, prev)
		}
		prev = z
	}
	// The alpha-spending inflation stays modest — the price of any-time
	// validity is a bounded constant factor, not a growing one.
	if z := SequentialZ(0.95, 1_000_000); z > 2.5*fixed {
		t.Errorf("SequentialZ(0.95,1e6) = %f, inflation above 2.5x fixed z", z)
	}
}

// Property: at a fixed observed proportion, the sequential Wilson width
// strictly shrinks as n grows — the spending schedule's z grows slower than
// √n tightens the interval. This is what makes "stop at the first
// sufficiently narrow look" well-defined.
func TestSequentialWilsonMonotoneShrink(t *testing.T) {
	widths := func(p float64, ns []int) []float64 {
		out := make([]float64, len(ns))
		for i, n := range ns {
			lo, hi := SequentialWilson(int(p*float64(n)), n, 0.95)
			out[i] = hi - lo
		}
		return out
	}
	ns := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 65536}
	for _, p := range []float64{0, 0.01, 0.1, 0.5, 0.9, 1} {
		w := widths(p, ns)
		for i := 1; i < len(w); i++ {
			if w[i] >= w[i-1] {
				t.Errorf("p=%.2f: width grew at n=%d: %f >= %f", p, ns[i], w[i], w[i-1])
			}
		}
	}
}

func TestQuickSequentialConservative(t *testing.T) {
	// The sequential interval always contains the fixed-z Wilson interval
	// at the same confidence (it is pointwise more conservative).
	f := func(k8, n8 uint8) bool {
		n := int(n8%200) + 1
		k := int(k8) % (n + 1)
		flo, fhi := WilsonInterval(k, n, ZForConfidence(0.95))
		slo, shi := SequentialWilson(k, n, 0.95)
		const eps = 1e-12
		return slo <= flo+eps && shi >= fhi-eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStopRuleEval(t *testing.T) {
	rule := StopRule{TargetMargin: 0.5, Confidence: 0.95, MinPerClass: 10}
	classes := []string{"", "vanished", "sdc"}

	// Below the floor: wide-open intervals, nothing converged.
	c := rule.Eval(classes, map[string]int64{"vanished": 3}, 3)
	if c.Converged {
		t.Error("converged below MinPerClass floor")
	}
	if len(c.Classes) != 2 {
		t.Fatalf("padding class not skipped: %d classes", len(c.Classes))
	}

	// Plenty of samples at extreme proportions: narrow intervals.
	c = rule.Eval(classes, map[string]int64{"vanished": 990, "sdc": 10}, 1000)
	if !c.Converged {
		t.Errorf("not converged at n=1000 with margin 0.5: widest %s %f",
			c.WidestClass, c.WidestWidth)
	}
	for _, ci := range c.Classes {
		if ci.Width > rule.TargetMargin {
			t.Errorf("%s width %f above margin", ci.Class, ci.Width)
		}
		if ci.Lo > ci.Fraction || ci.Fraction > ci.Hi {
			t.Errorf("%s interval [%f,%f] excludes p̂=%f", ci.Class, ci.Lo, ci.Hi, ci.Fraction)
		}
	}
	if c.WidestWidth <= 0 || c.WidestClass == "" {
		t.Errorf("widest margin not reported: %q %f", c.WidestClass, c.WidestWidth)
	}

	// A never-observed class converges once n is large enough — its upper
	// bound collapses toward 0 — so rare-but-absent outcomes terminate.
	c = rule.Eval([]string{"checkstop"}, nil, 1000)
	if !c.Classes[0].Converged || c.Classes[0].K != 0 {
		t.Errorf("absent class did not converge: %+v", c.Classes[0])
	}
}

func TestStopRuleDefaults(t *testing.T) {
	r := StopRule{TargetMargin: 0.1}.normalized()
	if r.Confidence != DefaultConfidence || r.MinPerClass != DefaultMinPerClass {
		t.Errorf("defaults not applied: %+v", r)
	}
	if (StopRule{}).Enabled() {
		t.Error("zero rule must be disabled")
	}
}

func TestEstimatorConcurrent(t *testing.T) {
	rule := StopRule{TargetMargin: 0.2, Confidence: 0.95, MinPerClass: 50}
	est := NewEstimator([]string{"", "vanished", "sdc"}, rule)

	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				code := 1
				if i%10 == 0 {
					code = 2
				}
				unit := "FXU"
				if w%2 == 0 {
					unit = "LSU"
				}
				est.Observe(code, unit, "functional")
			}
		}(w)
	}
	wg.Wait()

	if est.Total() != workers*each {
		t.Fatalf("total = %d, want %d", est.Total(), workers*each)
	}
	c := est.Snapshot(true)
	if c.Total != workers*each {
		t.Fatalf("snapshot total = %d", c.Total)
	}
	for _, ci := range c.Classes {
		want := int64(workers * each * 9 / 10)
		if ci.Class == "sdc" {
			want = workers * each / 10
		}
		if ci.K != want {
			t.Errorf("%s k = %d, want %d", ci.Class, ci.K, want)
		}
	}
	if len(c.ByUnit) != 2 || len(c.ByType) != 1 {
		t.Fatalf("strata: %d units, %d types", len(c.ByUnit), len(c.ByType))
	}
	var unitTotal int64
	for _, cis := range c.ByUnit {
		unitTotal += cis[0].N
	}
	if unitTotal != workers*each {
		t.Errorf("unit strata totals sum to %d, want %d", unitTotal, workers*each)
	}
	if !est.Converged() || !c.Converged {
		t.Errorf("estimator not converged at n=%d margin %.2f (widest %s %f)",
			c.Total, rule.TargetMargin, c.WidestClass, c.WidestWidth)
	}
}

func TestEstimatorNilSafe(t *testing.T) {
	var est *Estimator
	est.Observe(1, "u", "t")
	if est.Total() != 0 || est.Converged() || est.Snapshot(true) != nil {
		t.Error("nil estimator must be inert")
	}
}

func TestEstimatorMinPerClassFloor(t *testing.T) {
	// Even a huge margin must not converge before the floor is met.
	est := NewEstimator([]string{"", "vanished"}, StopRule{TargetMargin: 2, MinPerClass: 100})
	for i := 0; i < 99; i++ {
		est.Observe(1, "", "")
	}
	if est.Converged() {
		t.Error("converged below the MinPerClass floor")
	}
	est.Observe(1, "", "")
	if !est.Converged() {
		t.Error("not converged at the floor with a vacuously wide margin")
	}
}

func TestSequentialWilsonVacuous(t *testing.T) {
	if lo, hi := SequentialWilson(0, 0, 0.95); lo != 0 || hi != 1 {
		t.Errorf("n=0: [%f,%f]", lo, hi)
	}
	if z := SequentialZ(0.95, 0); math.IsNaN(z) || math.IsInf(z, 0) {
		t.Errorf("SequentialZ(0.95,0) = %f", z)
	}
}
