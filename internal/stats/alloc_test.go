package stats

import (
	"math"
	"reflect"
	"testing"
)

var allocClasses = []string{"", "vanished", "corrected", "sdc"}

func shareTotal(shares []StratumShare) int {
	n := 0
	for _, s := range shares {
		n += s.Next
	}
	return n
}

func shareByKey(t *testing.T, shares []StratumShare, key string) StratumShare {
	t.Helper()
	for _, s := range shares {
		if s.Stratum == key {
			return s
		}
	}
	t.Fatalf("no share for stratum %q in %v", key, shares)
	return StratumShare{}
}

// With no samples anywhere, every stratum's Laplace-smoothed p̃ is 1/2, so
// S_s is maximal and the first epoch bootstraps proportional to population.
func TestAllocateBootstrapProportional(t *testing.T) {
	strata := []StratumState{
		{Key: "a", Population: 100},
		{Key: "b", Population: 300},
	}
	shares := StopRule{TargetMargin: 0.05}.Allocate(allocClasses, strata, 40)
	if got := shareByKey(t, shares, "a").Next; got != 10 {
		t.Errorf("stratum a: got %d, want 10", got)
	}
	if got := shareByKey(t, shares, "b").Next; got != 30 {
		t.Errorf("stratum b: got %d, want 30", got)
	}
	if n := shareTotal(shares); n != 40 {
		t.Errorf("total allocated %d, want 40", n)
	}
}

// A stratum whose observed outcome mix sits near p=1/2 must out-draw an
// equal-population stratum whose outcomes are nearly unanimous.
func TestAllocateFavorsHighVariance(t *testing.T) {
	noisy := StratumState{
		Key: "noisy", Population: 1000, Drawn: 200, Total: 200,
		Counts: map[string]int64{"vanished": 100, "sdc": 100},
	}
	quiet := StratumState{
		Key: "quiet", Population: 1000, Drawn: 200, Total: 200,
		Counts: map[string]int64{"vanished": 199, "sdc": 1},
	}
	shares := StopRule{TargetMargin: 0.0001}.Allocate(allocClasses, []StratumState{noisy, quiet}, 100)
	n, q := shareByKey(t, shares, "noisy"), shareByKey(t, shares, "quiet")
	if n.Next <= q.Next {
		t.Errorf("noisy stratum drew %d, quiet drew %d; want noisy > quiet", n.Next, q.Next)
	}
	if n.Score <= q.Score {
		t.Errorf("noisy score %v <= quiet score %v", n.Score, q.Score)
	}
	if total := shareTotal(shares); total != 100 {
		t.Errorf("total allocated %d, want 100", total)
	}
}

// NeymanScore with no samples is exactly N_s·0.5; with unanimous outcomes it
// shrinks toward zero but stays positive (Laplace smoothing).
func TestNeymanScore(t *testing.T) {
	empty := StratumState{Key: "e", Population: 200}
	if got := NeymanScore(allocClasses, empty); math.Abs(got-100) > 1e-9 {
		t.Errorf("empty stratum score %v, want 100", got)
	}
	unanimous := StratumState{
		Key: "u", Population: 200, Total: 1000,
		Counts: map[string]int64{"vanished": 1000},
	}
	got := NeymanScore(allocClasses, unanimous)
	if got <= 0 || got >= 100 {
		t.Errorf("unanimous stratum score %v, want in (0, 100)", got)
	}
}

// Allocation never plans past a stratum's remaining capacity, and a budget
// larger than the total remaining capacity is truncated, not over-assigned.
func TestAllocateCapsAtCapacity(t *testing.T) {
	strata := []StratumState{
		{Key: "small", Population: 10, Drawn: 7}, // capacity 3
		{Key: "big", Population: 1000},
	}
	shares := StopRule{TargetMargin: 0.05}.Allocate(allocClasses, strata, 500)
	if got := shareByKey(t, shares, "small").Next; got > 3 {
		t.Errorf("small stratum allocated %d past capacity 3", got)
	}
	if total := shareTotal(shares); total != 500 {
		t.Errorf("total allocated %d, want 500", total)
	}

	// Budget exceeding every stratum's remaining capacity truncates.
	shares = StopRule{TargetMargin: 0.05}.Allocate(allocClasses, strata, 5000)
	if total := shareTotal(shares); total != 3+1000 {
		t.Errorf("total allocated %d, want %d (capacity sum)", total, 3+1000)
	}
}

// An exhausted stratum (drawn == population) draws nothing more.
func TestAllocateSkipsExhausted(t *testing.T) {
	strata := []StratumState{
		{Key: "done", Population: 50, Drawn: 50},
		{Key: "open", Population: 50},
	}
	shares := StopRule{TargetMargin: 0.05}.Allocate(allocClasses, strata, 30)
	if got := shareByKey(t, shares, "done"); got.Next != 0 || got.Score != 0 {
		t.Errorf("exhausted stratum got share %+v, want zero", got)
	}
	if got := shareByKey(t, shares, "open").Next; got != 30 {
		t.Errorf("open stratum got %d, want 30", got)
	}
}

// A converged stratum scores zero and the budget flows to unconverged ones.
func TestAllocateSkipsConverged(t *testing.T) {
	rule := StopRule{TargetMargin: 0.2, MinPerClass: 50}
	converged := StratumState{
		Key: "settled", Population: 10000, Drawn: 2000, Total: 2000,
		Counts: map[string]int64{"vanished": 2000},
	}
	if !rule.StratumConverged(allocClasses, StratumCounts{Counts: converged.Counts, Total: converged.Total}, converged.Population) {
		t.Fatal("fixture stratum should be converged under the rule")
	}
	fresh := StratumState{Key: "fresh", Population: 10000, Drawn: 10, Total: 10}
	shares := rule.Allocate(allocClasses, []StratumState{converged, fresh}, 100)
	if got := shareByKey(t, shares, "settled"); got.Next != 0 || got.Score != 0 {
		t.Errorf("converged stratum got share %+v, want zero", got)
	}
	if got := shareByKey(t, shares, "fresh").Next; got != 100 {
		t.Errorf("fresh stratum got %d, want 100", got)
	}
}

// When every stratum has converged but budget remains (fixed-N stratified
// campaign), the leftover spreads proportional to remaining capacity rather
// than going unspent.
func TestAllocateSpendsBudgetWhenAllConverged(t *testing.T) {
	rule := StopRule{TargetMargin: 0.2, MinPerClass: 50}
	mk := func(key string, pop int) StratumState {
		return StratumState{
			Key: key, Population: pop, Drawn: 100, Total: 100,
			Counts: map[string]int64{"vanished": 100},
		}
	}
	strata := []StratumState{mk("a", 200), mk("b", 400)}
	shares := rule.Allocate(allocClasses, strata, 30)
	if total := shareTotal(shares); total != 30 {
		t.Fatalf("total allocated %d, want 30", total)
	}
	// Remaining capacity is 100 vs 300 → 1:3 split.
	a, b := shareByKey(t, shares, "a"), shareByKey(t, shares, "b")
	if a.Next+b.Next != 30 || b.Next <= a.Next {
		t.Errorf("capacity-proportional fallback got a=%d b=%d", a.Next, b.Next)
	}
}

// Largest-remainder rounding spends the budget exactly and the result is a
// pure function of its inputs — the property the coordinator journal's
// replay depends on.
func TestAllocateDeterministic(t *testing.T) {
	strata := []StratumState{
		{Key: "a", Population: 97, Drawn: 12, Total: 12, Counts: map[string]int64{"vanished": 11, "sdc": 1}},
		{Key: "b", Population: 311, Drawn: 45, Total: 45, Counts: map[string]int64{"vanished": 40, "corrected": 5}},
		{Key: "c", Population: 7, Drawn: 3, Total: 3, Counts: map[string]int64{"vanished": 3}},
	}
	rule := StopRule{TargetMargin: 0.03}
	first := rule.Allocate(allocClasses, strata, 73)
	if total := shareTotal(first); total != 73 {
		t.Fatalf("total allocated %d, want 73", total)
	}
	for i := 0; i < 10; i++ {
		if again := rule.Allocate(allocClasses, strata, 73); !reflect.DeepEqual(first, again) {
			t.Fatalf("allocation not deterministic:\n first %v\n again %v", first, again)
		}
	}
}

// strataEstimator builds a warmed estimator exercising the whole Converged
// path: overall classes plus a stratified pass over live strata.
func strataEstimator() *Estimator {
	est := NewEstimator(allocClasses, StopRule{TargetMargin: 0.9, MinPerClass: 1, Strata: true})
	est.TrackStrata(map[string]int{"FXU/FUNC": 500, "LSU/FUNC": 500, "IFU/MODE": 500})
	for i := 0; i < 300; i++ {
		est.ObserveStratum(1, "FXU", "FUNC", "FXU/FUNC")
		est.ObserveStratum(2, "LSU", "FUNC", "LSU/FUNC")
		est.ObserveStratum(1, "IFU", "MODE", "IFU/MODE")
	}
	return est
}

// The convergence monitor polls Converged every few milliseconds for the
// whole campaign; the poll must not rebuild per-stratum maps each time.
// After the first (buffer-warming) call the steady-state poll performs no
// allocation at all.
func TestConvergedPollAllocationBounded(t *testing.T) {
	est := strataEstimator()
	if !est.Converged() { // warm the snapshot buffers
		t.Fatal("estimator should be converged under the wide test margin")
	}
	avg := testing.AllocsPerRun(200, func() {
		est.Converged()
	})
	if avg > 0.5 {
		t.Errorf("Converged poll allocates %.1f objects/op in steady state, want 0", avg)
	}
}

func BenchmarkEstimatorConvergedPoll(b *testing.B) {
	est := strataEstimator()
	est.Converged()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Converged()
	}
}
