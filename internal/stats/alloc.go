package stats

import (
	"math"
	"sort"
)

// This file is the budget side of stratified campaigns: Neyman allocation
// of the next epoch's injections across sampling strata. The paper's
// stratified refinement of uniform sampling assigns each stratum a share
// proportional to N_s·S_s — population times estimated standard deviation —
// so budget flows to the strata whose intervals are still wide while strata
// that have converged (or been exhausted outright) stop drawing samples.

// StratumState is the allocator's view of one sampling stratum at an epoch
// boundary: its census size, how many samples have been drawn (planned)
// from it so far, and the settled per-class outcome counts.
type StratumState struct {
	Key        string
	Population int
	Drawn      int
	Total      int64
	Counts     map[string]int64
}

// StratumShare is one stratum's slice of an allocation epoch. The JSON
// names ride the coordinator journal (re-allocation records) and the
// /v1/status allocation block, so they are API surface.
type StratumShare struct {
	Stratum string `json:"stratum"`
	// Next is the number of injections allocated to the stratum this epoch.
	Next int `json:"next"`
	// Score is the stratum's unnormalized Neyman weight N_s·S_s (0 for
	// converged or exhausted strata).
	Score float64 `json:"score,omitempty"`
}

// NeymanScore is a stratum's allocation weight N_s·S_s: population times
// the largest per-class binomial standard deviation sqrt(p̃(1-p̃)), with
// Laplace-smoothed p̃ = (k+1)/(n+2) so an unsampled stratum scores at the
// maximal S_s = 0.5 and the first epoch bootstraps proportional to
// population.
func NeymanScore(classes []string, s StratumState) float64 {
	sd := 0.0
	for _, class := range classes {
		if class == "" {
			continue
		}
		p := (float64(s.Counts[class]) + 1) / (float64(s.Total) + 2)
		if v := math.Sqrt(p * (1 - p)); v > sd {
			sd = v
		}
	}
	return float64(s.Population) * sd
}

// Allocate splits an epoch's injection budget across strata by Neyman
// allocation: each unconverged stratum draws budget·w_s/Σw with
// w_s = NeymanScore, rounded by largest remainder, capped at the stratum's
// remaining capacity (population minus already-drawn). Converged strata
// (per StratumConverged, including exhausted ones) score zero; if every
// stratum has converged but budget remains, the leftover spreads
// proportional to remaining capacity so a fixed budget is still spendable.
// The result is ordered like the input and fully deterministic — it is
// journaled verbatim by the distributed coordinator and re-derived on
// replay.
func (r StopRule) Allocate(classes []string, strata []StratumState, budget int) []StratumShare {
	r = r.normalized()
	shares := make([]StratumShare, len(strata))
	caps := make([]int, len(strata))
	weights := make([]float64, len(strata))
	totalW, capSum := 0.0, 0
	for i, s := range strata {
		shares[i].Stratum = s.Key
		if c := s.Population - s.Drawn; c > 0 {
			caps[i] = c
		}
		capSum += caps[i]
		if caps[i] == 0 {
			continue
		}
		if r.Enabled() && r.StratumConverged(classes, StratumCounts{Counts: s.Counts, Total: s.Total}, s.Population) {
			continue
		}
		w := NeymanScore(classes, s)
		shares[i].Score = w
		weights[i] = w
		totalW += w
	}
	if budget > capSum {
		budget = capSum
	}
	if budget <= 0 {
		return shares
	}
	if totalW == 0 {
		// Everything converged (or the rule is disabled and no stratum
		// scored) with budget left: spend it proportional to capacity.
		for i := range strata {
			weights[i] = float64(caps[i])
			totalW += weights[i]
		}
	}
	// Largest-remainder rounding, capped at capacity. Ties and the spill
	// order are broken by input order, which is the plan's stratum order —
	// deterministic across runs and replays.
	type frac struct {
		i   int
		rem float64
	}
	assigned := 0
	fracs := make([]frac, 0, len(strata))
	for i := range strata {
		if weights[i] == 0 {
			continue
		}
		exact := float64(budget) * weights[i] / totalW
		n := int(exact)
		if n > caps[i] {
			n = caps[i]
		}
		shares[i].Next = n
		assigned += n
		fracs = append(fracs, frac{i, exact - float64(n)})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for assigned < budget {
		progressed := false
		for _, f := range fracs {
			if assigned == budget {
				break
			}
			if shares[f.i].Next < caps[f.i] {
				shares[f.i].Next++
				assigned++
				progressed = true
			}
		}
		if progressed {
			continue
		}
		// The weighted strata are at capacity; spill into any remaining.
		for i := range strata {
			if assigned == budget {
				break
			}
			if shares[i].Next < caps[i] {
				shares[i].Next++
				assigned++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return shares
}
