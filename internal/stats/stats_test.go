package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %f", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single sample stddev != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(got, 2.138, 0.01) {
		t.Errorf("StdDev = %f, want ~2.138", got)
	}
}

func TestRelStdDev(t *testing.T) {
	if RelStdDev([]float64{0, 0}) != 0 {
		t.Error("zero-mean rel stddev != 0")
	}
	xs := []float64{90, 100, 110}
	if got := RelStdDev(xs); !almost(got, 0.1, 0.001) {
		t.Errorf("RelStdDev = %f, want ~0.1", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("interval [%f,%f] excludes the point estimate", lo, hi)
	}
	if !almost(lo, 0.404, 0.005) || !almost(hi, 0.596, 0.005) {
		t.Errorf("interval [%f,%f], want ~[0.404,0.596]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Error("empty sample should be vacuous")
	}
	lo, hi = WilsonInterval(0, 50, 1.96)
	if lo != 0 || hi <= 0 {
		t.Errorf("zero successes: [%f,%f]", lo, hi)
	}
}

func TestQuickWilsonBounds(t *testing.T) {
	f := func(k8, n8 uint8) bool {
		n := int(n8%200) + 1
		k := int(k8) % (n + 1)
		lo, hi := WilsonInterval(k, n, 1.96)
		p := float64(k) / float64(n)
		// At p̂ = 0 or 1 the exact bound equals p̂; allow float rounding.
		const eps = 1e-9
		return lo >= 0 && hi <= 1 && lo-eps <= p && p <= hi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquareStat(t *testing.T) {
	stat, err := ChiSquareStat([]float64{10, 20, 30}, []float64{10, 20, 30})
	if err != nil || stat != 0 {
		t.Errorf("identical distributions: stat=%f err=%v", stat, err)
	}
	stat, err = ChiSquareStat([]float64{16, 18, 16}, []float64{16, 16, 18})
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0/16 + 4.0/18
	if !almost(stat, want, 1e-9) {
		t.Errorf("stat = %f, want %f", stat, want)
	}
	if _, err = ChiSquareStat([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("no error for mismatched lengths")
	}
	stat, _ = ChiSquareStat([]float64{1, 5}, []float64{0, 6})
	if !math.IsInf(stat, 1) {
		t.Error("observed in zero-expected category must be +Inf")
	}
}

func TestChiSquarePValueKnownValues(t *testing.T) {
	// X²=3.841, dof=1 → p≈0.05; X²=5.991, dof=2 → p≈0.05.
	tests := []struct {
		stat float64
		dof  int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{7.815, 3, 0.05},
		{0.0, 2, 1.0},
		{2.0, 2, math.Exp(-1)}, // dof=2: p = exp(-x/2)
	}
	for _, tc := range tests {
		got := ChiSquarePValue(tc.stat, tc.dof)
		if !almost(got, tc.want, 0.002) {
			t.Errorf("p(%f,%d) = %f, want %f", tc.stat, tc.dof, got, tc.want)
		}
	}
}

func TestQuickPValueMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		dof := 1 + rng.IntN(10)
		a := rng.Float64() * 20
		b := a + rng.Float64()*20
		return ChiSquarePValue(a, dof) >= ChiSquarePValue(b, dof)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportions(t *testing.T) {
	ps := Proportions([]int{1, 3})
	if ps[0] != 0.25 || ps[1] != 0.75 {
		t.Errorf("Proportions = %v", ps)
	}
	ps = Proportions([]int{0, 0})
	if ps[0] != 0 || ps[1] != 0 {
		t.Error("empty counts should be zeros")
	}
}

// Property: RelStdDev of a binomial sample shrinks with sample size, the
// statistical backbone of Figure 2.
func TestRelStdDevShrinksWithSampleSize(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	rel := func(n int) float64 {
		const p = 0.05
		var xs []float64
		for s := 0; s < 30; s++ {
			k := 0
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					k++
				}
			}
			xs = append(xs, float64(k))
		}
		return RelStdDev(xs)
	}
	small, large := rel(100), rel(10000)
	if large >= small {
		t.Errorf("relative stddev did not shrink: n=100 %.3f, n=10000 %.3f", small, large)
	}
}
