package stats

import (
	"math"
	"sort"
)

// This file is the statistical core of adaptive campaigns: any-time-valid
// Wilson intervals and the stopping rule that decides when a campaign has
// answered its question. The paper's argument is that fault injection is a
// statistical estimation problem — run *just enough* samples for a requested
// margin of error at a requested confidence — and a streaming campaign that
// peeks at its intervals after every sample needs sequential bounds, not the
// fixed-n Wilson interval, or the repeated looks inflate the false-stop rate.

// DefaultConfidence is the two-sided confidence level used when a StopRule
// leaves Confidence unset.
const DefaultConfidence = 0.95

// DefaultMinPerClass is the minimum-samples floor used when a StopRule
// leaves MinPerClass unset: a population's intervals are not eligible to
// converge before it has seen this many samples, so rare classes (SDC,
// checkstop) are never declared converged at n≈0.
const DefaultMinPerClass = 50

// ZForConfidence converts a two-sided confidence level in (0, 1) to the
// standard-normal critical value (0.95 → ≈1.96).
func ZForConfidence(confidence float64) float64 {
	return math.Sqrt2 * math.Erfinv(confidence)
}

// SequentialZ is the any-time-valid critical value for a Wilson interval
// inspected at sample size n. The total error budget α = 1-confidence is
// spent continuously over doubling epochs: the look at sample size n is
// charged α_n = α/((e+1)(e+2)) with e = log₂(n), which telescopes to at
// most α across all n ≥ 1 — so intervals built with this z hold
// simultaneously at every n, and a monitor may stop the first time the
// width target is met without inflating the false-stop rate. The continuous
// e (rather than ⌊log₂ n⌋ epoch stitching) makes the resulting interval
// width strictly shrink with n, which the monotone-shrink test locks in.
func SequentialZ(confidence float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	alpha := 1 - confidence
	e := math.Log2(float64(n))
	an := alpha / ((e + 1) * (e + 2))
	return ZForConfidence(1 - an)
}

// SequentialWilson returns the any-time-valid Wilson interval for k
// successes out of n samples at the given confidence: WilsonInterval
// evaluated at the inflated SequentialZ critical value. For n == 0 it is
// the vacuous (0, 1).
func SequentialWilson(k, n int, confidence float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	return WilsonInterval(k, n, SequentialZ(confidence, n))
}

// StopRule is an adaptive campaign's stopping rule: stop once every tracked
// outcome class's sequential Wilson interval is narrower than TargetMargin
// at the Confidence level. The zero value is disabled (TargetMargin 0).
type StopRule struct {
	// TargetMargin is the maximum acceptable interval width (hi-lo) per
	// class, as a fraction (0.02 = ±1 percentage point). <= 0 disables the
	// rule.
	TargetMargin float64 `json:"target_margin,omitempty"`

	// Confidence is the two-sided confidence level the margin must hold at
	// (default DefaultConfidence).
	Confidence float64 `json:"confidence,omitempty"`

	// MinPerClass is the minimum number of samples a population (the whole
	// campaign, or a per-unit/per-type stratum) must have seen before its
	// intervals may converge (default DefaultMinPerClass).
	MinPerClass int `json:"min_per_class,omitempty"`

	// Strata makes the per-stratum margins a stoppable target: a campaign
	// running a stratified sample plan has converged only when every
	// sampling stratum is itself converged or exhausted (StratumConverged),
	// not just the global classes. Armed automatically by stratified
	// allocation; zero (off) for uniform campaigns, so their wire formats
	// and journal headers are unchanged.
	Strata bool `json:"strata,omitempty"`
}

// Enabled reports whether the rule is active.
func (r StopRule) Enabled() bool { return r.TargetMargin > 0 }

// normalized fills in defaults so every consumer evaluates the same rule.
func (r StopRule) normalized() StopRule {
	if r.Confidence <= 0 || r.Confidence >= 1 {
		r.Confidence = DefaultConfidence
	}
	if r.MinPerClass <= 0 {
		r.MinPerClass = DefaultMinPerClass
	}
	return r
}

// ClassInterval is one outcome class's sequential Wilson interval at a
// point in a campaign. The JSON field names are API surface (the /v1/status
// convergence block and JSONL convergence events) — locked by a golden
// test; change them only with a wire-version bump.
type ClassInterval struct {
	Class     string  `json:"class"`
	K         int64   `json:"k"`
	N         int64   `json:"n"`
	Fraction  float64 `json:"fraction"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	Width     float64 `json:"width"`
	Converged bool    `json:"converged"`
}

// Convergence is a point-in-time evaluation of a StopRule over a campaign's
// per-class counts: the tracked classes' intervals, the overall verdict,
// and the widest outstanding margin (what the progress line shows). JSON
// field names are API surface — see ClassInterval.
type Convergence struct {
	Confidence   float64         `json:"confidence"`
	TargetMargin float64         `json:"target_margin"`
	MinPerClass  int             `json:"min_per_class"`
	Total        int64           `json:"total"`
	Converged    bool            `json:"converged"`
	WidestClass  string          `json:"widest_class"`
	WidestWidth  float64         `json:"widest_width"`
	Classes      []ClassInterval `json:"classes"`

	// Optional per-stratum breakdowns (per unit, per latch class). Each
	// stratum is evaluated as its own population: its n is the stratum's
	// sample count and the MinPerClass floor applies per stratum.
	ByUnit map[string][]ClassInterval `json:"by_unit,omitempty"`
	ByType map[string][]ClassInterval `json:"by_type,omitempty"`

	// ByStratum breaks the campaign down by sampling stratum (the unit ×
	// latch-class crosses a stratified sample plan draws from), and
	// WidestStratum/WidestStratumWidth name the widest still-unconverged
	// stratum — what a stratified progress line shows. All empty for
	// uniform campaigns, keeping their JSON byte-identical.
	ByStratum          map[string][]ClassInterval `json:"by_stratum,omitempty"`
	WidestStratum      string                     `json:"widest_stratum,omitempty"`
	WidestStratumWidth float64                    `json:"widest_stratum_width,omitempty"`
}

// Intervals evaluates one population: for each class name (in order, empty
// names skipped — they are code-index padding), the sequential Wilson
// interval of counts[class] out of total, converged when the population has
// met the MinPerClass floor and the width is within TargetMargin.
func (r StopRule) Intervals(classes []string, counts map[string]int64, total int64) []ClassInterval {
	r = r.normalized()
	out := make([]ClassInterval, 0, len(classes))
	for _, class := range classes {
		if class == "" {
			continue
		}
		k := counts[class]
		ci := ClassInterval{Class: class, K: k, N: total}
		ci.Lo, ci.Hi = SequentialWilson(int(k), int(total), r.Confidence)
		ci.Width = ci.Hi - ci.Lo
		if total > 0 {
			ci.Fraction = float64(k) / float64(total)
		}
		ci.Converged = total >= int64(r.MinPerClass) && ci.Width <= r.TargetMargin
		out = append(out, ci)
	}
	return out
}

// Eval evaluates the rule over a campaign's per-class counts: the campaign
// has converged when every tracked class's interval has. Strata, when
// non-nil, adds per-unit and per-type breakdowns (informational — they do
// not gate the verdict; allocate more samples there if their margins
// matter).
func (r StopRule) Eval(classes []string, counts map[string]int64, total int64) *Convergence {
	r = r.normalized()
	c := &Convergence{
		Confidence:   r.Confidence,
		TargetMargin: r.TargetMargin,
		MinPerClass:  r.MinPerClass,
		Total:        total,
		Converged:    true,
		Classes:      r.Intervals(classes, counts, total),
	}
	for _, ci := range c.Classes {
		if !ci.Converged {
			c.Converged = false
		}
		if ci.Width > c.WidestWidth {
			c.WidestWidth = ci.Width
			c.WidestClass = ci.Class
		}
	}
	return c
}

// AddStrata attaches per-stratum breakdowns, each stratum evaluated as its
// own population via Intervals. The maps are keyed by stratum name; values
// are per-class counts and the stratum's sample total.
func (c *Convergence) AddStrata(r StopRule, classes []string, byUnit, byType map[string]StratumCounts) {
	c.ByUnit = strataIntervals(r, classes, byUnit)
	c.ByType = strataIntervals(r, classes, byType)
}

// StratumConverged evaluates one sampling stratum as its own population:
// converged once it is exhausted (Total ≥ population — a census has no
// sampling error, whatever its interval widths) or once it has met the
// MinPerClass floor (capped at the stratum's population, so tiny strata
// are not unreachable) with every class interval within TargetMargin.
// Allocation-free — safe on the convergence poll path.
func (r StopRule) StratumConverged(classes []string, s StratumCounts, population int) bool {
	r = r.normalized()
	if population > 0 && s.Total >= int64(population) {
		return true
	}
	floor := int64(r.MinPerClass)
	if population > 0 && int64(population) < floor {
		floor = int64(population)
	}
	if s.Total < floor {
		return false
	}
	for _, class := range classes {
		if class == "" {
			continue
		}
		lo, hi := SequentialWilson(int(s.Counts[class]), int(s.Total), r.Confidence)
		if hi-lo > r.TargetMargin {
			return false
		}
	}
	return true
}

// AddSampleStrata attaches the sampling-stratum breakdown of a stratified
// campaign: per-stratum intervals under ByStratum, the widest unconverged
// stratum for the progress line, and — when the rule's Strata gate is
// armed — each stratum's verdict folded into Converged. populations maps
// stratum key → census size so exhausted strata count as converged.
func (c *Convergence) AddSampleStrata(r StopRule, classes []string, strata map[string]StratumCounts, populations map[string]int) {
	if len(strata) == 0 {
		return
	}
	r = r.normalized()
	c.ByStratum = strataIntervals(r, classes, strata)
	names := make([]string, 0, len(strata))
	for name := range strata {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if r.StratumConverged(classes, strata[name], populations[name]) {
			continue
		}
		if r.Strata {
			c.Converged = false
		}
		widest := 0.0
		for _, ci := range c.ByStratum[name] {
			if ci.Width > widest {
				widest = ci.Width
			}
		}
		if widest > c.WidestStratumWidth {
			c.WidestStratumWidth = widest
			c.WidestStratum = name
		}
	}
}

// StratumCounts is one stratum's per-class counts and sample total.
type StratumCounts struct {
	Counts map[string]int64
	Total  int64
}

func strataIntervals(r StopRule, classes []string, strata map[string]StratumCounts) map[string][]ClassInterval {
	if len(strata) == 0 {
		return nil
	}
	out := make(map[string][]ClassInterval, len(strata))
	names := make([]string, 0, len(strata))
	for name := range strata {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := strata[name]
		out[name] = r.Intervals(classes, s.Counts, s.Total)
	}
	return out
}
