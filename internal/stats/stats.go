// Package stats provides the statistical machinery behind SFI's sampling
// methodology: descriptive statistics for the Figure 2 sample-size study,
// Wilson confidence intervals for outcome proportions, and a chi-square
// goodness-of-fit test for the SFI-versus-beam calibration (Table 2).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator); it is 0
// for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// RelStdDev returns the standard deviation as a fraction of the mean — the
// paper's Figure 2 metric. It returns 0 when the mean is 0.
func RelStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with successes k out of n at confidence z (1.96 ≈ 95%).
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ChiSquareStat computes the Pearson chi-square statistic for observed
// counts against expected counts. Categories with expected == 0 must also
// have observed == 0 (they are skipped); otherwise the statistic is +Inf.
func ChiSquareStat(observed, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: %d observed vs %d expected categories",
			len(observed), len(expected))
	}
	stat := 0.0
	for i := range observed {
		if expected[i] == 0 {
			if observed[i] != 0 {
				return math.Inf(1), nil
			}
			continue
		}
		d := observed[i] - expected[i]
		stat += d * d / expected[i]
	}
	return stat, nil
}

// ChiSquarePValue returns P(X² ≥ stat) for dof degrees of freedom.
func ChiSquarePValue(stat float64, dof int) float64 {
	if stat <= 0 || dof <= 0 {
		return 1
	}
	return 1 - gammaIncLowerReg(float64(dof)/2, stat/2)
}

// gammaIncLowerReg is the regularized lower incomplete gamma function
// P(a, x), via series expansion for x < a+1 and continued fraction
// otherwise (Numerical Recipes style).
func gammaIncLowerReg(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		// Series representation.
		ap := a
		sum := 1.0 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		lg, _ := math.Lgamma(a)
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	default:
		// Continued fraction for Q(a,x); P = 1-Q.
		const tiny = 1e-300
		b := x + 1 - a
		c := 1 / tiny
		d := 1 / b
		h := d
		for i := 1; i < 500; i++ {
			an := -float64(i) * (float64(i) - a)
			b += 2
			d = an*d + b
			if math.Abs(d) < tiny {
				d = tiny
			}
			c = b + an/c
			if math.Abs(c) < tiny {
				c = tiny
			}
			d = 1 / d
			del := d * c
			h *= del
			if math.Abs(del-1) < 1e-15 {
				break
			}
		}
		lg, _ := math.Lgamma(a)
		q := math.Exp(-x+a*math.Log(x)-lg) * h
		return 1 - q
	}
}

// Proportions converts category counts into fractions of their total.
func Proportions(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
