package stats

import (
	"sync"
	"sync/atomic"
)

// Estimator folds a concurrent stream of classified campaign outcomes into
// sequential Wilson intervals under a StopRule. Campaign workers call
// Observe from their injection loops (lock-free: atomic counters, plus one
// lazily-created row per unit/latch-class stratum); a monitor polls
// Converged to drive early-stop and Snapshot for the full per-class view.
// Class names are fixed at construction and indexed by outcome code, so the
// hot path never touches a map for the global counters; index 0 (and any
// other empty name) is padding for the invalid zero code, excluded from
// evaluation.
type Estimator struct {
	rule    StopRule
	classes []string
	total   atomic.Int64
	counts  []atomic.Int64
	byUnit  sync.Map // unit name -> *stratumRow
	byType  sync.Map // latch-class name -> *stratumRow
	byCross sync.Map // sample-plan stratum key ("unit/latch-class") -> *stratumRow
	rows    atomic.Int64

	// pops maps sample-plan stratum key -> census population; non-nil once
	// TrackStrata armed stratified tracking.
	pops map[string]int

	// snapMu guards the reusable snapshot buffers below. The convergence
	// monitor polls every 5 ms when early-stop is armed; rebuilding full
	// maps per poll made the poll allocation-heavy, so each strata map gets
	// a cached row list (rebuilt only when a stratum appears — the `rows`
	// stamp) and per-row count buffers overwritten in place.
	snapMu sync.Mutex
	snaps  map[*sync.Map]*strataSnap
}

type stratumRow struct {
	total  atomic.Int64
	counts []atomic.Int64
}

// strataSnap is the reusable snapshot buffer for one strata map. The out
// map and each row's counts map are overwritten on every poll, so the
// value strataCounts returns is valid only until the next poll — callers
// must consume it (fold it into ClassIntervals) before releasing snapMu.
type strataSnap struct {
	stamp int64
	rows  []snapRow
	out   map[string]StratumCounts
}

type snapRow struct {
	name   string
	row    *stratumRow
	counts map[string]int64
}

// NewEstimator builds an estimator tracking the given classes (indexed by
// outcome code; empty names are padding) under rule.
func NewEstimator(classes []string, rule StopRule) *Estimator {
	return &Estimator{
		rule:    rule.normalized(),
		classes: classes,
		counts:  make([]atomic.Int64, len(classes)),
		snaps:   make(map[*sync.Map]*strataSnap),
	}
}

// Rule returns the (normalized) stopping rule the estimator evaluates.
func (e *Estimator) Rule() StopRule { return e.rule }

// TrackStrata arms stratified tracking: Observe additionally folds each
// sample into its unit × latch-class cross stratum, Snapshot attaches the
// ByStratum breakdown, and — when the rule's Strata gate is set — Converged
// requires every stratum's margins too. populations maps stratum key
// ("unit/latch-class") to census size so exhausted strata are final. Call
// before the first Observe; nil-safe.
func (e *Estimator) TrackStrata(populations map[string]int) {
	if e == nil {
		return
	}
	e.pops = populations
}

// Observe folds one classified injection: code is the outcome class index;
// unit and latchType name the strata the sample belongs to (empty = skip
// that breakdown). Safe for concurrent use; nil-safe (a nil estimator
// ignores the call). Out-of-range codes are counted toward the total only.
func (e *Estimator) Observe(code int, unit, latchType string) {
	if e == nil {
		return
	}
	stratum := ""
	if e.pops != nil && unit != "" && latchType != "" {
		stratum = unit + "/" + latchType
	}
	e.observeSample(code, unit, latchType, stratum)
}

// ObserveStratum is Observe for stratified campaign workers: stratum is the
// sample's plan key ("unit/latch-class"), precomputed per batch so the hot
// path does not rebuild it per sample.
func (e *Estimator) ObserveStratum(code int, unit, latchType, stratum string) {
	if e == nil {
		return
	}
	e.observeSample(code, unit, latchType, stratum)
}

func (e *Estimator) observeSample(code int, unit, latchType, stratum string) {
	e.total.Add(1)
	if code >= 0 && code < len(e.counts) {
		e.counts[code].Add(1)
	}
	if unit != "" {
		e.stratum(&e.byUnit, unit).observe(code)
	}
	if latchType != "" {
		e.stratum(&e.byType, latchType).observe(code)
	}
	if stratum != "" {
		e.stratum(&e.byCross, stratum).observe(code)
	}
}

func (e *Estimator) stratum(m *sync.Map, name string) *stratumRow {
	if row, ok := m.Load(name); ok {
		return row.(*stratumRow)
	}
	row, loaded := m.LoadOrStore(name, &stratumRow{counts: make([]atomic.Int64, len(e.classes))})
	if !loaded {
		// Bumped after the store so a snapshot never caches a stamp that
		// already covers a row it has not seen; the new row is at worst one
		// poll late.
		e.rows.Add(1)
	}
	return row.(*stratumRow)
}

func (s *stratumRow) observe(code int) {
	s.total.Add(1)
	if code >= 0 && code < len(s.counts) {
		s.counts[code].Add(1)
	}
}

// Total returns the number of samples observed so far.
func (e *Estimator) Total() int64 {
	if e == nil {
		return 0
	}
	return e.total.Load()
}

// Converged is the monitor's cheap poll: true once every tracked class's
// interval is within the rule's margin and — for stratified campaigns with
// the rule's Strata gate armed — every sampling stratum has converged or
// been exhausted. Counters are read individually; mid-injection skew of a
// few samples only delays the verdict by one poll. Allocation-bounded: the
// stratum pass reuses the snapshot buffers.
func (e *Estimator) Converged() bool {
	if e == nil || !e.rule.Enabled() {
		return false
	}
	n := e.total.Load()
	if n < int64(e.rule.MinPerClass) {
		return false
	}
	for i, class := range e.classes {
		if class == "" {
			continue
		}
		lo, hi := SequentialWilson(int(e.counts[i].Load()), int(n), e.rule.Confidence)
		if hi-lo > e.rule.TargetMargin {
			return false
		}
	}
	if e.rule.Strata && e.pops != nil {
		e.snapMu.Lock()
		defer e.snapMu.Unlock()
		strata := e.strataCountsLocked(&e.byCross)
		for name, pop := range e.pops {
			if !e.rule.StratumConverged(e.classes, strata[name], pop) {
				return false
			}
		}
	}
	return true
}

// Snapshot evaluates the rule over the counts observed so far. strata adds
// the per-unit and per-type breakdowns; the sampling-stratum breakdown is
// always attached once TrackStrata armed it. Nil-safe (returns nil).
func (e *Estimator) Snapshot(strata bool) *Convergence {
	if e == nil {
		return nil
	}
	counts := make(map[string]int64, len(e.classes))
	for i, class := range e.classes {
		if class == "" {
			continue
		}
		counts[class] = e.counts[i].Load()
	}
	c := e.rule.Eval(e.classes, counts, e.total.Load())
	if strata {
		e.snapMu.Lock()
		c.AddStrata(e.rule, e.classes, e.strataCountsLocked(&e.byUnit), e.strataCountsLocked(&e.byType))
		e.snapMu.Unlock()
	}
	if e.pops != nil {
		e.snapMu.Lock()
		c.AddSampleStrata(e.rule, e.classes, e.strataCountsLocked(&e.byCross), e.pops)
		e.snapMu.Unlock()
	}
	return c
}

// StrataStates returns the allocator's view of every sampling stratum in
// plan key order given each stratum's census population and drawn count.
// Strata the campaign has not sampled yet appear with zero counts. The
// returned states are fresh copies safe to retain (they are journaled by
// the distributed coordinator).
func (e *Estimator) StrataStates(keys []string, populations map[string]int, drawn map[string]int) []StratumState {
	out := make([]StratumState, 0, len(keys))
	for _, key := range keys {
		st := StratumState{Key: key, Population: populations[key], Drawn: drawn[key]}
		if e != nil {
			if row, ok := e.byCross.Load(key); ok {
				r := row.(*stratumRow)
				st.Total = r.total.Load()
				st.Counts = make(map[string]int64, len(e.classes))
				for i, class := range e.classes {
					if class == "" {
						continue
					}
					st.Counts[class] = r.counts[i].Load()
				}
			}
		}
		out = append(out, st)
	}
	return out
}

func (e *Estimator) strataCounts(m *sync.Map) map[string]StratumCounts {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	return e.strataCountsLocked(m)
}

// strataCountsLocked snapshots one strata map into its reusable buffer.
// The row list is rebuilt only when the rows stamp moved (a stratum
// appeared somewhere — strata are few and fixed per campaign, so this is
// rare); the steady-state poll just overwrites the cached count maps in
// place and performs no allocation. Callers hold snapMu and must consume
// the returned map before releasing it.
func (e *Estimator) strataCountsLocked(m *sync.Map) map[string]StratumCounts {
	if e.snaps == nil {
		e.snaps = make(map[*sync.Map]*strataSnap)
	}
	snap := e.snaps[m]
	if snap == nil {
		snap = &strataSnap{stamp: -1, out: make(map[string]StratumCounts)}
		e.snaps[m] = snap
	}
	if stamp := e.rows.Load(); stamp != snap.stamp {
		snap.stamp = stamp
		snap.rows = snap.rows[:0]
		m.Range(func(key, value any) bool {
			snap.rows = append(snap.rows, snapRow{
				name:   key.(string),
				row:    value.(*stratumRow),
				counts: make(map[string]int64, len(e.classes)),
			})
			return true
		})
	}
	for _, sr := range snap.rows {
		for i, class := range e.classes {
			if class == "" {
				continue
			}
			sr.counts[class] = sr.row.counts[i].Load()
		}
		snap.out[sr.name] = StratumCounts{Counts: sr.counts, Total: sr.row.total.Load()}
	}
	return snap.out
}
