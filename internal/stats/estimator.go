package stats

import (
	"sync"
	"sync/atomic"
)

// Estimator folds a concurrent stream of classified campaign outcomes into
// sequential Wilson intervals under a StopRule. Campaign workers call
// Observe from their injection loops (lock-free: atomic counters, plus one
// lazily-created row per unit/latch-class stratum); a monitor polls
// Converged to drive early-stop and Snapshot for the full per-class view.
// Class names are fixed at construction and indexed by outcome code, so the
// hot path never touches a map for the global counters; index 0 (and any
// other empty name) is padding for the invalid zero code, excluded from
// evaluation.
type Estimator struct {
	rule    StopRule
	classes []string
	total   atomic.Int64
	counts  []atomic.Int64
	byUnit  sync.Map // unit name -> *stratumRow
	byType  sync.Map // latch-class name -> *stratumRow
}

type stratumRow struct {
	total  atomic.Int64
	counts []atomic.Int64
}

// NewEstimator builds an estimator tracking the given classes (indexed by
// outcome code; empty names are padding) under rule.
func NewEstimator(classes []string, rule StopRule) *Estimator {
	return &Estimator{
		rule:    rule.normalized(),
		classes: classes,
		counts:  make([]atomic.Int64, len(classes)),
	}
}

// Rule returns the (normalized) stopping rule the estimator evaluates.
func (e *Estimator) Rule() StopRule { return e.rule }

// Observe folds one classified injection: code is the outcome class index;
// unit and latchType name the strata the sample belongs to (empty = skip
// that breakdown). Safe for concurrent use; nil-safe (a nil estimator
// ignores the call). Out-of-range codes are counted toward the total only.
func (e *Estimator) Observe(code int, unit, latchType string) {
	if e == nil {
		return
	}
	e.total.Add(1)
	if code >= 0 && code < len(e.counts) {
		e.counts[code].Add(1)
	}
	if unit != "" {
		e.stratum(&e.byUnit, unit).observe(code)
	}
	if latchType != "" {
		e.stratum(&e.byType, latchType).observe(code)
	}
}

func (e *Estimator) stratum(m *sync.Map, name string) *stratumRow {
	if row, ok := m.Load(name); ok {
		return row.(*stratumRow)
	}
	row, _ := m.LoadOrStore(name, &stratumRow{counts: make([]atomic.Int64, len(e.classes))})
	return row.(*stratumRow)
}

func (s *stratumRow) observe(code int) {
	s.total.Add(1)
	if code >= 0 && code < len(s.counts) {
		s.counts[code].Add(1)
	}
}

// Total returns the number of samples observed so far.
func (e *Estimator) Total() int64 {
	if e == nil {
		return 0
	}
	return e.total.Load()
}

// Converged is the monitor's cheap poll: true once every tracked class's
// interval is within the rule's margin (global classes only — strata are
// informational). Counters are read individually; mid-injection skew of a
// few samples only delays the verdict by one poll.
func (e *Estimator) Converged() bool {
	if e == nil || !e.rule.Enabled() {
		return false
	}
	n := e.total.Load()
	if n < int64(e.rule.MinPerClass) {
		return false
	}
	for i, class := range e.classes {
		if class == "" {
			continue
		}
		lo, hi := SequentialWilson(int(e.counts[i].Load()), int(n), e.rule.Confidence)
		if hi-lo > e.rule.TargetMargin {
			return false
		}
	}
	return true
}

// Snapshot evaluates the rule over the counts observed so far. strata adds
// the per-unit and per-type breakdowns. Nil-safe (returns nil).
func (e *Estimator) Snapshot(strata bool) *Convergence {
	if e == nil {
		return nil
	}
	counts := make(map[string]int64, len(e.classes))
	for i, class := range e.classes {
		if class == "" {
			continue
		}
		counts[class] = e.counts[i].Load()
	}
	c := e.rule.Eval(e.classes, counts, e.total.Load())
	if strata {
		c.AddStrata(e.rule, e.classes, e.strataCounts(&e.byUnit), e.strataCounts(&e.byType))
	}
	return c
}

func (e *Estimator) strataCounts(m *sync.Map) map[string]StratumCounts {
	out := make(map[string]StratumCounts)
	m.Range(func(key, value any) bool {
		row := value.(*stratumRow)
		counts := make(map[string]int64, len(e.classes))
		for i, class := range e.classes {
			if class == "" {
				continue
			}
			counts[class] = row.counts[i].Load()
		}
		out[key.(string)] = StratumCounts{Counts: counts, Total: row.total.Load()}
		return true
	})
	return out
}
