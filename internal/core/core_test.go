package core

import (
	"errors"
	"testing"
	"time"

	"sfi/internal/engine"
	_ "sfi/internal/engine/p6lite"
	"sfi/internal/latch"
	"sfi/internal/proc"
)

// fastRunnerConfig keeps unit tests quick.
func fastRunnerConfig() RunnerConfig {
	cfg := DefaultRunnerConfig()
	cfg.AVP.Testcases = 6
	cfg.AVP.BodyOps = 14
	return cfg
}

func fastCampaignConfig() CampaignConfig {
	c := DefaultCampaignConfig()
	c.Runner = fastRunnerConfig()
	c.Flips = 120
	return c
}

func findBit(t *testing.T, db *latch.DB, group string, entry, bitInEntry int) int {
	t.Helper()
	g, ok := db.GroupByName(group)
	if !ok {
		t.Fatalf("no group %q", group)
	}
	for b := 0; b < db.TotalBits(); b++ {
		if gg, e, bb := db.Locate(b); gg == g && e == entry && bb == bitInEntry {
			return b
		}
	}
	t.Fatalf("bit not found in %s", group)
	return -1
}

func TestRunnerDeterministicPerBit(t *testing.T) {
	r1, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	bits := []int{100, 5000, 20000, 40000}
	for _, b := range bits {
		if b >= r1.DB().TotalBits() {
			continue
		}
		a := r1.RunInjection(b)
		bb := r2.RunInjection(b)
		if a.Outcome != bb.Outcome || a.Cycles != bb.Cycles || a.Recoveries != bb.Recoveries {
			t.Errorf("bit %d: results differ across identical runners: %+v vs %+v", b, a, bb)
		}
	}
}

func TestRunnerRepeatable(t *testing.T) {
	r, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	bit := findBit(t, r.DB(), "fxu.gpr", 3, 12)
	a := r.RunInjection(bit)
	b := r.RunInjection(bit)
	if a.Outcome != b.Outcome || a.Cycles != b.Cycles {
		t.Errorf("same-runner repeat differs: %+v vs %+v", a, b)
	}
}

func TestInjectionIntoSpareModeVanishes(t *testing.T) {
	r, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	bit := findBit(t, r.DB(), "prv.mode.spare", 2, 30)
	res := r.RunInjection(bit)
	if res.Outcome != Vanished {
		t.Errorf("spare mode bit flip: %v, want vanished", res.Outcome)
	}
	if res.Detected {
		t.Error("spare mode bit flip was detected")
	}
}

func TestInjectionIntoRingIntegrityCheckstops(t *testing.T) {
	r, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	bit := findBit(t, r.DB(), "lsu.mode", 0, 3)
	res := r.RunInjection(bit)
	if res.Outcome != Checkstop {
		t.Fatalf("ring integrity flip: %v, want checkstop", res.Outcome)
	}
	if !res.Detected || res.FirstChecker != "ring.lsu" {
		t.Errorf("cause-effect trace wrong: detected=%v by=%q", res.Detected, res.FirstChecker)
	}
	if res.DetectLatency > 4 {
		t.Errorf("ring corruption detection latency %d too long", res.DetectLatency)
	}
}

func TestInjectionLiveGPRTraced(t *testing.T) {
	// Sweep several live-register bits; at least one must be caught and
	// traced to the GPR parity checker with a recovery.
	r, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for e := 1; e <= 8 && !caught; e++ {
		for b := 0; b < 64; b += 11 {
			res := r.RunInjection(findBit(t, r.DB(), "fxu.gpr", e, b))
			if res.Outcome == Corrected && res.FirstChecker == "fxu.gpr.par" {
				if res.Recoveries == 0 {
					t.Error("corrected without recovery count")
				}
				caught = true
				break
			}
		}
	}
	if !caught {
		t.Error("no live GPR flip was caught and traced")
	}
}

func TestStickyLiveFaultEscalatesToCheckstop(t *testing.T) {
	cfg := fastRunnerConfig()
	cfg.Mode = engine.Sticky
	cfg.StickyCycles = 0
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A stuck-at in the fetch PC parity domain re-fires after every
	// recovery: the RUT's retry threshold must checkstop.
	bit := findBit(t, r.DB(), "ifu.pc.par", 0, 0)
	res := r.RunInjection(bit)
	if res.Outcome != Checkstop && res.Outcome != Hang {
		t.Errorf("permanent stuck-at outcome %v, want checkstop (or hang)", res.Outcome)
	}
}

func TestCampaignAggregates(t *testing.T) {
	rep, err := RunCampaign(fastCampaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 120 || len(rep.Results) != 120 {
		t.Fatalf("total %d, results %d", rep.Total, len(rep.Results))
	}
	sum := 0
	for _, o := range Outcomes {
		sum += rep.Counts[o]
	}
	if sum != rep.Total {
		t.Errorf("outcome counts sum to %d, total %d", sum, rep.Total)
	}
	// Unit and type breakdowns must also sum to the total.
	usum := 0
	for _, m := range rep.ByUnit {
		for _, n := range m {
			usum += n
		}
	}
	if usum != rep.Total {
		t.Errorf("unit counts sum to %d", usum)
	}
	// Fractions are consistent.
	var f float64
	for _, o := range Outcomes {
		f += rep.Fraction(o)
	}
	if f < 0.999 || f > 1.001 {
		t.Errorf("fractions sum to %f", f)
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 60
	cfg.Workers = 1
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range Outcomes {
		if a.Counts[o] != b.Counts[o] {
			t.Errorf("outcome %v: %d (1 worker) vs %d (3 workers)",
				o, a.Counts[o], b.Counts[o])
		}
	}
}

func TestCampaignFilterRestrictsPopulation(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 40
	cfg.Filter = latch.ByUnit(proc.UnitFPU)
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Unit != proc.UnitFPU {
			t.Fatalf("filtered campaign injected into %s", res.Unit)
		}
	}
}

func TestCampaignGroupPrefixFilter(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 30
	cfg.Filter = ByGroupPrefix("ifu.bht")
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Group != "ifu.bht" && res.Group != "ifu.bht2" {
			t.Fatalf("macro-targeted campaign hit %s", res.Group)
		}
		// Predictor bits are performance-only: they must all vanish.
		if res.Outcome != Vanished {
			t.Errorf("BHT flip outcome %v", res.Outcome)
		}
	}
}

func TestCampaignBadConfig(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 0
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("no error for zero flips")
	}
}

func TestRawModeCampaignHasNoMachineVisibleEvents(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 150
	cfg.Runner.CheckersOn = false
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counts[Corrected] != 0 {
		t.Errorf("raw mode produced %d corrected outcomes", rep.Counts[Corrected])
	}
	if rep.Counts[Checkstop] != 0 {
		t.Errorf("raw mode produced %d checkstops", rep.Counts[Checkstop])
	}
	// Raw vanish must exceed the checked-mode vanish (Table 3's shape).
	cfg.Runner.CheckersOn = true
	chk, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fraction(Vanished) < chk.Fraction(Vanished) {
		t.Errorf("raw vanish %.3f < checked vanish %.3f",
			rep.Fraction(Vanished), chk.Fraction(Vanished))
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		Vanished: "vanished", Corrected: "corrected", Hang: "hang",
		Checkstop: "checkstop", SDC: "sdc",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%v.String() = %q", int(o), o.String())
		}
	}
	if Outcome(42).String() == "" {
		t.Error("unknown outcome renders empty")
	}
}

func TestReportString(t *testing.T) {
	rep := newReport()
	rep.add(Result{Outcome: Vanished, Unit: "IFU", LatchType: latch.Func}, false)
	s := rep.String()
	if s == "" {
		t.Error("empty report string")
	}
}

func TestMultiBitUpsetParityBlindSpot(t *testing.T) {
	// Even-weight adjacent clusters inside one parity-covered word cancel
	// the parity bit: single-bit parity is blind to them, the classic
	// multi-bit-upset weakness that motivates SECDED and physical bit
	// interleaving. Detection (corrected outcomes) must therefore DROP
	// for even spans relative to single-bit flips.
	single := fastCampaignConfig()
	single.Flips = 400
	single.Seed = 77
	srep, err := RunCampaign(single)
	if err != nil {
		t.Fatal(err)
	}
	even := single
	even.Runner.SpanBits = 2
	erep, err := RunCampaign(even)
	if err != nil {
		t.Fatal(err)
	}
	if erep.Fraction(Corrected) > srep.Fraction(Corrected) {
		t.Errorf("2-bit clusters detected more than single flips: %.3f vs %.3f "+
			"(parity should be blind to even-weight corruption)",
			erep.Fraction(Corrected), srep.Fraction(Corrected))
	}
	// Odd spans flip the parity and stay detectable.
	odd := single
	odd.Runner.SpanBits = 3
	orep, err := RunCampaign(odd)
	if err != nil {
		t.Fatal(err)
	}
	if orep.Fraction(Corrected)+0.01 < erep.Fraction(Corrected) {
		t.Errorf("3-bit clusters (%.3f corrected) below 2-bit (%.3f): odd spans must stay detectable",
			orep.Fraction(Corrected), erep.Fraction(Corrected))
	}
}

func TestNestCampaignThroughFramework(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 150
	cfg.Runner.Proc.EnableNest = true
	cfg.Filter = latch.ByUnit(proc.UnitNEST)
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Unit != proc.UnitNEST {
			t.Fatalf("hit unit %s", res.Unit)
		}
	}
	if rep.Fraction(Vanished) < 0.8 {
		t.Errorf("NEST vanish %.2f implausibly low", rep.Fraction(Vanished))
	}
}

// TestRunnerCloneEquivalence: a warm clone must classify every injection
// exactly as the prototype does.
func TestRunnerCloneEquivalence(t *testing.T) {
	r, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	cl := r.Clone()
	total := r.DB().TotalBits()
	for i := 0; i < 25; i++ {
		bit := (i * 104729) % total
		want := r.RunInjection(bit)
		got := cl.RunInjection(bit)
		if got != want {
			t.Fatalf("bit %d: clone result %+v != prototype %+v", bit, got, want)
		}
	}
}

// TestCampaignWorkerStartFailFast forces a worker constructor error and
// checks the campaign aborts with it instead of draining all injections.
func TestCampaignWorkerStartFailFast(t *testing.T) {
	sentinel := errors.New("forced constructor failure")
	old := newWorkerRunner
	newWorkerRunner = func(proto *Runner, cfg CampaignConfig) (*Runner, error) {
		return nil, sentinel
	}
	defer func() { newWorkerRunner = old }()

	cfg := fastCampaignConfig()
	cfg.Workers = 4
	cfg.Flips = 4000 // large enough that draining it all would be obvious
	done := make(chan struct{})
	var err error
	go func() {
		_, err = RunCampaign(cfg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not fail fast")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

// TestCampaignClonedWorkersShareCheckpoints runs a ≥4-worker campaign on
// cloned runners (the shared-ModelCheckpoint concurrency surface); run it
// under -race via the ci target.
func TestCampaignClonedWorkersShareCheckpoints(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Workers = 4
	cfg.Flips = 64
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != cfg.Flips {
		t.Fatalf("total = %d, want %d", rep.Total, cfg.Flips)
	}
}

// TestCampaignNoCloneMatchesCloned: the from-scratch worker path must agree
// with warm-cloned workers injection for injection.
func TestCampaignNoCloneMatchesCloned(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Workers = 3
	cfg.Flips = 60
	cloned, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoClone = true
	fresh, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range Outcomes {
		if cloned.Counts[o] != fresh.Counts[o] {
			t.Errorf("outcome %v: %d (cloned) vs %d (no-clone)", o, cloned.Counts[o], fresh.Counts[o])
		}
	}
}
