// Package core implements Statistical Fault Injection — the paper's
// contribution. It orchestrates fault-injection campaigns over an
// injectable machine model (any registered engine backend): random or
// targeted latch selection, checkpointed injection runs under the
// backend's workload, outcome classification into the paper's categories
// (vanished, corrected, hang, checkstop, incorrect architected state),
// cause-and-effect tracing from the injected latch to the first checker
// that saw it, and per-sample statistics.
package core

import "sfi/internal/engine"

// Outcome classifies the destiny of one injected bit flip (Figure 1). The
// taxonomy lives in the backend-neutral engine package so every backend
// classifies identically; these aliases keep core's historical API.
type Outcome = engine.Outcome

// Outcomes, in the paper's vocabulary. SDC is the "BAD ARCH STATE" flag:
// the workload found incorrect architected state.
const (
	Vanished  = engine.Vanished
	Corrected = engine.Corrected
	Hang      = engine.Hang
	Checkstop = engine.Checkstop
	SDC       = engine.SDC
)

// Outcomes lists all outcomes in reporting order.
var Outcomes = engine.Outcomes
