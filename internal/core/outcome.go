// Package core implements Statistical Fault Injection — the paper's
// contribution. It orchestrates fault-injection campaigns over the
// emulated model: random or targeted latch selection, checkpointed
// injection runs under the AVP workload, outcome classification into the
// paper's categories (vanished, corrected, hang, checkstop, incorrect
// architected state), cause-and-effect tracing from the injected latch to
// the first checker that saw it, and per-sample statistics.
package core

import "fmt"

// Outcome classifies the destiny of one injected bit flip (Figure 1).
type Outcome int

// Outcomes, in the paper's vocabulary. SDC is the "BAD ARCH STATE" flag:
// the AVP found incorrect architected state.
const (
	Vanished Outcome = iota + 1
	Corrected
	Hang
	Checkstop
	SDC
)

// Outcomes lists all outcomes in reporting order.
var Outcomes = []Outcome{Vanished, Corrected, Hang, Checkstop, SDC}

func (o Outcome) String() string {
	switch o {
	case Vanished:
		return "vanished"
	case Corrected:
		return "corrected"
	case Hang:
		return "hang"
	case Checkstop:
		return "checkstop"
	case SDC:
		return "sdc"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}
