package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestPlanShardsPartition(t *testing.T) {
	cases := []struct{ flips, size, want int }{
		{100, 10, 10}, {100, 33, 4}, {100, 0, 1}, {100, 1000, 1}, {1, 1, 1},
	}
	for _, c := range cases {
		shards := PlanShards(c.flips, c.size)
		if len(shards) != c.want {
			t.Errorf("PlanShards(%d,%d): %d shards, want %d", c.flips, c.size, len(shards), c.want)
		}
		next := 0
		for _, s := range shards {
			if s.Lo != next || s.Hi <= s.Lo {
				t.Fatalf("PlanShards(%d,%d): bad shard %+v at offset %d", c.flips, c.size, s, next)
			}
			next = s.Hi
		}
		if next != c.flips {
			t.Errorf("PlanShards(%d,%d): covers [0,%d), want [0,%d)", c.flips, c.size, next, c.flips)
		}
	}
	if PlanShards(0, 10) != nil {
		t.Error("PlanShards(0, 10) should be empty")
	}
}

// TestSampleCampaignBitsPure: the sample must be a pure function of
// (seed, flips, filter) — same inputs, same bits, across independently
// built models. This is what makes shard partitioning reproducible across
// processes.
func TestSampleCampaignBitsPure(t *testing.T) {
	r1, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		a := SampleCampaignBits(r1.DB(), seed, 500, nil)
		b := SampleCampaignBits(r2.DB(), seed, 500, nil)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: samples differ across identical models", seed)
		}
	}
}

// TestCampaignDeterministicAcrossWorkerCounts: worker count is a
// throughput knob, never an outcome knob — the same config must yield
// identical reports at any concurrency.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 60
	cfg.Workers = 1
	one, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	four, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Counts, four.Counts) {
		t.Errorf("outcome totals differ across worker counts:\n1: %v\n4: %v", one.Counts, four.Counts)
	}
	if !reflect.DeepEqual(one.ByUnit, four.ByUnit) {
		t.Errorf("per-unit totals differ across worker counts")
	}
	if !reflect.DeepEqual(one.ByType, four.ByType) {
		t.Errorf("per-type totals differ across worker counts")
	}
	if !reflect.DeepEqual(one.Results, four.Results) {
		t.Errorf("kept results differ across worker counts")
	}
}

// TestReportMergeEqualsUnion: merging the reports of k disjoint shards, in
// shard order, must reproduce the whole-campaign report exactly — counts,
// per-unit, per-type and kept results.
func TestReportMergeEqualsUnion(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 60
	cfg.Workers = 2

	proto, err := NewRunner(cfg.Runner)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := RunCampaignWith(context.Background(), proto, cfg)
	if err != nil {
		t.Fatal(err)
	}

	merged := &Report{}
	for _, sr := range PlanShards(cfg.Flips, 17) {
		scfg := cfg
		scfg.Shard = &sr
		rep, err := RunCampaignWith(context.Background(), proto, scfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Total != sr.Size() {
			t.Fatalf("shard %+v: total %d", sr, rep.Total)
		}
		merged.Merge(rep)
	}

	if merged.Total != whole.Total {
		t.Fatalf("merged total %d, whole %d", merged.Total, whole.Total)
	}
	if !reflect.DeepEqual(merged.Counts, whole.Counts) {
		t.Errorf("merged counts differ:\nmerged: %v\nwhole:  %v", merged.Counts, whole.Counts)
	}
	if !reflect.DeepEqual(merged.ByUnit, whole.ByUnit) {
		t.Errorf("merged per-unit counts differ")
	}
	if !reflect.DeepEqual(merged.ByType, whole.ByType) {
		t.Errorf("merged per-type counts differ")
	}
	if !reflect.DeepEqual(merged.Results, whole.Results) {
		t.Errorf("merged kept results differ from whole-campaign results")
	}
}

func TestReportMergeNilAndEmpty(t *testing.T) {
	r := &Report{}
	r.Merge(nil)
	r.Merge(&Report{})
	if r.Total != 0 {
		t.Fatalf("empty merges changed the report: %+v", r)
	}
}

func TestRunCampaignContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := fastCampaignConfig()
	cfg.Flips = 40
	if _, err := RunCampaignContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
}

func TestRunCampaignWithShardValidation(t *testing.T) {
	proto, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCampaignConfig()
	cfg.Flips = 10
	for _, bad := range []ShardRange{{-1, 5}, {5, 11}, {7, 7}, {8, 2}} {
		scfg := cfg
		scfg.Shard = &bad
		if _, err := RunCampaignWith(context.Background(), proto, scfg); err == nil {
			t.Errorf("shard %+v accepted", bad)
		}
	}
}
