package core

import (
	"time"

	"sfi/internal/engine"
	"sfi/internal/latch"
	"sfi/internal/obs"
)

// RunnerConfig parameterizes one injection runner. It is an alias of the
// engine-level config: the Backend field selects the machine model (see
// engine.Register), and the rest parameterizes the injection protocol.
type RunnerConfig = engine.Config

// DefaultRunnerConfig returns the standard SFI configuration.
func DefaultRunnerConfig() RunnerConfig { return engine.DefaultConfig() }

// Result records the destiny of one injection, including the cause-effect
// trace from the flipped latch to the first checker that saw the error.
type Result struct {
	Bit        int
	Group      string
	Unit       string
	LatchType  latch.Type
	Entry      int
	BitInEntry int

	Outcome Outcome

	// Cause-and-effect trace.
	Detected      bool   // some checker observed the fault
	FirstChecker  string // name of the first checker that posted
	DetectLatency uint64 // cycles from injection to first detection

	Recoveries uint64 // RUT retries during the observation window
	Cycles     uint64 // cycles actually observed
	TestEnds   int    // workload barriers passed
}

// Runner owns one injectable machine model ready for repeated injections:
// the backend is warmed to workload steady state and checkpointed at
// several phases of the workload pass; every injection reloads one of the
// checkpoints (chosen deterministically from the injected bit), advances a
// small additional phase delay, flips the latch and monitors the outcome.
// Spreading the injection instants across the workload is what makes the
// campaign sample "realistic conditions" rather than one fixed machine
// state. The Runner itself is backend-neutral: everything
// model-specific — warm-up, checkpoints, barrier verification, machine
// checks — lives behind the engine.Backend interface.
type Runner struct {
	cfg RunnerConfig
	be  engine.Backend

	// Observability (nil = off, the default): obs collects metrics, trace
	// records per-injection lifecycle events. Set via SetObs; clones do not
	// inherit them (each campaign worker gets its own collector).
	obs   *obs.Metrics
	trace *obs.TraceSink

	// Campaign tracing (nil = off): tracer records one causal span per
	// bit-parallel batch pass, parented under spanCtx. Set via SetSpan;
	// clones do not inherit it.
	tracer  *obs.Tracer
	spanCtx obs.SpanContext
}

// NewRunner builds, warms and checkpoints a runner on the backend
// selected by cfg.Backend (the process must have registered it, usually
// via a blank import of the backend package).
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	be, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, be: be}, nil
}

// Backend exposes the runner's engine backend (for backend-specific
// access; campaign code stays behind the interface).
func (r *Runner) Backend() engine.Backend { return r.be }

// DB exposes the backend's latch population for sampling and metadata.
func (r *Runner) DB() *latch.DB { return r.be.DB() }

// SetObs attaches a metrics collector and/or trace sink to the runner (nil
// detaches either; the default is fully off). The collector is threaded
// down into the backend so restore latencies and propagation cycle counts
// are captured at their source.
func (r *Runner) SetObs(m *obs.Metrics, trace *obs.TraceSink) {
	r.obs = m
	r.trace = trace
	r.be.SetObs(m)
}

// SetSpan attaches a campaign tracer: each bit-parallel batch pass then
// records one "batch" span (lane occupancy, restore/run split, quiesce
// exits) parented under parent. Nil detaches (the default). The scalar
// per-injection path is deliberately not spanned — injection lifecycle
// detail already flows through the trace sink, and a span per injection
// would put allocation on the hot path.
func (r *Runner) SetSpan(tr *obs.Tracer, parent obs.SpanContext) {
	r.tracer = tr
	r.spanCtx = parent
}

// Clone duplicates a warmed runner without re-running warm-up and
// checkpointing: the backend shares its immutable checkpoints and
// workload with the prototype but owns all mutable model state, so
// prototype and clones can run injections concurrently.
func (r *Runner) Clone() *Runner {
	return &Runner{cfg: r.cfg, be: r.be.Clone()}
}

// splitmix64 deterministically assigns each injection its workload phase,
// independent of worker scheduling.
func splitmix64(x uint64) uint64 { return engine.Splitmix64(x) }

// injectionSchedule derives one sampled bit's deterministic injection
// instant: the phased checkpoint to reload and the sub-workload phase
// jitter (in cycles) before the flip. Both the scalar path and the batch
// planner/dispatcher derive from this single function, which is what keeps
// their classifications identical.
func injectionSchedule(bit, phases int) (ckIdx, delay int) {
	h := splitmix64(uint64(bit))
	return int(h % uint64(phases)), int((h >> 16) % 197)
}

// classify folds one injection's observations — run stats, machine
// verdict, barrier divergence, injection cycle — into a classified Result.
// It is the single classification point shared by the scalar and the
// batched path.
func (r *Runner) classify(bit int, st engine.RunStats, v engine.Verdict, sdc bool, injectCycle uint64) Result {
	g, entry, bie := r.be.DB().Locate(bit)
	res := Result{
		Bit:        bit,
		Group:      g.Name,
		Unit:       g.Unit,
		LatchType:  g.Kind,
		Entry:      entry,
		BitInEntry: bie,
	}
	res.Cycles = st.Cycles
	res.TestEnds = st.Barriers
	res.Recoveries = v.Recoveries
	if v.Detected {
		res.Detected = true
		res.FirstChecker = v.FirstChecker
		res.DetectLatency = v.DetectCycle - injectCycle
	}
	switch {
	case v.Checkstop:
		res.Outcome = Checkstop
	case st.Hang || st.NoProgress:
		res.Outcome = Hang
	case sdc:
		res.Outcome = SDC
	case res.Recoveries > 0 || v.Corrected:
		res.Outcome = Corrected
	default:
		res.Outcome = Vanished
	}
	return res
}

// RunInjection reloads a phase-determined checkpoint, injects a single bit
// flip and observes the machine, returning the classified result.
func (r *Runner) RunInjection(bit int) Result {
	ckIdx, delay := injectionSchedule(bit, r.be.Phases())

	// Observability is off (nil) by default; the instrumented path times
	// the restore and propagation phases for metrics and trace events.
	observed := r.obs != nil || r.trace != nil
	var t0 time.Time
	var restoreNs int64
	if observed {
		t0 = time.Now()
	}
	r.be.ReloadPhase(ckIdx)
	if observed {
		restoreNs = time.Since(t0).Nanoseconds()
	}
	for i := 0; i < delay; i++ {
		r.be.Step()
	}

	injectCycle := r.be.Cycle()
	if err := r.be.Inject(engine.Injection{
		Bit: bit, Mode: r.cfg.Mode, Duration: r.cfg.StickyCycles,
		Span: r.cfg.SpanBits,
	}); err != nil {
		panic(err) // bits come from the database's own sampling
	}

	sdc := false
	cleanEnds := 0

	onBarrier := func() bool {
		chk := r.be.CheckBarrier()
		if !chk.StateOK {
			sdc = true
			return false // incorrect architected state: stop
		}
		// Quiesce-based early exit: consecutive clean barriers with no
		// new error activity in between.
		if chk.Busy {
			cleanEnds = 0
			return true
		}
		cleanEnds++
		return r.cfg.QuiesceExit == 0 || cleanEnds < r.cfg.QuiesceExit
	}

	var p0 time.Time
	if observed {
		p0 = time.Now()
	}
	run := r.be.Run(r.cfg.Window, onBarrier)
	var propagateNs int64
	if observed {
		propagateNs = time.Since(p0).Nanoseconds()
	}
	res := r.classify(bit, run, r.be.Verdict(), sdc, injectCycle)

	if r.obs != nil {
		r.obs.ObserveInjection(uint64(time.Since(t0).Nanoseconds()))
		r.obs.IncOutcome(int(res.Outcome), res.Unit, res.LatchType.String())
		if res.Detected {
			r.obs.ObserveDetect(res.DetectLatency)
		}
	}
	if r.trace != nil {
		r.trace.Record(&obs.TraceEvent{
			TS:            t0.UnixNano(),
			Bit:           res.Bit,
			Group:         res.Group,
			Unit:          res.Unit,
			LatchType:     res.LatchType.String(),
			Checkpoint:    ckIdx,
			DelayCycles:   delay,
			RestoreNs:     restoreNs,
			PropagateNs:   propagateNs,
			Cycles:        res.Cycles,
			TestEnds:      res.TestEnds,
			Outcome:       res.Outcome.String(),
			Detected:      res.Detected,
			FirstChecker:  res.FirstChecker,
			DetectLatency: res.DetectLatency,
			Recoveries:    res.Recoveries,
			FIR:           r.be.FIRNames(),
		})
	}
	return res
}

// BatchSize returns how many injections the runner can classify per
// bit-parallel backend pass; anything below 2 means the runner is scalar
// (either the backend has no lanes or BatchLanes forced them off).
func (r *Runner) BatchSize() int {
	if bb, ok := r.be.(engine.BatchBackend); ok {
		return bb.MaxBatch()
	}
	return 0
}

// RunInjectionBatch classifies a group of sampled bits in one bit-parallel
// backend pass: the shared phased checkpoint is restored once, every bit
// gets its own fault lane, and per-bit Results are identical to running
// each bit through RunInjection. All bits must share one checkpoint phase
// (the campaign's batch planner groups them) and the group must fit the
// backend's MaxBatch.
func (r *Runner) RunInjectionBatch(bits []int) []Result {
	bb := r.be.(engine.BatchBackend)
	phases := r.be.Phases()
	ckIdx := -1
	injs := make([]engine.BatchInjection, len(bits))
	for i, bit := range bits {
		ck, delay := injectionSchedule(bit, phases)
		if ckIdx < 0 {
			ckIdx = ck
		} else if ck != ckIdx {
			panic("core: batch mixes checkpoint phases")
		}
		injs[i] = engine.BatchInjection{
			Inj: engine.Injection{
				Bit: bit, Mode: r.cfg.Mode, Duration: r.cfg.StickyCycles,
				Span: r.cfg.SpanBits,
			},
			Delay: delay,
		}
	}

	observed := r.obs != nil || r.trace != nil
	var t0 time.Time
	if observed {
		t0 = time.Now()
	}
	sp := r.tracer.StartSpan("batch", "engine", r.spanCtx)
	brs, err := bb.RunBatch(ckIdx, injs, r.cfg.Window, r.cfg.QuiesceExit)
	if err != nil {
		panic(err) // bits come from the database's own sampling
	}
	if sp != nil {
		sp.AttrInt("lanes", int64(len(bits))).
			AttrInt("max_lanes", int64(bb.MaxBatch())).
			AttrInt("checkpoint", int64(ckIdx))
		if rep, ok := r.be.(engine.BatchStatsReporter); ok {
			st := rep.LastBatchStats()
			sp.AttrInt("restore_ns", st.RestoreNs).
				AttrInt("cycles", int64(st.Cycles)).
				AttrInt("barriers", int64(st.Barriers)).
				AttrInt("quiesced", int64(st.Quiesced))
		}
		sp.End()
	}
	// The pass's wall time is shared work: attribute an equal share to
	// each injection so rate and busy metrics stay comparable with the
	// scalar path.
	var shareNs uint64
	if observed {
		shareNs = uint64(time.Since(t0).Nanoseconds()) / uint64(len(bits))
	}
	r.obs.ObserveBatch(uint64(len(bits)))

	out := make([]Result, len(bits))
	for i, br := range brs {
		res := r.classify(bits[i], br.Stats, br.Verdict, br.SDC, br.InjectCycle)
		out[i] = res
		if r.obs != nil {
			r.obs.ObserveInjection(shareNs)
			r.obs.IncOutcome(int(res.Outcome), res.Unit, res.LatchType.String())
			if res.Detected {
				r.obs.ObserveDetect(res.DetectLatency)
			}
		}
		if r.trace != nil {
			r.trace.Record(&obs.TraceEvent{
				TS:            t0.UnixNano(),
				Bit:           res.Bit,
				Group:         res.Group,
				Unit:          res.Unit,
				LatchType:     res.LatchType.String(),
				Checkpoint:    ckIdx,
				DelayCycles:   injs[i].Delay,
				PropagateNs:   int64(shareNs),
				Cycles:        res.Cycles,
				TestEnds:      res.TestEnds,
				Outcome:       res.Outcome.String(),
				Detected:      res.Detected,
				FirstChecker:  res.FirstChecker,
				DetectLatency: res.DetectLatency,
				Recoveries:    res.Recoveries,
			})
		}
	}
	return out
}
