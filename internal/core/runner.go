package core

import (
	"fmt"
	"time"

	"sfi/internal/avp"
	"sfi/internal/emu"
	"sfi/internal/latch"
	"sfi/internal/obs"
	"sfi/internal/proc"
)

// RunnerConfig parameterizes one injection runner.
type RunnerConfig struct {
	Proc proc.Config
	AVP  avp.Config

	// Window is the post-injection observation budget in cycles. The
	// paper clocks 500,000 cycles per injection; the default here is
	// smaller with quiesce-based early exit (see the ablation bench).
	Window int

	// QuiesceExit ends an injection run early once this many consecutive
	// testend barriers pass cleanly with no new error activity between
	// them. 0 disables early exit (the paper's fixed-window behaviour).
	QuiesceExit int

	// CheckersOn masks (false) or enables (true) every hardware checker —
	// the paper's Table 3 Raw-vs-Check configurations.
	CheckersOn bool

	// RecoveryOn disables the RUT when false (ablation).
	RecoveryOn bool

	// Mode selects toggle or sticky injection; StickyCycles bounds a
	// sticky fault's lifetime (0 = permanent).
	Mode         emu.Mode
	StickyCycles int

	// SpanBits > 1 injects multi-bit upsets: each injection flips
	// SpanBits adjacent latch bits (clipped at the population edge).
	SpanBits int
}

// DefaultRunnerConfig returns the standard SFI configuration.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{
		Proc:        proc.DefaultConfig(),
		AVP:         avp.DefaultConfig(),
		Window:      50_000,
		QuiesceExit: 2,
		CheckersOn:  true,
		RecoveryOn:  true,
		Mode:        emu.Toggle,
	}
}

// Result records the destiny of one injection, including the cause-effect
// trace from the flipped latch to the first checker that saw the error.
type Result struct {
	Bit        int
	Group      string
	Unit       string
	LatchType  latch.Type
	Entry      int
	BitInEntry int

	Outcome Outcome

	// Cause-and-effect trace.
	Detected      bool   // some checker observed the fault
	FirstChecker  string // name of the first checker that posted
	DetectLatency uint64 // cycles from injection to first detection

	Recoveries uint64 // RUT retries during the observation window
	Cycles     uint64 // cycles actually observed
	TestEnds   int    // AVP barriers passed
}

// phasedCheckpoint is a model snapshot taken at one point of the AVP pass.
type phasedCheckpoint struct {
	ck     *proc.ModelCheckpoint
	nextTC int // testcase index expected at the next testend barrier
}

// Runner owns one emulated model ready for repeated injections: the system
// is warmed to AVP steady state and checkpointed at several phases of the
// workload pass; every injection reloads one of the checkpoints (chosen
// deterministically from the injected bit), advances a small additional
// phase delay, flips the latch and monitors the outcome. Spreading the
// injection instants across the workload is what makes the campaign sample
// "realistic conditions" rather than one fixed machine state.
type Runner struct {
	cfg  RunnerConfig
	eng  *emu.Engine
	prog *avp.Program

	ckpts     []phasedCheckpoint
	baseRecov uint64

	// Observability (nil = off, the default): obs collects metrics, trace
	// records per-injection lifecycle events. Set via SetObs; clones do not
	// inherit them (each campaign worker gets its own collector).
	obs   *obs.Metrics
	trace *obs.TraceSink
}

// SetObs attaches a metrics collector and/or trace sink to the runner (nil
// detaches either; the default is fully off). The collector is threaded
// down into the engine and core so restore latencies and propagation cycle
// counts are captured at their source.
func (r *Runner) SetObs(m *obs.Metrics, trace *obs.TraceSink) {
	r.obs = m
	r.trace = trace
	r.eng.SetObs(m)
}

// NewRunner builds, warms and checkpoints a runner.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	if cfg.AVP.MemBytes != cfg.Proc.MemBytes {
		cfg.AVP.MemBytes = cfg.Proc.MemBytes
	}
	prog, err := avp.Generate(cfg.AVP)
	if err != nil {
		return nil, err
	}
	c := proc.New(cfg.Proc)
	c.Mem().LoadProgram(0, prog.Words)
	c.SetCheckersEnabled(cfg.CheckersOn)
	c.SetRecoveryEnabled(cfg.RecoveryOn)
	eng := emu.New(c)

	// Warm: two full passes reach AVP steady state (memory and registers
	// in their periodic regime).
	warmEnds := 2 * cfg.AVP.Testcases
	ends := 0
	for guard := 0; ends < warmEnds; guard++ {
		if guard > 50_000_000 {
			return nil, fmt.Errorf("core: warm-up did not converge")
		}
		if eng.Step().TestEnd {
			ends++
		}
	}
	// Install the dirty-tracking restore baseline at steady state: the
	// phased checkpoints below are captured as sparse deltas against it,
	// and every per-injection reload rewrites only the state that differs.
	c.InstallRestoreBaseline()
	r := &Runner{
		cfg:       cfg,
		eng:       eng,
		prog:      prog,
		baseRecov: c.Recoveries,
	}
	// One checkpoint per testcase boundary across a third full pass.
	for i := 0; i < cfg.AVP.Testcases; i++ {
		r.ckpts = append(r.ckpts, phasedCheckpoint{
			ck:     eng.TakeCheckpoint(),
			nextTC: ends % cfg.AVP.Testcases,
		})
		for guard := 0; ; guard++ {
			if guard > 50_000_000 {
				return nil, fmt.Errorf("core: checkpoint pass did not converge")
			}
			if eng.Step().TestEnd {
				ends++
				break
			}
		}
	}
	return r, nil
}

// Clone duplicates a warmed runner without re-generating the AVP or
// re-running the warm-up and checkpoint passes: it builds a fresh model,
// adopts the prototype's restore baseline (shared read-only) and reloads the
// first phased checkpoint. The clone shares the prototype's immutable
// checkpoints and program but owns all mutable model state, so prototype and
// clones can run injections concurrently. Cloning only reads the
// prototype's immutable baseline and checkpoint data, never its live state.
func (r *Runner) Clone() *Runner {
	c := proc.New(r.cfg.Proc)
	c.SetCheckersEnabled(r.cfg.CheckersOn)
	c.SetRecoveryEnabled(r.cfg.RecoveryOn)
	c.AdoptBaselineFrom(r.eng.Core())
	eng := emu.New(c)
	nr := &Runner{
		cfg:       r.cfg,
		eng:       eng,
		prog:      r.prog,
		ckpts:     r.ckpts,
		baseRecov: r.baseRecov,
	}
	// Synchronize counters and capture state with a (dirty-path) reload.
	eng.ReloadFrom(r.ckpts[0].ck)
	return nr
}

// splitmix64 is the per-bit hash that deterministically assigns each
// injection its workload phase, independent of worker scheduling.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Core exposes the underlying model (for sampling its latch database).
func (r *Runner) Core() *proc.Core { return r.eng.Core() }

// Program exposes the AVP running on the model.
func (r *Runner) Program() *avp.Program { return r.prog }

// RunInjection reloads a phase-determined checkpoint, injects a single bit
// flip and observes the machine, returning the classified result.
func (r *Runner) RunInjection(bit int) Result {
	h := splitmix64(uint64(bit))
	ckIdx := int(h % uint64(len(r.ckpts)))
	ph := r.ckpts[ckIdx]
	delay := int((h >> 16) % 197) // sub-testcase phase jitter, in cycles

	// Observability is off (nil) by default; the instrumented path times
	// the restore and propagation phases for metrics and trace events.
	observed := r.obs != nil || r.trace != nil
	var t0 time.Time
	var restoreNs int64
	if observed {
		t0 = time.Now()
	}
	r.eng.ReloadFrom(ph.ck)
	if observed {
		restoreNs = time.Since(t0).Nanoseconds()
	}
	c := r.eng.Core()
	db := c.DB()
	nextTC := ph.nextTC
	for i := 0; i < delay; i++ {
		if r.eng.Step().TestEnd {
			nextTC = (nextTC + 1) % r.cfg.AVP.Testcases
		}
	}

	g, entry, bie := db.Locate(bit)
	res := Result{
		Bit:        bit,
		Group:      g.Name,
		Unit:       g.Unit,
		LatchType:  g.Kind,
		Entry:      entry,
		BitInEntry: bie,
	}

	injectCycle := c.Cycle
	if err := r.eng.Inject(emu.Injection{
		Bit: bit, Mode: r.cfg.Mode, Duration: r.cfg.StickyCycles,
		Span: r.cfg.SpanBits,
	}); err != nil {
		panic(err) // bits come from the database's own sampling
	}

	tcIdx := nextTC
	ncases := r.cfg.AVP.Testcases
	sdc := false
	cleanEnds := 0
	lastActivity := c.Recoveries

	onTestEnd := func() bool {
		tc := r.prog.Testcases[tcIdx]
		tcIdx = (tcIdx + 1) % ncases
		st := c.ArchState()
		sigOK := st.MaskedSignature(tc.GPRMask, tc.FPRMask, tc.SPRMask) == tc.SigMasked
		memOK := c.Mem().DigestRange(r.prog.DataLo, r.prog.DataHi) == tc.MemDigest
		if !sigOK || !memOK {
			sdc = true
			return false // incorrect architected state: stop
		}
		// Quiesce-based early exit: consecutive clean barriers with no
		// new error activity in between.
		if c.Recoveries != lastActivity || c.InRecovery() {
			lastActivity = c.Recoveries
			cleanEnds = 0
			return true
		}
		cleanEnds++
		return r.cfg.QuiesceExit == 0 || cleanEnds < r.cfg.QuiesceExit
	}

	var p0 time.Time
	if observed {
		p0 = time.Now()
	}
	run := r.eng.Run(r.cfg.Window, onTestEnd)
	var propagateNs int64
	if observed {
		propagateNs = time.Since(p0).Nanoseconds()
	}
	res.Cycles = run.Cycles
	res.TestEnds = run.TestEnds
	res.Recoveries = c.Recoveries - r.baseRecov

	if id, cyc, ok := c.FirstError(); ok {
		res.Detected = true
		res.FirstChecker = c.CheckerByID(id).Name
		res.DetectLatency = cyc - injectCycle
	}

	switch {
	case c.Checkstopped():
		res.Outcome = Checkstop
	case run.Hang || run.NoProgress:
		res.Outcome = Hang
	case sdc:
		res.Outcome = SDC
	case res.Recoveries > 0 || c.ArrayCorrectedCount() > 0 || c.AnyFIR():
		res.Outcome = Corrected
	default:
		res.Outcome = Vanished
	}

	if r.obs != nil {
		r.obs.ObserveInjection(uint64(time.Since(t0).Nanoseconds()))
		r.obs.IncOutcome(int(res.Outcome), res.Unit, res.LatchType.String())
		if res.Detected {
			r.obs.ObserveDetect(res.DetectLatency)
		}
	}
	if r.trace != nil {
		r.trace.Record(&obs.TraceEvent{
			TS:            t0.UnixNano(),
			Bit:           res.Bit,
			Group:         res.Group,
			Unit:          res.Unit,
			LatchType:     res.LatchType.String(),
			Checkpoint:    ckIdx,
			DelayCycles:   delay,
			RestoreNs:     restoreNs,
			PropagateNs:   propagateNs,
			Cycles:        res.Cycles,
			TestEnds:      res.TestEnds,
			Outcome:       res.Outcome.String(),
			Detected:      res.Detected,
			FirstChecker:  res.FirstChecker,
			DetectLatency: res.DetectLatency,
			Recoveries:    res.Recoveries,
			FIR:           r.eng.FIRNames(),
		})
	}
	return res
}
