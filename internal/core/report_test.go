package core

import (
	"encoding/json"
	"strings"
	"testing"

	"sfi/internal/latch"
)

func sampleReport(t *testing.T) *Report {
	t.Helper()
	cfg := fastCampaignConfig()
	cfg.Flips = 250
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestConfidenceIntervalsBracketFractions(t *testing.T) {
	rep := sampleReport(t)
	cis := rep.ConfidenceIntervals(1.96)
	for _, o := range Outcomes {
		ci := cis[o]
		if ci.Lo > ci.Fraction || ci.Fraction > ci.Hi {
			t.Errorf("%v: fraction %.3f outside [%.3f, %.3f]", o, ci.Fraction, ci.Lo, ci.Hi)
		}
		if ci.Lo < 0 || ci.Hi > 1 {
			t.Errorf("%v: interval out of [0,1]", o)
		}
	}
}

func TestConfidenceIntervalsShrinkWithN(t *testing.T) {
	small := &Report{Total: 50, Counts: map[Outcome]int{Vanished: 47}}
	big := &Report{Total: 5000, Counts: map[Outcome]int{Vanished: 4700}}
	sci := small.ConfidenceIntervals(1.96)[Vanished]
	bci := big.ConfidenceIntervals(1.96)[Vanished]
	if bci.Hi-bci.Lo >= sci.Hi-sci.Lo {
		t.Errorf("interval did not shrink: %f vs %f", bci.Hi-bci.Lo, sci.Hi-sci.Lo)
	}
}

func TestDetectionLatencyStats(t *testing.T) {
	rep := &Report{}
	rep.Results = []Result{
		{Detected: true, DetectLatency: 10},
		{Detected: true, DetectLatency: 50},
		{Detected: true, DetectLatency: 30},
		{Detected: false},
	}
	ls := rep.DetectionLatency()
	if ls.Detected != 3 || ls.Min != 10 || ls.Max != 50 {
		t.Errorf("stats = %+v", ls)
	}
	if ls.Mean != 30 {
		t.Errorf("mean = %f", ls.Mean)
	}
	if ls.P50 != 30 {
		t.Errorf("p50 = %d", ls.P50)
	}
	empty := (&Report{}).DetectionLatency()
	if empty.Detected != 0 {
		t.Error("empty latency stats wrong")
	}
}

func TestCoverageTable(t *testing.T) {
	rep := &Report{}
	rep.Results = []Result{
		{Detected: true, FirstChecker: "a", Outcome: Corrected},
		{Detected: true, FirstChecker: "a", Outcome: Corrected},
		{Detected: true, FirstChecker: "b", Outcome: Checkstop},
		{Detected: false, Outcome: Vanished},
	}
	cov := rep.CoverageTable()
	if len(cov) != 2 {
		t.Fatalf("rows = %d", len(cov))
	}
	if cov[0].Checker != "a" || cov[0].Detected != 2 {
		t.Errorf("first row = %+v", cov[0])
	}
	if cov[0].Outcomes[Corrected] != 2 {
		t.Error("outcome counts wrong")
	}
}

func TestDetailedStringOnRealCampaign(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 300
	cfg.Filter = latch.ByUnit("LSU") // plenty of detections
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.DetailedString()
	if !strings.Contains(s, "total flips: 300") {
		t.Error("missing header")
	}
	if !strings.Contains(s, "[") {
		t.Error("missing confidence intervals")
	}
	if rep.Counts[Corrected] > 0 && !strings.Contains(s, "checker coverage") {
		t.Error("missing coverage table despite detections")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 200
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Total     int                `json:"total"`
		Counts    map[string]int     `json:"counts"`
		Fractions map[string]float64 `json:"fractions"`
		Results   []struct {
			Outcome string `json:"outcome"`
			Group   string `json:"group"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Total != 200 {
		t.Errorf("total = %d", decoded.Total)
	}
	sum := 0
	for _, n := range decoded.Counts {
		sum += n
	}
	if sum != 200 {
		t.Errorf("counts sum to %d", sum)
	}
	// Only non-vanished results serialized.
	want := 200 - rep.Counts[Vanished]
	if len(decoded.Results) != want {
		t.Errorf("serialized %d results, want %d", len(decoded.Results), want)
	}
	for _, res := range decoded.Results {
		if res.Outcome == "vanished" {
			t.Error("vanished result serialized")
		}
		if res.Group == "" {
			t.Error("empty group in serialized result")
		}
	}
}
