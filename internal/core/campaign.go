package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sfi/internal/latch"
	"sfi/internal/obs"
	"sfi/internal/stats"
)

// CampaignConfig describes a statistical fault-injection campaign.
type CampaignConfig struct {
	Runner RunnerConfig

	// Seed drives latch sampling (and nothing else; the model and AVP are
	// deterministic given their own configs).
	Seed uint64

	// Flips is the number of latch bits to inject, sampled without
	// replacement from the filtered population.
	Flips int

	// Filter restricts the sampled population (nil = the whole design) —
	// the paper's targeted injection into units, latch types or macros.
	Filter latch.Filter

	// Workers is the number of concurrent model copies ("multiple
	// concurrent copies of the simulation environment can be run"); 0
	// means GOMAXPROCS.
	Workers int

	// KeepResults retains every per-injection Result in the report (set
	// false for very large campaigns to save memory; aggregates are
	// always kept).
	KeepResults bool

	// NoClone makes every worker build its own runner from scratch
	// (re-generating the AVP and re-running the warm-up) instead of
	// cloning the warmed prototype. Kept as the slow reference path for
	// benchmarking campaign start-up cost.
	NoClone bool

	// Obs configures campaign observability (metrics, injection traces,
	// live progress). The zero value is fully off and costs ~nothing.
	Obs ObsConfig

	// Stop configures adaptive statistical early-stop: when enabled, the
	// campaign streams classified outcomes into a sequential-interval
	// estimator and (with StopOnConverge) stops dispatching as soon as
	// every outcome class's confidence interval is within the target
	// margin — the paper's "just enough samples" methodology made
	// operational. The zero value keeps the classic fixed-Flips behavior
	// bit for bit.
	Stop StopConfig

	// Shard, when non-nil, restricts execution to the half-open
	// injection-index range [Lo, Hi) of the campaign's deterministic
	// sample. The full Flips-bit sample is still drawn (it is a pure
	// function of Seed and Filter, see SampleCampaignBits), so disjoint
	// shards executed by different processes partition exactly the
	// injections a single whole-campaign run would perform, and merging
	// their Reports reproduces the whole-campaign Report.
	Shard *ShardRange

	// Alloc selects how the injection budget is allocated across sampling
	// strata. The zero value is the classic uniform sample, byte-identical
	// to builds without stratified allocation; AllocNeyman runs the
	// campaign as a stratified sample plan with Neyman re-allocation
	// epochs (see SamplePlan).
	Alloc AllocConfig

	// Stratum, when non-empty, scopes execution to one sampling stratum of
	// the campaign's SamplePlan: Shard then indexes the stratum's own
	// deterministic sequence instead of the pooled sample. This is how a
	// distributed worker executes a stratified shard with the ordinary
	// uniform machinery — a stratum shard is just a campaign over a
	// different deterministic bit slice.
	Stratum string
}

// Allocation modes for AllocConfig.Mode.
const (
	// AllocUniform is the classic flat sample (the default; "" means the
	// same).
	AllocUniform = "uniform"
	// AllocNeyman runs stratified sampling with Neyman allocation: the
	// budget is split into epochs, and at every epoch boundary each
	// unconverged stratum draws budget proportional to its population
	// times its widest estimated class standard deviation.
	AllocNeyman = "neyman"
)

// DefaultAllocEpochs is the allocation-epoch count used when AllocConfig
// leaves Epochs unset.
const DefaultAllocEpochs = 4

// AllocConfig selects a campaign's budget-allocation strategy across
// sampling strata. The zero value is uniform sampling.
type AllocConfig struct {
	// Mode is "" or AllocUniform for the flat sample, AllocNeyman for
	// stratified Neyman allocation.
	Mode string `json:"mode,omitempty"`

	// Epochs is how many allocation epochs a stratified campaign splits
	// its budget into (default DefaultAllocEpochs). Re-allocation — and
	// the stop decision — happen only at epoch boundaries, over fully
	// settled counts, which is what keeps stratified campaigns
	// deterministic across worker counts.
	Epochs int `json:"epochs,omitempty"`
}

// Stratified reports whether the config selects stratified allocation.
func (a AllocConfig) Stratified() bool { return a.Mode == AllocNeyman }

// Validate rejects unknown allocation modes.
func (a AllocConfig) Validate() error {
	switch a.Mode {
	case "", AllocUniform, AllocNeyman:
		return nil
	}
	return fmt.Errorf("core: unknown allocation mode %q (want %s or %s)", a.Mode, AllocUniform, AllocNeyman)
}

// epochs returns the epoch count with the default applied.
func (a AllocConfig) epochs() int {
	if a.Epochs <= 0 {
		return DefaultAllocEpochs
	}
	return a.Epochs
}

// StopConfig configures adaptive statistical early-stop for a campaign.
// The zero value is fully disabled: the campaign runs exactly Flips
// injections and produces byte-identical reports to builds without the
// feature. Flips remains the hard sample budget — an adaptive campaign
// never runs more than Flips injections, it just may answer sooner.
type StopConfig struct {
	// TargetMargin is the maximum acceptable confidence-interval width
	// (hi-lo) per outcome class, as a fraction (0.02 = ±1 percentage
	// point). <= 0 disables adaptive evaluation entirely.
	TargetMargin float64 `json:"target_margin,omitempty"`

	// Confidence is the two-sided confidence level the margin must hold
	// at (default stats.DefaultConfidence). Intervals are sequential
	// (any-time-valid), so the level survives the continuous peeking an
	// early-stopping monitor does.
	Confidence float64 `json:"confidence,omitempty"`

	// MinPerClass is the minimum sample count before convergence may be
	// declared (default stats.DefaultMinPerClass) — the floor that keeps
	// rare classes (SDC, checkstop) from being declared converged at n≈0.
	MinPerClass int `json:"min_per_class,omitempty"`

	// StopOnConverge actually stops the dispatch once every class is
	// within the margin. When false (observe-only), the campaign runs all
	// Flips injections but still tracks and reports convergence — useful
	// for calibrating a margin before trusting it to cut campaigns short.
	StopOnConverge bool `json:"stop_on_converge,omitempty"`

	// Strata additionally gates convergence on the sampling strata: the
	// campaign has converged only once every stratum of its sample plan is
	// itself within the margin or exhausted. Armed automatically by
	// stratified allocation; zero for uniform campaigns, keeping their
	// wire formats unchanged.
	Strata bool `json:"strata,omitempty"`
}

// Enabled reports whether convergence tracking is active.
func (s StopConfig) Enabled() bool { return s.TargetMargin > 0 }

// Rule returns the stats stopping rule the config describes.
func (s StopConfig) Rule() stats.StopRule {
	return stats.StopRule{
		TargetMargin: s.TargetMargin,
		Confidence:   s.Confidence,
		MinPerClass:  s.MinPerClass,
		Strata:       s.Strata,
	}
}

// ShardRange is a half-open range [Lo, Hi) of injection indices into a
// campaign's deterministic sample.
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Size returns the number of injections in the shard.
func (s ShardRange) Size() int { return s.Hi - s.Lo }

// PlanShards splits a flips-injection campaign into contiguous shards of at
// most shardSize injections (the last shard may be short). shardSize <= 0
// yields a single whole-campaign shard. The returned shards partition
// [0, flips) in order, so executing each with CampaignConfig.Shard and
// merging the Reports in plan order reproduces the single-process Report
// exactly, kept Results included.
func PlanShards(flips, shardSize int) []ShardRange {
	if flips <= 0 {
		return nil
	}
	if shardSize <= 0 || shardSize > flips {
		shardSize = flips
	}
	out := make([]ShardRange, 0, (flips+shardSize-1)/shardSize)
	for lo := 0; lo < flips; lo += shardSize {
		hi := lo + shardSize
		if hi > flips {
			hi = flips
		}
		out = append(out, ShardRange{Lo: lo, Hi: hi})
	}
	return out
}

// ObsConfig selects which observability features a campaign runs with. The
// zero value disables everything.
type ObsConfig struct {
	// Metrics collects per-worker metrics (outcome counters, latency and
	// cycle histograms) and attaches the merged snapshot to the Report.
	Metrics bool

	// Trace, when non-nil, receives one structured lifecycle event per
	// injection (subject to the sink's own sampling/bounding).
	Trace *obs.TraceSink

	// Tracer, when non-nil, records causal campaign spans — sampling and
	// batch planning, per-batch engine passes, report merge, and the
	// enclosing campaign.run span — parented under Parent. This is the
	// local half of end-to-end campaign tracing: a distributed worker
	// passes the shard span's context here so the core spans chain back to
	// the server's root span across processes.
	Tracer *obs.Tracer

	// Parent is the span context campaign spans parent under (the zero
	// value makes campaign.run a root span, the standalone-`sfi` case).
	Parent obs.SpanContext

	// Progress, when non-nil, is called periodically from a dedicated
	// goroutine while the campaign runs (never concurrently with itself),
	// and once more after the last injection completes. Setting it
	// implicitly enables metrics collection.
	Progress func(Progress)

	// ProgressEvery is the callback period (default 1s).
	ProgressEvery time.Duration
}

// Progress is a point-in-time view of a running campaign.
type Progress struct {
	Done    int           // injections classified so far
	Total   int           // campaign size
	Workers int           // concurrent model copies
	Elapsed time.Duration // since sampling finished and workers started
	Rate    float64       // injections/second so far
	ETA     time.Duration // naive remaining-work estimate at the current rate
	// Outcomes is the running outcome mix.
	Outcomes map[Outcome]uint64
	// Utilization is the fraction of worker wall-time spent inside
	// injections (1.0 = all workers busy the whole time).
	Utilization float64
	// Metrics is the merged cross-worker snapshot this view was derived
	// from — live campaign state for debug endpoints (expvar, /metrics).
	Metrics *obs.Snapshot
	// Convergence is the live per-class confidence-interval evaluation,
	// present only when the campaign runs with a StopConfig (nil
	// otherwise). Its widest outstanding margin is what Line renders.
	Convergence *stats.Convergence
}

// DefaultCampaignConfig returns a whole-core random campaign configuration.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Runner:      DefaultRunnerConfig(),
		Seed:        1,
		Flips:       1000,
		KeepResults: true,
	}
}

// ByGroupPrefix selects latch groups whose name starts with prefix — the
// paper's macro-targeted injection.
func ByGroupPrefix(prefix string) latch.Filter {
	return func(g *latch.Group) bool { return strings.HasPrefix(g.Name, prefix) }
}

// Report aggregates a campaign's outcomes.
type Report struct {
	Total   int
	Counts  map[Outcome]int
	ByUnit  map[string]map[Outcome]int
	ByType  map[latch.Type]map[Outcome]int
	Results []Result // per-injection detail when KeepResults

	// ByStratum breaks outcomes down by sampling stratum (SamplePlan key,
	// "UNIT/latch-class"). Populated only by stratified campaigns and
	// stratum shards — nil for uniform campaigns, so their report
	// serializations are unchanged.
	ByStratum map[string]map[Outcome]int

	// Workers is the number of concurrent model copies the campaign ran.
	Workers int
	// Metrics is the merged cross-worker metrics snapshot, present when
	// ObsConfig enabled metrics collection (nil otherwise).
	Metrics *obs.Snapshot
	// Convergence is the final per-class confidence-interval evaluation,
	// present only for campaigns run with a StopConfig (nil otherwise, so
	// fixed-N report serializations are unchanged).
	Convergence *stats.Convergence
}

// Fraction returns the fraction of injections with outcome o.
func (r *Report) Fraction(o Outcome) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(r.Total)
}

// UnitFraction returns the fraction of a unit's injections with outcome o.
func (r *Report) UnitFraction(unit string, o Outcome) float64 {
	m := r.ByUnit[unit]
	total := 0
	for _, n := range m {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(m[o]) / float64(total)
}

// TypeFraction returns the fraction of a latch type's injections with
// outcome o.
func (r *Report) TypeFraction(t latch.Type, o Outcome) float64 {
	m := r.ByType[t]
	total := 0
	for _, n := range m {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(m[o]) / float64(total)
}

func newReport() *Report {
	return &Report{
		Counts: make(map[Outcome]int),
		ByUnit: make(map[string]map[Outcome]int),
		ByType: make(map[latch.Type]map[Outcome]int),
	}
}

func (r *Report) add(res Result, keep bool) {
	r.Total++
	r.Counts[res.Outcome]++
	if r.ByUnit[res.Unit] == nil {
		r.ByUnit[res.Unit] = make(map[Outcome]int)
	}
	r.ByUnit[res.Unit][res.Outcome]++
	if r.ByType[res.LatchType] == nil {
		r.ByType[res.LatchType] = make(map[Outcome]int)
	}
	r.ByType[res.LatchType][res.Outcome]++
	if keep {
		r.Results = append(r.Results, res)
	}
}

// newWorkerRunner builds the model for one extra campaign worker. It is a
// package variable so tests can force a worker start failure.
var newWorkerRunner = func(proto *Runner, cfg CampaignConfig) (*Runner, error) {
	if cfg.NoClone {
		return NewRunner(cfg.Runner)
	}
	return proto.Clone(), nil
}

// outcomeNames maps Outcome codes to their reporting names, indexed by the
// integer code, for obs collectors.
func outcomeNames() []string {
	names := make([]string, len(Outcomes)+1)
	for _, o := range Outcomes {
		names[int(o)] = o.String()
	}
	return names
}

// ProgressFrom derives a Progress view from a merged metrics snapshot —
// rate, ETA and outcome mix over whatever the snapshot covers. It is the
// shared derivation for local campaigns (per-worker collectors merged) and
// fleet views (a distributed coordinator's aggregated worker snapshots);
// workers is the concurrent-model-copy count for the utilization estimate
// (pass 0 when unknown — utilization is then reported as 0).
func ProgressFrom(s *obs.Snapshot, total, workers int, start time.Time) Progress {
	elapsed := time.Since(start)
	p := Progress{
		Done:     int(s.Injections),
		Total:    total,
		Workers:  workers,
		Elapsed:  elapsed,
		Outcomes: make(map[Outcome]uint64, len(Outcomes)),
		Metrics:  s,
	}
	for _, o := range Outcomes {
		if n := s.Outcomes[o.String()]; n > 0 {
			p.Outcomes[o] = n
		}
	}
	if sec := elapsed.Seconds(); sec > 0 {
		p.Rate = float64(p.Done) / sec
		if workers > 0 {
			p.Utilization = float64(s.BusyNs) / (float64(workers) * float64(elapsed.Nanoseconds()))
		}
	}
	if p.Rate > 0 && p.Done < p.Total {
		p.ETA = time.Duration(float64(p.Total-p.Done) / p.Rate * float64(time.Second))
	}
	return p
}

// progressTags are the single-letter outcome tags of the live progress
// line (checkstop is "k": "c" is taken by corrected).
var progressTags = map[Outcome]string{
	Vanished: "v", Corrected: "c", Hang: "h", Checkstop: "k", SDC: "s",
}

// Line renders the progress view as one human-readable status line —
// `done/total (pct)  rate  eta  busy  [outcome mix]` — shared by cmd/sfi's
// local progress renderer and the distributed coordinator's fleet
// progress line.
func (p Progress) Line() string {
	var mix strings.Builder
	for _, o := range Outcomes {
		if n := p.Outcomes[o]; n > 0 {
			fmt.Fprintf(&mix, " %s:%d", progressTags[o], n)
		}
	}
	eta := "-"
	if p.ETA > 0 {
		eta = p.ETA.Round(time.Second).String()
	}
	pct := 0.0
	if p.Total > 0 {
		pct = 100 * float64(p.Done) / float64(p.Total)
	}
	line := fmt.Sprintf("%d/%d (%.1f%%)  %.0f inj/s  eta %s", p.Done, p.Total, pct, p.Rate, eta)
	if p.Utilization > 0 {
		line += fmt.Sprintf("  busy %.0f%%", 100*p.Utilization)
	}
	if mix.Len() > 0 {
		line += fmt.Sprintf(" [%s]", strings.TrimSpace(mix.String()))
	}
	// Widest outstanding margin: which class still holds the campaign open,
	// and how far its interval width is from the target. Stratified
	// campaigns additionally show the widest unconverged sampling stratum —
	// the one the allocator is steering budget toward.
	if c := p.Convergence; c != nil {
		if c.Converged {
			line += fmt.Sprintf("  ci ok<=%.2f%%", 100*c.TargetMargin)
		} else {
			line += fmt.Sprintf("  ci %s %.2f%%>%.2f%%",
				c.WidestClass, 100*c.WidestWidth, 100*c.TargetMargin)
		}
		if c.WidestStratum != "" {
			line += fmt.Sprintf("  st %s %.2f%%", c.WidestStratum, 100*c.WidestStratumWidth)
		}
	}
	return line
}

// planBatches groups the sample positions (indices into bits) into the
// campaign's dispatch units: positions sharing a deterministic checkpoint
// phase are chunked, in sample order, into batches of at most size. The
// plan involves no scheduling or process-local state — it is a pure
// function of (bits, phases, size) — so disjoint shards of one campaign
// plan exactly the batches a whole-campaign run would, and a short final
// batch per phase group simply leaves the backend's extra lanes masked
// off. size <= 1 yields one-position batches (the scalar dispatch).
func planBatches(bits []int, phases, size int) [][]int {
	if size <= 1 {
		out := make([][]int, len(bits))
		for i := range bits {
			out[i] = []int{i}
		}
		return out
	}
	byPhase := make([][]int, phases)
	for i, bit := range bits {
		ck, _ := injectionSchedule(bit, phases)
		byPhase[ck] = append(byPhase[ck], i)
	}
	var out [][]int
	for _, g := range byPhase {
		for len(g) > size {
			out = append(out, g[:size:size])
			g = g[size:]
		}
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// SampleCampaignBits draws the campaign's full deterministic injection
// sample from db: the Flips logical latch-bit indices, in dispatch order.
// The sample is a pure function of (seed, flips, filter) and the latch
// database layout — it involves no map iteration, scheduling or other
// process-local state — so independent processes that build the same model
// derive bit-for-bit identical samples. That purity is what makes shard
// partitioning reproducible: shard [Lo, Hi) means injections Lo..Hi-1 of
// exactly this slice, wherever it executes.
func SampleCampaignBits(db *latch.DB, seed uint64, flips int, f latch.Filter) []int {
	rng := rand.New(rand.NewPCG(seed, 0x5f1))
	return db.SampleBits(rng, flips, f)
}

// RunCampaign executes a campaign: it samples Flips latch bits from the
// filtered population and classifies every injection, fanning the work out
// over concurrent model copies. The AVP is generated and warmed once, in
// the prototype runner; the other workers are warm clones of it (unless
// NoClone is set). A worker that fails to start aborts the campaign: the
// dispatcher stops handing out injections as soon as the first failure is
// reported, and every distinct worker error is surfaced in the returned
// (joined) error so multi-worker failures aren't masked by the first one.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// RunCampaignContext is RunCampaign with cancellation: when ctx is
// cancelled the dispatcher stops handing out injections, in-flight
// injections run to completion (each is sub-millisecond to
// low-millisecond), and the campaign returns ctx's error. A distributed
// coordinator shutting down or a worker losing its shard lease uses this
// to abandon a shard promptly instead of draining it.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*Report, error) {
	if cfg.Flips < 1 {
		return nil, fmt.Errorf("core: campaign needs at least one flip")
	}
	// The prototype runner: it provides the latch database for sampling,
	// the warmed checkpoints the clones adopt, and worker 0's model.
	first, err := NewRunner(cfg.Runner)
	if err != nil {
		return nil, err
	}
	return RunCampaignWith(ctx, first, cfg)
}

// RunCampaignWith runs a campaign on an already-built prototype runner,
// which must have been constructed from cfg.Runner. It is the shard
// execution primitive for distributed workers: building and warming the
// prototype dominates shard start-up, so a worker process builds it once
// and runs every leased shard against it (clones are still created per
// campaign worker as usual). The prototype's observability attachments are
// reset to cfg.Obs on every call.
func RunCampaignWith(ctx context.Context, first *Runner, cfg CampaignConfig) (*Report, error) {
	if cfg.Flips < 1 {
		return nil, fmt.Errorf("core: campaign needs at least one flip")
	}
	if err := cfg.Alloc.Validate(); err != nil {
		return nil, err
	}
	// Sampling is without replacement, so the filtered population bounds
	// the campaign size — easy to exceed on small gate-level designs.
	if total := first.DB().CountBits(cfg.Filter); cfg.Flips > total {
		return nil, fmt.Errorf("core: campaign of %d flips exceeds the filtered population of %d bits",
			cfg.Flips, total)
	}
	// A stratified campaign runs the epoch-allocating executor; a stratum
	// shard (a distributed worker's slice of one stratum's sequence) falls
	// through to the ordinary machinery over the stratum's bits.
	if cfg.Alloc.Stratified() && cfg.Stratum == "" {
		return runStratified(ctx, first, cfg)
	}
	// Campaign tracing: campaign.run encloses the whole local run; its
	// children are the sample/plan span, one span per bit-parallel batch
	// pass (recorded by the runners), and the merge span. All tracer and
	// span calls are nil-safe, so the untraced path takes no branches
	// beyond these calls themselves.
	runSp := cfg.Obs.Tracer.StartSpan("campaign.run", "core", cfg.Obs.Parent)
	sampleSp := cfg.Obs.Tracer.StartSpan("sample", "core", runSp.Context())
	var bits []int
	if cfg.Stratum != "" {
		// One stratum's deterministic sequence: Shard indexes it directly,
		// so any [Lo, Hi) of any stratum is reproducible independently of
		// every other stratum (the plan's prefix-stability contract).
		stratum := BuildSamplePlan(first.DB(), cfg.Seed, cfg.Filter).Stratum(cfg.Stratum)
		if stratum == nil {
			return nil, fmt.Errorf("core: unknown sampling stratum %q", cfg.Stratum)
		}
		bits = stratum.Bits
		if cfg.Shard != nil {
			s := *cfg.Shard
			if s.Lo < 0 || s.Hi > len(bits) || s.Lo >= s.Hi {
				return nil, fmt.Errorf("core: shard [%d,%d) out of range for stratum %s of %d bits",
					s.Lo, s.Hi, cfg.Stratum, len(bits))
			}
			bits = bits[s.Lo:s.Hi]
		}
	} else {
		bits = SampleCampaignBits(first.DB(), cfg.Seed, cfg.Flips, cfg.Filter)
		if cfg.Shard != nil {
			s := *cfg.Shard
			if s.Lo < 0 || s.Hi > cfg.Flips || s.Lo >= s.Hi {
				return nil, fmt.Errorf("core: shard [%d,%d) out of range for %d flips", s.Lo, s.Hi, cfg.Flips)
			}
			bits = bits[s.Lo:s.Hi]
		}
	}
	// Batch planning: a bit-parallel backend (engine.BatchBackend)
	// classifies up to BatchSize injections per model pass, so the unit of
	// dispatch is a batch of sample positions rather than one position.
	// The plan is a pure function of the bit sample (grouping by each
	// bit's deterministic checkpoint phase), so Reports stay identical
	// across worker counts — and, by the scalar-equivalence guarantee,
	// identical to the scalar path bit for bit. Scalar backends get
	// one-position batches and the original per-injection dispatch.
	batchSize := first.BatchSize()
	batched := batchSize > 1
	if !batched {
		batchSize = 1
	}
	batches := planBatches(bits, first.Backend().Phases(), batchSize)
	sampleSp.AttrInt("flips", int64(cfg.Flips)).
		AttrInt("injections", int64(len(bits))).
		AttrInt("batches", int64(len(batches))).
		End()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batches) {
		workers = len(batches)
	}

	// Observability: each worker records into its own collector (no shared
	// cache lines on the hot path); progress and the final Report merge the
	// per-worker snapshots. A Progress callback implies metrics.
	collect := cfg.Obs.Metrics || cfg.Obs.Progress != nil
	var metrics []*obs.Metrics
	if collect {
		names := outcomeNames()
		metrics = make([]*obs.Metrics, workers)
		for w := range metrics {
			metrics[w] = obs.New(names)
		}
	}
	workerObs := func(w int) *obs.Metrics {
		if metrics == nil {
			return nil
		}
		return metrics[w]
	}
	mergedSnapshot := func() *obs.Snapshot {
		s := obs.NewSnapshot()
		for _, m := range metrics {
			s.Merge(m.Snapshot())
		}
		return s
	}
	// Unconditional: also detaches any collector a previous campaign on a
	// reused prototype (RunCampaignWith) left behind.
	first.SetObs(workerObs(0), cfg.Obs.Trace)
	first.SetSpan(cfg.Obs.Tracer, runSp.Context())

	// Adaptive statistical stop: workers stream every classified outcome
	// into a shared sequential-interval estimator. The dispatch loop polls
	// it between dispatches and, on a hit, lets in-flight batches settle
	// (pending == 0) before confirming over the exact counts — a late
	// result can move a class's fraction and re-widen its interval, so
	// only settled counts may seal the decision. That makes the final
	// report's convergence evaluation agree with the stop decision by
	// construction (the dist coordinator gets the same property from
	// sealing completed shards only).
	var est *stats.Estimator
	var pending atomic.Int64
	var stopMon, monDone chan struct{}
	// seen dedups convergence events; only the monitor goroutine touches
	// it while workers run, the final emission only after the monitor has
	// stopped.
	seen := make(map[string]bool)
	if cfg.Stop.Enabled() {
		est = stats.NewEstimator(outcomeNames(), cfg.Stop.Rule())
	}

	results := make([]Result, len(bits))
	var wg sync.WaitGroup
	next := make(chan int)
	errCh := make(chan error, workers)

	worker := func(r *Runner) {
		defer wg.Done()
		for bi := range next {
			batch := batches[bi]
			if !batched {
				res := r.RunInjection(bits[batch[0]])
				results[batch[0]] = res
				if est != nil {
					est.Observe(int(res.Outcome), res.Unit, res.LatchType.String())
				}
				pending.Add(-1)
				continue
			}
			group := make([]int, len(batch))
			for j, pos := range batch {
				group[j] = bits[pos]
			}
			for j, res := range r.RunInjectionBatch(group) {
				results[batch[j]] = res
				if est != nil {
					est.Observe(int(res.Outcome), res.Unit, res.LatchType.String())
				}
			}
			pending.Add(-1)
		}
	}

	wg.Add(workers)
	start := time.Now()

	// Live progress: a single reporting goroutine snapshots the per-worker
	// collectors on a ticker, so the callback never runs concurrently with
	// itself and workers are never blocked on it.
	var stopProg, progDone chan struct{}
	if cfg.Obs.Progress != nil {
		every := cfg.Obs.ProgressEvery
		if every <= 0 {
			every = time.Second
		}
		stopProg = make(chan struct{})
		progDone = make(chan struct{})
		go func() {
			defer close(progDone)
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-stopProg:
					return
				case <-t.C:
					p := ProgressFrom(mergedSnapshot(), len(bits), workers, start)
					p.Convergence = est.Snapshot(false)
					cfg.Obs.Progress(p)
				}
			}
		}()
	}

	// The convergence monitor: poll the estimator on a short ticker (a
	// snapshot is a handful of float ops) and record class-level — and,
	// observe-only, campaign-level — convergence transitions as JSONL
	// events as they happen. When StopOnConverge is armed the
	// campaign-wide stop event is withheld here and emitted by the final
	// pass over the authoritative evaluation instead, so its n matches
	// the report exactly.
	if est != nil {
		stopMon = make(chan struct{})
		monDone = make(chan struct{})
		go func() {
			defer close(monDone)
			t := time.NewTicker(5 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stopMon:
					return
				case <-t.C:
					emitConvergenceEvents(cfg.Obs.Trace, est.Snapshot(false), seen, !cfg.Stop.StopOnConverge)
				}
			}
		}()
	}

	// Worker start order: Clone reads the prototype's live model state
	// (value planes, counters), so the prototype may not start injecting
	// until every extra worker has finished cloning from it. Clones are
	// still taken concurrently with each other — they only read the
	// prototype — and the NoClone path builds from scratch without touching
	// it, so only the cloning path gates the prototype's start.
	var cloning sync.WaitGroup
	if !cfg.NoClone {
		cloning.Add(workers - 1)
	}
	go func() {
		cloning.Wait()
		worker(first)
	}()
	for w := 1; w < workers; w++ {
		go func() {
			r, err := newWorkerRunner(first, cfg)
			if !cfg.NoClone {
				cloning.Done()
			}
			if err != nil {
				errCh <- fmt.Errorf("core: worker %d failed to start: %w", w, err)
				wg.Done()
				return
			}
			r.SetObs(workerObs(w), cfg.Obs.Trace)
			r.SetSpan(cfg.Obs.Tracer, runSp.Context())
			worker(r)
		}()
	}

	// Fail-fast dispatch: stop handing out work the moment a worker
	// reports a start failure, the context is cancelled, or the stop rule
	// is confirmed over settled counts. Convergence is the one
	// *successful* early exit: in-flight batches run to completion and
	// the report covers exactly the dispatched prefix of the sample.
	var errs []error
	dispatched := len(batches)
	stopOnConverge := est != nil && cfg.Stop.StopOnConverge
	// Re-confirming on the same counts would spin; only re-check after a
	// failed confirmation once new samples have landed.
	confirmFailedAt := int64(-1)
dispatch:
	for i := 0; i < len(batches); {
		if stopOnConverge && est.Total() != confirmFailedAt && est.Converged() {
			// Tentative hit on the live view, which lags in-flight
			// batches: wait for them to settle, then confirm over the
			// exact counts. Dispatch is paused, so pending only drains.
			for pending.Load() > 0 {
				time.Sleep(100 * time.Microsecond)
			}
			if est.Converged() {
				dispatched = i
				break dispatch
			}
			confirmFailedAt = est.Total()
			continue
		}
		select {
		case e := <-errCh:
			errs = append(errs, e)
			dispatched = i
			break dispatch
		case <-ctx.Done():
			errs = append(errs, fmt.Errorf("core: campaign cancelled: %w", context.Cause(ctx)))
			dispatched = i
			break dispatch
		case next <- i:
			pending.Add(1)
			i++
		}
	}
	close(next)
	wg.Wait()
	if stopMon != nil {
		close(stopMon)
		<-monDone
	}
	if stopProg != nil {
		close(stopProg)
		<-progDone
	}
	// Collect every worker failure (all goroutines have exited, so errCh
	// holds everything that was reported) and surface the distinct ones.
drain:
	for {
		select {
		case e := <-errCh:
			errs = append(errs, e)
		default:
			break drain
		}
	}
	if len(errs) > 0 {
		seen := make(map[string]bool, len(errs))
		distinct := errs[:0]
		for _, e := range errs {
			if !seen[e.Error()] {
				seen[e.Error()] = true
				distinct = append(distinct, e)
			}
		}
		err := errors.Join(distinct...)
		if runSp != nil {
			runSp.Attr("error", err.Error()).End()
		}
		return nil, err
	}

	mergeSp := cfg.Obs.Tracer.StartSpan("merge", "core", runSp.Context())
	rep := newReport()
	if dispatched == len(batches) {
		for _, res := range results {
			rep.add(res, cfg.KeepResults)
		}
	} else {
		// Early stop: only the dispatched batches' sample positions were
		// executed (undispatched positions hold the invalid zero Result).
		// Aggregate in sample-position order so kept Results stay in the
		// campaign's deterministic dispatch order.
		done := make([]bool, len(results))
		for bi := 0; bi < dispatched; bi++ {
			for _, pos := range batches[bi] {
				done[pos] = true
			}
		}
		for pos, res := range results {
			if done[pos] {
				rep.add(res, cfg.KeepResults)
			}
		}
	}
	if cfg.Stratum != "" {
		// The whole shard draws from one stratum; merging shard reports
		// accumulates these rows into the campaign's per-stratum breakdown.
		row := make(map[Outcome]int, len(rep.Counts))
		for o, n := range rep.Counts {
			row[o] = n
		}
		rep.ByStratum = map[string]map[Outcome]int{cfg.Stratum: row}
	}
	rep.Workers = workers
	if collect {
		rep.Metrics = mergedSnapshot()
	}
	if cfg.Stop.Enabled() {
		// The authoritative evaluation: exact aggregate counts (the
		// monitor's live view lags in-flight batches), with per-unit and
		// per-type strata.
		rep.Convergence = rep.ComputeConvergence(cfg.Stop.Rule())
		// Final convergence events over that evaluation: a fast campaign
		// can finish before the monitor's first tick, and the stop event
		// must carry the settled n. The monitor has stopped, so seen is
		// ours again; it dedups whatever the ticks already reported.
		emitConvergenceEvents(cfg.Obs.Trace, rep.Convergence, seen, true)
	}
	mergeSp.AttrInt("injections", int64(rep.Total)).End()
	if cfg.Obs.Progress != nil {
		// One final, complete update (the ticker goroutine has stopped, so
		// this never races with a periodic call).
		p := ProgressFrom(rep.Metrics, len(bits), workers, start)
		p.Convergence = rep.Convergence
		cfg.Obs.Progress(p)
	}
	if runSp != nil {
		runSp.AttrInt("injections", int64(rep.Total)).AttrInt("workers", int64(workers)).End()
	}
	return rep, nil
}

// emitConvergenceEvents records each class's first margin crossing — and,
// once, the campaign-wide stop decision — as JSONL convergence events.
// seen carries the already-reported set between calls ("" = the campaign
// decision itself); allowStop gates the campaign-wide event, which a
// StopOnConverge campaign reserves for the final settled evaluation.
func emitConvergenceEvents(trace *obs.TraceSink, c *stats.Convergence, seen map[string]bool, allowStop bool) {
	if trace == nil || c == nil {
		return
	}
	for _, ci := range c.Classes {
		if ci.Converged && !seen[ci.Class] {
			seen[ci.Class] = true
			trace.RecordJSON(obs.ConvergenceEvent{
				Kind: "class_converged", Class: ci.Class, K: ci.K, N: ci.N,
				Lo: ci.Lo, Hi: ci.Hi, Width: ci.Width,
				TargetMargin: c.TargetMargin, Confidence: c.Confidence,
			})
		}
	}
	if allowStop && c.Converged && !seen[""] {
		seen[""] = true
		trace.RecordJSON(obs.ConvergenceEvent{
			Kind: "stop", N: c.Total, Width: c.WidestWidth,
			TargetMargin: c.TargetMargin, Confidence: c.Confidence,
		})
	}
}

// String renders the report in the paper's Table 2 style.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total flips: %d\n", r.Total)
	for _, o := range Outcomes {
		fmt.Fprintf(&sb, "  %-10s %6d  (%6.2f%%)\n", o, r.Counts[o], 100*r.Fraction(o))
	}
	return sb.String()
}
