package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync"

	"sfi/internal/latch"
)

// CampaignConfig describes a statistical fault-injection campaign.
type CampaignConfig struct {
	Runner RunnerConfig

	// Seed drives latch sampling (and nothing else; the model and AVP are
	// deterministic given their own configs).
	Seed uint64

	// Flips is the number of latch bits to inject, sampled without
	// replacement from the filtered population.
	Flips int

	// Filter restricts the sampled population (nil = the whole design) —
	// the paper's targeted injection into units, latch types or macros.
	Filter latch.Filter

	// Workers is the number of concurrent model copies ("multiple
	// concurrent copies of the simulation environment can be run"); 0
	// means GOMAXPROCS.
	Workers int

	// KeepResults retains every per-injection Result in the report (set
	// false for very large campaigns to save memory; aggregates are
	// always kept).
	KeepResults bool

	// NoClone makes every worker build its own runner from scratch
	// (re-generating the AVP and re-running the warm-up) instead of
	// cloning the warmed prototype. Kept as the slow reference path for
	// benchmarking campaign start-up cost.
	NoClone bool
}

// DefaultCampaignConfig returns a whole-core random campaign configuration.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Runner:      DefaultRunnerConfig(),
		Seed:        1,
		Flips:       1000,
		KeepResults: true,
	}
}

// ByGroupPrefix selects latch groups whose name starts with prefix — the
// paper's macro-targeted injection.
func ByGroupPrefix(prefix string) latch.Filter {
	return func(g *latch.Group) bool { return strings.HasPrefix(g.Name, prefix) }
}

// Report aggregates a campaign's outcomes.
type Report struct {
	Total   int
	Counts  map[Outcome]int
	ByUnit  map[string]map[Outcome]int
	ByType  map[latch.Type]map[Outcome]int
	Results []Result // per-injection detail when KeepResults
}

// Fraction returns the fraction of injections with outcome o.
func (r *Report) Fraction(o Outcome) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(r.Total)
}

// UnitFraction returns the fraction of a unit's injections with outcome o.
func (r *Report) UnitFraction(unit string, o Outcome) float64 {
	m := r.ByUnit[unit]
	total := 0
	for _, n := range m {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(m[o]) / float64(total)
}

// TypeFraction returns the fraction of a latch type's injections with
// outcome o.
func (r *Report) TypeFraction(t latch.Type, o Outcome) float64 {
	m := r.ByType[t]
	total := 0
	for _, n := range m {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(m[o]) / float64(total)
}

func newReport() *Report {
	return &Report{
		Counts: make(map[Outcome]int),
		ByUnit: make(map[string]map[Outcome]int),
		ByType: make(map[latch.Type]map[Outcome]int),
	}
}

func (r *Report) add(res Result, keep bool) {
	r.Total++
	r.Counts[res.Outcome]++
	if r.ByUnit[res.Unit] == nil {
		r.ByUnit[res.Unit] = make(map[Outcome]int)
	}
	r.ByUnit[res.Unit][res.Outcome]++
	if r.ByType[res.LatchType] == nil {
		r.ByType[res.LatchType] = make(map[Outcome]int)
	}
	r.ByType[res.LatchType][res.Outcome]++
	if keep {
		r.Results = append(r.Results, res)
	}
}

// newWorkerRunner builds the model for one extra campaign worker. It is a
// package variable so tests can force a worker start failure.
var newWorkerRunner = func(proto *Runner, cfg CampaignConfig) (*Runner, error) {
	if cfg.NoClone {
		return NewRunner(cfg.Runner)
	}
	return proto.Clone(), nil
}

// RunCampaign executes a campaign: it samples Flips latch bits from the
// filtered population and classifies every injection, fanning the work out
// over concurrent model copies. The AVP is generated and warmed once, in
// the prototype runner; the other workers are warm clones of it (unless
// NoClone is set). A worker that fails to start aborts the campaign: the
// dispatcher stops handing out injections as soon as the failure is
// reported and the error is returned.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	if cfg.Flips < 1 {
		return nil, fmt.Errorf("core: campaign needs at least one flip")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Flips {
		workers = cfg.Flips
	}

	// The prototype runner: it provides the latch database for sampling,
	// the warmed checkpoints the clones adopt, and worker 0's model.
	first, err := NewRunner(cfg.Runner)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5f1))
	bits := first.Core().DB().SampleBits(rng, cfg.Flips, cfg.Filter)

	results := make([]Result, len(bits))
	var wg sync.WaitGroup
	next := make(chan int)
	errCh := make(chan error, workers)

	worker := func(r *Runner) {
		defer wg.Done()
		for i := range next {
			results[i] = r.RunInjection(bits[i])
		}
	}

	wg.Add(workers)
	go worker(first)
	for w := 1; w < workers; w++ {
		go func() {
			r, err := newWorkerRunner(first, cfg)
			if err != nil {
				errCh <- fmt.Errorf("core: worker %d failed to start: %w", w, err)
				wg.Done()
				return
			}
			worker(r)
		}()
	}

	// Fail-fast dispatch: stop handing out work the moment a worker
	// reports a start failure instead of draining the whole campaign.
	var startErr error
dispatch:
	for i := range bits {
		select {
		case startErr = <-errCh:
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	if startErr == nil {
		select {
		case startErr = <-errCh:
		default:
		}
	}
	if startErr != nil {
		return nil, startErr
	}

	rep := newReport()
	for _, res := range results {
		rep.add(res, cfg.KeepResults)
	}
	return rep, nil
}

// String renders the report in the paper's Table 2 style.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total flips: %d\n", r.Total)
	for _, o := range Outcomes {
		fmt.Fprintf(&sb, "  %-10s %6d  (%6.2f%%)\n", o, r.Counts[o], 100*r.Fraction(o))
	}
	return sb.String()
}
