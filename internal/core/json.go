package core

import (
	"encoding/json"
	"sort"

	"sfi/internal/stats"
)

// JSON serialization of campaign reports, for downstream tooling (plotting
// the figures, regression-tracking resilience across design revisions).

// reportJSON is the stable wire format of a Report.
type reportJSON struct {
	Total     int                           `json:"total"`
	Counts    map[string]int                `json:"counts"`
	Fractions map[string]float64            `json:"fractions"`
	ByUnit    map[string]map[string]int     `json:"by_unit"`
	ByType    map[string]map[string]int     `json:"by_type"`
	// ByStratum is present only for stratified campaigns (sampling-stratum
	// rows keyed "UNIT/latch-class"), so uniform report JSON stays
	// byte-identical.
	ByStratum map[string]map[string]int     `json:"by_stratum,omitempty"`
	Results   []resultJSON                  `json:"results,omitempty"`
	Intervals map[string]map[string]float64 `json:"wilson95,omitempty"`
	// Convergence is present only for adaptive campaigns (StopConfig set),
	// so fixed-N report JSON stays byte-identical.
	Convergence *stats.Convergence `json:"convergence,omitempty"`
}

type resultJSON struct {
	Bit           int    `json:"bit"`
	Group         string `json:"group"`
	Unit          string `json:"unit"`
	LatchType     string `json:"latch_type"`
	Entry         int    `json:"entry"`
	BitInEntry    int    `json:"bit_in_entry"`
	Outcome       string `json:"outcome"`
	Detected      bool   `json:"detected"`
	FirstChecker  string `json:"first_checker,omitempty"`
	DetectLatency uint64 `json:"detect_latency,omitempty"`
	Recoveries    uint64 `json:"recoveries"`
	Cycles        uint64 `json:"cycles"`
}

// MarshalJSON renders the report in a stable, self-describing format.
// Per-injection results are included only for non-vanished injections (the
// interesting traces); aggregate counts always cover everything.
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Total:     r.Total,
		Counts:    make(map[string]int),
		Fractions: make(map[string]float64),
		ByUnit:    make(map[string]map[string]int),
		ByType:    make(map[string]map[string]int),
		Intervals: make(map[string]map[string]float64),
	}
	out.Convergence = r.Convergence
	cis := r.ConfidenceIntervals(1.96)
	for _, o := range Outcomes {
		out.Counts[o.String()] = r.Counts[o]
		out.Fractions[o.String()] = r.Fraction(o)
		out.Intervals[o.String()] = map[string]float64{
			"lo": cis[o].Lo, "hi": cis[o].Hi,
		}
	}
	for unit, m := range r.ByUnit {
		um := make(map[string]int)
		for o, n := range m {
			um[o.String()] = n
		}
		out.ByUnit[unit] = um
	}
	for ty, m := range r.ByType {
		tm := make(map[string]int)
		for o, n := range m {
			tm[o.String()] = n
		}
		out.ByType[ty.String()] = tm
	}
	if len(r.ByStratum) > 0 {
		out.ByStratum = make(map[string]map[string]int, len(r.ByStratum))
		for key, m := range r.ByStratum {
			sm := make(map[string]int)
			for o, n := range m {
				sm[o.String()] = n
			}
			out.ByStratum[key] = sm
		}
	}
	var interesting []Result
	for _, res := range r.Results {
		if res.Outcome != Vanished {
			interesting = append(interesting, res)
		}
	}
	sort.Slice(interesting, func(i, j int) bool { return interesting[i].Bit < interesting[j].Bit })
	for _, res := range interesting {
		out.Results = append(out.Results, resultJSON{
			Bit:           res.Bit,
			Group:         res.Group,
			Unit:          res.Unit,
			LatchType:     res.LatchType.String(),
			Entry:         res.Entry,
			BitInEntry:    res.BitInEntry,
			Outcome:       res.Outcome.String(),
			Detected:      res.Detected,
			FirstChecker:  res.FirstChecker,
			DetectLatency: res.DetectLatency,
			Recoveries:    res.Recoveries,
			Cycles:        res.Cycles,
		})
	}
	return json.Marshal(out)
}
