package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sfi/internal/obs"
)

// TestCampaignTraceJSONL runs a multi-worker campaign with a trace sink and
// checks the stream is well-formed JSONL with exactly one event per
// injection, and that the per-outcome event counts equal the Report
// aggregates.
func TestCampaignTraceJSONL(t *testing.T) {
	var buf syncBuffer
	sink := obs.NewTraceSink(&buf, obs.TraceOptions{})
	cfg := fastCampaignConfig()
	cfg.Flips = 80
	cfg.Workers = 3
	cfg.Obs.Trace = sink
	cfg.Obs.Metrics = true
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if sink.Recorded() != int64(rep.Total) {
		t.Fatalf("recorded %d events, %d injections", sink.Recorded(), rep.Total)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != rep.Total {
		t.Fatalf("%d JSONL lines, want %d", len(lines), rep.Total)
	}
	byOutcome := make(map[string]int)
	seenBits := make(map[int]int)
	for i, ln := range lines {
		var ev obs.TraceEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		if ev.Unit == "" || ev.Group == "" || ev.Outcome == "" || ev.LatchType == "" {
			t.Fatalf("line %d missing identity fields: %+v", i, ev)
		}
		if ev.TS == 0 {
			t.Fatalf("line %d missing timestamp", i)
		}
		byOutcome[ev.Outcome]++
		seenBits[ev.Bit]++
	}
	for _, o := range Outcomes {
		if byOutcome[o.String()] != rep.Counts[o] {
			t.Errorf("trace %s events = %d, report = %d",
				o, byOutcome[o.String()], rep.Counts[o])
		}
	}
	// Sampling without replacement: every event is a distinct bit.
	for bit, n := range seenBits {
		if n != 1 {
			t.Errorf("bit %d traced %d times", bit, n)
		}
	}
}

// TestCampaignMetricsMatchReport checks that the merged metrics snapshot
// agrees exactly with the Report aggregates, per outcome, unit and type.
func TestCampaignMetricsMatchReport(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 100
	cfg.Workers = 4
	cfg.Obs.Metrics = true
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.Metrics
	if snap == nil {
		t.Fatal("no metrics snapshot on report")
	}
	if snap.Injections != uint64(rep.Total) {
		t.Errorf("metrics injections %d, report total %d", snap.Injections, rep.Total)
	}
	for _, o := range Outcomes {
		if int(snap.Outcomes[o.String()]) != rep.Counts[o] {
			t.Errorf("outcome %s: metrics %d, report %d",
				o, snap.Outcomes[o.String()], rep.Counts[o])
		}
	}
	for unit, m := range rep.ByUnit {
		for o, n := range m {
			if int(snap.ByUnit[unit][o.String()]) != n {
				t.Errorf("unit %s outcome %s: metrics %d, report %d",
					unit, o, snap.ByUnit[unit][o.String()], n)
			}
		}
	}
	for ty, m := range rep.ByType {
		for o, n := range m {
			if int(snap.ByType[ty.String()][o.String()]) != n {
				t.Errorf("type %s outcome %s: metrics %d, report %d",
					ty, o, snap.ByType[ty.String()][o.String()], n)
			}
		}
	}
	// Every injection restores a checkpoint and runs a propagation window.
	if snap.Restores < uint64(rep.Total) {
		t.Errorf("restores %d < injections %d", snap.Restores, rep.Total)
	}
	if snap.PropagateCycles.Count != uint64(rep.Total) {
		t.Errorf("propagation windows %d, injections %d",
			snap.PropagateCycles.Count, rep.Total)
	}
	if snap.InjectionNs.Count != uint64(rep.Total) || snap.BusyNs == 0 {
		t.Errorf("injection latency count %d, busyNs %d",
			snap.InjectionNs.Count, snap.BusyNs)
	}
	// Detection latencies are recorded for exactly the detected results.
	detected := 0
	for _, res := range rep.Results {
		if res.Detected {
			detected++
		}
	}
	if int(snap.DetectCycles.Count) != detected {
		t.Errorf("detect histogram count %d, detected results %d",
			snap.DetectCycles.Count, detected)
	}
}

// TestCampaignProgressCallback runs a cloned multi-worker campaign with a
// fast progress callback — the -race exercise for the progress path — and
// checks the final update is complete and consistent.
func TestCampaignProgressCallback(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 60
	cfg.Workers = 4
	cfg.Obs.ProgressEvery = time.Millisecond
	var mu sync.Mutex
	var calls int
	var last Progress
	cfg.Obs.Progress = func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if p.Done < last.Done {
			t.Errorf("progress went backwards: %d -> %d", last.Done, p.Done)
		}
		if p.Done > p.Total {
			t.Errorf("done %d > total %d", p.Done, p.Total)
		}
		last = p
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
	if last.Done != rep.Total || last.Total != rep.Total {
		t.Errorf("final progress %d/%d, want %d/%d", last.Done, last.Total, rep.Total, rep.Total)
	}
	if last.Workers != 4 || rep.Workers != 4 {
		t.Errorf("workers: progress %d, report %d, want 4", last.Workers, rep.Workers)
	}
	var mix uint64
	for _, n := range last.Outcomes {
		mix += n
	}
	if int(mix) != rep.Total {
		t.Errorf("final outcome mix sums to %d, want %d", mix, rep.Total)
	}
	// Progress implies metrics: the report carries the snapshot.
	if rep.Metrics == nil {
		t.Error("progress-enabled campaign returned no metrics snapshot")
	}
}

// TestCampaignObservabilityOffByDefault: a default campaign must not
// allocate collectors or attach a snapshot.
func TestCampaignObservabilityOffByDefault(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 10
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Error("metrics snapshot present with observability off")
	}
}

// TestCampaignTraceSampling: a sampling sink records every Nth injection.
func TestCampaignTraceSampling(t *testing.T) {
	var buf syncBuffer
	sink := obs.NewTraceSink(&buf, obs.TraceOptions{Sample: 4})
	cfg := fastCampaignConfig()
	cfg.Flips = 40
	cfg.Obs.Trace = sink
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Recorded() != 10 || sink.Dropped() != int64(rep.Total-10) {
		t.Errorf("sample=4 over %d: recorded %d, dropped %d",
			rep.Total, sink.Recorded(), sink.Dropped())
	}
}

// TestCampaignAllWorkerErrorsSurfaced forces every worker constructor to
// fail with a distinct error and checks they all appear in the returned
// error instead of only the first.
func TestCampaignAllWorkerErrorsSurfaced(t *testing.T) {
	sentinelA := errors.New("constructor failure alpha")
	sentinelB := errors.New("constructor failure beta")
	old := newWorkerRunner
	var n int
	var mu sync.Mutex
	newWorkerRunner = func(proto *Runner, cfg CampaignConfig) (*Runner, error) {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n%2 == 0 {
			return nil, sentinelA
		}
		return nil, sentinelB
	}
	defer func() { newWorkerRunner = old }()

	cfg := fastCampaignConfig()
	cfg.Workers = 4
	cfg.Flips = 4000
	_, err := RunCampaign(cfg)
	if err == nil {
		t.Fatal("no error from all-workers-failed campaign")
	}
	if !errors.Is(err, sentinelA) || !errors.Is(err, sentinelB) {
		t.Fatalf("joined error missing a distinct failure: %v", err)
	}
	// Duplicate messages are deduplicated: each worker's message is unique
	// (it carries the worker index), so here every reported one appears once.
	msg := err.Error()
	for _, w := range []string{"worker 1", "worker 2", "worker 3"} {
		if strings.Count(msg, w) > 1 {
			t.Errorf("worker error %q duplicated in %q", w, msg)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (the trace sink serializes
// writes, but String() may race with late writers in misuse scenarios; the
// guard keeps the tests -race clean regardless).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
