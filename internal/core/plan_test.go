package core

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestBuildSamplePlanPure: a sample plan must be a pure function of
// (database layout, seed, filter) — identical across independently built
// models, which is what lets a coordinator plan stratum shards from a
// census while workers execute them against their own warmed machines.
func TestBuildSamplePlanPure(t *testing.T) {
	r1, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		a := BuildSamplePlan(r1.DB(), seed, nil)
		b := BuildSamplePlan(r2.DB(), seed, nil)
		if !reflect.DeepEqual(a.Keys(), b.Keys()) {
			t.Fatalf("seed %d: stratum key order differs across identical models", seed)
		}
		for _, key := range a.Keys() {
			if !reflect.DeepEqual(a.Stratum(key).Bits, b.Stratum(key).Bits) {
				t.Fatalf("seed %d: stratum %s sequence differs across identical models", seed, key)
			}
		}
	}
}

// TestSamplePlanPartitionsPopulation: the strata partition the filtered
// population exactly — every bit in exactly one stratum sequence, and each
// stratum key matching its members' unit and latch class.
func TestSamplePlanPartitionsPopulation(t *testing.T) {
	r, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := r.DB()
	plan := BuildSamplePlan(db, 1, nil)
	if len(plan.Strata) < 2 {
		t.Fatalf("whole-core plan has %d strata, want several", len(plan.Strata))
	}
	seen := make(map[int]string)
	for _, s := range plan.Strata {
		if s.Key != StratumKey(s.Unit, s.LatchType) {
			t.Errorf("stratum key %q does not match unit %q type %s", s.Key, s.Unit, s.LatchType)
		}
		if s.Population() != len(s.Bits) {
			t.Errorf("stratum %s population %d != len(bits) %d", s.Key, s.Population(), len(s.Bits))
		}
		for _, b := range s.Bits {
			if prev, dup := seen[b]; dup {
				t.Fatalf("bit %d in both %s and %s", b, prev, s.Key)
			}
			seen[b] = s.Key
			g, _, _ := db.Locate(b)
			if g.Unit != s.Unit || g.Kind != s.LatchType {
				t.Fatalf("bit %d (unit %s, type %s) landed in stratum %s", b, g.Unit, g.Kind, s.Key)
			}
		}
	}
	if plan.TotalBits() != db.TotalBits() {
		t.Errorf("plan covers %d bits, population is %d", plan.TotalBits(), db.TotalBits())
	}
}

// TestPlanStratumShardsOffsets: an epoch draw [lo, lo+n) of a stratum's
// sequence shards into contiguous ranges starting at lo.
func TestPlanStratumShardsOffsets(t *testing.T) {
	shards := PlanStratumShards(40, 25, 10)
	want := []ShardRange{{40, 50}, {50, 60}, {60, 65}}
	if !reflect.DeepEqual(shards, want) {
		t.Errorf("PlanStratumShards(40, 25, 10) = %v, want %v", shards, want)
	}
	if got := PlanStratumShards(7, 0, 10); got != nil {
		t.Errorf("empty draw should plan no shards, got %v", got)
	}
}

// TestStratumShardMergeEqualsPrefix: executing a stratum's sequence prefix
// as two disjoint stratum shards and merging must equal executing it as one
// shard — the contract that lets the distributed coordinator split an
// epoch's draw freely.
func TestStratumShardMergeEqualsPrefix(t *testing.T) {
	proto, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan := BuildSamplePlan(proto.DB(), 3, nil)
	var key string
	for _, s := range plan.Strata {
		if s.Population() >= 20 {
			key = s.Key
			break
		}
	}
	if key == "" {
		t.Fatal("no stratum with at least 20 bits")
	}

	cfg := fastCampaignConfig()
	cfg.Seed = 3
	cfg.Flips = 20
	cfg.Stratum = key
	whole := cfg
	whole.Shard = &ShardRange{Lo: 0, Hi: 20}
	wrep, err := RunCampaignWith(context.Background(), proto, whole)
	if err != nil {
		t.Fatal(err)
	}

	merged := &Report{}
	for _, sr := range []ShardRange{{0, 10}, {10, 20}} {
		scfg := cfg
		scfg.Shard = &sr
		rep, err := RunCampaignWith(context.Background(), proto, scfg)
		if err != nil {
			t.Fatal(err)
		}
		merged.Merge(rep)
	}
	if !reflect.DeepEqual(merged.Counts, wrep.Counts) {
		t.Errorf("merged stratum shards differ from whole prefix:\nmerged: %v\nwhole:  %v", merged.Counts, wrep.Counts)
	}
	if !reflect.DeepEqual(merged.ByStratum, wrep.ByStratum) {
		t.Errorf("merged ByStratum rows differ:\nmerged: %v\nwhole:  %v", merged.ByStratum, wrep.ByStratum)
	}
	if !reflect.DeepEqual(merged.Results, wrep.Results) {
		t.Errorf("merged kept results differ from whole-prefix results")
	}
}

// TestStratifiedDeterministicAcrossWorkerCounts: allocation epochs
// re-allocate only over settled counts, so worker count must stay a pure
// throughput knob for stratified campaigns too.
func TestStratifiedDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 80
	cfg.Alloc = AllocConfig{Mode: AllocNeyman, Epochs: 3}
	cfg.Stop = StopConfig{TargetMargin: 0.2, MinPerClass: 10}

	cfg.Workers = 1
	one, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	four, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Counts, four.Counts) {
		t.Errorf("stratified totals differ across worker counts:\n1: %v\n4: %v", one.Counts, four.Counts)
	}
	if !reflect.DeepEqual(one.ByStratum, four.ByStratum) {
		t.Errorf("stratified per-stratum counts differ across worker counts:\n1: %v\n4: %v", one.ByStratum, four.ByStratum)
	}
	if one.Convergence == nil || four.Convergence == nil ||
		one.Convergence.Converged != four.Convergence.Converged ||
		one.Convergence.Total != four.Convergence.Total {
		t.Errorf("stratified stop decision differs across worker counts")
	}
}

// TestStratifiedEpochBudget: whatever the epoch count, a fixed-N stratified
// campaign spends its whole budget (population permitting), draws no
// stratum past its census, and is deterministic for a given epoch count.
func TestStratifiedEpochBudget(t *testing.T) {
	for _, epochs := range []int{1, 2, 4} {
		cfg := fastCampaignConfig()
		cfg.Flips = 60
		cfg.Workers = 2
		cfg.Alloc = AllocConfig{Mode: AllocNeyman, Epochs: epochs}
		first, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("epochs=%d: %v", epochs, err)
		}
		if first.Total != cfg.Flips {
			t.Errorf("epochs=%d: spent %d of %d flips", epochs, first.Total, cfg.Flips)
		}
		pops := BuildSamplePlanFromConfig(t, cfg)
		for key, row := range first.ByStratum {
			n := 0
			for _, c := range row {
				n += c
			}
			if n > pops[key] {
				t.Errorf("epochs=%d: stratum %s drew %d of population %d", epochs, key, n, pops[key])
			}
		}
		again, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("epochs=%d rerun: %v", epochs, err)
		}
		if !reflect.DeepEqual(first.Counts, again.Counts) || !reflect.DeepEqual(first.ByStratum, again.ByStratum) {
			t.Errorf("epochs=%d: stratified campaign not deterministic across reruns", epochs)
		}
	}
}

// BuildSamplePlanFromConfig returns the per-stratum census of cfg's plan.
func BuildSamplePlanFromConfig(t *testing.T, cfg CampaignConfig) map[string]int {
	t.Helper()
	r, err := NewRunner(cfg.Runner)
	if err != nil {
		t.Fatal(err)
	}
	return BuildSamplePlan(r.DB(), cfg.Seed, cfg.Filter).Populations()
}

// TestUniformReportByteIdentical: the stratified refactor must leave
// fixed-N uniform campaigns byte-for-byte unchanged — same wire JSON with
// an explicit uniform AllocConfig as with the zero value, no stratum or
// convergence fields, across worker counts, on the scalar and the
// bit-parallel backend alike.
func TestUniformReportByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  CampaignConfig
	}{
		{"p6lite", func() CampaignConfig {
			c := fastCampaignConfig()
			c.Flips = 60
			return c
		}()},
		{"awan", awanCampaignConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Workers = 1
			base, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			dump := reportDump(t, base)
			for _, bad := range []string{"by_stratum", "convergence"} {
				if strings.Contains(dump, bad) {
					t.Errorf("uniform report JSON contains %q", bad)
				}
			}

			cfg.Workers = 4
			cfg.Alloc = AllocConfig{Mode: AllocUniform}
			explicit, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ed := reportDump(t, explicit)
			// Workers differs by construction; compare everything else.
			if a, b := strings.TrimPrefix(dump, "workers=1 "), strings.TrimPrefix(ed, "workers=4 "); a != b {
				t.Errorf("explicit-uniform 4-worker report differs from zero-config 1-worker report:\n%s\n%s", a, b)
			}
		})
	}
}

// TestStratifiedConfigValidation: the stratified executor's input contract.
func TestStratifiedConfigValidation(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 10
	cfg.Alloc = AllocConfig{Mode: "fibonacci"}
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("unknown allocation mode accepted")
	}

	cfg.Alloc = AllocConfig{Mode: AllocNeyman}
	cfg.Shard = &ShardRange{Lo: 0, Hi: 5}
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("stratified campaign accepted a pooled shard range")
	}

	cfg.Alloc = AllocConfig{}
	cfg.Shard = nil
	cfg.Stratum = "NOPE/FUNC"
	if _, err := RunCampaign(cfg); err == nil {
		t.Error("unknown stratum accepted")
	}
}
