package core

import (
	"testing"
)

// benchRunnerConfig keeps model warm-up short while leaving the state sizes
// (MemBytes, latch inventory) at their defaults, so restore costs are
// representative.
func benchRunnerConfig() RunnerConfig {
	cfg := DefaultRunnerConfig()
	cfg.AVP.Testcases = 6
	cfg.AVP.BodyOps = 14
	return cfg
}

// BenchmarkRunnerClone compares warm-runner cloning against building a
// runner from scratch (AVP generation + two warm-up passes + the
// checkpoint pass) — the per-worker campaign start-up cost.
// (BenchmarkRestoreCheckpoint, which reaches into the checkpoint
// internals, lives with them in internal/engine/p6lite.)
func BenchmarkRunnerClone(b *testing.B) {
	cfg := benchRunnerConfig()
	proto, err := NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cl := proto.Clone()
			if cl.DB().TotalBits() == 0 {
				b.Fatal("empty clone")
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := NewRunner(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if r.DB().TotalBits() == 0 {
				b.Fatal("empty runner")
			}
		}
	})
}
