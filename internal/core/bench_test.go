package core

import (
	"testing"
)

// benchRunnerConfig keeps model warm-up short while leaving the state sizes
// (MemBytes, latch inventory) at their defaults, so restore costs are
// representative.
func benchRunnerConfig() RunnerConfig {
	cfg := DefaultRunnerConfig()
	cfg.AVP.Testcases = 6
	cfg.AVP.BodyOps = 14
	return cfg
}

// BenchmarkRestoreCheckpoint compares the dirty-tracking restore fast path
// against the full-copy slow path at the default memory size. Each
// iteration perturbs the model the way an injection does (flip + a short
// run) before restoring, so the dirty path pays a realistic dirty-set cost.
func BenchmarkRestoreCheckpoint(b *testing.B) {
	r, err := NewRunner(benchRunnerConfig())
	if err != nil {
		b.Fatal(err)
	}
	c := r.eng.Core()
	ck := r.ckpts[0].ck
	perturb := func() {
		c.DB().Flip(0)
		for i := 0; i < 200; i++ {
			r.eng.Step()
		}
	}
	b.Run("dirty", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			perturb()
			b.StartTimer()
			c.RestoreCheckpoint(ck)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			perturb()
			b.StartTimer()
			c.RestoreCheckpointFull(ck)
		}
	})
}

// BenchmarkRunnerClone compares warm-runner cloning against building a
// runner from scratch (AVP generation + two warm-up passes + the
// checkpoint pass) — the per-worker campaign start-up cost.
func BenchmarkRunnerClone(b *testing.B) {
	cfg := benchRunnerConfig()
	proto, err := NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("clone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cl := proto.Clone()
			if cl.Core().DB().TotalBits() == 0 {
				b.Fatal("empty clone")
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := NewRunner(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if r.Core().DB().TotalBits() == 0 {
				b.Fatal("empty runner")
			}
		}
	})
}
