package core

import (
	"hash/fnv"
	"math/rand/v2"

	"sfi/internal/latch"
)

// This file is the stratified refactor of the campaign sampling contract.
// The unit of planning is no longer one flat bit list but a SamplePlan: an
// ordered set of per-stratum sub-samples (unit × latch-class), each its own
// deterministic sequence, so any prefix of any stratum is reproducible
// independently of the others. A uniform campaign is the degenerate plan —
// one pooled stratum drawn by SampleCampaignBits, byte-identical to the
// pre-plan sampler — while a stratified campaign lets the Neyman allocator
// extend each stratum's prefix independently across allocation epochs.

// planStreamConst is the PCG stream constant for per-stratum sequences,
// distinct from SampleCampaignBits's 0x5f1 so a stratum sequence never
// collides with the pooled sample of the same seed.
const planStreamConst = 0x57a7a

// SamplePlan partitions a filtered latch population into sampling strata,
// each carrying its full population in a seeded permutation. It is a pure
// function of (database layout, seed, filter) — no map iteration or other
// process-local state — so independent processes (a coordinator planning
// from a census, workers executing against warmed machines) derive
// bit-for-bit identical plans.
type SamplePlan struct {
	Seed   uint64
	Strata []*PlanStratum
	byKey  map[string]*PlanStratum
}

// PlanStratum is one stratum of a sample plan: every latch bit of one
// unit × latch-class cross, in a deterministic Fisher–Yates permutation
// seeded from (plan seed, stratum key). A prefix of Bits is a uniform
// without-replacement sample of the stratum, and extending the prefix
// never re-orders what was already drawn — the property that lets an
// allocator grow per-stratum samples across epochs while every shard
// [Lo, Hi) of the sequence stays reproducible anywhere.
type PlanStratum struct {
	Key       string
	Unit      string
	LatchType latch.Type
	Bits      []int
}

// Population returns the stratum's census size.
func (s *PlanStratum) Population() int { return len(s.Bits) }

// StratumKey names the sampling stratum of a latch: "UNIT/latch-class".
// It is wire and journal surface (shard leases, allocation records,
// /v1/status), and matches the keys Report.ByStratum is aggregated under.
func StratumKey(unit string, t latch.Type) string {
	return unit + "/" + t.String()
}

// stratumSeed derives a stratum's sequence seed: the campaign seed mixed
// with an FNV-1a hash of the stratum key through one splitmix64 round, so
// sibling strata get statistically independent permutations and a
// stratum's sequence is stable under changes to any other stratum.
func stratumSeed(seed uint64, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return splitmix64(seed ^ h.Sum64())
}

// BuildSamplePlan builds the stratified sample plan of a filtered latch
// population: one stratum per unit × latch-class cross, in first-appearance
// order over the database's (registration-ordered) groups, each stratum
// holding its full population in its seeded permutation.
func BuildSamplePlan(db *latch.DB, seed uint64, f latch.Filter) *SamplePlan {
	p := &SamplePlan{Seed: seed, byKey: make(map[string]*PlanStratum)}
	for _, g := range db.Groups() {
		if f != nil && !f(g) {
			continue
		}
		if g.Bits() == 0 {
			continue
		}
		key := StratumKey(g.Unit, g.Kind)
		s := p.byKey[key]
		if s == nil {
			s = &PlanStratum{Key: key, Unit: g.Unit, LatchType: g.Kind}
			p.byKey[key] = s
			p.Strata = append(p.Strata, s)
		}
		for b, n := g.Offset(), g.Bits(); b < g.Offset()+n; b++ {
			s.Bits = append(s.Bits, b)
		}
	}
	for _, s := range p.Strata {
		rng := rand.New(rand.NewPCG(stratumSeed(seed, s.Key), planStreamConst))
		rng.Shuffle(len(s.Bits), func(i, j int) { s.Bits[i], s.Bits[j] = s.Bits[j], s.Bits[i] })
	}
	return p
}

// Stratum returns the stratum with the given key, or nil.
func (p *SamplePlan) Stratum(key string) *PlanStratum { return p.byKey[key] }

// Keys returns the stratum keys in plan order.
func (p *SamplePlan) Keys() []string {
	out := make([]string, len(p.Strata))
	for i, s := range p.Strata {
		out[i] = s.Key
	}
	return out
}

// Populations maps stratum key → census size for every stratum.
func (p *SamplePlan) Populations() map[string]int {
	out := make(map[string]int, len(p.Strata))
	for _, s := range p.Strata {
		out[s.Key] = len(s.Bits)
	}
	return out
}

// TotalBits returns the plan's total population across strata.
func (p *SamplePlan) TotalBits() int {
	n := 0
	for _, s := range p.Strata {
		n += len(s.Bits)
	}
	return n
}

// PlanStratumShards splits one stratum's epoch draw — sequence indices
// [lo, lo+n) — into contiguous shards of at most shardSize injections,
// the stratified analogue of PlanShards: executing each shard with
// CampaignConfig.Stratum+Shard and merging the Reports in plan order
// reproduces the epoch's draw exactly.
func PlanStratumShards(lo, n, shardSize int) []ShardRange {
	out := PlanShards(n, shardSize)
	for i := range out {
		out[i].Lo += lo
		out[i].Hi += lo
	}
	return out
}
