package core

import (
	"fmt"
	"sort"
	"strings"

	"sfi/internal/latch"
	"sfi/internal/obs"
	"sfi/internal/stats"
)

// Statistical and diagnostic views over a campaign Report: confidence
// intervals on the outcome proportions (the error bars behind the paper's
// Figure 2 argument), detection-latency statistics, and the per-checker
// coverage table designers use to evaluate their RAS hardware.

// Merge folds another report into r — the shard aggregation primitive for
// distributed campaigns. Merging the Reports of k disjoint shards of one
// campaign, in shard order, yields exactly the Report of a single-process
// run over the union: Total, Counts, ByUnit and ByType add; kept Results
// concatenate (shard order = sample order, so the concatenation is the
// single-process Results slice); metrics snapshots merge; Workers reports
// the widest concurrency seen by any constituent. o is not modified and
// may share no structure with r afterwards (rows are deep-merged).
func (r *Report) Merge(o *Report) {
	if o == nil {
		return
	}
	r.Total += o.Total
	if r.Counts == nil {
		r.Counts = make(map[Outcome]int, len(o.Counts))
	}
	for oc, n := range o.Counts {
		r.Counts[oc] += n
	}
	mergeRows := func(dst map[string]map[Outcome]int, src map[string]map[Outcome]int) map[string]map[Outcome]int {
		if len(src) == 0 {
			return dst
		}
		if dst == nil {
			dst = make(map[string]map[Outcome]int, len(src))
		}
		for k, row := range src {
			d := dst[k]
			if d == nil {
				d = make(map[Outcome]int, len(row))
				dst[k] = d
			}
			for oc, n := range row {
				d[oc] += n
			}
		}
		return dst
	}
	r.ByUnit = mergeRows(r.ByUnit, o.ByUnit)
	r.ByStratum = mergeRows(r.ByStratum, o.ByStratum)
	if len(o.ByType) > 0 {
		if r.ByType == nil {
			r.ByType = make(map[latch.Type]map[Outcome]int, len(o.ByType))
		}
		for t, row := range o.ByType {
			d := r.ByType[t]
			if d == nil {
				d = make(map[Outcome]int, len(row))
				r.ByType[t] = d
			}
			for oc, n := range row {
				d[oc] += n
			}
		}
	}
	r.Results = append(r.Results, o.Results...)
	if o.Workers > r.Workers {
		r.Workers = o.Workers
	}
	if o.Metrics != nil {
		if r.Metrics == nil {
			r.Metrics = obs.NewSnapshot()
		}
		r.Metrics.Merge(o.Metrics)
	}
	// A merged report covers a different population than either input, so
	// any attached convergence evaluation is stale: drop it and let the
	// caller re-evaluate over the merged counts (ComputeConvergence).
	r.Convergence = nil
}

// Interval is a binomial confidence interval on an outcome proportion.
type Interval struct {
	Fraction float64
	Lo, Hi   float64
}

// ConfidenceIntervals returns the Wilson score interval for each outcome at
// confidence z (1.96 ≈ 95%).
func (r *Report) ConfidenceIntervals(z float64) map[Outcome]Interval {
	out := make(map[Outcome]Interval, len(Outcomes))
	for _, o := range Outcomes {
		lo, hi := stats.WilsonInterval(r.Counts[o], r.Total, z)
		out[o] = Interval{Fraction: r.Fraction(o), Lo: lo, Hi: hi}
	}
	return out
}

// ComputeConvergence evaluates an adaptive stopping rule over the report's
// exact aggregate counts, with per-unit and per-latch-type strata. It is
// the authoritative post-campaign evaluation (the live estimator's view
// lags in-flight work) and the sealed-counts decision basis distributed
// coordinators stop on. Returns nil for a disabled rule.
func (r *Report) ComputeConvergence(rule stats.StopRule) *stats.Convergence {
	if !rule.Enabled() {
		return nil
	}
	classes := outcomeNames()
	counts := make(map[string]int64, len(r.Counts))
	for o, n := range r.Counts {
		counts[o.String()] = int64(n)
	}
	c := rule.Eval(classes, counts, int64(r.Total))
	byUnit := make(map[string]stats.StratumCounts, len(r.ByUnit))
	for unit, row := range r.ByUnit {
		byUnit[unit] = stratumFromRow(row)
	}
	byType := make(map[string]stats.StratumCounts, len(r.ByType))
	for t, row := range r.ByType {
		byType[t.String()] = stratumFromRow(row)
	}
	c.AddStrata(rule, classes, byUnit, byType)
	return c
}

// ComputeConvergenceStrata is ComputeConvergence for stratified campaigns:
// it additionally evaluates every sampling stratum of the report's
// ByStratum breakdown against the rule, given the plan's per-stratum
// census populations (an exhausted stratum is converged whatever its
// widths), and — when the rule's Strata gate is armed — folds the
// stratum verdicts into the overall one. Strata the campaign never drew
// from still gate the verdict: they appear with zero counts.
func (r *Report) ComputeConvergenceStrata(rule stats.StopRule, populations map[string]int) *stats.Convergence {
	c := r.ComputeConvergence(rule)
	if c == nil {
		return nil
	}
	strata := make(map[string]stats.StratumCounts, len(populations))
	for key := range populations {
		strata[key] = stats.StratumCounts{}
	}
	for key, row := range r.ByStratum {
		strata[key] = stratumFromRow(row)
	}
	c.AddSampleStrata(rule, outcomeNames(), strata, populations)
	return c
}

func stratumFromRow(row map[Outcome]int) stats.StratumCounts {
	s := stats.StratumCounts{Counts: make(map[string]int64, len(row))}
	for o, n := range row {
		s.Counts[o.String()] = int64(n)
		s.Total += int64(n)
	}
	return s
}

// LatencyStats summarizes detection latency over the detected injections.
type LatencyStats struct {
	Detected int
	Min, Max uint64
	Mean     float64
	P50, P95 uint64
}

// DetectionLatency computes statistics over the cycles-to-first-detection
// of all detected injections. It requires KeepResults.
func (r *Report) DetectionLatency() LatencyStats {
	var lats []uint64
	for _, res := range r.Results {
		if res.Detected {
			lats = append(lats, res.DetectLatency)
		}
	}
	st := LatencyStats{Detected: len(lats)}
	if len(lats) == 0 {
		return st
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.Min = lats[0]
	st.Max = lats[len(lats)-1]
	sum := 0.0
	for _, l := range lats {
		sum += float64(l)
	}
	st.Mean = sum / float64(len(lats))
	st.P50 = lats[len(lats)/2]
	st.P95 = lats[len(lats)*95/100]
	return st
}

// CheckerCoverage is one row of the coverage table: how often a checker was
// the first to observe an injected fault, and what the faults became.
type CheckerCoverage struct {
	Checker  string
	Detected int
	Outcomes map[Outcome]int
}

// CoverageTable aggregates first-detection counts per checker, sorted by
// detection count (descending). It requires KeepResults.
func (r *Report) CoverageTable() []CheckerCoverage {
	byChk := make(map[string]*CheckerCoverage)
	for _, res := range r.Results {
		if !res.Detected {
			continue
		}
		cc := byChk[res.FirstChecker]
		if cc == nil {
			cc = &CheckerCoverage{
				Checker:  res.FirstChecker,
				Outcomes: make(map[Outcome]int),
			}
			byChk[res.FirstChecker] = cc
		}
		cc.Detected++
		cc.Outcomes[res.Outcome]++
	}
	out := make([]CheckerCoverage, 0, len(byChk))
	for _, cc := range byChk {
		out = append(out, *cc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Detected != out[j].Detected {
			return out[i].Detected > out[j].Detected
		}
		return out[i].Checker < out[j].Checker
	})
	return out
}

// DetailedString renders the report with 95% confidence intervals,
// detection-latency statistics and the checker coverage table.
func (r *Report) DetailedString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total flips: %d\n", r.Total)
	cis := r.ConfidenceIntervals(1.96)
	for _, o := range Outcomes {
		ci := cis[o]
		fmt.Fprintf(&sb, "  %-10s %6d  %6.2f%%  [%.2f%%, %.2f%%]\n",
			o, r.Counts[o], 100*ci.Fraction, 100*ci.Lo, 100*ci.Hi)
	}
	if c := r.Convergence; c != nil {
		verdict := "converged"
		if !c.Converged {
			verdict = "NOT converged"
		}
		fmt.Fprintf(&sb, "convergence: %s at n=%d — widest margin %s %.2f%% "+
			"(target %.2f%% at %.0f%% confidence, min %d samples)\n",
			verdict, c.Total, c.WidestClass, 100*c.WidestWidth,
			100*c.TargetMargin, 100*c.Confidence, c.MinPerClass)
	}
	if len(r.Results) > 0 {
		ls := r.DetectionLatency()
		if ls.Detected > 0 {
			fmt.Fprintf(&sb, "detection latency over %d detected faults: "+
				"min %d, p50 %d, mean %.0f, p95 %d, max %d cycles\n",
				ls.Detected, ls.Min, ls.P50, ls.Mean, ls.P95, ls.Max)
		}
		cov := r.CoverageTable()
		if len(cov) > 0 {
			sb.WriteString("checker coverage (first detection):\n")
			for _, cc := range cov {
				fmt.Fprintf(&sb, "  %-16s %5d", cc.Checker, cc.Detected)
				for _, o := range Outcomes {
					if n := cc.Outcomes[o]; n > 0 {
						fmt.Fprintf(&sb, "  %s %d", o, n)
					}
				}
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}
