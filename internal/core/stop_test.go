package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sfi/internal/obs"
	"sfi/internal/stats"
)

// The PR 7 acceptance gate: an adaptive campaign stops before exhausting
// its flip budget and every tracked class's interval width in the *final*
// report is within the requested margin.
func TestAdaptiveCampaignStopsAtMargin(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Flips = 6000 // the budget the adaptive stop should undercut
	cfg.Workers = 4
	cfg.Stop = StopConfig{
		TargetMargin:   0.30,
		Confidence:     0.95,
		MinPerClass:    25,
		StopOnConverge: true,
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total >= cfg.Flips {
		t.Fatalf("adaptive campaign ran the whole budget: %d/%d", rep.Total, cfg.Flips)
	}
	if rep.Total < cfg.Stop.MinPerClass {
		t.Fatalf("stopped below the MinPerClass floor: %d", rep.Total)
	}
	c := rep.Convergence
	if c == nil || !c.Converged {
		t.Fatalf("final report not converged: %+v", c)
	}
	for _, ci := range c.Classes {
		if ci.Width > cfg.Stop.TargetMargin {
			t.Errorf("class %s width %.4f above margin %.2f", ci.Class, ci.Width, cfg.Stop.TargetMargin)
		}
		if ci.N != int64(rep.Total) {
			t.Errorf("class %s evaluated at n=%d, report total %d", ci.Class, ci.N, rep.Total)
		}
	}
	// The report's aggregates must cover exactly the injections that ran.
	sum := 0
	for _, n := range rep.Counts {
		sum += n
	}
	if sum != rep.Total {
		t.Errorf("counts sum %d != total %d", sum, rep.Total)
	}
	if len(c.ByUnit) == 0 || len(c.ByType) == 0 {
		t.Error("final convergence missing per-unit/per-type strata")
	}
	// No invalid (never-dispatched) outcome may leak into the aggregates.
	if n := rep.Counts[Outcome(0)]; n != 0 {
		t.Errorf("%d zero-outcome results leaked into the report", n)
	}
}

// Observe-only mode: a margin without StopOnConverge runs the full budget
// but still evaluates and reports convergence.
func TestStopConfigObserveOnly(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Stop = StopConfig{TargetMargin: 0.5, MinPerClass: 10}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != cfg.Flips {
		t.Fatalf("observe-only campaign stopped early: %d/%d", rep.Total, cfg.Flips)
	}
	if rep.Convergence == nil {
		t.Fatal("observe-only campaign carries no convergence evaluation")
	}
}

// Fixed-N campaigns must not change at all: no convergence block in the
// report, and the JSON serialization byte-identical to a config that has
// never heard of StopConfig.
func TestFixedNReportUnchanged(t *testing.T) {
	cfg := fastCampaignConfig()
	cfg.Workers = 2
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Convergence != nil {
		t.Fatal("fixed-N report grew a convergence block")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("convergence")) {
		t.Error("fixed-N report JSON mentions convergence")
	}
	if strings.Contains(rep.DetailedString(), "convergence") {
		t.Error("fixed-N DetailedString mentions convergence")
	}
}

// Adaptive campaigns emit JSONL convergence events: one per class margin
// crossing plus the stop decision, and the progress view carries the live
// interval evaluation.
func TestAdaptiveConvergenceEventsAndProgress(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewTraceSink(&buf, obs.TraceOptions{Sample: 1 << 30}) // mute injection events
	cfg := fastCampaignConfig()
	cfg.Flips = 2000
	cfg.Workers = 2
	cfg.Stop = StopConfig{TargetMargin: 0.30, MinPerClass: 25, StopOnConverge: true}
	cfg.Obs.Trace = sink
	var sawConvergence bool
	cfg.Obs.Progress = func(p Progress) {
		if p.Convergence != nil {
			sawConvergence = true
		}
	}
	cfg.Obs.ProgressEvery = 10 * time.Millisecond
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sawConvergence {
		t.Error("no progress callback carried a convergence view")
	}
	var stops, classEvents int
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Kind  string `json:"convergence"`
			Class string `json:"class"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		switch ev.Kind {
		case "stop":
			stops++
		case "class_converged":
			classEvents++
		}
	}
	if stops != 1 {
		t.Errorf("want exactly one stop event, got %d", stops)
	}
	if classEvents == 0 {
		t.Error("no class_converged events recorded")
	}
	// The rendered progress line advertises the margin state.
	p := Progress{Convergence: rep.Convergence, Total: rep.Total, Done: rep.Total}
	if line := p.Line(); !strings.Contains(line, "ci ok") {
		t.Errorf("converged progress line missing ci state: %q", line)
	}
	p.Convergence = (stats.StopRule{TargetMargin: 0.01}).Eval([]string{"sdc"}, nil, 10)
	if line := p.Line(); !strings.Contains(line, "ci sdc") {
		t.Errorf("outstanding-margin progress line missing widest class: %q", line)
	}
}
