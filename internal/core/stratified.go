package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sfi/internal/obs"
	"sfi/internal/stats"
)

// The local stratified executor: a campaign over a SamplePlan, run as a
// sequence of allocation epochs. Each epoch the Neyman allocator splits
// the epoch's budget across the plan's strata from their settled counts,
// every stratum's draw extends its own deterministic sequence, and the
// epoch is dispatched over the worker pool and drained fully before
// anything is evaluated. Re-allocation and the stop decision happen only
// at epoch boundaries over settled counts, so the campaign is
// deterministic across worker counts — the stratified analogue of the
// uniform path's pure batch plan.

// stratBatch is one dispatch unit of a stratified epoch: a phase-grouped
// batch of one stratum's draw. pos indexes the draw's results slice (the
// batch's positions are disjoint across batches, so workers write slots
// without synchronization).
type stratBatch struct {
	key  string
	bits []int
	pos  []int
	res  []Result
	done *sync.WaitGroup
}

// epochDraw is one stratum's slice of an epoch: seq is the next sh.Next
// bits of the stratum's sequence, res the results in sequence order.
type epochDraw struct {
	key string
	seq []int
	res []Result
}

func runStratified(ctx context.Context, first *Runner, cfg CampaignConfig) (*Report, error) {
	if cfg.Shard != nil {
		return nil, fmt.Errorf("core: a stratified campaign cannot take a pooled shard range (shards of stratified campaigns carry a stratum)")
	}
	plan := BuildSamplePlan(first.DB(), cfg.Seed, cfg.Filter)
	if len(plan.Strata) == 0 {
		return nil, fmt.Errorf("core: stratified campaign over an empty population")
	}
	// Stratified allocation makes the per-stratum margins the stoppable
	// target: the rule's Strata gate is armed for the estimator, the stop
	// decision and the final report evaluation alike.
	if cfg.Stop.Enabled() {
		cfg.Stop.Strata = true
	}
	rule := cfg.Stop.Rule()
	classes := outcomeNames()
	pops := plan.Populations()

	runSp := cfg.Obs.Tracer.StartSpan("campaign.run", "core", cfg.Obs.Parent)
	planSp := cfg.Obs.Tracer.StartSpan("sample", "core", runSp.Context())
	planSp.AttrInt("flips", int64(cfg.Flips)).
		AttrInt("strata", int64(len(plan.Strata))).
		AttrInt("population", int64(plan.TotalBits())).
		End()

	batchSize := first.BatchSize()
	batched := batchSize > 1
	if !batched {
		batchSize = 1
	}
	phases := first.Backend().Phases()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Flips {
		workers = cfg.Flips
	}

	collect := cfg.Obs.Metrics || cfg.Obs.Progress != nil
	var metrics []*obs.Metrics
	if collect {
		metrics = make([]*obs.Metrics, workers)
		for w := range metrics {
			metrics[w] = obs.New(classes)
		}
	}
	workerObs := func(w int) *obs.Metrics {
		if metrics == nil {
			return nil
		}
		return metrics[w]
	}
	mergedSnapshot := func() *obs.Snapshot {
		s := obs.NewSnapshot()
		for _, m := range metrics {
			s.Merge(m.Snapshot())
		}
		return s
	}
	first.SetObs(workerObs(0), cfg.Obs.Trace)
	first.SetSpan(cfg.Obs.Tracer, runSp.Context())

	// The estimator always runs: even without a stopping rule the Neyman
	// allocator feeds on its per-stratum outcome counts. Convergence views
	// are only surfaced when a rule is armed.
	est := stats.NewEstimator(classes, rule)
	est.TrackStrata(pops)
	liveConvergence := func() *stats.Convergence {
		if !cfg.Stop.Enabled() {
			return nil
		}
		return est.Snapshot(false)
	}

	var wg sync.WaitGroup
	jobs := make(chan stratBatch)
	errCh := make(chan error, workers)
	worker := func(r *Runner) {
		defer wg.Done()
		for b := range jobs {
			if !batched {
				res := r.RunInjection(b.bits[0])
				b.res[b.pos[0]] = res
				est.ObserveStratum(int(res.Outcome), res.Unit, res.LatchType.String(), b.key)
			} else {
				for j, res := range r.RunInjectionBatch(b.bits) {
					b.res[b.pos[j]] = res
					est.ObserveStratum(int(res.Outcome), res.Unit, res.LatchType.String(), b.key)
				}
			}
			b.done.Done()
		}
	}

	wg.Add(workers)
	start := time.Now()

	var cloning sync.WaitGroup
	if !cfg.NoClone {
		cloning.Add(workers - 1)
	}
	go func() {
		cloning.Wait()
		worker(first)
	}()
	for w := 1; w < workers; w++ {
		go func() {
			r, err := newWorkerRunner(first, cfg)
			if !cfg.NoClone {
				cloning.Done()
			}
			if err != nil {
				errCh <- fmt.Errorf("core: worker %d failed to start: %w", w, err)
				wg.Done()
				return
			}
			r.SetObs(workerObs(w), cfg.Obs.Trace)
			r.SetSpan(cfg.Obs.Tracer, runSp.Context())
			worker(r)
		}()
	}

	// Live progress and the convergence-event monitor mirror the uniform
	// path; Snapshot additionally carries the ByStratum breakdown and the
	// widest unconverged stratum for the progress line.
	var stopProg, progDone chan struct{}
	if cfg.Obs.Progress != nil {
		every := cfg.Obs.ProgressEvery
		if every <= 0 {
			every = time.Second
		}
		stopProg = make(chan struct{})
		progDone = make(chan struct{})
		go func() {
			defer close(progDone)
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-stopProg:
					return
				case <-t.C:
					p := ProgressFrom(mergedSnapshot(), cfg.Flips, workers, start)
					p.Convergence = liveConvergence()
					cfg.Obs.Progress(p)
				}
			}
		}()
	}
	seen := make(map[string]bool)
	var stopMon, monDone chan struct{}
	if cfg.Stop.Enabled() {
		stopMon = make(chan struct{})
		monDone = make(chan struct{})
		go func() {
			defer close(monDone)
			t := time.NewTicker(5 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stopMon:
					return
				case <-t.C:
					emitConvergenceEvents(cfg.Obs.Trace, est.Snapshot(false), seen, !cfg.Stop.StopOnConverge)
				}
			}
		}()
	}

	rep := newReport()
	rep.ByStratum = make(map[string]map[Outcome]int, len(plan.Strata))
	drawn := make(map[string]int, len(plan.Strata))
	epochBudget := (cfg.Flips + cfg.Alloc.epochs() - 1) / cfg.Alloc.epochs()
	remaining := cfg.Flips
	stopOnConverge := cfg.Stop.Enabled() && cfg.Stop.StopOnConverge
	var dispatchErr error

	for epoch := 0; remaining > 0 && dispatchErr == nil; epoch++ {
		eb := remaining
		if eb > epochBudget {
			eb = epochBudget
		}
		shares := rule.Allocate(classes, est.StrataStates(plan.Keys(), pops, drawn), eb)
		allocated := 0
		for _, sh := range shares {
			allocated += sh.Next
		}
		if allocated == 0 {
			// Every stratum's population is exhausted; the campaign cannot
			// spend the rest of its budget.
			break
		}
		emitAllocationEvent(cfg.Obs.Trace, epoch, allocated, shares)
		epochSp := cfg.Obs.Tracer.StartSpan("allocate", "core", runSp.Context())
		epochSp.AttrInt("epoch", int64(epoch)).AttrInt("budget", int64(allocated)).End()

		// Extend each allocated stratum's prefix and dispatch the epoch.
		var draws []epochDraw
		for _, sh := range shares {
			if sh.Next == 0 {
				continue
			}
			lo := drawn[sh.Stratum]
			draws = append(draws, epochDraw{
				key: sh.Stratum,
				seq: plan.Stratum(sh.Stratum).Bits[lo : lo+sh.Next],
				res: make([]Result, sh.Next),
			})
			drawn[sh.Stratum] = lo + sh.Next
		}
		var pending sync.WaitGroup
	dispatch:
		for _, d := range draws {
			for _, group := range planBatches(d.seq, phases, batchSize) {
				b := stratBatch{key: d.key, bits: make([]int, len(group)), pos: group, res: d.res, done: &pending}
				for j, pos := range group {
					b.bits[j] = d.seq[pos]
				}
				pending.Add(1)
				select {
				case e := <-errCh:
					pending.Done()
					dispatchErr = e
					break dispatch
				case <-ctx.Done():
					pending.Done()
					dispatchErr = fmt.Errorf("core: campaign cancelled: %w", context.Cause(ctx))
					break dispatch
				case jobs <- b:
				}
			}
		}
		// The epoch barrier: every dispatched batch settles before counts
		// are evaluated or re-allocated — the determinism contract.
		pending.Wait()
		if dispatchErr != nil {
			break
		}
		for _, d := range draws {
			row := rep.ByStratum[d.key]
			if row == nil {
				row = make(map[Outcome]int)
				rep.ByStratum[d.key] = row
			}
			for _, res := range d.res {
				rep.add(res, cfg.KeepResults)
				row[res.Outcome]++
			}
		}
		remaining -= allocated
		if stopOnConverge && est.Converged() {
			break
		}
	}

	close(jobs)
	wg.Wait()
	if stopMon != nil {
		close(stopMon)
		<-monDone
	}
	if stopProg != nil {
		close(stopProg)
		<-progDone
	}
	var errs []error
	if dispatchErr != nil {
		errs = append(errs, dispatchErr)
	}
drain:
	for {
		select {
		case e := <-errCh:
			errs = append(errs, e)
		default:
			break drain
		}
	}
	if len(errs) > 0 {
		dedup := make(map[string]bool, len(errs))
		distinct := errs[:0]
		for _, e := range errs {
			if !dedup[e.Error()] {
				dedup[e.Error()] = true
				distinct = append(distinct, e)
			}
		}
		err := errors.Join(distinct...)
		if runSp != nil {
			runSp.Attr("error", err.Error()).End()
		}
		return nil, err
	}

	mergeSp := cfg.Obs.Tracer.StartSpan("merge", "core", runSp.Context())
	rep.Workers = workers
	if collect {
		rep.Metrics = mergedSnapshot()
	}
	if cfg.Stop.Enabled() {
		rep.Convergence = rep.ComputeConvergenceStrata(rule, pops)
		emitConvergenceEvents(cfg.Obs.Trace, rep.Convergence, seen, true)
	}
	mergeSp.AttrInt("injections", int64(rep.Total)).End()
	if cfg.Obs.Progress != nil {
		p := ProgressFrom(rep.Metrics, cfg.Flips, workers, start)
		p.Convergence = rep.Convergence
		cfg.Obs.Progress(p)
	}
	if runSp != nil {
		runSp.AttrInt("injections", int64(rep.Total)).AttrInt("workers", int64(workers)).End()
	}
	return rep, nil
}

// emitAllocationEvent records one epoch's allocation decision as a JSONL
// allocation event.
func emitAllocationEvent(trace *obs.TraceSink, epoch, budget int, shares []stats.StratumShare) {
	if trace == nil {
		return
	}
	trace.RecordJSON(obs.AllocationEvent{Kind: "allocate", Epoch: epoch, Budget: budget, Shares: shares})
}
