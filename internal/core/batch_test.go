package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"sfi/internal/engine"
	_ "sfi/internal/engine/awan"
)

// awanCampaignConfig returns a small gate-level campaign whose sampled
// population exercises every register class of the checked-ALU design.
func awanCampaignConfig() CampaignConfig {
	c := DefaultCampaignConfig()
	c.Runner.Backend = "awan"
	c.Runner.Awan.Width = 8
	c.Runner.Awan.Lanes = 6 // population: 6 × (3·8 + 2) = 156 bits
	c.Seed = 7
	c.Flips = 120
	c.Workers = 4
	return c
}

// reportDump renders a report for byte-for-byte comparison: the stable
// wire JSON plus every kept Result verbatim (the wire format elides
// vanished injections, the dump must not).
func reportDump(t *testing.T, rep *Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("workers=%d wire=%s results=%+v", rep.Workers, b, rep.Results)
}

// TestBatchScalarEquivalence is the tentpole's correctness gate: the same
// (seed, flips, filter) campaign run through the bit-parallel batch path
// and the scalar path must produce byte-identical Reports, for toggle,
// sticky (bounded and permanent) and multi-bit-span injections.
func TestBatchScalarEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CampaignConfig)
	}{
		{"toggle", func(c *CampaignConfig) {}},
		{"sticky", func(c *CampaignConfig) {
			c.Runner.Mode = engine.Sticky
			c.Runner.StickyCycles = 9
		}},
		{"sticky-permanent", func(c *CampaignConfig) {
			c.Runner.Mode = engine.Sticky
			c.Runner.StickyCycles = 0
		}},
		{"span3", func(c *CampaignConfig) { c.Runner.SpanBits = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batchCfg := awanCampaignConfig()
			tc.mutate(&batchCfg)
			scalarCfg := batchCfg
			scalarCfg.Runner.BatchLanes = 1

			batchRep, err := RunCampaign(batchCfg)
			if err != nil {
				t.Fatal(err)
			}
			scalarRep, err := RunCampaign(scalarCfg)
			if err != nil {
				t.Fatal(err)
			}
			if bj, sj := reportDump(t, batchRep), reportDump(t, scalarRep); bj != sj {
				t.Errorf("batch and scalar reports differ\nbatch:  %s\nscalar: %s", bj, sj)
			}
		})
	}
}

// TestBatchDeterministicAcrossWorkers: the batch plan is a pure function
// of the sample, so worker count must not change any per-injection result.
func TestBatchDeterministicAcrossWorkers(t *testing.T) {
	base := awanCampaignConfig()
	var reps []*Report
	for _, w := range []int{1, 4} {
		cfg := base
		cfg.Workers = w
		rep, err := RunCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep.Workers = 0 // the only field legitimately tied to worker count
		reps = append(reps, rep)
	}
	if a, b := reportDump(t, reps[0]), reportDump(t, reps[1]); a != b {
		t.Errorf("batch campaign differs across worker counts\n1 worker:  %s\n4 workers: %s", a, b)
	}
}

// TestOneFlipBatchPath is the short-final-batch regression: a 1-flip
// campaign on the batch path runs a single 1-lane pass (all other lanes
// masked off) and must classify exactly like the scalar path.
func TestOneFlipBatchPath(t *testing.T) {
	cfg := awanCampaignConfig()
	cfg.Flips = 1
	cfg.Workers = 1
	cfg.Obs.Metrics = true

	batchRep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batchRep.Metrics == nil || batchRep.Metrics.Batches != 1 {
		t.Fatalf("1-flip campaign should run exactly one batched pass, metrics: %+v", batchRep.Metrics)
	}
	if occ := batchRep.Metrics.LaneOccupancy; occ.Count != 1 || occ.Sum != 1 {
		t.Errorf("lane occupancy should record one 1-lane pass, got count=%d sum=%d", occ.Count, occ.Sum)
	}

	scalarCfg := cfg
	scalarCfg.Obs.Metrics = false
	scalarCfg.Runner.BatchLanes = 1
	scalarRep, err := RunCampaign(scalarCfg)
	if err != nil {
		t.Fatal(err)
	}
	batchRep.Metrics = nil // batching legitimately changes restore/batch metrics
	if bj, sj := reportDump(t, batchRep), reportDump(t, scalarRep); bj != sj {
		t.Errorf("1-flip batch report differs from scalar\nbatch:  %s\nscalar: %s", bj, sj)
	}
}

// TestBatchLaneOccupancyMetrics: a batched campaign reports its pass count
// and per-pass occupancy, and occupancy totals the injection count.
func TestBatchLaneOccupancyMetrics(t *testing.T) {
	cfg := awanCampaignConfig()
	cfg.Obs.Metrics = true
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m == nil || m.Batches == 0 {
		t.Fatalf("batched campaign recorded no batches: %+v", m)
	}
	if m.LaneOccupancy.Count != m.Batches {
		t.Errorf("occupancy count %d != batches %d", m.LaneOccupancy.Count, m.Batches)
	}
	if m.LaneOccupancy.Sum != uint64(cfg.Flips) {
		t.Errorf("occupancy sum %d != flips %d", m.LaneOccupancy.Sum, cfg.Flips)
	}
	// Grouping by the 8 checkpoint phases bounds the pass count well below
	// one-pass-per-injection — the whole point of batching.
	if int(m.Batches) >= cfg.Flips/2 {
		t.Errorf("batching ineffective: %d batches for %d flips", m.Batches, cfg.Flips)
	}
}

// TestPlanBatches: the plan partitions every sample position, respects the
// size bound, and groups only positions sharing a checkpoint phase.
func TestPlanBatches(t *testing.T) {
	bits := make([]int, 100)
	for i := range bits {
		bits[i] = 3*i + 1
	}
	const phases, size = 8, 7
	batches := planBatches(bits, phases, size)
	seen := make(map[int]bool)
	for _, b := range batches {
		if len(b) == 0 || len(b) > size {
			t.Fatalf("batch size %d out of (0,%d]", len(b), size)
		}
		ck0, _ := injectionSchedule(bits[b[0]], phases)
		for _, pos := range b {
			if seen[pos] {
				t.Fatalf("position %d planned twice", pos)
			}
			seen[pos] = true
			if ck, _ := injectionSchedule(bits[pos], phases); ck != ck0 {
				t.Fatalf("batch mixes phases %d and %d", ck0, ck)
			}
		}
	}
	if len(seen) != len(bits) {
		t.Fatalf("planned %d of %d positions", len(seen), len(bits))
	}

	// Scalar fallback: every position is its own batch, in sample order.
	scalar := planBatches(bits, phases, 1)
	if len(scalar) != len(bits) {
		t.Fatalf("scalar plan has %d batches for %d bits", len(scalar), len(bits))
	}
	for i, b := range scalar {
		if len(b) != 1 || b[0] != i {
			t.Fatalf("scalar batch %d = %v", i, b)
		}
	}
}

// TestBatchSizeConfig: BatchLanes narrows the fault-lane budget, 1
// disables batching, 0 and out-of-range values mean the backend maximum.
func TestBatchSizeConfig(t *testing.T) {
	for _, tc := range []struct{ lanes, want int }{
		{0, 63}, {1, 0}, {16, 15}, {64, 63}, {200, 63},
	} {
		cfg := awanCampaignConfig().Runner
		cfg.BatchLanes = tc.lanes
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.BatchSize(); got != tc.want {
			t.Errorf("BatchLanes=%d: BatchSize=%d, want %d", tc.lanes, got, tc.want)
		}
	}
	// Scalar backends have no batch capability at all.
	r, err := NewRunner(fastRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.BatchSize(); got != 0 {
		t.Errorf("p6lite BatchSize=%d, want 0", got)
	}
}
