package mem

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, size := range []int{0, 7, 100, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", size)
				}
			}()
			New(size)
		}()
	}
}

func TestReadWrite64(t *testing.T) {
	m := New(1024)
	m.Write64(8, 0xdeadbeefcafef00d)
	if got := m.Read64(8); got != 0xdeadbeefcafef00d {
		t.Errorf("Read64 = %#x", got)
	}
	// Unaligned access hits the containing doubleword.
	if got := m.Read64(13); got != 0xdeadbeefcafef00d {
		t.Errorf("unaligned Read64 = %#x", got)
	}
}

func TestReadWrite32(t *testing.T) {
	m := New(1024)
	m.Write32(4, 0x12345678)
	if got := m.Read32(4); got != 0x12345678 {
		t.Errorf("Read32 = %#x", got)
	}
	if got := m.Read32(6); got != 0x12345678 {
		t.Errorf("unaligned Read32 = %#x", got)
	}
	// The two word halves of a doubleword are independent.
	m.Write32(0, 0xaaaaaaaa)
	if got := m.Read32(4); got != 0x12345678 {
		t.Errorf("adjacent Write32 clobbered word: %#x", got)
	}
}

func TestAddressWrap(t *testing.T) {
	m := New(256)
	m.Write64(256, 42) // wraps to 0
	if got := m.Read64(0); got != 42 {
		t.Errorf("wrapped write missed: %d", got)
	}
	if got := m.Read64(512); got != 42 {
		t.Errorf("wrapped read missed: %d", got)
	}
}

func TestLoadProgram(t *testing.T) {
	m := New(1024)
	m.LoadProgram(64, []uint32{1, 2, 3})
	for i, want := range []uint32{1, 2, 3} {
		if got := m.Read32(64 + uint64(4*i)); got != want {
			t.Errorf("word %d = %d, want %d", i, got, want)
		}
	}
}

func TestCloneEqualCopyFrom(t *testing.T) {
	m := New(512)
	m.Write64(0, 99)
	c := m.Clone()
	if !c.Equal(m) {
		t.Fatal("clone not equal")
	}
	c.Write64(8, 1)
	if m.Read64(8) != 0 {
		t.Fatal("clone mutation visible in original")
	}
	if c.Equal(m) {
		t.Fatal("diverged memories reported equal")
	}
	m.CopyFrom(c)
	if !c.Equal(m) {
		t.Fatal("CopyFrom did not converge")
	}
	if New(256).Equal(m) {
		t.Fatal("different sizes reported equal")
	}
}

func TestDigestSensitivity(t *testing.T) {
	m := New(512)
	d0 := m.Digest()
	m.Write64(128, 1)
	if m.Digest() == d0 {
		t.Error("digest unchanged by write")
	}
}

func TestDigestRange(t *testing.T) {
	m := New(512)
	m.Write64(64, 7)
	d := m.DigestRange(0, 64)
	m.Write64(64, 8) // outside [0,64)
	if m.DigestRange(0, 64) != d {
		t.Error("digest over [0,64) changed by write at 64")
	}
	m.Write64(0, 1)
	if m.DigestRange(0, 64) == d {
		t.Error("digest over [0,64) unchanged by write at 0")
	}
}

func TestQuickRead64RoundTrip(t *testing.T) {
	m := New(4096)
	f := func(addr, v uint64) bool {
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWrite32Halves(t *testing.T) {
	m := New(4096)
	f := func(addr uint64, lo, hi uint32) bool {
		a := addr &^ 7
		m.Write32(a, lo)
		m.Write32(a+4, hi)
		return m.Read64(a) == uint64(hi)<<32|uint64(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaRestoreMatchesBaseline(t *testing.T) {
	m := New(64 * 1024)
	m.Write64(0x100, 0x1111)
	m.Write64(0x8000, 0x2222)
	m.SetBaseline()
	if !m.HasBaseline() {
		t.Fatal("baseline not installed")
	}
	// Checkpoint A: the baseline state itself (empty delta).
	ckA := m.CaptureDelta()
	if ckA.Pages() != 0 {
		t.Fatalf("baseline delta has %d pages", ckA.Pages())
	}
	// Advance and checkpoint B.
	m.Write64(0x100, 0x3333)
	m.Write64(0xa008, 0x4444)
	ckB := m.CaptureDelta()
	want := m.Clone()
	// Dirty a bunch of other pages, then delta-restore B.
	for a := uint64(0); a < 64*1024; a += 4096 {
		m.Write64(a, 0xffff)
	}
	m.RestoreDelta(ckB)
	if !m.Equal(want) {
		t.Fatal("delta restore to B does not match full state")
	}
	// Cross-checkpoint: now delta-restore A (the baseline).
	m.RestoreDelta(ckA)
	if got := m.Read64(0x100); got != 0x1111 {
		t.Fatalf("after restore to A, [0x100] = %#x", got)
	}
	if got := m.Read64(0xa008); got != 0 {
		t.Fatalf("after restore to A, [0xa008] = %#x", got)
	}
}

func TestDeltaRestoreAfterFullCopy(t *testing.T) {
	// CopyFrom conservatively dirties everything; a delta restore after it
	// must still reproduce the captured state exactly.
	m := New(32 * 1024)
	m.SetBaseline()
	m.Write64(0x2000, 7)
	ck := m.CaptureDelta()
	want := m.Clone()
	other := New(32 * 1024)
	other.Write64(0x40, 0xdead)
	m.CopyFrom(other)
	m.RestoreDelta(ck)
	if !m.Equal(want) {
		t.Fatal("delta restore after CopyFrom diverged")
	}
}

func TestAdoptBaseline(t *testing.T) {
	src := New(16 * 1024)
	src.Write64(0x800, 42)
	src.SetBaseline()
	src.Write64(0x900, 43)
	ck := src.CaptureDelta()

	m := New(16 * 1024)
	m.AdoptBaseline(src)
	if got := m.Read64(0x800); got != 42 {
		t.Fatalf("adopted baseline [0x800] = %d", got)
	}
	m.RestoreDelta(ck)
	if !m.Equal(src) {
		t.Fatal("clone after delta restore does not match source")
	}
}

func TestSubPageMemoryDelta(t *testing.T) {
	// A memory smaller than one page exercises the short-last-page path.
	m := New(512)
	m.SetBaseline()
	m.Write64(8, 9)
	ck := m.CaptureDelta()
	want := m.Clone()
	m.Write64(16, 1)
	m.RestoreDelta(ck)
	if !m.Equal(want) {
		t.Fatal("sub-page delta restore diverged")
	}
}

func TestCaptureDeltaWithoutBaselinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CaptureDelta without baseline did not panic")
		}
	}()
	New(1024).CaptureDelta()
}
