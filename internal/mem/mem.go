// Package mem provides the flat physical memory shared by the golden
// architectural simulator and the core model's cache hierarchy. P6LITE runs
// in real-address mode; addresses wrap modulo the memory size, which must be
// a power of two.
package mem

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"
)

// Dirty-tracking page geometry. 4 KiB pages keep the bitmap tiny (one word
// per 256 KiB) while a typical observation window dirties only a handful of
// pages; see DESIGN.md "Dirty-tracking checkpoint restore".
const (
	pageShift = 12
	pageSize  = 1 << pageShift
)

// Memory is a little-endian, byte-addressable flat memory.
//
// When a restore baseline is installed (SetBaseline), the memory keeps a
// page-granular dirty bitmap recording which pages may differ from the
// baseline contents. Delta checkpoints captured against that baseline can
// then be restored by rewriting only the dirty pages instead of the whole
// memory.
type Memory struct {
	data []byte
	mask uint64

	// base is the baseline contents, immutable once installed (it may be
	// shared read-only between cloned memories). dirty has one bit per
	// page, set when the page may differ from base.
	base  []byte
	dirty []uint64
}

// New returns a Memory of size bytes; size must be a power of two ≥ 8.
func New(size int) *Memory {
	if size < 8 || size&(size-1) != 0 {
		panic(fmt.Sprintf("mem: size %d is not a power of two >= 8", size))
	}
	return &Memory{data: make([]byte, size), mask: uint64(size - 1)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// index wraps an address into the memory, keeping 8 bytes addressable.
func (m *Memory) index(addr uint64) uint64 { return addr & m.mask &^ 7 }

// Read64 loads the 8-byte-aligned doubleword containing addr.
func (m *Memory) Read64(addr uint64) uint64 {
	i := m.index(addr)
	return binary.LittleEndian.Uint64(m.data[i : i+8])
}

// touch marks the page containing byte offset i dirty (no-op without a
// baseline). Aligned 8-byte accesses never span a page, so one mark is
// enough.
func (m *Memory) touch(i uint64) {
	if m.dirty != nil {
		p := i >> pageShift
		m.dirty[p>>6] |= 1 << (p & 63)
	}
}

// Write64 stores v to the 8-byte-aligned doubleword containing addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	i := m.index(addr)
	binary.LittleEndian.PutUint64(m.data[i:i+8], v)
	m.touch(i)
}

// Read32 loads the 4-byte-aligned word containing addr.
func (m *Memory) Read32(addr uint64) uint32 {
	i := addr & m.mask &^ 3
	return binary.LittleEndian.Uint32(m.data[i : i+4])
}

// Write32 stores v to the 4-byte-aligned word containing addr.
func (m *Memory) Write32(addr uint64, v uint32) {
	i := addr & m.mask &^ 3
	binary.LittleEndian.PutUint32(m.data[i:i+4], v)
	m.touch(i)
}

// LoadProgram writes instruction words starting at addr (4-byte aligned).
func (m *Memory) LoadProgram(addr uint64, words []uint32) {
	for i, w := range words {
		m.Write32(addr+uint64(4*i), w)
	}
}

// Clone returns a deep copy of the contents. Dirty tracking is not carried
// over; the clone has no baseline.
func (m *Memory) Clone() *Memory {
	c := &Memory{data: make([]byte, len(m.data)), mask: m.mask}
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites contents from src; sizes must match. With a baseline
// installed every page is conservatively marked dirty, so the next delta
// restore stays correct (and re-converges to sparse bitmaps afterwards).
func (m *Memory) CopyFrom(src *Memory) {
	if len(m.data) != len(src.data) {
		panic(fmt.Sprintf("mem: copy size mismatch %d != %d", len(m.data), len(src.data)))
	}
	copy(m.data, src.data)
	markAll(m.dirty, m.numPages())
}

// markAll sets the first n bits of a dirty bitmap (no-op on a nil bitmap).
func markAll(bm []uint64, n int) {
	if bm == nil {
		return
	}
	for i := range bm {
		bm[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		bm[len(bm)-1] = 1<<uint(r) - 1
	}
}

func (m *Memory) numPages() int { return (len(m.data) + pageSize - 1) / pageSize }

// pageBounds returns the byte range [lo, hi) of page p (the last page of a
// sub-page-sized memory is short).
func (m *Memory) pageBounds(p int) (lo, hi int) {
	lo = p << pageShift
	hi = lo + pageSize
	if hi > len(m.data) {
		hi = len(m.data)
	}
	return lo, hi
}

// SetBaseline snapshots the current contents as the restore baseline and
// starts dirty tracking against it. The baseline is immutable afterwards.
func (m *Memory) SetBaseline() {
	m.base = append([]byte(nil), m.data...)
	m.dirty = make([]uint64, (m.numPages()+63)/64)
}

// HasBaseline reports whether dirty tracking is active.
func (m *Memory) HasBaseline() bool { return m.base != nil }

// AdoptBaseline shares src's baseline (read-only) and resets this memory's
// contents to it, with a clean dirty bitmap. Sizes must match. This is the
// warm-clone path: the adopter reaches the baseline state without copying
// from live (possibly running) state.
func (m *Memory) AdoptBaseline(src *Memory) {
	if src.base == nil {
		panic("mem: AdoptBaseline from a memory without a baseline")
	}
	if len(m.data) != len(src.base) {
		panic(fmt.Sprintf("mem: adopt size mismatch %d != %d", len(m.data), len(src.base)))
	}
	m.base = src.base
	copy(m.data, m.base)
	m.dirty = make([]uint64, (m.numPages()+63)/64)
}

// Delta is a sparse page-level checkpoint: the pages (and their contents)
// that differed from the baseline at capture time. Immutable after capture,
// so it may be shared between engines.
type Delta struct {
	pages []int32
	data  []byte // concatenated page contents, in pages order
}

// Pages returns the number of pages recorded in the delta.
func (d *Delta) Pages() int { return len(d.pages) }

// CaptureDelta records the pages currently marked dirty against the
// baseline. It panics without a baseline.
func (m *Memory) CaptureDelta() *Delta {
	if m.base == nil {
		panic("mem: CaptureDelta without a baseline")
	}
	d := &Delta{}
	m.forEachDirty(func(p int) {
		lo, hi := m.pageBounds(p)
		d.pages = append(d.pages, int32(p))
		d.data = append(d.data, m.data[lo:hi]...)
	})
	return d
}

// RestoreDelta rewrites the memory to exactly the state captured in d:
// every dirty page reverts to the baseline, then the delta's pages are
// applied (and remain marked dirty, preserving the invariant that clean
// pages equal the baseline). Cost is proportional to pages touched since
// the last restore plus the delta size — not the memory size.
func (m *Memory) RestoreDelta(d *Delta) {
	if m.base == nil {
		panic("mem: RestoreDelta without a baseline")
	}
	m.forEachDirty(func(p int) {
		lo, hi := m.pageBounds(p)
		copy(m.data[lo:hi], m.base[lo:hi])
	})
	for i := range m.dirty {
		m.dirty[i] = 0
	}
	off := 0
	for _, p32 := range d.pages {
		p := int(p32)
		lo, hi := m.pageBounds(p)
		copy(m.data[lo:hi], d.data[off:off+(hi-lo)])
		off += hi - lo
		m.dirty[p>>6] |= 1 << (uint(p) & 63)
	}
}

// forEachDirty calls fn for every dirty page index in ascending order.
func (m *Memory) forEachDirty(fn func(page int)) {
	for w, bm := range m.dirty {
		for bm != 0 {
			fn(w*64 + bits.TrailingZeros64(bm))
			bm &= bm - 1
		}
	}
}

// Equal reports whether two memories have identical size and contents.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.data) != len(o.data) {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Digest returns a 64-bit FNV-1a hash of the contents, used by the AVP to
// compare final memory state against the golden model cheaply.
func (m *Memory) Digest() uint64 {
	h := fnv.New64a()
	h.Write(m.data)
	return h.Sum64()
}

// DigestRange hashes the bytes in [lo, hi) after wrapping, used to check
// just a testcase's data area.
func (m *Memory) DigestRange(lo, hi uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for a := lo &^ 7; a < hi; a += 8 {
		binary.LittleEndian.PutUint64(b[:], m.Read64(a))
		h.Write(b[:])
	}
	return h.Sum64()
}
