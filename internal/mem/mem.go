// Package mem provides the flat physical memory shared by the golden
// architectural simulator and the core model's cache hierarchy. P6LITE runs
// in real-address mode; addresses wrap modulo the memory size, which must be
// a power of two.
package mem

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Memory is a little-endian, byte-addressable flat memory.
type Memory struct {
	data []byte
	mask uint64
}

// New returns a Memory of size bytes; size must be a power of two ≥ 8.
func New(size int) *Memory {
	if size < 8 || size&(size-1) != 0 {
		panic(fmt.Sprintf("mem: size %d is not a power of two >= 8", size))
	}
	return &Memory{data: make([]byte, size), mask: uint64(size - 1)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// index wraps an address into the memory, keeping 8 bytes addressable.
func (m *Memory) index(addr uint64) uint64 { return addr & m.mask &^ 7 }

// Read64 loads the 8-byte-aligned doubleword containing addr.
func (m *Memory) Read64(addr uint64) uint64 {
	i := m.index(addr)
	return binary.LittleEndian.Uint64(m.data[i : i+8])
}

// Write64 stores v to the 8-byte-aligned doubleword containing addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	i := m.index(addr)
	binary.LittleEndian.PutUint64(m.data[i:i+8], v)
}

// Read32 loads the 4-byte-aligned word containing addr.
func (m *Memory) Read32(addr uint64) uint32 {
	i := addr & m.mask &^ 3
	return binary.LittleEndian.Uint32(m.data[i : i+4])
}

// Write32 stores v to the 4-byte-aligned word containing addr.
func (m *Memory) Write32(addr uint64, v uint32) {
	i := addr & m.mask &^ 3
	binary.LittleEndian.PutUint32(m.data[i:i+4], v)
}

// LoadProgram writes instruction words starting at addr (4-byte aligned).
func (m *Memory) LoadProgram(addr uint64, words []uint32) {
	for i, w := range words {
		m.Write32(addr+uint64(4*i), w)
	}
}

// Clone returns a deep copy.
func (m *Memory) Clone() *Memory {
	c := &Memory{data: make([]byte, len(m.data)), mask: m.mask}
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites contents from src; sizes must match.
func (m *Memory) CopyFrom(src *Memory) {
	if len(m.data) != len(src.data) {
		panic(fmt.Sprintf("mem: copy size mismatch %d != %d", len(m.data), len(src.data)))
	}
	copy(m.data, src.data)
}

// Equal reports whether two memories have identical size and contents.
func (m *Memory) Equal(o *Memory) bool {
	if len(m.data) != len(o.data) {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Digest returns a 64-bit FNV-1a hash of the contents, used by the AVP to
// compare final memory state against the golden model cheaply.
func (m *Memory) Digest() uint64 {
	h := fnv.New64a()
	h.Write(m.data)
	return h.Sum64()
}

// DigestRange hashes the bytes in [lo, hi) after wrapping, used to check
// just a testcase's data area.
func (m *Memory) DigestRange(lo, hi uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for a := lo &^ 7; a < hi; a += 8 {
		binary.LittleEndian.PutUint64(b[:], m.Read64(a))
		h.Write(b[:])
	}
	return h.Sum64()
}
