package avp

import (
	"testing"

	"sfi/internal/isa"
	"sfi/internal/proc"
)

func TestGenerateBasics(t *testing.T) {
	p := MustGenerate(DefaultConfig())
	if len(p.Words) == 0 {
		t.Fatal("empty program")
	}
	if len(p.Testcases) != DefaultConfig().Testcases {
		t.Fatalf("recorded %d testcases, want %d", len(p.Testcases), DefaultConfig().Testcases)
	}
	if p.DynTotal == 0 || p.GoldenInstPerPass == 0 {
		t.Fatal("no dynamic statistics recorded")
	}
	for i, tc := range p.Testcases {
		if tc.SigMasked == 0 {
			t.Errorf("testcase %d has zero signature", i)
		}
		if tc.GPRMask == 0 {
			t.Errorf("testcase %d covers no GPRs", i)
		}
	}
	// Masks are cumulative within the pass.
	for i := 1; i < len(p.Testcases); i++ {
		if p.Testcases[i].GPRMask&p.Testcases[i-1].GPRMask != p.Testcases[i-1].GPRMask {
			t.Errorf("testcase %d GPR mask not cumulative", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(DefaultConfig())
	b := MustGenerate(DefaultConfig())
	if len(a.Words) != len(b.Words) {
		t.Fatal("nondeterministic program length")
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatalf("word %d differs between identical-seed generations", i)
		}
	}
	for i := range a.Testcases {
		if a.Testcases[i] != b.Testcases[i] {
			t.Fatalf("testcase %d expectations differ", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	a := MustGenerate(cfg)
	cfg.Seed = 999
	b := MustGenerate(cfg)
	same := len(a.Words) == len(b.Words)
	if same {
		for i := range a.Words {
			if a.Words[i] != b.Words[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical programs")
	}
}

func TestGenerateBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Testcases = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("no error for zero testcases")
	}
	cfg = DefaultConfig()
	cfg.Testcases = 1000
	if _, err := Generate(cfg); err == nil {
		t.Error("no error for oversized data area")
	}
}

func TestDynMixIsReasonable(t *testing.T) {
	p := MustGenerate(DefaultConfig())
	sum := 0.0
	for _, c := range isa.Classes {
		m := p.DynMix(c)
		if m < 0 || m > 1 {
			t.Errorf("mix of %v = %f out of range", c, m)
		}
		sum += m
	}
	if sum < 0.7 || sum > 1.0 {
		t.Errorf("six-class mix sums to %f, want most of the stream", sum)
	}
	if p.DynMix(isa.ClassLoad) < 0.10 {
		t.Errorf("load mix %f too low", p.DynMix(isa.ClassLoad))
	}
	if p.DynMix(isa.ClassFloat) != 0 {
		t.Errorf("AVP default mix must have no floating point, got %f",
			p.DynMix(isa.ClassFloat))
	}
}

// TestAVPRunsCleanOnCore is the end-to-end check: the AVP must run on the
// latch-accurate core with every testend signature and memory digest
// matching the golden expectations, indefinitely, with no checker fires.
func TestAVPRunsCleanOnCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Testcases = 6
	cfg.BodyOps = 16
	p := MustGenerate(cfg)

	core := proc.New(proc.DefaultConfig())
	core.Mem().LoadProgram(0, p.Words)

	ends := 0
	warmEnds := warmPasses * cfg.Testcases
	checked := 0
	for i := 0; i < 2_000_000 && checked < 2*cfg.Testcases; i++ {
		ev := core.Step()
		if core.Checkstopped() {
			t.Fatal("core checkstopped running the AVP")
		}
		if !ev.TestEnd {
			continue
		}
		ends++
		if ends <= warmEnds {
			continue
		}
		tc := p.Testcases[(ends-1)%cfg.Testcases]
		st := core.ArchState()
		if got := st.MaskedSignature(tc.GPRMask, tc.FPRMask, tc.SPRMask); got != tc.SigMasked {
			t.Fatalf("testend %d: signature %#x, golden %#x", ends, got, tc.SigMasked)
		}
		if got := core.Mem().DigestRange(p.DataLo, p.DataHi); got != tc.MemDigest {
			t.Fatalf("testend %d: memory digest mismatch", ends)
		}
		checked++
	}
	if checked < 2*cfg.Testcases {
		t.Fatalf("only %d testends checked", checked)
	}
	if core.Recoveries != 0 || core.AnyFIR() {
		t.Error("AVP run had machine-visible error activity")
	}
}

func TestFloatMixGeneratesFP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Weights.Float = 0.2
	p := MustGenerate(cfg)
	if p.DynMix(isa.ClassFloat) == 0 {
		t.Error("float weight produced no FP instructions")
	}
}
