// Package avp implements the Architectural Verification Program: the
// pseudo-random test program the paper runs on the emulated model while
// injecting faults. The AVP "executes numerous small testcases of
// pseudo-random instructions"; each testcase ends at a testend barrier
// where the harness compares a signature over the architected registers the
// pass has written so far, plus a digest of the data area, against golden
// values from the architectural reference model — detecting incorrect
// architected state (the paper's rare "BAD ARCH STATE" outcome).
//
// The whole testcase sequence loops forever, so the model can be clocked
// for an arbitrary observation window after an injection.
package avp

import (
	"fmt"
	"math/rand/v2"

	"sfi/internal/archsim"
	"sfi/internal/isa"
	"sfi/internal/mem"
)

// Config parameterizes the generator.
type Config struct {
	Seed      uint64
	Testcases int // testcases per pass
	BodyOps   int // body operations per testcase
	MemBytes  int // must match the core's memory size

	// Weights select body operation classes; they need not sum to 1.
	// The default weights are calibrated so the *dynamic* mix matches the
	// paper's Table 1 AVP column.
	Weights Weights

	// SkipEpilogue omits the per-testcase result-fold epilogue. Workload
	// profiles used purely for instruction-mix and CPI measurement set
	// this; fault-injection AVPs must keep the epilogue (it is the SDC
	// detection mechanism).
	SkipEpilogue bool
}

// Weights are the generator's class-selection weights.
type Weights struct {
	Load, Store, Fixed, Float, Cmp, Branch float64
}

// DefaultConfig returns the standard AVP configuration, with weights
// calibrated to reproduce Table 1's AVP instruction mix.
func DefaultConfig() Config {
	return Config{
		Seed:      0x5eed,
		Testcases: 12,
		BodyOps:   40,
		MemBytes:  256 * 1024,
		Weights: Weights{
			Load:   0.265,
			Store:  0.08,
			Fixed:  0.075,
			Float:  0.0,
			Cmp:    0.05,
			Branch: 0.065,
		},
	}
}

// Testcase records the golden expectations at one testend barrier.
type Testcase struct {
	Index     int
	SigMasked uint64 // masked architected signature
	GPRMask   uint32 // registers the pass has defined by this barrier
	FPRMask   uint32
	SPRMask   uint8
	MemDigest uint64 // digest over [DataLo, DataHi)
}

// Program is a generated AVP with its golden expectations.
type Program struct {
	Words     []uint32
	DataLo    uint64
	DataHi    uint64
	Testcases []Testcase

	// DynCounts is the dynamic instruction count per class over one
	// steady-state pass; DynTotal includes ClassOther.
	DynCounts map[isa.Class]uint64
	DynTotal  uint64

	// GoldenInstPerPass is the retired-instruction count of one pass.
	GoldenInstPerPass uint64
}

// DynMix returns the steady-state dynamic fraction of a class.
func (p *Program) DynMix(c isa.Class) float64 {
	if p.DynTotal == 0 {
		return 0
	}
	return float64(p.DynCounts[c]) / float64(p.DynTotal)
}

const (
	dataBase  = 0x20000 // 128 KiB: testcase data area base
	dataPerTC = 4096    // bytes of private data per testcase (one page,
	// so each testcase occupies its own ERAT entry, as real workloads do)
	workRegs    = 8  // r1..r8 are the working set
	dataReg     = 13 // r13 holds the testcase's data base
	foldReg     = 15 // epilogue fold/staging register
	scratchReg  = 14 // loop counts and helpers
	warmPasses  = 2  // passes before golden recording (steady state)
	maxStepsCap = 4_000_000
)

// Generate builds a program and computes its golden expectations.
func Generate(cfg Config) (*Program, error) {
	if cfg.Testcases < 1 || cfg.BodyOps < 1 {
		return nil, fmt.Errorf("avp: bad config: %d testcases, %d body ops",
			cfg.Testcases, cfg.BodyOps)
	}
	if cfg.Testcases*dataPerTC > 0x18000 {
		return nil, fmt.Errorf("avp: %d testcases exceed the data area", cfg.Testcases)
	}
	g := &progGen{cfg: cfg, rng: rand.New(rand.NewPCG(cfg.Seed, 0xa1f))}
	words := g.emitProgram()

	p := &Program{
		Words:     words,
		DataLo:    dataBase,
		DataHi:    dataBase + uint64(cfg.Testcases*dataPerTC),
		DynCounts: make(map[isa.Class]uint64),
	}
	if err := record(cfg, p); err != nil {
		return nil, err
	}
	return p, nil
}

// MustGenerate is Generate that panics on error, for fixed-config tests.
func MustGenerate(cfg Config) *Program {
	p, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// progGen holds generation state.
type progGen struct {
	cfg      cfgAlias
	rng      *rand.Rand
	insts    []isa.Inst
	writtenG uint32 // registers defined so far in the pass
	writtenF uint32
	crKnown  bool
}

type cfgAlias = Config

func (g *progGen) emit(in isa.Inst) {
	g.insts = append(g.insts, in)
	_, wrG, _, wrF, _, _ := isa.RegSets(in)
	g.writtenG |= wrG
	g.writtenF |= wrF
}

// srcG picks a defined source register (r0 reads as the reset-time zero and
// is never written, so it is always safe).
func (g *progGen) srcG() uint8 {
	var cands []uint8
	for r := uint8(1); r <= workRegs; r++ {
		if g.writtenG&(1<<uint(r)) != 0 {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		return 0
	}
	return cands[g.rng.IntN(len(cands))]
}

func (g *progGen) dstG() uint8 { return uint8(1 + g.rng.IntN(workRegs)) }

func (g *progGen) srcF() (uint8, bool) {
	var cands []uint8
	for r := uint8(1); r < 32; r++ {
		if g.writtenF&(1<<uint(r)) != 0 {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return cands[g.rng.IntN(len(cands))], true
}

func (g *progGen) dataDisp() int32 { return int32(8 * g.rng.IntN(dataPerTC/8)) }

// emitProgram lays out all testcases followed by a loop-back branch.
func (g *progGen) emitProgram() []uint32 {
	for tc := 0; tc < g.cfg.Testcases; tc++ {
		g.emitTestcase(tc)
	}
	// Loop forever over the testcase sequence.
	g.emit(isa.Inst{Op: isa.OpB, Imm: int32(-len(g.insts))})

	words := make([]uint32, len(g.insts))
	for i, in := range g.insts {
		words[i] = isa.Encode(in)
	}
	return words
}

func (g *progGen) emitTestcase(idx int) {
	// Data base for this testcase.
	g.emit(isa.Inst{Op: isa.OpADDIS, RT: dataReg, RA: 0, Imm: dataBase >> 16})
	if idx > 0 {
		g.emit(isa.Inst{Op: isa.OpADDI, RT: dataReg, RA: dataReg, Imm: int32(idx * dataPerTC)})
	}
	// Seed a few working registers (testcase 0 seeds the whole set).
	seeds := 4
	if idx == 0 {
		seeds = workRegs
	}
	for i := 0; i < seeds; i++ {
		g.emit(isa.Inst{Op: isa.OpADDI, RT: uint8(1 + i%workRegs), RA: 0,
			Imm: int32(g.rng.IntN(65536) - 32768)})
	}
	if g.cfg.Weights.Float > 0 && g.writtenF&0b1110 != 0b1110 {
		// Materialize FP working values through memory.
		for i := uint8(1); i <= 3; i++ {
			g.emit(isa.Inst{Op: isa.OpSTD, RT: i, RA: dataReg, Imm: int32(8 * i)})
			g.emit(isa.Inst{Op: isa.OpLFD, RT: i, RA: dataReg, Imm: int32(8 * i)})
		}
	}

	w := g.cfg.Weights
	total := w.Load + w.Store + w.Fixed + w.Float + w.Cmp + w.Branch
	for op := 0; op < g.cfg.BodyOps; op++ {
		x := g.rng.Float64() * total
		switch {
		case x < w.Load:
			g.emitLoad()
		case x < w.Load+w.Store:
			g.emitStore()
		case x < w.Load+w.Store+w.Fixed:
			g.emitFixed()
		case x < w.Load+w.Store+w.Fixed+w.Float:
			g.emitFloat()
		case x < w.Load+w.Store+w.Fixed+w.Float+w.Cmp:
			g.emitCmp()
		default:
			g.emitBranch()
		}
	}
	if !g.cfg.SkipEpilogue {
		g.emitEpilogue()
	}
	g.emit(isa.Inst{Op: isa.OpTESTEND})
}

// epilogue register-coverage masks: the registers whose values the AVP
// actually reads out (through parity-checked datapath instructions) before
// each barrier. Only these participate in the architected signature — the
// AVP checks the results it stores, not latches it never touches.
const (
	epilogueGPRCover = (1<<(workRegs+1) - 2) | 1<<dataReg | 1<<foldReg
	epilogueSPRCover = 0b111 // CR, LR, CTR
)

// emitEpilogue folds every working register and SPR into the testcase's
// data area through real stores, so any corrupted covered register is read
// (and parity-checked) on the way out.
func (g *progGen) emitEpilogue() {
	base := int32(dataPerTC - 16*8)
	for r := uint8(1); r <= workRegs; r++ {
		g.emit(isa.Inst{Op: isa.OpSTD, RT: r, RA: dataReg, Imm: base + int32(8*r)})
	}
	g.emit(isa.Inst{Op: isa.OpMFCTR, RT: foldReg})
	g.emit(isa.Inst{Op: isa.OpSTD, RT: foldReg, RA: dataReg, Imm: base})
	g.emit(isa.Inst{Op: isa.OpMFLR, RT: foldReg})
	g.emit(isa.Inst{Op: isa.OpSTD, RT: foldReg, RA: dataReg, Imm: base + 8*(workRegs+1)})
	// Read the condition register (branch to the fall-through target
	// either way, so control flow is unchanged).
	g.emit(isa.Inst{Op: isa.OpBC, BO: 1, BI: 3, Imm: 1})
}

func (g *progGen) emitLoad() {
	if g.rng.IntN(4) == 0 {
		g.emit(isa.Inst{Op: isa.OpLW, RT: g.dstG(), RA: dataReg, Imm: g.dataDisp()})
		return
	}
	g.emit(isa.Inst{Op: isa.OpLD, RT: g.dstG(), RA: dataReg, Imm: g.dataDisp()})
}

func (g *progGen) emitStore() {
	if g.rng.IntN(4) == 0 {
		g.emit(isa.Inst{Op: isa.OpSTW, RT: g.srcG(), RA: dataReg, Imm: g.dataDisp()})
		return
	}
	g.emit(isa.Inst{Op: isa.OpSTD, RT: g.srcG(), RA: dataReg, Imm: g.dataDisp()})
}

func (g *progGen) emitFixed() {
	ops := []isa.Opcode{isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpDIVD,
		isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpSLD, isa.OpSRD,
		isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI}
	op := ops[g.rng.IntN(len(ops))]
	switch op {
	case isa.OpADDI:
		g.emit(isa.Inst{Op: op, RT: g.dstG(), RA: g.srcG(),
			Imm: int32(g.rng.IntN(65536) - 32768)})
	case isa.OpANDI, isa.OpORI, isa.OpXORI:
		g.emit(isa.Inst{Op: op, RT: g.dstG(), RA: g.srcG(),
			Imm: int32(g.rng.IntN(65536))})
	default:
		g.emit(isa.Inst{Op: op, RT: g.dstG(), RA: g.srcG(), RB: g.srcG()})
	}
}

func (g *progGen) emitFloat() {
	a, okA := g.srcF()
	b, okB := g.srcF()
	if !okA || !okB {
		g.emitFixed()
		return
	}
	ops := []isa.Opcode{isa.OpFADD, isa.OpFSUB, isa.OpFMUL}
	dst := uint8(4 + g.rng.IntN(8))
	g.emit(isa.Inst{Op: ops[g.rng.IntN(len(ops))], RT: dst, RA: a, RB: b})
}

func (g *progGen) emitCmp() {
	switch g.rng.IntN(3) {
	case 0:
		g.emit(isa.Inst{Op: isa.OpCMP, RA: g.srcG(), RB: g.srcG()})
	case 1:
		g.emit(isa.Inst{Op: isa.OpCMPL, RA: g.srcG(), RB: g.srcG()})
	default:
		g.emit(isa.Inst{Op: isa.OpCMPI, RA: g.srcG(),
			Imm: int32(g.rng.IntN(65536) - 32768)})
	}
	g.crKnown = true
}

func (g *progGen) emitBranch() {
	switch g.rng.IntN(4) {
	case 0:
		if !g.crKnown {
			g.emitCmp()
		}
		// Forward conditional skip over one safe instruction.
		g.emit(isa.Inst{Op: isa.OpBC, BO: uint8(g.rng.IntN(2)),
			BI: uint8(g.rng.IntN(3)), Imm: 2})
		g.emitLoad()
	case 1:
		// Small counted loop around a single body op.
		g.emit(isa.Inst{Op: isa.OpADDI, RT: scratchReg, RA: 0,
			Imm: int32(2 + g.rng.IntN(3))})
		g.emit(isa.Inst{Op: isa.OpMTCTR, RA: scratchReg})
		g.emitLoad()
		g.emit(isa.Inst{Op: isa.OpBDNZ, Imm: -1})
	case 2:
		// Call/return pair. Layout (word offsets relative to the bl):
		//   +0: bl +2    call the sub at +2
		//   +1: b  +3    after return, jump past the sub body
		//   +2: addi     the sub body
		//   +3: blr      return to +1
		//   +4: next
		g.emit(isa.Inst{Op: isa.OpBL, Imm: 2})
		g.emit(isa.Inst{Op: isa.OpB, Imm: 3})
		g.emitStore()
		g.emit(isa.Inst{Op: isa.OpBLR})
	default:
		// Plain unconditional forward branch over one instruction.
		g.emit(isa.Inst{Op: isa.OpB, Imm: 2})
		g.emitStore()
	}
}

// record runs the golden model for warm passes plus one recording pass,
// filling in the per-testcase expectations and the dynamic mix.
func record(cfg Config, p *Program) error {
	sim := archsim.New(mem.New(cfg.MemBytes))
	sim.Mem.LoadProgram(0, p.Words)

	warmEnds := warmPasses * cfg.Testcases
	ends := 0
	var gprMask, fprMask uint32
	var sprMask uint8
	recording := false
	var passStartInst uint64

	for steps := 0; steps < maxStepsCap; steps++ {
		res := sim.Step()
		if res.Event == archsim.EventIllegal || res.Event == archsim.EventHalt {
			return fmt.Errorf("avp: golden run hit %v at pc %#x", res.Event, sim.PC)
		}
		in := res.Inst
		if recording {
			p.DynCounts[isa.ClassOf(in.Op)]++
			p.DynTotal++
		}
		_, wrG, _, wrF, _, wrS := isa.RegSets(in)
		gprMask |= wrG
		fprMask |= wrF
		sprMask |= wrS

		if res.Event != archsim.EventTestEnd {
			continue
		}
		if recording {
			gm := gprMask & epilogueGPRCover
			sm := sprMask & epilogueSPRCover
			p.Testcases = append(p.Testcases, Testcase{
				Index:     ends % cfg.Testcases,
				SigMasked: sim.State.MaskedSignature(gm, 0, sm),
				GPRMask:   gm,
				FPRMask:   0,
				SPRMask:   sm,
				MemDigest: sim.Mem.DigestRange(p.DataLo, p.DataHi),
			})
		}
		ends++
		if ends%cfg.Testcases == 0 {
			// Pass boundary: masks reset (a new pass re-defines registers
			// before reading them).
			gprMask, fprMask, sprMask = 0, 0, 0
			if recording {
				p.GoldenInstPerPass = sim.InstCount - passStartInst
				return nil
			}
			if ends == warmEnds {
				recording = true
				passStartInst = sim.InstCount
			}
		}
	}
	return fmt.Errorf("avp: golden run did not finish in %d steps", maxStepsCap)
}
