package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasicProgram(t *testing.T) {
	words, err := Assemble(`
		; initialize
		addi r1, r0, 10
		addi r2, r0, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		cmpi r1, 0
		bc   0, 2, loop   ; loop while not equal
		testend
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 8 {
		t.Fatalf("got %d words, want 8", len(words))
	}
	bc := Decode(words[5])
	if bc.Op != OpBC || bc.Imm != -3 {
		t.Errorf("bc decoded to %+v, want offset -3 to loop", bc)
	}
	if Decode(words[6]).Op != OpTESTEND {
		t.Error("word 6 not testend")
	}
}

func TestAssembleForwardLabel(t *testing.T) {
	words, err := Assemble(`
		b end
		nop
		nop
	end:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	b := Decode(words[0])
	if b.Op != OpB || b.Imm != 3 {
		t.Errorf("b decoded to %+v, want offset 3", b)
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	words, err := Assemble(`
		ld   r1, 8(r2)
		std  r3, -16(r4)
		lfd  f5, 0(r6)
		stfd f7, 24(r8)
		lw   r9, (r10)
	`)
	if err != nil {
		t.Fatal(err)
	}
	ld := Decode(words[0])
	if ld.RT != 1 || ld.RA != 2 || ld.Imm != 8 {
		t.Errorf("ld fields wrong: %+v", ld)
	}
	std := Decode(words[1])
	if std.RT != 3 || std.RA != 4 || std.Imm != -16 {
		t.Errorf("std fields wrong: %+v", std)
	}
	lw := Decode(words[4])
	if lw.RA != 10 || lw.Imm != 0 {
		t.Errorf("lw with empty displacement wrong: %+v", lw)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		frag string
	}{
		{"unknown mnemonic", "frobnicate r1, r2", "unknown mnemonic"},
		{"undefined label", "b nowhere", "undefined label"},
		{"duplicate label", "x:\nnop\nx:\nnop", "duplicate label"},
		{"bad register", "addi r99, r0, 1", "bad register"},
		{"bad operand count", "add r1, r2", "needs 3 operands"},
		{"bad memory operand", "ld r1, r2", "bad memory operand"},
		{"bad immediate", "addi r1, r0, xyz", "bad immediate"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestAssembleSPRMoves(t *testing.T) {
	words, err := Assemble(`
		mtctr r5
		mtlr  r6
		mflr  r7
		mfctr r8
		blr
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in := Decode(words[0]); in.Op != OpMTCTR || in.RA != 5 {
		t.Errorf("mtctr wrong: %+v", in)
	}
	if in := Decode(words[2]); in.Op != OpMFLR || in.RT != 7 {
		t.Errorf("mflr wrong: %+v", in)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus r1")
}

func TestAssembleLabelOnSameLine(t *testing.T) {
	words, err := Assemble("start: nop\nb start")
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 2 {
		t.Fatalf("got %d words, want 2", len(words))
	}
	if in := Decode(words[1]); in.Imm != -1 {
		t.Errorf("b offset = %d, want -1", in.Imm)
	}
}
