package isa

import (
	"strings"
	"testing"
)

func TestDisassembleBasics(t *testing.T) {
	words := MustAssemble(`
		addi r1, r0, 5
	loop:
		addi r1, r1, -1
		cmpi r1, 0
		bc 0, 2, loop
		halt
	`)
	out := Disassemble(0, words)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "addi r1, r0, 5") {
		t.Errorf("line 0: %q", lines[0])
	}
	if !strings.Contains(lines[3], "-> 0x4") {
		t.Errorf("branch target not resolved: %q", lines[3])
	}
	if !strings.Contains(lines[4], "halt") {
		t.Errorf("line 4: %q", lines[4])
	}
}

func TestDisassembleUndefined(t *testing.T) {
	out := Disassemble(0x100, []uint32{0})
	if !strings.Contains(out, "undefined") || !strings.Contains(out, "0x00000100") {
		t.Errorf("out = %q", out)
	}
}

// Property-ish: every assembler-producible instruction disassembles to a
// line that reassembles to the identical word.
func TestDisassembleReassembleProgram(t *testing.T) {
	words := MustAssemble(`
		addi r1, r0, 100
		mtctr r1
	x:	std r1, 8(r13)
		ld  r2, 8(r13)
		fadd f1, f2, f3
		bdnz x
		blr
	`)
	out := Disassemble(0, words)
	for i, line := range strings.Split(strings.TrimSpace(out), "\n") {
		// Strip "addr:  " prefix and any "; ->" comment.
		body := line[strings.Index(line, ":")+1:]
		if j := strings.Index(body, ";"); j >= 0 {
			body = body[:j]
		}
		body = strings.TrimSpace(body)
		re, err := Assemble(body)
		if err != nil {
			t.Fatalf("line %d %q: %v", i, body, err)
		}
		if re[0] != words[i] {
			t.Errorf("line %d: %#x != %#x (%q)", i, re[0], words[i], body)
		}
	}
}
