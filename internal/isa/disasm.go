package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a program's instruction words with addresses, one
// line per word, resolving branch targets to absolute word addresses.
func Disassemble(base uint64, words []uint32) string {
	var sb strings.Builder
	for i, w := range words {
		addr := base + uint64(4*i)
		in := Decode(w)
		text := in.String()
		switch in.Op {
		case OpB, OpBL, OpBC, OpBDNZ:
			target := addr + uint64(int64(in.Imm)*4)
			text = fmt.Sprintf("%s\t; -> %#x", text, target)
		}
		if !in.Op.Valid() {
			text = fmt.Sprintf(".word %#08x\t; undefined", w)
		}
		fmt.Fprintf(&sb, "%#08x:  %s\n", addr, text)
	}
	return sb.String()
}
