package isa

import "fmt"

// Inst is a decoded P6LITE instruction.
//
// Field use by form:
//   - D-form (addi, ld, std, ...): RT, RA, Imm (signed 16-bit, except
//     andi/ori/xori which treat it as an unsigned 16-bit immediate).
//   - X-form (add, fadd, cmp, ...): RT, RA, RB.
//   - Long branches (b, bl): Imm is a signed 26-bit word offset.
//   - Conditional branches (bc): BO (bit 0: branch when the CR bit is SET if
//     1, when CLEAR if 0), BI (CR0 bit index), Imm signed 16-bit word
//     offset. bdnz uses only Imm.
type Inst struct {
	Op     Opcode
	RT     uint8
	RA     uint8
	RB     uint8
	BO     uint8
	BI     uint8
	Imm    int32
	NumRaw uint32 // original encoding when produced by Decode, else 0
}

// Instruction word layout constants.
const (
	opShift = 26
	rtShift = 21
	raShift = 16
	rbShift = 11

	regMask   = 0x1f
	imm16Mask = 0xffff
	off26Mask = 0x03ffffff
)

func signExt16(v uint32) int32 { return int32(int16(uint16(v))) }

func signExt26(v uint32) int32 {
	v &= off26Mask
	if v&(1<<25) != 0 {
		v |= ^uint32(off26Mask)
	}
	return int32(v)
}

// isDForm reports whether op carries a 16-bit immediate with RT/RA fields.
func isDForm(op Opcode) bool {
	switch op {
	case OpADDI, OpADDIS, OpANDI, OpORI, OpXORI,
		OpLD, OpLW, OpSTD, OpSTW, OpLFD, OpSTFD, OpCMPI:
		return true
	}
	return false
}

// isXForm reports whether op is a three-register (or subset) operation.
func isXForm(op Opcode) bool {
	switch op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLD, OpSRD, OpMUL, OpDIVD,
		OpCMP, OpCMPL, OpMTCTR, OpMTLR, OpMFLR, OpMFCTR,
		OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFCMP, OpFMR:
		return true
	}
	return false
}

// Encode packs an instruction into its 32-bit word. It panics on malformed
// instructions (out-of-range registers or offsets), since instructions are
// only built by the assembler and the AVP generator, both of which must emit
// well-formed code.
func Encode(in Inst) uint32 {
	checkReg := func(name string, v uint8) {
		if v > 31 {
			panic(fmt.Sprintf("isa: %s register %d out of range", name, v))
		}
	}
	w := uint32(in.Op) << opShift
	switch {
	case isDForm(in.Op):
		checkReg("rt", in.RT)
		checkReg("ra", in.RA)
		if in.Imm < -32768 || in.Imm > 65535 {
			panic(fmt.Sprintf("isa: immediate %d out of 16-bit range", in.Imm))
		}
		w |= uint32(in.RT) << rtShift
		w |= uint32(in.RA) << raShift
		w |= uint32(in.Imm) & imm16Mask
	case isXForm(in.Op):
		checkReg("rt", in.RT)
		checkReg("ra", in.RA)
		checkReg("rb", in.RB)
		w |= uint32(in.RT) << rtShift
		w |= uint32(in.RA) << raShift
		w |= uint32(in.RB) << rbShift
	case in.Op == OpB || in.Op == OpBL:
		if in.Imm < -(1<<25) || in.Imm >= (1<<25) {
			panic(fmt.Sprintf("isa: branch offset %d out of 26-bit range", in.Imm))
		}
		w |= uint32(in.Imm) & off26Mask
	case in.Op == OpBC:
		if in.BO > 1 || in.BI > 3 {
			panic(fmt.Sprintf("isa: bc bo=%d bi=%d out of range", in.BO, in.BI))
		}
		if in.Imm < -32768 || in.Imm > 32767 {
			panic(fmt.Sprintf("isa: bc offset %d out of 16-bit range", in.Imm))
		}
		w |= uint32(in.BO) << rtShift
		w |= uint32(in.BI) << raShift
		w |= uint32(in.Imm) & imm16Mask
	case in.Op == OpBDNZ:
		if in.Imm < -32768 || in.Imm > 32767 {
			panic(fmt.Sprintf("isa: bdnz offset %d out of 16-bit range", in.Imm))
		}
		w |= uint32(in.Imm) & imm16Mask
	case in.Op == OpBLR, in.Op == OpNOP, in.Op == OpTESTEND, in.Op == OpHALT,
		in.Op == OpIllegal:
		// No operand fields.
	default:
		panic(fmt.Sprintf("isa: cannot encode opcode %v", in.Op))
	}
	return w
}

// Decode unpacks a 32-bit instruction word. Unknown opcodes decode to an
// Inst with the raw opcode preserved; callers detect them via Op.Valid().
func Decode(w uint32) Inst {
	op := Opcode(w >> opShift)
	in := Inst{Op: op, NumRaw: w}
	switch {
	case isDForm(op):
		in.RT = uint8((w >> rtShift) & regMask)
		in.RA = uint8((w >> raShift) & regMask)
		in.Imm = signExt16(w & imm16Mask)
	case isXForm(op):
		in.RT = uint8((w >> rtShift) & regMask)
		in.RA = uint8((w >> raShift) & regMask)
		in.RB = uint8((w >> rbShift) & regMask)
	case op == OpB || op == OpBL:
		in.Imm = signExt26(w)
	case op == OpBC:
		in.BO = uint8((w >> rtShift) & regMask)
		in.BI = uint8((w >> raShift) & regMask)
		in.Imm = signExt16(w & imm16Mask)
	case op == OpBDNZ:
		in.Imm = signExt16(w & imm16Mask)
	}
	return in
}

// UImm returns the immediate interpreted as an unsigned 16-bit value, the
// reading used by the logical immediates andi/ori/xori.
func (in Inst) UImm() uint64 { return uint64(uint16(in.Imm)) }

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch {
	case isDForm(in.Op):
		switch in.Op {
		case OpLD, OpLW, OpSTD, OpSTW, OpLFD, OpSTFD:
			return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.RT, in.Imm, in.RA)
		case OpANDI, OpORI, OpXORI:
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.RT, in.RA, in.UImm())
		case OpCMPI:
			return fmt.Sprintf("cmpi r%d, %d", in.RA, in.Imm)
		default:
			return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.RT, in.RA, in.Imm)
		}
	case isXForm(in.Op):
		switch in.Op {
		case OpMTCTR, OpMTLR:
			return fmt.Sprintf("%s r%d", in.Op, in.RA)
		case OpMFLR, OpMFCTR:
			return fmt.Sprintf("%s r%d", in.Op, in.RT)
		case OpCMP, OpCMPL, OpFCMP:
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.RA, in.RB)
		case OpFMR:
			return fmt.Sprintf("%s f%d, f%d", in.Op, in.RT, in.RB)
		case OpFADD, OpFSUB, OpFMUL, OpFDIV:
			return fmt.Sprintf("%s f%d, f%d, f%d", in.Op, in.RT, in.RA, in.RB)
		default:
			return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.RT, in.RA, in.RB)
		}
	case in.Op == OpB || in.Op == OpBL:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case in.Op == OpBC:
		return fmt.Sprintf("bc %d, %d, %d", in.BO, in.BI, in.Imm)
	case in.Op == OpBDNZ:
		return fmt.Sprintf("bdnz %d", in.Imm)
	default:
		return in.Op.String()
	}
}
