// Package isa defines the P6LITE instruction set: the 64-bit, 32-bit
// fixed-width-encoded, POWER-flavoured ISA executed by both the golden
// architectural simulator (internal/archsim) and the latch-accurate core
// model (internal/proc).
//
// Architected state: 32 64-bit GPRs, 32 64-bit FPRs (IEEE-754 double), a
// 4-bit condition register CR0 (LT, GT, EQ, SO), the link register LR, the
// count register CTR and the program counter. Instructions are one 32-bit
// word; the PC advances in units of 4.
package isa

import "fmt"

// Opcode identifies a P6LITE instruction. Opcode 0 (all-zero word) is
// deliberately illegal, as on real machines, so that wild fetches are
// detectable.
type Opcode uint8

// The P6LITE opcode map.
const (
	OpIllegal Opcode = 0

	// D-form immediate arithmetic.
	OpADDI  Opcode = 1 // rt ← ra + simm
	OpADDIS Opcode = 2 // rt ← ra + (simm << 16)
	OpANDI  Opcode = 3 // rt ← ra & uimm
	OpORI   Opcode = 4 // rt ← ra | uimm
	OpXORI  Opcode = 5 // rt ← ra ^ uimm

	// Loads and stores (D-form, displacement addressing).
	OpLD   Opcode = 6  // rt ← mem64[ra+simm]
	OpLW   Opcode = 7  // rt ← zext32(mem32[ra+simm])
	OpSTD  Opcode = 8  // mem64[ra+simm] ← rt
	OpSTW  Opcode = 9  // mem32[ra+simm] ← rt[31:0]
	OpLFD  Opcode = 10 // frt ← mem64[ra+simm]
	OpSTFD Opcode = 11 // mem64[ra+simm] ← frt

	// X-form register-register fixed point.
	OpADD  Opcode = 12 // rt ← ra + rb
	OpSUB  Opcode = 13 // rt ← ra - rb
	OpAND  Opcode = 14 // rt ← ra & rb
	OpOR   Opcode = 15 // rt ← ra | rb
	OpXOR  Opcode = 16 // rt ← ra ^ rb
	OpSLD  Opcode = 17 // rt ← ra << (rb & 63)
	OpSRD  Opcode = 18 // rt ← ra >> (rb & 63) (logical)
	OpMUL  Opcode = 19 // rt ← low64(ra * rb)
	OpDIVD Opcode = 20 // rt ← ra / rb signed; 0 if rb == 0 or overflow

	// Comparisons (set CR0).
	OpCMP  Opcode = 21 // signed compare ra, rb
	OpCMPI Opcode = 22 // signed compare ra, simm
	OpCMPL Opcode = 23 // unsigned compare ra, rb

	// Branches.
	OpB    Opcode = 24 // pc ← pc + off
	OpBC   Opcode = 25 // conditional on CR0 bit BI, polarity BO bit 0
	OpBL   Opcode = 26 // lr ← pc+4; pc ← pc + off
	OpBLR  Opcode = 27 // pc ← lr
	OpBDNZ Opcode = 28 // ctr--; branch if ctr != 0

	// SPR moves.
	OpMTCTR Opcode = 29 // ctr ← ra
	OpMTLR  Opcode = 30 // lr ← ra
	OpMFLR  Opcode = 31 // rt ← lr
	OpMFCTR Opcode = 32 // rt ← ctr

	// Floating point (X-form over FPRs).
	OpFADD Opcode = 40 // frt ← fra + frb
	OpFSUB Opcode = 41 // frt ← fra - frb
	OpFMUL Opcode = 42 // frt ← fra * frb
	OpFDIV Opcode = 43 // frt ← fra / frb
	OpFCMP Opcode = 44 // CR0 ← compare fra, frb (SO on unordered)
	OpFMR  Opcode = 45 // frt ← frb

	// System.
	OpNOP     Opcode = 58
	OpTESTEND Opcode = 60 // testcase barrier: signature event with r3
	OpHALT    Opcode = 61 // stop the machine

	// NumOpcodes bounds the opcode space (6 bits).
	NumOpcodes = 64
)

// CR0 bit indices.
const (
	CRLT = 0 // less than
	CRGT = 1 // greater than
	CREQ = 2 // equal
	CRSO = 3 // summary overflow / unordered
)

// Class buckets instructions the way the paper's Table 1 does.
type Class int

// Instruction classes; Table 1 reports the first six.
const (
	ClassLoad Class = iota + 1
	ClassStore
	ClassFixed
	ClassFloat
	ClassCmp
	ClassBranch
	ClassOther
)

func (c Class) String() string {
	switch c {
	case ClassLoad:
		return "Load"
	case ClassStore:
		return "Store"
	case ClassFixed:
		return "Fixed Point"
	case ClassFloat:
		return "Floating Point"
	case ClassCmp:
		return "Comparison"
	case ClassBranch:
		return "Branch"
	case ClassOther:
		return "Other"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists every class in Table 1 order.
var Classes = []Class{ClassLoad, ClassStore, ClassFixed, ClassFloat, ClassCmp, ClassBranch}

// ClassOf returns the Table 1 bucket for an opcode.
func ClassOf(op Opcode) Class {
	switch op {
	case OpLD, OpLW, OpLFD:
		return ClassLoad
	case OpSTD, OpSTW, OpSTFD:
		return ClassStore
	case OpADDI, OpADDIS, OpANDI, OpORI, OpXORI,
		OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLD, OpSRD, OpMUL, OpDIVD:
		return ClassFixed
	case OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFMR:
		return ClassFloat
	case OpCMP, OpCMPI, OpCMPL, OpFCMP:
		return ClassCmp
	case OpB, OpBC, OpBL, OpBLR, OpBDNZ:
		return ClassBranch
	default:
		return ClassOther
	}
}

var opNames = map[Opcode]string{
	OpIllegal: "illegal",
	OpADDI:    "addi", OpADDIS: "addis", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpLD: "ld", OpLW: "lw", OpSTD: "std", OpSTW: "stw", OpLFD: "lfd", OpSTFD: "stfd",
	OpADD: "add", OpSUB: "sub", OpAND: "and", OpOR: "or", OpXOR: "xor",
	OpSLD: "sld", OpSRD: "srd", OpMUL: "mul", OpDIVD: "divd",
	OpCMP: "cmp", OpCMPI: "cmpi", OpCMPL: "cmpl",
	OpB: "b", OpBC: "bc", OpBL: "bl", OpBLR: "blr", OpBDNZ: "bdnz",
	OpMTCTR: "mtctr", OpMTLR: "mtlr", OpMFLR: "mflr", OpMFCTR: "mfctr",
	OpFADD: "fadd", OpFSUB: "fsub", OpFMUL: "fmul", OpFDIV: "fdiv",
	OpFCMP: "fcmp", OpFMR: "fmr",
	OpNOP: "nop", OpTESTEND: "testend", OpHALT: "halt",
}

func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// Valid reports whether op is a defined P6LITE opcode.
func (op Opcode) Valid() bool {
	_, ok := opNames[op]
	return ok && op != OpIllegal
}
