package isa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestClassOfCoversEveryValidOpcode(t *testing.T) {
	for op := range opNames {
		if op == OpIllegal {
			continue
		}
		c := ClassOf(op)
		if c < ClassLoad || c > ClassOther {
			t.Errorf("ClassOf(%v) = %v out of range", op, c)
		}
	}
}

func TestClassOfSpecifics(t *testing.T) {
	tests := []struct {
		op   Opcode
		want Class
	}{
		{OpLD, ClassLoad}, {OpLFD, ClassLoad}, {OpLW, ClassLoad},
		{OpSTD, ClassStore}, {OpSTFD, ClassStore},
		{OpADD, ClassFixed}, {OpADDI, ClassFixed}, {OpMUL, ClassFixed},
		{OpFADD, ClassFloat}, {OpFMR, ClassFloat},
		{OpCMP, ClassCmp}, {OpCMPI, ClassCmp}, {OpFCMP, ClassCmp},
		{OpB, ClassBranch}, {OpBC, ClassBranch}, {OpBLR, ClassBranch},
		{OpNOP, ClassOther}, {OpTESTEND, ClassOther}, {OpMTCTR, ClassOther},
	}
	for _, tc := range tests {
		if got := ClassOf(tc.op); got != tc.want {
			t.Errorf("ClassOf(%v) = %v, want %v", tc.op, got, tc.want)
		}
	}
}

func TestEncodeDecodeDForm(t *testing.T) {
	tests := []Inst{
		{Op: OpADDI, RT: 1, RA: 2, Imm: 100},
		{Op: OpADDI, RT: 31, RA: 0, Imm: -32768},
		{Op: OpLD, RT: 5, RA: 6, Imm: 32767},
		{Op: OpSTW, RT: 0, RA: 31, Imm: -4},
		{Op: OpCMPI, RA: 7, Imm: -1},
		{Op: OpORI, RT: 9, RA: 9, Imm: 0x7fff},
	}
	for _, in := range tests {
		got := Decode(Encode(in))
		if got.Op != in.Op || got.RT != in.RT || got.RA != in.RA || got.Imm != in.Imm {
			t.Errorf("round trip %+v -> %+v", in, got)
		}
	}
}

func TestEncodeDecodeXForm(t *testing.T) {
	in := Inst{Op: OpADD, RT: 3, RA: 4, RB: 5}
	got := Decode(Encode(in))
	if got.Op != OpADD || got.RT != 3 || got.RA != 4 || got.RB != 5 {
		t.Errorf("round trip %+v -> %+v", in, got)
	}
}

func TestEncodeDecodeBranches(t *testing.T) {
	tests := []Inst{
		{Op: OpB, Imm: 1000},
		{Op: OpB, Imm: -1000},
		{Op: OpB, Imm: (1 << 25) - 1},
		{Op: OpB, Imm: -(1 << 25)},
		{Op: OpBL, Imm: -3},
		{Op: OpBC, BO: 1, BI: 2, Imm: -8},
		{Op: OpBC, BO: 0, BI: 3, Imm: 12},
		{Op: OpBDNZ, Imm: -2},
		{Op: OpBLR},
	}
	for _, in := range tests {
		got := Decode(Encode(in))
		if got.Op != in.Op || got.Imm != in.Imm || got.BO != in.BO || got.BI != in.BI {
			t.Errorf("round trip %+v -> %+v", in, got)
		}
	}
}

func TestEncodePanicsOnMalformed(t *testing.T) {
	tests := []Inst{
		{Op: OpADDI, RT: 32, RA: 0, Imm: 0},
		{Op: OpADDI, RT: 0, RA: 0, Imm: 1 << 20},
		{Op: OpB, Imm: 1 << 25},
		{Op: OpBC, BO: 2, BI: 0, Imm: 0},
		{Op: OpBC, BO: 0, BI: 4, Imm: 0},
	}
	for _, in := range tests {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%+v) did not panic", in)
				}
			}()
			Encode(in)
		}()
	}
}

func TestUImm(t *testing.T) {
	in := Decode(Encode(Inst{Op: OpORI, RT: 1, RA: 1, Imm: int32(0xffff)}))
	if in.UImm() != 0xffff {
		t.Errorf("UImm = %#x, want 0xffff", in.UImm())
	}
	if in.Imm != -1 {
		t.Errorf("Imm = %d, want -1 (sign extended view)", in.Imm)
	}
}

func TestIllegalOpcodeDetection(t *testing.T) {
	in := Decode(0)
	if in.Op.Valid() {
		t.Error("all-zero word decoded as valid")
	}
	in = Decode(uint32(50) << opShift) // unassigned opcode
	if in.Op.Valid() {
		t.Error("unassigned opcode 50 decoded as valid")
	}
	if !OpADD.Valid() {
		t.Error("OpADD reported invalid")
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADDI, RT: 1, RA: 2, Imm: -5}, "addi r1, r2, -5"},
		{Inst{Op: OpLD, RT: 3, RA: 4, Imm: 16}, "ld r3, 16(r4)"},
		{Inst{Op: OpADD, RT: 1, RA: 2, RB: 3}, "add r1, r2, r3"},
		{Inst{Op: OpCMP, RA: 1, RB: 2}, "cmp r1, r2"},
		{Inst{Op: OpFADD, RT: 1, RA: 2, RB: 3}, "fadd f1, f2, f3"},
		{Inst{Op: OpB, Imm: -7}, "b -7"},
		{Inst{Op: OpBLR}, "blr"},
		{Inst{Op: OpTESTEND}, "testend"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

// randomValidInst builds a random well-formed instruction for property tests.
func randomValidInst(rng *rand.Rand) Inst {
	ops := make([]Opcode, 0, len(opNames))
	for op := range opNames {
		if op != OpIllegal {
			ops = append(ops, op)
		}
	}
	// Sort for determinism of choice given the rng stream.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j] < ops[j-1]; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	op := ops[rng.IntN(len(ops))]
	in := Inst{Op: op}
	switch {
	case op == OpCMPI:
		in.RA = uint8(rng.IntN(32))
		in.Imm = int32(rng.IntN(65536) - 32768)
	case isDForm(op):
		in.RT = uint8(rng.IntN(32))
		in.RA = uint8(rng.IntN(32))
		in.Imm = int32(rng.IntN(65536) - 32768)
	case op == OpMTCTR || op == OpMTLR:
		in.RA = uint8(rng.IntN(32))
	case op == OpMFLR || op == OpMFCTR:
		in.RT = uint8(rng.IntN(32))
	case op == OpCMP || op == OpCMPL || op == OpFCMP:
		in.RA = uint8(rng.IntN(32))
		in.RB = uint8(rng.IntN(32))
	case op == OpFMR:
		in.RT = uint8(rng.IntN(32))
		in.RB = uint8(rng.IntN(32))
	case isXForm(op):
		in.RT = uint8(rng.IntN(32))
		in.RA = uint8(rng.IntN(32))
		in.RB = uint8(rng.IntN(32))
	case op == OpB || op == OpBL:
		in.Imm = int32(rng.IntN(1<<26) - (1 << 25))
	case op == OpBC:
		in.BO = uint8(rng.IntN(2))
		in.BI = uint8(rng.IntN(4))
		in.Imm = int32(rng.IntN(65536) - 32768)
	case op == OpBDNZ:
		in.Imm = int32(rng.IntN(65536) - 32768)
	}
	return in
}

// Property: Encode/Decode round-trips every well-formed instruction.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		for i := 0; i < 50; i++ {
			in := randomValidInst(rng)
			got := Decode(Encode(in))
			got.NumRaw = 0
			if got != in {
				t.Logf("mismatch: %+v -> %+v", in, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: assembling the String() of an instruction reproduces it.
func TestQuickAsmDisasmRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		in := randomValidInst(rng)
		// String renders bdnz/bc label offsets numerically, which the
		// assembler accepts, so a full round trip must hold.
		words, err := Assemble(in.String())
		if err != nil {
			t.Logf("assemble %q: %v", in.String(), err)
			return false
		}
		if len(words) != 1 {
			return false
		}
		got := Decode(words[0])
		got.NumRaw = 0
		// andi/ori/xori String() prints the unsigned view; on reassembly
		// parseImm yields a value whose low 16 bits match.
		if got.Op != in.Op {
			return false
		}
		return Encode(got) == Encode(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
