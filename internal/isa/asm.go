package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates P6LITE assembly text into instruction words.
//
// Syntax, one instruction per line:
//
//	loop:              ; a label
//	  addi r1, r0, 10  # comments start with ';' or '#'
//	  ld   r2, 8(r5)
//	  cmp  r1, r2
//	  bc   1, 2, done  ; branch to label if CR0[EQ] set
//	  b    loop
//	done:
//	  testend
//
// Branch targets may be labels or literal signed word offsets.
func Assemble(src string) ([]uint32, error) {
	return assemble(src)
}

var nameToOp = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

func assemble(src string) ([]uint32, error) {
	type pending struct {
		lineNo int
		pc     int
		inst   Inst
		label  string
	}

	labels := make(map[string]int)
	var insts []Inst
	var fixups []pending

	lines := strings.Split(src, "\n")
	pc := 0
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = pc
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}

		inst, labelRef, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{lineNo + 1, pc, inst, labelRef})
		}
		insts = append(insts, inst)
		pc++
	}

	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", f.lineNo, f.label)
		}
		insts[f.pc].Imm = int32(target - f.pc)
	}

	words := make([]uint32, len(insts))
	for i, in := range insts {
		words[i] = Encode(in)
	}
	return words, nil
}

// MustAssemble is Assemble that panics on error, for tests and examples with
// constant source text.
func MustAssemble(src string) []uint32 {
	w, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return w
}

func parseInst(line string) (Inst, string, error) {
	fields := strings.Fields(line)
	mn := strings.ToLower(fields[0])
	args := strings.Join(fields[1:], " ")
	var ops []string
	if args != "" {
		for _, a := range strings.Split(args, ",") {
			ops = append(ops, strings.TrimSpace(a))
		}
	}

	op, found := nameToOp[mn]
	if !found {
		return Inst{}, "", fmt.Errorf("unknown mnemonic %q", mn)
	}

	in := Inst{Op: op}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	switch {
	case op == OpLD || op == OpLW || op == OpSTD || op == OpSTW ||
		op == OpLFD || op == OpSTFD:
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		imm, ra, err := parseMem(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		in.RT, in.RA, in.Imm = rt, ra, imm
	case isDForm(op): // addi, addis, andi, ori, xori, cmpi
		if op == OpCMPI {
			if err := need(2); err != nil {
				return Inst{}, "", err
			}
			ra, err := parseReg(ops[0])
			if err != nil {
				return Inst{}, "", err
			}
			imm, err := parseImm(ops[1])
			if err != nil {
				return Inst{}, "", err
			}
			in.RA, in.Imm = ra, imm
			break
		}
		if err := need(3); err != nil {
			return Inst{}, "", err
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return Inst{}, "", err
		}
		in.RT, in.RA, in.Imm = rt, ra, imm
	case op == OpCMP || op == OpCMPL || op == OpFCMP:
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		rb, err := parseReg(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		in.RA, in.RB = ra, rb
	case op == OpMTCTR || op == OpMTLR:
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		in.RA = ra
	case op == OpMFLR || op == OpMFCTR:
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		in.RT = rt
	case op == OpFMR:
		if err := need(2); err != nil {
			return Inst{}, "", err
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		rb, err := parseReg(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		in.RT, in.RB = rt, rb
	case isXForm(op): // add..divd, fadd..fdiv
		if err := need(3); err != nil {
			return Inst{}, "", err
		}
		rt, err := parseReg(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		rb, err := parseReg(ops[2])
		if err != nil {
			return Inst{}, "", err
		}
		in.RT, in.RA, in.RB = rt, ra, rb
	case op == OpB || op == OpBL || op == OpBDNZ:
		if err := need(1); err != nil {
			return Inst{}, "", err
		}
		if imm, err := parseImm(ops[0]); err == nil {
			in.Imm = imm
			return in, "", nil
		}
		return in, ops[0], nil
	case op == OpBC:
		if err := need(3); err != nil {
			return Inst{}, "", err
		}
		bo, err := parseImm(ops[0])
		if err != nil {
			return Inst{}, "", err
		}
		bi, err := parseImm(ops[1])
		if err != nil {
			return Inst{}, "", err
		}
		in.BO, in.BI = uint8(bo), uint8(bi)
		if imm, err := parseImm(ops[2]); err == nil {
			in.Imm = imm
			return in, "", nil
		}
		return in, ops[2], nil
	case op == OpBLR || op == OpNOP || op == OpTESTEND || op == OpHALT ||
		op == OpIllegal:
		if err := need(0); err != nil {
			return Inst{}, "", err
		}
	default:
		return Inst{}, "", fmt.Errorf("unhandled mnemonic %q", mn)
	}
	return in, "", nil
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'f') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	n, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(n), nil
}

// parseMem parses "disp(rN)" displacement addressing.
func parseMem(s string) (int32, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	imm := int32(0)
	if dispStr != "" {
		v, err := parseImm(dispStr)
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	ra, err := parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return imm, ra, nil
}
