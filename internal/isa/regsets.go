package isa

// RegSets returns the register read and write sets of an instruction as bit
// masks: GPRs and FPRs by register number, SPRs with bit 0 = CR0, bit 1 =
// LR, bit 2 = CTR. The core model uses these for hazard interlocks; the AVP
// generator uses them to track which registers a testcase has defined.
func RegSets(in Inst) (rdG, wrG uint32, rdF, wrF uint32, rdS, wrS uint8) {
	g := func(r uint8) uint32 { return 1 << uint(r) }
	switch in.Op {
	case OpADDI, OpADDIS, OpANDI, OpORI, OpXORI:
		rdG, wrG = g(in.RA), g(in.RT)
	case OpLD, OpLW:
		rdG, wrG = g(in.RA), g(in.RT)
	case OpSTD, OpSTW:
		rdG = g(in.RA) | g(in.RT)
	case OpLFD:
		rdG, wrF = g(in.RA), g(in.RT)
	case OpSTFD:
		rdG, rdF = g(in.RA), g(in.RT)
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSLD, OpSRD, OpMUL, OpDIVD:
		rdG, wrG = g(in.RA)|g(in.RB), g(in.RT)
	case OpCMP, OpCMPL:
		rdG, wrS = g(in.RA)|g(in.RB), 1
	case OpCMPI:
		rdG, wrS = g(in.RA), 1
	case OpB:
		// no registers
	case OpBL:
		wrS = 2
	case OpBC:
		rdS = 1
	case OpBLR:
		rdS = 2
	case OpBDNZ:
		rdS, wrS = 4, 4
	case OpMTCTR:
		rdG, wrS = g(in.RA), 4
	case OpMTLR:
		rdG, wrS = g(in.RA), 2
	case OpMFLR:
		rdS, wrG = 2, g(in.RT)
	case OpMFCTR:
		rdS, wrG = 4, g(in.RT)
	case OpFADD, OpFSUB, OpFMUL, OpFDIV:
		rdF, wrF = g(in.RA)|g(in.RB), g(in.RT)
	case OpFMR:
		rdF, wrF = g(in.RB), g(in.RT)
	case OpFCMP:
		rdF, wrS = g(in.RA)|g(in.RB), 1
	}
	return rdG, wrG, rdF, wrF, rdS, wrS
}
