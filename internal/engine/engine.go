// Package engine is the backend-neutral seam between the SFI campaign
// framework (internal/core) and the machine models it injects into. The
// paper's methodology needs only five capabilities from the Awan engine —
// enumerate state bits, checkpoint/reload, inject, clock, observe — and
// this package states exactly that contract as the Backend interface, plus
// a config-driven registry so campaigns select a model fidelity by name:
// the latch-accurate "p6lite" core model (internal/emu + internal/proc) or
// the gate-level "awan" netlist engine (internal/awan). Everything above
// this seam — sampling, sharding, warm-clone workers, dirty-restore
// checkpoints, metrics/trace/progress, distributed execution — is backend
// agnostic and inherited by every backend for free.
package engine

import (
	"sfi/internal/latch"
	"sfi/internal/obs"
)

// Mode selects how long an injected fault is forced.
type Mode int

// Injection modes (paper section 2: "the fault may exist for the duration
// of a cycle (toggle mode) or for a larger number of cycles (sticky mode)").
const (
	Toggle Mode = iota + 1
	Sticky
)

func (m Mode) String() string {
	if m == Toggle {
		return "toggle"
	}
	return "sticky"
}

// Injection describes one latch fault.
type Injection struct {
	Bit  int  // logical latch-bit index in the backend's latch database
	Mode Mode // toggle: flip once; sticky: hold the flipped value
	// Duration is the number of cycles a sticky fault is held
	// (0 = held for the rest of the run).
	Duration int
	// Span flips Span adjacent logical bits starting at Bit (clipped to
	// the population) — a multi-bit upset. 0 and 1 both mean single-bit.
	// Sticky mode holds only the first bit of a span.
	Span int
}

// Event reports what one clocked cycle did.
type Event struct {
	// Barrier: the workload reached a verification barrier (a testend for
	// the AVP-driven core model, an operation boundary for the gate-level
	// stimulus) at which architected state can be checked against golden.
	Barrier bool
	Halted  bool
}

// RunStats summarizes a monitored run.
type RunStats struct {
	Cycles     uint64 // cycles actually clocked
	Barriers   int    // verification barriers retired
	Halted     bool
	Checkstop  bool
	Hang       bool // the backend's hang detector fired and gave up
	NoProgress bool // harness watchdog: loss of forward progress
}

// BarrierCheck is the backend's verdict at one verification barrier.
type BarrierCheck struct {
	// StateOK: the architected state matches the workload's golden
	// reference at this barrier. False means silent data corruption.
	StateOK bool
	// Busy: error-handling activity (recovery, retry) happened since the
	// previous barrier; quiesce-based early exit must not count this
	// barrier as clean.
	Busy bool
}

// Verdict is the backend's post-run machine-check summary, polled once
// after the observation window — the paper's FIR/status sweep.
type Verdict struct {
	Checkstop bool
	// Detected: some checker observed the fault; FirstChecker names the
	// first one to post and DetectCycle is the cycle it posted at.
	Detected     bool
	FirstChecker string
	DetectCycle  uint64
	// Recoveries counts error-recovery actions during the window.
	Recoveries uint64
	// Corrected: the machine corrected an error without a full recovery
	// (array scrub, FIR-only posts).
	Corrected bool
}

// Checkpoint is an opaque backend-defined model snapshot.
type Checkpoint any

// Backend is one injectable machine model. A Backend is single-goroutine
// (campaigns give every worker its own via Clone); construction leaves it
// warmed to workload steady state with a set of phased checkpoints spread
// across the workload (Phases), so injections sample "realistic
// conditions" rather than one fixed machine state.
type Backend interface {
	// DB exposes the backend's latch population: bit enumeration for
	// sampling and per-bit metadata (group, unit, latch type).
	DB() *latch.DB

	// Phases returns the number of phased checkpoints; ReloadPhase
	// restores the model (and the backend's workload tracking) to one of
	// them. TakeCheckpoint/Reload are the generic save/restore pair for
	// callers managing their own snapshots.
	Phases() int
	ReloadPhase(p int)
	TakeCheckpoint() Checkpoint
	Reload(ck Checkpoint)

	// Step clocks one machine cycle, maintaining any sticky force.
	Step() Event

	// Inject applies a fault at the current cycle.
	Inject(inj Injection) error

	// Run clocks up to maxCycles, invoking onBarrier at every
	// verification barrier (returning false from the callback stops the
	// run); it also stops on checkstop, halt, hang or loss of progress.
	Run(maxCycles int, onBarrier func() bool) RunStats

	// CheckBarrier compares architected state against the workload's
	// golden reference for the barrier just retired. Only valid from
	// inside a Run barrier callback.
	CheckBarrier() BarrierCheck

	// Verdict polls the machine-check state after a run.
	Verdict() Verdict

	// FIRNames returns the names of the checkers whose fault-isolation
	// bits are currently set, for structured trace events.
	FIRNames() []string

	// Cycle returns the current machine cycle.
	Cycle() uint64

	// Clone duplicates a warmed backend without re-running warm-up,
	// sharing only immutable state (checkpoints, programs) so clones run
	// injections concurrently. Cloning may read the source's live model
	// state, so it must happen while the source is quiescent — concurrent
	// clones of one idle prototype are fine, cloning a backend that is
	// mid-run is not (campaign fan-out holds the prototype until every
	// worker has cloned).
	Clone() Backend

	// SetObs attaches a metrics collector (nil detaches, the default).
	SetObs(m *obs.Metrics)
}

// BatchInjection is one fault lane of a batched pass: the injection itself
// plus the per-lane phase-jitter delay (cycles after the checkpoint reload
// at which the flip is applied).
type BatchInjection struct {
	Inj   Injection
	Delay int
}

// BatchResult is one fault lane's outcome from RunBatch, carrying exactly
// the observations the scalar protocol extracts per injection: the run
// stats, the post-run machine verdict, whether the lane's architected
// state diverged from golden at a barrier (SDC), and the cycle the fault
// was applied at (for detection-latency computation).
type BatchResult struct {
	Stats       RunStats
	Verdict     Verdict
	SDC         bool
	InjectCycle uint64
}

// BatchBackend is the optional bit-parallel extension of Backend: a model
// whose value plane carries many independent simulation lanes in lockstep,
// so one combinational evaluation advances a whole batch of injections —
// classic parallel-pattern fault simulation. Scalar backends simply don't
// implement it; campaign workers detect it dynamically and fall back to
// per-injection Run otherwise. Per-lane classification must be
// semantically identical to running each injection through the scalar
// protocol (the equivalence is test- and CI-gated).
type BatchBackend interface {
	Backend

	// MaxBatch returns the number of independent fault lanes one RunBatch
	// pass can carry (the word width minus the golden lane). 0 disables
	// batching.
	MaxBatch() int

	// RunBatch restores phased checkpoint p once, then runs every given
	// injection in its own fault lane against the shared golden lane:
	// lane k's fault is applied after injs[k].Delay cycles, and each lane
	// independently observes the scalar protocol's stopping rules —
	// divergence at a barrier (SDC), checker detection (checkstop),
	// quiesce consecutive clean barriers, or the window expiring. Lanes
	// beyond len(injs) stay masked off (identical to golden), so a short
	// final batch cannot skew classification.
	RunBatch(p int, injs []BatchInjection, window, quiesce int) ([]BatchResult, error)
}

// BatchStats describes the phase breakdown of the most recent RunBatch
// pass: how long the shared checkpoint restore took versus the lockstep
// run, how far the pass stepped, and how many lanes exited through the
// quiesce rule. The campaign tracer stamps these onto per-batch spans so
// a trace attributes pass latency to restore vs propagation.
type BatchStats struct {
	RestoreNs int64 // shared phased-checkpoint reload
	RunNs     int64 // lockstep stepping until the last lane retired
	Cycles    int   // machine cycles stepped since the reload
	Barriers  int   // AVP barriers retired during the pass
	Quiesced  int   // lanes that exited via consecutive clean barriers
}

// BatchStatsReporter is optionally implemented by batch backends that can
// break a pass into its phases. LastBatchStats returns the stats of the
// most recent RunBatch call on this backend instance (not safe to
// interleave with concurrent RunBatch calls on the same instance — one
// runner owns one backend, as everywhere else).
type BatchStatsReporter interface {
	LastBatchStats() BatchStats
}

// Splitmix64 is the shared per-bit hash: it deterministically assigns each
// injection its workload phase (and drives backend stimulus generation),
// independent of worker scheduling or process boundaries.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
