package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// ImageDigest is the content address of the warm checkpoint image a Config
// builds: two configs with the same digest produce byte-identical warmed,
// checkpointed backends (warm-up and checkpointing are deterministic
// functions of the config), so a cached image built for one campaign can be
// cloned into any other campaign with the same digest. The digest is the
// SHA-256 of the config's canonical JSON encoding with the backend name
// resolved ("" and "p6lite" are the same image). Config is all plain data
// (no maps, fixed field order), so the encoding — and the digest — is
// deterministic across processes.
func ImageDigest(cfg Config) string {
	cfg.Backend = Resolve(cfg.Backend)
	data, err := json.Marshal(cfg)
	if err != nil {
		// Config is plain serializable data by contract (it crosses the
		// dist wire); a marshal failure is a programming error.
		panic("engine: config not serializable: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
