package engine

import (
	"sfi/internal/avp"
	"sfi/internal/proc"
)

// Config parameterizes one injection backend. It is the wire-serializable
// runner description (dist.CampaignSpec embeds it), so every field must
// survive a JSON round-trip.
type Config struct {
	// Backend selects the registered engine backend by name; "" means
	// DefaultBackend ("p6lite", the latch-accurate core model).
	Backend string `json:",omitempty"`

	Proc proc.Config
	AVP  avp.Config

	// Window is the post-injection observation budget in cycles. The
	// paper clocks 500,000 cycles per injection; the default here is
	// smaller with quiesce-based early exit (see the ablation bench).
	Window int

	// QuiesceExit ends an injection run early once this many consecutive
	// verification barriers pass cleanly with no new error activity
	// between them. 0 disables early exit (the paper's fixed-window
	// behaviour).
	QuiesceExit int

	// CheckersOn masks (false) or enables (true) every hardware checker —
	// the paper's Table 3 Raw-vs-Check configurations.
	CheckersOn bool

	// RecoveryOn disables the RUT when false (ablation).
	RecoveryOn bool

	// Mode selects toggle or sticky injection; StickyCycles bounds a
	// sticky fault's lifetime (0 = permanent).
	Mode         Mode
	StickyCycles int

	// SpanBits > 1 injects multi-bit upsets: each injection flips
	// SpanBits adjacent latch bits (clipped at the population edge).
	SpanBits int

	// BatchLanes bounds the simulation-lane word width a batch-capable
	// backend (BatchBackend) uses per pass, including the golden lane:
	// 64 packs 63 faults per model evaluation, 1 forces the scalar
	// one-injection-per-pass path, 0 means the backend's maximum (64).
	// Scalar backends ignore it.
	BatchLanes int `json:",omitempty"`

	// Awan parameterizes the gate-level "awan" backend; other backends
	// ignore it.
	Awan AwanConfig `json:",omitempty"`
}

// AwanConfig sizes the gate-level backend's design under test: Lanes
// independent checked-ALU macros (internal/awan.BuildCheckedALU) of Width
// bits each, driven in lockstep by a deterministic operand stream. The
// injectable population is Lanes × (3·Width + 2) latch bits.
type AwanConfig struct {
	// Width is the ALU operand width in bits (default 16, max 64).
	Width int `json:",omitempty"`
	// Lanes is the number of checked-ALU instances (default 32).
	Lanes int `json:",omitempty"`
}

// DefaultConfig returns the standard SFI configuration (the p6lite core
// model under the AVP workload).
func DefaultConfig() Config {
	return Config{
		Proc:        proc.DefaultConfig(),
		AVP:         avp.DefaultConfig(),
		Window:      50_000,
		QuiesceExit: 2,
		CheckersOn:  true,
		RecoveryOn:  true,
		Mode:        Toggle,
	}
}
