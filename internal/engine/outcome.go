package engine

import "fmt"

// Outcome classifies the destiny of one injected bit flip (the paper's
// Figure 1 vocabulary). It lives at the engine layer so every backend —
// latch-level and gate-level alike — classifies into the same taxonomy;
// internal/core re-exports it as core.Outcome.
type Outcome int

// Outcomes. SDC is the "BAD ARCH STATE" flag: the workload's golden
// reference found incorrect architected state.
const (
	Vanished Outcome = iota + 1
	Corrected
	Hang
	Checkstop
	SDC
)

// Outcomes lists all outcomes in reporting order.
var Outcomes = []Outcome{Vanished, Corrected, Hang, Checkstop, SDC}

func (o Outcome) String() string {
	switch o {
	case Vanished:
		return "vanished"
	case Corrected:
		return "corrected"
	case Hang:
		return "hang"
	case Checkstop:
		return "checkstop"
	case SDC:
		return "sdc"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}
