// Package p6lite adapts the latch-accurate POWER6-style core model
// (internal/proc driven by internal/emu under the AVP workload) as the
// default engine backend. Construction generates the AVP, warms the model
// to workload steady state, installs the dirty-tracking restore baseline
// and captures one phased checkpoint per testcase boundary; verification
// barriers are AVP testends, checked against the program's golden
// signatures and memory digests.
package p6lite

import (
	"fmt"

	"sfi/internal/avp"
	"sfi/internal/emu"
	"sfi/internal/engine"
	"sfi/internal/latch"
	"sfi/internal/obs"
	"sfi/internal/proc"
)

// Name is the backend's registry name.
const Name = "p6lite"

func init() {
	engine.Register(Name, New)
	engine.RegisterCensus(Name, census)
}

// census enumerates the latch population without generating the AVP or
// warming the model: the core's latch inventory depends only on the proc
// configuration, so a fresh (cold) core's database is the full census.
func census(cfg engine.Config) (*latch.DB, error) {
	return proc.New(cfg.Proc).DB(), nil
}

// phasedCheckpoint is a model snapshot taken at one point of the AVP pass.
type phasedCheckpoint struct {
	ck     *proc.ModelCheckpoint
	nextTC int // testcase index expected at the next testend barrier
}

// Backend owns one emulated core model warmed for repeated injections.
type Backend struct {
	cfg  engine.Config
	eng  *emu.Engine
	prog *avp.Program

	ckpts     []phasedCheckpoint
	baseRecov uint64

	// nextTC is the testcase index expected at the next testend barrier;
	// Step and CheckBarrier rotate it as barriers retire.
	nextTC int
	// lastActivity is the recovery count at injection time, the baseline
	// for the quiesce busy check.
	lastActivity uint64
}

// New builds, warms and checkpoints a backend.
func New(cfg engine.Config) (engine.Backend, error) {
	if cfg.AVP.MemBytes != cfg.Proc.MemBytes {
		cfg.AVP.MemBytes = cfg.Proc.MemBytes
	}
	prog, err := avp.Generate(cfg.AVP)
	if err != nil {
		return nil, err
	}
	c := proc.New(cfg.Proc)
	c.Mem().LoadProgram(0, prog.Words)
	c.SetCheckersEnabled(cfg.CheckersOn)
	c.SetRecoveryEnabled(cfg.RecoveryOn)
	eng := emu.New(c)

	// Warm: two full passes reach AVP steady state (memory and registers
	// in their periodic regime).
	warmEnds := 2 * cfg.AVP.Testcases
	ends := 0
	for guard := 0; ends < warmEnds; guard++ {
		if guard > 50_000_000 {
			return nil, fmt.Errorf("p6lite: warm-up did not converge")
		}
		if eng.Step().TestEnd {
			ends++
		}
	}
	// Install the dirty-tracking restore baseline at steady state: the
	// phased checkpoints below are captured as sparse deltas against it,
	// and every per-injection reload rewrites only the state that differs.
	c.InstallRestoreBaseline()
	b := &Backend{
		cfg:       cfg,
		eng:       eng,
		prog:      prog,
		baseRecov: c.Recoveries,
	}
	// One checkpoint per testcase boundary across a third full pass.
	for i := 0; i < cfg.AVP.Testcases; i++ {
		b.ckpts = append(b.ckpts, phasedCheckpoint{
			ck:     eng.TakeCheckpoint(),
			nextTC: ends % cfg.AVP.Testcases,
		})
		for guard := 0; ; guard++ {
			if guard > 50_000_000 {
				return nil, fmt.Errorf("p6lite: checkpoint pass did not converge")
			}
			if eng.Step().TestEnd {
				ends++
				break
			}
		}
	}
	return b, nil
}

// Clone duplicates a warmed backend without re-generating the AVP or
// re-running the warm-up and checkpoint passes: it builds a fresh model,
// adopts the prototype's restore baseline (shared read-only) and reloads
// the first phased checkpoint. The clone shares the prototype's immutable
// checkpoints and program but owns all mutable model state, so prototype
// and clones can run injections concurrently.
func (b *Backend) Clone() engine.Backend {
	c := proc.New(b.cfg.Proc)
	c.SetCheckersEnabled(b.cfg.CheckersOn)
	c.SetRecoveryEnabled(b.cfg.RecoveryOn)
	c.AdoptBaselineFrom(b.eng.Core())
	eng := emu.New(c)
	nb := &Backend{
		cfg:       b.cfg,
		eng:       eng,
		prog:      b.prog,
		ckpts:     b.ckpts,
		baseRecov: b.baseRecov,
		nextTC:    b.ckpts[0].nextTC,
	}
	// Synchronize counters and capture state with a (dirty-path) reload.
	eng.ReloadFrom(b.ckpts[0].ck)
	return nb
}

// Core exposes the underlying model (bench and experiment access; the
// campaign layer stays behind the Backend interface).
func (b *Backend) Core() *proc.Core { return b.eng.Core() }

// Program exposes the AVP running on the model.
func (b *Backend) Program() *avp.Program { return b.prog }

// DB exposes the model's latch database.
func (b *Backend) DB() *latch.DB { return b.eng.Core().DB() }

// Phases returns the phased-checkpoint count (one per AVP testcase).
func (b *Backend) Phases() int { return len(b.ckpts) }

// ReloadPhase restores phased checkpoint p and its testcase tracking.
func (b *Backend) ReloadPhase(p int) {
	ph := b.ckpts[p]
	b.eng.ReloadFrom(ph.ck)
	b.nextTC = ph.nextTC
}

// ckpt pairs a model checkpoint with its barrier tracking.
type ckpt struct {
	ck     *proc.ModelCheckpoint
	nextTC int
}

// TakeCheckpoint captures the model state and barrier tracking.
func (b *Backend) TakeCheckpoint() engine.Checkpoint {
	return ckpt{ck: b.eng.TakeCheckpoint(), nextTC: b.nextTC}
}

// Reload restores a TakeCheckpoint snapshot.
func (b *Backend) Reload(c engine.Checkpoint) {
	k := c.(ckpt)
	b.eng.ReloadFrom(k.ck)
	b.nextTC = k.nextTC
}

// Step clocks one cycle, rotating the expected-testcase index at barriers.
func (b *Backend) Step() engine.Event {
	ev := b.eng.Step()
	if ev.TestEnd {
		b.nextTC = (b.nextTC + 1) % b.cfg.AVP.Testcases
	}
	return engine.Event{Barrier: ev.TestEnd, Halted: ev.Halted}
}

// Inject applies the fault and snapshots the recovery count as the quiesce
// baseline for CheckBarrier's busy test.
func (b *Backend) Inject(inj engine.Injection) error {
	if err := b.eng.Inject(inj); err != nil {
		return err
	}
	b.lastActivity = b.eng.Core().Recoveries
	return nil
}

// Run clocks up to maxCycles under the emulation engine's monitored run
// (checkstop, hang and forward-progress watchdogs included).
func (b *Backend) Run(maxCycles int, onBarrier func() bool) engine.RunStats {
	st := b.eng.Run(maxCycles, onBarrier)
	return engine.RunStats{
		Cycles:     st.Cycles,
		Barriers:   st.TestEnds,
		Halted:     st.Halted,
		Checkstop:  st.Checkstop,
		Hang:       st.Hang,
		NoProgress: st.NoProgress,
	}
}

// CheckBarrier verifies architected state against the retiring testcase's
// golden signature and memory digest, and reports whether recovery
// activity happened since the previous barrier.
func (b *Backend) CheckBarrier() engine.BarrierCheck {
	tc := b.prog.Testcases[b.nextTC]
	b.nextTC = (b.nextTC + 1) % b.cfg.AVP.Testcases
	c := b.eng.Core()
	st := c.ArchState()
	sigOK := st.MaskedSignature(tc.GPRMask, tc.FPRMask, tc.SPRMask) == tc.SigMasked
	memOK := c.Mem().DigestRange(b.prog.DataLo, b.prog.DataHi) == tc.MemDigest
	busy := c.Recoveries != b.lastActivity || c.InRecovery()
	if busy {
		b.lastActivity = c.Recoveries
	}
	return engine.BarrierCheck{StateOK: sigOK && memOK, Busy: busy}
}

// Verdict polls the machine-check state: checkstop, first-error trace,
// recovery count since construction, and correction evidence.
func (b *Backend) Verdict() engine.Verdict {
	c := b.eng.Core()
	v := engine.Verdict{
		Checkstop:  c.Checkstopped(),
		Recoveries: c.Recoveries - b.baseRecov,
		Corrected:  c.ArrayCorrectedCount() > 0 || c.AnyFIR(),
	}
	if id, cyc, ok := c.FirstError(); ok {
		v.Detected = true
		v.FirstChecker = c.CheckerByID(id).Name
		v.DetectCycle = cyc
	}
	return v
}

// FIRNames returns the names of the checkers whose FIR bits are set.
func (b *Backend) FIRNames() []string { return b.eng.FIRNames() }

// Cycle returns the current machine cycle.
func (b *Backend) Cycle() uint64 { return b.eng.Core().Cycle }

// SetObs attaches a metrics collector to the engine and core.
func (b *Backend) SetObs(m *obs.Metrics) { b.eng.SetObs(m) }
