package p6lite

import (
	"testing"

	"sfi/internal/engine"
)

func benchConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.AVP.Testcases = 6
	cfg.AVP.BodyOps = 14
	return cfg
}

// BenchmarkRestoreCheckpoint compares the dirty-tracking restore fast path
// against the full-copy slow path at the default memory size. Each
// iteration perturbs the model the way an injection does (flip + a short
// run) before restoring, so the dirty path pays a realistic dirty-set cost.
func BenchmarkRestoreCheckpoint(b *testing.B) {
	be, err := New(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := be.(*Backend)
	c := r.eng.Core()
	ck := r.ckpts[0].ck
	perturb := func() {
		c.DB().Flip(0)
		for i := 0; i < 200; i++ {
			r.eng.Step()
		}
	}
	b.Run("dirty", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			perturb()
			b.StartTimer()
			c.RestoreCheckpoint(ck)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			perturb()
			b.StartTimer()
			c.RestoreCheckpointFull(ck)
		}
	})
}
