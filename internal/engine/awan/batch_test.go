package awan

import (
	"reflect"
	"testing"

	"sfi/internal/engine"
)

// scalarReplay runs one injection through the scalar Backend protocol
// exactly as core.Runner does — reload, delay, inject, run with the
// quiesce barrier callback — and packs the observations the way RunBatch
// reports them.
func scalarReplay(b *Backend, inj engine.BatchInjection, phase, window, quiesce int) engine.BatchResult {
	b.ReloadPhase(phase)
	for i := 0; i < inj.Delay; i++ {
		b.Step()
	}
	injectCycle := b.Cycle()
	if err := b.Inject(inj.Inj); err != nil {
		panic(err)
	}
	sdc := false
	clean := 0
	st := b.Run(window, func() bool {
		chk := b.CheckBarrier()
		if !chk.StateOK {
			sdc = true
			return false
		}
		clean++
		return quiesce == 0 || clean < quiesce
	})
	return engine.BatchResult{Stats: st, Verdict: b.Verdict(), SDC: sdc, InjectCycle: injectCycle}
}

// schedule mirrors the campaign's deterministic per-bit injection instant.
func schedule(bit, phases int) (ck, delay int) {
	h := engine.Splitmix64(uint64(bit))
	return int(h % uint64(phases)), int((h >> 16) % 197)
}

// phaseBatches groups every injectable bit of the test design by its
// checkpoint phase, keeping up to lanesPer bits per phase.
func phaseBatches(b *Backend, lanesPer int) map[int][]engine.BatchInjection {
	out := make(map[int][]engine.BatchInjection)
	for bit := 0; bit < b.DB().TotalBits(); bit++ {
		ck, delay := schedule(bit, b.Phases())
		if len(out[ck]) >= lanesPer {
			continue
		}
		out[ck] = append(out[ck], engine.BatchInjection{
			Inj:   engine.Injection{Bit: bit, Mode: engine.Toggle},
			Delay: delay,
		})
	}
	return out
}

// TestRunBatchMatchesScalarProtocol is the lane-vs-scalar equivalence at
// the backend seam: every per-lane BatchResult must equal the scalar
// protocol's observations for the same injection, across toggle, sticky
// and multi-bit-span faults.
func TestRunBatchMatchesScalarProtocol(t *testing.T) {
	const window, quiesce = 50_000, 2
	mutations := []struct {
		name   string
		mutate func(*engine.Injection)
	}{
		{"toggle", func(*engine.Injection) {}},
		{"sticky", func(inj *engine.Injection) { inj.Mode = engine.Sticky; inj.Duration = 7 }},
		{"span2", func(inj *engine.Injection) { inj.Span = 2 }},
	}
	for _, mu := range mutations {
		t.Run(mu.name, func(t *testing.T) {
			batchBE := newBackend(t)
			scalarBE := newBackend(t)
			for phase, injs := range phaseBatches(batchBE, 8) {
				for i := range injs {
					mu.mutate(&injs[i].Inj)
				}
				got, err := batchBE.RunBatch(phase, injs, window, quiesce)
				if err != nil {
					t.Fatal(err)
				}
				for i, inj := range injs {
					want := scalarReplay(scalarBE, inj, phase, window, quiesce)
					if !reflect.DeepEqual(got[i], want) {
						t.Errorf("phase %d bit %d: batch %+v != scalar %+v",
							phase, inj.Inj.Bit, got[i], want)
					}
				}
			}
		})
	}
}

// TestRunBatchDeterministicReplay: the same batch on the same backend
// must reproduce identical results — RunBatch leaves no residue.
func TestRunBatchDeterministicReplay(t *testing.T) {
	b := newBackend(t)
	for phase, injs := range phaseBatches(b, 6) {
		first, err := b.RunBatch(phase, injs, 50_000, 2)
		if err != nil {
			t.Fatal(err)
		}
		again, err := b.RunBatch(phase, injs, 50_000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("phase %d replay differs:\n%+v\n%+v", phase, first, again)
		}
	}
}

// TestRunBatchValidation: oversize batches and out-of-range bits are
// rejected; an empty batch is a no-op.
func TestRunBatchValidation(t *testing.T) {
	b := newBackend(t)
	if res, err := b.RunBatch(0, nil, 100, 2); err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	over := make([]engine.BatchInjection, b.MaxBatch()+1)
	if _, err := b.RunBatch(0, over, 100, 2); err == nil {
		t.Error("oversize batch not rejected")
	}
	bad := []engine.BatchInjection{{Inj: engine.Injection{Bit: b.DB().TotalBits()}}}
	if _, err := b.RunBatch(0, bad, 100, 2); err == nil {
		t.Error("out-of-range bit not rejected")
	}
}

// TestMaxBatchHonorsConfig: BatchLanes narrows the per-pass budget
// including the golden lane.
func TestMaxBatchHonorsConfig(t *testing.T) {
	for _, tc := range []struct{ lanes, want int }{
		{0, 63}, {1, 0}, {2, 1}, {32, 31}, {64, 63}, {100, 63},
	} {
		cfg := testConfig()
		cfg.BatchLanes = tc.lanes
		be, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := be.(*Backend).MaxBatch(); got != tc.want {
			t.Errorf("BatchLanes=%d: MaxBatch=%d, want %d", tc.lanes, got, tc.want)
		}
	}
}

// TestRunBatchOnClone: warm clones share checkpoints immutably, so a
// clone's batched pass matches the prototype's.
func TestRunBatchOnClone(t *testing.T) {
	proto := newBackend(t)
	clone := proto.Clone().(*Backend)
	for phase, injs := range phaseBatches(proto, 4) {
		a, err := proto.RunBatch(phase, injs, 50_000, 2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := clone.RunBatch(phase, injs, 50_000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("phase %d: clone batch differs", phase)
		}
	}
}
