// Package awan adapts the gate-level netlist engine (internal/awan) as an
// engine backend, so gate-accurate designs run under the full SFI campaign
// stack — sampling, sharding, warm-clone workers, metrics/trace/progress
// and distributed execution — exactly like the latch-accurate core model.
//
// The design under test is a bank of checked-ALU macros (adder datapath
// with a mod-3 residue predictor/checker, internal/awan.BuildCheckedALU),
// sized by Config.Awan. The workload is a deterministic operand stream:
// each operation takes two cycles (load operands, execute), and every
// operation boundary is a verification barrier at which the result
// registers are compared against golden sums computed from the stimulus
// formula. A residue-check error output firing is terminal — the
// gate-level analogue of a checkstop — which keeps the MacroOutcome
// folding (masked→vanished, detected→checkstop, silent→sdc) consistent
// with full campaign classification.
package awan

import (
	"fmt"
	"time"

	gate "sfi/internal/awan"
	"sfi/internal/engine"
	"sfi/internal/latch"
	"sfi/internal/obs"
)

// Name is the backend's registry name.
const Name = "awan"

func init() {
	engine.Register(Name, New)
	engine.RegisterCensus(Name, census)
}

// census enumerates the latch population without compiling or warming the
// netlist: it builds the checked-ALU macros (structure only) and registers
// the same buses in the same order New does, so bit indices and stratum
// populations agree with the full backend.
func census(cfg engine.Config) (*latch.DB, error) {
	width, lanes := cfg.Awan.Width, cfg.Awan.Lanes
	if width == 0 {
		width = 16
	}
	if lanes == 0 {
		lanes = 32
	}
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("awan: ALU width %d out of range [1,64]", width)
	}
	if lanes < 1 {
		return nil, fmt.Errorf("awan: lane count %d < 1", lanes)
	}
	nl := gate.NewNetlist()
	db := latch.NewDB()
	for l := 0; l < lanes; l++ {
		alu := nl.BuildCheckedALU(fmt.Sprintf("alu%d", l), width)
		name := fmt.Sprintf("alu%d", l)
		reg := func(suffix string, kind latch.Type, bus gate.Bus) {
			db.RegisterArray("ALU", kind, name+suffix, 1, len(bus))
		}
		reg(".a", latch.RegFile, alu.RegA)
		reg(".b", latch.RegFile, alu.RegB)
		reg(".res", latch.Func, alu.Result)
		reg(".rsd", latch.Func, alu.ResPred)
	}
	db.Freeze()
	return db, nil
}

// stimSeed seeds the deterministic operand stream. Like the AVP, the
// gate-level workload is part of the model configuration, so independent
// processes building the same config drive identical stimulus (the
// campaign Seed keeps driving sampling only).
const stimSeed = 0xa3a95eedc0def00d

// phases is the phased-checkpoint count: consecutive operation boundaries
// a warmed backend snapshots, across which injections are spread.
const phases = 8

// warmOps is the number of operations run before checkpointing, filling
// every register with live workload data.
const warmOps = 4

// gateCkpt is a gate-level model snapshot plus workload tracking. The
// value plane is the engine's full 64-lane word plane; checkpoints are
// captured from a clean (fault-free) machine, so every lane of a restored
// plane starts bit-identical to the golden lane.
type gateCkpt struct {
	vals    []uint64
	op      int
	opCycle int
	cycle   uint64
}

// Backend owns one compiled netlist warmed for repeated injections.
type Backend struct {
	cfg   engine.Config
	width int
	lanes int
	mask  uint64

	eng  *gate.Engine
	alus []*gate.CheckedALU

	// db mirrors the design's latch population for sampling and metadata.
	// Latch values live in the gate engine, not in the db storage, so the
	// db is immutable after construction and shared read-only by clones;
	// bit2node maps its logical bit indices to netlist node ids.
	db       *latch.DB
	bit2node []int

	ckpts []gateCkpt
	obs   *obs.Metrics

	cycle   uint64
	op      int // workload operation index
	opCycle int // 0 = load cycle, 1 = execute cycle
	// golden holds each lane's expected result for the barrier just
	// retired, computed from the stimulus formula (never from the possibly
	// corrupted registers).
	golden []uint64

	errSeen  bool
	errCycle uint64
	errLane  int

	// Active sticky force, if any.
	stickyNode  int
	stickyVal   bool
	stickyUntil uint64 // cycle bound; 0 = forever
	stickyOn    bool

	// lastBatch holds the phase breakdown of the most recent RunBatch
	// pass on this instance (engine.BatchStatsReporter).
	lastBatch engine.BatchStats
}

// New builds, warms and checkpoints a gate-level backend.
func New(cfg engine.Config) (engine.Backend, error) {
	width, lanes := cfg.Awan.Width, cfg.Awan.Lanes
	if width == 0 {
		width = 16
	}
	if lanes == 0 {
		lanes = 32
	}
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("awan: ALU width %d out of range [1,64]", width)
	}
	if lanes < 1 {
		return nil, fmt.Errorf("awan: lane count %d < 1", lanes)
	}
	b := &Backend{
		cfg:   cfg,
		width: width,
		lanes: lanes,
		mask:  ^uint64(0) >> uint(64-width),
	}
	nl := gate.NewNetlist()
	for l := 0; l < lanes; l++ {
		b.alus = append(b.alus, nl.BuildCheckedALU(fmt.Sprintf("alu%d", l), width))
	}
	eng, err := gate.Compile(nl)
	if err != nil {
		return nil, err
	}
	b.eng = eng

	// The latch database mirrors the design's injectable population, one
	// group per register bus, registered in the same order bit2node is
	// built so logical bit i maps to bit2node[i].
	db := latch.NewDB()
	for l, alu := range b.alus {
		name := fmt.Sprintf("alu%d", l)
		reg := func(suffix string, kind latch.Type, bus gate.Bus) {
			db.RegisterArray("ALU", kind, name+suffix, 1, len(bus))
			b.bit2node = append(b.bit2node, bus...)
		}
		reg(".a", latch.RegFile, alu.RegA)
		reg(".b", latch.RegFile, alu.RegB)
		reg(".res", latch.Func, alu.Result)
		reg(".rsd", latch.Func, alu.ResPred)
	}
	db.Freeze()
	b.db = db
	b.golden = make([]uint64, lanes)

	// Warm: fill every register with live workload data, then capture one
	// checkpoint per operation boundary.
	for i := 0; i < 2*warmOps; i++ {
		b.Step()
	}
	for p := 0; p < phases; p++ {
		b.ckpts = append(b.ckpts, b.snapshot())
		b.Step()
		b.Step()
	}
	return b, nil
}

// operand is the stimulus formula: lane l's operand (which = 0 for A, 1
// for B) of operation op.
func (b *Backend) operand(op, lane, which int) uint64 {
	h := engine.Splitmix64(stimSeed +
		uint64(op)*0x9e3779b97f4a7c15 +
		uint64(lane)*0xbf58476d1ce4e5b9 +
		uint64(which)*0x94d049bb133111eb)
	return h & b.mask
}

func (b *Backend) snapshot() gateCkpt {
	return gateCkpt{vals: b.eng.Snapshot(), op: b.op, opCycle: b.opCycle, cycle: b.cycle}
}

func (b *Backend) restore(ck gateCkpt) {
	b.eng.Restore(ck.vals)
	b.op = ck.op
	b.opCycle = ck.opCycle
	b.cycle = ck.cycle
	b.errSeen = false
	b.errCycle = 0
	b.errLane = 0
	b.stickyOn = false
}

// DB exposes the design's latch population.
func (b *Backend) DB() *latch.DB { return b.db }

// Phases returns the phased-checkpoint count.
func (b *Backend) Phases() int { return len(b.ckpts) }

// ReloadPhase restores phased checkpoint p, clearing error and sticky
// state.
func (b *Backend) ReloadPhase(p int) {
	var t0 time.Time
	if b.obs != nil {
		t0 = time.Now()
	}
	b.restore(b.ckpts[p])
	if b.obs != nil {
		b.obs.ObserveRestore(uint64(time.Since(t0).Nanoseconds()))
	}
}

// TakeCheckpoint captures the value plane and workload tracking.
func (b *Backend) TakeCheckpoint() engine.Checkpoint { return b.snapshot() }

// Reload restores a TakeCheckpoint snapshot.
func (b *Backend) Reload(ck engine.Checkpoint) { b.restore(ck.(gateCkpt)) }

// stepStim drives the stimulus for the current workload position and
// clocks the netlist, advancing the workload tracking — the lane-neutral
// core of Step, shared with the bit-parallel RunBatch loop. It reports
// whether the cycle retired an operation (a verification barrier).
func (b *Backend) stepStim() (barrier bool) {
	if b.opCycle == 0 {
		for l, alu := range b.alus {
			b.eng.SetInputBus(alu.InA, b.operand(b.op, l, 0))
			b.eng.SetInputBus(alu.InB, b.operand(b.op, l, 1))
			b.eng.SetInput(alu.Load, true)
		}
		b.eng.Step()
		b.opCycle = 1
	} else {
		for _, alu := range b.alus {
			b.eng.SetInput(alu.Load, false)
		}
		b.eng.Step()
		for l := range b.alus {
			b.golden[l] = (b.operand(b.op, l, 0) + b.operand(b.op, l, 1)) & b.mask
		}
		b.op++
		b.opCycle = 0
		barrier = true
	}
	b.cycle++
	return barrier
}

// Step clocks one machine cycle: drive the stimulus for the current
// workload position, evaluate and clock the netlist, maintain any sticky
// force, and poll the error outputs. Operation boundaries are barriers.
func (b *Backend) Step() engine.Event {
	var ev engine.Event
	ev.Barrier = b.stepStim()
	if b.stickyOn {
		if b.stickyUntil != 0 && b.cycle >= b.stickyUntil {
			b.stickyOn = false
		} else {
			b.eng.SetLatch(b.stickyNode, b.stickyVal)
		}
	}
	// The error outputs are combinational: Step's Eval computed them from
	// the pre-clock register values, so a flip applied between cycles is
	// visible on the very next step. Raw mode (checkers masked) ignores
	// them entirely.
	if b.cfg.CheckersOn && !b.errSeen {
		for l, alu := range b.alus {
			if b.eng.Value(alu.ErrOut) {
				b.errSeen = true
				b.errCycle = b.cycle
				b.errLane = l
				break
			}
		}
	}
	return ev
}

// Inject applies a fault: the latch bit is flipped in the netlist, and in
// sticky mode the flipped value is re-forced after every subsequent cycle
// until the duration expires.
func (b *Backend) Inject(inj engine.Injection) error {
	total := len(b.bit2node)
	if inj.Bit < 0 || inj.Bit >= total {
		return fmt.Errorf("awan: injection bit %d out of range [0,%d)", inj.Bit, total)
	}
	node := b.bit2node[inj.Bit]
	b.eng.FlipLatch(node)
	for i := 1; i < inj.Span && inj.Bit+i < total; i++ {
		b.eng.FlipLatch(b.bit2node[inj.Bit+i])
	}
	if inj.Mode == engine.Sticky {
		b.stickyNode = node
		b.stickyVal = b.eng.Value(node)
		b.stickyOn = true
		if inj.Duration > 0 {
			b.stickyUntil = b.cycle + uint64(inj.Duration)
		} else {
			b.stickyUntil = 0
		}
	}
	return nil
}

// Run clocks up to maxCycles, stopping at a failed barrier callback or on
// a residue-check detection (the gate-level checkstop). The design has no
// speculative control flow, so hang and no-progress never fire.
func (b *Backend) Run(maxCycles int, onBarrier func() bool) engine.RunStats {
	st := b.run(maxCycles, onBarrier)
	if b.obs != nil {
		b.obs.ObserveRun(st.Cycles)
	}
	return st
}

func (b *Backend) run(maxCycles int, onBarrier func() bool) engine.RunStats {
	var st engine.RunStats
	for i := 0; i < maxCycles; i++ {
		ev := b.Step()
		st.Cycles++
		if ev.Barrier {
			st.Barriers++
			if onBarrier != nil && !onBarrier() {
				return st
			}
		}
		if b.errSeen {
			st.Checkstop = true
			return st
		}
	}
	return st
}

// CheckBarrier compares every lane's result register against the golden
// sum of the operation that just retired. The gate design has no recovery
// hardware, so barriers are never busy.
func (b *Backend) CheckBarrier() engine.BarrierCheck {
	ok := true
	for l, alu := range b.alus {
		if b.eng.BusValue(alu.Result) != b.golden[l] {
			ok = false
			break
		}
	}
	return engine.BarrierCheck{StateOK: ok}
}

func (b *Backend) checkerName(lane int) string {
	return fmt.Sprintf("alu%d.residue", lane)
}

// Verdict reports the residue-check state: a detection is terminal
// (checkstop), and without recovery hardware there are no recoveries or
// standalone corrections.
func (b *Backend) Verdict() engine.Verdict {
	v := engine.Verdict{Checkstop: b.errSeen}
	if b.errSeen {
		v.Detected = true
		v.FirstChecker = b.checkerName(b.errLane)
		v.DetectCycle = b.errCycle
	}
	return v
}

// FIRNames returns the posted checker names (at most one: detection stops
// the run).
func (b *Backend) FIRNames() []string {
	if !b.errSeen {
		return nil
	}
	return []string{b.checkerName(b.errLane)}
}

// Cycle returns the current machine cycle.
func (b *Backend) Cycle() uint64 { return b.cycle }

// Clone duplicates the warmed backend: the compiled netlist, latch
// database and checkpoints are shared immutably, the value plane is
// fresh.
func (b *Backend) Clone() engine.Backend {
	nb := *b
	nb.eng = b.eng.Clone()
	nb.golden = make([]uint64, b.lanes)
	copy(nb.golden, b.golden)
	nb.obs = nil
	nb.restore(b.ckpts[0])
	return &nb
}

// SetObs attaches a metrics collector (restore latencies, run cycles).
func (b *Backend) SetObs(m *obs.Metrics) { b.obs = m }
