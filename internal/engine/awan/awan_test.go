package awan

import (
	"reflect"
	"testing"

	"sfi/internal/engine"
)

func testConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Backend = Name
	cfg.Awan.Width = 8
	cfg.Awan.Lanes = 4
	return cfg
}

func newBackend(t *testing.T) *Backend {
	t.Helper()
	be, err := engine.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return be.(*Backend)
}

// TestPopulationMatchesConfig: the mirrored latch DB must expose exactly
// the design's injectable bits — per lane, two operand registers, the
// result register and the residue predictor pair.
func TestPopulationMatchesConfig(t *testing.T) {
	b := newBackend(t)
	perLane := 3*8 + 2 // a + b + result (width each) + 2-bit residue pred
	if got, want := b.DB().TotalBits(), 4*perLane; got != want {
		t.Fatalf("population %d bits, want %d", got, want)
	}
	if got, want := len(b.bit2node), b.DB().TotalBits(); got != want {
		t.Fatalf("bit2node has %d entries for %d bits", got, want)
	}
	// Every logical bit must map to a distinct netlist node: a duplicate
	// would make two sampled bits alias the same physical latch.
	seen := make(map[int]bool)
	for i, n := range b.bit2node {
		if seen[n] {
			t.Fatalf("bit %d aliases an earlier bit (node %d)", i, n)
		}
		seen[n] = true
	}
}

// TestCleanRunPassesBarriers: an uninjected backend must retire
// operations indefinitely with every barrier check green and no
// detection.
func TestCleanRunPassesBarriers(t *testing.T) {
	b := newBackend(t)
	b.ReloadPhase(0)
	barriers := 0
	st := b.Run(40, func() bool {
		bc := b.CheckBarrier()
		if !bc.StateOK {
			t.Fatal("clean run failed a barrier check")
		}
		if bc.Busy {
			t.Fatal("awan barriers must never be busy (no recovery hardware)")
		}
		barriers++
		return true
	})
	if st.Checkstop {
		t.Fatal("clean run checkstopped")
	}
	if barriers != 20 {
		t.Fatalf("40 cycles retired %d barriers, want 20 (2 cycles/op)", barriers)
	}
	if v := b.Verdict(); v.Checkstop || v.Detected {
		t.Fatalf("clean verdict reports an error: %+v", v)
	}
}

// TestDeterministicReplay: reloading the same phase and injecting the
// same bit twice must produce identical runs — the property campaign
// sharding and distributed equivalence rest on.
func TestDeterministicReplay(t *testing.T) {
	b := newBackend(t)
	replay := func() (engine.RunStats, engine.Verdict, bool) {
		b.ReloadPhase(3)
		if err := b.Inject(engine.Injection{Bit: 17, Mode: engine.Toggle}); err != nil {
			t.Fatal(err)
		}
		sdc := false
		st := b.Run(100, func() bool {
			if !b.CheckBarrier().StateOK {
				sdc = true
				return false
			}
			return true
		})
		return st, b.Verdict(), sdc
	}
	s1, v1, sdc1 := replay()
	s2, v2, sdc2 := replay()
	if s1 != s2 || v1 != v2 || sdc1 != sdc2 {
		t.Fatalf("replay diverged:\nrun1: %+v %+v sdc=%v\nrun2: %+v %+v sdc=%v",
			s1, v1, sdc1, s2, v2, sdc2)
	}
}

// TestCloneEquivalence: a clone must behave identically to its prototype
// for every (phase, bit) injection — clones share the compiled netlist
// and checkpoints but must not share mutable value state.
func TestCloneEquivalence(t *testing.T) {
	proto := newBackend(t)
	clone := proto.Clone().(*Backend)
	if clone.eng == proto.eng {
		t.Fatal("clone shares the prototype's value plane")
	}
	if &clone.ckpts[0].vals[0] != &proto.ckpts[0].vals[0] {
		t.Fatal("clone copied the checkpoints instead of sharing them")
	}

	outcome := func(b *Backend, phase, bit int) (engine.RunStats, engine.Verdict) {
		b.ReloadPhase(phase)
		if err := b.Inject(engine.Injection{Bit: bit, Mode: engine.Toggle}); err != nil {
			t.Fatal(err)
		}
		st := b.Run(60, func() bool { return b.CheckBarrier().StateOK })
		return st, b.Verdict()
	}
	for bit := 0; bit < proto.DB().TotalBits(); bit += 7 {
		phase := bit % proto.Phases()
		s1, v1 := outcome(proto, phase, bit)
		s2, v2 := outcome(clone, phase, bit)
		if s1 != s2 || v1 != v2 {
			t.Fatalf("bit %d phase %d: prototype %+v %+v, clone %+v %+v",
				bit, phase, s1, v1, s2, v2)
		}
	}
}

// TestCheckpointRoundTrip: TakeCheckpoint/Reload must restore the full
// observable machine state, including workload position.
func TestCheckpointRoundTrip(t *testing.T) {
	b := newBackend(t)
	b.ReloadPhase(2)
	ck := b.TakeCheckpoint()
	cycle, op := b.Cycle(), b.op

	// Corrupt heavily, then reload.
	if err := b.Inject(engine.Injection{Bit: 3, Mode: engine.Sticky}); err != nil {
		t.Fatal(err)
	}
	b.Run(30, nil)
	b.Reload(ck)

	if b.Cycle() != cycle || b.op != op {
		t.Fatalf("reload restored cycle %d op %d, want %d %d", b.Cycle(), b.op, cycle, op)
	}
	if b.errSeen || b.stickyOn {
		t.Fatal("reload kept error/sticky state")
	}
	if got := b.eng.Snapshot(); !reflect.DeepEqual(got, ck.(gateCkpt).vals) {
		t.Fatal("reload did not restore the value plane")
	}
	// And the restored machine still runs clean.
	st := b.Run(20, func() bool { return b.CheckBarrier().StateOK })
	if st.Checkstop || b.errSeen {
		t.Fatal("restored machine detected a phantom error")
	}
}

// TestRawModeMasksCheckers: with CheckersOn=false the residue checker
// must never fire, turning would-be detections into silent outcomes —
// the Table 3 raw-mode contract.
func TestRawModeMasksCheckers(t *testing.T) {
	cfg := testConfig()
	cfg.CheckersOn = false
	be, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := be.(*Backend)
	// Flip every result-register bit of lane 0; in checked mode at least
	// one of these detects, in raw mode none may.
	for bit := 0; bit < b.DB().TotalBits(); bit++ {
		b.ReloadPhase(0)
		if err := b.Inject(engine.Injection{Bit: bit, Mode: engine.Toggle}); err != nil {
			t.Fatal(err)
		}
		st := b.Run(40, nil)
		if st.Checkstop || b.Verdict().Detected {
			t.Fatalf("raw mode detected bit %d", bit)
		}
	}
}

// TestStickyDurationExpires: a bounded sticky fault must stop re-forcing
// its latch after the duration elapses.
func TestStickyDurationExpires(t *testing.T) {
	b := newBackend(t)
	b.ReloadPhase(0)
	if err := b.Inject(engine.Injection{Bit: 0, Mode: engine.Sticky, Duration: 4}); err != nil {
		t.Fatal(err)
	}
	if !b.stickyOn {
		t.Fatal("sticky force not armed")
	}
	for i := 0; i < 6; i++ {
		b.Step()
	}
	if b.stickyOn {
		t.Fatal("sticky force still armed after its duration expired")
	}
}
