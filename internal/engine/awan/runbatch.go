package awan

import (
	"fmt"
	"math/bits"
	"time"

	"sfi/internal/engine"
)

// This file implements engine.BatchBackend: classic parallel-pattern fault
// simulation. The gate engine's value plane is 64 bits wide per node, so
// one levelized Eval + latch clock advances 64 simulations in lockstep.
// Lane 0 carries the golden/reference computation and each fault lane
// k >= 1 carries one independent injection; a lane's fault is applied by
// XOR-ing only its bit of the target latch word, and divergence from the
// reference is detected word-wide by comparing every lane against lane 0.
//
// Correctness rests on one invariant: until its flip is applied, a fault
// lane is bit-identical to the golden lane (checkpoints are captured from
// a clean machine and stimulus is broadcast), so per-lane phase-jitter
// delays need no per-lane stepping — flipping lane k's mask after delay_k
// lockstep cycles reproduces the scalar trajectory exactly. Every per-lane
// stopping rule below mirrors the scalar Step/run ordering: clock, sticky
// re-force, checker poll, then barrier verdict before checkstop before the
// window bound.

var _ engine.BatchBackend = (*Backend)(nil)

// MaxBatch returns the number of independent fault lanes one RunBatch pass
// carries: the engine's word width minus the golden lane, optionally
// narrowed by Config.BatchLanes (1 disables batching entirely).
func (b *Backend) MaxBatch() int {
	lanes := 64
	if n := b.cfg.BatchLanes; n > 0 && n < lanes {
		lanes = n
	}
	return lanes - 1
}

// RunBatch restores phased checkpoint p once, then runs every injection in
// its own fault lane to its scalar-identical verdict. Lanes beyond
// len(injs) never receive a flip, so they track the golden lane
// bit-for-bit and cannot fire a checker or diverge — a short final batch
// is padding-safe by construction.
func (b *Backend) RunBatch(p int, injs []engine.BatchInjection, window, quiesce int) ([]engine.BatchResult, error) {
	if len(injs) == 0 {
		return nil, nil
	}
	if max := b.MaxBatch(); len(injs) > max {
		return nil, fmt.Errorf("awan: batch of %d injections exceeds %d fault lanes", len(injs), max)
	}
	total := len(b.bit2node)
	for _, bi := range injs {
		if bi.Inj.Bit < 0 || bi.Inj.Bit >= total {
			return nil, fmt.Errorf("awan: injection bit %d out of range [0,%d)", bi.Inj.Bit, total)
		}
	}
	t0 := time.Now()
	b.ReloadPhase(p)
	b.lastBatch = engine.BatchStats{RestoreNs: time.Since(t0).Nanoseconds()}

	// Per-lane bookkeeping, indexed by fault lane k in 1..n. The lane sets
	// themselves (pending/active/errSeen/stickyOn) are bit masks in the
	// same lane coordinates as the value plane.
	n := len(injs)
	delay := make([]int, n+1)
	for i, bi := range injs {
		delay[i+1] = bi.Delay
	}
	injectCycle := make([]uint64, n+1)
	barrierAt := make([]int, n+1)   // barriers already retired when the lane injected
	cleanEnds := make([]int, n+1)   // consecutive clean barriers (quiesce early exit)
	errCycle := make([]uint64, n+1) // cycle the lane's first checker fired
	errALU := make([]int, n+1)      // which ALU's checker fired first
	stickyNode := make([]int, n+1)
	stickyVal := make([]bool, n+1)
	stickyUntil := make([]uint64, n+1)

	res := make([]engine.BatchResult, n)
	var pending uint64 // lanes whose flip is still scheduled
	for k := 1; k <= n; k++ {
		pending |= 1 << uint(k)
	}
	var active, errSeen, stickyOn uint64
	barriers := 0 // barriers retired since the reload
	t := 0        // cycles stepped since the reload

	stop := func(k int, sdc, checkstop bool) {
		st := engine.RunStats{
			Cycles:    uint64(t - delay[k]),
			Barriers:  barriers - barrierAt[k],
			Checkstop: checkstop,
		}
		var v engine.Verdict
		if errSeen>>uint(k)&1 != 0 {
			v.Checkstop = true
			v.Detected = true
			v.FirstChecker = b.checkerName(errALU[k])
			v.DetectCycle = errCycle[k]
		}
		res[k-1] = engine.BatchResult{Stats: st, Verdict: v, SDC: sdc, InjectCycle: injectCycle[k]}
		b.obs.ObserveRun(st.Cycles)
		active &^= 1 << uint(k)
		stickyOn &^= 1 << uint(k)
	}

	for pending|active != 0 {
		// Arm the lanes whose phase-jitter delay expires this cycle.
		for w := pending; w != 0; w &= w - 1 {
			k := bits.TrailingZeros64(w)
			if delay[k] != t {
				continue
			}
			pending &^= 1 << uint(k)
			active |= 1 << uint(k)
			injectCycle[k] = b.cycle
			barrierAt[k] = barriers
			inj := injs[k-1].Inj
			node := b.bit2node[inj.Bit]
			mask := uint64(1) << uint(k)
			b.eng.FlipLatchLanes(node, mask)
			for i := 1; i < inj.Span && inj.Bit+i < total; i++ {
				b.eng.FlipLatchLanes(b.bit2node[inj.Bit+i], mask)
			}
			if inj.Mode == engine.Sticky {
				stickyNode[k] = node
				stickyVal[k] = b.eng.LaneValue(node, k)
				stickyOn |= mask
				if inj.Duration > 0 {
					stickyUntil[k] = b.cycle + uint64(inj.Duration)
				} else {
					stickyUntil[k] = 0
				}
			}
		}

		// One lockstep machine cycle, in the scalar Step order: clock,
		// re-force the sticky lanes, poll the checker outputs.
		barrier := b.stepStim()
		t++
		for w := stickyOn; w != 0; w &= w - 1 {
			k := bits.TrailingZeros64(w)
			if stickyUntil[k] != 0 && b.cycle >= stickyUntil[k] {
				stickyOn &^= 1 << uint(k)
			} else {
				b.eng.SetLatchLanes(stickyNode[k], stickyVal[k], 1<<uint(k))
			}
		}
		if b.cfg.CheckersOn && active&^errSeen != 0 {
			// ALUs in macro order so the first checker to post wins,
			// exactly like the scalar poll's break.
			for l, alu := range b.alus {
				w := b.eng.Word(alu.ErrOut) & active &^ errSeen
				if w == 0 {
					continue
				}
				for ; w != 0; w &= w - 1 {
					k := bits.TrailingZeros64(w)
					errSeen |= 1 << uint(k)
					errCycle[k] = b.cycle
					errALU[k] = l
				}
			}
		}

		// Per-lane stopping rules in the scalar run() order: barrier
		// verdict first, then checkstop, then the window bound.
		if barrier {
			barriers++
			if active != 0 {
				var diverged uint64
				for _, alu := range b.alus {
					diverged |= b.eng.Diverged(alu.Result)
				}
				for w := active; w != 0; w &= w - 1 {
					k := bits.TrailingZeros64(w)
					if diverged>>uint(k)&1 != 0 {
						stop(k, true, false) // architected state diverged: SDC
						continue
					}
					cleanEnds[k]++
					if quiesce != 0 && cleanEnds[k] >= quiesce {
						stop(k, false, false)
						b.lastBatch.Quiesced++
					}
				}
			}
		}
		for w := active & errSeen; w != 0; w &= w - 1 {
			stop(bits.TrailingZeros64(w), false, true)
		}
		for w := active; w != 0; w &= w - 1 {
			k := bits.TrailingZeros64(w)
			if t-delay[k] >= window {
				stop(k, false, false)
			}
		}
	}
	b.lastBatch.RunNs = time.Since(t0).Nanoseconds() - b.lastBatch.RestoreNs
	b.lastBatch.Cycles = t
	b.lastBatch.Barriers = barriers
	return res, nil
}

var _ engine.BatchStatsReporter = (*Backend)(nil)

// LastBatchStats returns the phase breakdown of the most recent RunBatch
// pass (engine.BatchStatsReporter).
func (b *Backend) LastBatchStats() engine.BatchStats {
	return b.lastBatch
}
