package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultBackend is the backend used when Config.Backend is empty: the
// latch-accurate POWER6-style core model.
const DefaultBackend = "p6lite"

// Factory builds a warmed, checkpointed backend from a config.
type Factory func(cfg Config) (Backend, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register makes a backend available under name. Backend packages call it
// from init, so importing a backend package (usually with a blank import,
// like database/sql drivers) is what makes it selectable. Duplicate or
// empty names panic.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f == nil {
		panic("engine: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: backend %q registered twice", name))
	}
	registry[name] = f
}

// Resolve normalizes a backend name: "" becomes DefaultBackend. It does
// not check registration (a coordinator can plan campaigns for backends
// only its workers link in).
func Resolve(name string) string {
	if name == "" {
		return DefaultBackend
	}
	return name
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds the backend selected by cfg.Backend.
func New(cfg Config) (Backend, error) {
	name := Resolve(cfg.Backend)
	regMu.RLock()
	f := registry[name]
	regMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("engine: unknown backend %q (registered: %s)",
			name, strings.Join(Backends(), ", "))
	}
	return f(cfg)
}
