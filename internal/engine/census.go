package engine

import "sfi/internal/latch"

// A stratified campaign planner needs the design's latch census — which
// units and latch classes exist and how many bits each holds — before any
// injection runs. Building a full backend for that would warm and
// checkpoint a whole machine (the distributed coordinator never injects
// locally at all), so backends may register a census factory that derives
// the latch database from the config alone.

// CensusFactory enumerates a backend's injectable latch population from a
// config, without warming or checkpointing the machine. The returned
// database must register the same groups in the same order as the full
// backend's, so bit indices and stratum populations agree exactly.
type CensusFactory func(cfg Config) (*latch.DB, error)

var censusReg = make(map[string]CensusFactory) // guarded by regMu

// RegisterCensus makes a lightweight census available for a registered
// backend name. Backend packages call it from init alongside Register.
func RegisterCensus(name string, f CensusFactory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f == nil {
		panic("engine: RegisterCensus with empty name or nil factory")
	}
	if _, dup := censusReg[name]; dup {
		panic("engine: census for backend " + name + " registered twice")
	}
	censusReg[name] = f
}

// Census returns the latch database of the backend cfg selects. Backends
// with a registered census factory answer from the config alone; otherwise
// a full backend is built and its database returned — correct but as
// expensive as one warm machine.
func Census(cfg Config) (*latch.DB, error) {
	name := Resolve(cfg.Backend)
	regMu.RLock()
	f := censusReg[name]
	regMu.RUnlock()
	if f != nil {
		return f(cfg)
	}
	be, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return be.DB(), nil
}
