package engine

import (
	"sort"
	"strings"
	"testing"
)

func TestResolveDefaultsEmptyName(t *testing.T) {
	if got := Resolve(""); got != DefaultBackend {
		t.Fatalf("Resolve(\"\") = %q, want %q", got, DefaultBackend)
	}
	if got := Resolve("awan"); got != "awan" {
		t.Fatalf("Resolve(\"awan\") = %q", got)
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	Register("engine-test-dup", func(Config) (Backend, error) { return nil, nil })
	mustPanic("duplicate Register", func() {
		Register("engine-test-dup", func(Config) (Backend, error) { return nil, nil })
	})
	mustPanic("empty-name Register", func() {
		Register("", func(Config) (Backend, error) { return nil, nil })
	})
	mustPanic("nil-factory Register", func() {
		Register("engine-test-nil", nil)
	})
}

func TestBackendsSorted(t *testing.T) {
	names := Backends()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Backends() not sorted: %v", names)
	}
}

func TestNewUnknownBackend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = "no-such-machine"
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted an unregistered backend")
	} else if !strings.Contains(err.Error(), "no-such-machine") {
		t.Fatalf("error does not name the backend: %v", err)
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		Vanished:  "vanished",
		Corrected: "corrected",
		Hang:      "hang",
		Checkstop: "checkstop",
		SDC:       "sdc",
	}
	if len(Outcomes) != len(want) {
		t.Fatalf("Outcomes has %d entries, want %d", len(Outcomes), len(want))
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
	if s := Outcome(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown outcome string %q does not carry the value", s)
	}
}

func TestSplitmix64KnownVector(t *testing.T) {
	// Reference values for the splitmix64 finalizer; the campaign sampler,
	// phase/delay schedule and awan stimulus all share this function, so
	// its output is load-bearing for cross-version reproducibility.
	if got := Splitmix64(0); got != 0xe220a8397b1dcdaf {
		t.Fatalf("Splitmix64(0) = %#x", got)
	}
	if Splitmix64(1) == Splitmix64(2) {
		t.Fatal("splitmix64 collided on adjacent inputs")
	}
}
