package engine

import "testing"

func TestImageDigestStable(t *testing.T) {
	a := ImageDigest(DefaultConfig())
	b := ImageDigest(DefaultConfig())
	if a != b {
		t.Fatalf("digest not deterministic: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("digest %q is not a sha256 hex string", a)
	}
}

func TestImageDigestResolvesBackend(t *testing.T) {
	blank := DefaultConfig()
	named := DefaultConfig()
	named.Backend = DefaultBackend
	if ImageDigest(blank) != ImageDigest(named) {
		t.Fatal("empty backend and the resolved default name must share one image")
	}
}

func TestImageDigestSeparatesConfigs(t *testing.T) {
	base := DefaultConfig()
	cases := map[string]Config{}
	c := base
	c.Backend = "awan"
	cases["backend"] = c
	c = base
	c.Window = base.Window + 1
	cases["window"] = c
	c = base
	c.AVP.Testcases++
	cases["workload"] = c
	c = base
	c.BatchLanes = 2
	cases["lanes"] = c

	ref := ImageDigest(base)
	for name, cfg := range cases {
		if ImageDigest(cfg) == ref {
			t.Errorf("config change %q did not change the image digest", name)
		}
	}
}
