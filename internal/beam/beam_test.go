package beam

import (
	"testing"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.AVP.Testcases = 6
	cfg.AVP.BodyOps = 14
	cfg.Strikes = 150
	cfg.MeanGap = 800
	cfg.SettleCycles = 5000
	return cfg
}

func TestBeamRunBasics(t *testing.T) {
	rep, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strikes != 150 {
		t.Fatalf("strikes = %d", rep.Strikes)
	}
	total := rep.Vanished + rep.Corrected + rep.Checkstop + rep.Hang + rep.SDC
	if total != rep.Strikes {
		t.Errorf("categories sum to %d, strikes %d", total, rep.Strikes)
	}
	v, c, k := rep.Fractions()
	if v < 0.80 {
		t.Errorf("vanished fraction %.2f implausibly low", v)
	}
	if v+c+k > 1.0001 {
		t.Errorf("fractions sum beyond 1: %f", v+c+k)
	}
	if rep.Cycles == 0 {
		t.Error("no cycles recorded")
	}
}

func TestBeamDeterministic(t *testing.T) {
	a, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestBeamBadConfig(t *testing.T) {
	cfg := fastConfig()
	cfg.Strikes = 0
	if _, err := Run(cfg); err == nil {
		t.Error("no error for zero strikes")
	}
}

func TestBeamArrayWeightZeroHitsLatchesOnly(t *testing.T) {
	cfg := fastConfig()
	cfg.ArrayWeight = 0
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Latch-only beam should roughly track the SFI latch campaign:
	// heavy vanishing with some corrections.
	v, _, _ := rep.Fractions()
	if v < 0.80 {
		t.Errorf("latch-only beam vanished %.2f", v)
	}
}

func TestCalibrateAgreement(t *testing.T) {
	rep := &Report{Strikes: 1000, Vanished: 950, Corrected: 40, Checkstop: 10}
	stat, p, err := Calibrate(0.95, 0.04, 0.01, rep)
	if err != nil {
		t.Fatal(err)
	}
	if stat > 1e-9 {
		t.Errorf("identical distributions: stat %f", stat)
	}
	if p < 0.99 {
		t.Errorf("p = %f, want ~1", p)
	}
	// A very different distribution must be rejected.
	stat, p, err = Calibrate(0.5, 0.4, 0.1, rep)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("mismatched distributions accepted: stat=%f p=%f", stat, p)
	}
}
