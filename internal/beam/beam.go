// Package beam simulates the proton-beam irradiation experiment the paper
// calibrates SFI against (Table 2). Unlike SFI, the beam has no
// controllability: particle strikes arrive at Poisson-distributed instants
// and hit a uniformly random storage bit — latches or ECC-protected SRAM
// array cells — while the AVP runs continuously. Only machine-visible
// evidence is observable: logged recoveries and ECC corrections,
// checkstops, hangs and AVP-detected bad architected state; everything else
// vanished.
//
// The relative strike probability of an SRAM cell versus a latch is a
// physical cross-section ratio the original experiment absorbed into its
// fluence calibration; here it is an explicit configuration input
// (ArrayWeight).
package beam

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sfi/internal/avp"
	"sfi/internal/emu"
	"sfi/internal/proc"
	"sfi/internal/stats"
)

// Config parameterizes a beam run.
type Config struct {
	Proc proc.Config
	AVP  avp.Config

	Seed    uint64
	Strikes int // total particle strikes to deliver

	// MeanGap is the mean number of cycles between strikes (exponential
	// inter-arrival times).
	MeanGap float64

	// ArrayWeight is the per-bit strike probability of an SRAM array cell
	// relative to a latch bit (cross-section ratio).
	ArrayWeight float64

	// SettleCycles is how long the machine is observed after the last
	// strike before the books are closed.
	SettleCycles int
}

// DefaultConfig returns a beam configuration calibrated to the model.
func DefaultConfig() Config {
	return Config{
		Proc:         proc.DefaultConfig(),
		AVP:          avp.DefaultConfig(),
		Seed:         7,
		Strikes:      2000,
		MeanGap:      3000,
		ArrayWeight:  0.008,
		SettleCycles: 20_000,
	}
}

// Report summarizes a beam run in the paper's Table 2 categories.
type Report struct {
	Strikes   int
	Corrected int // machine-logged recoveries + ECC corrections
	Checkstop int
	Hang      int
	SDC       int // AVP-detected incorrect architected state
	Vanished  int // strikes with no observable evidence

	Cycles uint64 // total cycles irradiated
}

// Fractions returns the category proportions in Table 2 order:
// vanished, corrected, checkstop (hang and SDC folded out, as the paper's
// Table 2 reports the three dominant categories).
func (r *Report) Fractions() (vanished, corrected, checkstop float64) {
	n := float64(r.Strikes)
	if n == 0 {
		return 0, 0, 0
	}
	return float64(r.Vanished) / n, float64(r.Corrected) / n, float64(r.Checkstop) / n
}

func (r *Report) String() string {
	v, c, k := r.Fractions()
	return fmt.Sprintf("strikes %d: vanished %.2f%%, corrected %.2f%%, checkstop %.2f%%, hang %d, sdc %d",
		r.Strikes, 100*v, 100*c, 100*k, r.Hang, r.SDC)
}

// Run executes a beam experiment.
func Run(cfg Config) (*Report, error) {
	if cfg.Strikes < 1 {
		return nil, fmt.Errorf("beam: need at least one strike")
	}
	if cfg.AVP.MemBytes != cfg.Proc.MemBytes {
		cfg.AVP.MemBytes = cfg.Proc.MemBytes
	}
	prog, err := avp.Generate(cfg.AVP)
	if err != nil {
		return nil, err
	}
	c := proc.New(cfg.Proc)
	c.Mem().LoadProgram(0, prog.Words)
	eng := emu.New(c)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xbea3))

	// Warm to steady state and checkpoint (the "system restart" image
	// used after fatal events, as the real rig power-cycled the machine).
	ends := 0
	for ends < 2*cfg.AVP.Testcases {
		if eng.Step().TestEnd {
			ends++
		}
	}
	eng.SaveCheckpoint()
	nextTC := ends % cfg.AVP.Testcases
	baseRecov := c.Recoveries

	rep := &Report{Strikes: cfg.Strikes}

	// Strike target population.
	latchBits := c.DB().TotalBits()
	arrays := c.Arrays()
	arrayBits := 0
	for _, p := range arrays {
		arrayBits += p.TotalBits()
	}
	latchWeight := float64(latchBits)
	arrayWeight := cfg.ArrayWeight * float64(arrayBits)
	totalWeight := latchWeight + arrayWeight

	strike := func() {
		if rng.Float64()*totalWeight < latchWeight {
			c.DB().Flip(rng.IntN(latchBits))
			return
		}
		// Array strike: pick a cell uniformly across all arrays.
		n := rng.IntN(arrayBits)
		for _, p := range arrays {
			if n < p.TotalBits() {
				p.FlipBit(n/72, n%72)
				return
			}
			n -= p.TotalBits()
		}
	}

	// Evidence counters accumulated across machine restarts.
	var corrected uint64
	lastRecov := baseRecov
	arrayCorr := func() uint64 {
		var n uint64
		for _, p := range arrays {
			n += p.Corrected
		}
		return n
	}
	lastArrayCorr := arrayCorr()

	harvest := func() {
		corrected += (c.Recoveries - lastRecov) + (arrayCorr() - lastArrayCorr)
		lastRecov = c.Recoveries
		lastArrayCorr = arrayCorr()
	}

	restart := func() {
		harvest()
		eng.Reload()
		lastRecov = c.Recoveries
		lastArrayCorr = arrayCorr()
	}

	tcIdx := nextTC
	sdcArmed := true
	nextStrike := int(expGap(rng, cfg.MeanGap))
	delivered := 0
	deadline := 0
	noProgressGuard := 0
	lastCompleted := c.Completed

	for delivered < cfg.Strikes || deadline < cfg.SettleCycles {
		ev := eng.Step()
		rep.Cycles++
		if delivered >= cfg.Strikes {
			deadline++
		}

		// Deliver strikes on schedule.
		if delivered < cfg.Strikes {
			nextStrike--
			if nextStrike <= 0 {
				strike()
				delivered++
				nextStrike = int(expGap(rng, cfg.MeanGap))
			}
		}

		if ev.TestEnd {
			tc := prog.Testcases[tcIdx]
			tcIdx = (tcIdx + 1) % cfg.AVP.Testcases
			st := c.ArchState()
			sigOK := st.MaskedSignature(tc.GPRMask, tc.FPRMask, tc.SPRMask) == tc.SigMasked
			memOK := c.Mem().DigestRange(prog.DataLo, prog.DataHi) == tc.MemDigest
			if (!sigOK || !memOK) && sdcArmed {
				rep.SDC++
				restart()
				tcIdx = nextTC
			}
		}

		// Fatal events: record and restart the machine.
		if c.Checkstopped() {
			rep.Checkstop++
			restart()
			tcIdx = nextTC
		}
		if c.HangDetected() {
			rep.Hang++
			restart()
			tcIdx = nextTC
		}
		// Harness-level hang safety net.
		if c.Completed != lastCompleted {
			lastCompleted = c.Completed
			noProgressGuard = 0
		} else {
			noProgressGuard++
			if noProgressGuard > 3*cfg.Proc.HangLimit {
				rep.Hang++
				restart()
				tcIdx = nextTC
				lastCompleted = c.Completed
				noProgressGuard = 0
			}
		}
	}
	harvest()

	rep.Corrected = int(corrected)
	if rep.Corrected > rep.Strikes {
		// A single strike can cause repeated recovery events; the real
		// experiment has the same accounting ambiguity. Clamp.
		rep.Corrected = rep.Strikes
	}
	rep.Vanished = rep.Strikes - rep.Corrected - rep.Checkstop - rep.Hang - rep.SDC
	if rep.Vanished < 0 {
		rep.Vanished = 0
	}
	return rep, nil
}

func expGap(rng *rand.Rand, mean float64) float64 {
	return -mean * math.Log(1-rng.Float64())
}

// Calibrate compares SFI outcome proportions against a beam report the way
// Table 2 does, returning the chi-square statistic and p-value over the
// (vanished, corrected, checkstop) categories.
func Calibrate(sfiVanished, sfiCorrected, sfiCheckstop float64, rep *Report) (stat, p float64, err error) {
	bv, bc, bk := rep.Fractions()
	n := float64(rep.Strikes)
	observed := []float64{bv * n, bc * n, bk * n}
	expected := []float64{sfiVanished * n, sfiCorrected * n, sfiCheckstop * n}
	stat, err = stats.ChiSquareStat(observed, expected)
	if err != nil {
		return 0, 0, err
	}
	return stat, stats.ChiSquarePValue(stat, 2), nil
}
