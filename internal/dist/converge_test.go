package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"sfi/internal/core"
	"sfi/internal/obs"
)

// adaptiveSpec is testSpec with a loose stopping rule: convergence is
// guaranteed well before the flip budget, so a distributed run must stop
// early.
func adaptiveSpec() CampaignSpec {
	spec := testSpec()
	spec.Flips = 400
	spec.KeepResults = false
	spec.Stop = core.StopConfig{
		TargetMargin:   0.35,
		Confidence:     0.95,
		MinPerClass:    20,
		StopOnConverge: true,
	}
	return spec
}

// TestAdaptiveLoopbackEarlyStop is the distributed half of the PR 7
// acceptance gate: a 4-worker loopback campaign with a stopping rule must
// seal the ledger before the budget is exhausted, cancel the outstanding
// leases (workers exit cleanly through the 410 path), and return a merged
// report that covers exactly the sealed population the decision was made
// on. A coordinator restarted over the journal must replay to the very
// same stop decision without running anything.
func TestAdaptiveLoopbackEarlyStop(t *testing.T) {
	spec := adaptiveSpec()
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	cfg := CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal}
	c, srv := startCoord(t, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			workerErr <- RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          fmt.Sprintf("w%d", i),
				PollEvery:   10 * time.Millisecond,
			})
		}(i)
	}
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := <-workerErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	if rep.Total >= spec.Flips {
		t.Fatalf("adaptive campaign ran the whole budget: %d/%d", rep.Total, spec.Flips)
	}
	if rep.Total%cfg.ShardSize != 0 {
		t.Errorf("merged total %d is not whole shards of %d", rep.Total, cfg.ShardSize)
	}
	if rep.Convergence == nil || !rep.Convergence.Converged {
		t.Fatalf("merged report not converged: %+v", rep.Convergence)
	}
	for _, ci := range rep.Convergence.Classes {
		if ci.Width > spec.Stop.TargetMargin {
			t.Errorf("class %s width %.4f above margin %.2f", ci.Class, ci.Width, spec.Stop.TargetMargin)
		}
	}
	decision := c.StopDecision()
	if decision == nil || !decision.Converged {
		t.Fatalf("no converged stop decision recorded: %+v", decision)
	}
	// The decision basis (sealed completed-shard counts) is exactly the
	// merged report's population.
	if decision.Total != int64(rep.Total) {
		t.Errorf("decision over n=%d, merged report total %d", decision.Total, rep.Total)
	}
	if p := c.Progress(); !p.StoppedEarly || p.Done >= len(c.shards) {
		t.Errorf("progress does not show an early stop: done %d/%d, stopped_early %v",
			p.Done, p.Shards, p.StoppedEarly)
	}

	// Restart over the journal: the recorded stop decision is honored
	// verbatim — the campaign is immediately finished, no shard reruns, and
	// the merged report matches.
	c2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	rep2, err := c2.Wait(ctx2)
	if err != nil {
		t.Fatalf("replayed coordinator did not finish immediately: %v", err)
	}
	if rep2.Total != rep.Total {
		t.Errorf("replayed total %d, original %d", rep2.Total, rep.Total)
	}
	if !reflect.DeepEqual(rep2.Counts, rep.Counts) {
		t.Errorf("replayed counts differ:\nreplay:   %v\noriginal: %v", rep2.Counts, rep.Counts)
	}
	if d2 := c2.StopDecision(); !reflect.DeepEqual(d2, decision) {
		t.Errorf("replayed stop decision differs:\nreplay:   %+v\noriginal: %+v", d2, decision)
	}
	if p := c2.Progress(); !p.StoppedEarly {
		t.Error("replayed coordinator does not report the early stop")
	}
}

// TestConvergenceSealsLedger drives the wire protocol by hand: once a
// completion trips the stop rule, outstanding leases are dead — their
// heartbeats and completions answer 410 Gone and no late report reopens
// the ledger.
func TestConvergenceSealsLedger(t *testing.T) {
	spec := testSpec()
	spec.Stop = core.StopConfig{TargetMargin: 0.999, MinPerClass: 1, StopOnConverge: true}
	c, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 12})

	var l1, l2 leaseResponse
	if code := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "a"}, &l1); code != http.StatusOK {
		t.Fatalf("lease 1: status %d", code)
	}
	if code := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "b"}, &l2); code != http.StatusOK {
		t.Fatalf("lease 2: status %d", code)
	}
	if !l1.Campaign.Stop.Enabled() {
		t.Fatal("leased campaign spec does not carry the stopping rule")
	}
	size := l1.Shard.Hi - l1.Shard.Lo
	code := rawPost(t, srv.URL+"/v1/complete",
		completeRequest{Worker: "a", Shard: l1.Shard.ID, Report: fakeWire(size)}, nil)
	if code != http.StatusOK {
		t.Fatalf("first complete: status %d", code)
	}
	// With every class inside a 0.999 margin at n=12, that single sealed
	// shard converges the campaign.
	if d := c.StopDecision(); d == nil || !d.Converged || d.Total != int64(size) {
		t.Fatalf("completion did not trip the stop rule: %+v", d)
	}
	if code := rawPost(t, srv.URL+"/v1/heartbeat",
		heartbeatRequest{Worker: "b", Shard: l2.Shard.ID}, nil); code != http.StatusGone {
		t.Errorf("heartbeat after stop: status %d, want 410", code)
	}
	if code := rawPost(t, srv.URL+"/v1/complete",
		completeRequest{Worker: "b", Shard: l2.Shard.ID, Report: fakeWire(l2.Shard.Hi - l2.Shard.Lo)}, nil); code != http.StatusGone {
		t.Errorf("late complete after stop: status %d, want 410", code)
	}
	if code := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "c"}, nil); code != http.StatusGone {
		t.Errorf("lease after stop: status %d, want 410", code)
	}
	rep, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != size {
		t.Errorf("merged report covers %d injections, want the one sealed shard (%d)", rep.Total, size)
	}
}

// TestStatusConvergenceSchema locks the /v1/status convergence block's
// JSON surface: dashboards key on these names, so the exact key sets are
// part of the wire contract.
func TestStatusConvergenceSchema(t *testing.T) {
	spec := testSpec()
	spec.Stop = core.StopConfig{TargetMargin: 0.05, StopOnConverge: true}
	_, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 12})

	var lease leaseResponse
	if code := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "w"}, &lease); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	// A heartbeat delta feeds the live fleet view the status block reads.
	delta := obs.NewSnapshot()
	delta.Injections = 5
	delta.Outcomes = map[string]uint64{"vanished": 4, "sdc": 1}
	if code := rawPost(t, srv.URL+"/v1/heartbeat",
		heartbeatRequest{Worker: "w", Shard: lease.Shard.ID, Delta: delta}, nil); code != http.StatusOK {
		t.Fatalf("heartbeat: status %d", code)
	}

	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Convergence  map[string]json.RawMessage `json:"convergence"`
		StoppedEarly bool                       `json:"stopped_early"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Convergence == nil {
		t.Fatal("status has no convergence block")
	}
	if status.StoppedEarly {
		t.Error("status claims an early stop that never happened")
	}
	wantTop := []string{"classes", "confidence", "converged", "min_per_class",
		"target_margin", "total", "widest_class", "widest_width"}
	if got := sortedKeys(status.Convergence); !reflect.DeepEqual(got, wantTop) {
		t.Errorf("convergence keys:\ngot  %v\nwant %v", got, wantTop)
	}
	var total int64
	if err := json.Unmarshal(status.Convergence["total"], &total); err != nil || total != 5 {
		t.Errorf("convergence total = %d (%v), want the heartbeat-reported 5", total, err)
	}
	var classes []map[string]json.RawMessage
	if err := json.Unmarshal(status.Convergence["classes"], &classes); err != nil {
		t.Fatal(err)
	}
	if len(classes) == 0 {
		t.Fatal("convergence block tracks no classes")
	}
	wantClass := []string{"class", "converged", "fraction", "hi", "k", "lo", "n", "width"}
	for _, ci := range classes {
		if got := sortedKeys(ci); !reflect.DeepEqual(got, wantClass) {
			t.Fatalf("class interval keys:\ngot  %v\nwant %v", got, wantClass)
		}
	}

	// The Prometheus view of the same evaluation rides /metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf [1 << 16]byte
	n, _ := mresp.Body.Read(buf[:])
	if text := string(buf[:n]); !containsAll(text,
		"sfi_ci_target_margin", "sfi_converged", "sfi_ci_width{class=") {
		t.Errorf("/metrics missing convergence gauges:\n%s", text)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
