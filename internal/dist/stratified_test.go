package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sfi/internal/core"
)

// stratifiedSpec is testSpec under Neyman allocation: small enough to run
// real models in tests, with enough flips for several allocation epochs.
func stratifiedSpec() CampaignSpec {
	spec := testSpec()
	spec.Flips = 120
	spec.KeepResults = false
	spec.Alloc = core.AllocConfig{Mode: core.AllocNeyman, Epochs: 3}
	return spec
}

// runStratifiedFleet drives a distributed stratified campaign to its end
// with n loopback workers and returns the merged report.
func runStratifiedFleet(t *testing.T, c *Coordinator, url string, n int) *core.Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	workerErr := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			workerErr <- RunWorker(ctx, WorkerConfig{
				Coordinator: url,
				ID:          fmt.Sprintf("w%d", i),
				PollEvery:   10 * time.Millisecond,
			})
		}(i)
	}
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := <-workerErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	return rep
}

// TestStratifiedLoopbackEquivalence: a distributed stratified campaign —
// shards planned per allocation epoch, executed by allocation-agnostic
// workers, re-allocated over sealed counts — must reproduce the local
// stratified executor's report exactly: same totals, same per-stratum
// draws, same outcome mix.
func TestStratifiedLoopbackEquivalence(t *testing.T) {
	spec := stratifiedSpec()
	c, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 10})
	got := runStratifiedFleet(t, c, srv.URL, 3)

	local := core.CampaignConfig{
		Runner:  spec.Runner,
		Seed:    spec.Seed,
		Flips:   spec.Flips,
		Workers: 2,
		Alloc:   spec.Alloc,
	}
	want, err := core.RunCampaign(local)
	if err != nil {
		t.Fatal(err)
	}

	if got.Total != spec.Flips || got.Total != want.Total {
		t.Fatalf("total: distributed %d, local stratified %d, budget %d", got.Total, want.Total, spec.Flips)
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Errorf("outcome counts differ:\ndist:  %v\nlocal: %v", got.Counts, want.Counts)
	}
	if !reflect.DeepEqual(got.ByStratum, want.ByStratum) {
		t.Errorf("per-stratum counts differ:\ndist:  %v\nlocal: %v", got.ByStratum, want.ByStratum)
	}
	if !reflect.DeepEqual(got.ByUnit, want.ByUnit) {
		t.Errorf("per-unit counts differ:\ndist:  %v\nlocal: %v", got.ByUnit, want.ByUnit)
	}

	// The /v1/status allocation block reports the settled budget state.
	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Allocation *struct {
			Mode       string `json:"mode"`
			Epochs     int    `json:"epochs_planned"`
			BudgetLeft int    `json:"budget_left"`
			Strata     []struct {
				Stratum    string `json:"stratum"`
				Population int    `json:"population"`
				Planned    int    `json:"planned"`
				Sealed     int64  `json:"sealed"`
			} `json:"strata"`
		} `json:"allocation"`
		Shards []struct {
			Stratum string `json:"stratum"`
		} `json:"shard_states"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	av := status.Allocation
	if av == nil {
		t.Fatal("status has no allocation block")
	}
	if av.Mode != core.AllocNeyman || av.Epochs != spec.Alloc.Epochs || av.BudgetLeft != 0 {
		t.Errorf("allocation block mode=%q epochs=%d budget_left=%d, want neyman/%d/0",
			av.Mode, av.Epochs, av.BudgetLeft, spec.Alloc.Epochs)
	}
	planned := 0
	for _, row := range av.Strata {
		if row.Population <= 0 {
			t.Errorf("stratum %s has population %d", row.Stratum, row.Population)
		}
		if row.Planned > row.Population {
			t.Errorf("stratum %s planned %d past population %d", row.Stratum, row.Planned, row.Population)
		}
		if row.Sealed != int64(row.Planned) {
			t.Errorf("stratum %s sealed %d of %d planned after completion", row.Stratum, row.Sealed, row.Planned)
		}
		planned += row.Planned
	}
	if planned != spec.Flips {
		t.Errorf("planned %d injections across strata, want %d", planned, spec.Flips)
	}
	for _, sv := range status.Shards {
		if sv.Stratum == "" {
			t.Error("stratified shard view is missing its stratum")
			break
		}
	}
}

// TestStratifiedJournalReplay: a stratified adaptive campaign journals
// every re-allocation decision; a coordinator restarted over the journal
// must replay to the identical merged report and stop decision without
// re-running anything. The loose margin guarantees convergence — and so an
// early stop — after at least one mid-campaign re-allocation epoch.
func TestStratifiedJournalReplay(t *testing.T) {
	spec := stratifiedSpec()
	spec.Flips = 180
	spec.Alloc.Epochs = 6
	spec.Stop = core.StopConfig{
		TargetMargin:   0.9,
		MinPerClass:    3,
		StopOnConverge: true,
	}
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	cfg := CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal}
	c, srv := startCoord(t, cfg)
	rep := runStratifiedFleet(t, c, srv.URL, 3)

	decision := c.StopDecision()
	if decision == nil || !decision.Converged {
		t.Fatalf("stratified campaign did not stop on convergence: %+v", decision)
	}
	if rep.Total >= spec.Flips {
		t.Fatalf("adaptive stratified campaign spent the whole budget: %d/%d", rep.Total, spec.Flips)
	}
	if rep.Convergence == nil || !rep.Convergence.Converged {
		t.Fatalf("merged report not converged: %+v", rep.Convergence)
	}

	// The journal must record the allocation epochs themselves — at least
	// two, i.e. at least one re-allocation decided mid-campaign over sealed
	// counts — so replay re-plans identically.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	allocs, stops := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n")[1:] {
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		switch e.Shard {
		case journalShardAlloc:
			allocs++
			if e.Alloc == nil || len(e.Alloc.Shards) == 0 {
				t.Fatalf("allocation record without planned shards: %q", line)
			}
			for _, l := range e.Alloc.Shards {
				if l.Stratum == "" {
					t.Fatalf("allocation-planned lease without a stratum: %+v", l)
				}
			}
		case journalShardStop:
			stops++
		}
	}
	if allocs < 2 {
		t.Fatalf("journal records %d allocation epochs, want >= 2 (a mid-campaign re-allocation)", allocs)
	}
	if stops != 1 {
		t.Fatalf("journal records %d stop decisions, want 1", stops)
	}

	// Restart over the journal: no workers, identical report and decision.
	c2, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rep2, err := c2.Wait(ctx)
	if err != nil {
		t.Fatalf("replayed coordinator did not finish immediately: %v", err)
	}
	if rep2.Total != rep.Total {
		t.Errorf("replayed total %d, original %d", rep2.Total, rep.Total)
	}
	if !reflect.DeepEqual(rep2.Counts, rep.Counts) {
		t.Errorf("replayed counts differ:\nreplay:   %v\noriginal: %v", rep2.Counts, rep.Counts)
	}
	if !reflect.DeepEqual(rep2.ByStratum, rep.ByStratum) {
		t.Errorf("replayed per-stratum counts differ:\nreplay:   %v\noriginal: %v", rep2.ByStratum, rep.ByStratum)
	}
	if d2 := c2.StopDecision(); !reflect.DeepEqual(d2, decision) {
		t.Errorf("replayed stop decision differs:\nreplay:   %+v\noriginal: %+v", d2, decision)
	}
	if p := c2.Progress(); !p.StoppedEarly {
		t.Error("replayed coordinator does not report the early stop")
	}
}

// TestJournalBindsAllocPolicy: a journal written under one allocation
// policy must refuse resumption under another — replaying stratum shards
// into a uniform plan (or vice versa) would corrupt the ledger.
func TestJournalBindsAllocPolicy(t *testing.T) {
	spec := stratifiedSpec()
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	c, err := NewCoordinator(CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	uniform := spec
	uniform.Alloc = core.AllocConfig{}
	if _, err := NewCoordinator(CoordConfig{Campaign: uniform, ShardSize: 10, Journal: journal}); err == nil {
		t.Error("uniform coordinator accepted a stratified campaign's journal")
	}
}
