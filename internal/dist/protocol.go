// Package dist is the distributed campaign execution subsystem: a
// coordinator shards a campaign into deterministic injection-index ranges
// and leases them over HTTP+JSON to worker processes, which execute each
// shard with the ordinary warm-clone campaign machinery and post back the
// shard Report. TTL leases with heartbeats detect worker death; expired
// shards are re-queued with bounded retries; completed shards are logged
// to an on-disk journal so a restarted coordinator resumes instead of
// redoing finished work. Because a campaign's sample is a pure function of
// (seed, flips, filter) — see core.SampleCampaignBits — every shard is
// deterministic and idempotent, and merging the shard Reports in shard
// order reproduces the single-process Report exactly.
package dist

import (
	"encoding/json"
	"fmt"

	"sfi/internal/core"
	"sfi/internal/latch"
	"sfi/internal/obs"
)

// FilterSpec is the wire form of a latch.Filter: campaign filters are
// closures and cannot cross a process boundary, so the coordinator ships
// this declarative form and each worker rebuilds the closure locally.
type FilterSpec struct {
	// Kind selects the filter family: "" (whole design), "unit", "type"
	// (latch type) or "prefix" (group-name prefix, macro targeting).
	Kind string `json:"kind,omitempty"`
	Arg  string `json:"arg,omitempty"`
}

// Filter materializes the spec into a latch.Filter (nil for the
// whole-design spec).
func (f FilterSpec) Filter() (latch.Filter, error) {
	switch f.Kind {
	case "":
		return nil, nil
	case "unit":
		return latch.ByUnit(f.Arg), nil
	case "type":
		for _, t := range latch.Types {
			if t.String() == f.Arg {
				return latch.ByType(t), nil
			}
		}
		return nil, fmt.Errorf("dist: unknown latch type %q", f.Arg)
	case "prefix":
		return core.ByGroupPrefix(f.Arg), nil
	default:
		return nil, fmt.Errorf("dist: unknown filter kind %q", f.Kind)
	}
}

// CampaignSpec is the serializable description of a campaign — everything
// a worker needs to reproduce its slice of the deterministic sample. It is
// the wire twin of core.CampaignConfig minus the process-local parts
// (filter closure, observability callbacks, shard range).
type CampaignSpec struct {
	Runner      core.RunnerConfig `json:"runner"`
	Seed        uint64            `json:"seed"`
	Flips       int               `json:"flips"`
	Filter      FilterSpec        `json:"filter"`
	KeepResults bool              `json:"keep_results,omitempty"`

	// ShardWorkers is the number of concurrent model copies a worker
	// process fans each shard out over (0 = GOMAXPROCS). A worker's own
	// configuration may override it.
	ShardWorkers int `json:"shard_workers,omitempty"`

	// Stop is the campaign's adaptive stopping rule. Workers always run
	// their shards to the end of the leased range — only the coordinator
	// evaluates convergence, over sealed completed-shard counts, and it
	// cancels outstanding leases by answering heartbeats with 410 once the
	// rule fires. Keeping the decision off the workers makes it a pure
	// function of which shards completed, so a journal replay reaches the
	// same verdict.
	Stop core.StopConfig `json:"stop,omitempty"`

	// Alloc selects the campaign's budget allocation across sampling
	// strata. Under AllocNeyman the coordinator plans shards per
	// allocation epoch — each shard a slice of one stratum's sequence,
	// carried on the lease — and re-allocates at epoch boundaries over
	// sealed counts. Workers stay allocation-agnostic: a stratum shard is
	// an ordinary campaign over a different deterministic bit slice. The
	// zero value (uniform) keeps the wire format byte-identical.
	Alloc core.AllocConfig `json:"alloc,omitzero"`
}

// CampaignConfig materializes the spec into a runnable configuration for
// one leased shard. A lease with a Stratum scopes the shard range to that
// stratum's deterministic sequence (stratified campaigns); otherwise the
// range indexes the pooled uniform sample as always.
func (s CampaignSpec) CampaignConfig(lease ShardLease) (core.CampaignConfig, error) {
	f, err := s.Filter.Filter()
	if err != nil {
		return core.CampaignConfig{}, err
	}
	shard := core.ShardRange{Lo: lease.Lo, Hi: lease.Hi}
	return core.CampaignConfig{
		Runner:      s.Runner,
		Seed:        s.Seed,
		Flips:       s.Flips,
		Filter:      f,
		KeepResults: s.KeepResults,
		Workers:     s.ShardWorkers,
		Shard:       &shard,
		Stratum:     lease.Stratum,
	}, nil
}

// WireReport is the lossless wire encoding of a core.Report. (The Report
// type's own MarshalJSON is a human-facing export that drops vanished
// results and cannot be unmarshalled; shard transport and the journal need
// exact round-trips.)
type WireReport struct {
	Total     int                       `json:"total"`
	Workers   int                       `json:"workers,omitempty"`
	Counts    map[string]int            `json:"counts"`
	ByUnit    map[string]map[string]int `json:"by_unit,omitempty"`
	ByType    map[string]map[string]int `json:"by_type,omitempty"`
	ByStratum map[string]map[string]int `json:"by_stratum,omitempty"`
	Results   []core.Result             `json:"results,omitempty"`
	Metrics   *obs.Snapshot             `json:"metrics,omitempty"`
}

// EncodeReport converts a Report to its wire form.
func EncodeReport(r *core.Report) *WireReport {
	w := &WireReport{
		Total:   r.Total,
		Workers: r.Workers,
		Counts:  make(map[string]int, len(r.Counts)),
		Results: r.Results,
		Metrics: r.Metrics,
	}
	for o, n := range r.Counts {
		w.Counts[o.String()] = n
	}
	if len(r.ByUnit) > 0 {
		w.ByUnit = make(map[string]map[string]int, len(r.ByUnit))
		for unit, row := range r.ByUnit {
			w.ByUnit[unit] = encodeOutcomeRow(row)
		}
	}
	if len(r.ByType) > 0 {
		w.ByType = make(map[string]map[string]int, len(r.ByType))
		for t, row := range r.ByType {
			w.ByType[t.String()] = encodeOutcomeRow(row)
		}
	}
	if len(r.ByStratum) > 0 {
		w.ByStratum = make(map[string]map[string]int, len(r.ByStratum))
		for key, row := range r.ByStratum {
			w.ByStratum[key] = encodeOutcomeRow(row)
		}
	}
	return w
}

func encodeOutcomeRow(row map[core.Outcome]int) map[string]int {
	out := make(map[string]int, len(row))
	for o, n := range row {
		out[o.String()] = n
	}
	return out
}

// Report converts the wire form back to a core.Report.
func (w *WireReport) Report() (*core.Report, error) {
	r := &core.Report{
		Total:   w.Total,
		Workers: w.Workers,
		Counts:  make(map[core.Outcome]int, len(w.Counts)),
		ByUnit:  make(map[string]map[core.Outcome]int, len(w.ByUnit)),
		ByType:  make(map[latch.Type]map[core.Outcome]int, len(w.ByType)),
		Results: w.Results,
		Metrics: w.Metrics,
	}
	for name, n := range w.Counts {
		o, err := outcomeByName(name)
		if err != nil {
			return nil, err
		}
		r.Counts[o] = n
	}
	for unit, row := range w.ByUnit {
		dec, err := decodeOutcomeRow(row)
		if err != nil {
			return nil, err
		}
		r.ByUnit[unit] = dec
	}
	for name, row := range w.ByType {
		var typ latch.Type
		for _, t := range latch.Types {
			if t.String() == name {
				typ = t
			}
		}
		if typ == 0 {
			return nil, fmt.Errorf("dist: unknown latch type %q in report", name)
		}
		dec, err := decodeOutcomeRow(row)
		if err != nil {
			return nil, err
		}
		r.ByType[typ] = dec
	}
	if len(w.ByStratum) > 0 {
		r.ByStratum = make(map[string]map[core.Outcome]int, len(w.ByStratum))
		for key, row := range w.ByStratum {
			dec, err := decodeOutcomeRow(row)
			if err != nil {
				return nil, err
			}
			r.ByStratum[key] = dec
		}
	}
	return r, nil
}

func decodeOutcomeRow(row map[string]int) (map[core.Outcome]int, error) {
	out := make(map[core.Outcome]int, len(row))
	for name, n := range row {
		o, err := outcomeByName(name)
		if err != nil {
			return nil, err
		}
		out[o] = n
	}
	return out, nil
}

func outcomeByName(name string) (core.Outcome, error) {
	for _, o := range core.Outcomes {
		if o.String() == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown outcome %q in report", name)
}

// ShardLease identifies one leased shard: injection indices [Lo, Hi) of
// the campaign sample — or, when Stratum is set (stratified campaigns),
// sequence indices [Lo, Hi) of that sampling stratum's own deterministic
// permutation.
type ShardLease struct {
	ID      int    `json:"id"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Stratum string `json:"stratum,omitempty"`
}

// Wire messages. Every coordinator response also uses HTTP status codes:
// 200 OK, 204 no work available right now, 410 campaign over (done or
// failed), 409 lease not held.
type (
	leaseRequest struct {
		Worker string `json:"worker"`
	}
	leaseResponse struct {
		Shard    ShardLease   `json:"shard"`
		Campaign CampaignSpec `json:"campaign"`
		TTLMs    int64        `json:"ttl_ms"`
		// Traceparent is the W3C-style trace context of the coordinator's
		// shard span ("" when the coordinator runs untraced). A worker
		// that receives one parents its shard.run span — and, through it,
		// the core campaign and per-batch engine spans — under it, so the
		// causal tree stays connected across the process boundary.
		Traceparent string `json:"traceparent,omitempty"`
	}
	heartbeatRequest struct {
		Worker string `json:"worker"`
		Shard  int    `json:"shard"`
		// Traceparent echoes the worker's shard.run span context so
		// coordinator-side heartbeat forensics (gap events) correlate with
		// the worker's spans.
		Traceparent string `json:"traceparent,omitempty"`
		// Delta is the piggybacked metrics increment since the worker's
		// previous heartbeat for this shard (obs.Snapshot.Sub of successive
		// cumulative snapshots; nil when the worker has nothing new or runs
		// with observability off). The coordinator accumulates deltas into
		// its live fleet view; the shard's completion report replaces them
		// with the exact final snapshot.
		Delta *obs.Snapshot `json:"delta,omitempty"`
	}
	heartbeatResponse struct {
		TTLMs int64 `json:"ttl_ms"`
	}
	completeRequest struct {
		Worker string      `json:"worker"`
		Shard  int         `json:"shard"`
		Report *WireReport `json:"report"`
		// Trace is a bounded, sampled segment of the shard's injection
		// trace (JSONL lines as emitted by obs.TraceSink), forwarded into
		// the coordinator's shard trace for post-hoc forensics.
		Trace []json.RawMessage `json:"trace,omitempty"`
		// Spans is the shard's finished campaign spans (shard.run, the
		// core campaign spans, per-batch engine passes), carried home so
		// the coordinator's trace ring holds the whole cross-process tree.
		// Bounded by the worker's SpanAttach.
		Spans []obs.Span `json:"spans,omitempty"`
	}
	failRequest struct {
		Worker string `json:"worker"`
		Shard  int    `json:"shard"`
		Error  string `json:"error"`
	}
)
