package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sfi/internal/core"
	"sfi/internal/engine"
)

// awanSpec is a small gate-level campaign: an 8-lane bank of 8-bit
// checked ALUs (208 latch bits) instead of the default 1600-bit bank.
func awanSpec() CampaignSpec {
	rc := core.DefaultRunnerConfig()
	rc.Backend = "awan"
	rc.Awan.Width = 8
	rc.Awan.Lanes = 8
	return CampaignSpec{
		Runner:       rc,
		Seed:         7,
		Flips:        48,
		KeepResults:  true,
		ShardWorkers: 2,
	}
}

// TestJournalRejectsForeignBackend: a journal written for one engine
// backend must refuse to resume a campaign on another — shard reports
// from different machine models must never merge, even when seed, flips
// and filter all coincide.
func TestJournalRejectsForeignBackend(t *testing.T) {
	spec := testSpec()
	spec.Flips = 30
	journal := filepath.Join(t.TempDir(), "campaign.journal")
	c1, err := NewCoordinator(CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()

	spec.Runner.Backend = "awan"
	if _, err := NewCoordinator(CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal}); err == nil {
		t.Fatal("coordinator resumed a p6lite journal with an awan campaign")
	}

	// The header binds the *resolved* name: an explicit "p6lite" spec must
	// still resume a journal written under the default empty backend.
	spec.Runner.Backend = engine.DefaultBackend
	c3, err := NewCoordinator(CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal})
	if err != nil {
		t.Fatalf("explicit default backend rejected its own journal: %v", err)
	}
	c3.Close()
}

// TestAwanLoopbackEquivalence mirrors TestLoopbackEquivalence for the
// gate-level backend: a 4-worker distributed awan campaign must produce
// totals, per-unit/per-type rows and kept per-injection results identical
// to the same-seed single-process run.
func TestAwanLoopbackEquivalence(t *testing.T) {
	spec := awanSpec()
	c, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 12})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			workerErr <- RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          fmt.Sprintf("w%d", i),
				PollEvery:   20 * time.Millisecond,
			})
		}(i)
	}
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := <-workerErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	ccfg, err := spec.CampaignConfig(ShardLease{Lo: 0, Hi: spec.Flips})
	if err != nil {
		t.Fatal(err)
	}
	ccfg.Workers = 2
	want, err := core.RunCampaign(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	if got.Total != want.Total {
		t.Fatalf("total: distributed %d, single-process %d", got.Total, want.Total)
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Errorf("outcome counts differ:\ndist:   %v\nsingle: %v", got.Counts, want.Counts)
	}
	if !reflect.DeepEqual(got.ByUnit, want.ByUnit) {
		t.Errorf("per-unit counts differ:\ndist:   %v\nsingle: %v", got.ByUnit, want.ByUnit)
	}
	if !reflect.DeepEqual(got.ByType, want.ByType) {
		t.Errorf("per-type counts differ:\ndist:   %v\nsingle: %v", got.ByType, want.ByType)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("kept results: distributed %d, single-process %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Bit != w.Bit || g.Outcome != w.Outcome {
			t.Fatalf("result %d differs: dist bit %d %v, single bit %d %v",
				i, g.Bit, g.Outcome, w.Bit, w.Outcome)
		}
	}
}

// TestAwanDistBatchScalarEquivalence: a 4-worker distributed awan
// campaign — whose shards each run the bit-parallel batch path — must
// reproduce the scalar (BatchLanes=1) single-process run bit for bit.
// Shards slice the sample before batches are planned, so this also pins
// down that batch composition cannot leak into per-injection results.
func TestAwanDistBatchScalarEquivalence(t *testing.T) {
	spec := awanSpec()
	c, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 12})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			workerErr <- RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          fmt.Sprintf("w%d", i),
				PollEvery:   20 * time.Millisecond,
			})
		}(i)
	}
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := <-workerErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	scalarSpec := spec
	scalarSpec.Runner.BatchLanes = 1
	ccfg, err := scalarSpec.CampaignConfig(ShardLease{Lo: 0, Hi: spec.Flips})
	if err != nil {
		t.Fatal(err)
	}
	ccfg.Workers = 2
	want, err := core.RunCampaign(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Errorf("outcome counts differ:\ndist/batch: %v\nscalar:     %v", got.Counts, want.Counts)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Errorf("per-injection results differ between distributed batch and scalar runs")
	}
}

// TestWireReportRoundTripBothBackends: for each backend, a real campaign
// report must survive the wire encoding (EncodeReport → JSON → WireReport
// → Report → re-encode) with byte-identical JSON — the property shard
// merging and journal replay both depend on.
func TestWireReportRoundTripBothBackends(t *testing.T) {
	for _, backend := range []string{"p6lite", "awan"} {
		t.Run(backend, func(t *testing.T) {
			var spec CampaignSpec
			if backend == "awan" {
				spec = awanSpec()
			} else {
				spec = testSpec()
			}
			spec.Flips = 16
			ccfg, err := spec.CampaignConfig(ShardLease{Lo: 0, Hi: spec.Flips})
			if err != nil {
				t.Fatal(err)
			}
			ccfg.Workers = 2
			rep, err := core.RunCampaign(ccfg)
			if err != nil {
				t.Fatal(err)
			}

			first, err := json.Marshal(EncodeReport(rep))
			if err != nil {
				t.Fatal(err)
			}
			var wire WireReport
			if err := json.Unmarshal(first, &wire); err != nil {
				t.Fatal(err)
			}
			back, err := wire.Report()
			if err != nil {
				t.Fatal(err)
			}
			second, err := json.Marshal(EncodeReport(back))
			if err != nil {
				t.Fatal(err)
			}
			if string(first) != string(second) {
				t.Fatalf("wire round trip not stable:\nfirst:  %s\nsecond: %s", first, second)
			}
			if !reflect.DeepEqual(rep.Counts, back.Counts) {
				t.Fatalf("counts changed across the wire: %v vs %v", rep.Counts, back.Counts)
			}
		})
	}
}
