package dist

// A worker must be able to materialize whichever backend the coordinator's
// campaign spec names, so the dist package links every engine backend in;
// registration happens in their package inits.
import (
	_ "sfi/internal/engine/awan"
	_ "sfi/internal/engine/p6lite"
)
