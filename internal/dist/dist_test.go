package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sfi/internal/core"
)

// testSpec is a real (model-executing) campaign small enough for tests.
func testSpec() CampaignSpec {
	rc := core.DefaultRunnerConfig()
	rc.AVP.Testcases = 6
	rc.AVP.BodyOps = 14
	return CampaignSpec{
		Runner:       rc,
		Seed:         7,
		Flips:        48,
		KeepResults:  true,
		ShardWorkers: 2,
	}
}

func startCoord(t *testing.T, cfg CoordConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return c, srv
}

// rawPost speaks the wire protocol directly — used to play misbehaving or
// dying workers that the real RunWorker loop would never be.
func rawPost(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// fakeWire fabricates a valid wire report for a size-injection shard
// (protocol tests don't need to run the model).
func fakeWire(size int) *WireReport {
	return &WireReport{
		Total:  size,
		Counts: map[string]int{"vanished": size - 1, "corrected": 1},
		ByUnit: map[string]map[string]int{"FXU": {"vanished": size - 1, "corrected": 1}},
		ByType: map[string]map[string]int{"FUNC": {"vanished": size - 1, "corrected": 1}},
	}
}

// TestLoopbackEquivalence is the subsystem's consistency acceptance test:
// a 4-worker distributed campaign must produce outcome totals — per-unit
// and per-type included — identical to the same-seed single-process run,
// and the kept per-injection results must match bit for bit.
func TestLoopbackEquivalence(t *testing.T) {
	spec := testSpec()
	c, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 12})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			workerErr <- RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          fmt.Sprintf("w%d", i),
				PollEvery:   20 * time.Millisecond,
			})
		}(i)
	}
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := <-workerErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	ccfg, err := spec.CampaignConfig(ShardLease{Lo: 0, Hi: spec.Flips})
	if err != nil {
		t.Fatal(err)
	}
	ccfg.Workers = 2
	want, err := core.RunCampaign(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	if got.Total != want.Total {
		t.Fatalf("total: distributed %d, single-process %d", got.Total, want.Total)
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Errorf("outcome counts differ:\ndist:   %v\nsingle: %v", got.Counts, want.Counts)
	}
	if !reflect.DeepEqual(got.ByUnit, want.ByUnit) {
		t.Errorf("per-unit counts differ:\ndist:   %v\nsingle: %v", got.ByUnit, want.ByUnit)
	}
	if !reflect.DeepEqual(got.ByType, want.ByType) {
		t.Errorf("per-type counts differ:\ndist:   %v\nsingle: %v", got.ByType, want.ByType)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("kept results: distributed %d, single-process %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		g, w := got.Results[i], want.Results[i]
		if g.Bit != w.Bit || g.Outcome != w.Outcome {
			t.Fatalf("result %d differs: dist bit %d %v, single bit %d %v",
				i, g.Bit, g.Outcome, w.Bit, w.Outcome)
		}
	}
}

// TestDeadWorkerShardRequeued kills a worker mid-shard (it leases and then
// vanishes without heartbeats); the lease must expire, the shard must be
// re-queued and completed by a surviving worker, and the campaign must
// still finish completely.
func TestDeadWorkerShardRequeued(t *testing.T) {
	spec := testSpec()
	spec.Flips = 24
	c, srv := startCoord(t, CoordConfig{
		Campaign:  spec,
		ShardSize: 12,
		LeaseTTL:  300 * time.Millisecond,
	})

	// The zombie takes shard 0 and dies.
	var zl leaseResponse
	if s := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "zombie"}, &zl); s != http.StatusOK {
		t.Fatalf("zombie lease: status %d", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "survivor", PollEvery: 20 * time.Millisecond,
		})
	}()
	rep, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if rep.Total != spec.Flips {
		t.Fatalf("campaign total %d, want %d", rep.Total, spec.Flips)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s0 := c.shards[zl.Shard.ID]
	if s0.attempts < 2 {
		t.Errorf("abandoned shard re-leased %d times, want >= 2", s0.attempts)
	}
	if s0.status != shardDone {
		t.Errorf("abandoned shard not completed")
	}
}

// TestCompleteIdempotent delivers the same shard report twice (a worker
// retrying a complete whose ack it lost); the shard must count once.
func TestCompleteIdempotent(t *testing.T) {
	spec := testSpec()
	spec.Flips = 20
	c, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 10})

	var l leaseResponse
	if s := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "w"}, &l); s != http.StatusOK {
		t.Fatalf("lease: status %d", s)
	}
	req := completeRequest{Worker: "w", Shard: l.Shard.ID, Report: fakeWire(10)}
	for i := 0; i < 2; i++ {
		if s := rawPost(t, srv.URL+"/v1/complete", req, nil); s != http.StatusOK {
			t.Fatalf("complete #%d: status %d", i+1, s)
		}
	}
	p := c.Progress()
	if p.Done != 1 || p.Injections != 10 {
		t.Fatalf("after double complete: done %d, injections %d; want 1, 10", p.Done, p.Injections)
	}

	// Finish the other shard and confirm the merge counted shard 0 once.
	var l2 leaseResponse
	if s := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "w"}, &l2); s != http.StatusOK {
		t.Fatalf("lease 2: status %d", s)
	}
	rawPost(t, srv.URL+"/v1/complete", completeRequest{Worker: "w", Shard: l2.Shard.ID, Report: fakeWire(10)}, nil)
	rep, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 20 || rep.Counts[core.Corrected] != 2 {
		t.Fatalf("merged: total %d corrected %d; want 20, 2", rep.Total, rep.Counts[core.Corrected])
	}
}

// TestJournalRestart kills a coordinator after two of three shards are
// durably complete; its successor over the same journal must resume with
// those shards done and finish from there.
func TestJournalRestart(t *testing.T) {
	spec := testSpec()
	spec.Flips = 30
	journal := filepath.Join(t.TempDir(), "campaign.journal")
	cfg := CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal}

	c1, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	for i := 0; i < 2; i++ {
		var l leaseResponse
		if s := rawPost(t, srv1.URL+"/v1/lease", leaseRequest{Worker: "w"}, &l); s != http.StatusOK {
			t.Fatalf("lease %d: status %d", i, s)
		}
		if s := rawPost(t, srv1.URL+"/v1/complete",
			completeRequest{Worker: "w", Shard: l.Shard.ID, Report: fakeWire(10)}, nil); s != http.StatusOK {
			t.Fatalf("complete %d: status %d", i, s)
		}
	}
	srv1.Close()
	c1.Close() // the "kill": no graceful campaign finish

	c2, srv2 := startCoord(t, cfg)
	p := c2.Progress()
	if p.Done != 2 || p.Injections != 20 {
		t.Fatalf("restarted coordinator: done %d injections %d; want 2, 20", p.Done, p.Injections)
	}
	var l leaseResponse
	if s := rawPost(t, srv2.URL+"/v1/lease", leaseRequest{Worker: "w"}, &l); s != http.StatusOK {
		t.Fatalf("post-restart lease: status %d", s)
	}
	if got, want := l.Shard.ID, 2; got != want {
		t.Fatalf("post-restart lease handed shard %d, want the unfinished shard %d", got, want)
	}
	rawPost(t, srv2.URL+"/v1/complete", completeRequest{Worker: "w", Shard: l.Shard.ID, Report: fakeWire(10)}, nil)
	rep, err := c2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 30 {
		t.Fatalf("resumed campaign total %d, want 30", rep.Total)
	}
}

// TestJournalRejectsForeignCampaign: resuming a different campaign over an
// existing journal must fail loudly instead of merging unrelated shards.
func TestJournalRejectsForeignCampaign(t *testing.T) {
	spec := testSpec()
	spec.Flips = 30
	journal := filepath.Join(t.TempDir(), "campaign.journal")
	c1, err := NewCoordinator(CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	spec.Seed = 99
	if _, err := NewCoordinator(CoordConfig{Campaign: spec, ShardSize: 10, Journal: journal}); err == nil {
		t.Fatal("coordinator accepted a journal from a different campaign")
	}
}

// TestShardAttemptsExhausted: a shard abandoned MaxAttempts times fails
// the whole campaign (bounded retries, then campaign-level error).
func TestShardAttemptsExhausted(t *testing.T) {
	spec := testSpec()
	spec.Flips = 10
	c, srv := startCoord(t, CoordConfig{
		Campaign:    spec,
		ShardSize:   10,
		LeaseTTL:    100 * time.Millisecond,
		MaxAttempts: 1,
	})
	if s := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "zombie"}, &leaseResponse{}); s != http.StatusOK {
		t.Fatalf("lease: status %d", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx); err == nil {
		t.Fatal("campaign succeeded despite an exhausted shard")
	} else if ctx.Err() != nil {
		t.Fatalf("campaign did not fail before timeout: %v", err)
	}
}

// TestWireReportRoundTrip: encode/decode must be lossless for everything
// the merge consumes.
func TestWireReportRoundTrip(t *testing.T) {
	rep, err := (&WireReport{
		Total:  5,
		Counts: map[string]int{"vanished": 3, "sdc": 2},
		ByUnit: map[string]map[string]int{"LSU": {"vanished": 3}, "IFU": {"sdc": 2}},
		ByType: map[string]map[string]int{"REGFILE": {"vanished": 3}, "FUNC": {"sdc": 2}},
	}).Report()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(EncodeReport(rep))
	if err != nil {
		t.Fatal(err)
	}
	var back WireReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	rep2, err := back.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatalf("round trip changed the report:\n%+v\n%+v", rep, rep2)
	}
	if _, err := (&WireReport{Counts: map[string]int{"nope": 1}}).Report(); err == nil {
		t.Fatal("decoded a report with an unknown outcome")
	}
}
