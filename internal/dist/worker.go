package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"reflect"
	"time"

	"sfi/internal/core"
)

// WorkerConfig parameterizes one campaign worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8430".
	Coordinator string

	// ID identifies this worker in leases and logs ("" derives one from
	// hostname and pid).
	ID string

	// Workers overrides the campaign's ShardWorkers: concurrent model
	// copies this process fans each shard out over (0 = use the spec).
	Workers int

	// PollEvery is the lease re-poll period while no shard is available
	// (default 250ms).
	PollEvery time.Duration

	// Client is the HTTP client ( nil = a default with a 30s timeout).
	Client *http.Client

	// Logf receives worker lifecycle logs (nil = silent).
	Logf func(format string, args ...any)
}

// Worker leases shards from a coordinator and executes them. The
// expensive part of shard start-up — generating the AVP, warming the
// model to steady state and capturing the phased checkpoints — is paid
// once: the first shard builds a prototype Runner and every later shard
// (and every concurrent model copy, via the usual warm-clone pool) reuses
// it.
type worker struct {
	cfg   WorkerConfig
	proto *core.Runner
	// protoCfg is the runner spec the prototype was built from; a spec
	// change (new campaign on a reused worker) forces a rebuild.
	protoCfg core.RunnerConfig
}

// RunWorker runs the worker loop until the coordinator reports the
// campaign over (nil), ctx is cancelled (ctx error), or a shard fails
// locally in a way that retrying cannot fix.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.ID == "" {
		host, _ := os.Hostname()
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	w := &worker{cfg: cfg}
	for {
		lease, status, err := w.lease(ctx)
		switch {
		case err != nil:
			// Coordinator unreachable (it may be restarting): back off and
			// re-poll; ctx bounds the wait.
			w.cfg.Logf("worker %s: lease: %v", cfg.ID, err)
			if !sleep(ctx, cfg.PollEvery) {
				return context.Cause(ctx)
			}
		case status == http.StatusGone:
			w.cfg.Logf("worker %s: campaign over", cfg.ID)
			return nil
		case status == http.StatusNoContent:
			if !sleep(ctx, cfg.PollEvery) {
				return context.Cause(ctx)
			}
		case status == http.StatusOK:
			if err := w.runShard(ctx, lease); err != nil {
				if ctx.Err() != nil {
					return context.Cause(ctx)
				}
				return err
			}
		default:
			return fmt.Errorf("dist: worker %s: unexpected lease status %d", cfg.ID, status)
		}
	}
}

// runShard executes one leased shard: heartbeats in the background, runs
// the shard campaign against the (reused) prototype, and reports the
// result. Losing the lease cancels the shard promptly and returns nil —
// the shard is someone else's now. A shard execution error is handed back
// with /v1/fail so the coordinator can re-queue without waiting for the
// lease to expire.
func (w *worker) runShard(ctx context.Context, lease *leaseResponse) error {
	id, sh := w.cfg.ID, lease.Shard
	w.cfg.Logf("worker %s: shard %d [%d,%d)", id, sh.ID, sh.Lo, sh.Hi)

	ccfg, err := lease.Campaign.CampaignConfig(core.ShardRange{Lo: sh.Lo, Hi: sh.Hi})
	if err != nil {
		w.fail(sh.ID, err)
		return err
	}
	if w.cfg.Workers > 0 {
		ccfg.Workers = w.cfg.Workers
	}
	// Shard reports always carry metrics: the coordinator's /metrics view
	// is the merge of them, and the measured overhead is <5%.
	ccfg.Obs.Metrics = true

	// Heartbeat from lease grant until the shard finishes, covering the
	// (expensive, once-per-process) prototype build below as well as the
	// run itself; a refused heartbeat (lease lost, campaign over) cancels
	// the in-flight shard.
	shardCtx, cancel := context.WithCancelCause(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ttl := time.Duration(lease.TTLMs) * time.Millisecond
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
				status, err := w.post("/v1/heartbeat", heartbeatRequest{Worker: id, Shard: sh.ID}, nil)
				if err != nil {
					continue // transient; the lease survives until TTL
				}
				if status != http.StatusOK {
					cancel(errLeaseLost)
					return
				}
			}
		}
	}()

	if w.proto == nil || !reflect.DeepEqual(w.protoCfg, ccfg.Runner) {
		proto, err := core.NewRunner(ccfg.Runner)
		if err != nil {
			cancel(nil)
			<-hbDone
			w.fail(sh.ID, err)
			return fmt.Errorf("dist: worker %s: build runner: %w", id, err)
		}
		w.proto, w.protoCfg = proto, ccfg.Runner
	}

	rep, runErr := core.RunCampaignWith(shardCtx, w.proto, ccfg)
	cancel(nil)
	<-hbDone

	switch {
	case runErr == nil:
		return w.complete(sh.ID, rep)
	case errors.Is(context.Cause(shardCtx), errLeaseLost):
		w.cfg.Logf("worker %s: shard %d lease lost, abandoning", id, sh.ID)
		return nil
	case ctx.Err() != nil:
		return context.Cause(ctx)
	default:
		w.fail(sh.ID, runErr)
		return fmt.Errorf("dist: worker %s: shard %d: %w", id, sh.ID, runErr)
	}
}

var errLeaseLost = errors.New("dist: shard lease lost")

// complete delivers a shard report, retrying transient transport errors —
// completion is idempotent on the coordinator, so re-sending after a lost
// response is safe.
func (w *worker) complete(shardID int, rep *core.Report) error {
	req := completeRequest{Worker: w.cfg.ID, Shard: shardID, Report: EncodeReport(rep)}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		status, err := w.post("/v1/complete", req, nil)
		if err != nil {
			lastErr = err
			time.Sleep(w.cfg.PollEvery)
			continue
		}
		switch status {
		case http.StatusOK, http.StatusGone:
			return nil
		default:
			return fmt.Errorf("dist: worker %s: complete shard %d: status %d", w.cfg.ID, shardID, status)
		}
	}
	return fmt.Errorf("dist: worker %s: complete shard %d: %w", w.cfg.ID, shardID, lastErr)
}

// fail gives a shard back early (best-effort; lease expiry covers us if
// it doesn't get through).
func (w *worker) fail(shardID int, cause error) {
	w.post("/v1/fail", failRequest{Worker: w.cfg.ID, Shard: shardID, Error: cause.Error()}, nil)
}

func (w *worker) lease(ctx context.Context) (*leaseResponse, int, error) {
	var resp leaseResponse
	status, err := w.postCtx(ctx, "/v1/lease", leaseRequest{Worker: w.cfg.ID}, &resp)
	if err != nil || status != http.StatusOK {
		return nil, status, err
	}
	return &resp, status, nil
}

func (w *worker) post(path string, body, out any) (int, error) {
	return w.postCtx(context.Background(), path, body, out)
}

func (w *worker) postCtx(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// sleep waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
