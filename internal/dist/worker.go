package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"sync/atomic"
	"time"

	"sfi/internal/core"
	"sfi/internal/engine"
	"sfi/internal/obs"
)

// WorkerConfig parameterizes one campaign worker process.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8430".
	Coordinator string

	// ID identifies this worker in leases and logs ("" derives one from
	// hostname and pid).
	ID string

	// Workers overrides the campaign's ShardWorkers: concurrent model
	// copies this process fans each shard out over (0 = use the spec).
	Workers int

	// PollEvery is the lease re-poll period while no shard is available
	// (default 250ms).
	PollEvery time.Duration

	// PollMax caps the exponential backoff of lease polls while the
	// coordinator is unreachable (default 8×PollEvery). Backoff starts at
	// PollEvery, doubles per consecutive failure with ±25% jitter, and
	// resets to PollEvery on any successful response.
	PollMax time.Duration

	// NewRunner overrides how the worker builds its prototype runner from
	// a campaign's runner spec (nil = core.NewRunner). A server embedding
	// workers in-process uses this to serve prototypes from a warm
	// checkpoint-image cache instead of rebuilding per campaign.
	NewRunner func(core.RunnerConfig) (*core.Runner, error)

	// Client is the HTTP client ( nil = a default with a 30s timeout).
	Client *http.Client

	// Log receives structured worker lifecycle events with worker/shard
	// attributes (nil = silent).
	Log *slog.Logger

	// TraceW, when non-nil, receives the worker's own injection trace as
	// JSONL (subject to TraceSample), exactly as a local campaign's -trace
	// output.
	TraceW io.Writer

	// TraceSample records every TraceSample-th injection event to TraceW
	// (0 and 1 both mean every event).
	TraceSample int

	// TraceAttach bounds the sampled injection-trace lines attached to
	// each shard completion and forwarded into the coordinator's shard
	// trace (default 32; negative disables attachment). When TraceW is
	// nil, the worker samples just enough events to fill the attachment
	// instead of tracing every injection.
	TraceAttach int

	// SpanAttach bounds the campaign spans attached to each shard
	// completion (default 512; negative disables span recording for this
	// worker entirely). Spans are only recorded when the lease carries a
	// traceparent — an untraced coordinator costs the worker nothing.
	// When a shard finishes with more spans than the bound, the most
	// recent ones are kept: structural spans (shard.run, campaign.run,
	// merge) finish last, so the tree's spine survives and only early
	// per-batch spans are shed.
	SpanAttach int

	// OnProgress, when non-nil, receives periodic progress of the shard
	// this worker is currently executing — the hook worker-local debug
	// endpoints hang off.
	OnProgress func(ShardLease, core.Progress)

	// NoObs runs shards without metrics collection or heartbeat metric
	// deltas. The coordinator's fleet view then only counts completed
	// shards (by Report totals). Exists for the overhead benchmark; fleet
	// runs leave it false.
	NoObs bool
}

// Worker leases shards from a coordinator and executes them. The
// expensive part of shard start-up — generating the AVP, warming the
// model to steady state and capturing the phased checkpoints — is paid
// once: the first shard builds a prototype Runner and every later shard
// (and every concurrent model copy, via the usual warm-clone pool) reuses
// it.
type worker struct {
	cfg   WorkerConfig
	log   *slog.Logger
	retry *backoff // lease-poll backoff while the coordinator is unreachable

	proto *core.Runner
	// protoCfg is the runner spec the prototype was built from; a spec
	// change (new campaign on a reused worker) forces a rebuild.
	protoCfg core.RunnerConfig
}

// RunWorker runs the worker loop until the coordinator reports the
// campaign over (nil), ctx is cancelled (ctx error), or a shard fails
// locally in a way that retrying cannot fix.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.ID == "" {
		host, _ := os.Hostname()
		cfg.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	if cfg.TraceAttach == 0 {
		cfg.TraceAttach = 32
	}
	if cfg.SpanAttach == 0 {
		cfg.SpanAttach = 512
	}
	if cfg.PollMax <= 0 {
		cfg.PollMax = 8 * cfg.PollEvery
	}
	w := &worker{
		cfg:   cfg,
		log:   cfg.Log.With("worker", cfg.ID),
		retry: newBackoff(cfg.PollEvery, cfg.PollMax),
	}
	for {
		lease, status, err := w.lease(ctx)
		if err == nil {
			// Any response — even 204 no-work — means the coordinator is
			// back; drop the backoff to the base poll period.
			w.retry.reset()
		}
		switch {
		case err != nil:
			// Coordinator unreachable (it may be restarting): back off
			// exponentially with jitter so a fleet that lost its
			// coordinator together doesn't re-poll in lockstep; ctx bounds
			// the wait.
			delay := w.retry.next()
			w.log.Warn("lease poll failed", "err", err, "retry_in", delay.Round(time.Millisecond))
			if !sleep(ctx, delay) {
				return context.Cause(ctx)
			}
		case status == http.StatusGone:
			w.log.Info("campaign over")
			return nil
		case status == http.StatusNoContent:
			if !sleep(ctx, cfg.PollEvery) {
				return context.Cause(ctx)
			}
		case status == http.StatusOK:
			if err := w.runShard(ctx, lease); err != nil {
				if ctx.Err() != nil {
					return context.Cause(ctx)
				}
				return err
			}
		default:
			return fmt.Errorf("dist: worker %s: unexpected lease status %d", cfg.ID, status)
		}
	}
}

// lineCapture buffers up to max JSONL lines written through it — the
// shard-completion trace attachment. Each TraceSink write is exactly one
// line and the sink serializes writes, so no extra locking is needed; the
// captured lines are read only after the shard campaign returns.
type lineCapture struct {
	max   int
	lines []json.RawMessage
}

func (lc *lineCapture) Write(p []byte) (int, error) {
	if len(lc.lines) < lc.max {
		line := bytes.TrimRight(p, "\n")
		lc.lines = append(lc.lines, json.RawMessage(bytes.Clone(line)))
	}
	return len(p), nil
}

// shardObs wires a shard's observability: metrics collection, the live
// snapshot the heartbeat loop reads deltas from, the OnProgress hook, and
// the injection trace (local writer and/or bounded completion
// attachment).
func (w *worker) shardObs(ccfg *core.CampaignConfig, sh ShardLease, ttl time.Duration, live *atomic.Pointer[obs.Snapshot]) *lineCapture {
	if w.cfg.NoObs {
		return nil
	}
	// Shard reports always carry metrics: the coordinator's /metrics view
	// converges on the merge of them, and the measured overhead is <5%.
	ccfg.Obs.Metrics = true
	// Refresh the live snapshot about twice per heartbeat so piggybacked
	// deltas stay current without per-injection merging.
	ccfg.Obs.ProgressEvery = ttl / 6
	ccfg.Obs.Progress = func(p core.Progress) {
		live.Store(p.Metrics)
		if w.cfg.OnProgress != nil {
			w.cfg.OnProgress(sh, p)
		}
	}

	var capture *lineCapture
	var tw io.Writer
	sample := w.cfg.TraceSample
	if w.cfg.TraceAttach > 0 {
		capture = &lineCapture{max: w.cfg.TraceAttach}
		tw = capture
		if w.cfg.TraceW != nil {
			tw = io.MultiWriter(w.cfg.TraceW, capture)
		} else if shardSize := sh.Hi - sh.Lo; sample <= 1 && shardSize > w.cfg.TraceAttach {
			// Attachment-only tracing: stride the samples across the shard
			// instead of marshalling every injection just to keep the
			// first 32.
			sample = shardSize / w.cfg.TraceAttach
		}
	} else if w.cfg.TraceW != nil {
		tw = w.cfg.TraceW
	}
	if tw != nil {
		ccfg.Obs.Trace = obs.NewTraceSink(tw, obs.TraceOptions{Sample: sample})
	}
	return capture
}

// runShard executes one leased shard: heartbeats in the background
// (piggybacking metric deltas), runs the shard campaign against the
// (reused) prototype, and reports the result with a sampled trace segment
// attached. Losing the lease cancels the shard promptly and returns nil —
// the shard is someone else's now. A shard execution error is handed back
// with /v1/fail so the coordinator can re-queue without waiting for the
// lease to expire.
func (w *worker) runShard(ctx context.Context, lease *leaseResponse) error {
	id, sh := w.cfg.ID, lease.Shard
	log := w.log.With("shard", sh.ID)
	log.Info("shard leased", "lo", sh.Lo, "hi", sh.Hi, "stratum", sh.Stratum)

	ccfg, err := lease.Campaign.CampaignConfig(sh)
	if err != nil {
		w.fail(sh.ID, err)
		return err
	}
	if w.cfg.Workers > 0 {
		ccfg.Workers = w.cfg.Workers
	}
	ttl := time.Duration(lease.TTLMs) * time.Millisecond

	// live is the shard's latest cumulative metrics snapshot, refreshed by
	// the campaign's progress goroutine and read by the heartbeat loop.
	var live atomic.Pointer[obs.Snapshot]
	capture := w.shardObs(&ccfg, sh, ttl, &live)

	// When the lease carries a traceparent, join the coordinator's trace:
	// a local tracer (ID stream decorrelated from the coordinator's by
	// mixing the shard ID into the seed) minting spans under the adopted
	// trace ID, with the shard.run span parented on the coordinator's
	// shard span. The finished spans ride home on the completion message.
	var tracer *obs.Tracer
	var shardSp *obs.Span
	tp := ""
	if pctx, ok := obs.ParseTraceparent(lease.Traceparent); ok && w.cfg.SpanAttach > 0 {
		// Seed the local ID stream from the propagated parent span ID: the
		// coordinator drew it from its own stream, so it is unique per shard
		// and already decorrelated from every other tracer in the trace
		// (a shard ordinal would collide with the coordinator's own
		// seq-derived stream whenever the ordinals coincide).
		pid, _ := strconv.ParseUint(pctx.SpanID, 16, 64)
		tracer = obs.NewTracer(lease.Campaign.Seed ^ engine.Splitmix64(pid))
		tracer.SetTraceID(pctx.TraceID)
		shardSp = tracer.StartSpan("shard.run", "worker", pctx).
			Attr("worker", id).AttrInt("lo", int64(sh.Lo)).AttrInt("hi", int64(sh.Hi))
		ccfg.Obs.Tracer = tracer
		ccfg.Obs.Parent = shardSp.Context()
		tp = shardSp.Context().Traceparent()
	}

	// Heartbeat from lease grant until the shard finishes, covering the
	// (expensive, once-per-process) prototype build below as well as the
	// run itself; a refused heartbeat (lease lost, campaign over) cancels
	// the in-flight shard. Each heartbeat carries the metrics delta since
	// the last acknowledged one, building the coordinator's live fleet
	// view.
	shardCtx, cancel := context.WithCancelCause(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		var lastSent *obs.Snapshot
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-t.C:
				hb := heartbeatRequest{Worker: id, Shard: sh.ID, Traceparent: tp}
				cur := live.Load()
				if cur != nil {
					if d := cur.Sub(lastSent); !d.Empty() {
						hb.Delta = d
					}
				}
				status, err := w.post("/v1/heartbeat", hb, nil)
				if err != nil {
					continue // transient; the lease survives until TTL
				}
				if status != http.StatusOK {
					cancel(errLeaseLost)
					return
				}
				if cur != nil {
					lastSent = cur
				}
			}
		}
	}()

	if w.proto == nil || !reflect.DeepEqual(w.protoCfg, ccfg.Runner) {
		bsp := tracer.StartSpan("prototype.build", "worker", shardSp.Context())
		build := w.cfg.NewRunner
		if build == nil {
			build = core.NewRunner
		}
		proto, err := build(ccfg.Runner)
		if err != nil {
			bsp.Attr("error", err.Error()).End()
			cancel(nil)
			<-hbDone
			w.fail(sh.ID, err)
			return fmt.Errorf("dist: worker %s: build runner: %w", id, err)
		}
		bsp.End()
		w.proto, w.protoCfg = proto, ccfg.Runner
	}

	start := time.Now()
	rep, runErr := core.RunCampaignWith(shardCtx, w.proto, ccfg)
	cancel(nil)
	<-hbDone

	switch {
	case runErr == nil:
		shardSp.AttrInt("injections", int64(rep.Total)).End()
		log.Info("shard complete", "injections", rep.Total,
			"elapsed", time.Since(start).Round(time.Millisecond))
		return w.complete(sh.ID, rep, capture, tracer)
	case errors.Is(context.Cause(shardCtx), errLeaseLost):
		log.Warn("lease lost, abandoning shard")
		return nil
	case ctx.Err() != nil:
		return context.Cause(ctx)
	default:
		w.fail(sh.ID, runErr)
		return fmt.Errorf("dist: worker %s: shard %d: %w", id, sh.ID, runErr)
	}
}

var errLeaseLost = errors.New("dist: shard lease lost")

// complete delivers a shard report, retrying transient transport errors —
// completion is idempotent on the coordinator, so re-sending after a lost
// response is safe.
func (w *worker) complete(shardID int, rep *core.Report, capture *lineCapture, tracer *obs.Tracer) error {
	req := completeRequest{Worker: w.cfg.ID, Shard: shardID, Report: EncodeReport(rep)}
	if capture != nil {
		req.Trace = capture.lines
	}
	if spans := tracer.Spans(); len(spans) > 0 {
		if len(spans) > w.cfg.SpanAttach {
			spans = spans[len(spans)-w.cfg.SpanAttach:]
		}
		req.Spans = spans
	}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		status, err := w.post("/v1/complete", req, nil)
		if err != nil {
			lastErr = err
			time.Sleep(w.cfg.PollEvery)
			continue
		}
		switch status {
		case http.StatusOK, http.StatusGone:
			return nil
		default:
			return fmt.Errorf("dist: worker %s: complete shard %d: status %d", w.cfg.ID, shardID, status)
		}
	}
	return fmt.Errorf("dist: worker %s: complete shard %d: %w", w.cfg.ID, shardID, lastErr)
}

// fail gives a shard back early (best-effort; lease expiry covers us if
// it doesn't get through).
func (w *worker) fail(shardID int, cause error) {
	w.post("/v1/fail", failRequest{Worker: w.cfg.ID, Shard: shardID, Error: cause.Error()}, nil)
}

func (w *worker) lease(ctx context.Context) (*leaseResponse, int, error) {
	var resp leaseResponse
	status, err := w.postCtx(ctx, "/v1/lease", leaseRequest{Worker: w.cfg.ID}, &resp)
	if err != nil || status != http.StatusOK {
		return nil, status, err
	}
	return &resp, status, nil
}

func (w *worker) post(path string, body, out any) (int, error) {
	return w.postCtx(context.Background(), path, body, out)
}

func (w *worker) postCtx(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// sleep waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
