package dist

import (
	"time"

	"sfi/internal/obs"
	"sfi/internal/stats"
)

// Status is the coordinator's full fleet view, served as JSON at
// GET /v1/status: the per-shard state machine, per-worker activity, live
// injection totals (completed shards plus heartbeat-reported in-flight
// work), campaign rate and ETA.
type Status struct {
	Shards    int `json:"shards"`
	ShardSize int `json:"shard_size"`

	// States counts shards by state-machine state: "queued" (never
	// leased), "leased" (granted, no heartbeat yet), "heartbeating"
	// (granted and beating), "requeued" (pending again after a lost
	// lease), "completed".
	States map[string]int `json:"states"`

	Grants   int `json:"lease_grants"`
	Requeues int `json:"requeues"`

	// Injections counts classified injections fleet-wide: completed
	// shards exactly, in-flight shards as of their last heartbeat delta.
	Injections uint64 `json:"injections"`
	Total      int    `json:"injections_total"`

	// Rate is fleet-wide *injections* per second since coordinator start;
	// EtaMs extrapolates it over the remaining injections (0 when the
	// rate is still unknown). With a bit-parallel backend one model pass
	// retires many injections, so the injection rate and the pass rate
	// differ by the mean lane occupancy — BatchesPerSec reports the pass
	// rate explicitly (absent for scalar campaigns) so the two are never
	// conflated.
	Rate          float64 `json:"rate_per_sec"`
	BatchesPerSec float64 `json:"batches_per_sec,omitempty"`
	EtaMs         int64   `json:"eta_ms,omitempty"`

	// Utilization is the fleet-wide fraction of worker-model wall time
	// spent injecting, busy-nanoseconds over (workers × elapsed). It
	// undercounts slightly between a shard's last heartbeat and its
	// completion.
	Utilization float64 `json:"utilization,omitempty"`

	// Outcomes is the live fleet-wide outcome mix (same basis as
	// Injections).
	Outcomes map[string]uint64 `json:"outcomes,omitempty"`

	Workers map[string]WorkerView `json:"workers,omitempty"`
	ShardsV []ShardView           `json:"shard_states,omitempty"`

	// Convergence is the live fleet-wide confidence-interval evaluation
	// (same basis as Injections), present when the campaign runs with a
	// stopping rule. The stop decision itself is made over sealed
	// completed-shard counts only; StoppedEarly reports that it fired.
	Convergence  *stats.Convergence `json:"convergence,omitempty"`
	StoppedEarly bool               `json:"stopped_early,omitempty"`

	// Allocation reports a stratified campaign's budget state: the epochs
	// planned so far, the unallocated budget, and the per-stratum census
	// populations, planned draws and sealed injections. Absent for uniform
	// campaigns.
	Allocation *AllocationView `json:"allocation,omitempty"`

	// Latency is the campaign's critical-path latency attribution, derived
	// from the coordinator's span tree (present only when the coordinator
	// runs with a Tracer and spans have been recorded).
	Latency *obs.Attribution `json:"latency,omitempty"`

	ElapsedMs int64  `json:"elapsed_ms"`
	Failed    bool   `json:"failed"`
	Error     string `json:"error,omitempty"`
}

// AllocationView is the /v1/status allocation block of a stratified
// campaign.
type AllocationView struct {
	Mode       string `json:"mode"`
	Epochs     int    `json:"epochs_planned"`
	BudgetLeft int    `json:"budget_left"`
	// Strata lists per-stratum budgets in plan (registration) order.
	Strata []StratumBudgetView `json:"strata"`
}

// StratumBudgetView is one sampling stratum's budget row: its census
// population, the sequence prefix planned into shards so far, and the
// injections sealed by completed shards.
type StratumBudgetView struct {
	Stratum    string `json:"stratum"`
	Population int    `json:"population"`
	Planned    int    `json:"planned"`
	Sealed     int64  `json:"sealed"`
}

// ShardView is one shard's row in the status: its range, state, current
// or last owner, attempts, and live injection count this lease.
type ShardView struct {
	ID       int    `json:"id"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	Stratum  string `json:"stratum,omitempty"`
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	// LiveInjections is heartbeat-reported progress of the current lease
	// (0 for queued/completed shards — completed work is in the totals).
	LiveInjections uint64 `json:"live_injections,omitempty"`
}

// WorkerView is one worker's row in the status.
type WorkerView struct {
	// Injections credited to this worker (heartbeat deltas plus
	// completion top-ups).
	Injections uint64  `json:"injections"`
	Rate       float64 `json:"rate_per_sec"`
	ShardsDone int     `json:"shards_done"`
	Failures   int     `json:"failures,omitempty"`
	LastSeenMs int64   `json:"last_seen_ms"` // milliseconds since last contact
}

// Status assembles the fleet status.
func (c *Coordinator) Status() Status {
	now := time.Now()
	snap := c.fleet.Snapshot()

	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := now.Sub(c.started)
	st := Status{
		Shards:    len(c.shards),
		ShardSize: c.cfg.ShardSize,
		States:    make(map[string]int),
		Grants:    c.grants,
		Requeues:  c.requeues,
		Total:     c.cfg.Campaign.Flips,
		ElapsedMs: elapsed.Milliseconds(),
		Failed:    c.err != nil,
	}
	if c.err != nil {
		st.Error = c.err.Error()
	}
	st.Injections = snap.Injections
	if len(snap.Outcomes) > 0 {
		st.Outcomes = snap.Outcomes
	}
	if stop := c.cfg.Campaign.Stop; stop.Enabled() {
		st.Convergence = snap.Convergence(outcomeClasses(), stop.Rule(), false)
	}
	st.StoppedEarly = c.stoppedEarly
	if c.stratified() {
		av := &AllocationView{
			Mode:       c.cfg.Campaign.Alloc.Mode,
			Epochs:     c.epoch,
			BudgetLeft: c.budgetLeft,
		}
		for _, key := range c.plan.Keys() {
			row := StratumBudgetView{
				Stratum:    key,
				Population: c.strataPops[key],
				Planned:    c.drawn[key],
			}
			for _, n := range c.sealedStrata[key] {
				row.Sealed += n
			}
			av.Strata = append(av.Strata, row)
		}
		st.Allocation = av
	}
	if sec := elapsed.Seconds(); sec > 0 {
		st.Rate = float64(snap.Injections) / sec
		if snap.Batches > 0 {
			st.BatchesPerSec = float64(snap.Batches) / sec
		}
		if st.Rate > 0 {
			remaining := float64(st.Total) - float64(snap.Injections)
			if remaining > 0 {
				st.EtaMs = int64(remaining / st.Rate * 1000)
			}
		}
	}
	if t := c.cfg.Tracer; t != nil && t.Total() > 0 {
		doc := t.Doc()
		st.Latency = &doc.Attribution
	}

	st.ShardsV = make([]ShardView, 0, len(c.shards))
	for _, s := range c.shards {
		v := ShardView{ID: s.ID, Lo: s.Lo, Hi: s.Hi, Stratum: s.Stratum, Attempts: s.attempts}
		switch s.status {
		case shardDone:
			v.State = "completed"
		case shardLeased:
			v.Worker = s.owner
			v.LiveInjections = s.liveInj
			if s.lastBeat.IsZero() {
				v.State = "leased"
			} else {
				v.State = "heartbeating"
			}
		case shardPending:
			if s.attempts > 0 {
				v.State = "requeued"
			} else {
				v.State = "queued"
			}
		}
		st.States[v.State]++
		st.ShardsV = append(st.ShardsV, v)
	}

	if len(c.workers) > 0 {
		st.Workers = make(map[string]WorkerView, len(c.workers))
		for id, ws := range c.workers {
			v := WorkerView{
				Injections: ws.injections,
				ShardsDone: ws.shardsDone,
				Failures:   ws.failures,
				LastSeenMs: now.Sub(ws.lastSeen).Milliseconds(),
			}
			if sec := now.Sub(ws.firstSeen).Seconds(); sec > 0 {
				v.Rate = float64(ws.injections) / sec
			}
			st.Workers[id] = v
		}
		if denom := float64(len(c.workers)) * float64(elapsed.Nanoseconds()); denom > 0 {
			st.Utilization = float64(snap.BusyNs) / denom
		}
	}
	return st
}
