package dist

import (
	"testing"
	"time"
)

// ident disables jitter so the schedule itself can be asserted exactly.
func ident(d time.Duration) time.Duration { return d }

func TestBackoffDoublesToCap(t *testing.T) {
	b := newBackoff(100*time.Millisecond, time.Second)
	b.jitter = ident
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.next(); got != w {
			t.Fatalf("next()[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffResetsOnSuccess(t *testing.T) {
	b := newBackoff(100*time.Millisecond, time.Second)
	b.jitter = ident
	b.next()
	b.next()
	b.reset()
	if got := b.next(); got != 100*time.Millisecond {
		t.Fatalf("after reset next() = %v, want the base delay", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		b := newBackoff(100*time.Millisecond, time.Second)
		d := b.next()
		if d < 75*time.Millisecond || d > 125*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±25%% of the 100ms base", d)
		}
	}
}

func TestBackoffCapAtLeastBase(t *testing.T) {
	b := newBackoff(500*time.Millisecond, 100*time.Millisecond)
	b.jitter = ident
	for i := 0; i < 3; i++ {
		if got := b.next(); got != 500*time.Millisecond {
			t.Fatalf("next() = %v, want the base (cap below base is clamped up)", got)
		}
	}
}
