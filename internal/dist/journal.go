package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"

	"sfi/internal/core"
	"sfi/internal/stats"
)

// The campaign journal is a JSONL file: a header line binding it to one
// campaign plan, then one line per completed shard, plus — for adaptive
// campaigns — one stop-decision line recording the sealed-counts
// convergence evaluation the coordinator stopped on, and — for stratified
// campaigns — one allocation line per epoch recording the budget split and
// the exact shard leases it planned. Lines are appended and fsync'd as the
// decisions happen, so a coordinator killed at any point can be restarted
// over the same journal and resume with every durably completed shard
// already marked done, every recorded allocation re-applied verbatim (in
// order — an allocation is a function of the sealed counts before it), and
// the stop decision, if one was reached, honored verbatim. A torn final
// line (crash mid-append) is ignored on replay — that work simply reruns.

type journalHeader struct {
	V    int    `json:"v"`
	Seed uint64 `json:"seed"`
	// Backend is the resolved engine backend name: shard reports from
	// different machine models must never be merged, so a journal written
	// by one backend rejects resumption under another.
	Backend   string     `json:"backend,omitempty"`
	Flips     int        `json:"flips"`
	ShardSize int        `json:"shard_size"`
	Filter    FilterSpec `json:"filter"`
	// Stop binds the journal to one stopping rule: replaying shards
	// recorded under one rule while evaluating another would let the same
	// journal yield different stop decisions.
	Stop core.StopConfig `json:"stop,omitempty"`
	// Alloc binds the journal to one allocation policy, for the same
	// reason. The zero value (uniform) keeps old journals resumable:
	// their headers decode to the zero value and still compare equal.
	Alloc core.AllocConfig `json:"alloc,omitzero"`
}

// allocRecord is one allocation-epoch decision: the budget the Neyman
// allocator split, the per-stratum shares it chose, and the exact shard
// leases the epoch was planned into. Replay applies the leases verbatim —
// the record makes the re-allocation durable before any of its shards can
// complete, so a restarted coordinator extends the same per-stratum
// sequences instead of re-deriving them against a half-settled ledger.
type allocRecord struct {
	Epoch  int                  `json:"epoch"`
	Budget int                  `json:"budget"`
	Shares []stats.StratumShare `json:"shares"`
	Shards []ShardLease         `json:"shards"`
}

// journalEntry is one post-header line, discriminated by Shard: >= 0 is a
// completed shard's report, -1 the convergence stop decision, -2 an
// allocation epoch.
type journalEntry struct {
	Shard  int                `json:"shard"`
	Report *WireReport        `json:"report,omitempty"`
	Stop   *stats.Convergence `json:"stop,omitempty"`
	Alloc  *allocRecord       `json:"alloc,omitempty"`
}

const (
	journalShardStop  = -1
	journalShardAlloc = -2
)

// replayEntry is one decoded journal line in file order.
type replayEntry struct {
	shard  int
	report *core.Report
	stop   *stats.Convergence
	alloc  *allocRecord
}

type journal struct {
	f *os.File
}

// openJournal opens (or creates) the journal at path for the campaign
// described by hdr, returning the recovered entries in file order. An
// existing journal whose header does not match hdr is rejected: resuming a
// different campaign over it would merge unrelated shards.
func openJournal(path string, hdr journalHeader, log *slog.Logger) (*journal, []replayEntry, error) {
	var entries []replayEntry
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err) || (err == nil && len(data) == 0):
		// Fresh journal.
	case err != nil:
		return nil, nil, fmt.Errorf("dist: read journal: %w", err)
	default:
		lines := bytes.Split(data, []byte("\n"))
		var got journalHeader
		if err := json.Unmarshal(lines[0], &got); err != nil {
			return nil, nil, fmt.Errorf("dist: journal %s: bad header: %w", path, err)
		}
		if got != hdr {
			return nil, nil, fmt.Errorf("dist: journal %s belongs to a different campaign plan (%+v, want %+v)",
				path, got, hdr)
		}
		for i, line := range lines[1:] {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var e journalEntry
			if err := json.Unmarshal(line, &e); err != nil {
				// Torn tail from a crash mid-append: rerun that work.
				log.Warn("journal torn tail ignored", "path", path, "line", i+2)
				break
			}
			re := replayEntry{shard: e.Shard, stop: e.Stop, alloc: e.Alloc}
			if e.Report != nil {
				rep, err := e.Report.Report()
				if err != nil {
					return nil, nil, fmt.Errorf("dist: journal %s: shard %d: %w", path, e.Shard, err)
				}
				re.report = rep
			}
			entries = append(entries, re)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: open journal: %w", err)
	}
	j := &journal{f: f}
	if len(data) == 0 {
		if err := j.writeLine(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, entries, nil
}

func (j *journal) append(shardID int, rep *WireReport) error {
	return j.writeLine(journalEntry{Shard: shardID, Report: rep})
}

// appendStop records the convergence decision the coordinator stopped on.
func (j *journal) appendStop(eval *stats.Convergence) error {
	return j.writeLine(journalEntry{Shard: journalShardStop, Stop: eval})
}

// appendAlloc records one allocation epoch's decision and planned shards.
func (j *journal) appendAlloc(rec allocRecord) error {
	return j.writeLine(journalEntry{Shard: journalShardAlloc, Alloc: &rec})
}

func (j *journal) writeLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() {
	j.f.Close()
}
