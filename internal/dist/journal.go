package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"

	"sfi/internal/core"
	"sfi/internal/stats"
)

// The campaign journal is a JSONL file: a header line binding it to one
// campaign plan, then one line per completed shard, plus — for adaptive
// campaigns — one stop-decision line recording the sealed-counts
// convergence evaluation the coordinator stopped on. Lines are appended
// and fsync'd when a shard completes, so a coordinator killed at any point
// can be restarted over the same journal and resume with every durably
// completed shard already marked done (and the stop decision, if one was
// reached, honored verbatim). A torn final line (crash mid-append) is
// ignored on replay — that shard simply reruns.

type journalHeader struct {
	V    int    `json:"v"`
	Seed uint64 `json:"seed"`
	// Backend is the resolved engine backend name: shard reports from
	// different machine models must never be merged, so a journal written
	// by one backend rejects resumption under another.
	Backend   string     `json:"backend,omitempty"`
	Flips     int        `json:"flips"`
	ShardSize int        `json:"shard_size"`
	Filter    FilterSpec `json:"filter"`
	// Stop binds the journal to one stopping rule: replaying shards
	// recorded under one rule while evaluating another would let the same
	// journal yield different stop decisions.
	Stop core.StopConfig `json:"stop,omitempty"`
}

// journalEntry is one post-header line: a completed shard's report, or —
// when Stop is set (Shard is -1 then) — the coordinator's convergence
// stop decision.
type journalEntry struct {
	Shard  int                `json:"shard"`
	Report *WireReport        `json:"report,omitempty"`
	Stop   *stats.Convergence `json:"stop,omitempty"`
}

type journal struct {
	f *os.File
}

// openJournal opens (or creates) the journal at path for the campaign
// described by hdr, returning the recovered shard reports and the recorded
// convergence stop decision (nil if the prior run never reached one). An
// existing journal whose header does not match hdr is rejected: resuming a
// different campaign over it would merge unrelated shards.
func openJournal(path string, hdr journalHeader, log *slog.Logger) (*journal, map[int]*core.Report, *stats.Convergence, error) {
	recovered := make(map[int]*core.Report)
	var stop *stats.Convergence
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err) || (err == nil && len(data) == 0):
		// Fresh journal.
	case err != nil:
		return nil, nil, nil, fmt.Errorf("dist: read journal: %w", err)
	default:
		lines := bytes.Split(data, []byte("\n"))
		var got journalHeader
		if err := json.Unmarshal(lines[0], &got); err != nil {
			return nil, nil, nil, fmt.Errorf("dist: journal %s: bad header: %w", path, err)
		}
		if got != hdr {
			return nil, nil, nil, fmt.Errorf("dist: journal %s belongs to a different campaign plan (%+v, want %+v)",
				path, got, hdr)
		}
		for i, line := range lines[1:] {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var e journalEntry
			if err := json.Unmarshal(line, &e); err != nil {
				// Torn tail from a crash mid-append: rerun that shard.
				log.Warn("journal torn tail ignored", "path", path, "line", i+2)
				break
			}
			if e.Stop != nil {
				stop = e.Stop
				continue
			}
			if e.Report == nil {
				continue
			}
			rep, err := e.Report.Report()
			if err != nil {
				return nil, nil, nil, fmt.Errorf("dist: journal %s: shard %d: %w", path, e.Shard, err)
			}
			recovered[e.Shard] = rep
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dist: open journal: %w", err)
	}
	j := &journal{f: f}
	if len(data) == 0 {
		if err := j.writeLine(hdr); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
	}
	return j, recovered, stop, nil
}

func (j *journal) append(shardID int, rep *WireReport) error {
	return j.writeLine(journalEntry{Shard: shardID, Report: rep})
}

// appendStop records the convergence decision the coordinator stopped on.
// Shard -1 marks the line as a non-shard record.
func (j *journal) appendStop(eval *stats.Convergence) error {
	return j.writeLine(journalEntry{Shard: -1, Stop: eval})
}

func (j *journal) writeLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() {
	j.f.Close()
}
