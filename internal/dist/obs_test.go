package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sfi/internal/core"
	"sfi/internal/obs"
)

// TestLoopbackSnapshotEquivalence is the fleet-observability acceptance
// test: after a 4-worker distributed campaign, the coordinator's merged
// fleet snapshot must be counter-exactly equal to the same-seed
// single-process campaign's snapshot — injections, restores, cycles,
// outcome mix, per-unit and per-type breakdowns, and histogram counts.
// (Latency values and BusyNs are timing-dependent and excluded.)
func TestLoopbackSnapshotEquivalence(t *testing.T) {
	spec := testSpec()
	c, srv := startCoord(t, CoordConfig{
		Campaign:  spec,
		ShardSize: 12,
		// Short TTL so shards outlive several heartbeats and the fleet view
		// really is built from piggybacked deltas plus sealed finals.
		LeaseTTL: 300 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	workerErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			workerErr <- RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				ID:          fmt.Sprintf("w%d", i),
				PollEvery:   20 * time.Millisecond,
			})
		}(i)
	}
	got, err := c.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := <-workerErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if got.Metrics == nil {
		t.Fatal("merged distributed report has no metrics snapshot")
	}

	ccfg, err := spec.CampaignConfig(ShardLease{Lo: 0, Hi: spec.Flips})
	if err != nil {
		t.Fatal(err)
	}
	ccfg.Workers = 2
	ccfg.Obs.Metrics = true
	want, err := core.RunCampaign(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	assertSnapshotCountersEqual(t, "merged report", got.Metrics, want.Metrics)
	// The converged fleet view (sealed finals for every shard) must show
	// exactly the same counters — no delta double-counting, nothing lost.
	assertSnapshotCountersEqual(t, "fleet view", c.FleetSnapshot(), want.Metrics)

	// And the coordinator's status must agree.
	st := c.Status()
	if st.Injections != want.Metrics.Injections {
		t.Errorf("status injections %d, want %d", st.Injections, want.Metrics.Injections)
	}
	if st.States["completed"] != st.Shards {
		t.Errorf("status states %v, want all %d completed", st.States, st.Shards)
	}
}

// assertSnapshotCountersEqual compares the deterministic counters of two
// snapshots: everything except wall-time-valued fields (BusyNs, the
// latency histograms' bucket shapes) which legitimately differ between
// runs.
func assertSnapshotCountersEqual(t *testing.T, label string, got, want *obs.Snapshot) {
	t.Helper()
	if got.Injections != want.Injections || got.Restores != want.Restores || got.Cycles != want.Cycles {
		t.Errorf("%s: injections/restores/cycles %d/%d/%d, want %d/%d/%d", label,
			got.Injections, got.Restores, got.Cycles,
			want.Injections, want.Restores, want.Cycles)
	}
	if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
		t.Errorf("%s: outcome mix %v, want %v", label, got.Outcomes, want.Outcomes)
	}
	if !reflect.DeepEqual(got.ByUnit, want.ByUnit) {
		t.Errorf("%s: per-unit counters differ:\n%v\n%v", label, got.ByUnit, want.ByUnit)
	}
	if !reflect.DeepEqual(got.ByType, want.ByType) {
		t.Errorf("%s: per-type counters differ:\n%v\n%v", label, got.ByType, want.ByType)
	}
	// Cycle-valued histograms are deterministic in full; latency histograms
	// only in their observation counts.
	if !reflect.DeepEqual(got.PropagateCycles, want.PropagateCycles) {
		t.Errorf("%s: propagate-cycles histogram differs", label)
	}
	if !reflect.DeepEqual(got.DetectCycles, want.DetectCycles) {
		t.Errorf("%s: detect-cycles histogram differs", label)
	}
	if got.InjectionNs.Count != want.InjectionNs.Count {
		t.Errorf("%s: injection latency count %d, want %d", label,
			got.InjectionNs.Count, want.InjectionNs.Count)
	}
	if got.RestoreNs.Count != want.RestoreNs.Count {
		t.Errorf("%s: restore latency count %d, want %d", label,
			got.RestoreNs.Count, want.RestoreNs.Count)
	}
}

// shardTraceEvents decodes the shard-trace JSONL buffer into per-kind
// event lists.
func shardTraceEvents(t *testing.T, data []byte) map[string][]obs.ShardEvent {
	t.Helper()
	byKind := make(map[string][]obs.ShardEvent)
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var ev obs.ShardEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("shard trace decode: %v", err)
		}
		if ev.Kind != "" {
			byKind[ev.Kind] = append(byKind[ev.Kind], ev)
		}
	}
	return byKind
}

// TestDeadWorkerRequeueTraced: when a worker leases a shard and dies, the
// shard trace must record the full forensic sequence — the zombie's lease
// grant, the expiry, the requeue with its attempt count, and the
// surviving worker's completion with a latency.
func TestDeadWorkerRequeueTraced(t *testing.T) {
	var traceBuf syncBuffer
	sink := obs.NewTraceSink(&traceBuf, obs.TraceOptions{})

	spec := testSpec()
	spec.Flips = 24
	c, srv := startCoord(t, CoordConfig{
		Campaign:   spec,
		ShardSize:  12,
		LeaseTTL:   300 * time.Millisecond,
		ShardTrace: sink,
	})

	var zl leaseResponse
	if s := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "zombie"}, &zl); s != http.StatusOK {
		t.Fatalf("zombie lease: status %d", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerConfig{
			Coordinator: srv.URL, ID: "survivor", PollEvery: 20 * time.Millisecond,
		})
	}()
	if _, err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("survivor: %v", err)
	}

	events := shardTraceEvents(t, traceBuf.bytes())
	var zombieLease bool
	for _, ev := range events["lease"] {
		if ev.Shard == zl.Shard.ID && ev.Worker == "zombie" {
			zombieLease = true
		}
	}
	if !zombieLease {
		t.Errorf("no lease event for the zombie's grant of shard %d", zl.Shard.ID)
	}
	if len(events["expired"]) == 0 {
		t.Error("no expired event for the abandoned lease")
	}
	requeued := false
	for _, ev := range events["requeued"] {
		if ev.Shard == zl.Shard.ID && ev.Attempt >= 1 {
			requeued = true
		}
	}
	if !requeued {
		t.Errorf("no requeued event with attempt count for shard %d; got %+v",
			zl.Shard.ID, events["requeued"])
	}
	if len(events["completed"]) != 2 {
		t.Errorf("completed events: %d, want 2 (one per shard)", len(events["completed"]))
	}
	for _, ev := range events["completed"] {
		if ev.Worker != "survivor" {
			t.Errorf("shard %d completed by %q, want survivor", ev.Shard, ev.Worker)
		}
		if ev.LatencyMs < 0 {
			t.Errorf("shard %d completion latency %dms < 0", ev.Shard, ev.LatencyMs)
		}
	}
	// The requeue discarded the zombie's (empty) live contribution: the
	// converged fleet view counts every injection exactly once.
	if snap := c.FleetSnapshot(); snap.Injections != uint64(spec.Flips) {
		t.Errorf("fleet injections %d, want %d", snap.Injections, spec.Flips)
	}
}

// syncBuffer is an io.Writer usable from the coordinator's handler
// goroutines and read by the test after Wait.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// bytes returns the accumulated contents.
func (b *syncBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return bytes.Clone(b.buf.Bytes())
}

// TestHeartbeatDeltaAggregation drives the wire protocol by hand: fleet
// status and /metrics must reflect fabricated heartbeat deltas while the
// shard is in flight, and completion must replace them with the exact
// final snapshot (no double counting).
func TestHeartbeatDeltaAggregation(t *testing.T) {
	spec := testSpec()
	spec.Flips = 20
	c, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 10})

	var l leaseResponse
	if s := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "w"}, &l); s != http.StatusOK {
		t.Fatalf("lease: status %d", s)
	}

	delta := obs.NewSnapshot()
	delta.Injections = 4
	delta.Restores = 4
	delta.Outcomes["vanished"] = 4
	if s := rawPost(t, srv.URL+"/v1/heartbeat",
		heartbeatRequest{Worker: "w", Shard: l.Shard.ID, Delta: delta}, nil); s != http.StatusOK {
		t.Fatalf("heartbeat: status %d", s)
	}

	st := c.Status()
	if st.Injections != 4 {
		t.Fatalf("live injections %d, want 4 from the heartbeat delta", st.Injections)
	}
	if st.States["heartbeating"] != 1 || st.States["queued"] != 1 {
		t.Fatalf("states %v, want 1 heartbeating + 1 queued", st.States)
	}
	sv := st.ShardsV[l.Shard.ID]
	if sv.State != "heartbeating" || sv.LiveInjections != 4 || sv.Worker != "w" {
		t.Fatalf("shard view %+v, want heartbeating with 4 live injections by w", sv)
	}
	if w := st.Workers["w"]; w.Injections != 4 {
		t.Fatalf("worker view %+v, want 4 injections", w)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"sfi_injections_total 4",
		`sfi_outcome_total{outcome="vanished"} 4`,
		`sfi_coord_shards{state="leased"} 1`,
		"sfi_coord_lease_grants_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Complete the shard with a final snapshot larger than the delta sum:
	// sealing must replace the live deltas, not add to them.
	final := obs.NewSnapshot()
	final.Injections = 10
	final.Restores = 10
	final.Outcomes["vanished"] = 9
	final.Outcomes["corrected"] = 1
	wire := fakeWire(10)
	wire.Metrics = final
	if s := rawPost(t, srv.URL+"/v1/complete",
		completeRequest{Worker: "w", Shard: l.Shard.ID, Report: wire}, nil); s != http.StatusOK {
		t.Fatalf("complete: status %d", s)
	}
	snap := c.FleetSnapshot()
	if snap.Injections != 10 {
		t.Fatalf("fleet injections after seal: %d, want exactly 10 (no delta double count)", snap.Injections)
	}
	if snap.Outcomes["vanished"] != 9 || snap.Outcomes["corrected"] != 1 {
		t.Fatalf("fleet outcomes after seal: %v, want vanished 9 corrected 1", snap.Outcomes)
	}
	st = c.Status()
	if w := st.Workers["w"]; w.Injections != 10 || w.ShardsDone != 1 {
		t.Fatalf("worker view after complete %+v, want 10 injections, 1 shard done", w)
	}
}

// TestCompleteAttachesTrace: injection-trace lines a worker attaches to a
// completion must land in the coordinator's shard trace wrapped with
// shard/worker provenance.
func TestCompleteAttachesTrace(t *testing.T) {
	var traceBuf syncBuffer
	sink := obs.NewTraceSink(&traceBuf, obs.TraceOptions{})

	spec := testSpec()
	spec.Flips = 10
	c, srv := startCoord(t, CoordConfig{Campaign: spec, ShardSize: 10, ShardTrace: sink})

	var l leaseResponse
	if s := rawPost(t, srv.URL+"/v1/lease", leaseRequest{Worker: "w"}, &l); s != http.StatusOK {
		t.Fatalf("lease: status %d", s)
	}
	if s := rawPost(t, srv.URL+"/v1/complete", completeRequest{
		Worker: "w", Shard: l.Shard.ID, Report: fakeWire(10),
		Trace: []json.RawMessage{
			json.RawMessage(`{"seq":0,"bit":42,"outcome":"vanished"}`),
			json.RawMessage(`{"seq":5,"bit":77,"outcome":"sdc"}`),
		},
	}, nil); s != http.StatusOK {
		t.Fatalf("complete: status %d", s)
	}
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	var attached []attachedTrace
	dec := json.NewDecoder(bytes.NewReader(traceBuf.bytes()))
	for {
		var raw map[string]json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if _, ok := raw["injection"]; !ok {
			continue // a shard lifecycle event
		}
		var at attachedTrace
		data, _ := json.Marshal(raw)
		if err := json.Unmarshal(data, &at); err != nil {
			t.Fatal(err)
		}
		attached = append(attached, at)
	}
	if len(attached) != 2 {
		t.Fatalf("attached trace lines in shard trace: %d, want 2", len(attached))
	}
	for _, at := range attached {
		if at.Shard != l.Shard.ID || at.Worker != "w" {
			t.Errorf("attached line provenance %+v, want shard %d worker w", at, l.Shard.ID)
		}
	}
	var ev struct {
		Bit int `json:"bit"`
	}
	if err := json.Unmarshal(attached[0].Injection, &ev); err != nil || ev.Bit != 42 {
		t.Errorf("first attached injection = %s, want bit 42 (err %v)", attached[0].Injection, err)
	}
}
