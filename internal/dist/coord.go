package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"sfi/internal/core"
	"sfi/internal/engine"
	"sfi/internal/obs"
	"sfi/internal/stats"
)

// CoordConfig parameterizes a campaign coordinator.
type CoordConfig struct {
	// Campaign is the campaign to distribute.
	Campaign CampaignSpec

	// ShardSize is the number of injections per shard (the last shard may
	// be short). 0 picks a default that yields ~64 shards — small enough
	// to balance load and bound re-done work on worker death, large
	// enough to amortize per-shard overhead.
	ShardSize int

	// LeaseTTL is how long a worker holds a shard without heartbeating
	// before the shard is considered abandoned (default 10s). Workers
	// heartbeat at TTL/3.
	LeaseTTL time.Duration

	// MaxAttempts bounds lease grants per shard: a shard abandoned (or
	// explicitly failed) this many times fails the whole campaign rather
	// than retrying forever (default 3).
	MaxAttempts int

	// Journal is the path of the completed-shard journal. When set, every
	// completed shard is appended (and fsync'd) as one JSONL record, and a
	// coordinator restarted over the same journal resumes with those
	// shards already done. "" disables journaling.
	Journal string

	// Log receives structured coordinator lifecycle events (lease grants,
	// requeues, completions, journal replay) with campaign/shard/worker
	// attributes. nil logs nothing.
	Log *slog.Logger

	// ShardTrace, when non-nil, receives one JSONL obs.ShardEvent per
	// shard-lifecycle transition (lease grant, heartbeat gap, expiry,
	// requeue with attempt count, completion with latency) plus any
	// sampled injection-trace segments workers attach to completions —
	// the after-the-fact forensics trail for requeue storms and straggler
	// workers.
	ShardTrace *obs.TraceSink

	// Tracer, when non-nil, records the campaign's causal span tree: one
	// "shard" span per lease (grant to completion or loss), the worker
	// spans attached to shard completions, and — when Parent is zero — a
	// root "campaign" span covering the whole coordinator run. Leases
	// carry each shard span's context to the worker as a traceparent, so
	// worker and engine spans parent under it across processes. The tree
	// is served at GET /v1/trace.
	Tracer *obs.Tracer

	// Parent is the span context coordinator spans parent under — the
	// executor span of an embedding server. The zero value makes the
	// coordinator open its own root span.
	Parent obs.SpanContext
}

type shardStatus int

const (
	shardPending shardStatus = iota
	shardLeased
	shardDone
)

type shard struct {
	ShardLease
	status   shardStatus
	owner    string
	deadline time.Time
	attempts int // lease grants so far
	report   *core.Report

	leasedAt time.Time // grant time of the current lease
	lastBeat time.Time // last heartbeat of the current lease (zero until one arrives)
	liveInj  uint64    // injections reported via heartbeat deltas this lease

	span *obs.Span // the current lease's "shard" span (nil untraced)
}

// fleetKey names the shard's stream in the fleet aggregator.
func (s *shard) fleetKey() string { return fmt.Sprintf("shard-%d", s.ID) }

// workerStats is the coordinator's per-worker ledger, fed by lease grants,
// heartbeat deltas and completions.
type workerStats struct {
	firstSeen  time.Time
	lastSeen   time.Time
	injections uint64 // classified injections credited to this worker
	busyNs     uint64 // wall nanoseconds its model copies spent injecting
	shardsDone int
	failures   int // /v1/fail reports
}

// Coordinator owns a campaign's shard ledger and serves the lease
// protocol. All state transitions happen under one mutex; the HTTP
// handlers, the lease reaper and Wait share it.
type Coordinator struct {
	cfg CoordConfig
	log *slog.Logger

	// fleet is the live fleet-wide metrics view: heartbeat deltas of
	// in-flight shards plus the exact final snapshots of completed ones.
	// It has its own lock and is deliberately outside mu — /metrics
	// scrapes never contend with the lease path.
	fleet *obs.Fleet

	// Coordinator-side latency histograms (lock-free).
	completionMs obs.Hist // lease grant → completion, per completed shard
	beatGapMs    obs.Hist // observed heartbeat silence beyond 2× the expected period

	// Campaign tracing: shard spans parent under spanParent — the
	// embedding server's executor span, or rootSp when the coordinator
	// opened its own root (standalone sfi-coord).
	spanParent obs.SpanContext
	rootSp     *obs.Span

	mu       sync.Mutex
	shards   []*shard
	queue    []int // pending shard IDs, FIFO
	done     int
	grants   int // total lease grants (observability)
	requeues int // total shard requeues (expiry + explicit fails)
	workers  map[string]*workerStats
	started  time.Time
	err      error
	finished chan struct{} // closed once done==len(shards), the stop rule fires, or err is set
	journal  *journal

	// Adaptive-stop state. The decision basis is sealedCounts/sealedTotal —
	// outcome counts summed over *completed* shard reports only, never live
	// heartbeat deltas — so whether the rule fires is a pure function of
	// which shards completed, and a journal replay reaches the same verdict.
	sealedTotal   int64
	sealedCounts  map[string]int64
	stoppedEarly  bool
	stopEval      *stats.Convergence // the decision stopped on (nil until then)
	stopJournaled bool               // stop line already durable (written or replayed)

	// Stratified-allocation state (nil plan for uniform campaigns). The
	// shard ledger grows per allocation epoch: each epoch boundary — all
	// shards planned so far settled — the Neyman allocator splits the next
	// epoch's budget across the plan's strata from the sealed per-stratum
	// counts and the resulting shards join the queue. Like the stop rule,
	// every allocation is a pure function of which shards completed, so a
	// journal replay re-plans identically.
	plan         *core.SamplePlan
	strataPops   map[string]int
	drawn        map[string]int              // per-stratum sequence prefix already planned
	sealedStrata map[string]map[string]int64 // per-stratum outcome counts over completed shards
	epoch        int                         // next allocation epoch ordinal
	budgetLeft   int                         // campaign injections not yet allocated
	replaying    bool                        // journal replay in progress: suppress boundary decisions

	stopReaper chan struct{}
	reaperDone chan struct{}
}

// stratified reports whether the campaign allocates its budget across
// sampling strata.
func (c *Coordinator) stratified() bool { return c.plan != nil }

// NewCoordinator plans the campaign's shards, replays the journal if one
// is configured and present, and starts the lease reaper. Callers must
// Close it.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Campaign.Flips < 1 {
		return nil, fmt.Errorf("dist: campaign needs at least one flip")
	}
	filter, err := cfg.Campaign.Filter.Filter()
	if err != nil {
		return nil, err
	}
	if err := cfg.Campaign.Alloc.Validate(); err != nil {
		return nil, err
	}
	// Stratified allocation makes the per-stratum margins the stoppable
	// target, exactly as the local executor does. Armed before the journal
	// header and the worker-facing spec are derived, so both are stable.
	if cfg.Campaign.Alloc.Stratified() && cfg.Campaign.Stop.Enabled() {
		cfg.Campaign.Stop.Strata = true
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = (cfg.Campaign.Flips + 63) / 64
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	c := &Coordinator{
		cfg:          cfg,
		log:          cfg.Log.With("seed", cfg.Campaign.Seed, "flips", cfg.Campaign.Flips),
		fleet:        obs.NewFleet(),
		workers:      make(map[string]*workerStats),
		started:      time.Now(),
		finished:     make(chan struct{}),
		stopReaper:   make(chan struct{}),
		reaperDone:   make(chan struct{}),
		sealedCounts: make(map[string]int64),
	}
	if cfg.Tracer != nil {
		c.spanParent = cfg.Parent
		if !cfg.Parent.Valid() {
			// Standalone coordinator: open the trace's root span ourselves.
			c.rootSp = cfg.Tracer.StartSpan("campaign", "coord", obs.SpanContext{}).
				AttrInt("flips", int64(cfg.Campaign.Flips))
			c.spanParent = c.rootSp.Context()
		}
	}
	if cfg.Campaign.Alloc.Stratified() {
		// The plan needs only the latch census — the registered census
		// factory skips model build and warming, so a coordinator never
		// pays for a simulator it will not run.
		db, err := engine.Census(cfg.Campaign.Runner)
		if err != nil {
			return nil, err
		}
		c.plan = core.BuildSamplePlan(db, cfg.Campaign.Seed, filter)
		if len(c.plan.Strata) == 0 {
			return nil, fmt.Errorf("dist: stratified campaign over an empty population")
		}
		c.strataPops = c.plan.Populations()
		c.drawn = make(map[string]int, len(c.plan.Strata))
		c.sealedStrata = make(map[string]map[string]int64, len(c.plan.Strata))
		c.budgetLeft = cfg.Campaign.Flips
	} else {
		for id, r := range core.PlanShards(cfg.Campaign.Flips, cfg.ShardSize) {
			c.shards = append(c.shards, &shard{
				ShardLease: ShardLease{ID: id, Lo: r.Lo, Hi: r.Hi},
			})
		}
	}
	if cfg.Journal != "" {
		j, entries, err := openJournal(cfg.Journal, journalHeader{
			V:         1,
			Seed:      cfg.Campaign.Seed,
			Backend:   engine.Resolve(cfg.Campaign.Runner.Backend),
			Flips:     cfg.Campaign.Flips,
			ShardSize: cfg.ShardSize,
			Filter:    cfg.Campaign.Filter,
			Stop:      cfg.Campaign.Stop,
			Alloc:     cfg.Campaign.Alloc,
		}, c.log)
		if err != nil {
			return nil, err
		}
		c.journal = j
		if err := c.replayLocked(entries); err != nil {
			j.close()
			return nil, err
		}
	}
	if c.stratified() && !c.stoppedEarly && c.err == nil && c.done == len(c.shards) {
		// Fresh campaign (bootstrap epoch 0), or the journal ended exactly
		// on a settled epoch without recording the next allocation: plan it
		// now. Deterministic either way — the allocation is a function of
		// the sealed counts replayed above.
		c.epochBoundaryLocked()
	}
	// (Re)queue whatever the journal and bootstrap didn't already settle,
	// in shard order.
	c.queue = c.queue[:0]
	for _, s := range c.shards {
		if s.status == shardPending {
			c.queue = append(c.queue, s.ID)
		}
	}
	c.log.Info("campaign planned",
		"shards", len(c.shards), "shard_size", cfg.ShardSize,
		"pending", len(c.queue), "lease_ttl", cfg.LeaseTTL,
		"alloc", cfg.Campaign.Alloc.Mode)
	go c.reaper()
	return c, nil
}

// replayLocked applies recovered journal entries. The stop decision (the
// journal's final decision line, when present) is honored before anything
// else so no replayed completion re-evaluates the rule; allocations and
// reports then apply in file order, which for stratified campaigns is the
// only order that reproduces the ledger — each allocation extended the
// per-stratum sequences from the sealed counts before it.
func (c *Coordinator) replayLocked(entries []replayEntry) error {
	c.replaying = true
	defer func() { c.replaying = false }()
	recovered := 0
	for _, e := range entries {
		if e.stop != nil {
			c.stoppedEarly = true
			c.stopEval = e.stop
			c.stopJournaled = true
		}
	}
	for _, e := range entries {
		switch {
		case e.alloc != nil:
			if !c.stratified() {
				return fmt.Errorf("dist: journal records an allocation epoch but the campaign is not stratified")
			}
			c.applyAllocLocked(*e.alloc)
		case e.report != nil:
			if e.shard < 0 || e.shard >= len(c.shards) {
				return fmt.Errorf("dist: journal names shard %d outside the %d-shard plan", e.shard, len(c.shards))
			}
			c.markDoneLocked(c.shards[e.shard], e.report)
			recovered++
		}
	}
	if recovered > 0 || c.stoppedEarly {
		c.log.Info("journal replayed", "path", c.cfg.Journal,
			"shards_recovered", recovered, "epochs", c.epoch, "stopped_early", c.stoppedEarly)
	}
	if c.stoppedEarly {
		c.finishLocked()
	}
	return nil
}

// Close stops the reaper and closes the journal. It does not interrupt
// Wait; cancel Wait's context to abandon a campaign.
func (c *Coordinator) Close() {
	close(c.stopReaper)
	<-c.reaperDone
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		c.journal.close()
		c.journal = nil
	}
}

// reaper periodically re-queues shards whose lease expired (worker death
// without a parting /v1/fail). Sweeps also run inline on every lease poll,
// so the reaper only matters when no worker is polling.
func (c *Coordinator) reaper() {
	defer close(c.reaperDone)
	tick := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stopReaper:
			return
		case <-tick.C:
			c.mu.Lock()
			c.sweepLocked(time.Now())
			c.mu.Unlock()
		}
	}
}

// shardEvent emits one lifecycle event to the shard trace (no-op without
// a configured sink).
func (c *Coordinator) shardEvent(s *shard, kind string, mut func(*obs.ShardEvent)) {
	if c.cfg.ShardTrace == nil {
		return
	}
	ev := &obs.ShardEvent{
		Kind:    kind,
		TS:      time.Now().UnixNano(),
		Shard:   s.ID,
		Lo:      s.Lo,
		Hi:      s.Hi,
		Worker:  s.owner,
		Attempt: s.attempts,
	}
	if mut != nil {
		mut(ev)
	}
	c.cfg.ShardTrace.RecordShard(ev)
}

// sweepLocked expires overdue leases. A shard that has used all its
// attempts fails the campaign; otherwise it goes back on the queue for
// another worker.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, s := range c.shards {
		if s.status != shardLeased || now.Before(s.deadline) {
			continue
		}
		c.log.Warn("lease expired",
			"shard", s.ID, "worker", s.owner, "attempt", s.attempts,
			"silence", now.Sub(c.lastSignalLocked(s)).Round(time.Millisecond))
		c.shardEvent(s, "expired", func(ev *obs.ShardEvent) {
			ev.GapMs = now.Sub(c.lastSignalLocked(s)).Milliseconds()
		})
		c.requeueLocked(s, fmt.Sprintf("lease by %q expired", s.owner))
	}
}

// lastSignalLocked is the last time the shard's current owner was heard
// from: its last heartbeat, or the lease grant if it never beat.
func (c *Coordinator) lastSignalLocked(s *shard) time.Time {
	if !s.lastBeat.IsZero() {
		return s.lastBeat
	}
	return s.leasedAt
}

func (c *Coordinator) requeueLocked(s *shard, why string) {
	if s.span != nil {
		s.span.Attr("error", why).End()
		s.span = nil
	}
	s.status = shardPending
	s.owner = ""
	s.lastBeat = time.Time{}
	s.liveInj = 0
	c.requeues++
	// The abandoned lease's partial metrics would double-count the
	// injections its replacement will redo.
	c.fleet.Discard(s.fleetKey())
	if s.attempts >= c.cfg.MaxAttempts {
		c.shardEvent(s, "exhausted", func(ev *obs.ShardEvent) { ev.Detail = why })
		c.failLocked(fmt.Errorf("dist: shard %d [%d,%d) failed %d of %d attempts (last: %s)",
			s.ID, s.Lo, s.Hi, s.attempts, c.cfg.MaxAttempts, why))
		return
	}
	c.shardEvent(s, "requeued", func(ev *obs.ShardEvent) { ev.Detail = why })
	c.log.Info("shard requeued", "shard", s.ID, "attempt", s.attempts, "why", why)
	c.queue = append(c.queue, s.ID)
}

func (c *Coordinator) failLocked(err error) {
	if c.err == nil && !c.stoppedEarly && c.done < len(c.shards) {
		c.err = err
		c.log.Error("campaign failed", "err", err)
		c.finishLocked()
	}
}

// finishLocked closes the finished channel exactly once. Completion, the
// convergence stop and failure all funnel through it.
func (c *Coordinator) finishLocked() {
	select {
	case <-c.finished:
	default:
		if c.rootSp != nil {
			c.rootSp.AttrInt("shards_done", int64(c.done)).End()
			c.rootSp = nil
		}
		close(c.finished)
	}
}

func (c *Coordinator) markDoneLocked(s *shard, rep *core.Report) {
	if s.status == shardDone {
		return
	}
	if s.span != nil {
		if rep != nil {
			s.span.AttrInt("injections", int64(rep.Total))
		}
		s.span.End()
		s.span = nil
	}
	s.status = shardDone
	s.owner = ""
	s.report = rep
	// Replace the shard's live heartbeat deltas with its exact final
	// snapshot: the fleet view now counts this shard's injections exactly
	// once, and converges to the merged-report snapshot when the campaign
	// completes.
	var final *obs.Snapshot
	if rep != nil {
		final = rep.Metrics
	}
	c.fleet.Seal(s.fleetKey(), final)
	c.done++
	if (c.cfg.Campaign.Stop.Enabled() || c.stratified()) && rep != nil {
		c.sealedTotal += int64(rep.Total)
		for o, n := range rep.Counts {
			c.sealedCounts[o.String()] += int64(n)
		}
	}
	if c.stratified() && rep != nil {
		for key, row := range rep.ByStratum {
			d := c.sealedStrata[key]
			if d == nil {
				d = make(map[string]int64, len(row))
				c.sealedStrata[key] = d
			}
			for o, n := range row {
				d[o.String()] += int64(n)
			}
		}
	}
	if c.done == len(c.shards) && c.err == nil {
		if c.stratified() {
			// An allocation-epoch boundary, not (necessarily) the end: the
			// stop rule and the next allocation are evaluated here, over
			// fully settled counts only — never mid-epoch — so the campaign
			// is a pure function of which shards completed. Replay applies
			// journaled decisions instead of re-deriving them.
			if !c.replaying {
				c.epochBoundaryLocked()
			}
			return
		}
		c.log.Info("campaign complete",
			"shards", len(c.shards), "grants", c.grants, "requeues", c.requeues,
			"elapsed", time.Since(c.started).Round(time.Millisecond))
		c.finishLocked()
		return
	}
	if !c.stratified() && c.cfg.Campaign.Stop.Enabled() && c.cfg.Campaign.Stop.StopOnConverge &&
		!c.stoppedEarly && c.err == nil {
		eval := c.cfg.Campaign.Stop.Rule().Eval(outcomeClasses(), c.sealedCounts, c.sealedTotal)
		if eval.Converged {
			c.convergeLocked(eval)
		}
	}
}

// sealedConvergenceLocked evaluates the stopping rule over the merged
// sealed shard reports, stratum margins included — the stratified
// campaign's decision basis. Only called at epoch boundaries, when every
// planned shard is settled.
func (c *Coordinator) sealedConvergenceLocked() *stats.Convergence {
	rep := &core.Report{}
	for _, s := range c.shards {
		rep.Merge(s.report)
	}
	return rep.ComputeConvergenceStrata(c.cfg.Campaign.Stop.Rule(), c.strataPops)
}

// strataStatesLocked assembles the allocator's per-stratum view from the
// sealed counts, in plan order.
func (c *Coordinator) strataStatesLocked() []stats.StratumState {
	keys := c.plan.Keys()
	out := make([]stats.StratumState, len(keys))
	for i, k := range keys {
		s := stats.StratumState{Key: k, Population: c.strataPops[k], Drawn: c.drawn[k]}
		if row := c.sealedStrata[k]; len(row) > 0 {
			s.Counts = row
			for _, n := range row {
				s.Total += n
			}
		}
		out[i] = s
	}
	return out
}

// planEpochLocked turns an allocation's shares into shard leases, each a
// ShardSize-bounded slice of one stratum's sequence, extending the
// stratum's drawn prefix.
func (c *Coordinator) planEpochLocked(shares []stats.StratumShare) []ShardLease {
	var leases []ShardLease
	id := len(c.shards)
	for _, sh := range shares {
		if sh.Next == 0 {
			continue
		}
		lo := c.drawn[sh.Stratum]
		for _, r := range core.PlanStratumShards(lo, sh.Next, c.cfg.ShardSize) {
			leases = append(leases, ShardLease{ID: id, Lo: r.Lo, Hi: r.Hi, Stratum: sh.Stratum})
			id++
		}
		c.drawn[sh.Stratum] = lo + sh.Next
	}
	return leases
}

// applyAllocLocked extends the shard ledger with one allocation epoch's
// planned shards (freshly allocated or replayed from the journal) and
// queues them.
func (c *Coordinator) applyAllocLocked(rec allocRecord) {
	for _, l := range rec.Shards {
		c.shards = append(c.shards, &shard{ShardLease: l})
		c.queue = append(c.queue, l.ID)
		if l.Hi > c.drawn[l.Stratum] {
			c.drawn[l.Stratum] = l.Hi
		}
	}
	c.budgetLeft -= rec.Budget
	c.epoch = rec.Epoch + 1
	if c.cfg.ShardTrace != nil {
		c.cfg.ShardTrace.RecordJSON(obs.AllocationEvent{
			Kind: "allocate", Epoch: rec.Epoch, Budget: rec.Budget, Shares: rec.Shares,
		})
	}
	c.log.Info("allocation epoch planned", "epoch", rec.Epoch,
		"budget", rec.Budget, "strata", len(rec.Shares), "shards", len(rec.Shards))
}

// epochBoundaryLocked runs a stratified campaign's settled-ledger decision
// point: evaluate the stop rule over sealed counts, then either stop,
// finish (budget spent or every stratum exhausted), or journal and queue
// the next allocation epoch.
func (c *Coordinator) epochBoundaryLocked() {
	stop := c.cfg.Campaign.Stop
	if stop.Enabled() && len(c.shards) > 0 {
		eval := c.sealedConvergenceLocked()
		if stop.StopOnConverge && !c.stoppedEarly && eval.Converged {
			c.convergeLocked(eval)
			return
		}
	}
	rule := stop.Rule()
	epochs := c.cfg.Campaign.Alloc.Epochs
	if epochs <= 0 {
		epochs = core.DefaultAllocEpochs
	}
	epochBudget := (c.cfg.Campaign.Flips + epochs - 1) / epochs
	eb := min(c.budgetLeft, epochBudget)
	allocated := 0
	var shares []stats.StratumShare
	if eb > 0 {
		shares = rule.Allocate(outcomeClasses(), c.strataStatesLocked(), eb)
		for _, sh := range shares {
			allocated += sh.Next
		}
	}
	if allocated == 0 {
		// Budget spent, or every (unconverged) stratum's population is
		// exhausted: the campaign is complete.
		c.log.Info("campaign complete",
			"shards", len(c.shards), "epochs", c.epoch, "grants", c.grants,
			"requeues", c.requeues, "budget_left", c.budgetLeft,
			"elapsed", time.Since(c.started).Round(time.Millisecond))
		c.finishLocked()
		return
	}
	rec := allocRecord{Epoch: c.epoch, Budget: allocated, Shares: shares,
		Shards: c.planEpochLocked(shares)}
	// planEpochLocked advanced drawn; applyAllocLocked must not re-advance
	// (it only catches up during replay) — Hi never exceeds drawn here.
	if c.journal != nil {
		if err := c.journal.appendAlloc(rec); err != nil {
			c.err = fmt.Errorf("dist: journal allocation record: %w", err)
			c.log.Error("campaign failed", "err", c.err)
			c.finishLocked()
			return
		}
	}
	c.applyAllocLocked(rec)
}

// convergeLocked stops the campaign on a sealed-counts convergence verdict:
// journal the decision first (so a restart honors it rather than re-running
// the race between remaining shards and the rule), then seal the ledger.
// Outstanding leases are cancelled passively — overLocked() now answers
// heartbeat and lease polls with 410 Gone, and workers abandon their
// in-flight shards.
func (c *Coordinator) convergeLocked(eval *stats.Convergence) {
	if c.journal != nil && !c.stopJournaled {
		if err := c.journal.appendStop(eval); err != nil {
			c.failLocked(fmt.Errorf("dist: journal stop record: %w", err))
			return
		}
		c.stopJournaled = true
	}
	c.stoppedEarly = true
	c.stopEval = eval
	c.log.Info("campaign converged, stopping early",
		"sealed_injections", eval.Total, "shards_done", c.done, "shards", len(c.shards),
		"widest_class", eval.WidestClass, "widest_width", eval.WidestWidth,
		"target_margin", eval.TargetMargin)
	if c.cfg.ShardTrace != nil {
		c.cfg.ShardTrace.RecordJSON(obs.ConvergenceEvent{
			Kind:         "fleet_stop",
			N:            eval.Total,
			Width:        eval.WidestWidth,
			TargetMargin: eval.TargetMargin,
			Confidence:   eval.Confidence,
		})
	}
	c.finishLocked()
}

func (c *Coordinator) overLocked() bool {
	return c.err != nil || c.stoppedEarly || c.done == len(c.shards)
}

// outcomeClasses is the tracked outcome classes in reporting order.
func outcomeClasses() []string {
	names := make([]string, len(core.Outcomes))
	for i, o := range core.Outcomes {
		names[i] = o.String()
	}
	return names
}

// Wait blocks until every shard is complete (returning the merged
// campaign Report, identical to a single-process run), the stopping rule
// fires (returning the completed shards merged, with the convergence
// evaluation attached), the campaign fails (a shard exhausted its
// attempts) or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) (*core.Report, error) {
	select {
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	case <-c.finished:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	// Merge in shard order: shard order is sample order, so the merged
	// report — kept Results included — matches the single-process run.
	// After an early stop only completed shards carry reports; the merge
	// covers exactly the population the stop decision was evaluated on.
	rep := &core.Report{}
	for _, s := range c.shards {
		rep.Merge(s.report)
	}
	if stop := c.cfg.Campaign.Stop; stop.Enabled() {
		if c.stratified() {
			rep.Convergence = rep.ComputeConvergenceStrata(stop.Rule(), c.strataPops)
		} else {
			rep.Convergence = rep.ComputeConvergence(stop.Rule())
		}
	}
	return rep, nil
}

// Progress is a point-in-time view of the distributed campaign.
type Progress struct {
	Shards     int    `json:"shards"`
	Done       int    `json:"done"`
	Leased     int    `json:"leased"`
	Pending    int    `json:"pending"`
	Grants     int    `json:"lease_grants"`
	Requeues   int    `json:"requeues"`
	Injections int    `json:"injections_done"`
	Total      int    `json:"injections_total"`
	Failed     bool   `json:"failed"`
	Error      string `json:"error,omitempty"`
	// StoppedEarly reports that the convergence stop rule sealed the
	// campaign before every shard completed.
	StoppedEarly bool `json:"stopped_early,omitempty"`
	// Outcomes is the outcome mix over completed shards.
	Outcomes map[string]int `json:"outcomes,omitempty"`
}

// Progress returns the campaign's current state.
func (c *Coordinator) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Progress{
		Shards:   len(c.shards),
		Done:     c.done,
		Grants:   c.grants,
		Requeues: c.requeues,
		Total:    c.cfg.Campaign.Flips,
		Failed:   c.err != nil,
		Outcomes: make(map[string]int),
	}
	p.StoppedEarly = c.stoppedEarly
	if c.err != nil {
		p.Error = c.err.Error()
	}
	for _, s := range c.shards {
		switch s.status {
		case shardLeased:
			p.Leased++
		case shardPending:
			p.Pending++
		case shardDone:
			if s.report == nil {
				continue
			}
			p.Injections += s.report.Total
			for o, n := range s.report.Counts {
				p.Outcomes[o.String()] += n
			}
		}
	}
	return p
}

// FleetSnapshot returns the live fleet-wide metrics view: heartbeat
// deltas of in-flight shards plus the exact final snapshots of completed
// shards. Once the campaign completes it equals the merged Report's
// snapshot counter for counter.
func (c *Coordinator) FleetSnapshot() *obs.Snapshot {
	return c.fleet.Snapshot()
}

// Convergence is the live fleet-wide confidence-interval evaluation over
// the fleet metrics view (sealed completed-shard snapshots plus heartbeat
// deltas of in-flight shards). It feeds the progress line, /v1/status and
// /metrics; the stop *decision* is made over sealed counts only. Nil
// without a stop rule.
func (c *Coordinator) Convergence() *stats.Convergence {
	stop := c.cfg.Campaign.Stop
	if !stop.Enabled() {
		return nil
	}
	return c.fleet.Convergence(outcomeClasses(), stop.Rule(), false)
}

// StopDecision returns the sealed-counts convergence evaluation the
// coordinator stopped early on, nil if the campaign ran (or is running)
// to completion. A coordinator restarted over a journal that records a
// stop decision reports that same decision.
func (c *Coordinator) StopDecision() *stats.Convergence {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopEval
}

// Handler returns the coordinator's HTTP API:
//
//	POST /v1/lease      lease the next pending shard (204 = none pending,
//	                    410 = campaign over)
//	POST /v1/heartbeat  extend a held lease, optionally carrying a metrics
//	                    delta (409 = lease lost)
//	POST /v1/complete   deliver a shard report (idempotent)
//	POST /v1/fail       give a shard back after a worker-side error
//	GET  /v1/status     full fleet status, JSON (per-shard state machine,
//	                    per-worker rates, live totals, rate/ETA)
//	GET  /v1/trace      the campaign's causal span tree with critical path
//	                    and latency attribution, JSON (empty untraced)
//	GET  /progress      campaign progress, JSON
//	GET  /metrics       live fleet-wide metrics (in-flight shard deltas +
//	                    completed shard snapshots) plus coordinator shard
//	                    latency histograms and — for adaptive campaigns —
//	                    per-class confidence-interval gauges, Prometheus text
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/fail", c.handleFail)
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc("GET /progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Progress())
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.TraceDoc())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		snap := c.FleetSnapshot()
		snap.WritePrometheus(w, "sfi")
		c.writeCoordMetrics(w)
		obs.WriteConvergencePrometheus(w, "sfi", c.Convergence())
		c.cfg.Tracer.WriteSpanHists(w, "sfi")
	})
	return mux
}

// TraceDoc returns the campaign's span tree with its computed critical
// path and latency attribution — the coordinator's equivalent of the
// server's /v1/campaigns/{id}/trace. Empty when the coordinator runs
// without a Tracer.
func (c *Coordinator) TraceDoc() *obs.TraceDoc {
	return c.cfg.Tracer.Doc()
}

// writeCoordMetrics appends the coordinator's own shard-ledger metrics to
// a Prometheus scrape, after the fleet snapshot.
func (c *Coordinator) writeCoordMetrics(w http.ResponseWriter) {
	p := c.Progress()
	fmt.Fprintf(w, "# TYPE sfi_coord_shards gauge\n")
	for state, n := range map[string]int{"done": p.Done, "leased": p.Leased, "pending": p.Pending} {
		fmt.Fprintf(w, "sfi_coord_shards{state=%q} %d\n", state, n)
	}
	fmt.Fprintf(w, "# TYPE sfi_coord_lease_grants_total counter\nsfi_coord_lease_grants_total %d\n", p.Grants)
	fmt.Fprintf(w, "# TYPE sfi_coord_requeues_total counter\nsfi_coord_requeues_total %d\n", p.Requeues)
	obs.WriteHistPrometheus(w, "sfi", "coord_shard_completion_ms", c.completionMs.Snapshot())
	obs.WriteHistPrometheus(w, "sfi", "coord_heartbeat_gap_ms", c.beatGapMs.Snapshot())
}

// touchWorkerLocked updates the per-worker ledger and returns its entry.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerStats {
	ws := c.workers[id]
	if ws == nil {
		ws = &workerStats{firstSeen: now}
		c.workers[id] = ws
		c.log.Info("worker joined", "worker", id)
	}
	ws.lastSeen = now
	return ws
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	now := time.Now()
	c.touchWorkerLocked(req.Worker, now)
	c.sweepLocked(now)
	if c.overLocked() {
		c.mu.Unlock()
		w.WriteHeader(http.StatusGone)
		return
	}
	// Pop the next shard that is still pending (a queued shard can have
	// been settled out of band, e.g. a stale owner's late completion).
	var s *shard
	for s == nil {
		if len(c.queue) == 0 {
			c.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s = c.shards[c.queue[0]]
		c.queue = c.queue[1:]
		if s.status != shardPending {
			s = nil
		}
	}
	s.status = shardLeased
	s.owner = req.Worker
	s.attempts++
	c.grants++
	s.leasedAt = now
	s.lastBeat = time.Time{}
	s.liveInj = 0
	s.deadline = now.Add(c.cfg.LeaseTTL)
	s.span = c.cfg.Tracer.StartSpan("shard", "coord", c.spanParent).
		AttrInt("shard", int64(s.ID)).
		AttrInt("lo", int64(s.Lo)).AttrInt("hi", int64(s.Hi)).
		Attr("worker", req.Worker).
		AttrInt("attempt", int64(s.attempts))
	c.shardEvent(s, "lease", nil)
	c.log.Debug("lease granted", "shard", s.ID, "worker", req.Worker, "attempt", s.attempts)
	resp := leaseResponse{
		Shard:       s.ShardLease,
		Campaign:    c.cfg.Campaign,
		TTLMs:       c.cfg.LeaseTTL.Milliseconds(),
		Traceparent: s.span.Context().Traceparent(),
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.overLocked() {
		w.WriteHeader(http.StatusGone)
		return
	}
	s := c.shardByID(req.Shard)
	if s == nil || s.status != shardLeased || s.owner != req.Worker {
		// The lease expired and may already be re-granted: the worker must
		// abandon the shard (its eventual /v1/complete would still be
		// accepted — results are deterministic — but stopping saves work).
		w.WriteHeader(http.StatusConflict)
		return
	}
	now := time.Now()
	// A heartbeat that arrives far later than the worker's TTL/3 schedule
	// marks a struggling worker or a congested path — record the gap
	// before it grows into a lease expiry.
	if gap, expect := now.Sub(c.lastSignalLocked(s)), c.cfg.LeaseTTL/3; gap > 2*expect {
		c.beatGapMs.Observe(uint64(gap.Milliseconds()))
		c.shardEvent(s, "heartbeat_gap", func(ev *obs.ShardEvent) {
			ev.GapMs = gap.Milliseconds()
			// Correlate the gap with the worker's span tree.
			ev.Detail = req.Traceparent
		})
		c.log.Warn("heartbeat gap", "shard", s.ID, "worker", req.Worker,
			"gap", gap.Round(time.Millisecond))
	}
	s.lastBeat = now
	s.deadline = now.Add(c.cfg.LeaseTTL)
	ws := c.touchWorkerLocked(req.Worker, now)
	if req.Delta != nil && !req.Delta.Empty() {
		s.liveInj += req.Delta.Injections
		ws.injections += req.Delta.Injections
		ws.busyNs += req.Delta.BusyNs
		c.fleet.Observe(s.fleetKey(), req.Delta)
	}
	writeJSON(w, heartbeatResponse{TTLMs: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Report == nil {
		http.Error(w, "dist: complete without report", http.StatusBadRequest)
		return
	}
	rep, err := req.Report.Report()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.shardByID(req.Shard)
	if s == nil {
		http.Error(w, fmt.Sprintf("dist: unknown shard %d", req.Shard), http.StatusBadRequest)
		return
	}
	// Idempotent: re-delivery of a completed shard (worker retrying a
	// complete whose response it lost, or a stale owner finishing after
	// its lease was re-granted) is acknowledged and discarded.
	if s.status == shardDone {
		w.WriteHeader(http.StatusOK)
		return
	}
	// A late completion after the campaign failed or converged must not
	// reopen the ledger: the stop decision is a function of the shards
	// sealed at decision time.
	if c.err != nil || c.stoppedEarly {
		w.WriteHeader(http.StatusGone)
		return
	}
	if rep.Total != s.Hi-s.Lo {
		http.Error(w, fmt.Sprintf("dist: shard %d report covers %d injections, want %d",
			s.ID, rep.Total, s.Hi-s.Lo), http.StatusBadRequest)
		return
	}
	if c.journal != nil {
		if err := c.journal.append(s.ID, req.Report); err != nil {
			// Journal loss is a coordinator-side failure; the worker's
			// result is fine, so fail the campaign rather than the request.
			c.failLocked(fmt.Errorf("dist: journal append: %w", err))
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	now := time.Now()
	ws := c.touchWorkerLocked(req.Worker, now)
	ws.shardsDone++
	// Credit the completing worker with whatever the heartbeat deltas
	// hadn't already reported (the tail of the shard, or all of it when
	// the shard outran its first heartbeat).
	if rep.Metrics != nil {
		ws.injections += sub64(rep.Metrics.Injections, s.liveInj)
	} else {
		ws.injections += sub64(uint64(rep.Total), s.liveInj)
	}
	var latency time.Duration
	if s.status == shardLeased && s.owner == req.Worker && !s.leasedAt.IsZero() {
		latency = now.Sub(s.leasedAt)
		c.completionMs.Observe(uint64(latency.Milliseconds()))
	}
	c.shardEvent(s, "completed", func(ev *obs.ShardEvent) {
		ev.Worker = req.Worker
		ev.LatencyMs = latency.Milliseconds()
	})
	c.log.Info("shard completed", "shard", s.ID, "worker", req.Worker,
		"injections", rep.Total, "latency", latency.Round(time.Millisecond),
		"done", c.done+1, "shards", len(c.shards))
	// Forward the worker's sampled trace segment into the shard trace,
	// each line wrapped with its shard/worker provenance.
	if c.cfg.ShardTrace != nil {
		for _, line := range req.Trace {
			c.cfg.ShardTrace.RecordJSON(attachedTrace{
				Shard: s.ID, Worker: req.Worker, Injection: line,
			})
		}
	}
	// Import the worker's finished spans: they already carry the trace ID
	// and parent chain (lease traceparent → shard.run → core → engine), so
	// adding them to the ring completes the cross-process tree.
	for _, sp := range req.Spans {
		c.cfg.Tracer.Add(sp)
	}
	c.markDoneLocked(s, rep)
	w.WriteHeader(http.StatusOK)
}

// attachedTrace wraps one worker-attached injection trace line with its
// provenance for the coordinator's shard trace.
type attachedTrace struct {
	Shard     int             `json:"shard"`
	Worker    string          `json:"worker"`
	Injection json.RawMessage `json:"injection"`
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.overLocked() {
		w.WriteHeader(http.StatusGone)
		return
	}
	s := c.shardByID(req.Shard)
	if s == nil || s.status != shardLeased || s.owner != req.Worker {
		w.WriteHeader(http.StatusConflict)
		return
	}
	c.log.Warn("shard failed by worker", "shard", s.ID, "worker", req.Worker, "err", req.Error)
	c.shardEvent(s, "failed", func(ev *obs.ShardEvent) { ev.Detail = req.Error })
	ws := c.touchWorkerLocked(req.Worker, time.Now())
	ws.failures++
	c.requeueLocked(s, fmt.Sprintf("worker %q reported: %s", req.Worker, req.Error))
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) shardByID(id int) *shard {
	if id < 0 || id >= len(c.shards) {
		return nil
	}
	return c.shards[id]
}

func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
