package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sfi/internal/core"
	"sfi/internal/obs"
)

// CoordConfig parameterizes a campaign coordinator.
type CoordConfig struct {
	// Campaign is the campaign to distribute.
	Campaign CampaignSpec

	// ShardSize is the number of injections per shard (the last shard may
	// be short). 0 picks a default that yields ~64 shards — small enough
	// to balance load and bound re-done work on worker death, large
	// enough to amortize per-shard overhead.
	ShardSize int

	// LeaseTTL is how long a worker holds a shard without heartbeating
	// before the shard is considered abandoned (default 10s). Workers
	// heartbeat at TTL/3.
	LeaseTTL time.Duration

	// MaxAttempts bounds lease grants per shard: a shard abandoned (or
	// explicitly failed) this many times fails the whole campaign rather
	// than retrying forever (default 3).
	MaxAttempts int

	// Journal is the path of the completed-shard journal. When set, every
	// completed shard is appended (and fsync'd) as one JSONL record, and a
	// coordinator restarted over the same journal resumes with those
	// shards already done. "" disables journaling.
	Journal string
}

type shardStatus int

const (
	shardPending shardStatus = iota
	shardLeased
	shardDone
)

type shard struct {
	ShardLease
	status   shardStatus
	owner    string
	deadline time.Time
	attempts int // lease grants so far
	report   *core.Report
}

// Coordinator owns a campaign's shard ledger and serves the lease
// protocol. All state transitions happen under one mutex; the HTTP
// handlers, the lease reaper and Wait share it.
type Coordinator struct {
	cfg CoordConfig

	mu       sync.Mutex
	shards   []*shard
	queue    []int // pending shard IDs, FIFO
	done     int
	grants   int // total lease grants (observability)
	err      error
	finished chan struct{} // closed once done==len(shards) or err is set
	journal  *journal

	stopReaper chan struct{}
	reaperDone chan struct{}
}

// NewCoordinator plans the campaign's shards, replays the journal if one
// is configured and present, and starts the lease reaper. Callers must
// Close it.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Campaign.Flips < 1 {
		return nil, fmt.Errorf("dist: campaign needs at least one flip")
	}
	if _, err := cfg.Campaign.Filter.Filter(); err != nil {
		return nil, err
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = (cfg.Campaign.Flips + 63) / 64
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	c := &Coordinator{
		cfg:        cfg,
		finished:   make(chan struct{}),
		stopReaper: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	for id, r := range core.PlanShards(cfg.Campaign.Flips, cfg.ShardSize) {
		c.shards = append(c.shards, &shard{
			ShardLease: ShardLease{ID: id, Lo: r.Lo, Hi: r.Hi},
		})
	}
	if cfg.Journal != "" {
		j, recovered, err := openJournal(cfg.Journal, journalHeader{
			V:         1,
			Seed:      cfg.Campaign.Seed,
			Flips:     cfg.Campaign.Flips,
			ShardSize: cfg.ShardSize,
			Filter:    cfg.Campaign.Filter,
		})
		if err != nil {
			return nil, err
		}
		c.journal = j
		for id, rep := range recovered {
			if id < 0 || id >= len(c.shards) {
				j.close()
				return nil, fmt.Errorf("dist: journal names shard %d outside the %d-shard plan", id, len(c.shards))
			}
			c.markDoneLocked(c.shards[id], rep)
		}
	}
	// Queue whatever the journal didn't already settle.
	for _, s := range c.shards {
		if s.status == shardPending {
			c.queue = append(c.queue, s.ID)
		}
	}
	go c.reaper()
	return c, nil
}

// Close stops the reaper and closes the journal. It does not interrupt
// Wait; cancel Wait's context to abandon a campaign.
func (c *Coordinator) Close() {
	close(c.stopReaper)
	<-c.reaperDone
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		c.journal.close()
		c.journal = nil
	}
}

// reaper periodically re-queues shards whose lease expired (worker death
// without a parting /v1/fail). Sweeps also run inline on every lease poll,
// so the reaper only matters when no worker is polling.
func (c *Coordinator) reaper() {
	defer close(c.reaperDone)
	tick := time.NewTicker(c.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stopReaper:
			return
		case <-tick.C:
			c.mu.Lock()
			c.sweepLocked(time.Now())
			c.mu.Unlock()
		}
	}
}

// sweepLocked expires overdue leases. A shard that has used all its
// attempts fails the campaign; otherwise it goes back on the queue for
// another worker.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, s := range c.shards {
		if s.status != shardLeased || now.Before(s.deadline) {
			continue
		}
		c.requeueLocked(s, fmt.Sprintf("lease by %q expired", s.owner))
	}
}

func (c *Coordinator) requeueLocked(s *shard, why string) {
	s.status = shardPending
	s.owner = ""
	if s.attempts >= c.cfg.MaxAttempts {
		c.failLocked(fmt.Errorf("dist: shard %d [%d,%d) failed %d of %d attempts (last: %s)",
			s.ID, s.Lo, s.Hi, s.attempts, c.cfg.MaxAttempts, why))
		return
	}
	c.queue = append(c.queue, s.ID)
}

func (c *Coordinator) failLocked(err error) {
	if c.err == nil && c.done < len(c.shards) {
		c.err = err
		close(c.finished)
	}
}

func (c *Coordinator) markDoneLocked(s *shard, rep *core.Report) {
	if s.status == shardDone {
		return
	}
	s.status = shardDone
	s.owner = ""
	s.report = rep
	c.done++
	if c.done == len(c.shards) && c.err == nil {
		close(c.finished)
	}
}

func (c *Coordinator) overLocked() bool {
	return c.err != nil || c.done == len(c.shards)
}

// Wait blocks until every shard is complete (returning the merged
// campaign Report, identical to a single-process run) or the campaign
// fails (a shard exhausted its attempts) or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) (*core.Report, error) {
	select {
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	case <-c.finished:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	// Merge in shard order: shard order is sample order, so the merged
	// report — kept Results included — matches the single-process run.
	rep := &core.Report{}
	for _, s := range c.shards {
		rep.Merge(s.report)
	}
	return rep, nil
}

// Progress is a point-in-time view of the distributed campaign.
type Progress struct {
	Shards     int   `json:"shards"`
	Done       int   `json:"done"`
	Leased     int   `json:"leased"`
	Pending    int   `json:"pending"`
	Grants     int   `json:"lease_grants"`
	Injections int   `json:"injections_done"`
	Total      int   `json:"injections_total"`
	Failed     bool  `json:"failed"`
	Error      string `json:"error,omitempty"`
	// Outcomes is the outcome mix over completed shards.
	Outcomes map[string]int `json:"outcomes,omitempty"`
}

// Progress returns the campaign's current state.
func (c *Coordinator) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Progress{
		Shards:   len(c.shards),
		Done:     c.done,
		Grants:   c.grants,
		Total:    c.cfg.Campaign.Flips,
		Failed:   c.err != nil,
		Outcomes: make(map[string]int),
	}
	if c.err != nil {
		p.Error = c.err.Error()
	}
	for _, s := range c.shards {
		switch s.status {
		case shardLeased:
			p.Leased++
		case shardPending:
			p.Pending++
		case shardDone:
			p.Injections += s.report.Total
			for o, n := range s.report.Counts {
				p.Outcomes[o.String()] += n
			}
		}
	}
	return p
}

// snapshot merges the metrics snapshots of completed shards (for the
// /metrics endpoint).
func (c *Coordinator) snapshot() *obs.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := obs.NewSnapshot()
	for _, sh := range c.shards {
		if sh.status == shardDone && sh.report.Metrics != nil {
			s.Merge(sh.report.Metrics)
		}
	}
	return s
}

// Handler returns the coordinator's HTTP API:
//
//	POST /v1/lease      lease the next pending shard (204 = none pending,
//	                    410 = campaign over)
//	POST /v1/heartbeat  extend a held lease (409 = lease lost)
//	POST /v1/complete   deliver a shard report (idempotent)
//	POST /v1/fail       give a shard back after a worker-side error
//	GET  /progress      campaign progress, JSON
//	GET  /metrics       merged metrics over completed shards, Prometheus text
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/fail", c.handleFail)
	mux.HandleFunc("GET /progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Progress())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.snapshot().WritePrometheus(w, "sfi")
	})
	return mux
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	now := time.Now()
	c.sweepLocked(now)
	if c.overLocked() {
		c.mu.Unlock()
		w.WriteHeader(http.StatusGone)
		return
	}
	// Pop the next shard that is still pending (a queued shard can have
	// been settled out of band, e.g. a stale owner's late completion).
	var s *shard
	for s == nil {
		if len(c.queue) == 0 {
			c.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s = c.shards[c.queue[0]]
		c.queue = c.queue[1:]
		if s.status != shardPending {
			s = nil
		}
	}
	s.status = shardLeased
	s.owner = req.Worker
	s.attempts++
	c.grants++
	s.deadline = now.Add(c.cfg.LeaseTTL)
	resp := leaseResponse{
		Shard:    s.ShardLease,
		Campaign: c.cfg.Campaign,
		TTLMs:    c.cfg.LeaseTTL.Milliseconds(),
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.overLocked() {
		w.WriteHeader(http.StatusGone)
		return
	}
	s := c.shardByID(req.Shard)
	if s == nil || s.status != shardLeased || s.owner != req.Worker {
		// The lease expired and may already be re-granted: the worker must
		// abandon the shard (its eventual /v1/complete would still be
		// accepted — results are deterministic — but stopping saves work).
		w.WriteHeader(http.StatusConflict)
		return
	}
	s.deadline = time.Now().Add(c.cfg.LeaseTTL)
	writeJSON(w, heartbeatResponse{TTLMs: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Report == nil {
		http.Error(w, "dist: complete without report", http.StatusBadRequest)
		return
	}
	rep, err := req.Report.Report()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.shardByID(req.Shard)
	if s == nil {
		http.Error(w, fmt.Sprintf("dist: unknown shard %d", req.Shard), http.StatusBadRequest)
		return
	}
	// Idempotent: re-delivery of a completed shard (worker retrying a
	// complete whose response it lost, or a stale owner finishing after
	// its lease was re-granted) is acknowledged and discarded.
	if s.status == shardDone {
		w.WriteHeader(http.StatusOK)
		return
	}
	if c.err != nil {
		w.WriteHeader(http.StatusGone)
		return
	}
	if rep.Total != s.Hi-s.Lo {
		http.Error(w, fmt.Sprintf("dist: shard %d report covers %d injections, want %d",
			s.ID, rep.Total, s.Hi-s.Lo), http.StatusBadRequest)
		return
	}
	if c.journal != nil {
		if err := c.journal.append(s.ID, req.Report); err != nil {
			// Journal loss is a coordinator-side failure; the worker's
			// result is fine, so fail the campaign rather than the request.
			c.failLocked(fmt.Errorf("dist: journal append: %w", err))
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	c.markDoneLocked(s, rep)
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.overLocked() {
		w.WriteHeader(http.StatusGone)
		return
	}
	s := c.shardByID(req.Shard)
	if s == nil || s.status != shardLeased || s.owner != req.Worker {
		w.WriteHeader(http.StatusConflict)
		return
	}
	c.requeueLocked(s, fmt.Sprintf("worker %q reported: %s", req.Worker, req.Error))
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) shardByID(id int) *shard {
	if id < 0 || id >= len(c.shards) {
		return nil
	}
	return c.shards[id]
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
