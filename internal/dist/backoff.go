package dist

import (
	"math/rand/v2"
	"time"
)

// backoff produces capped exponential retry delays with jitter for the
// worker's lease poll when the coordinator is unreachable: a fleet of
// workers that all lost the coordinator at once (it is restarting, or a
// partition healed) would otherwise re-poll in lockstep and thunder over
// it together. Delays start at base, double per consecutive failure up to
// max, and each is jittered ±25% to de-synchronize the fleet. reset()
// drops back to base on any successful response.
type backoff struct {
	base, max time.Duration
	cur       time.Duration
	// jitter maps a delay to its randomized value; the default draws
	// uniformly from [3d/4, 5d/4). Tests substitute a deterministic one.
	jitter func(d time.Duration) time.Duration
}

func newBackoff(base, max time.Duration) *backoff {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &backoff{base: base, max: max}
}

// next returns the delay to sleep before the next retry and advances the
// schedule.
func (b *backoff) next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.base
	}
	d := b.cur
	if b.cur <= b.max/2 {
		b.cur *= 2
	} else {
		b.cur = b.max
	}
	if b.jitter != nil {
		return b.jitter(d)
	}
	return d*3/4 + time.Duration(rand.Int64N(int64(d)/2+1))
}

// reset returns the schedule to the base delay (coordinator heard from).
func (b *backoff) reset() { b.cur = 0 }
