package emu

import (
	"testing"

	"sfi/internal/avp"
	"sfi/internal/bits"
	"sfi/internal/isa"
	"sfi/internal/mem"
	"sfi/internal/proc"
)

func newEngine(t *testing.T) (*Engine, *avp.Program) {
	t.Helper()
	cfg := avp.DefaultConfig()
	cfg.Testcases = 4
	cfg.BodyOps = 10
	p := avp.MustGenerate(cfg)
	core := proc.New(proc.DefaultConfig())
	core.Mem().LoadProgram(0, p.Words)
	e := New(core)
	// Warm to steady state: two full passes.
	ends := 0
	for ends < 2*cfg.Testcases {
		if e.Step().TestEnd {
			ends++
		}
	}
	return e, p
}

func TestCheckpointReloadDeterminism(t *testing.T) {
	e, _ := newEngine(t)
	e.SaveCheckpoint()

	sigOf := func() []uint64 {
		var sigs []uint64
		for len(sigs) < 6 {
			if ev := e.Step(); ev.TestEnd {
				sigs = append(sigs, ev.Signature)
			}
		}
		return sigs
	}
	a := sigOf()
	e.Reload()
	b := sigOf()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("signature %d differs after reload: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestReloadWithoutCheckpointPanics(t *testing.T) {
	e := New(proc.New(proc.DefaultConfig()))
	defer func() {
		if recover() == nil {
			t.Error("no panic on Reload without checkpoint")
		}
	}()
	e.Reload()
}

func TestInjectRangeError(t *testing.T) {
	e, _ := newEngine(t)
	if err := e.Inject(Injection{Bit: -1, Mode: Toggle}); err == nil {
		t.Error("no error for negative bit")
	}
	if err := e.Inject(Injection{Bit: 1 << 30, Mode: Toggle}); err == nil {
		t.Error("no error for out-of-range bit")
	}
}

func TestToggleInjectionFlipsOnce(t *testing.T) {
	e, _ := newEngine(t)
	db := e.Core().DB()
	g, _ := db.GroupByName("prv.trace")
	_ = g
	// Pick a quiet bit (spare mode latches are never rewritten by logic).
	var bit int
	for b := 0; b < db.TotalBits(); b++ {
		if gg, _, _ := db.Locate(b); gg.Name == "prv.mode.spare" {
			bit = b
			break
		}
	}
	if err := e.Inject(Injection{Bit: bit, Mode: Toggle}); err != nil {
		t.Fatal(err)
	}
	if !db.Peek(bit) {
		t.Fatal("toggle did not flip the bit")
	}
	// Nothing forces it back: flipping again restores it.
	db.Flip(bit)
	e.Step()
	if db.Peek(bit) {
		t.Error("toggle mode kept forcing the bit")
	}
}

func TestStickyInjectionHolds(t *testing.T) {
	e, _ := newEngine(t)
	db := e.Core().DB()
	// A live, constantly rewritten latch: the hang counter.
	g, ok := db.GroupByName("prv.hang.cnt")
	if !ok {
		t.Fatal("no hang counter group")
	}
	_ = g
	var bit int
	for b := 0; b < db.TotalBits(); b++ {
		if gg, _, bb := db.Locate(b); gg.Name == "prv.hang.cnt" && bb == 9 {
			bit = b
			break
		}
	}
	if err := e.Inject(Injection{Bit: bit, Mode: Sticky, Duration: 20}); err != nil {
		t.Fatal(err)
	}
	want := db.Peek(bit)
	for i := 0; i < 15; i++ {
		e.Step()
		if db.Peek(bit) != want {
			t.Fatalf("sticky bit released at step %d", i)
		}
	}
	// After the duration the force is gone; the logic rewrites the
	// counter every cycle, so the bit returns to normal counting.
	for i := 0; i < 30; i++ {
		e.Step()
	}
	if e.stickyOn {
		t.Error("sticky force still active past its duration")
	}
}

func TestRunStopsOnHalt(t *testing.T) {
	core := proc.New(proc.DefaultConfig())
	core.Mem().LoadProgram(0, isa.MustAssemble("addi r1, r0, 5\nhalt"))
	e := New(core)
	st := e.Run(100000, nil)
	if !st.Halted {
		t.Fatalf("run did not report halt: %+v", st)
	}
}

func TestRunCountsTestEnds(t *testing.T) {
	e, p := newEngine(t)
	n := 0
	st := e.Run(1_000_000, func() bool {
		n++
		return n < 5
	})
	if st.TestEnds != 5 || n != 5 {
		t.Errorf("testends = %d (callback %d), want 5", st.TestEnds, n)
	}
	_ = p
}

func TestRunDetectsCheckstop(t *testing.T) {
	e, _ := newEngine(t)
	db := e.Core().DB()
	var bit int
	for b := 0; b < db.TotalBits(); b++ {
		if gg, _, _ := db.Locate(b); gg.Name == "prv.fir" {
			bit = b
			break
		}
	}
	if err := e.Inject(Injection{Bit: bit, Mode: Toggle}); err != nil {
		t.Fatal(err)
	}
	st := e.Run(10000, nil)
	if !st.Checkstop {
		t.Errorf("run did not report checkstop: %+v", st)
	}
}

func TestRunDetectsNoProgress(t *testing.T) {
	e, _ := newEngine(t)
	// Freeze the IFU via its clock enable and mask every checker so the
	// watchdog cannot intervene: the harness itself must notice.
	e.Core().SetCheckersEnabled(false)
	db := e.Core().DB()
	for b := 0; b < db.TotalBits(); b++ {
		if gg, _, bb := db.Locate(b); gg.Name == "prv.mode.hanglim" && bb == 11 {
			db.Poke(b, false) // hang limit 2048 -> 0: watchdog disabled
			break
		}
	}
	for b := 0; b < db.TotalBits(); b++ {
		if gg, _, bb := db.Locate(b); gg.Name == "prv.mode.clock" && bb == 0 {
			db.Poke(b, false) // IFU clock off
			break
		}
	}
	st := e.Run(100000, nil)
	if !st.NoProgress {
		t.Errorf("harness did not detect loss of progress: %+v", st)
	}
}

// captureState snapshots everything RestoreCheckpoint is responsible for.
type fullState struct {
	latches    []uint64
	mem        *mem.Memory
	arrays     [][]bits.ECCWord
	cycle      uint64
	completed  uint64
	recoveries uint64
	checkstop  bool
	halted     bool
}

func captureState(c *proc.Core) fullState {
	st := fullState{
		latches:    c.DB().Snapshot(),
		mem:        c.Mem().Clone(),
		cycle:      c.Cycle,
		completed:  c.Completed,
		recoveries: c.Recoveries,
		checkstop:  c.Checkstopped(),
		halted:     c.Halted(),
	}
	for _, p := range c.Arrays() {
		st.arrays = append(st.arrays, p.Snapshot())
	}
	return st
}

func diffStates(t *testing.T, a, b fullState) {
	t.Helper()
	for i := range a.latches {
		if a.latches[i] != b.latches[i] {
			t.Fatalf("latch word %d differs: %#x vs %#x", i, a.latches[i], b.latches[i])
		}
	}
	if !a.mem.Equal(b.mem) {
		t.Fatal("memory differs")
	}
	for i := range a.arrays {
		for e := range a.arrays[i] {
			if a.arrays[i][e] != b.arrays[i][e] {
				t.Fatalf("array %d entry %d differs", i, e)
			}
		}
	}
	if a.cycle != b.cycle || a.completed != b.completed || a.recoveries != b.recoveries {
		t.Fatalf("counters differ: %v/%v/%v vs %v/%v/%v",
			a.cycle, a.completed, a.recoveries, b.cycle, b.completed, b.recoveries)
	}
	if a.checkstop != b.checkstop || a.halted != b.halted {
		t.Fatal("machine halt/checkstop flags differ")
	}
}

// TestDirtyRestoreMatchesFullRestore is the differential proof that the
// dirty-tracking restore path is bit-identical to the full Snapshot/CopyFrom
// path, across toggle, sticky and multi-bit-span injections, including
// cross-checkpoint reloads (restore to a checkpoint other than the one the
// machine last reloaded).
func TestDirtyRestoreMatchesFullRestore(t *testing.T) {
	cases := []struct {
		name string
		inj  Injection
	}{
		{"toggle", Injection{Mode: Toggle}},
		{"sticky", Injection{Mode: Sticky, Duration: 200}},
		{"span3", Injection{Mode: Toggle, Span: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, _ := newEngine(t)
			c := e.Core()
			c.InstallRestoreBaseline()
			ck1 := e.TakeCheckpoint()
			for i := 0; i < 700; i++ {
				e.Step()
			}
			ck2 := e.TakeCheckpoint()

			for runIdx, ck := range []*proc.ModelCheckpoint{ck2, ck1, ck2} {
				// Perturb: inject into a latch that is live during the
				// AVP (a GPR word) and run a window.
				g, ok := c.DB().GroupByName("fxu.gpr")
				if !ok {
					t.Fatal("no fxu.gpr group")
				}
				inj := tc.inj
				inj.Bit = gprBit(c, g.Name, 2+runIdx)
				if err := e.Inject(inj); err != nil {
					t.Fatal(err)
				}
				e.Run(2_000, nil)

				// Dirty path (RestoreCheckpoint picks it: baselines match).
				e.ReloadFrom(ck)
				dirty := captureState(c)
				// Full path from an arbitrary dirtied state.
				e.Inject(Injection{Bit: inj.Bit, Mode: Toggle})
				e.Run(500, nil)
				c.RestoreCheckpointFull(ck)
				full := captureState(c)
				diffStates(t, dirty, full)
			}
		})
	}
}

// gprBit returns the logical bit index of bit 0 of the named group's entry
// (logical offsets are dense in registration order).
func gprBit(c *proc.Core, group string, entry int) int {
	off := 0
	for _, g := range c.DB().Groups() {
		if g.Name == group {
			return off + entry*g.Width
		}
		off += g.Bits()
	}
	panic("group not found")
}
