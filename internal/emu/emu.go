// Package emu is the emulation engine layer: the analogue of the paper's
// Awan accelerator plus its controlling host. It owns a core model, saves
// and reloads full-model checkpoints, schedules latch-bit fault injections
// (toggle and sticky mode) and clocks the model while monitoring the fault
// isolation registers and machine events — the "communication layer between
// the Awan engine and the communication host".
package emu

import (
	"fmt"

	"sfi/internal/engine"
	"sfi/internal/obs"
	"sfi/internal/proc"
)

// Mode and Injection are re-homed in the backend-neutral engine package
// (they describe a fault in any backend, not just this one); the aliases
// keep emu's historical API intact for direct engine users.
type (
	// Mode selects how long an injected fault is forced.
	Mode = engine.Mode
	// Injection describes one latch fault.
	Injection = engine.Injection
)

// Injection modes (paper section 2: "the fault may exist for the duration
// of a cycle (toggle mode) or for a larger number of cycles (sticky mode)").
const (
	Toggle = engine.Toggle
	Sticky = engine.Sticky
)

// Engine drives one core model.
type Engine struct {
	core *proc.Core
	ckpt *proc.ModelCheckpoint

	// obs is the optional metrics collector (nil = off). The engine
	// batches its cycle accounting per monitored Run rather than per Step,
	// so the per-cycle hot path carries no instrumentation at all.
	obs *obs.Metrics

	// Active sticky force, if any.
	stickyBit   int
	stickyVal   bool
	stickyUntil uint64 // cycle bound; 0 = forever
	stickyOn    bool
}

// New wraps a core in an engine.
func New(core *proc.Core) *Engine {
	return &Engine{core: core}
}

// Core exposes the underlying model.
func (e *Engine) Core() *proc.Core { return e.core }

// SetObs attaches a metrics collector to the engine and its core (nil
// detaches, the default). Monitored runs then record their cycle counts
// and the core times its checkpoint restores.
func (e *Engine) SetObs(m *obs.Metrics) {
	e.obs = m
	e.core.SetObs(m)
}

// FIRNames returns the names of the checkers whose fault-isolation-register
// bits are currently set — the engine-level FIR poll the paper's host does
// after each injection, used for structured trace events.
func (e *Engine) FIRNames() []string {
	var out []string
	for _, ch := range e.core.Checkers() {
		if e.core.FIRBit(ch.ID) {
			out = append(out, ch.Name)
		}
	}
	return out
}

// SaveCheckpoint captures the model state for later Reload calls.
func (e *Engine) SaveCheckpoint() {
	e.ckpt = e.core.SaveCheckpoint()
}

// Reload restores the model to the saved checkpoint and clears any sticky
// force. It panics if no checkpoint was saved.
func (e *Engine) Reload() {
	if e.ckpt == nil {
		panic("emu: Reload without a saved checkpoint")
	}
	e.ReloadFrom(e.ckpt)
}

// TakeCheckpoint captures the model state without installing it as the
// engine's default reload point; the SFI runner keeps several checkpoints
// spread across the workload so injections sample different phases.
func (e *Engine) TakeCheckpoint() *proc.ModelCheckpoint {
	return e.core.SaveCheckpoint()
}

// ReloadFrom restores the model from an explicit checkpoint, clearing any
// sticky force.
func (e *Engine) ReloadFrom(ck *proc.ModelCheckpoint) {
	e.core.RestoreCheckpoint(ck)
	e.stickyOn = false
}

// Inject applies a fault at the current cycle: the bit is flipped, and in
// sticky mode the flipped value is re-forced after every subsequent cycle
// until the duration expires.
func (e *Engine) Inject(inj Injection) error {
	db := e.core.DB()
	if inj.Bit < 0 || inj.Bit >= db.TotalBits() {
		return fmt.Errorf("emu: injection bit %d out of range [0,%d)", inj.Bit, db.TotalBits())
	}
	v := db.Flip(inj.Bit)
	for i := 1; i < inj.Span && inj.Bit+i < db.TotalBits(); i++ {
		db.Flip(inj.Bit + i)
	}
	if inj.Mode == Sticky {
		e.stickyBit = inj.Bit
		e.stickyVal = v
		e.stickyOn = true
		if inj.Duration > 0 {
			e.stickyUntil = e.core.Cycle + uint64(inj.Duration)
		} else {
			e.stickyUntil = 0
		}
	}
	return nil
}

// Step clocks the model one cycle, maintaining any sticky force.
func (e *Engine) Step() proc.Event {
	ev := e.core.Step()
	if e.stickyOn {
		if e.stickyUntil != 0 && e.core.Cycle >= e.stickyUntil {
			e.stickyOn = false
		} else {
			e.core.DB().Poke(e.stickyBit, e.stickyVal)
		}
	}
	return ev
}

// RunStats summarizes a monitored run.
type RunStats struct {
	Cycles     uint64 // cycles actually clocked
	TestEnds   int    // testend barriers retired
	Halted     bool
	Checkstop  bool
	Hang       bool // pervasive hang detector fired and gave up
	NoProgress bool // harness watchdog: nothing completed for 2×HangLimit
}

// Run clocks up to maxCycles, invoking onTestEnd at every testend barrier
// (if non-nil; returning false from the callback stops the run). The run
// also stops on checkstop, halt, a detected hang, or harness-level loss of
// forward progress.
func (e *Engine) Run(maxCycles int, onTestEnd func() bool) RunStats {
	st := e.run(maxCycles, onTestEnd)
	if e.obs != nil {
		e.obs.ObserveRun(st.Cycles)
	}
	return st
}

func (e *Engine) run(maxCycles int, onTestEnd func() bool) RunStats {
	var st RunStats
	c := e.core
	lastCompleted := c.Completed
	lastProgressCycle := c.Cycle
	harnessLimit := uint64(2 * c.Config().HangLimit)

	for i := 0; i < maxCycles; i++ {
		ev := e.Step()
		st.Cycles++
		if c.Completed != lastCompleted {
			lastCompleted = c.Completed
			lastProgressCycle = c.Cycle
		}
		if ev.TestEnd {
			st.TestEnds++
			if onTestEnd != nil && !onTestEnd() {
				return st
			}
		}
		if ev.Halted {
			st.Halted = true
			return st
		}
		if c.Checkstopped() {
			st.Checkstop = true
			return st
		}
		if c.HangDetected() {
			st.Hang = true
			return st
		}
		if c.Cycle-lastProgressCycle > harnessLimit {
			st.NoProgress = true
			return st
		}
	}
	return st
}
