// Package array models the ECC-protected SRAM arrays of the core (cache
// data and tags, the recovery unit's architected-state checkpoint). Arrays
// are not part of the latch population — the paper notes that "a large
// portion of the RUT consists of arrays which are protected" — but the beam
// experiment strikes them too, so every cell is individually flippable and
// every read goes through SECDED decode.
package array

import (
	"fmt"
	mbits "math/bits"

	"sfi/internal/bits"
)

// Protected is an ECC-protected array of 64-bit words.
//
// When a restore baseline is installed (SetBaseline), writes mark the entry
// dirty and delta snapshots restore in time proportional to the entries
// actually touched — see DESIGN.md "Dirty-tracking checkpoint restore".
type Protected struct {
	name  string
	cells []bits.ECCWord

	// base is the baseline contents, immutable once installed (shared
	// read-only by cloned arrays). dirty has one bit per entry.
	base  []bits.ECCWord
	dirty []uint64

	// Corrected counts single-bit errors corrected on read or scrub.
	Corrected uint64
	// Uncorrectable counts multi-bit errors detected on read or scrub.
	Uncorrectable uint64
}

// New returns a Protected array with entries zeroed words (valid ECC).
func New(name string, entries int) *Protected {
	if entries < 1 {
		panic(fmt.Sprintf("array: entries %d < 1 for %s", entries, name))
	}
	p := &Protected{name: name, cells: make([]bits.ECCWord, entries)}
	zero := bits.EncodeSECDED(0)
	for i := range p.cells {
		p.cells[i] = zero
	}
	return p
}

// Name returns the array's name.
func (p *Protected) Name() string { return p.name }

// Entries returns the number of 64-bit words.
func (p *Protected) Entries() int { return len(p.cells) }

// TotalBits returns the number of storage bits including check bits, the
// population the beam model samples from.
func (p *Protected) TotalBits() int { return len(p.cells) * 72 }

// touch marks an entry dirty (no-op without a baseline).
func (p *Protected) touch(entry int) {
	if p.dirty != nil {
		p.dirty[entry>>6] |= 1 << (uint(entry) & 63)
	}
}

// Write stores a word with freshly computed check bits.
func (p *Protected) Write(entry int, data uint64) {
	p.cells[entry] = bits.EncodeSECDED(data)
	p.touch(entry)
}

// Read loads a word through ECC decode. Single-bit errors are corrected
// in place (read-repair) and counted; uncorrectable errors are counted and
// reported so the owner can escalate.
func (p *Protected) Read(entry int) (uint64, bits.ECCResult) {
	data, res := bits.DecodeSECDED(p.cells[entry])
	switch res {
	case bits.ECCCorrected:
		p.Corrected++
		p.cells[entry] = bits.EncodeSECDED(data)
		p.touch(entry)
	case bits.ECCUncorrectable:
		p.Uncorrectable++
	}
	return data, res
}

// FlipBit injects a fault into storage: bit < 64 hits the data word,
// bits 64..71 hit the check bits. This is the beam-strike primitive.
func (p *Protected) FlipBit(entry, bit int) {
	if bit < 0 || bit > 71 {
		panic(fmt.Sprintf("array: bit %d out of range [0,72) in %s", bit, p.name))
	}
	if bit < 64 {
		p.cells[entry].Data ^= 1 << uint(bit)
	} else {
		p.cells[entry].Check ^= 1 << uint(bit-64)
	}
	p.touch(entry)
}

// ScrubStep checks one entry (correcting if needed) and returns its result;
// the background scrubber calls this round-robin.
func (p *Protected) ScrubStep(entry int) bits.ECCResult {
	_, res := p.Read(entry)
	return res
}

// Snapshot returns a copy of the array contents (not the counters).
func (p *Protected) Snapshot() []bits.ECCWord {
	s := make([]bits.ECCWord, len(p.cells))
	copy(s, p.cells)
	return s
}

// Restore overwrites contents from a snapshot of the same shape. With a
// baseline installed every entry is conservatively marked dirty so later
// delta restores stay correct.
func (p *Protected) Restore(snap []bits.ECCWord) {
	if len(snap) != len(p.cells) {
		panic(fmt.Sprintf("array: snapshot size %d != %d in %s", len(snap), len(p.cells), p.name))
	}
	copy(p.cells, snap)
	if p.dirty != nil {
		for i := range p.dirty {
			p.dirty[i] = ^uint64(0)
		}
		if r := len(p.cells) % 64; r != 0 {
			p.dirty[len(p.dirty)-1] = 1<<uint(r) - 1
		}
	}
}

// SetBaseline snapshots the current contents as the restore baseline and
// starts entry-granular dirty tracking against it.
func (p *Protected) SetBaseline() {
	p.base = append([]bits.ECCWord(nil), p.cells...)
	p.dirty = make([]uint64, (len(p.cells)+63)/64)
}

// HasBaseline reports whether dirty tracking is active.
func (p *Protected) HasBaseline() bool { return p.base != nil }

// AdoptBaseline shares src's baseline (read-only) and resets contents to it
// with a clean dirty bitmap. Shapes must match.
func (p *Protected) AdoptBaseline(src *Protected) {
	if src.base == nil {
		panic(fmt.Sprintf("array: AdoptBaseline from %s without a baseline", src.name))
	}
	if len(p.cells) != len(src.base) {
		panic(fmt.Sprintf("array: adopt size mismatch %d != %d in %s", len(p.cells), len(src.base), p.name))
	}
	p.base = src.base
	copy(p.cells, p.base)
	p.dirty = make([]uint64, (len(p.cells)+63)/64)
}

// Delta is a sparse array snapshot: the entries (index and raw ECC word)
// that differed from the baseline at capture time. Immutable after capture.
type Delta struct {
	idx []int32
	val []bits.ECCWord
}

// Entries returns the number of entries recorded in the delta.
func (d *Delta) Entries() int { return len(d.idx) }

// CaptureDelta records the entries currently marked dirty against the
// baseline. It panics without a baseline.
func (p *Protected) CaptureDelta() *Delta {
	if p.base == nil {
		panic(fmt.Sprintf("array: CaptureDelta without a baseline in %s", p.name))
	}
	d := &Delta{}
	for w, b := range p.dirty {
		for b != 0 {
			e := w*64 + mbits.TrailingZeros64(b)
			b &= b - 1
			d.idx = append(d.idx, int32(e))
			d.val = append(d.val, p.cells[e])
		}
	}
	return d
}

// RestoreDelta rewrites the array to exactly the state captured in d: dirty
// entries revert to the baseline, then the delta's entries are applied and
// stay marked dirty.
func (p *Protected) RestoreDelta(d *Delta) {
	if p.base == nil {
		panic(fmt.Sprintf("array: RestoreDelta without a baseline in %s", p.name))
	}
	for w, b := range p.dirty {
		for b != 0 {
			e := w*64 + mbits.TrailingZeros64(b)
			b &= b - 1
			p.cells[e] = p.base[e]
		}
	}
	for i := range p.dirty {
		p.dirty[i] = 0
	}
	for i, e32 := range d.idx {
		e := int(e32)
		p.cells[e] = d.val[i]
		p.dirty[e>>6] |= 1 << (uint(e) & 63)
	}
}

// ResetCounters zeroes the error counters.
func (p *Protected) ResetCounters() {
	p.Corrected = 0
	p.Uncorrectable = 0
}
